// Tests for the DSM layer over VMMC: page faulting, home-based coherence
// under locks, write-back on release, lock exclusion, and a parallel
// counter workload.
#include <gtest/gtest.h>

#include "co_test_util.h"
#include "vmmc/dsm/dsm.h"

namespace vmmc::dsm {
namespace {

using vmmc_core::Cluster;
using vmmc_core::ClusterOptions;

class DsmTest : public ::testing::Test {
 protected:
  void Boot(int nodes, std::uint32_t pages = 16) {
    ClusterOptions options;
    options.num_nodes = nodes;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());

    nodes_.resize(static_cast<std::size_t>(nodes));
    int created = 0;
    auto create = [this, nodes, pages, &created](int r) -> sim::Process {
      DsmOptions opts;
      opts.total_pages = pages;
      auto n = co_await DsmNode::Create(*cluster_, r, nodes, opts);
      CO_ASSERT_TRUE(n.ok());
      nodes_[static_cast<std::size_t>(r)] = std::move(n).value();
      ++created;
    };
    for (int r = 0; r < nodes; ++r) sim_.Spawn(create(r));
    ASSERT_TRUE(sim_.RunUntil([&] { return created == nodes; }, 200'000'000));

    bool wired = false;
    auto wire = [this, nodes, &wired]() -> sim::Process {
      for (int a = 0; a < nodes; ++a) {
        for (int b = a + 1; b < nodes; ++b) {
          Status s = co_await nodes_[static_cast<std::size_t>(a)]->Connect(
              *nodes_[static_cast<std::size_t>(b)]);
          CO_ASSERT_TRUE(s.ok());
        }
      }
      wired = true;
    };
    sim_.Spawn(wire());
    ASSERT_TRUE(sim_.RunUntil([&] { return wired; }, 500'000'000));
    for (auto& n : nodes_) n->StartService();
  }

  void TearDown() override {
    for (auto& n : nodes_) {
      if (n) n->StopService();
    }
  }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
};

TEST_F(DsmTest, RemoteReadFaultsPageIn) {
  Boot(2);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    // Page 1 is homed on rank 1; rank 1 writes it in place.
    std::vector<std::uint8_t> data(100, 0x42);
    Status w = co_await nodes_[1]->Write(mem::kPageSize + 10, data);
    CO_ASSERT_TRUE(w.ok());
    // Rank 0 reads it: one page fetch.
    std::vector<std::uint8_t> got(100);
    Status r = co_await nodes_[0]->Read(mem::kPageSize + 10, got);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(got, data);
    EXPECT_EQ(nodes_[0]->stats().page_fetches, 1u);
    // A second read hits the cache: no new fetch.
    Status r2 = co_await nodes_[0]->Read(mem::kPageSize + 50, got);
    CO_ASSERT_TRUE(r2.ok());
    EXPECT_EQ(nodes_[0]->stats().page_fetches, 1u);
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 500'000'000));
}

TEST_F(DsmTest, ReleasePropagatesWritesToNextAcquirer) {
  Boot(2);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    // Rank 0 updates a page homed on rank 1 under a lock.
    Status a = co_await nodes_[0]->Acquire(7);
    CO_ASSERT_TRUE(a.ok());
    std::vector<std::uint8_t> data(200);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(i * 3);
    }
    Status w = co_await nodes_[0]->Write(3 * mem::kPageSize + 7, data);
    CO_ASSERT_TRUE(w.ok());
    Status rel = co_await nodes_[0]->Release(7);
    CO_ASSERT_TRUE(rel.ok());
    EXPECT_GE(nodes_[0]->stats().write_backs, 1u);

    // Rank 1 (the home) sees it after acquiring.
    Status a1 = co_await nodes_[1]->Acquire(7);
    CO_ASSERT_TRUE(a1.ok());
    std::vector<std::uint8_t> got(200);
    Status r = co_await nodes_[1]->Read(3 * mem::kPageSize + 7, got);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(got, data);
    Status rel1 = co_await nodes_[1]->Release(7);
    CO_ASSERT_TRUE(rel1.ok());
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 500'000'000));
}

TEST_F(DsmTest, AcquireInvalidatesStaleCache) {
  Boot(3);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    // Rank 0 caches page 1 (homed on rank 1).
    std::vector<std::uint8_t> got(4);
    Status r0 = co_await nodes_[0]->Read(mem::kPageSize, got);
    CO_ASSERT_TRUE(r0.ok());
    EXPECT_EQ(got[0], 0);

    // Rank 2 updates the page under the lock.
    CO_ASSERT_TRUE((co_await nodes_[2]->Acquire(1)).ok());
    std::vector<std::uint8_t> update = {9, 9, 9, 9};
    CO_ASSERT_TRUE((co_await nodes_[2]->Write(mem::kPageSize, update)).ok());
    CO_ASSERT_TRUE((co_await nodes_[2]->Release(1)).ok());

    // Without a lock, rank 0 may still see its stale cache...
    Status stale = co_await nodes_[0]->Read(mem::kPageSize, got);
    CO_ASSERT_TRUE(stale.ok());
    // ...but after Acquire the cache is invalidated and refetched.
    CO_ASSERT_TRUE((co_await nodes_[0]->Acquire(1)).ok());
    Status fresh = co_await nodes_[0]->Read(mem::kPageSize, got);
    CO_ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(got, update);
    CO_ASSERT_TRUE((co_await nodes_[0]->Release(1)).ok());
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 500'000'000));
}

TEST_F(DsmTest, LocksExclude) {
  Boot(2);
  bool done0 = false, done1 = false;
  sim::Tick hold_end = 0;
  sim::Tick second_acquired = 0;
  auto holder = [&]() -> sim::Process {
    CO_ASSERT_TRUE((co_await nodes_[0]->Acquire(3)).ok());
    co_await sim_.Delay(5 * sim::kMillisecond);
    hold_end = sim_.now();
    CO_ASSERT_TRUE((co_await nodes_[0]->Release(3)).ok());
    done0 = true;
  };
  auto contender = [&]() -> sim::Process {
    co_await sim_.Delay(100'000);  // let the holder win
    CO_ASSERT_TRUE((co_await nodes_[1]->Acquire(3)).ok());
    second_acquired = sim_.now();
    CO_ASSERT_TRUE((co_await nodes_[1]->Release(3)).ok());
    done1 = true;
  };
  sim_.Spawn(holder());
  sim_.Spawn(contender());
  ASSERT_TRUE(sim_.RunUntil([&] { return done0 && done1; }, 1'000'000'000));
  EXPECT_GE(second_acquired, hold_end) << "mutual exclusion violated";
  EXPECT_GT(nodes_[1]->stats().lock_waits, 0u);
}

TEST_F(DsmTest, ParallelCounterUnderLockIsExact) {
  // The classic DSM smoke test: N ranks increment a shared counter under
  // a lock; the total must be exact.
  const int kNodes = 3;
  const int kIncrementsPerRank = 8;
  Boot(kNodes);
  int finished = 0;
  auto worker = [&](int r) -> sim::Process {
    for (int i = 0; i < kIncrementsPerRank; ++i) {
      CO_ASSERT_TRUE((co_await nodes_[static_cast<std::size_t>(r)]->Acquire(0)).ok());
      std::uint8_t word[4];
      CO_ASSERT_TRUE(
          (co_await nodes_[static_cast<std::size_t>(r)]->Read(0, word)).ok());
      std::uint32_t value = std::uint32_t{word[0]} | (std::uint32_t{word[1]} << 8) |
                            (std::uint32_t{word[2]} << 16) |
                            (std::uint32_t{word[3]} << 24);
      ++value;
      for (int b = 0; b < 4; ++b) word[b] = static_cast<std::uint8_t>(value >> (8 * b));
      CO_ASSERT_TRUE(
          (co_await nodes_[static_cast<std::size_t>(r)]->Write(0, word)).ok());
      CO_ASSERT_TRUE((co_await nodes_[static_cast<std::size_t>(r)]->Release(0)).ok());
    }
    ++finished;
  };
  for (int r = 0; r < kNodes; ++r) sim_.Spawn(worker(r));
  ASSERT_TRUE(sim_.RunUntil([&] { return finished == kNodes; }, 2'000'000'000));

  bool checked = false;
  auto check = [&]() -> sim::Process {
    CO_ASSERT_TRUE((co_await nodes_[1]->Acquire(0)).ok());
    std::uint8_t word[4];
    CO_ASSERT_TRUE((co_await nodes_[1]->Read(0, word)).ok());
    const std::uint32_t value = std::uint32_t{word[0]} | (std::uint32_t{word[1]} << 8) |
                                (std::uint32_t{word[2]} << 16) |
                                (std::uint32_t{word[3]} << 24);
    EXPECT_EQ(value, static_cast<std::uint32_t>(kNodes * kIncrementsPerRank));
    CO_ASSERT_TRUE((co_await nodes_[1]->Release(0)).ok());
    checked = true;
  };
  sim_.Spawn(check());
  ASSERT_TRUE(sim_.RunUntil([&] { return checked; }, 500'000'000));
}

TEST_F(DsmTest, OutOfRangeAccessRejected) {
  Boot(2, /*pages=*/4);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    std::uint8_t b[8];
    Status r = co_await nodes_[0]->Read(4 * mem::kPageSize, b);
    EXPECT_EQ(r.code(), ErrorCode::kOutOfRange);
    Status w = co_await nodes_[0]->Write(4 * mem::kPageSize - 4, b);  // spans out
    EXPECT_EQ(w.code(), ErrorCode::kOutOfRange);
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
}

}  // namespace
}  // namespace vmmc::dsm
