// Allocation and copy guards for the event-engine hot paths.
//
// This binary overrides the global operator new/delete with counting hooks
// and asserts the structural performance properties the engine promises:
//  * a warmed Simulator schedules and dispatches events with ZERO heap
//    allocations (node pool + InlineFn inline storage),
//  * coroutine resumption (the dominant event kind) is allocation-free,
//  * packet payloads are written once at the source and travel the fabric
//    by reference — the delivered bytes live at the same address they were
//    produced at — with copy-on-write kicking in exactly once when a fault
//    flips a bit,
//  * the LCP steady-state send path serves every payload from the Buffer
//    pool (no heap growth) and never deep-copies into the retx-pool.
//
// It lives in its own test binary because the operator new override is
// global to the process.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "co_test_util.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/buffer.h"
#include "vmmc/vmmc/cluster.h"

// --- Global allocation counter --------------------------------------------

namespace {
std::uint64_t g_new_calls = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_new_calls;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  ++g_new_calls;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vmmc {
namespace {

using myrinet::Fabric;
using myrinet::Packet;
using myrinet::TopologyPlan;
using sim::FaultPlan;
using sim::LinkFaultRule;
using sim::Simulator;
using sim::Tick;
using util::Buffer;

Buffer::PoolStats PoolDelta(const Buffer::PoolStats& before) {
  const Buffer::PoolStats& now = Buffer::pool_stats();
  Buffer::PoolStats d;
  d.allocs = now.allocs - before.allocs;
  d.pool_hits = now.pool_hits - before.pool_hits;
  d.heap_allocs = now.heap_allocs - before.heap_allocs;
  d.unshares = now.unshares - before.unshares;
  return d;
}

// --- Engine paths: strict zero-allocation ---------------------------------

TEST(PerfGuardTest, WarmedAtLoopIsAllocationFree) {
  Simulator sim;
  constexpr int kEvents = 20000;
  // Warm-up round populates the node pool (and any lazily-grown internal
  // storage); every node it used is on the free list afterwards.
  for (int i = 0; i < kEvents; ++i) sim.At(sim.now() + i, [] {});
  sim.Run();

  const std::uint64_t before = g_new_calls;
  for (int i = 0; i < kEvents; ++i) sim.At(sim.now() + i, [] {});
  sim.Run();
  EXPECT_EQ(g_new_calls - before, 0u)
      << "warmed At/dispatch loop must not touch the heap";
  EXPECT_EQ(sim.events_processed(), 2u * kEvents);
}

sim::Process DelayChain(Simulator& sim, int hops, int& done) {
  for (int i = 0; i < hops; ++i) co_await sim.Delay(1);
  done = 1;
}

TEST(PerfGuardTest, WarmedResumeChainIsAllocationFree) {
  Simulator sim;
  constexpr int kHops = 20000;
  int done = 0;
  sim.Spawn(DelayChain(sim, kHops, done));  // frame allocates here, once
  // Warm: run the first quarter of the chain, then measure the rest. Every
  // remaining event is a Simulator::Resume wake-up recycling one node.
  ASSERT_TRUE(
      sim.RunUntil([&] { return sim.events_processed() >= kHops / 4; }));

  const std::uint64_t before = g_new_calls;
  sim.RunUntil([&] { return done == 1; });
  EXPECT_EQ(g_new_calls - before, 0u)
      << "warmed coroutine resume path must not touch the heap";
  ASSERT_EQ(done, 1);
}

// --- Fabric: payloads travel by reference ---------------------------------

// Endpoint that records where each delivered payload's bytes live. Storage
// is reserved up front so recording never allocates during measurement.
class PtrSink : public myrinet::Endpoint {
 public:
  PtrSink() { ptrs_.reserve(128); }
  void OnPacket(Packet packet, Tick, myrinet::Link*) override {
    ptrs_.push_back(packet.payload.data());
    last_payload_ = std::move(packet.payload);
  }
  const std::vector<const std::uint8_t*>& ptrs() const { return ptrs_; }
  const Buffer& last_payload() const { return last_payload_; }

 private:
  std::vector<const std::uint8_t*> ptrs_;
  Buffer last_payload_;
};

struct ChainFixture {
  Simulator sim;
  Params params;
  Fabric fabric{sim, params.net};
  PtrSink a, b;
  int na = -1, nb = -1;
  myrinet::Route route;

  ChainFixture() {
    TopologyPlan plan =
        BuildSwitchChain(fabric, /*num_switches=*/3, /*per_switch=*/2);
    na = fabric.AddNic(&a);
    nb = fabric.AddNic(&b);
    // First slot on the first switch, last slot on the last switch: the
    // route traverses all three switches.
    const auto& first = plan.nic_slots.front();
    const auto& last = plan.nic_slots.back();
    EXPECT_TRUE(fabric.ConnectNic(na, first.switch_id, first.port).ok());
    EXPECT_TRUE(fabric.ConnectNic(nb, last.switch_id, last.port).ok());
    auto r = fabric.ComputeRoute(na, nb);
    EXPECT_TRUE(r.ok());
    route = r.value();
    EXPECT_EQ(route.size(), 3u);
  }

  Packet MakePacket(std::uint8_t fill) const {
    Packet p;
    p.route = route;
    p.payload.assign(1024, fill);
    p.StampCrc();
    return p;
  }
};

TEST(PerfGuardTest, FabricForwardingIsZeroCopyAcrossSwitchHops) {
  constexpr int kPackets = 32;
  ChainFixture fx;
  // Warm: node pool, switch port queues, payload pool. The payload pool
  // must hold kPackets blocks of the payload's size class, since the
  // measured packets are all built (and alive) before injection.
  {
    std::vector<Packet> warm_pool;
    // +2: the sink's last_payload_ keeps one block referenced across the
    // warm-up deliveries.
    for (int i = 0; i < kPackets + 2; ++i) warm_pool.push_back(fx.MakePacket(0));
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fx.fabric.Inject(fx.na, fx.MakePacket(0x11)).ok());
  }
  fx.sim.Run();
  ASSERT_EQ(fx.b.ptrs().size(), 8u);

  // Pre-build the measured packets (payload blocks come from the warmed
  // pool; route vectors allocate here, before the measurement window).
  std::vector<Packet> packets;
  packets.reserve(kPackets);
  std::vector<const std::uint8_t*> sources;
  sources.reserve(kPackets);
  const Buffer::PoolStats pool_before = Buffer::pool_stats();
  for (int i = 0; i < kPackets; ++i) {
    packets.push_back(fx.MakePacket(static_cast<std::uint8_t>(i)));
    sources.push_back(packets.back().payload.data());
  }
  EXPECT_EQ(PoolDelta(pool_before).heap_allocs, 0u)
      << "payloads must be served from the warmed pool";

  const std::uint64_t new_before = g_new_calls;
  const std::uint64_t events_before = fx.sim.events_processed();
  for (auto& p : packets) {
    ASSERT_TRUE(fx.fabric.Inject(fx.na, std::move(p)).ok());
  }
  fx.sim.Run();
  const std::uint64_t new_delta = g_new_calls - new_before;
  const std::uint64_t events_delta = fx.sim.events_processed() - events_before;

  ASSERT_EQ(fx.b.ptrs().size(), 8u + kPackets);
  // Zero-copy proof: the delivered bytes live exactly where the source
  // wrote them, after three switch traversals and four link transmissions.
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(fx.b.ptrs()[8 + static_cast<std::size_t>(i)],
              sources[static_cast<std::size_t>(i)])
        << "packet " << i << " was deep-copied in flight";
  }
  EXPECT_EQ(PoolDelta(pool_before).unshares, 0u);
  // The forwarding itself is allocation-free per event and per hop; the
  // only permitted churn is the switch port queues' std::deque chunk
  // management, amortized across many packets. Strictly below one
  // allocation per packet, let alone per hop or per event.
  EXPECT_LT(new_delta, static_cast<std::uint64_t>(kPackets) / 2)
      << "forwarding allocated on the per-packet path";
  EXPECT_GT(events_delta, static_cast<std::uint64_t>(kPackets) * 8)
      << "sanity: the run did real per-hop work";
}

TEST(PerfGuardTest, FaultBitflipCopiesOnWriteExactlyOnce) {
  ChainFixture fx;
  LinkFaultRule rule;
  rule.bitflip_rate = 1.0;  // flip a bit on every link transmission
  fx.sim.faults().Configure(FaultPlan::AllLinks(rule, /*seed=*/7));

  Packet p = fx.MakePacket(0x5A);
  const Buffer retained = p.payload;  // models the sender's retx-pool slot
  const Buffer::PoolStats before = Buffer::pool_stats();
  ASSERT_TRUE(fx.fabric.Inject(fx.na, std::move(p)).ok());
  fx.sim.Run();

  ASSERT_EQ(fx.b.ptrs().size(), 1u);
  // The first flip un-shares the in-flight payload from the retained
  // copy; the flips on the remaining links mutate the now-unique block in
  // place. Exactly one deep copy for four faulted link hops.
  EXPECT_EQ(PoolDelta(before).unshares, 1u);
  EXPECT_NE(fx.b.ptrs()[0], retained.data());
  EXPECT_FALSE(fx.b.last_payload() == retained)
      << "payload arrived unflipped despite bitflip_rate=1";
  // The retained copy is untouched — the property that keeps go-back-N
  // retransmissions correct under fault injection.
  for (std::size_t i = 0; i < retained.size(); ++i) {
    ASSERT_EQ(retained[i], 0x5A) << "retx copy corrupted at byte " << i;
  }
}

// --- LCP steady state: pooled payloads, no retx deep copies ----------------

TEST(PerfGuardTest, LcpSteadyStateServesPayloadsFromPool) {
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());

  constexpr std::uint32_t kLen = 4096;
  constexpr int kWarm = 16;
  constexpr int kMeasured = 16;
  Buffer::PoolStats warmed{};
  int sent = 0;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(64 * 1024);
    CO_ASSERT_TRUE(buf.ok());
    vmmc_core::ExportOptions opts;
    opts.name = "guard";
    auto id =
        co_await recv.value()->ExportBuffer(buf.value(), 64 * 1024, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    vmmc_core::ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "guard", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = send.value()->AllocBuffer(kLen);
    CO_ASSERT_TRUE(src.ok());
    std::vector<std::uint8_t> payload(kLen, 0xA5);
    CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
    for (int i = 0; i < kWarm + kMeasured; ++i) {
      if (i == kWarm) warmed = Buffer::pool_stats();
      Status s = co_await send.value()->SendMsg(src.value(),
                                                imp.value().proxy_base, kLen);
      CO_ASSERT_TRUE(s.ok());
      ++sent;
    }
    done = true;
  };
  sim.Spawn(prog());
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 2'000'000'000));
  ASSERT_EQ(sent, kWarm + kMeasured);

  const Buffer::PoolStats d = PoolDelta(warmed);
  // Steady state: every chunk payload, ACK and short-send frame is served
  // from the warmed size-class pool...
  EXPECT_GT(d.allocs, static_cast<std::uint64_t>(kMeasured));
  EXPECT_EQ(d.heap_allocs, 0u) << "steady-state send path grew the heap";
  // ...and nothing deep-copies: hand-offs into the retx-pool and across
  // hops are ref bumps (no faults are configured, so no COW either).
  EXPECT_EQ(d.unshares, 0u) << "steady-state send path deep-copied a payload";
}

// --- Registration cache: warm hit/release path is allocation-free ----------

TEST(PerfGuardTest, RegCacheWarmHitAndReleaseAreAllocationFree) {
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  auto ep = cluster.OpenEndpoint(0, "rc");
  ASSERT_TRUE(ep.ok());
  vmmc_core::RegCache& rc = ep.value()->reg_cache();

  auto va = ep.value()->AllocBuffer(64 * 1024);
  ASSERT_TRUE(va.ok());
  // Warm: the cold miss allocates the entry, its frame vector and the map
  // slots; afterwards the registration sits idle in the cache.
  auto cold = rc.Acquire(va.value(), 64 * 1024, vmmc_core::RegIntent::kRecv);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(rc.Release(cold.value().region.cache_id).ok());

  const std::uint64_t before = g_new_calls;
  for (int i = 0; i < 1000; ++i) {
    auto warm = rc.Acquire(va.value(), 64 * 1024, vmmc_core::RegIntent::kRecv);
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm.value().hit);
    ASSERT_TRUE(rc.Release(warm.value().region.cache_id).ok());
  }
  // The property reg_cache.h promises: the hit and release paths are
  // allocation-free (hash probe + intrusive LRU splice), so steady-state
  // rendezvous transfers do zero pin work and zero heap work.
  EXPECT_EQ(g_new_calls - before, 0u)
      << "warm Acquire/Release must not touch the heap";
  EXPECT_EQ(rc.hits(), 1000u);
}

}  // namespace
}  // namespace vmmc
