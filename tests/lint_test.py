#!/usr/bin/env python3
"""Self-tests for tools/vmmc-lint: every rule R1–R5 must fire on its
known-bad fixture at exactly the marked (line, rule) positions, and stay
silent on its known-good twin.

Fixtures live in tests/lint_fixtures/. Expected findings are `EXPECT-LINT:
R<n>` markers: a trailing marker expects a finding on its own line; a
marker on a standalone comment line expects a finding on the next code
line (several stacked markers expect that many findings there).

Run directly (`python3 tests/lint_test.py`) or via ctest (`ctest -R lint`).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
LINT = os.path.join(ROOT, "tools", "vmmc-lint", "vmmc_lint.py")
FIXTURES = os.path.join(HERE, "lint_fixtures")

MARKER_RE = re.compile(r"//\s*EXPECT-LINT:\s*(R\d)\b")
FINDING_RE = re.compile(r"^(.*?):(\d+):(\d+):\s+(R\d)\[")

# fixture -> (scope, rules) the linter is invoked with. Rules are isolated
# per fixture so e.g. the R4 fixture's std::vector never trips R2's decl
# scan, and scope is forced because fixtures live under tests/ (outside the
# sim/hot directory scopes the real gate applies).
CASES = {
    "r1_bad.cpp": ("all", "R1"),
    "r1_good.cpp": ("all", "R1"),
    "r1_pr9_repro.cpp": ("all", "R1"),
    "r2_bad.cpp": ("sim", "R2"),
    "r2_good.cpp": ("sim", "R2"),
    "r3_bad.cpp": ("sim", "R3"),
    "r3_good.cpp": ("sim", "R3"),
    "r4_bad.cpp": ("hot", "R4"),
    "r4_good.cpp": ("hot", "R4"),
    "r5_bad.cpp": ("sim", "R5"),
    "r5_good.cpp": ("sim", "R5"),
}


def expected_findings(path: str) -> list[tuple[int, str]]:
    """(line, rule) pairs from EXPECT-LINT markers, with multiplicity."""
    lines = open(path, encoding="utf-8").read().splitlines()
    out: list[tuple[int, str]] = []
    pending: list[str] = []  # markers on standalone comment lines
    for idx, line in enumerate(lines, start=1):
        markers = MARKER_RE.findall(line)
        stripped = line.strip()
        if stripped.startswith("//"):
            pending.extend(markers)
            continue
        if stripped:  # code line: attach pending + trailing markers
            for rule in pending:
                out.append((idx, rule))
            pending = []
            for rule in markers:
                out.append((idx, rule))
        # blank lines don't discharge pending markers
    return sorted(out)


def run_lint(path: str, scope: str, rules: str) -> tuple[int, list[tuple[int, str]]]:
    proc = subprocess.run(
        [sys.executable, LINT, "--backend", "regex", "--scope", scope,
         "--rules", rules, "--root", ROOT, path],
        capture_output=True, text=True)
    found: list[tuple[int, str]] = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.append((int(m.group(2)), m.group(4)))
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"vmmc-lint crashed on {path} (exit {proc.returncode}):\n"
            f"{proc.stdout}{proc.stderr}")
    return proc.returncode, sorted(found)


def main() -> int:
    failures = []
    ran = 0
    for fixture, (scope, rules) in sorted(CASES.items()):
        path = os.path.join(FIXTURES, fixture)
        if not os.path.exists(path):
            failures.append(f"{fixture}: fixture file missing")
            continue
        want = expected_findings(path)
        exit_code, got = run_lint(path, scope, rules)
        ran += 1
        if got != want:
            failures.append(
                f"{fixture}: findings mismatch\n"
                f"  expected: {want}\n"
                f"  got:      {got}")
            continue
        want_exit = 1 if want else 0
        if exit_code != want_exit:
            failures.append(
                f"{fixture}: exit code {exit_code}, expected {want_exit}")
            continue
        kind = f"{len(want)} finding(s)" if want else "clean"
        print(f"ok   {fixture:<22} [{rules} scope={scope}] {kind}")

    # The allowlist mechanism itself: a bare allow() without justification
    # must be reported as R0.
    bare = os.path.join(FIXTURES, "r2_good.cpp")
    _, _ = run_lint(bare, "sim", "R2")  # sanity: must not crash

    if failures:
        print(f"\n{len(failures)} FAILURE(S):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {ran} lint fixtures behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
