// Direct tests for the stats.h helpers, including the edge cases the
// observability layer leans on: empty-histogram quantiles, quantiles that
// skip empty buckets, and single-sample variance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "vmmc/util/stats.h"

namespace vmmc {
namespace {

TEST(OnlineStatsTest, EmptyIsAllZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  // Bessel correction would divide by zero: must report 0, not NaN/inf.
  EXPECT_EQ(s.sample_variance(), 0.0);
}

TEST(OnlineStatsTest, PopulationAndSampleVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);            // /n
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);  // /(n-1)
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, VarianceNeverGoesNegative) {
  // Many identical values provoke floating-point cancellation in m2.
  OnlineStats s;
  for (int i = 0; i < 10000; ++i) s.Add(0.1);
  EXPECT_GE(s.variance(), 0.0);
  EXPECT_GE(s.sample_variance(), 0.0);
  EXPECT_FALSE(std::isnan(s.stddev()));
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileSkipsEmptyBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  // Every sample sits in the (10, 100] bucket; quantiles must never report
  // the empty low buckets.
  for (int i = 0; i < 10; ++i) h.Add(50.0);
  EXPECT_GE(h.Quantile(0.0), 10.0);
  EXPECT_GE(h.Quantile(0.01), 10.0);
  EXPECT_LE(h.Quantile(1.0), 100.0);
}

TEST(HistogramTest, QuantileIsMonotonicAndHandlesBadQ) {
  Histogram h({1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i % 16));
  double prev = h.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // Out-of-range and NaN q are clamped, not UB.
  EXPECT_EQ(h.Quantile(-1.0), h.Quantile(0.0));
  EXPECT_EQ(h.Quantile(2.0), h.Quantile(1.0));
  EXPECT_EQ(h.Quantile(std::numeric_limits<double>::quiet_NaN()),
            h.Quantile(0.0));
}

TEST(HistogramTest, OverflowBucketCatchesLargeSamples) {
  Histogram h({1.0, 10.0});
  h.Add(1000.0);
  h.Add(2000.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);  // past the last bound
  // The overflow bucket has no upper bound; the estimate must still be a
  // finite value at or above the last bound.
  EXPECT_GE(h.Quantile(0.5), 10.0);
  EXPECT_FALSE(std::isinf(h.Quantile(1.0)));
}

TEST(TableTest, RendersAlignedRowsWithRule) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(FormatTest, FormatDoubleAndSize) {
  EXPECT_EQ(FormatDouble(9.8, 2), "9.80");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatSize(4), "4");
  EXPECT_EQ(FormatSize(1024), "1K");
  EXPECT_EQ(FormatSize(64 * 1024), "64K");
  EXPECT_EQ(FormatSize(1 << 20), "1M");
  EXPECT_EQ(FormatSize(1000), "1000");  // not a multiple of 1K
}

}  // namespace
}  // namespace vmmc
