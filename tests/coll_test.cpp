// Tests for the collectives library built on VMMC: point-to-point links,
// barrier, broadcast, gather, all-reduce (ring and fallback paths).
#include <gtest/gtest.h>

#include <numeric>

#include "co_test_util.h"
#include "vmmc/coll/communicator.h"

namespace vmmc::coll {
namespace {

using vmmc_core::Cluster;
using vmmc_core::ClusterOptions;

class CollTest : public ::testing::Test {
 protected:
  void Boot(int nodes) {
    ClusterOptions options;
    options.num_nodes = nodes;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
  }

  // Creates one communicator per rank (spawned concurrently, as real ranks
  // would start).
  void CreateWorld(int size) {
    comms_.resize(static_cast<std::size_t>(size));
    int created = 0;
    // NOTE: rank is a coroutine *parameter* (copied into the frame); the
    // lambda object itself must outlive all spawned coroutines.
    auto create = [this, size, &created](int r) -> sim::Process {
      auto c = co_await Communicator::Create(*cluster_, r, size);
      CO_ASSERT_TRUE(c.ok());
      comms_[static_cast<std::size_t>(r)] = std::move(c).value();
      ++created;
    };
    for (int r = 0; r < size; ++r) sim_.Spawn(create(r));
    ASSERT_TRUE(sim_.RunUntil([&] { return created == size; }, 200'000'000));
  }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<std::unique_ptr<Communicator>> comms_;
};

TEST_F(CollTest, PointToPointRoundTrip) {
  Boot(2);
  CreateWorld(2);
  bool done = false;
  auto rank0 = [&]() -> sim::Process {
    std::vector<std::uint8_t> msg = {1, 2, 3};
    Status s = co_await comms_[0]->SendTo(1, msg);
    CO_ASSERT_TRUE(s.ok());
    auto r = co_await comms_[0]->RecvFrom(1);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), (std::vector<std::uint8_t>{4, 5, 6, 7}));
    done = true;
  };
  auto rank1 = [&]() -> sim::Process {
    auto r = co_await comms_[1]->RecvFrom(0);
    CO_ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), (std::vector<std::uint8_t>{1, 2, 3}));
    std::vector<std::uint8_t> reply = {4, 5, 6, 7};
    Status s = co_await comms_[1]->SendTo(0, reply);
    CO_ASSERT_TRUE(s.ok());
  };
  sim_.Spawn(rank0());
  sim_.Spawn(rank1());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
}

TEST_F(CollTest, BackToBackMessagesRespectCredits) {
  Boot(2);
  CreateWorld(2);
  bool done = false;
  const int kMsgs = 20;
  auto sender = [&]() -> sim::Process {
    for (int i = 0; i < kMsgs; ++i) {
      std::vector<std::uint8_t> msg(100, static_cast<std::uint8_t>(i));
      Status s = co_await comms_[0]->SendTo(1, msg);
      CO_ASSERT_TRUE(s.ok());
    }
  };
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < kMsgs; ++i) {
      auto r = co_await comms_[1]->RecvFrom(0);
      CO_ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value()[0], static_cast<std::uint8_t>(i)) << "order violated";
    }
    done = true;
  };
  sim_.Spawn(sender());
  sim_.Spawn(receiver());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 200'000'000));
}

class CollSizeTest : public CollTest, public ::testing::WithParamInterface<int> {};

TEST_P(CollSizeTest, BarrierSynchronizesAllRanks) {
  const int size = GetParam();
  Boot(size);
  CreateWorld(size);
  std::vector<sim::Tick> exit_times(static_cast<std::size_t>(size), 0);
  std::vector<sim::Tick> entry_times(static_cast<std::size_t>(size), 0);
  int done = 0;
  auto prog = [&](int r) -> sim::Process {
    // Stagger entries to make the synchronization observable.
    co_await sim_.Delay(static_cast<sim::Tick>(r) * 300'000);
    entry_times[static_cast<std::size_t>(r)] = sim_.now();
    Status s = co_await comms_[static_cast<std::size_t>(r)]->Barrier();
    CO_ASSERT_TRUE(s.ok());
    exit_times[static_cast<std::size_t>(r)] = sim_.now();
    ++done;
  };
  for (int r = 0; r < size; ++r) sim_.Spawn(prog(r));
  ASSERT_TRUE(sim_.RunUntil([&] { return done == size; }, 500'000'000));
  // No rank may leave the barrier before the last rank entered it.
  const sim::Tick last_entry = *std::max_element(entry_times.begin(), entry_times.end());
  for (int r = 0; r < size; ++r) {
    EXPECT_GE(exit_times[static_cast<std::size_t>(r)], last_entry) << "rank " << r;
  }
}

TEST_P(CollSizeTest, BroadcastFromEveryRoot) {
  const int size = GetParam();
  Boot(size);
  CreateWorld(size);
  for (int root = 0; root < size; ++root) {
    std::vector<std::uint8_t> payload(10'000);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7 + static_cast<std::size_t>(root));
    }
    int done = 0;
    std::vector<std::vector<std::uint8_t>> got(static_cast<std::size_t>(size));
    auto prog = [&](int r) -> sim::Process {
      std::vector<std::uint8_t>& mine = got[static_cast<std::size_t>(r)];
      if (r == root) mine = payload;
      Status s = co_await comms_[static_cast<std::size_t>(r)]->Broadcast(root, mine);
      CO_ASSERT_TRUE(s.ok());
      ++done;
    };
    for (int r = 0; r < size; ++r) sim_.Spawn(prog(r));
    ASSERT_TRUE(sim_.RunUntil([&] { return done == size; }, 500'000'000));
    for (int r = 0; r < size; ++r) {
      EXPECT_EQ(got[static_cast<std::size_t>(r)], payload)
          << "rank " << r << " root " << root;
    }
  }
}

TEST_P(CollSizeTest, AllReduceSumRingPath) {
  const int size = GetParam();
  Boot(size);
  CreateWorld(size);
  // Divisible by any size we test: the ring path.
  const std::size_t n = 24 * 35;  // divisible by 2..8
  int done = 0;
  std::vector<std::vector<std::int64_t>> vals(static_cast<std::size_t>(size));
  auto prog = [&](int r) -> sim::Process {
    Status s = co_await comms_[static_cast<std::size_t>(r)]->AllReduceSum(
        vals[static_cast<std::size_t>(r)]);
    CO_ASSERT_TRUE(s.ok());
    ++done;
  };
  for (int r = 0; r < size; ++r) {
    auto& v = vals[static_cast<std::size_t>(r)];
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      v[i] = static_cast<std::int64_t>(i) * (r + 1);
    }
    sim_.Spawn(prog(r));
  }
  ASSERT_TRUE(sim_.RunUntil([&] { return done == size; }, 500'000'000));
  // Expected: sum over r of i*(r+1) = i * size*(size+1)/2.
  const std::int64_t factor = static_cast<std::int64_t>(size) * (size + 1) / 2;
  for (int r = 0; r < size; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(vals[static_cast<std::size_t>(r)][i],
                static_cast<std::int64_t>(i) * factor)
          << "rank " << r << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollSizeTest, ::testing::Values(2, 3, 5, 8));

TEST_F(CollTest, AllReduceFallbackForIndivisibleSizes) {
  Boot(3);
  CreateWorld(3);
  const std::size_t n = 7;  // not divisible by 3: gather+broadcast path
  int done = 0;
  std::vector<std::vector<std::int64_t>> vals(3);
  auto prog = [&](int r) -> sim::Process {
    Status s = co_await comms_[static_cast<std::size_t>(r)]->AllReduceSum(
        vals[static_cast<std::size_t>(r)]);
    CO_ASSERT_TRUE(s.ok());
    ++done;
  };
  for (int r = 0; r < 3; ++r) {
    vals[static_cast<std::size_t>(r)].assign(n, r + 1);
    sim_.Spawn(prog(r));
  }
  ASSERT_TRUE(sim_.RunUntil([&] { return done == 3; }, 500'000'000));
  for (int r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(vals[static_cast<std::size_t>(r)][i], 6);  // 1+2+3
    }
  }
}

TEST_F(CollTest, GatherConcatenatesInRankOrder) {
  Boot(4);
  CreateWorld(4);
  int done = 0;
  std::vector<std::uint8_t> all;
  auto prog = [&](int r) -> sim::Process {
    std::vector<std::uint8_t> mine(3, static_cast<std::uint8_t>('A' + r));
    Status s = co_await comms_[static_cast<std::size_t>(r)]->Gather(
        2, mine, r == 2 ? &all : nullptr);
    CO_ASSERT_TRUE(s.ok());
    ++done;
  };
  for (int r = 0; r < 4; ++r) sim_.Spawn(prog(r));
  ASSERT_TRUE(sim_.RunUntil([&] { return done == 4; }, 500'000'000));
  EXPECT_EQ(std::string(all.begin(), all.end()), "AAABBBCCCDDD");
}

TEST_F(CollTest, ErrorsOnBadArguments) {
  Boot(2);
  CreateWorld(2);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    std::vector<std::uint8_t> tiny = {1};
    Status s1 = co_await comms_[0]->SendTo(5, tiny);
    EXPECT_EQ(s1.code(), ErrorCode::kInvalidArgument);
    std::vector<std::uint8_t> huge(Communicator::kMaxMessage + 1);
    Status s2 = co_await comms_[0]->SendTo(1, huge);
    EXPECT_EQ(s2.code(), ErrorCode::kInvalidArgument);
    std::vector<std::uint8_t> data;
    Status s3 = co_await comms_[0]->Broadcast(9, data);
    EXPECT_EQ(s3.code(), ErrorCode::kInvalidArgument);
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
}

}  // namespace
}  // namespace vmmc::coll
