// Collectives at multi-switch scale: the paper's 4-node testbed grown to
// 8-16 nodes on ring and fat-tree fabrics. Verifies the whole stack —
// boot-time network mapping over multi-hop routes, lazy link setup, the
// ring allreduce — and that a run is bitwise deterministic (same seed =>
// identical simulated end time and fabric counters).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "co_test_util.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/myrinet/topology.h"

namespace vmmc::coll {
namespace {

using vmmc_core::Cluster;
using vmmc_core::ClusterOptions;

struct RunResult {
  sim::Tick end_time = 0;
  std::uint64_t events = 0;
  std::uint64_t link_packets = 0;
  sim::Tick queue_wait = 0;
  std::uint64_t hol_stalls = 0;
  std::vector<std::int64_t> values;

  bool operator==(const RunResult&) const = default;
};

// Boots `options`, creates one lazy-link communicator per rank, runs one
// allreduce over an n-element int64 vector (the algorithm follows from
// the vector size — see Communicator::SelectAllReduce; indivisible or
// oversized n exercises the fallbacks), and fingerprints the run.
RunResult RunAllReduce(const ClusterOptions& options, std::size_t n) {
  RunResult out;
  sim::Simulator sim;
  Params params;
  Cluster cluster(sim, params, options);
  EXPECT_TRUE(cluster.Boot().ok());
  const int size = options.num_nodes;

  std::vector<std::unique_ptr<Communicator>> comms(
      static_cast<std::size_t>(size));
  int created = 0;
  auto create = [&cluster, &comms, &created, size](int r) -> sim::Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(cluster, r, size, "world", copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(create(r));
  EXPECT_TRUE(sim.RunUntil([&] { return created == size; }, 10'000'000'000ll));

  int finished = 0;
  std::vector<std::int64_t> rank0;  // rank 0's result, for verification
  auto run = [&comms, &finished, &rank0, n, size](int r) -> sim::Process {
    std::vector<std::int64_t> values(n);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<std::int64_t>(i % 7) + r;
    }
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    if (r == 0) rank0 = std::move(values);
    ++finished;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(run(r));
  EXPECT_TRUE(sim.RunUntil([&] { return finished == size; }, 60'000'000'000ll));

  out.end_time = sim.now();
  out.events = sim.events_processed();
  out.link_packets = cluster.fabric().total_link_packets();
  out.queue_wait = cluster.fabric().total_queue_wait();
  out.hol_stalls = cluster.fabric().total_hol_stalls();
  out.values = std::move(rank0);
  return out;
}

// The allreduce of values[i] = (i % 7) + r over ranks r = 0..size-1.
std::vector<std::int64_t> ExpectedSum(int size, std::size_t n) {
  // Sum over r of ((i % 7) + r) = size * (i % 7) + size*(size-1)/2.
  const std::int64_t rank_part =
      static_cast<std::int64_t>(size) * (size - 1) / 2;
  std::vector<std::int64_t> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = static_cast<std::int64_t>(size) *
                  static_cast<std::int64_t>(i % 7) +
              rank_part;
  }
  return want;
}

TEST(CollScaleTest, SixteenNodeFatTreeRingAllReduce) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  const RunResult r = RunAllReduce(options.value(), 512);
  EXPECT_EQ(r.values, ExpectedSum(16, 512));
  EXPECT_GT(r.link_packets, 0u);
  // Exact event-count golden: the three-tier queue must dispatch the
  // byte-identical schedule the pre-rework priority queue did. Any change
  // in event order, count or timing shows up here immediately. (Update
  // only for deliberate model changes, together with EXPERIMENTS.md.)
  EXPECT_EQ(r.events, 559940u);
  EXPECT_EQ(r.end_time, 18021144);
  EXPECT_EQ(r.link_packets, 7415u);
}

TEST(CollScaleTest, EightNodeRingAllReduce) {
  auto options = ClusterOptions::FromSpec("ring:8@4");
  ASSERT_TRUE(options.ok());
  // 512 int64 = 4 KB: above the eager crossover, so this stays on the
  // bandwidth-bound ring algorithm.
  const RunResult r = RunAllReduce(options.value(), 512);
  EXPECT_EQ(r.values, ExpectedSum(8, 512));
  // Exact event-count golden (see the fat-tree test above).
  EXPECT_EQ(r.events, 148457u);
  EXPECT_EQ(r.end_time, 9268151);
}

TEST(CollScaleTest, FatTreeRunsAreDeterministic) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  const RunResult a = RunAllReduce(options.value(), 512);
  const RunResult b = RunAllReduce(options.value(), 512);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_TRUE(a == b) << "same seed must reproduce times and counters";
}

TEST(CollScaleTest, RingRunsAreDeterministic) {
  auto options = ClusterOptions::FromSpec("ring:8@4");
  ASSERT_TRUE(options.ok());
  const RunResult a = RunAllReduce(options.value(), 256);
  const RunResult b = RunAllReduce(options.value(), 256);
  EXPECT_TRUE(a == b);
}

TEST(CollScaleTest, LazyLinksOnlyTouchRingNeighbours) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  sim::Simulator sim;
  Params params;
  Cluster cluster(sim, params, options.value());
  ASSERT_TRUE(cluster.Boot().ok());

  std::vector<std::unique_ptr<Communicator>> comms(16);
  int created = 0;
  auto create = [&](int r) -> sim::Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(cluster, r, 16, "world", copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < 16; ++r) sim.Spawn(create(r));
  ASSERT_TRUE(sim.RunUntil([&] { return created == 16; }, 10'000'000'000ll));
  for (const auto& c : comms) EXPECT_EQ(c->links_established(), 0);

  int finished = 0;
  auto run = [&](int r) -> sim::Process {
    // 1024 * 8 bytes: large enough for the ring algorithm.
    std::vector<std::int64_t> values(1024, r);
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    ++finished;
  };
  for (int r = 0; r < 16; ++r) sim.Spawn(run(r));
  ASSERT_TRUE(sim.RunUntil([&] { return finished == 16; }, 60'000'000'000ll));
  // A ring allreduce touches exactly the two neighbours, not all 15 peers.
  for (const auto& c : comms) EXPECT_EQ(c->links_established(), 2);

  // A small allreduce on the same communicators switches to recursive
  // doubling: partners r^1, r^2, r^4, r^8. r^1 is always a ring
  // neighbour, so exactly three channels are added on top of the two
  // ring links.
  finished = 0;
  auto run_small = [&](int r) -> sim::Process {
    std::vector<std::int64_t> values(16, r);
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    ++finished;
  };
  for (int r = 0; r < 16; ++r) sim.Spawn(run_small(r));
  ASSERT_TRUE(sim.RunUntil([&] { return finished == 16; }, 60'000'000'000ll));
  for (const auto& c : comms) EXPECT_EQ(c->links_established(), 5);
}

using Algo = Communicator::AllReduceAlgo;

// SelectAllReduce is a pure function of vector size, world size and the
// eager threshold; pin the whole decision table down on one cluster.
TEST(CollScaleTest, AlgorithmSelectionFollowsSizeAndShape) {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 4;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  // The boundary element count: one eager message of int64.
  const std::size_t small = params.vmmc.p2p.eager_max / 8;

  // Worlds of size 4 (power of two), 3 (not) and 1, under separate tags.
  std::vector<std::unique_ptr<Communicator>> four(4), three(3), one(1);
  int created = 0;
  auto create = [&](std::vector<std::unique_ptr<Communicator>>& comms,
                    std::string tag, int r) -> sim::Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(
        cluster, r, static_cast<int>(comms.size()), std::move(tag), copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < 4; ++r) sim.Spawn(create(four, "w4", r));
  for (int r = 0; r < 3; ++r) sim.Spawn(create(three, "w3", r));
  sim.Spawn(create(one, "w1", 0));
  ASSERT_TRUE(sim.RunUntil([&] { return created == 8; }, 10'000'000'000ll));

  // A lone rank never communicates, whatever the size.
  EXPECT_EQ(one[0]->SelectAllReduce(1), Algo::kSingle);
  EXPECT_EQ(one[0]->SelectAllReduce(1 << 20), Algo::kSingle);

  // At or under one eager message: latency-bound, log-round algorithms —
  // recursive doubling on power-of-two worlds, binomial tree otherwise.
  EXPECT_EQ(four[0]->SelectAllReduce(1), Algo::kRecursiveDoubling);
  EXPECT_EQ(four[0]->SelectAllReduce(small), Algo::kRecursiveDoubling);
  EXPECT_EQ(three[0]->SelectAllReduce(small), Algo::kBinomialTree);

  // One element past the threshold: bandwidth-bound. The ring needs the
  // count divisible by the world size with chunks that fit one message.
  EXPECT_EQ(four[0]->SelectAllReduce(small + 8), Algo::kRing);  // 64 | 4
  EXPECT_EQ(four[0]->SelectAllReduce(small + 1), Algo::kGatherBroadcast);
  EXPECT_EQ(three[0]->SelectAllReduce(900), Algo::kRing);
  EXPECT_EQ(three[0]->SelectAllReduce(901), Algo::kGatherBroadcast);
  // Divisible, but the per-rank chunk would exceed kMaxMessage.
  const std::size_t chunk_limit = Communicator::kMaxMessage / 8;  // elements
  EXPECT_EQ(four[0]->SelectAllReduce(4 * chunk_limit), Algo::kRing);
  EXPECT_EQ(four[0]->SelectAllReduce(4 * (chunk_limit + 1)),
            Algo::kGatherBroadcast);
}

TEST(CollScaleTest, SixteenNodeIndivisibleFallsBackToGatherBroadcast) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  // 520 int64 = 4160 bytes, not divisible by 16: the ring is out, the
  // gather+broadcast fallback must still produce the exact sums.
  const RunResult r = RunAllReduce(options.value(), 520);
  EXPECT_EQ(r.values, ExpectedSum(16, 520));
  EXPECT_GT(r.link_packets, 0u);
}

TEST(CollScaleTest, SixtyFourNodeIndivisibleAllReduce) {
  auto options = ClusterOptions::FromSpec("fattree:64@16");
  ASSERT_TRUE(options.ok());
  // 67 elements: above the eager threshold and coprime with 64, so this
  // lands on gather+broadcast at the full 64-node scale.
  const RunResult r = RunAllReduce(options.value(), 67);
  EXPECT_EQ(r.values, ExpectedSum(64, 67));
}

TEST(CollScaleTest, NonPowerOfTwoWorldSmallVectorUsesBinomialTree) {
  auto options = ClusterOptions::FromSpec("ring:6@4");
  ASSERT_TRUE(options.ok());
  // 8 int64 = 64 bytes on a 6-rank world: small but not power-of-two, so
  // recursive doubling is out and the binomial tree handles it.
  const RunResult r = RunAllReduce(options.value(), 8);
  EXPECT_EQ(r.values, ExpectedSum(6, 8));
}

}  // namespace
}  // namespace vmmc::coll
