// Collectives at multi-switch scale: the paper's 4-node testbed grown to
// 8-16 nodes on ring and fat-tree fabrics. Verifies the whole stack —
// boot-time network mapping over multi-hop routes, lazy link setup, the
// ring allreduce — and that a run is bitwise deterministic (same seed =>
// identical simulated end time and fabric counters).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "co_test_util.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/myrinet/topology.h"

namespace vmmc::coll {
namespace {

using vmmc_core::Cluster;
using vmmc_core::ClusterOptions;

struct RunResult {
  sim::Tick end_time = 0;
  std::uint64_t events = 0;
  std::uint64_t link_packets = 0;
  sim::Tick queue_wait = 0;
  std::uint64_t hol_stalls = 0;
  std::vector<std::int64_t> values;

  bool operator==(const RunResult&) const = default;
};

// Boots `options`, creates one lazy-link communicator per rank, runs one
// ring allreduce over `elems` int64 per rank, and fingerprints the run.
RunResult RunAllReduce(const ClusterOptions& options, std::size_t elems) {
  RunResult out;
  sim::Simulator sim;
  Params params;
  Cluster cluster(sim, params, options);
  EXPECT_TRUE(cluster.Boot().ok());
  const int size = options.num_nodes;

  std::vector<std::unique_ptr<Communicator>> comms(
      static_cast<std::size_t>(size));
  int created = 0;
  auto create = [&cluster, &comms, &created, size](int r) -> sim::Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(cluster, r, size, "world", copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(create(r));
  EXPECT_TRUE(sim.RunUntil([&] { return created == size; }, 10'000'000'000ll));

  int finished = 0;
  std::vector<std::int64_t> rank0;  // rank 0's result, for verification
  auto run = [&comms, &finished, &rank0, elems, size](int r) -> sim::Process {
    std::vector<std::int64_t> values(elems * static_cast<std::size_t>(size));
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<std::int64_t>(i % 7) + r;
    }
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    if (r == 0) rank0 = std::move(values);
    ++finished;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(run(r));
  EXPECT_TRUE(sim.RunUntil([&] { return finished == size; }, 60'000'000'000ll));

  out.end_time = sim.now();
  out.events = sim.events_processed();
  out.link_packets = cluster.fabric().total_link_packets();
  out.queue_wait = cluster.fabric().total_queue_wait();
  out.hol_stalls = cluster.fabric().total_hol_stalls();
  out.values = std::move(rank0);
  return out;
}

// The allreduce of values[i] = (i % 7) + r over ranks r = 0..size-1.
std::vector<std::int64_t> ExpectedSum(int size, std::size_t elems) {
  const std::size_t n = elems * static_cast<std::size_t>(size);
  // Sum over r of ((i % 7) + r) = size * (i % 7) + size*(size-1)/2.
  const std::int64_t rank_part =
      static_cast<std::int64_t>(size) * (size - 1) / 2;
  std::vector<std::int64_t> want(n);
  for (std::size_t i = 0; i < n; ++i) {
    want[i] = static_cast<std::int64_t>(size) *
                  static_cast<std::int64_t>(i % 7) +
              rank_part;
  }
  return want;
}

TEST(CollScaleTest, SixteenNodeFatTreeRingAllReduce) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  const RunResult r = RunAllReduce(options.value(), 32);
  EXPECT_EQ(r.values, ExpectedSum(16, 32));
  EXPECT_GT(r.link_packets, 0u);
  // Exact event-count golden: the three-tier queue must dispatch the
  // byte-identical schedule the pre-rework priority queue did. Any change
  // in event order, count or timing shows up here immediately. (Update
  // only for deliberate model changes, together with EXPERIMENTS.md.)
  EXPECT_EQ(r.events, 657214u);
  EXPECT_EQ(r.end_time, 21279930);
  EXPECT_EQ(r.link_packets, 7064u);
}

TEST(CollScaleTest, EightNodeRingAllReduce) {
  auto options = ClusterOptions::FromSpec("ring:8@4");
  ASSERT_TRUE(options.ok());
  const RunResult r = RunAllReduce(options.value(), 32);
  EXPECT_EQ(r.values, ExpectedSum(8, 32));
  // Exact event-count golden (see the fat-tree test above).
  EXPECT_EQ(r.events, 163871u);
  EXPECT_EQ(r.end_time, 10696393);
}

TEST(CollScaleTest, FatTreeRunsAreDeterministic) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  const RunResult a = RunAllReduce(options.value(), 32);
  const RunResult b = RunAllReduce(options.value(), 32);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_TRUE(a == b) << "same seed must reproduce times and counters";
}

TEST(CollScaleTest, RingRunsAreDeterministic) {
  auto options = ClusterOptions::FromSpec("ring:8@4");
  ASSERT_TRUE(options.ok());
  const RunResult a = RunAllReduce(options.value(), 32);
  const RunResult b = RunAllReduce(options.value(), 32);
  EXPECT_TRUE(a == b);
}

TEST(CollScaleTest, LazyLinksOnlyTouchRingNeighbours) {
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  ASSERT_TRUE(options.ok());
  sim::Simulator sim;
  Params params;
  Cluster cluster(sim, params, options.value());
  ASSERT_TRUE(cluster.Boot().ok());

  std::vector<std::unique_ptr<Communicator>> comms(16);
  int created = 0;
  auto create = [&](int r) -> sim::Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(cluster, r, 16, "world", copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < 16; ++r) sim.Spawn(create(r));
  ASSERT_TRUE(sim.RunUntil([&] { return created == 16; }, 10'000'000'000ll));
  for (const auto& c : comms) EXPECT_EQ(c->links_established(), 0);

  int finished = 0;
  auto run = [&](int r) -> sim::Process {
    std::vector<std::int64_t> values(16, r);
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    ++finished;
  };
  for (int r = 0; r < 16; ++r) sim.Spawn(run(r));
  ASSERT_TRUE(sim.RunUntil([&] { return finished == 16; }, 60'000'000'000ll));
  // A ring allreduce touches exactly the two neighbours, not all 15 peers.
  for (const auto& c : comms) EXPECT_EQ(c->links_established(), 2);
}

}  // namespace
}  // namespace vmmc::coll
