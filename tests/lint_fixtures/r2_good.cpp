// vmmc-lint fixture: R2 unordered-iter — known-good.
//
// Ordered containers iterate deterministically; unordered containers used
// for point lookups only are fine; and the sanctioned gather-sort pattern
// carries a justified allowlist comment. Run with --scope=sim.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

struct Event {
  void Post(int node);
};

class Scheduler {
 public:
  void DrainAll(Event& e) {
    // std::map: iteration order is key order, deterministic.
    for (auto& [node, pending] : by_rank_) {
      if (pending > 0) e.Post(node);
    }
  }

  std::uint32_t Lookup(int node) const {
    // Point lookup on an unordered map never observes hash order.
    auto it = cache_.find(node);
    return it != cache_.end() ? it->second : 0;
  }

  void DrainSorted(Event& e) {
    std::vector<int> nodes;
    nodes.reserve(cache_.size());
    // vmmc-lint: allow(unordered-iter): nodes are sorted below before use
    for (const auto& [node, pending] : cache_) nodes.push_back(node);
    std::sort(nodes.begin(), nodes.end());
    for (int node : nodes) e.Post(node);
  }

 private:
  std::map<int, std::uint32_t> by_rank_;
  std::unordered_map<int, std::uint32_t> cache_;
};
