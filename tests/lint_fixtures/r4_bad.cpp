// vmmc-lint fixture: R4 raw-buffer — known-bad.
//
// Per-packet allocation in the hot path: raw new[]/malloc and byte-vector
// payload staging. The PR 4 contract (enforced at runtime by
// perf_guard_test's counting operator new) is that steady-state traffic
// allocates nothing — payloads live in the pooled copy-on-write
// util::Buffer and events in pooled EventNodes. Run with --scope=hot.
#include <cstdint>
#include <cstdlib>
#include <vector>

void Transmit(const std::uint8_t* data, std::uint32_t len);

void SendPacketNewArray(const std::uint8_t* data, std::uint32_t len) {
  auto* staging = new std::uint8_t[len];  // EXPECT-LINT: R4
  for (std::uint32_t i = 0; i < len; ++i) staging[i] = data[i];
  Transmit(staging, len);
  delete[] staging;
}

void SendPacketMalloc(const std::uint8_t* data, std::uint32_t len) {
  auto* staging = static_cast<std::uint8_t*>(malloc(len));  // EXPECT-LINT: R4
  for (std::uint32_t i = 0; i < len; ++i) staging[i] = data[i];
  Transmit(staging, len);
  free(staging);
}

void SendPacketVector(const std::uint8_t* data, std::uint32_t len) {
  std::vector<std::uint8_t> staging(data, data + len);  // EXPECT-LINT: R4
  Transmit(staging.data(), len);
}
