// vmmc-lint fixture: R2 unordered-iter — known-bad.
//
// Iterating an unordered container in sim-visible code: hash order is
// implementation-defined, and when the loop body schedules events (or
// frees resources whose reuse order matters) the bit-identical-results
// guarantee breaks. Run with --scope=sim.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

struct Event {
  void Post(int node);
};

class Scheduler {
 public:
  void DrainAll(Event& e) {
    for (auto& [node, pending] : pending_) {  // EXPECT-LINT: R2
      if (pending > 0) e.Post(node);
    }
  }

  std::uint64_t Sum() const {
    std::uint64_t total = 0;
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // EXPECT-LINT: R2
      total += *it;
    }
    return total;
  }

 private:
  std::unordered_map<int, std::uint32_t> pending_;
  std::unordered_set<std::uint64_t> seen_;
};
