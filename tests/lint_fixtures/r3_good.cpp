// vmmc-lint fixture: R3 nondet-source — known-good.
//
// The determinism contract: randomness from the seeded sim::Rng, time from
// Simulator::Now(). Run with --scope=sim.
#include <cstdint>

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }

 private:
  std::uint64_t state_;
};

class Simulator {
 public:
  std::uint64_t Now() const { return now_ns_; }

 private:
  std::uint64_t now_ns_ = 0;
};

std::uint32_t PickJitter(Rng& rng) {
  return static_cast<std::uint32_t>(rng.Next() % 1000);
}

std::uint64_t Stamp(const Simulator& sim) { return sim.Now(); }
