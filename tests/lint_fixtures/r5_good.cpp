// vmmc-lint fixture: R5 ref-capture-coawait — known-good.
//
// By-value captures for coroutine lambdas, and by-reference captures in
// ordinary (non-suspending) lambdas. Run with --scope=sim.
#include <cstdint>

struct Task {
  bool await_ready();
  void await_suspend(void*);
  int await_resume();
};

Task Delay(std::uint64_t ns);
void Spawn(Task t);

class Lcp {
 public:
  void ScheduleRetransmit(std::uint32_t seq) {
    // Captures by value: `this` (a stable pointer) and a copy of seq.
    auto retx = [this, seq]() -> Task {
      co_await Delay(1000);
      ++retx_count_;
      (void)seq;
    };
    Spawn(retx());
  }

  std::uint32_t CountPending(const std::uint32_t* seqs, int n) const {
    std::uint32_t pending = 0;
    // By-reference capture is fine in a plain lambda — no suspension, the
    // closure dies before the scope does.
    auto tally = [&](std::uint32_t s) {
      if (s > last_acked_) ++pending;
    };
    for (int i = 0; i < n; ++i) tally(seqs[i]);
    return pending;
  }

 private:
  std::uint32_t retx_count_ = 0;
  std::uint32_t last_acked_ = 0;
};
