// vmmc-lint fixture: R4 raw-buffer — known-good.
//
// The pooled path: util::Buffer for payload bytes (size-class pool,
// copy-on-write sharing), plus a justified allowlist for a user-facing
// result vector at an API boundary. Run with --scope=hot.
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace util {
class Buffer {
 public:
  static Buffer Uninitialized(std::size_t n);
  std::uint8_t* MutableData();
  const std::uint8_t* data() const;
  std::size_t size() const;
};
}  // namespace util

void Transmit(const std::uint8_t* data, std::uint32_t len);

void SendPacketPooled(const std::uint8_t* data, std::uint32_t len) {
  util::Buffer staging = util::Buffer::Uninitialized(len);
  std::memcpy(staging.MutableData(), data, len);
  Transmit(staging.data(), len);
}

void CopyOut(const util::Buffer& payload, std::vector<std::uint8_t>* result) {
  // vmmc-lint: allow(raw-buffer): user-facing result — the public API
  // hands the caller an owning std::vector, not a pooled view
  std::vector<std::uint8_t> out(payload.size());
  std::memcpy(out.data(), payload.data(), payload.size());
  *result = out;
}
