// vmmc-lint fixture: R5 ref-capture-coawait — known-bad.
//
// A lambda coroutine that captures by reference and suspends: the frame
// holds the reference across the suspension, and if the coroutine outlives
// the enclosing scope (stored, Spawned, resumed from the event queue) the
// capture dangles. Run with --scope=sim.
#include <cstdint>

struct Task {
  bool await_ready();
  void await_suspend(void*);
  int await_resume();
};

Task Delay(std::uint64_t ns);
void Spawn(Task t);

void ScheduleRetransmit(std::uint32_t seq) {
  std::uint32_t attempts = 0;
  auto retx = [&]() -> Task {  // EXPECT-LINT: R5
    co_await Delay(1000);
    ++attempts;
    (void)seq;
  };
  Spawn(retx());
}

void ScheduleAck(std::uint32_t seq) {
  std::uint32_t acked = 0;
  auto ack = [&acked, seq]() -> Task {  // EXPECT-LINT: R5
    co_await Delay(500);
    acked = seq;
  };
  Spawn(ack());
}
