// vmmc-lint fixture: the PR 9 GCC-12 coroutine-frame corruption, verbatim
// shape.
//
// What shipped (api.cpp and kv_server.cpp, fixed in PR 9): the send path
// selected between an eager copy-through and a rendezvous protocol with a
// ternary whose both branches awaited. Under GCC 12 (-O2), destroying the
// discarded branch's temporaries across the suspension corrupted the
// coroutine frame — the resumed coroutine read garbage locals and the
// simulation crashed nondeterministically, only in optimized builds, only
// on some seeds. The fix awaited each branch into a named Status first.
//
// This fixture proves vmmc-lint R1 rejects that exact line, i.e. the gate
// would have stopped PR 9's bug before it shipped. lint_test.py asserts
// the rule and line below.
#include <cstdint>

struct Status {
  bool ok() const;
};

struct StatusTask {
  bool await_ready();
  void await_suspend(void*);
  Status await_resume();
};

class Endpoint {
 public:
  StatusTask SendEager(std::uint64_t src, std::uint32_t len);
  StatusTask SendRendezvous(std::uint64_t src, std::uint32_t len);
};

struct VoidTask {
  bool await_ready();
  void await_suspend(void*);
  void await_resume();
};

VoidTask Send(Endpoint& ep, std::uint64_t src, std::uint32_t len,
              std::uint32_t eager_max) {
  // The PR 9 line. GCC 12 corrupted the frame here.
  Status s = len <= eager_max ? co_await ep.SendEager(src, len)  // EXPECT-LINT: R1
                              : co_await ep.SendRendezvous(src, len);  // EXPECT-LINT: R1
  if (!s.ok()) {
    co_return;
  }
  co_return;
}
