// vmmc-lint fixture: R1 co-await-subexpr — known-bad.
//
// The first case reproduces the exact shape of the PR 9 GCC-12
// coroutine-frame corruption: api.cpp / kv_server selected between two
// awaited sends inside a ternary, and GCC 12 clobbered the coroutine frame
// when the discarded branch's temporaries were destroyed across the
// suspension. The lint would have rejected that line before it shipped.
//
// Lines that must fire carry an `EXPECT-LINT: <rule>` marker; the self-test
// (tests/lint_test.py) asserts the linter reports exactly those
// (file, line, rule) triples and nothing else.
#include <cstdint>

struct Task {
  bool await_ready();
  void await_suspend(void*);
  int await_resume();
};

Task SendEager(const std::uint8_t* buf, std::uint32_t len);
Task SendRendezvous(const std::uint8_t* buf, std::uint32_t len);
Task Consume(int a, int b);
int Wrap(int v);

Task Send(const std::uint8_t* buf, std::uint32_t len, bool eager) {
  // PR 9 shape: co_await in a ternary branch.
  int r = eager ? co_await SendEager(buf, len)  // EXPECT-LINT: R1
                : 0;
  (void)r;

  // Both branches awaited — two findings on one line.
  // EXPECT-LINT: R1
  // EXPECT-LINT: R1
  int s = eager ? co_await SendEager(buf, len) : co_await SendRendezvous(buf, len);
  (void)s;

  // co_await as a call argument: the call's other argument temporaries
  // live across the suspension.
  int t = Wrap(co_await SendEager(buf, len));  // EXPECT-LINT: R1
  (void)t;

  // co_await as a non-first argument (sibling evaluation straddles the
  // suspension).
  int u = co_await Consume(1, co_await SendEager(buf, len));  // EXPECT-LINT: R1
  (void)u;
  co_return;
}
