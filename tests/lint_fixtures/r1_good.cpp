// vmmc-lint fixture: R1 co-await-subexpr — known-good.
//
// Statement-level awaits, a ternary *inside* the awaited operand (the safe
// direction — selection happens before the suspension), and control-flow
// awaits. None of these may fire.
#include <cstdint>

struct Task {
  bool await_ready();
  void await_suspend(void*);
  int await_resume();
};

Task SendEager(const std::uint8_t* buf, std::uint32_t len);
Task SendRendezvous(const std::uint8_t* buf, std::uint32_t len);
Task Delay(std::uint64_t ns);

Task Send(const std::uint8_t* buf, std::uint32_t len, bool eager, bool fast) {
  // Plain statement await.
  co_await Delay(50);

  // Await into a named local, then select — the PR 9 fix shape.
  int a = co_await SendEager(buf, len);
  int b = co_await SendRendezvous(buf, len);
  int r = eager ? a : b;
  (void)r;

  // Ternary inside the awaited call's arguments: selection completes
  // before the suspension, no temporaries straddle it.
  co_await Delay(fast ? 10 : 50);

  // Await in an if condition / return value is statement-shaped.
  if (co_await SendEager(buf, len)) {
    co_return;
  }
  co_return;
}
