// vmmc-lint fixture: R3 nondet-source — known-bad.
//
// Host entropy and wall-clock reads in sim code: every one of these makes
// two runs with the same seed diverge. Run with --scope=sim.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>

std::uint64_t PickBackoffSeed() {
  std::random_device rd;  // EXPECT-LINT: R3
  return rd();
}

std::uint32_t PickJitter() {
  return static_cast<std::uint32_t>(rand());  // EXPECT-LINT: R3
}

std::uint64_t StampNow() {
  auto t = std::chrono::steady_clock::now();  // EXPECT-LINT: R3
  return static_cast<std::uint64_t>(t.time_since_epoch().count());
}

std::uint64_t StampEpoch() {
  return static_cast<std::uint64_t>(time(nullptr));  // EXPECT-LINT: R3
}
