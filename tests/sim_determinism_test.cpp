// Golden ordering test for the event engine.
//
// The three-tier queue (now-FIFO, sorted tail list, 4-ary heap) promises
// dispatch order bit-identical to a single (time, seq) priority queue.
// This test drives identical randomized schedules — a mix of At, Post,
// coroutine Resume and Spawn, with heavy time ties and out-of-order
// pushes — through the production Simulator and through a deliberately
// naive reference scheduler (linear scan for the (time, seq) minimum),
// and requires the firing sequences to match exactly.
#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "vmmc/sim/process.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::sim {
namespace {

// One scheduling operation. Ops are identified by the order they were
// scheduled in; firing an op deterministically generates child ops, so
// the whole workload unfolds identically in both schedulers as long as
// they fire ops in the same order — which is exactly what we verify.
struct Op {
  enum Kind { kAt, kPost, kResume, kSpawn };
  Kind kind;
  Tick delay;
};

Op DrawOp(Rng& rng) {
  Op op;
  op.kind = static_cast<Op::Kind>(rng.UniformU64(4));
  // ~40% zero delays: same-tick bursts (FIFO tier, seq tie-breaks) are
  // the adversarial case for ordering bugs.
  const std::uint64_t r = rng.UniformU64(100);
  op.delay = r < 40 ? 0 : static_cast<Tick>(r - 40);
  return op;
}

std::vector<Op> Roots(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> roots;
  for (int i = 0; i < 16; ++i) roots.push_back(DrawOp(rng));
  return roots;
}

// Children of op `id`: a pure function of (seed, id), so both schedulers
// expand the same tree.
std::vector<Op> ChildrenOf(std::uint64_t seed, int id) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(id));
  std::vector<Op> children;
  const auto n = rng.UniformU64(4);  // 0..3 children, mean 1.5
  for (std::uint64_t i = 0; i < n; ++i) children.push_back(DrawOp(rng));
  return children;
}

constexpr int kMaxOps = 3000;

// --- Production driver: the real Simulator -------------------------------

class RealDriver {
 public:
  explicit RealDriver(std::uint64_t seed) : seed_(seed) {}

  std::vector<int> Run() {
    for (const Op& op : Roots(seed_)) Schedule(op);
    sim_.Run();
    // Every op is exactly one event in the real engine (kCallback,
    // kResume or kSpawn), so the counts must agree too.
    EXPECT_EQ(sim_.events_processed(), log_.size());
    return std::move(log_);
  }

 private:
  void Fire(int id) {
    log_.push_back(id);
    for (const Op& op : ChildrenOf(seed_, id)) Schedule(op);
  }

  void Schedule(const Op& op) {
    if (next_id_ >= kMaxOps) return;
    const int id = next_id_++;
    switch (op.kind) {
      case Op::kAt:
        sim_.At(sim_.now() + op.delay, [this, id] { Fire(id); });
        break;
      case Op::kPost:
        sim_.Post([this, id] { Fire(id); });
        break;
      case Op::kResume:
        StartParked(id, op.delay);
        break;
      case Op::kSpawn:
        sim_.Spawn(FireProc(id));
        break;
    }
  }

  Process FireProc(int id) {
    Fire(id);
    co_return;
  }

  // Parks at a custom awaiter that captures the frame handle without
  // scheduling anything, so the subsequent wake-up goes through
  // Simulator::Resume itself — the path under test.
  struct Park {
    std::coroutine_handle<>* slot;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept { *slot = h; }
    void await_resume() const noexcept {}
  };

  Process ParkedFire(int id, std::coroutine_handle<>* slot) {
    co_await Park{slot};
    Fire(id);
  }

  void StartParked(int id, Tick delay) {
    parked_.emplace_back();  // deque: stable address for the slot
    std::coroutine_handle<>* slot = &parked_.back();
    Process p = ParkedFire(id, slot);
    Process::Handle h = p.Detach();
    h.promise().started = true;
    h.resume();  // runs synchronously to the park point, fills *slot
    sim_.Resume(*slot, delay);
  }

  Simulator sim_;
  std::uint64_t seed_;
  int next_id_ = 0;
  std::vector<int> log_;
  std::deque<std::coroutine_handle<>> parked_;
};

// --- Reference driver: linear-scan (time, seq) scheduler ------------------

class ReferenceDriver {
 public:
  explicit ReferenceDriver(std::uint64_t seed) : seed_(seed) {}

  std::vector<int> Run() {
    for (const Op& op : Roots(seed_)) Schedule(op);
    while (!events_.empty()) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < events_.size(); ++i) {
        const Event& e = events_[i];
        const Event& b = events_[best];
        if (e.time < b.time || (e.time == b.time && e.seq < b.seq)) best = i;
      }
      Event next = std::move(events_[best]);
      events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
      now_ = next.time;
      Fire(next.id);
    }
    return std::move(log_);
  }

 private:
  struct Event {
    Tick time;
    std::uint64_t seq;
    int id;
  };

  void Fire(int id) {
    log_.push_back(id);
    for (const Op& op : ChildrenOf(seed_, id)) Schedule(op);
  }

  void Schedule(const Op& op) {
    if (next_id_ >= kMaxOps) return;
    const int id = next_id_++;
    // kPost and kSpawn run at now(); kAt and kResume run after delay.
    // The sequence number is assigned at schedule time, exactly as the
    // real engine's monotone seq_ counter is.
    const Tick delay =
        (op.kind == Op::kPost || op.kind == Op::kSpawn) ? 0 : op.delay;
    events_.push_back({now_ + delay, seq_++, id});
  }

  std::uint64_t seed_;
  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  int next_id_ = 0;
  std::vector<int> log_;
  std::vector<Event> events_;
};

void ExpectIdenticalFiringOrder(std::uint64_t seed) {
  std::vector<int> real = RealDriver(seed).Run();
  std::vector<int> ref = ReferenceDriver(seed).Run();
  ASSERT_GT(real.size(), 16u) << "seed " << seed << " generated no work";
  EXPECT_EQ(real, ref) << "firing order diverged for seed " << seed;
}

TEST(SimDeterminismTest, MatchesReferenceSchedulerSeed1) {
  ExpectIdenticalFiringOrder(1);
}

TEST(SimDeterminismTest, MatchesReferenceSchedulerSeed2) {
  ExpectIdenticalFiringOrder(2);
}

TEST(SimDeterminismTest, MatchesReferenceSchedulerSeed3) {
  ExpectIdenticalFiringOrder(3);
}

TEST(SimDeterminismTest, MatchesReferenceSchedulerSweep) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    ExpectIdenticalFiringOrder(seed);
  }
}

}  // namespace
}  // namespace vmmc::sim
