// Tests for the simulated memory subsystem: frame allocator, physical byte
// access, page tables, address spaces, pinning and the user heap.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <set>
#include <vector>

#include "vmmc/mem/address_space.h"
#include "vmmc/mem/physical_memory.h"
#include "vmmc/mem/types.h"
#include "vmmc/sim/rng.h"

namespace vmmc::mem {
namespace {

TEST(TypesTest, PageArithmetic) {
  EXPECT_EQ(kPageSize, 4096u);
  EXPECT_EQ(PageNumber(0x2345), 0x2u);
  EXPECT_EQ(PageOffset(0x2345), 0x345u);
  EXPECT_EQ(PageBase(0x2345), 0x2000u);
  EXPECT_EQ(PageAddr(3), 0x3000u);
  EXPECT_EQ(PagesSpanned(0, 0), 0u);
  EXPECT_EQ(PagesSpanned(0, 1), 1u);
  EXPECT_EQ(PagesSpanned(0, 4096), 1u);
  EXPECT_EQ(PagesSpanned(4095, 2), 2u);
  EXPECT_EQ(PagesSpanned(100, 8192), 3u);
  EXPECT_EQ(RoundUpToPage(1), 4096u);
  EXPECT_EQ(RoundUpToPage(4096), 4096u);
  EXPECT_EQ(RoundUpToPage(4097), 8192u);
}

TEST(PhysicalMemoryTest, AllocatesAllFramesThenExhausts) {
  PhysicalMemory pm(16 * kPageSize);
  std::set<Pfn> seen;
  for (int i = 0; i < 16; ++i) {
    auto pfn = pm.AllocFrame();
    ASSERT_TRUE(pfn.ok());
    EXPECT_LT(pfn.value(), 16u);
    EXPECT_TRUE(seen.insert(pfn.value()).second) << "duplicate frame";
  }
  EXPECT_EQ(pm.free_frames(), 0u);
  EXPECT_FALSE(pm.AllocFrame().ok());
}

TEST(PhysicalMemoryTest, ScatterSeedShufflesOrder) {
  PhysicalMemory seq(64 * kPageSize, /*scatter_seed=*/0);
  PhysicalMemory shuf(64 * kPageSize, /*scatter_seed=*/7);
  std::vector<Pfn> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(seq.AllocFrame().value());
    b.push_back(shuf.AllocFrame().value());
  }
  // Sequential allocator yields ascending PFNs.
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_NE(a, b);
  // Scattered allocation rarely yields physically adjacent consecutive
  // frames — the property that caps DMA transfers at one page.
  int adjacent = 0;
  for (size_t i = 1; i < b.size(); ++i) adjacent += (b[i] == b[i - 1] + 1);
  EXPECT_LT(adjacent, 8);
}

TEST(PhysicalMemoryTest, FreeAndReuse) {
  PhysicalMemory pm(2 * kPageSize);
  Pfn a = pm.AllocFrame().value();
  Pfn b = pm.AllocFrame().value();
  EXPECT_FALSE(pm.AllocFrame().ok());
  EXPECT_TRUE(pm.FreeFrame(a).ok());
  EXPECT_FALSE(pm.FreeFrame(a).ok()) << "double free must fail";
  Pfn c = pm.AllocFrame().value();
  EXPECT_EQ(c, a);
  (void)b;
}

TEST(PhysicalMemoryTest, ReadWriteRoundTrip) {
  PhysicalMemory pm(8 * kPageSize);
  std::vector<std::uint8_t> data(10000);
  std::iota(data.begin(), data.end(), 0);
  ASSERT_TRUE(pm.Write(123, data).ok());  // crosses three frames
  std::vector<std::uint8_t> back(10000);
  ASSERT_TRUE(pm.Read(123, back).ok());
  EXPECT_EQ(data, back);
}

TEST(PhysicalMemoryTest, UntouchedMemoryReadsZero) {
  PhysicalMemory pm(4 * kPageSize);
  std::vector<std::uint8_t> buf(64, 0xFF);
  ASSERT_TRUE(pm.Read(kPageSize + 5, buf).ok());
  for (auto b : buf) EXPECT_EQ(b, 0);
}

TEST(PhysicalMemoryTest, OutOfRangeRejected) {
  PhysicalMemory pm(2 * kPageSize);
  std::vector<std::uint8_t> buf(16);
  EXPECT_FALSE(pm.Read(2 * kPageSize - 8, buf).ok());
  EXPECT_FALSE(pm.Write(2 * kPageSize - 8, buf).ok());
  EXPECT_TRUE(pm.Read(2 * kPageSize - 16, buf).ok());
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory pm_{256 * kPageSize, /*scatter_seed=*/42};
  AddressSpace as_{pm_};
};

TEST_F(AddressSpaceTest, MapTranslateUnmap) {
  auto va = as_.MapAnonymous(3 * kPageSize);
  ASSERT_TRUE(va.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(as_.Translate(va.value() + i * kPageSize).ok());
  }
  EXPECT_FALSE(as_.Translate(va.value() + 3 * kPageSize).ok());
  ASSERT_TRUE(as_.Unmap(va.value(), 3 * kPageSize).ok());
  EXPECT_FALSE(as_.Translate(va.value()).ok());
}

TEST_F(AddressSpaceTest, ConsecutiveVirtualPagesArePhysicallyScattered) {
  auto va = as_.MapAnonymous(16 * kPageSize);
  ASSERT_TRUE(va.ok());
  int adjacent = 0;
  for (int i = 1; i < 16; ++i) {
    PhysAddr prev = as_.Translate(va.value() + (i - 1) * kPageSize).value();
    PhysAddr cur = as_.Translate(va.value() + i * kPageSize).value();
    adjacent += (cur == prev + kPageSize);
  }
  EXPECT_LT(adjacent, 4);
}

TEST_F(AddressSpaceTest, ReadWriteAcrossPages) {
  auto va = as_.MapAnonymous(4 * kPageSize);
  ASSERT_TRUE(va.ok());
  std::vector<std::uint8_t> data(3 * kPageSize + 100);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  ASSERT_TRUE(as_.Write(va.value() + 50, data).ok());
  std::vector<std::uint8_t> back(data.size());
  ASSERT_TRUE(as_.Read(va.value() + 50, back).ok());
  EXPECT_EQ(data, back);
}

TEST_F(AddressSpaceTest, WriteToUnmappedFails) {
  std::uint8_t b[4] = {1, 2, 3, 4};
  EXPECT_FALSE(as_.Write(0xDEAD0000, b).ok());
  EXPECT_FALSE(as_.Read(0xDEAD0000, b).ok());
}

TEST_F(AddressSpaceTest, ReadOnlyMappingRejectsWrites) {
  auto va = as_.MapAnonymous(kPageSize, /*writable=*/false);
  ASSERT_TRUE(va.ok());
  std::uint8_t b[4] = {1, 2, 3, 4};
  EXPECT_FALSE(as_.Write(va.value(), b).ok());
  EXPECT_TRUE(as_.Read(va.value(), b).ok());
}

TEST_F(AddressSpaceTest, U32Helpers) {
  auto va = as_.MapAnonymous(kPageSize);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(as_.WriteU32(va.value() + 8, 0xCAFEBABE).ok());
  auto v = as_.ReadU32(va.value() + 8);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 0xCAFEBABE);
}

TEST_F(AddressSpaceTest, PinningBlocksUnmapAndNests) {
  auto va = as_.MapAnonymous(2 * kPageSize);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(as_.Pin(va.value(), 2 * kPageSize).ok());
  ASSERT_TRUE(as_.Pin(va.value(), kPageSize).ok());  // nested pin on page 0
  EXPECT_FALSE(as_.Unmap(va.value(), 2 * kPageSize).ok());
  ASSERT_TRUE(as_.Unpin(va.value(), 2 * kPageSize).ok());
  EXPECT_FALSE(as_.Unmap(va.value(), 2 * kPageSize).ok()) << "page 0 still pinned";
  ASSERT_TRUE(as_.Unpin(va.value(), kPageSize).ok());
  EXPECT_TRUE(as_.Unmap(va.value(), 2 * kPageSize).ok());
}

TEST_F(AddressSpaceTest, TranslatePinnedRequiresPin) {
  auto va = as_.MapAnonymous(kPageSize);
  ASSERT_TRUE(va.ok());
  EXPECT_FALSE(as_.TranslatePinned(va.value()).ok());
  ASSERT_TRUE(as_.Pin(va.value(), kPageSize).ok());
  EXPECT_TRUE(as_.TranslatePinned(va.value()).ok());
}

TEST_F(AddressSpaceTest, PinUnmappedFails) {
  EXPECT_FALSE(as_.Pin(0xDEAD0000, 8).ok());
  EXPECT_FALSE(as_.Unpin(0xDEAD0000, 8).ok());
}

TEST_F(AddressSpaceTest, HeapAllocFreeReuse) {
  auto a = as_.HeapAlloc(100);
  auto b = as_.HeapAlloc(200);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  // Write to both; no overlap.
  std::vector<std::uint8_t> da(100, 0xAA), db(200, 0xBB);
  ASSERT_TRUE(as_.Write(a.value(), da).ok());
  ASSERT_TRUE(as_.Write(b.value(), db).ok());
  std::vector<std::uint8_t> ra(100);
  ASSERT_TRUE(as_.Read(a.value(), ra).ok());
  EXPECT_EQ(ra, da);

  ASSERT_TRUE(as_.HeapFree(a.value()).ok());
  EXPECT_FALSE(as_.HeapFree(a.value()).ok()) << "double free";
  auto c = as_.HeapAlloc(50);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value(), a.value()) << "first fit reuses the freed block";
}

TEST_F(AddressSpaceTest, HeapAlignment) {
  for (std::uint64_t align : {16ull, 64ull, 256ull, 4096ull}) {
    auto p = as_.HeapAlloc(24, align);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value() % align, 0u) << "align " << align;
  }
}

TEST_F(AddressSpaceTest, HeapCoalescing) {
  auto a = as_.HeapAlloc(1000);
  auto b = as_.HeapAlloc(1000);
  auto c = as_.HeapAlloc(1000);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(as_.HeapFree(a.value()).ok());
  ASSERT_TRUE(as_.HeapFree(b.value()).ok());
  // a+b coalesced: a 2000-byte allocation fits where two 1000s were.
  auto d = as_.HeapAlloc(2000);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value(), a.value());
  (void)c;
}

TEST_F(AddressSpaceTest, DestructorReleasesFrames) {
  const std::uint64_t before = pm_.free_frames();
  {
    AddressSpace tmp(pm_);
    ASSERT_TRUE(tmp.MapAnonymous(8 * kPageSize).ok());
    ASSERT_TRUE(tmp.HeapAlloc(3 * kPageSize).ok());
    EXPECT_LT(pm_.free_frames(), before);
  }
  EXPECT_EQ(pm_.free_frames(), before);
}

TEST_F(AddressSpaceTest, MapFailsWhenMemoryExhausted) {
  auto big = as_.MapAnonymous(1024 * kPageSize);  // more than the 256 frames
  EXPECT_FALSE(big.ok());
  // Failed map must roll back: everything it grabbed is free again.
  auto ok = as_.MapAnonymous(200 * kPageSize);
  EXPECT_TRUE(ok.ok());
}

// Property sweep: random alloc/free sequences keep the heap consistent.
class HeapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeapPropertyTest, RandomAllocFreeNoOverlap) {
  PhysicalMemory pm(2048 * kPageSize, GetParam());
  AddressSpace as(pm);
  sim::Rng rng(GetParam());
  struct Block {
    VirtAddr va;
    std::uint64_t len;
    std::uint8_t tag;
  };
  std::vector<Block> live;
  std::uint8_t next_tag = 1;
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const std::uint64_t len = 1 + rng.UniformU64(3000);
      auto va = as.HeapAlloc(len);
      ASSERT_TRUE(va.ok());
      std::vector<std::uint8_t> fill(len, next_tag);
      ASSERT_TRUE(as.Write(va.value(), fill).ok());
      live.push_back({va.value(), len, next_tag});
      next_tag = static_cast<std::uint8_t>(next_tag % 250 + 1);
    } else {
      const size_t idx = static_cast<size_t>(rng.UniformU64(live.size()));
      ASSERT_TRUE(as.HeapFree(live[idx].va).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Every live block still holds its own tag (no overlap corruption).
    for (const auto& blk : live) {
      std::vector<std::uint8_t> back(blk.len);
      ASSERT_TRUE(as.Read(blk.va, back).ok());
      for (auto byte : back) ASSERT_EQ(byte, blk.tag);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeapPropertyTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace vmmc::mem
