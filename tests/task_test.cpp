// Tests for sim::Task<T>, the value-returning coroutine used by the VMMC
// API surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "vmmc/sim/simulator.h"
#include "vmmc/sim/task.h"
#include "vmmc/util/status.h"

namespace vmmc::sim {
namespace {

Task<int> Answer(Simulator& sim, Tick delay) {
  co_await sim.Delay(delay);
  co_return 42;
}

Process Driver(Simulator& sim, int& out, Tick& when) {
  out = co_await Answer(sim, 100);
  when = sim.now();
}

TEST(TaskTest, ReturnsValueAfterDelay) {
  Simulator sim;
  int out = 0;
  Tick when = -1;
  sim.Spawn(Driver(sim, out, when));
  sim.Run();
  EXPECT_EQ(out, 42);
  EXPECT_EQ(when, 100);
}

Task<std::string> Compose(Simulator& sim) {
  int a = co_await Answer(sim, 10);
  int b = co_await Answer(sim, 20);
  co_return std::to_string(a + b);
}

Process ComposeDriver(Simulator& sim, std::string& out, Tick& when) {
  out = co_await Compose(sim);
  when = sim.now();
}

TEST(TaskTest, TasksCompose) {
  Simulator sim;
  std::string out;
  Tick when = -1;
  sim.Spawn(ComposeDriver(sim, out, when));
  sim.Run();
  EXPECT_EQ(out, "84");
  EXPECT_EQ(when, 30);
}

Task<std::unique_ptr<int>> MoveOnly(Simulator& sim) {
  co_await sim.Delay(1);
  co_return std::make_unique<int>(7);
}

Process MoveDriver(Simulator& sim, int& out) {
  auto p = co_await MoveOnly(sim);
  out = *p;
}

TEST(TaskTest, MoveOnlyValues) {
  Simulator sim;
  int out = 0;
  sim.Spawn(MoveDriver(sim, out));
  sim.Run();
  EXPECT_EQ(out, 7);
}

Task<Result<int>> Fallible(Simulator& sim, bool fail) {
  co_await sim.Delay(5);
  if (fail) co_return Result<int>(NotFound("nope"));
  co_return 1;
}

Process FallibleDriver(Simulator& sim, Status& s1, Status& s2) {
  auto ok = co_await Fallible(sim, false);
  s1 = ok.status();
  auto bad = co_await Fallible(sim, true);
  s2 = bad.status();
}

TEST(TaskTest, ResultValuesPropagate) {
  Simulator sim;
  Status s1 = InternalError("unset"), s2 = OkStatus();
  sim.Spawn(FallibleDriver(sim, s1, s2));
  sim.Run();
  EXPECT_TRUE(s1.ok());
  EXPECT_EQ(s2.code(), ErrorCode::kNotFound);
}

Task<int> Thrower(Simulator& sim) {
  co_await sim.Delay(1);
  throw std::runtime_error("task boom");
}

Process CatchDriver(Simulator& sim, bool& caught) {
  try {
    (void)co_await Thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(TaskTest, ExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.Spawn(CatchDriver(sim, caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

TEST(TaskTest, UnstartedTaskDestroysCleanly) {
  Simulator sim;
  {
    Task<int> t = Answer(sim, 50);
    EXPECT_TRUE(t.valid());
    EXPECT_FALSE(t.finished());
  }  // never awaited: frame destroyed without running
  EXPECT_TRUE(sim.empty());
}

}  // namespace
}  // namespace vmmc::sim
