// Fault-matrix tests for the go-back-N reliability layer: deterministic
// fault injection (sim/fault.h) across {bit-flip, drop, delay, DMA-stall}
// × {low, high} rates × seeds, asserting that every VMMC send is delivered
// exactly once, intact and in order, with no deadlock — for raw sends,
// vRPC round trips, and a collective. Also pins down run-to-run
// determinism (same seed + plan ⇒ identical metrics and trace) and the
// fabric drop-notice path (misroutes reach the LCP retransmit logic).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "co_test_util.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/sim/fault.h"
#include "vmmc/vmmc/cluster.h"
#include "vmmc/vrpc/vmmc_transport.h"
#include "vmmc/vrpc/vrpc.h"
#include "vmmc/vrpc/xdr.h"

namespace vmmc::vmmc_core {
namespace {

using sim::DmaStallRule;
using sim::FaultPlan;
using sim::LinkFaultRule;
using sim::Tick;

enum class FaultKind { kBitFlip, kDrop, kDelay, kDmaStall };

const char* KindName(FaultKind k) {
  switch (k) {
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDmaStall: return "dmastall";
  }
  return "?";
}

// One matrix cell: what goes wrong, how often, under which seed.
struct FaultCase {
  FaultKind kind = FaultKind::kDrop;
  bool high = false;
  std::uint64_t seed = 1;

  std::string Name() const {
    return std::string(KindName(kind)) + (high ? "_high" : "_low") + "_s" +
           std::to_string(seed);
  }

  FaultPlan Plan() const {
    FaultPlan plan;
    plan.seed = seed;
    LinkFaultRule rule;
    switch (kind) {
      case FaultKind::kBitFlip:
        rule.bitflip_rate = high ? 0.20 : 0.02;
        plan.links.push_back(rule);
        break;
      case FaultKind::kDrop:
        rule.drop_rate = high ? 0.20 : 0.02;
        plan.links.push_back(rule);
        break;
      case FaultKind::kDelay:
        rule.delay_rate = high ? 0.50 : 0.05;
        rule.max_delay = high ? 20'000 : 5'000;
        plan.links.push_back(rule);
        break;
      case FaultKind::kDmaStall: {
        DmaStallRule stall;
        stall.start = 0;
        stall.duration = high ? 400'000 : 50'000;
        stall.period = 1'000'000;
        plan.dma_stalls.push_back(stall);
        break;
      }
    }
    return plan;
  }
};

std::vector<FaultCase> FullMatrix() {
  std::vector<FaultCase> cases;
  for (FaultKind kind : {FaultKind::kBitFlip, FaultKind::kDrop,
                         FaultKind::kDelay, FaultKind::kDmaStall}) {
    for (bool high : {false, true}) {
      for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        cases.push_back(FaultCase{kind, high, seed});
      }
    }
  }
  return cases;
}

std::vector<std::uint8_t> MakePayload(std::uint64_t tag, std::uint32_t len) {
  std::vector<std::uint8_t> v(len);
  std::uint32_t x = static_cast<std::uint32_t>(tag * 2654435761u + 1);
  for (std::uint32_t i = 0; i < len; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return v;
}

// ---------------------------------------------------------------------------
// Raw VMMC sends under the full fault matrix.
// ---------------------------------------------------------------------------

class FaultMatrixTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultMatrixTest, SendsDeliverExactlyOnceInOrder) {
  const FaultCase& fc = GetParam();
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  // Faults start after boot: the mapping phase models a healthy bring-up.
  sim.faults().Configure(fc.Plan());

  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());

  // Mix of short (inline), single-chunk, and multi-chunk messages; each
  // goes to its own 16 KB slice of the exported region. The final slice is
  // written kOverwrites times with different patterns — in-order delivery
  // means the last pattern wins.
  const std::vector<std::uint32_t> kLens = {17,   100,  128,  129,
                                            1000, 4096, 5000, 16000};
  const std::uint32_t kSlice = 16384;
  const int kOverwrites = 4;
  const std::uint32_t region =
      kSlice * static_cast<std::uint32_t>(kLens.size() + 1);

  mem::VirtAddr rbuf = 0;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(region);
    CO_ASSERT_TRUE(buf.ok());
    rbuf = buf.value();
    ExportOptions opts;
    opts.name = "faulty";
    auto id = co_await recv.value()->ExportBuffer(rbuf, region, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "faulty", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = send.value()->AllocBuffer(kSlice);
    CO_ASSERT_TRUE(src.ok());
    for (std::size_t i = 0; i < kLens.size(); ++i) {
      auto payload = MakePayload(i, kLens[i]);
      CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
      Status s = co_await send.value()->SendMsg(
          src.value(), imp.value().proxy_base + static_cast<ProxyAddr>(i) * kSlice,
          kLens[i]);
      CO_ASSERT_TRUE(s.ok());
    }
    const ProxyAddr last =
        imp.value().proxy_base + static_cast<ProxyAddr>(kLens.size()) * kSlice;
    for (int n = 0; n < kOverwrites; ++n) {
      auto payload = MakePayload(100 + static_cast<std::uint64_t>(n), 8000);
      CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
      Status s = co_await send.value()->SendMsg(src.value(), last, 8000);
      CO_ASSERT_TRUE(s.ok());
    }
    done = true;
  };
  sim.Spawn(prog());
  // No deadlock: the whole exchange finishes in bounded simulated time.
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 2'000'000'000)) << fc.Name();
  // Drain: sender completion is local, the tail chunks (and their
  // retransmissions) may still be in flight.
  const auto& rstats = cluster.node(1).lcp->stats();
  std::uint64_t expect_bytes = 0;
  for (std::uint32_t len : kLens) expect_bytes += len;
  expect_bytes += static_cast<std::uint64_t>(kOverwrites) * 8000;
  ASSERT_TRUE(sim.RunUntil([&] { return rstats.bytes_received >= expect_bytes; },
                           2'000'000'000))
      << fc.Name() << ": delivered " << rstats.bytes_received << "/"
      << expect_bytes;

  // Exactly once: accepted bytes match sent bytes despite retransmissions.
  EXPECT_EQ(rstats.bytes_received, expect_bytes) << fc.Name();

  // Intact: every slice matches its payload byte for byte.
  for (std::size_t i = 0; i < kLens.size(); ++i) {
    auto payload = MakePayload(i, kLens[i]);
    std::vector<std::uint8_t> got(kLens[i]);
    ASSERT_TRUE(recv.value()->ReadBuffer(rbuf + i * kSlice, got).ok());
    EXPECT_EQ(got, payload) << fc.Name() << " slice " << i;
  }
  // In order: the last overwrite is what remains.
  auto last_payload =
      MakePayload(100 + static_cast<std::uint64_t>(kOverwrites) - 1, 8000);
  std::vector<std::uint8_t> got(8000);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf + kLens.size() * kSlice, got).ok());
  EXPECT_EQ(got, last_payload) << fc.Name();

  // The plan actually did something (and the recovery machinery ran).
  // Only asserted for high-rate cells: at the low rates a particular seed
  // can legitimately draw zero faults over this short workload, and
  // delay jitter reorders nothing on a FIFO link so it needs no recovery.
  if (fc.high) {
    const obs::Registry& m = sim.metrics();
    const auto& sstats = cluster.node(0).lcp->stats();
    switch (fc.kind) {
      case FaultKind::kBitFlip:
        EXPECT_GT(m.CounterValue("fault.injected.bitflips"), 0u) << fc.Name();
        EXPECT_GT(sstats.retransmits + cluster.node(1).lcp->stats().retransmits,
                  0u)
            << fc.Name();
        break;
      case FaultKind::kDrop:
        EXPECT_GT(m.CounterValue("fault.injected.drops"), 0u) << fc.Name();
        EXPECT_GT(sstats.retransmits + cluster.node(1).lcp->stats().retransmits,
                  0u)
            << fc.Name();
        break;
      case FaultKind::kDelay:
        EXPECT_GT(m.CounterValue("fault.injected.delays"), 0u) << fc.Name();
        break;
      case FaultKind::kDmaStall:
        EXPECT_GT(m.CounterValue("fault.injected.dma_stalls"), 0u) << fc.Name();
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrixTest, ::testing::ValuesIn(FullMatrix()),
    [](const ::testing::TestParamInfo<FaultCase>& param_info) {
      return param_info.param.Name();
    });

// ---------------------------------------------------------------------------
// vRPC round trips under faults: the reliable layer is transparent to the
// transport, so calls complete with correct results under loss.
// ---------------------------------------------------------------------------

class FaultVrpcTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultVrpcTest, CallsCompleteUnderFaults) {
  const FaultCase& fc = GetParam();
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  sim.faults().Configure(fc.Plan());

  vrpc::RpcServer server(params);
  constexpr std::uint32_t kProg = 7, kVers = 1, kEcho = 1;
  server.Register(kProg, kVers, kEcho,
                  [&sim](std::span<const std::uint8_t> args)
                      -> sim::Task<Result<std::vector<std::uint8_t>>> {
                    co_await sim.Delay(0);
                    co_return std::vector<std::uint8_t>(args.begin(),
                                                        args.end());
                  });

  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto st = co_await vrpc::VmmcServerTransport::Create(cluster, 1, "svc", 2);
    CO_ASSERT_TRUE(st.ok());
    server.Attach(sim, st.value().get());
    auto ct = co_await vrpc::VmmcClientTransport::Connect(cluster, 0, 1, "svc", 0);
    CO_ASSERT_TRUE(ct.ok());
    vrpc::RpcClient client(params, sim, std::move(ct).value());
    for (int i = 0; i < 8; ++i) {
      auto blob = MakePayload(static_cast<std::uint64_t>(i) + 7, 600);
      auto r = co_await client.Call(kProg, kVers, kEcho, blob);
      CO_ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.value(), blob) << fc.Name() << " call " << i;
    }
    done = true;
    for (;;) co_await sim.Delay(sim::Seconds(1));  // keep transports alive
  };
  sim.Spawn(prog());
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 2'000'000'000)) << fc.Name();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultVrpcTest,
    ::testing::Values(FaultCase{FaultKind::kBitFlip, true, 5},
                      FaultCase{FaultKind::kDrop, true, 5},
                      FaultCase{FaultKind::kDelay, true, 5},
                      FaultCase{FaultKind::kDmaStall, true, 5},
                      FaultCase{FaultKind::kDrop, false, 6},
                      FaultCase{FaultKind::kDrop, true, 7}),
    [](const ::testing::TestParamInfo<FaultCase>& param_info) {
      return param_info.param.Name();
    });

// ---------------------------------------------------------------------------
// A collective (broadcast) under faults: many concurrent reliable flows.
// ---------------------------------------------------------------------------

class FaultCollTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultCollTest, BroadcastDeliversUnderFaults) {
  const FaultCase& fc = GetParam();
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  const int size = 4;
  options.num_nodes = size;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  sim.faults().Configure(fc.Plan());

  std::vector<std::unique_ptr<coll::Communicator>> comms(size);
  int created = 0;
  auto create = [&](int r) -> sim::Process {
    auto c = co_await coll::Communicator::Create(cluster, r, size);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(create(r));
  ASSERT_TRUE(sim.RunUntil([&] { return created == size; }, 2'000'000'000))
      << fc.Name();

  auto payload = MakePayload(99, 10'000);
  std::vector<std::vector<std::uint8_t>> got(static_cast<std::size_t>(size));
  int done = 0;
  auto prog = [&](int r) -> sim::Process {
    std::vector<std::uint8_t>& mine = got[static_cast<std::size_t>(r)];
    if (r == 0) mine = payload;
    Status s = co_await comms[static_cast<std::size_t>(r)]->Broadcast(0, mine);
    CO_ASSERT_TRUE(s.ok());
    ++done;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(prog(r));
  ASSERT_TRUE(sim.RunUntil([&] { return done == size; }, 4'000'000'000))
      << fc.Name();
  for (int r = 0; r < size; ++r) {
    EXPECT_EQ(got[static_cast<std::size_t>(r)], payload)
        << fc.Name() << " rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultCollTest,
    ::testing::Values(FaultCase{FaultKind::kBitFlip, true, 3},
                      FaultCase{FaultKind::kDrop, true, 3},
                      FaultCase{FaultKind::kDelay, true, 3},
                      FaultCase{FaultKind::kDmaStall, true, 3}),
    [](const ::testing::TestParamInfo<FaultCase>& param_info) {
      return param_info.param.Name();
    });

// ---------------------------------------------------------------------------
// Determinism: same seed + plan ⇒ byte-identical metrics dump and trace.
// ---------------------------------------------------------------------------

struct RunArtifacts {
  std::string metrics_json;
  std::string trace_json;
  std::uint64_t events = 0;
};

RunArtifacts RunSeededWorkload(std::uint64_t seed) {
  sim::Simulator sim;
  sim.tracer().Enable();
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  EXPECT_TRUE(cluster.Boot().ok());
  FaultPlan plan;
  plan.seed = seed;
  LinkFaultRule rule;
  rule.drop_rate = 0.10;
  rule.bitflip_rate = 0.05;
  rule.delay_rate = 0.10;
  rule.max_delay = 3'000;
  plan.links.push_back(rule);
  sim.faults().Configure(plan);

  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  EXPECT_TRUE(recv.ok() && send.ok());
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(1 << 16);
    CO_ASSERT_TRUE(buf.ok());
    ExportOptions opts;
    opts.name = "det";
    auto id = co_await recv.value()->ExportBuffer(buf.value(), 1 << 16,
                                                  std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "det", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = send.value()->AllocBuffer(1 << 14);
    CO_ASSERT_TRUE(src.ok());
    for (int i = 0; i < 6; ++i) {
      auto payload = MakePayload(static_cast<std::uint64_t>(i), 9000);
      CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
      Status s = co_await send.value()->SendMsg(
          src.value(), imp.value().proxy_base + static_cast<ProxyAddr>(i) * 10'000,
          9000);
      CO_ASSERT_TRUE(s.ok());
    }
    done = true;
  };
  sim.Spawn(prog());
  EXPECT_TRUE(sim.RunUntil([&] { return done; }, 2'000'000'000));
  const auto& rstats = cluster.node(1).lcp->stats();
  EXPECT_TRUE(sim.RunUntil([&] { return rstats.bytes_received >= 6 * 9000; },
                           2'000'000'000));

  RunArtifacts out;
  out.metrics_json = sim.metrics().ToJson(sim.now());
  out.trace_json = sim.tracer().ToChromeJson();
  out.events = sim.events_processed();
  return out;
}

TEST(FaultDeterminismTest, SameSeedSamePlanIdenticalRun) {
  RunArtifacts a = RunSeededWorkload(0xC0FFEE);
  RunArtifacts b = RunSeededWorkload(0xC0FFEE);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

TEST(FaultDeterminismTest, DifferentSeedDifferentFaultSchedule) {
  RunArtifacts a = RunSeededWorkload(0xC0FFEE);
  RunArtifacts b = RunSeededWorkload(0xBEEF);
  // Both complete (asserted inside); the fault schedules differ, which a
  // 10% drop + 5% flip workload makes visible in the metrics.
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

// ---------------------------------------------------------------------------
// Fabric drop notices: a misrouted packet is reported back to the source
// LCP, which fast-retransmits instead of waiting out the RTO.
// ---------------------------------------------------------------------------

TEST(DropNoticeTest, MisrouteTriggersFastRetransmitAndDelivery) {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());

  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  bool ready = false;
  bool sent = false;
  auto setup = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(1 << 14);
    CO_ASSERT_TRUE(buf.ok());
    rbuf = buf.value();
    ExportOptions opts;
    opts.name = "mis";
    auto id =
        co_await recv.value()->ExportBuffer(rbuf, 1 << 14, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ready = true;
  };
  sim.Spawn(setup());
  ASSERT_TRUE(sim.RunUntil([&] { return ready; }, 100'000'000));

  auto payload = MakePayload(42, 12'000);
  auto sender = [&]() -> sim::Process {
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "mis", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = send.value()->AllocBuffer(1 << 14);
    CO_ASSERT_TRUE(src.ok());
    CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
    // Corrupt the route of node 0's NEXT injected packets: point them at a
    // nonexistent switch port. The switch discards them (the silent-drop
    // path this PR made loud) and notifies the source NIC.
    cluster.node(0).nic->fabric().CorruptNextRoutes(0, 3);
    Status s = co_await send.value()->SendMsg(src.value(),
                                              imp.value().proxy_base, 12'000);
    CO_ASSERT_TRUE(s.ok());
    sent = true;
  };
  sim.Spawn(sender());
  ASSERT_TRUE(sim.RunUntil([&] { return sent; }, 500'000'000));

  const auto& rstats = cluster.node(1).lcp->stats();
  ASSERT_TRUE(
      sim.RunUntil([&] { return rstats.bytes_received >= 12'000; }, 500'000'000));

  // The misroutes were observed, reported, and repaired.
  EXPECT_GT(cluster.node(0).nic->fabric().drop_notices(), 0u);
  const auto& sstats = cluster.node(0).lcp->stats();
  EXPECT_GT(sstats.drop_notices, 0u);
  EXPECT_GT(sstats.retransmits, 0u);
  // Repair came from the drop notice, not the 250 µs RTO: the whole
  // exchange fits well inside one RTO after the drop.
  EXPECT_EQ(sstats.retransmit_timeouts, 0u);

  std::vector<std::uint8_t> got(12'000);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf, got).ok());
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace vmmc::vmmc_core
