// Edge cases of the VMMC public API surface and the daemon setup paths:
// argument validation, resource lifecycle, double operations, unaligned
// inputs, teardown.
#include <gtest/gtest.h>

#include "co_test_util.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::vmmc_core {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_nodes = 2;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
    auto a = cluster_->OpenEndpoint(0, "a");
    auto b = cluster_->OpenEndpoint(1, "b");
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = std::move(a).value();
    b_ = std::move(b).value();
  }

  void RunAll() { sim_.Run(50'000'000); }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Endpoint> a_, b_;
};

TEST_F(ApiTest, SendLengthValidation) {
  Status zero = OkStatus(), huge = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto src = a_->AllocBuffer(4096);
    CO_ASSERT_TRUE(src.ok());
    zero = co_await a_->SendMsg(src.value(), MakeProxyAddr(0, 0), 0);
    huge = co_await a_->SendMsg(src.value(), MakeProxyAddr(0, 0),
                                static_cast<std::uint32_t>(
                                    params_.vmmc.max_send_bytes + 1));
    // Exactly at the limit is a *local* success check only if the proxy is
    // valid, which it is not here — but the length itself must pass the
    // library's validation and fail later with a proxy error instead.
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(zero.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(huge.code(), ErrorCode::kInvalidArgument);
}

TEST_F(ApiTest, ShortSendFromUnmappedSourceFailsLocally) {
  Status status = OkStatus();
  auto prog = [&]() -> sim::Process {
    // The library PIO-copies short payloads at post time: an unmapped
    // source is the user's fault and fails immediately.
    status = co_await a_->SendMsg(0xDEAD0000, MakeProxyAddr(0, 0), 64);
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_FALSE(status.ok());
}

TEST_F(ApiTest, LongSendFromUnmappedSourceFailsViaDriver) {
  // A long send posts only the VA; the failure surfaces when the driver
  // cannot translate it (kBadAddress completion).
  mem::VirtAddr rbuf = 0;
  Status status = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto buf = b_->AllocBuffer(8192);
    CO_ASSERT_TRUE(buf.ok());
    rbuf = buf.value();
    ExportOptions opts;
    opts.name = "sink";
    auto id = co_await b_->ExportBuffer(rbuf, 8192, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await a_->ImportBuffer(1, "sink", wait);
    CO_ASSERT_TRUE(imp.ok());
    status = co_await a_->SendMsg(0xDEAD0000, imp.value().proxy_base, 8192);
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_GE(cluster_->node(0).lcp->stats().tlb_miss_interrupts, 1u);
}

TEST_F(ApiTest, ExportValidation) {
  Result<ExportId> unaligned(InternalError("unset")), empty(InternalError("unset")),
      unnamed(InternalError("unset")), dup(InternalError("unset"));
  auto prog = [&]() -> sim::Process {
    auto buf = a_->AllocBuffer(8192);
    CO_ASSERT_TRUE(buf.ok());
    ExportOptions o1;
    o1.name = "x";
    unaligned = co_await a_->ExportBuffer(buf.value() + 100, 4096, std::move(o1));
    ExportOptions o2;
    o2.name = "y";
    empty = co_await a_->ExportBuffer(buf.value(), 0, std::move(o2));
    ExportOptions o3;  // no name
    unnamed = co_await a_->ExportBuffer(buf.value(), 4096, std::move(o3));
    ExportOptions o4;
    o4.name = "z";
    auto first = co_await a_->ExportBuffer(buf.value(), 4096, std::move(o4));
    CO_ASSERT_TRUE(first.ok());
    auto buf2 = a_->AllocBuffer(4096);
    ExportOptions o5;
    o5.name = "z";  // same name on the same node
    dup = co_await a_->ExportBuffer(buf2.value(), 4096, std::move(o5));
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(unaligned.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(empty.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(unnamed.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(dup.status().code(), ErrorCode::kAlreadyExists);
}

TEST_F(ApiTest, ExportingOverlappingBuffersFails) {
  // The incoming page table has one entry per frame: a frame cannot back
  // two exports.
  Result<ExportId> second(InternalError("unset"));
  auto prog = [&]() -> sim::Process {
    auto buf = a_->AllocBuffer(8192);
    CO_ASSERT_TRUE(buf.ok());
    ExportOptions o1;
    o1.name = "one";
    auto first = co_await a_->ExportBuffer(buf.value(), 8192, std::move(o1));
    CO_ASSERT_TRUE(first.ok());
    ExportOptions o2;
    o2.name = "two";
    second = co_await a_->ExportBuffer(buf.value() + 4096, 4096, std::move(o2));
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
}

TEST_F(ApiTest, UnexportRequiresOwnership) {
  Status wrong_owner = OkStatus(), bogus = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto buf = b_->AllocBuffer(4096);
    ExportOptions opts;
    opts.name = "owned";
    auto id = co_await b_->ExportBuffer(buf.value(), 4096, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    // Another process on the same node tries to unexport it.
    auto intruder = cluster_->OpenEndpoint(1, "intruder");
    CO_ASSERT_TRUE(intruder.ok());
    wrong_owner = co_await intruder.value()->UnexportBuffer(id.value());
    bogus = co_await b_->UnexportBuffer(9999);
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(wrong_owner.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(bogus.code(), ErrorCode::kNotFound);
}

TEST_F(ApiTest, UnexportUnpinsAndAllowsReexport) {
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = b_->AllocBuffer(8192);
    ExportOptions o1;
    o1.name = "cycle";
    auto id = co_await b_->ExportBuffer(buf.value(), 8192, std::move(o1));
    CO_ASSERT_TRUE(id.ok());
    Status un = co_await b_->UnexportBuffer(id.value());
    CO_ASSERT_TRUE(un.ok());
    // Pages are unpinned again: the buffer can be freed and re-exported.
    ExportOptions o2;
    o2.name = "cycle";  // name free again
    auto id2 = co_await b_->ExportBuffer(buf.value(), 8192, std::move(o2));
    CO_ASSERT_TRUE(id2.ok());
    Status un2 = co_await b_->UnexportBuffer(id2.value());
    CO_ASSERT_TRUE(un2.ok());
    CO_ASSERT_TRUE(b_->FreeBuffer(buf.value()).ok());
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_TRUE(done);
}

TEST_F(ApiTest, UnimportFreesProxyPagesForReuse) {
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = b_->AllocBuffer(4 * 1024 * 1024);
    CO_ASSERT_TRUE(buf.ok());
    ExportOptions opts;
    opts.name = "big";
    auto id = co_await b_->ExportBuffer(buf.value(), 4 * 1024 * 1024, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    // 4 MB import twice exceeds the 8 MB outgoing table unless the first
    // import is released.
    ImportOptions wait;
    wait.wait = true;
    auto imp1 = co_await a_->ImportBuffer(1, "big", wait);
    CO_ASSERT_TRUE(imp1.ok());
    auto imp2 = co_await a_->ImportBuffer(1, "big", wait);
    CO_ASSERT_TRUE(imp2.ok());
    auto imp3 = co_await a_->ImportBuffer(1, "big");
    CO_ASSERT_TRUE(!imp3.ok());  // table full
    Status un = co_await a_->UnimportBuffer(imp1.value());
    CO_ASSERT_TRUE(un.ok());
    auto imp4 = co_await a_->ImportBuffer(1, "big");
    CO_ASSERT_TRUE(imp4.ok());  // space again
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_TRUE(done);
}

TEST_F(ApiTest, BufferHelpers) {
  EXPECT_FALSE(a_->AllocBuffer(0).ok());
  auto buf = a_->AllocBuffer(100);
  ASSERT_TRUE(buf.ok());
  EXPECT_EQ(mem::PageOffset(buf.value()), 0u) << "buffers are page aligned";
  std::uint8_t data[4] = {1, 2, 3, 4};
  EXPECT_TRUE(a_->WriteBuffer(buf.value(), data).ok());
  std::uint8_t back[4];
  EXPECT_TRUE(a_->ReadBuffer(buf.value(), back).ok());
  EXPECT_EQ(back[2], 3);
  EXPECT_TRUE(a_->FreeBuffer(buf.value()).ok());
  EXPECT_FALSE(a_->FreeBuffer(buf.value()).ok());
  EXPECT_FALSE(a_->WriteBuffer(0xBAD000, data).ok());
}

TEST_F(ApiTest, EndpointTeardownReleasesSramForNewProcesses) {
  // Fill the NIC with processes, destroy them all, then verify the same
  // count fits again (no SRAM leak across the endpoint lifecycle).
  std::vector<std::unique_ptr<Endpoint>> batch;
  int first_count = 0;
  for (;;) {
    auto ep = cluster_->OpenEndpoint(0, "p" + std::to_string(first_count));
    if (!ep.ok()) break;
    batch.push_back(std::move(ep).value());
    ++first_count;
  }
  EXPECT_GE(first_count, 3);
  batch.clear();  // destroys endpoints, unregisters processes
  int second_count = 0;
  std::vector<std::unique_ptr<Endpoint>> batch2;
  for (;;) {
    auto ep = cluster_->OpenEndpoint(0, "q" + std::to_string(second_count));
    if (!ep.ok()) break;
    batch2.push_back(std::move(ep).value());
    ++second_count;
  }
  EXPECT_EQ(second_count, first_count);
}

TEST_F(ApiTest, SelfNodeImportAndSendWork) {
  // Importing a buffer exported on one's own node routes through the
  // switch and back (the self route) — legal in VMMC.
  bool done = false;
  std::vector<std::uint8_t> got(256);
  auto prog = [&]() -> sim::Process {
    auto other = cluster_->OpenEndpoint(0, "local-peer");
    CO_ASSERT_TRUE(other.ok());
    auto buf = other.value()->AllocBuffer(4096);
    ExportOptions opts;
    opts.name = "local";
    auto id = co_await other.value()->ExportBuffer(buf.value(), 4096,
                                                   std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    auto imp = co_await a_->ImportBuffer(0, "local");
    CO_ASSERT_TRUE(imp.ok());
    auto src = a_->AllocBuffer(4096);
    std::vector<std::uint8_t> data(256, 0x3C);
    CO_ASSERT_TRUE(a_->WriteBuffer(src.value(), data).ok());
    Status s = co_await a_->SendMsg(src.value(), imp.value().proxy_base, 256);
    CO_ASSERT_TRUE(s.ok());
    co_await sim_.Delay(sim::Milliseconds(1));
    CO_ASSERT_TRUE(other.value()->ReadBuffer(buf.value(), got).ok());
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  ASSERT_TRUE(done);
  EXPECT_EQ(got, std::vector<std::uint8_t>(256, 0x3C));
}

TEST_F(ApiTest, LcpInterfaceRejectsBadSlots) {
  VmmcLcp* lcp = cluster_->node(0).lcp;
  ProcState* state = lcp->FindProc(a_->process().pid());
  ASSERT_NE(state, nullptr);
  SendRequest req;
  req.len = 64;
  req.slot = 9999;  // out of range
  EXPECT_FALSE(lcp->PostSend(*state, std::move(req)).ok());
  EXPECT_EQ(lcp->FindProc(31337), nullptr);
  EXPECT_FALSE(lcp->UnregisterProcess(31337).ok());
  EXPECT_FALSE(lcp->TakePendingTlbMiss().has_value());
  EXPECT_FALSE(lcp->PopNotification().has_value());
}

}  // namespace
}  // namespace vmmc::vmmc_core
