// Registration (pin-down) cache: nested acquires, LRU eviction under a
// pinned-bytes budget, invalidation from the address-space release hook,
// interaction with Unmap's pinned-page contract, and the one-sided RDMA
// paths built on top (write with completion fin, reader-pull read,
// protection rejection).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "co_test_util.h"
#include "vmmc/mem/address_space.h"
#include "vmmc/vmmc/cluster.h"
#include "vmmc/vmmc/p2p.h"

namespace vmmc::vmmc_core {
namespace {

class RegCacheTest : public ::testing::Test {
 protected:
  // Budget fits exactly four pages so eviction is easy to provoke.
  static constexpr std::uint64_t kBudget = 4 * mem::kPageSize;

  void SetUp() override {
    params_.vmmc.regcache.budget_bytes = kBudget;
    ClusterOptions options;
    options.num_nodes = 2;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
    auto a = cluster_->OpenEndpoint(0, "a");
    ASSERT_TRUE(a.ok());
    a_ = std::move(a).value();
  }

  mem::VirtAddr Alloc(std::uint32_t len) {
    auto va = a_->AllocBuffer(len);
    EXPECT_TRUE(va.ok());
    return va.value();
  }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Endpoint> a_;
};

TEST_F(RegCacheTest, NestedAcquiresShareOnePin) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr va = Alloc(2 * mem::kPageSize);

  auto first = rc.Acquire(va, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().hit);
  EXPECT_GT(first.value().cost, 0);
  EXPECT_NE(first.value().region.rtag, 0u);

  auto second = rc.Acquire(va, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().hit);
  // One pin-down shared by both references: same rtag, one entry, the
  // footprint counted once.
  EXPECT_EQ(second.value().region.rtag, first.value().region.rtag);
  EXPECT_EQ(rc.entry_count(), 1u);
  EXPECT_EQ(rc.pinned_bytes(), 2 * mem::kPageSize);
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.misses(), 1u);

  // Both releases: the entry stays warm (idle), still pinned.
  EXPECT_TRUE(rc.Release(first.value().region.cache_id).ok());
  EXPECT_TRUE(rc.Release(second.value().region.cache_id).ok());
  EXPECT_EQ(rc.entry_count(), 1u);
  EXPECT_EQ(rc.pinned_bytes(), 2 * mem::kPageSize);

  // Releasing again is a caller bug and is reported.
  EXPECT_EQ(rc.Release(first.value().region.cache_id).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(RegCacheTest, WarmReacquireIsAHitWithSmallCost) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr va = Alloc(mem::kPageSize);
  auto cold = rc.Acquire(va, mem::kPageSize, RegIntent::kSend);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(rc.Release(cold.value().region.cache_id).ok());

  auto warm = rc.Acquire(va, mem::kPageSize, RegIntent::kSend);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().hit);
  EXPECT_EQ(warm.value().cost, params_.vmmc.regcache.hit_lookup);
  EXPECT_LT(warm.value().cost, cold.value().cost);
  ASSERT_TRUE(rc.Release(warm.value().region.cache_id).ok());
}

TEST_F(RegCacheTest, DifferentIntentIsADifferentEntry) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr va = Alloc(mem::kPageSize);
  auto send = rc.Acquire(va, mem::kPageSize, RegIntent::kSend);
  auto recv = rc.Acquire(va, mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(send.ok() && recv.ok());
  EXPECT_FALSE(recv.value().hit);
  EXPECT_EQ(rc.entry_count(), 2u);
  EXPECT_EQ(send.value().region.rtag, 0u);  // send-only: no recv region
  EXPECT_NE(recv.value().region.rtag, 0u);
  EXPECT_TRUE(rc.Release(send.value().region.cache_id).ok());
  EXPECT_TRUE(rc.Release(recv.value().region.cache_id).ok());
}

TEST_F(RegCacheTest, LruEvictionUnderTightBudget) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr a = Alloc(2 * mem::kPageSize);
  const mem::VirtAddr b = Alloc(2 * mem::kPageSize);
  const mem::VirtAddr c = Alloc(2 * mem::kPageSize);

  auto ra = rc.Acquire(a, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rc.Release(ra.value().region.cache_id).ok());
  auto rb = rc.Acquire(b, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rc.Release(rb.value().region.cache_id).ok());
  EXPECT_EQ(rc.pinned_bytes(), kBudget);  // full, nothing evicted yet
  EXPECT_EQ(rc.evictions(), 0u);

  // Third registration: the budget forces out the least recently idle
  // entry (a), not b.
  auto rok = rc.Acquire(c, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(rok.ok());
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_EQ(rc.pinned_bytes(), kBudget);
  auto rb2 = rc.Acquire(b, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(rb2.ok());
  EXPECT_TRUE(rb2.value().hit);  // b survived
  auto ra2 = rc.Acquire(a, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(ra2.ok());
  EXPECT_FALSE(ra2.value().hit);  // a was the eviction victim
  EXPECT_TRUE(rc.Release(rok.value().region.cache_id).ok());
  EXPECT_TRUE(rc.Release(rb2.value().region.cache_id).ok());
  EXPECT_TRUE(rc.Release(ra2.value().region.cache_id).ok());
}

TEST_F(RegCacheTest, ActiveEntriesAreNeverEvicted) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr a = Alloc(2 * mem::kPageSize);
  const mem::VirtAddr b = Alloc(2 * mem::kPageSize);
  const mem::VirtAddr c = Alloc(2 * mem::kPageSize);

  auto ra = rc.Acquire(a, 2 * mem::kPageSize, RegIntent::kRecv);
  auto rb = rc.Acquire(b, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // Budget is full of *active* registrations; a third acquire must not
  // tear either down — the cache goes over budget instead (the kernel
  // would, too: the pages are wired).
  auto rok = rc.Acquire(c, 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(rok.ok());
  EXPECT_EQ(rc.evictions(), 0u);
  EXPECT_EQ(rc.pinned_bytes(), 6 * mem::kPageSize);
  // Releases bring it back under budget: the over-budget idle entries are
  // reclaimed in LRU order.
  EXPECT_TRUE(rc.Release(ra.value().region.cache_id).ok());
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_EQ(rc.pinned_bytes(), kBudget);
  EXPECT_TRUE(rc.Release(rb.value().region.cache_id).ok());
  EXPECT_TRUE(rc.Release(rok.value().region.cache_id).ok());
}

TEST_F(RegCacheTest, HeapFreeInvalidatesIdleEntries) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr va = Alloc(mem::kPageSize);
  auto r = rc.Acquire(va, mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(rc.Release(r.value().region.cache_id).ok());
  EXPECT_EQ(rc.entry_count(), 1u);

  // FreeBuffer -> HeapFree fires the release listener: the idle pin is
  // dropped so the heap block can be recycled safely.
  ASSERT_TRUE(a_->FreeBuffer(va).ok());
  EXPECT_EQ(rc.entry_count(), 0u);
  EXPECT_EQ(rc.pinned_bytes(), 0u);
  EXPECT_EQ(rc.evictions(), 1u);
}

TEST_F(RegCacheTest, UnmapFailsOverActiveRegistrationThenSucceeds) {
  RegCache& rc = a_->reg_cache();
  mem::AddressSpace& as = a_->memory();
  auto va = as.MapAnonymous(2 * mem::kPageSize);
  ASSERT_TRUE(va.ok());

  auto r = rc.Acquire(va.value(), 2 * mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(r.ok());
  // The release listener may only drop idle pins; the active registration
  // keeps its pages pinned, so the unmap must refuse (atomically).
  Status blocked = as.Unmap(va.value(), 2 * mem::kPageSize);
  EXPECT_EQ(blocked.code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(rc.entry_count(), 1u);

  ASSERT_TRUE(rc.Release(r.value().region.cache_id).ok());
  // Now the entry is idle: the listener unpins it and the unmap goes
  // through.
  EXPECT_TRUE(as.Unmap(va.value(), 2 * mem::kPageSize).ok());
  EXPECT_EQ(rc.entry_count(), 0u);
}

TEST_F(RegCacheTest, MetricsAreRegistered) {
  RegCache& rc = a_->reg_cache();
  const mem::VirtAddr va = Alloc(mem::kPageSize);
  auto r = rc.Acquire(va, mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(r.ok());
  auto again = rc.Acquire(va, mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(rc.Release(r.value().region.cache_id).ok());
  ASSERT_TRUE(rc.Release(again.value().region.cache_id).ok());
  ASSERT_TRUE(a_->FreeBuffer(va).ok());

  const obs::Registry& m = sim_.metrics();
  EXPECT_EQ(m.CounterValue("node0.regcache.miss"), 1u);
  EXPECT_EQ(m.CounterValue("node0.regcache.hit"), 1u);
  EXPECT_EQ(m.CounterValue("node0.regcache.evict"), 1u);
  const obs::Gauge* pinned = m.FindGauge("node0.regcache.pinned_bytes");
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->value(), 0.0);
}

TEST_F(RegCacheTest, DisabledCacheTearsDownOnRelease) {
  Params params;
  params.vmmc.regcache.enabled = false;
  sim::Simulator sim;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  auto ep = cluster.OpenEndpoint(0, "cold");
  ASSERT_TRUE(ep.ok());
  RegCache& rc = ep.value()->reg_cache();
  auto va = ep.value()->AllocBuffer(mem::kPageSize);
  ASSERT_TRUE(va.ok());

  auto r1 = rc.Acquire(va.value(), mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(r1.ok());
  auto unpin = rc.Release(r1.value().region.cache_id);
  ASSERT_TRUE(unpin.ok());
  EXPECT_GT(unpin.value(), 0);  // the unpin syscall is charged
  EXPECT_EQ(rc.entry_count(), 0u);
  // No reuse: the next acquire pays the pin again.
  auto r2 = rc.Acquire(va.value(), mem::kPageSize, RegIntent::kRecv);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().hit);
  EXPECT_EQ(rc.hits(), 0u);
  ASSERT_TRUE(rc.Release(r2.value().region.cache_id).ok());
}

// --- one-sided RDMA over the wire ----------------------------------------

class RdmaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterOptions options;
    options.num_nodes = 2;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
    auto a = cluster_->OpenEndpoint(0, "a");
    auto b = cluster_->OpenEndpoint(1, "b");
    ASSERT_TRUE(a.ok() && b.ok());
    a_ = std::move(a).value();
    b_ = std::move(b).value();
  }

  void RunAll() { sim_.Run(100'000'000); }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Endpoint> a_, b_;
};

TEST_F(RdmaTest, WriteDeliversDataAndFin) {
  constexpr std::uint32_t kLen = 10'000;  // chunked, not page-aligned
  bool done = false;
  std::vector<std::uint8_t> got(kLen);
  std::uint32_t fin_word = 0;
  auto prog = [&]() -> sim::Process {
    // b: a data region and a 1-page fin region, both receive-registered.
    auto dst = b_->AllocBuffer(kLen);
    auto fin = b_->AllocBuffer(mem::kPageSize);
    CO_ASSERT_TRUE(dst.ok() && fin.ok());
    auto dreg = co_await b_->RegisterMemory(dst.value(), kLen,
                                            RegIntent::kRecv);
    auto freg = co_await b_->RegisterMemory(fin.value(), mem::kPageSize,
                                            RegIntent::kRecv);
    CO_ASSERT_TRUE(dreg.ok() && freg.ok());

    auto src = a_->AllocBuffer(kLen);
    CO_ASSERT_TRUE(src.ok());
    std::vector<std::uint8_t> payload(kLen);
    for (std::uint32_t i = 0; i < kLen; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 7);
    }
    CO_ASSERT_TRUE(a_->WriteBuffer(src.value(), payload).ok());

    RdmaOptions opts;
    opts.fin_rtag = freg.value().rtag;
    opts.fin_offset = 8;
    opts.fin_value = 0xC0FFEE;
    Status w = co_await a_->RdmaWrite(
        src.value(), RemoteTarget{1, dreg.value().rtag, 0}, kLen, opts);
    CO_ASSERT_TRUE(w.ok());

    // The fin chunk is ordered after the data chunks on the same wire:
    // once it lands, the payload is complete.
    for (;;) {
      auto word = b_->memory().ReadU32(fin.value() + 8);
      CO_ASSERT_TRUE(word.ok());
      if (word.value() != 0) {
        fin_word = word.value();
        break;
      }
      co_await sim_.Delay(1'000);
    }
    CO_ASSERT_TRUE(b_->ReadBuffer(dst.value(), got).ok());
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  ASSERT_TRUE(done);
  EXPECT_EQ(fin_word, 0xC0FFEEu);
  for (std::uint32_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(got[i], static_cast<std::uint8_t>(i * 7)) << "at byte " << i;
  }
  EXPECT_GE(cluster_->node(0).lcp->stats().rdma_writes, 1u);
}

TEST_F(RdmaTest, ReadPullsRemoteData) {
  constexpr std::uint32_t kLen = 20'000;
  bool done = false;
  std::vector<std::uint8_t> got(kLen);
  auto prog = [&]() -> sim::Process {
    // b exposes a source region; a pulls it with a one-sided read.
    auto src = b_->AllocBuffer(kLen);
    CO_ASSERT_TRUE(src.ok());
    std::vector<std::uint8_t> payload(kLen);
    for (std::uint32_t i = 0; i < kLen; ++i) {
      payload[i] = static_cast<std::uint8_t>(255 - (i % 251));
    }
    CO_ASSERT_TRUE(b_->WriteBuffer(src.value(), payload).ok());
    auto sreg = co_await b_->RegisterMemory(src.value(), kLen,
                                            RegIntent::kRecv);
    CO_ASSERT_TRUE(sreg.ok());

    auto dst = a_->AllocBuffer(kLen);
    CO_ASSERT_TRUE(dst.ok());
    auto dreg = co_await a_->RegisterMemory(dst.value(), kLen,
                                            RegIntent::kRecv);
    CO_ASSERT_TRUE(dreg.ok());
    Status r = co_await a_->RdmaRead(RemoteTarget{1, sreg.value().rtag, 0},
                                     kLen, dreg.value(), 0);
    CO_ASSERT_TRUE(r.ok());
    CO_ASSERT_TRUE(a_->ReadBuffer(dst.value(), got).ok());
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  ASSERT_TRUE(done);
  for (std::uint32_t i = 0; i < kLen; ++i) {
    ASSERT_EQ(got[i], static_cast<std::uint8_t>(255 - (i % 251)))
        << "at byte " << i;
  }
  EXPECT_GE(cluster_->node(1).lcp->stats().rdma_reads_served, 1u);
}

TEST_F(RdmaTest, ReadFromBogusRtagIsRejectedRemotely) {
  bool done = false;
  Status r = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto dst = a_->AllocBuffer(4096);
    CO_ASSERT_TRUE(dst.ok());
    auto dreg = co_await a_->RegisterMemory(dst.value(), 4096,
                                            RegIntent::kRecv);
    CO_ASSERT_TRUE(dreg.ok());
    // rtag 0x7777 was never created on node 1: the serving LCP counts a
    // protection violation and flips the error bit in the fin word
    // instead of leaving the reader spinning.
    r = co_await a_->RdmaRead(RemoteTarget{1, 0x7777, 0}, 4096,
                              dreg.value(), 0);
    done = true;
  };
  sim_.Spawn(prog());
  RunAll();
  ASSERT_TRUE(done);
  EXPECT_EQ(r.code(), ErrorCode::kPermissionDenied);
  EXPECT_GE(cluster_->node(1).lcp->stats().protection_violations, 1u);
}

TEST_F(RdmaTest, WriteValidatesArguments) {
  Status bad_len = OkStatus(), bad_target = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto src = a_->AllocBuffer(4096);
    CO_ASSERT_TRUE(src.ok());
    bad_len = co_await a_->RdmaWrite(src.value(), RemoteTarget{1, 5, 0}, 0);
    bad_target = co_await a_->RdmaWrite(src.value(), RemoteTarget{1, 0, 0},
                                        128);
  };
  sim_.Spawn(prog());
  RunAll();
  EXPECT_EQ(bad_len.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad_target.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace vmmc::vmmc_core
