// Tests for the comparison systems: the SHRIMP platform (§6) and the
// Fast Messages / PM / Myrinet API / Active Messages layers (§7).
#include <gtest/gtest.h>

#include <numeric>

#include "co_test_util.h"
#include "vmmc/compat/am.h"
#include "vmmc/compat/fm.h"
#include "vmmc/compat/mapi.h"
#include "vmmc/compat/pm.h"
#include "vmmc/compat/shrimp.h"
#include "vmmc/compat/testbed.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::compat {
namespace {

using sim::Tick;

std::vector<std::uint8_t> Pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(seed + i * 3);
  return v;
}

// ---------------- SHRIMP ----------------

class ShrimpTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
  ShrimpSystem system_{sim_, params_, 2};
};

TEST_F(ShrimpTest, DeliberateUpdateDeliversData) {
  ShrimpEndpoint recv(system_, 1, "recv");
  ShrimpEndpoint send(system_, 0, "send");
  auto rbuf = recv.AllocBuffer(64 * 1024);
  ASSERT_TRUE(rbuf.ok());
  ASSERT_TRUE(recv.ExportBuffer(rbuf.value(), 64 * 1024, "ring").ok());
  auto proxy = send.ImportBuffer(1, "ring");
  ASSERT_TRUE(proxy.ok());

  auto src = send.AllocBuffer(64 * 1024);
  ASSERT_TRUE(src.ok());
  auto data = Pattern(50000, 9);
  ASSERT_TRUE(send.memory().Write(src.value(), data).ok());

  Status status = InternalError("unset");
  auto prog = [&]() -> sim::Process {
    status = co_await send.SendMsg(src.value(), proxy.value(), 50000);
  };
  sim_.Spawn(prog());
  sim_.Run();
  ASSERT_TRUE(status.ok());

  std::vector<std::uint8_t> got(50000);
  ASSERT_TRUE(recv.memory().Read(rbuf.value(), got).ok());
  EXPECT_EQ(got, data);
  EXPECT_EQ(system_.nic(1).stats().bytes_received, 50000u);
}

TEST_F(ShrimpTest, BandwidthIsEisaLimited) {
  ShrimpEndpoint recv(system_, 1, "recv");
  ShrimpEndpoint send(system_, 0, "send");
  const std::uint32_t kLen = 1 << 20;
  auto rbuf = recv.AllocBuffer(kLen);
  ASSERT_TRUE(recv.ExportBuffer(rbuf.value(), kLen, "big").ok());
  auto proxy = send.ImportBuffer(1, "big");
  ASSERT_TRUE(proxy.ok());
  auto src = send.AllocBuffer(kLen);

  Tick elapsed = 0;
  auto prog = [&]() -> sim::Process {
    const Tick t0 = sim_.now();
    Status s = co_await send.SendMsg(src.value(), proxy.value(), kLen);
    CO_ASSERT_TRUE(s.ok());
    elapsed = sim_.now() - t0;
  };
  sim_.Spawn(prog());
  sim_.Run();
  const double bw = sim::MBPerSec(kLen, elapsed);
  // "user-to-user bandwidth equal to achievable hardware limit (23 MB/s)".
  EXPECT_GT(bw, 20.0);
  EXPECT_LE(bw, 23.5);
}

TEST_F(ShrimpTest, SendToUnimportedProxyRejectedByEngine) {
  ShrimpEndpoint send(system_, 0, "send");
  auto src = send.AllocBuffer(4096);
  Status status = InternalError("unset");
  auto prog = [&]() -> sim::Process {
    status = co_await send.SendMsg(src.value(), vmmc_core::MakeProxyAddr(7, 0), 512);
  };
  sim_.Spawn(prog());
  sim_.Run();
  // The engine drops the transfer; the violation is counted.
  EXPECT_EQ(system_.nic(0).stats().protection_violations, 1u);
  EXPECT_EQ(system_.nic(1).stats().bytes_received, 0u);
}

TEST_F(ShrimpTest, ImportRequiresExport) {
  ShrimpEndpoint send(system_, 0, "send");
  EXPECT_FALSE(send.ImportBuffer(1, "ghost").ok());
}

TEST_F(ShrimpTest, AutomaticUpdatePropagatesStores) {
  // §6 footnote: automatic update snoops writes directly from the memory
  // bus — stores to a mapped region appear in the remote buffer without
  // any send operation.
  ShrimpEndpoint recv(system_, 1, "recv");
  ShrimpEndpoint send(system_, 0, "send");
  auto rbuf = recv.AllocBuffer(8192);
  ASSERT_TRUE(recv.ExportBuffer(rbuf.value(), 8192, "au").ok());
  auto proxy = send.ImportBuffer(1, "au");
  ASSERT_TRUE(proxy.ok());
  auto local = send.AllocBuffer(8192);

  ASSERT_TRUE(send.MapAutomaticUpdate(local.value(), 8192, proxy.value()).ok());
  EXPECT_FALSE(send.MapAutomaticUpdate(local.value(), 8192,
                                       vmmc_core::MakeProxyAddr(500, 0)).ok())
      << "mapping to a non-imported proxy must fail";

  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto data = Pattern(3000, 0x21);
    Status s = co_await send.AutoWrite(local.value() + 100, data);
    CO_ASSERT_TRUE(s.ok());
    done = true;
  };
  sim_.Spawn(prog());
  sim_.Run();
  ASSERT_TRUE(done);

  // Local memory updated...
  std::vector<std::uint8_t> local_back(3000);
  ASSERT_TRUE(send.memory().Read(local.value() + 100, local_back).ok());
  EXPECT_EQ(local_back, Pattern(3000, 0x21));
  // ...and the remote buffer mirrors it at the same offset.
  std::vector<std::uint8_t> remote_back(3000);
  ASSERT_TRUE(recv.memory().Read(rbuf.value() + 100, remote_back).ok());
  EXPECT_EQ(remote_back, Pattern(3000, 0x21));
}

TEST_F(ShrimpTest, AutoWriteOutsideMappingStaysLocal) {
  ShrimpEndpoint recv(system_, 1, "recv");
  ShrimpEndpoint send(system_, 0, "send");
  auto rbuf = recv.AllocBuffer(4096);
  ASSERT_TRUE(recv.ExportBuffer(rbuf.value(), 4096, "au2").ok());
  auto proxy = send.ImportBuffer(1, "au2");
  auto local = send.AllocBuffer(8192);
  ASSERT_TRUE(send.MapAutomaticUpdate(local.value(), 4096, proxy.value()).ok());

  bool done = false;
  auto prog = [&]() -> sim::Process {
    // A write past the mapped range is an ordinary local store.
    auto data = Pattern(100, 0x9);
    Status s = co_await send.AutoWrite(local.value() + 5000, data);
    CO_ASSERT_TRUE(s.ok());
    done = true;
  };
  sim_.Spawn(prog());
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(system_.nic(1).stats().bytes_received, 0u);
}

// ---------------- Fast Messages ----------------

class FmTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
  Testbed testbed_{sim_, params_, 2};
};

TEST_F(FmTest, HandlerReceivesMessage) {
  FmEndpoint a(testbed_, 0), b(testbed_, 1);
  std::vector<std::uint8_t> got;
  b.RegisterHandler(7, [&](std::span<const std::uint8_t> msg) {
    got.assign(msg.begin(), msg.end());
  });
  auto data = Pattern(1000, 3);
  bool done = false;
  auto prog = [&]() -> sim::Process {
    Status s = co_await a.Send(1, 7, data);
    CO_ASSERT_TRUE(s.ok());
    // Poll until the message is extracted.
    while ((co_await b.Extract()) == 0) co_await sim_.Delay(1000);
    done = true;
  };
  sim_.Spawn(prog());
  sim_.RunUntil([&] { return done; });
  EXPECT_EQ(got, data);
  EXPECT_EQ(b.messages_received(), 1u);
  // The FM receive path COPIES into user structures (§7) — unlike VMMC.
  EXPECT_GT(testbed_.machine(1).cpu().bcopy_calls(), 0u);
}

TEST_F(FmTest, MultiFrameMessagesReassembleInOrder) {
  FmEndpoint a(testbed_, 0), b(testbed_, 1);
  std::vector<std::vector<std::uint8_t>> got;
  b.RegisterHandler(1, [&](std::span<const std::uint8_t> msg) {
    got.emplace_back(msg.begin(), msg.end());
  });
  bool done = false;
  auto prog = [&]() -> sim::Process {
    for (int i = 0; i < 5; ++i) {
      Status s = co_await a.Send(1, 1, Pattern(300 + 100 * static_cast<std::size_t>(i),
                                               static_cast<std::uint8_t>(i)));
      CO_ASSERT_TRUE(s.ok());
    }
    while (b.messages_received() < 5) {
      (void)co_await b.Extract();
      co_await sim_.Delay(1000);
    }
    done = true;
  };
  sim_.Spawn(prog());
  sim_.RunUntil([&] { return done; });
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              Pattern(300 + 100 * static_cast<std::size_t>(i),
                      static_cast<std::uint8_t>(i)));
  }
}

// ---------------- PM ----------------

class PmTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
};

TEST_F(PmTest, MessageDeliveredThroughWindow) {
  Testbed testbed(sim_, params_, 2);
  PmEndpoint a(testbed, 0), b(testbed, 1);
  auto data = Pattern(100000, 5);  // 13 units: exceeds the window of 8
  std::vector<std::uint8_t> got;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    Status s = co_await a.Send(1, data);
    CO_ASSERT_TRUE(s.ok());
    for (;;) {
      got = co_await b.Poll();
      if (!got.empty()) break;
      co_await sim_.Delay(5000);
    }
    done = true;
  };
  sim_.Spawn(prog());
  sim_.RunUntil([&] { return done; });
  EXPECT_EQ(got, data);
  EXPECT_EQ(a.retransmits(), 0u);
}

TEST_F(PmTest, AckNackRecoversFromCorruptedUnits) {
  params_.net.packet_error_rate = 0.05;  // both data and control packets
  Testbed testbed(sim_, params_, 2);
  PmEndpoint a(testbed, 0), b(testbed, 1);
  auto data = Pattern(200000, 11);
  std::vector<std::uint8_t> got;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    Status s = co_await a.Send(1, data);
    CO_ASSERT_TRUE(s.ok());
    for (;;) {
      got = co_await b.Poll();
      if (!got.empty()) break;
      co_await sim_.Delay(10'000);
    }
    done = true;
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 50'000'000));
  EXPECT_EQ(got, data) << "flow control must mask the lossy link";
  EXPECT_GT(a.retransmits(), 0u);
}

// ---------------- Myrinet API ----------------

class MapiTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
};

TEST_F(MapiTest, ChannelsDemultiplexAndChecksum) {
  Testbed testbed(sim_, params_, 2);
  MapiEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  std::vector<std::uint8_t> got3, got9;
  auto prog = [&]() -> sim::Process {
    Status s = co_await a.Send(1, 3, Pattern(500, 1));
    CO_ASSERT_TRUE(s.ok());
    s = co_await a.Send(1, 9, Pattern(700, 2));
    CO_ASSERT_TRUE(s.ok());
    while (got3.empty() || got9.empty()) {
      if (got3.empty()) got3 = co_await b.Recv(3);
      if (got9.empty()) got9 = co_await b.Recv(9);
      co_await sim_.Delay(5000);
    }
    done = true;
  };
  sim_.Spawn(prog());
  sim_.RunUntil([&] { return done; });
  EXPECT_EQ(got3, Pattern(500, 1));
  EXPECT_EQ(got9, Pattern(700, 2));
  EXPECT_EQ(b.checksum_failures(), 0u);
}

TEST_F(MapiTest, NoReliability_CorruptedMessagesSilentlyLost) {
  params_.net.packet_error_rate = 1.0;
  Testbed testbed(sim_, params_, 2);
  MapiEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  std::vector<std::uint8_t> got;
  auto prog = [&]() -> sim::Process {
    Status s = co_await a.Send(1, 1, Pattern(100, 1));
    CO_ASSERT_TRUE(s.ok());
    co_await sim_.Delay(sim::Milliseconds(5));
    got = co_await b.Recv(1);
    done = true;
  };
  sim_.Spawn(prog());
  sim_.RunUntil([&] { return done; });
  EXPECT_TRUE(got.empty()) << "the Myrinet API has no reliable delivery (§7)";
}

// ---------------- Active Messages over VMMC ----------------

TEST(AmTest, RequestReplyRoundTrip) {
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());

  auto a = AmEndpoint::Create(cluster, 0);
  auto b = AmEndpoint::Create(cluster, 1);
  ASSERT_TRUE(a.ok() && b.ok());

  b.value()->RegisterRequestHandler(42, [](const AmEndpoint::Payload& args) {
    AmEndpoint::Payload reply{};
    for (std::size_t i = 0; i < args.size(); ++i) reply[i] = args[i] * 2;
    return reply;
  });

  bool done = false;
  AmEndpoint::Payload reply{};
  auto prog = [&]() -> sim::Process {
    Status c = co_await a.value()->Connect(*b.value());
    CO_ASSERT_TRUE(c.ok());
    sim.Spawn(b.value()->ServeLoop());
    AmEndpoint::Payload args{};
    for (std::uint32_t i = 0; i < args.size(); ++i) args[i] = i + 1;
    auto r = co_await a.value()->Request(1, 42, args);
    CO_ASSERT_TRUE(r.ok());
    reply = r.value();
    b.value()->StopServing();
    done = true;
  };
  sim.Spawn(prog());
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 50'000'000));
  for (std::uint32_t i = 0; i < reply.size(); ++i) EXPECT_EQ(reply[i], (i + 1) * 2);
  EXPECT_EQ(b.value()->requests_served(), 1u);
}

TEST(AmTest, RequestToUnconnectedNodeFails) {
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  auto a = AmEndpoint::Create(cluster, 0);
  ASSERT_TRUE(a.ok());
  bool done = false;
  Status status = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto r = co_await a.value()->Request(1, 1, {});
    status = r.status();
    done = true;
  };
  sim.Spawn(prog());
  sim.RunUntil([&] { return done; });
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace vmmc::compat
