// System-level property and stress tests: random traffic integrity across
// a full cluster, determinism of whole-cluster runs, backpressure under
// send-queue flooding, lossy-link behaviour, and daemon robustness against
// malformed control traffic.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "co_test_util.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::vmmc_core {
namespace {

using sim::Tick;

// Deterministic payload for (sender, receiver, message index, length).
std::vector<std::uint8_t> MakePayload(int src, int dst, int n, std::uint32_t len) {
  std::vector<std::uint8_t> v(len);
  std::uint32_t x = static_cast<std::uint32_t>(src * 7919 + dst * 104729 + n * 31 + 1);
  for (std::uint32_t i = 0; i < len; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::uint8_t>(x >> 24);
  }
  return v;
}

struct RandomTrafficResult {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t mismatches = 0;
  Tick finished_at = 0;
  std::uint64_t events = 0;
};

// Every node sends `per_pair` messages of random size to every other node,
// into per-(src,dst,msg) offsets of a large exported region; afterwards the
// contents are verified byte for byte.
RandomTrafficResult RunRandomTraffic(int nodes, int per_pair, std::uint64_t seed) {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = nodes;
  Cluster cluster(sim, params, options);
  EXPECT_TRUE(cluster.Boot().ok());

  RandomTrafficResult result;
  // Region layout: each (src, msg) pair gets a 4 KB-aligned slice.
  const std::uint32_t kSlice = 8192;
  const std::uint32_t region =
      static_cast<std::uint32_t>(nodes) * static_cast<std::uint32_t>(per_pair) * kSlice;

  std::vector<std::unique_ptr<Endpoint>> eps;
  std::vector<mem::VirtAddr> regions(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    auto ep = cluster.OpenEndpoint(n, "stress-" + std::to_string(n));
    EXPECT_TRUE(ep.ok());
    eps.push_back(std::move(ep).value());
  }

  int setups_done = 0;
  auto setup = [&](int n) -> sim::Process {
    auto buf = eps[static_cast<std::size_t>(n)]->AllocBuffer(region);
    CO_ASSERT_TRUE(buf.ok());
    regions[static_cast<std::size_t>(n)] = buf.value();
    ExportOptions opts;
    opts.name = "region-" + std::to_string(n);
    auto id = co_await eps[static_cast<std::size_t>(n)]->ExportBuffer(
        buf.value(), region, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ++setups_done;
  };
  for (int n = 0; n < nodes; ++n) sim.Spawn(setup(n));
  EXPECT_TRUE(sim.RunUntil([&] { return setups_done == nodes; }, 50'000'000));

  int senders_done = 0;
  auto sender = [&](int src) -> sim::Process {
    Endpoint& ep = *eps[static_cast<std::size_t>(src)];
    sim::Rng rng(seed * 1000 + static_cast<std::uint64_t>(src));
    // Import every peer's region.
    std::map<int, ProxyAddr> proxies;
    for (int dst = 0; dst < nodes; ++dst) {
      if (dst == src) continue;
      ImportOptions wait;
      wait.wait = true;
      auto imp = co_await ep.ImportBuffer(dst, "region-" + std::to_string(dst), wait);
      CO_ASSERT_TRUE(imp.ok());
      proxies[dst] = imp.value().proxy_base;
    }
    auto staging = ep.AllocBuffer(kSlice);
    CO_ASSERT_TRUE(staging.ok());
    for (int n = 0; n < per_pair; ++n) {
      for (int dst = 0; dst < nodes; ++dst) {
        if (dst == src) continue;
        // Mix of short and long messages, odd lengths included.
        const std::uint32_t len =
            1 + static_cast<std::uint32_t>(rng.UniformU64(kSlice - 1));
        auto payload = MakePayload(src, dst, n, len);
        CO_ASSERT_TRUE(ep.WriteBuffer(staging.value(), payload).ok());
        const std::uint32_t slot =
            (static_cast<std::uint32_t>(src) * static_cast<std::uint32_t>(per_pair) +
             static_cast<std::uint32_t>(n)) *
            kSlice;
        Status s = co_await ep.SendMsg(staging.value(), proxies[dst] + slot, len);
        CO_ASSERT_TRUE(s.ok());
        result.messages++;
        result.bytes += len;
        co_await sim.Delay(rng.UniformU64(20'000));
      }
    }
    ++senders_done;
  };
  for (int src = 0; src < nodes; ++src) sim.Spawn(sender(src));
  EXPECT_TRUE(sim.RunUntil([&] { return senders_done == nodes; }, 200'000'000));
  sim.Run(10'000'000);  // drain in-flight deliveries
  result.finished_at = sim.now();
  result.events = sim.events_processed();

  // Verify every slice.
  for (int dst = 0; dst < nodes; ++dst) {
    for (int src = 0; src < nodes; ++src) {
      if (src == dst) continue;
      sim::Rng rng(seed * 1000 + static_cast<std::uint64_t>(src));
      // Reproduce the sender's length sequence: lengths were drawn in the
      // same (n, dst) order.
      std::map<std::pair<int, int>, std::uint32_t> lengths;
      for (int n = 0; n < per_pair; ++n) {
        for (int d = 0; d < nodes; ++d) {
          if (d == src) continue;
          const std::uint32_t len =
              1 + static_cast<std::uint32_t>(rng.UniformU64(kSlice - 1));
          lengths[{n, d}] = len;
          rng.UniformU64(20'000);  // the pacing draw
        }
      }
      for (int n = 0; n < per_pair; ++n) {
        const std::uint32_t len = lengths[{n, dst}];
        const std::uint32_t slot =
            (static_cast<std::uint32_t>(src) * static_cast<std::uint32_t>(per_pair) +
             static_cast<std::uint32_t>(n)) *
            kSlice;
        std::vector<std::uint8_t> got(len);
        EXPECT_TRUE(eps[static_cast<std::size_t>(dst)]
                        ->ReadBuffer(regions[static_cast<std::size_t>(dst)] + slot, got)
                        .ok());
        if (got != MakePayload(src, dst, n, len)) ++result.mismatches;
      }
    }
  }
  return result;
}

class RandomTrafficTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTrafficTest, AllPayloadsArriveIntact) {
  RandomTrafficResult r = RunRandomTraffic(/*nodes=*/4, /*per_pair=*/6, GetParam());
  EXPECT_EQ(r.mismatches, 0u);
  EXPECT_EQ(r.messages, 4u * 3u * 6u);
  EXPECT_GT(r.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficTest, ::testing::Values(1u, 7u, 99u));

TEST(DeterminismStressTest, WholeClusterRunsAreBitIdentical) {
  RandomTrafficResult a = RunRandomTraffic(3, 4, 5);
  RandomTrafficResult b = RunRandomTraffic(3, 4, 5);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.mismatches, 0u);
  EXPECT_EQ(b.mismatches, 0u);
}

TEST(BackpressureTest, AsyncFloodIsBoundedByQueueSlots) {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  int phase = 0;
  auto receiver = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(1 << 20);
    CO_ASSERT_TRUE(buf.ok());
    rbuf = buf.value();
    ExportOptions opts;
    opts.name = "flood";
    auto id = co_await recv.value()->ExportBuffer(rbuf, 1 << 20, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    phase = 1;
  };
  sim.Spawn(receiver());
  ASSERT_TRUE(sim.RunUntil([&] { return phase == 1; }, 10'000'000));

  // Post 4x more async sends than there are queue slots; every post must
  // eventually succeed (flow control blocks, never fails), and all data
  // must arrive.
  const int kSends = static_cast<int>(params.vmmc.send_queue_entries) * 4;
  int completed = 0;
  auto flood = [&]() -> sim::Process {
    Endpoint& ep = *send.value();
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await ep.ImportBuffer(1, "flood", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(16384);
    CO_ASSERT_TRUE(src.ok());
    std::vector<vmmc_core::SendHandle> handles;
    for (int i = 0; i < kSends; ++i) {
      auto h = co_await ep.SendMsgAsync(src.value(),
                                        imp.value().proxy_base +
                                            static_cast<std::uint32_t>(i % 64) * 16384,
                                        16384);
      CO_ASSERT_TRUE(h.ok());
      handles.push_back(h.value());
      // Reap older handles to recycle completion slots.
      if (handles.size() >= params.vmmc.send_queue_entries / 2) {
        Status s = co_await ep.WaitSend(handles.front());
        CO_ASSERT_TRUE(s.ok());
        handles.erase(handles.begin());
        ++completed;
      }
    }
    for (auto& h : handles) {
      Status s = co_await ep.WaitSend(h);
      CO_ASSERT_TRUE(s.ok());
      ++completed;
    }
  };
  sim.Spawn(flood());
  sim.Run(100'000'000);
  EXPECT_EQ(completed, kSends);
  EXPECT_EQ(cluster.node(0).lcp->stats().sends_processed,
            static_cast<std::uint64_t>(kSends));
}

TEST(LossyLinkTest, ModerateErrorRateDegradesButNeverCorrupts) {
  // 2% packet corruption with the go-back-N layer disabled: VMMC drops the
  // chunks (no recovery, §4.2), so some bytes never arrive — but nothing
  // arrives WRONG, and nothing is written outside exported memory.
  // Recovery under the same loss is covered by fault_test.cpp.
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());
  cluster.mutable_params().net.packet_error_rate = 0.02;
  cluster.mutable_params().vmmc.reliability.enabled = false;

  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(1 << 20);
    CO_ASSERT_TRUE(buf.ok());
    rbuf = buf.value();
    ExportOptions opts;
    opts.name = "lossy";
    auto id = co_await recv.value()->ExportBuffer(rbuf, 1 << 20, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "lossy", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = send.value()->AllocBuffer(1 << 20);
    CO_ASSERT_TRUE(src.ok());
    auto payload = MakePayload(0, 1, 0, 1 << 20);
    CO_ASSERT_TRUE(send.value()->WriteBuffer(src.value(), payload).ok());
    Status s = co_await send.value()->SendMsg(src.value(), imp.value().proxy_base,
                                              1 << 20);
    CO_ASSERT_TRUE(s.ok());  // sender completion is local (§4.5)
    done = true;
  };
  sim.Spawn(prog());
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 100'000'000));
  sim.Run(10'000'000);

  const auto& stats = cluster.node(1).lcp->stats();
  EXPECT_GT(stats.crc_drops, 0u) << "2% corruption must hit some chunks";
  EXPECT_LT(stats.bytes_received, 1u << 20) << "dropped chunks leave holes";

  // Every byte that DID arrive matches the sent pattern (chunks are either
  // delivered intact or not at all).
  auto payload = MakePayload(0, 1, 0, 1 << 20);
  std::vector<std::uint8_t> got(1 << 20);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf, got).ok());
  std::uint64_t wrong_nonzero = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != 0 && got[i] != payload[i]) ++wrong_nonzero;
  }
  EXPECT_EQ(wrong_nonzero, 0u);
}

TEST(DaemonRobustnessTest, MalformedControlTrafficIsIgnored) {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  ASSERT_TRUE(cluster.Boot().ok());

  // Fire garbage datagrams at the daemon port from node 0.
  auto fuzz = [&]() -> sim::Process {
    sim::Rng rng(0xF422);
    for (int i = 0; i < 50; ++i) {
      std::vector<std::uint8_t> junk(rng.UniformU64(64));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.NextU64());
      co_await cluster.node(0).eth->SendTo(1, VmmcDaemon::kPort, 31337,
                                           std::move(junk));
    }
  };
  sim.Spawn(fuzz());
  sim.Run(20'000'000);

  // The daemon must still serve a real export/import afterwards.
  auto recv = cluster.OpenEndpoint(1, "r");
  auto send = cluster.OpenEndpoint(0, "s");
  ASSERT_TRUE(recv.ok() && send.ok());
  bool ok = false;
  auto prog = [&]() -> sim::Process {
    auto buf = recv.value()->AllocBuffer(4096);
    CO_ASSERT_TRUE(buf.ok());
    ExportOptions opts;
    opts.name = "after-fuzz";
    auto id = co_await recv.value()->ExportBuffer(buf.value(), 4096, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await send.value()->ImportBuffer(1, "after-fuzz", wait);
    ok = imp.ok();
  };
  sim.Spawn(prog());
  sim.Run(50'000'000);
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace vmmc::vmmc_core
