// Unit tests for VMMC building blocks: outgoing/incoming page tables,
// software TLB, wire format.
#include <gtest/gtest.h>

#include <numeric>

#include "vmmc/vmmc/page_tables.h"
#include "vmmc/vmmc/sw_tlb.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::vmmc_core {
namespace {

TEST(ProxyAddrTest, Decomposition) {
  ProxyAddr a = MakeProxyAddr(5, 123);
  EXPECT_EQ(ProxyPage(a), 5u);
  EXPECT_EQ(ProxyOffset(a), 123u);
}

TEST(OutgoingPageTableTest, SetLookupClear) {
  OutgoingPageTable opt(16);
  EXPECT_TRUE(opt.Set(3, 2, 77).ok());
  auto t = opt.Lookup(3);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().node, 2u);
  EXPECT_EQ(t.value().pfn, 77u);
  EXPECT_EQ(opt.valid_entries(), 1u);

  EXPECT_FALSE(opt.Lookup(4).ok()) << "unmapped proxy page";
  EXPECT_EQ(opt.Lookup(4).status().code(), ErrorCode::kPermissionDenied);
  EXPECT_FALSE(opt.Lookup(99).ok()) << "out of table";
  EXPECT_FALSE(opt.Set(3, 1, 1).ok()) << "double map";
  EXPECT_TRUE(opt.Clear(3).ok());
  EXPECT_FALSE(opt.Lookup(3).ok());
  EXPECT_FALSE(opt.Clear(3).ok());
}

TEST(OutgoingPageTableTest, EncodingBounds) {
  OutgoingPageTable opt(4);
  EXPECT_FALSE(opt.Set(0, 128, 1).ok()) << "node index must fit 7 bits";
  EXPECT_FALSE(opt.Set(0, 0, 1ull << 24).ok()) << "pfn must fit 24 bits";
  EXPECT_TRUE(opt.Set(0, 127, (1u << 24) - 1).ok());
  auto t = opt.Lookup(0);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().node, 127u);
  EXPECT_EQ(t.value().pfn, (1u << 24) - 1);
  // The raw entry is a single valid-tagged 32-bit word, as in the paper.
  EXPECT_EQ(opt.raw(0), 0x8000'0000u | (127u << 24) | ((1u << 24) - 1));
}

TEST(OutgoingPageTableTest, AllocateRunFindsGaps) {
  OutgoingPageTable opt(8);
  ASSERT_TRUE(opt.Set(0, 1, 10).ok());
  ASSERT_TRUE(opt.Set(3, 1, 11).ok());
  auto run2 = opt.AllocateRun(2);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2.value(), 1u);
  auto run4 = opt.AllocateRun(4);
  ASSERT_TRUE(run4.ok());
  EXPECT_EQ(run4.value(), 4u);
  EXPECT_FALSE(opt.AllocateRun(7).ok()) << "no run of 7 exists";
  EXPECT_FALSE(opt.AllocateRun(0).ok());
}

TEST(OutgoingPageTableTest, FullTableIsTheImportLimit) {
  OutgoingPageTable opt(4);
  for (std::uint32_t i = 0; i < 4; ++i) ASSERT_TRUE(opt.Set(i, 0, i).ok());
  auto r = opt.AllocateRun(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kResourceExhausted);
}

TEST(IncomingPageTableTest, EnableDisableFind) {
  IncomingPageTable ipt(32);
  EXPECT_TRUE(ipt.Enable(7, true, 42, 1).ok());
  const IncomingEntry* e = ipt.Find(7);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->recv_enabled);
  EXPECT_TRUE(e->notify);
  EXPECT_EQ(e->owner_pid, 42);
  EXPECT_EQ(e->export_id, 1u);
  EXPECT_FALSE(ipt.Enable(7, false, 1, 2).ok()) << "frame already exported";
  EXPECT_EQ(ipt.enabled_count(), 1u);
  EXPECT_TRUE(ipt.Disable(7).ok());
  EXPECT_FALSE(ipt.Find(7)->recv_enabled);
  EXPECT_FALSE(ipt.Disable(7).ok());
  EXPECT_EQ(ipt.Find(100), nullptr);
  EXPECT_FALSE(ipt.Enable(100, false, 1, 1).ok());
}

TEST(SwTlbTest, HitMissInsert) {
  SwTlb tlb(8, 2);
  mem::Pfn pfn = 0;
  EXPECT_FALSE(tlb.Lookup(5, &pfn));
  tlb.Insert(5, 500);
  EXPECT_TRUE(tlb.Lookup(5, &pfn));
  EXPECT_EQ(pfn, 500u);
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 1u);
  tlb.Insert(5, 501);  // refresh
  EXPECT_TRUE(tlb.Lookup(5, &pfn));
  EXPECT_EQ(pfn, 501u);
  EXPECT_EQ(tlb.valid_entries(), 1u);
}

TEST(SwTlbTest, TwoWayConflictEvictsLru) {
  SwTlb tlb(8, 2);  // 4 sets, 2 ways
  // VPNs 0, 4, 8 all map to set 0.
  tlb.Insert(0, 100);
  tlb.Insert(4, 104);
  mem::Pfn pfn;
  EXPECT_TRUE(tlb.Lookup(0, &pfn));  // 0 is now MRU
  tlb.Insert(8, 108);                // evicts 4 (LRU)
  EXPECT_TRUE(tlb.Lookup(0, &pfn));
  EXPECT_TRUE(tlb.Lookup(8, &pfn));
  EXPECT_FALSE(tlb.Lookup(4, &pfn));
}

TEST(SwTlbTest, InvalidateOneAndAll) {
  SwTlb tlb(16, 2);
  for (mem::Vpn v = 0; v < 8; ++v) tlb.Insert(v, v + 100);
  tlb.Invalidate(3);
  mem::Pfn pfn;
  EXPECT_FALSE(tlb.Lookup(3, &pfn));
  EXPECT_TRUE(tlb.Lookup(2, &pfn));
  tlb.InvalidateAll();
  EXPECT_EQ(tlb.valid_entries(), 0u);
  EXPECT_FALSE(tlb.Lookup(2, &pfn));
}

TEST(SwTlbTest, PaperCapacityEightMegabytes) {
  // §4.5: translations for up to 8 MB at 4 KB pages, two-way associative.
  SwTlb tlb(2048, 2);
  EXPECT_EQ(tlb.capacity() * mem::kPageSize, 8u * 1024 * 1024);
  for (mem::Vpn v = 0; v < 2048; ++v) tlb.Insert(v, v);
  EXPECT_EQ(tlb.valid_entries(), 2048u);
  mem::Pfn pfn;
  for (mem::Vpn v = 0; v < 2048; ++v) {
    ASSERT_TRUE(tlb.Lookup(v, &pfn)) << v;
    ASSERT_EQ(pfn, v);
  }
}

TEST(WireTest, EncodeDecodeRoundTrip) {
  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagLastChunk | ChunkHeader::kFlagNotify;
  h.src_node = 3;
  h.msg_len = 100000;
  h.chunk_len = 4096;
  h.dst_pa0 = 0x12345678;
  h.dst_pa1 = 0xABCDEF000;
  h.tag = 99;
  h.seq = 0xDEADBEEF;
  h.dst_node = 7;
  std::vector<std::uint8_t> data(4096);
  std::iota(data.begin(), data.end(), 0);

  auto payload = EncodeChunk(h, data);
  EXPECT_EQ(payload.size(), ChunkHeader::kWireSize + 4096);
  auto decoded = DecodeChunk(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.type, PacketType::kData);
  EXPECT_TRUE(decoded->header.last_chunk());
  EXPECT_TRUE(decoded->header.notify());
  EXPECT_FALSE(decoded->header.reliable());
  EXPECT_EQ(decoded->header.src_node, 3);
  EXPECT_EQ(decoded->header.msg_len, 100000u);
  EXPECT_EQ(decoded->header.chunk_len, 4096u);
  EXPECT_EQ(decoded->header.dst_pa0, 0x12345678u);
  EXPECT_EQ(decoded->header.dst_pa1, 0xABCDEF000u);
  EXPECT_EQ(decoded->header.tag, 99u);
  EXPECT_EQ(decoded->header.seq, 0xDEADBEEFu);
  EXPECT_EQ(decoded->header.dst_node, 7);
  EXPECT_TRUE(std::equal(data.begin(), data.end(), decoded->data.begin()));
}

TEST(WireTest, AckPacketsRoundTrip) {
  ChunkHeader h;
  h.type = PacketType::kAck;
  h.flags = ChunkHeader::kFlagReliable;
  h.src_node = 1;   // the acking receiver
  h.dst_node = 0;   // the sender being acked
  h.seq = 4242;     // cumulative: next expected
  auto payload = EncodeChunk(h, {});
  EXPECT_EQ(payload.size(), ChunkHeader::kWireSize);
  auto decoded = DecodeChunk(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.type, PacketType::kAck);
  EXPECT_TRUE(decoded->header.reliable());
  EXPECT_EQ(decoded->header.seq, 4242u);
  EXPECT_EQ(decoded->header.src_node, 1);
  EXPECT_EQ(decoded->header.dst_node, 0);
  EXPECT_TRUE(decoded->data.empty());
}

TEST(WireTest, MalformedPayloadsRejected) {
  EXPECT_FALSE(DecodeChunk({}).has_value());
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(DecodeChunk(tiny).has_value());

  ChunkHeader h;
  h.chunk_len = 100;
  std::vector<std::uint8_t> data(100);
  auto payload = EncodeChunk(h, data);
  ASSERT_FALSE(payload.empty());
  payload.resize(payload.size() - 1);  // truncated
  EXPECT_FALSE(DecodeChunk(payload).has_value());

  auto good = EncodeChunk(h, data);
  good.MutableData()[0] = 0xEE;  // bogus type
  EXPECT_FALSE(DecodeChunk(good).has_value());
}

TEST(WireTest, ScatterSplitAtPageBoundary) {
  ChunkHeader h;
  h.chunk_len = 4096;
  h.dst_pa0 = 3 * mem::kPageSize + 4000;  // 96 bytes left on the page
  h.dst_pa1 = 7 * mem::kPageSize;
  EXPECT_EQ(h.ScatterLen0(), 96u);
  h.dst_pa1 = 0;  // no boundary crossing: everything in one piece
  EXPECT_EQ(h.ScatterLen0(), 4096u);
  // Aligned destination with a second address set: full page still fits
  // the first page.
  h.dst_pa0 = 2 * mem::kPageSize;
  h.dst_pa1 = 9 * mem::kPageSize;
  EXPECT_EQ(h.ScatterLen0(), 4096u);
}

}  // namespace
}  // namespace vmmc::vmmc_core
