// Tests for the multi-switch topology builders (topology.h) and the
// congestion machinery the bounded switch output queues add to the
// fabric: spec parsing, all-pairs delivery on every shape, fat-tree spine
// diversity, route consume/strip over 1/2/3 hops (including truncated
// routes), (switch, port)-addressed fault rules, emergent incast
// congestion, and bitwise run-to-run determinism.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "vmmc/myrinet/topology.h"
#include "vmmc/params.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::myrinet {
namespace {

using sim::Tick;

TEST(TopologySpecTest, ParsesKindNodesAndPorts) {
  auto cfg = ParseTopologySpec("fattree:16@8");
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg.value().kind, TopologyKind::kFatTree);
  EXPECT_EQ(cfg.value().num_nodes, 16);
  EXPECT_EQ(cfg.value().switch_ports, 8);

  auto defaults = ParseTopologySpec("ring:12");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().kind, TopologyKind::kRing);
  EXPECT_EQ(defaults.value().num_nodes, 12);
  EXPECT_EQ(defaults.value().switch_ports, 8);

  EXPECT_EQ(ParseTopologySpec("single:4").value().kind,
            TopologyKind::kSingleSwitch);
  EXPECT_EQ(ParseTopologySpec("chain:6@8").value().kind, TopologyKind::kChain);
  EXPECT_EQ(ParseTopologySpec("mesh:9@8").value().kind, TopologyKind::kMesh);
}

TEST(TopologySpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseTopologySpec("").ok());
  EXPECT_FALSE(ParseTopologySpec("fattree").ok());
  EXPECT_FALSE(ParseTopologySpec("torus:8").ok());
  EXPECT_FALSE(ParseTopologySpec("ring:").ok());
  EXPECT_FALSE(ParseTopologySpec("ring:0").ok());
  EXPECT_FALSE(ParseTopologySpec("ring:abc").ok());
  EXPECT_FALSE(ParseTopologySpec("ring:8@1").ok());
  EXPECT_FALSE(ParseTopologySpec("ring:8@x").ok());
}

TEST(TopologySpecTest, RoundTripsThroughSpecString) {
  for (const char* spec : {"single:4@8", "chain:12@8", "fattree:32@8",
                           "ring:8@8", "mesh:24@8"}) {
    auto cfg = ParseTopologySpec(spec);
    ASSERT_TRUE(cfg.ok()) << spec;
    EXPECT_EQ(TopologySpecString(cfg.value()), spec);
  }
}

TEST(TopologyBuildTest, RejectsOversubscribedShapes) {
  Params params;
  {
    sim::Simulator sim;
    Fabric fabric(sim, params.net);
    TopologyConfig cfg;
    cfg.kind = TopologyKind::kFatTree;
    cfg.num_nodes = 33;  // 8-port fat tree caps at (8/2) * 8 = 32
    EXPECT_FALSE(BuildTopology(fabric, cfg).ok());
  }
  {
    sim::Simulator sim;
    Fabric fabric(sim, params.net);
    TopologyConfig cfg;
    cfg.kind = TopologyKind::kSingleSwitch;
    cfg.num_nodes = 9;
    EXPECT_FALSE(BuildTopology(fabric, cfg).ok());
  }
  {
    sim::Simulator sim;
    Fabric fabric(sim, params.net);
    TopologyConfig cfg;
    cfg.kind = TopologyKind::kRing;
    cfg.num_nodes = 13;
    cfg.num_switches = 2;  // 2 * (8-2) = 12 slots
    EXPECT_FALSE(BuildTopology(fabric, cfg).ok());
  }
}

class RecordingSink : public Endpoint {
 public:
  explicit RecordingSink(sim::Simulator& sim) : sim_(sim) {}
  void OnPacket(Packet packet, Tick, Link*) override {
    packets.push_back(std::move(packet));
  }
  void OnPacketDropped(const Packet& packet) override {
    dropped.push_back(packet);
  }
  sim::Simulator& sim_;
  std::vector<Packet> packets;
  std::vector<Packet> dropped;
};

// Builds the shape, attaches one sink per node, returns the sinks.
std::vector<std::unique_ptr<RecordingSink>> Stand(sim::Simulator& sim,
                                                  Fabric& fabric,
                                                  const TopologyConfig& cfg) {
  auto built = BuildTopology(fabric, cfg);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  std::vector<std::unique_ptr<RecordingSink>> sinks;
  for (int i = 0; i < cfg.num_nodes; ++i) {
    sinks.push_back(std::make_unique<RecordingSink>(sim));
    const int id = fabric.AddNic(sinks.back().get());
    EXPECT_EQ(id, i);
    const auto& slot = built.value().nic_slots[static_cast<std::size_t>(i)];
    EXPECT_TRUE(fabric.ConnectNic(id, slot.switch_id, slot.port).ok());
  }
  return sinks;
}

class TopologyDeliveryTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TopologyDeliveryTest, AllPairsComputedRoutesDeliver) {
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec(GetParam());
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());
  const int n = cfg.value().num_nodes;

  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) continue;
      auto route = fabric.ComputeRoute(s, d);
      ASSERT_TRUE(route.ok()) << s << "->" << d;
      Packet p;
      p.route = route.value();
      p.payload = {static_cast<std::uint8_t>(s), static_cast<std::uint8_t>(d)};
      ASSERT_TRUE(fabric.Inject(s, std::move(p)).ok());
    }
  }
  sim.Run();
  for (int d = 0; d < n; ++d) {
    auto& got = sinks[static_cast<std::size_t>(d)]->packets;
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n - 1)) << "dst " << d;
    for (const Packet& p : got) {
      EXPECT_TRUE(p.CrcOk());
      EXPECT_TRUE(p.route.empty()) << "route fully consumed";
      EXPECT_EQ(p.payload[1], static_cast<std::uint8_t>(d)) << "misrouted";
    }
  }
  EXPECT_EQ(fabric.drop_notices(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TopologyDeliveryTest,
                         ::testing::Values("fattree:16@8", "fattree:32@8",
                                           "ring:8@8", "ring:16@8", "mesh:16@8",
                                           "chain:12@8", "fattree:24@16"));

TEST(FatTreeTest, RoutesSpreadAcrossSpines) {
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("fattree:16@8");
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());

  // 8-port fat tree: 4 NICs per leaf, 4 spines, uplinks on ports 4..7.
  // Inter-leaf routes are 3 hops and the chosen spine is (src + dst) % 4,
  // so a traffic mix must exercise more than one spine — BFS alone would
  // send everything through the first.
  std::set<std::uint8_t> uplinks_used;
  for (int s = 0; s < 16; ++s) {
    for (int d = 0; d < 16; ++d) {
      if (s / 4 == d / 4) continue;
      auto route = fabric.ComputeRoute(s, d).value();
      ASSERT_EQ(route.size(), 3u);
      EXPECT_EQ(route[0], static_cast<std::uint8_t>(4 + (s + d) % 4));
      EXPECT_EQ(route[1], static_cast<std::uint8_t>(d / 4));
      EXPECT_EQ(route[2], static_cast<std::uint8_t>(d % 4));
      uplinks_used.insert(route[0]);
    }
  }
  EXPECT_EQ(uplinks_used.size(), 4u) << "all spines carry traffic";

  // Same-leaf routes stay 1 hop.
  EXPECT_EQ(fabric.ComputeRoute(0, 1).value().size(), 1u);
}

// 3 switches of 4 ports, 2 NICs each: nodes 0-1 on switch 0, 2-3 on
// switch 1, 4-5 on switch 2; inter-switch links on ports 2 (next) and 3
// (previous).
TopologyConfig ThreeSwitchChain() {
  TopologyConfig cfg;
  cfg.kind = TopologyKind::kChain;
  cfg.num_nodes = 6;
  cfg.switch_ports = 4;
  cfg.num_switches = 3;
  return cfg;
}

TEST(RouteStripTest, ConsumesOneByteAtEachSwitch) {
  // Routes of length 1, 2 and 3 from NIC 0 depending on how far the
  // destination sits; every traversed switch strips exactly its own byte.
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto sinks = Stand(sim, fabric, ThreeSwitchChain());

  for (int dst : {1, 2, 4}) {  // same switch, next switch, last switch
    auto route = fabric.ComputeRoute(0, dst).value();
    const std::size_t hops = route.size();
    EXPECT_EQ(hops, static_cast<std::size_t>(dst / 2 + 1));
    Packet p;
    p.route = route;
    p.payload = {0xAB};
    ASSERT_TRUE(fabric.Inject(0, std::move(p)).ok());
    sim.Run();
    auto& got = sinks[static_cast<std::size_t>(dst)]->packets;
    ASSERT_EQ(got.size(), 1u) << "dst " << dst;
    EXPECT_TRUE(got.back().route.empty())
        << hops << "-hop route fully consumed";
    EXPECT_TRUE(got.back().CrcOk());
  }
}

TEST(RouteStripTest, TruncatedRouteDropsWithNotice) {
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto sinks = Stand(sim, fabric, ThreeSwitchChain());

  // Full route to NIC 4 is 3 bytes; truncations die at the switch whose
  // byte is missing (empty-route drop), and the source NIC hears about it.
  auto full = fabric.ComputeRoute(0, 4).value();
  ASSERT_EQ(full.size(), 3u);
  for (std::size_t keep = 0; keep < full.size(); ++keep) {
    Packet p;
    p.route.assign(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(keep));
    p.payload = {static_cast<std::uint8_t>(keep)};
    ASSERT_TRUE(fabric.Inject(0, std::move(p)).ok());
    sim.Run();
  }
  EXPECT_EQ(fabric.drop_notices(), 3u);
  EXPECT_EQ(sinks[0]->dropped.size(), 3u);
  for (const auto& s : sinks) EXPECT_TRUE(s->packets.empty());
  // Truncated at 1 byte: consumed by switch 0, dies at switch 1; the total
  // dropped count spreads across the chain.
  EXPECT_EQ(fabric.switch_at(0).dropped(), 1u);
  EXPECT_EQ(fabric.switch_at(1).dropped(), 1u);
  EXPECT_EQ(fabric.switch_at(2).dropped(), 1u);
}

TEST(LinkSiteFaultTest, RulesSelectBySwitchAndPort) {
  // Two flows on a chain: 0 -> 4 crosses the switch0-to-switch1 link;
  // 0 -> 1 stays on switch 0. A drop rule pinned to (switch 0, inter-switch
  // port) must kill only the crossing flow.
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto sinks = Stand(sim, fabric, ThreeSwitchChain());

  // The chain builder wires "to next switch" on port 2 (= ports - 2).
  ASSERT_NE(fabric.LinkIdAt(0, 2), -1);
  sim::FaultPlan plan;
  sim::LinkFaultRule rule;
  rule.switch_id = 0;
  rule.port = 2;
  rule.drop_rate = 1.0;
  plan.links.push_back(rule);
  sim.faults().Configure(plan);

  for (int i = 0; i < 5; ++i) {
    Packet far;
    far.route = fabric.ComputeRoute(0, 4).value();
    far.payload = {1};
    ASSERT_TRUE(fabric.Inject(0, std::move(far)).ok());
    Packet near;
    near.route = fabric.ComputeRoute(0, 1).value();
    near.payload = {2};
    ASSERT_TRUE(fabric.Inject(0, std::move(near)).ok());
  }
  sim.Run();
  EXPECT_EQ(sinks[4]->packets.size(), 0u) << "crossing flow dropped";
  EXPECT_EQ(sinks[1]->packets.size(), 5u) << "local flow untouched";
}

TEST(LinkSiteFaultTest, RulesSelectBySourceNic) {
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("single:4@8");
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());

  sim::FaultPlan plan;
  sim::LinkFaultRule rule;
  rule.src_nic = 1;  // only NIC 1's injection link
  rule.drop_rate = 1.0;
  plan.links.push_back(rule);
  sim.faults().Configure(plan);

  for (int src : {0, 1, 2}) {
    Packet p;
    p.route = fabric.ComputeRoute(src, 3).value();
    p.payload = {static_cast<std::uint8_t>(src)};
    ASSERT_TRUE(fabric.Inject(src, std::move(p)).ok());
  }
  sim.Run();
  ASSERT_EQ(sinks[3]->packets.size(), 2u);
  for (const Packet& p : sinks[3]->packets) {
    EXPECT_NE(p.payload[0], 1) << "NIC 1's packet should have been dropped";
  }
}

TEST(CongestionTest, IncastFillsOutputQueue) {
  // 7 senders blast the same destination port of one crossbar: the port
  // serializes at link speed, so packets pile up in its output queue and
  // queue_wait must grow. The queue is large enough here that nothing
  // stalls upstream.
  sim::Simulator sim;
  Params params;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("single:8@8");
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());

  for (int src = 1; src < 8; ++src) {
    Packet p;
    p.route = fabric.ComputeRoute(src, 0).value();
    p.payload.assign(1024, static_cast<std::uint8_t>(src));
    ASSERT_TRUE(fabric.Inject(src, std::move(p)).ok());
  }
  sim.Run();
  EXPECT_EQ(sinks[0]->packets.size(), 7u);
  EXPECT_GT(fabric.switch_at(0).queue_wait(), 0) << "incast must queue";
  EXPECT_EQ(fabric.total_hol_stalls(), 0u);
}

TEST(CongestionTest, FullQueueStallsUpstreamLink) {
  // Shrink the output queue below two packets' wire size: the second
  // packet racing for the hot port cannot be buffered, so it must stall
  // its inbound link (wormhole backpressure) until the port drains.
  sim::Simulator sim;
  Params params;
  params.net.switch_port_queue_bytes = 2048;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("single:8@8");
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());

  for (int src = 1; src < 8; ++src) {
    for (int burst = 0; burst < 2; ++burst) {
      Packet p;
      p.route = fabric.ComputeRoute(src, 0).value();
      p.payload.assign(1500, static_cast<std::uint8_t>(src));
      ASSERT_TRUE(fabric.Inject(src, std::move(p)).ok());
    }
  }
  sim.Run();
  EXPECT_EQ(sinks[0]->packets.size(), 14u) << "backpressure loses nothing";
  EXPECT_GT(fabric.total_hol_stalls(), 0u);
  EXPECT_GT(fabric.total_hol_stall_time(), 0);
}

TEST(CongestionTest, ZeroCapDisablesBackpressure) {
  sim::Simulator sim;
  Params params;
  params.net.switch_port_queue_bytes = 0;  // infinite buffering
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("single:8@8");
  ASSERT_TRUE(cfg.ok());
  auto sinks = Stand(sim, fabric, cfg.value());

  for (int src = 1; src < 8; ++src) {
    for (int burst = 0; burst < 4; ++burst) {
      Packet p;
      p.route = fabric.ComputeRoute(src, 0).value();
      p.payload.assign(4000, static_cast<std::uint8_t>(src));
      ASSERT_TRUE(fabric.Inject(src, std::move(p)).ok());
    }
  }
  sim.Run();
  EXPECT_EQ(sinks[0]->packets.size(), 28u);
  EXPECT_EQ(fabric.total_hol_stalls(), 0u);
}

// One full fabric exercise, returning a fingerprint of everything timing-
// or counter-visible.
struct Fingerprint {
  Tick end_time = 0;
  std::uint64_t link_packets = 0;
  Tick queue_wait = 0;
  std::uint64_t hol_stalls = 0;
  Tick hol_stall_time = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint RunIncastOnce() {
  sim::Simulator sim;
  Params params;
  params.net.switch_port_queue_bytes = 4096;
  Fabric fabric(sim, params.net);
  auto cfg = ParseTopologySpec("fattree:16@8");
  auto sinks = Stand(sim, fabric, cfg.value());
  for (int round = 0; round < 3; ++round) {
    for (int src = 1; src < 16; ++src) {
      Packet p;
      p.route = fabric.ComputeRoute(src, 0).value();
      p.payload.assign(2000, static_cast<std::uint8_t>(src));
      EXPECT_TRUE(fabric.Inject(src, std::move(p)).ok());
    }
  }
  sim.Run();
  EXPECT_EQ(sinks[0]->packets.size(), 45u);
  Fingerprint fp;
  fp.end_time = sim.now();
  fp.link_packets = fabric.total_link_packets();
  fp.queue_wait = fabric.total_queue_wait();
  fp.hol_stalls = fabric.total_hol_stalls();
  fp.hol_stall_time = fabric.total_hol_stall_time();
  return fp;
}

TEST(CongestionTest, IncastIsDeterministic) {
  const Fingerprint a = RunIncastOnce();
  const Fingerprint b = RunIncastOnce();
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_TRUE(a == b) << "same seed, same topology => identical congestion";
  EXPECT_GT(a.hol_stalls, 0u) << "fat-tree incast must backpressure";
}

}  // namespace
}  // namespace vmmc::myrinet
