// Tests for the Myrinet fabric: CRC-8 hardware, link timing/occupancy,
// switch routing, multi-hop topologies and error injection.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vmmc/myrinet/crc8.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::myrinet {
namespace {

using sim::Tick;

TEST(Crc8Test, KnownVectors) {
  // CRC-8 (poly 0x07, init 0) of "123456789" is 0xF4.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc8(digits), 0xF4);
  EXPECT_EQ(Crc8({}), 0x00);
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_EQ(Crc8(zero), 0x00);
}

TEST(Crc8Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> data(257);
  std::iota(data.begin(), data.end(), 0);
  std::uint8_t inc = 0;
  inc = Crc8Update(inc, std::span(data).subspan(0, 100));
  inc = Crc8Update(inc, std::span(data).subspan(100));
  EXPECT_EQ(inc, Crc8(data));
}

TEST(Crc8Test, DetectsByteSwapsAndTruncation) {
  // CRC-8 is position-sensitive: reordering or shortening the message
  // changes the checksum (the properties the NIC relies on to reject
  // misassembled packets).
  std::vector<std::uint8_t> data = {0x10, 0x32, 0x54, 0x76, 0x98};
  const std::uint8_t good = Crc8(data);
  auto swapped = data;
  std::swap(swapped[1], swapped[3]);
  EXPECT_NE(Crc8(swapped), good);
  EXPECT_NE(Crc8(std::span(data).subspan(0, 4)), good);
  // Incremental over an empty prefix is the identity.
  EXPECT_EQ(Crc8Update(Crc8Update(0, {}), data), good);
}

TEST(Crc8Test, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const std::uint8_t good = Crc8(data);
  for (int byte = 0; byte < 64; byte += 7) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = data;
      bad[static_cast<size_t>(byte)] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc8(bad), good);
    }
  }
}

TEST(PacketTest, WireSizeAndCrcStamp) {
  Packet p;
  p.route = {1, 2};
  p.payload = {10, 20, 30};
  EXPECT_EQ(p.wire_bytes(), 2u + 3u + 1u);
  p.StampCrc();
  EXPECT_TRUE(p.CrcOk());
  p.payload.MutableData()[1] ^= 0x40;
  EXPECT_FALSE(p.CrcOk());
}

// Test endpoint recording deliveries.
class Sink : public Endpoint {
 public:
  explicit Sink(sim::Simulator& sim) : sim_(sim) {}
  void OnPacket(Packet packet, Tick tail_time, Link*) override {
    head_times.push_back(sim_.now());
    tail_times.push_back(tail_time);
    packets.push_back(std::move(packet));
  }
  sim::Simulator& sim_;
  std::vector<Packet> packets;
  std::vector<Tick> head_times;
  std::vector<Tick> tail_times;
};

class FabricTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
};

TEST_F(FabricTest, SingleSwitchDeliveryTimingAndIntegrity) {
  Fabric fabric(sim_, params_.net);
  TopologyPlan plan = BuildSingleSwitch(fabric);
  Sink a(sim_), b(sim_);
  int na = fabric.AddNic(&a);
  int nb = fabric.AddNic(&b);
  ASSERT_TRUE(fabric.ConnectNic(na, plan.nic_slots[0].switch_id, plan.nic_slots[0].port).ok());
  ASSERT_TRUE(fabric.ConnectNic(nb, plan.nic_slots[1].switch_id, plan.nic_slots[1].port).ok());

  auto route = fabric.ComputeRoute(na, nb);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().size(), 1u);  // one switch traversed

  Packet p;
  p.route = route.value();
  p.payload.resize(1000);
  std::iota(p.payload.MutableData(), p.payload.MutableData() + 1000,
            std::uint8_t{0});
  auto sent_payload = p.payload;
  ASSERT_TRUE(fabric.Inject(na, std::move(p)).ok());
  sim_.Run();

  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_TRUE(b.packets[0].CrcOk());
  EXPECT_EQ(b.packets[0].payload, sent_payload);
  EXPECT_TRUE(b.packets[0].route.empty()) << "route fully consumed";
  EXPECT_EQ(a.packets.size(), 0u);

  // Timing: wire = 1 route byte + 1000 payload + crc on first link; the
  // second link carries 1001 bytes (route byte consumed). Head through two
  // links and one switch; tail = head + serialization of the last hop.
  const Tick ser1 = sim::NsForBytes(1002, params_.net.link_mb_s);
  const Tick ser2 = sim::NsForBytes(1001, params_.net.link_mb_s);
  const Tick expect_head =
      params_.net.link_latency + params_.net.switch_latency + params_.net.link_latency;
  EXPECT_EQ(b.head_times[0], expect_head);
  EXPECT_EQ(b.tail_times[0], expect_head + ser2);
  (void)ser1;
}

TEST_F(FabricTest, InOrderDeliveryUnderBackToBackTraffic) {
  Fabric fabric(sim_, params_.net);
  TopologyPlan plan = BuildSingleSwitch(fabric);
  Sink a(sim_), b(sim_);
  int na = fabric.AddNic(&a);
  int nb = fabric.AddNic(&b);
  ASSERT_TRUE(fabric.ConnectNic(na, plan.nic_slots[0].switch_id, plan.nic_slots[0].port).ok());
  ASSERT_TRUE(fabric.ConnectNic(nb, plan.nic_slots[1].switch_id, plan.nic_slots[1].port).ok());
  auto route = fabric.ComputeRoute(na, nb).value();

  for (std::uint8_t i = 0; i < 100; ++i) {
    Packet p;
    p.route = route;
    p.payload.assign(200, i);
    ASSERT_TRUE(fabric.Inject(na, std::move(p)).ok());
  }
  sim_.Run();
  ASSERT_EQ(b.packets.size(), 100u);
  for (std::uint8_t i = 0; i < 100; ++i) {
    EXPECT_EQ(b.packets[i].payload[0], i) << "out of order delivery";
  }
  // Tails must be spaced at least one serialization time apart (occupancy).
  const Tick ser = sim::NsForBytes(201, params_.net.link_mb_s);
  for (size_t i = 1; i < b.tail_times.size(); ++i) {
    EXPECT_GE(b.tail_times[i] - b.tail_times[i - 1], ser - 1);
  }
}

TEST_F(FabricTest, LinkBandwidthApproaches160MBs) {
  Fabric fabric(sim_, params_.net);
  TopologyPlan plan = BuildSingleSwitch(fabric);
  Sink a(sim_), b(sim_);
  int na = fabric.AddNic(&a);
  int nb = fabric.AddNic(&b);
  ASSERT_TRUE(fabric.ConnectNic(na, plan.nic_slots[0].switch_id, plan.nic_slots[0].port).ok());
  ASSERT_TRUE(fabric.ConnectNic(nb, plan.nic_slots[1].switch_id, plan.nic_slots[1].port).ok());
  auto route = fabric.ComputeRoute(na, nb).value();

  const int kPackets = 256;
  const std::size_t kBytes = 4096;
  for (int i = 0; i < kPackets; ++i) {
    Packet p;
    p.route = route;
    p.payload.assign(kBytes, 0x55);
    ASSERT_TRUE(fabric.Inject(na, std::move(p)).ok());
  }
  sim_.Run();
  ASSERT_EQ(b.packets.size(), static_cast<size_t>(kPackets));
  const double bw = sim::MBPerSec(kPackets * kBytes, b.tail_times.back());
  EXPECT_GT(bw, 150.0);
  EXPECT_LE(bw, 160.5);
}

TEST_F(FabricTest, SwitchChainMultiHopRoutes) {
  Fabric fabric(sim_, params_.net);
  TopologyPlan plan = BuildSwitchChain(fabric, /*num_switches=*/3, /*per_switch=*/2);
  ASSERT_EQ(plan.nic_slots.size(), 6u);
  std::vector<std::unique_ptr<Sink>> sinks;
  for (size_t i = 0; i < plan.nic_slots.size(); ++i) {
    sinks.push_back(std::make_unique<Sink>(sim_));
    int id = fabric.AddNic(sinks.back().get());
    ASSERT_TRUE(fabric.ConnectNic(id, plan.nic_slots[i].switch_id,
                                  plan.nic_slots[i].port).ok());
  }
  // NIC 0 is on switch 0, NIC 5 on switch 2: the route crosses 3 switches.
  auto route = fabric.ComputeRoute(0, 5);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route.value().size(), 3u);

  // All-pairs connectivity.
  for (int s = 0; s < 6; ++s) {
    for (int d = 0; d < 6; ++d) {
      if (s == d) continue;
      auto r = fabric.ComputeRoute(s, d);
      ASSERT_TRUE(r.ok()) << s << "->" << d;
      Packet p;
      p.route = r.value();
      p.payload = {static_cast<std::uint8_t>(s), static_cast<std::uint8_t>(d)};
      ASSERT_TRUE(fabric.Inject(s, std::move(p)).ok());
    }
  }
  sim_.Run();
  for (int d = 0; d < 6; ++d) {
    EXPECT_EQ(sinks[static_cast<size_t>(d)]->packets.size(), 5u) << "nic " << d;
    for (const auto& p : sinks[static_cast<size_t>(d)]->packets) {
      EXPECT_EQ(p.payload[1], d) << "misrouted packet";
      EXPECT_TRUE(p.CrcOk());
    }
  }
}

TEST_F(FabricTest, InvalidRouteDropsAtSwitch) {
  Fabric fabric(sim_, params_.net);
  TopologyPlan plan = BuildSingleSwitch(fabric);
  Sink a(sim_);
  int na = fabric.AddNic(&a);
  ASSERT_TRUE(fabric.ConnectNic(na, plan.nic_slots[0].switch_id, plan.nic_slots[0].port).ok());

  Packet p;
  p.route = {7};  // unconnected port
  p.payload = {1};
  ASSERT_TRUE(fabric.Inject(na, std::move(p)).ok());
  Packet q;  // empty route
  q.payload = {2};
  ASSERT_TRUE(fabric.Inject(na, std::move(q)).ok());
  sim_.Run();
  EXPECT_EQ(fabric.switch_at(0).dropped(), 2u);
  EXPECT_EQ(a.packets.size(), 0u);
}

TEST_F(FabricTest, ErrorInjectionCorruptsCrcButDelivers) {
  Params params;
  params.net.packet_error_rate = 1.0;  // every packet corrupted
  Fabric fabric(sim_, params.net);
  TopologyPlan plan = BuildSingleSwitch(fabric);
  Sink a(sim_), b(sim_);
  int na = fabric.AddNic(&a);
  int nb = fabric.AddNic(&b);
  ASSERT_TRUE(fabric.ConnectNic(na, plan.nic_slots[0].switch_id, plan.nic_slots[0].port).ok());
  ASSERT_TRUE(fabric.ConnectNic(nb, plan.nic_slots[1].switch_id, plan.nic_slots[1].port).ok());
  auto route = fabric.ComputeRoute(na, nb).value();
  Packet p;
  p.route = route;
  p.payload.assign(100, 0xEE);
  ASSERT_TRUE(fabric.Inject(na, std::move(p)).ok());
  sim_.Run();
  ASSERT_EQ(b.packets.size(), 1u);
  EXPECT_FALSE(b.packets[0].CrcOk()) << "hardware CRC must flag the corruption";
}

TEST_F(FabricTest, BadIdsRejected) {
  Fabric fabric(sim_, params_.net);
  BuildSingleSwitch(fabric);
  EXPECT_FALSE(fabric.ConnectNic(0, 0, 0).ok());  // no such nic
  Sink a(sim_);
  int na = fabric.AddNic(&a);
  EXPECT_FALSE(fabric.ConnectNic(na, 5, 0).ok());   // no such switch
  EXPECT_FALSE(fabric.ConnectNic(na, 0, 99).ok());  // no such port
  EXPECT_FALSE(fabric.Inject(na, Packet{}).ok());   // not connected yet
  EXPECT_FALSE(fabric.ComputeRoute(na, na + 1).ok());
  ASSERT_TRUE(fabric.ConnectNic(na, 0, 3).ok());
  EXPECT_FALSE(fabric.ConnectNic(na, 0, 4).ok()) << "double connect";
}

}  // namespace
}  // namespace vmmc::myrinet
