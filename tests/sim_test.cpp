// Unit tests for the discrete-event core: event ordering, coroutine
// processes, synchronization primitives, RNG determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vmmc/sim/process.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"
#include "vmmc/sim/time.h"

namespace vmmc::sim {
namespace {

using namespace vmmc::sim::literals;

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, EqualTimesFireInFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) sim.At(5, [&order, i] { order.push_back(i); });
  sim.Run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, PostRunsAfterQueuedEventsAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.At(0, [&] {
    order.push_back(1);
    sim.Post([&] { order.push_back(3); });
  });
  sim.At(0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, RunUntilTimeAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntilTime(1_ms);
  EXPECT_EQ(sim.now(), 1_ms);
}

TEST(SimulatorTest, RunUntilPredicate) {
  Simulator sim;
  int x = 0;
  for (int i = 1; i <= 10; ++i) sim.At(i, [&x] { ++x; });
  EXPECT_TRUE(sim.RunUntil([&] { return x == 4; }));
  EXPECT_EQ(sim.now(), 4);
  sim.Run();
  EXPECT_EQ(x, 10);
}

TEST(SimulatorTest, EventsLimitRespected) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.At(i, [] {});
  EXPECT_EQ(sim.Run(4), 4u);
  EXPECT_EQ(sim.Run(), 6u);
}

Process Sleeper(Simulator& sim, Tick d, std::vector<Tick>& wakes) {
  co_await sim.Delay(d);
  wakes.push_back(sim.now());
}

TEST(ProcessTest, SpawnedProcessRunsAndCompletes) {
  Simulator sim;
  std::vector<Tick> wakes;
  sim.Spawn(Sleeper(sim, 100, wakes));
  sim.Run();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 100);
}

Process Parent(Simulator& sim, std::vector<std::string>& log) {
  log.push_back("parent-start");
  std::vector<Tick> wakes;  // lives in the frame; the child finishes first
  co_await Sleeper(sim, 50, wakes);
  log.push_back("parent-after-child@" + std::to_string(sim.now()));
}

TEST(ProcessTest, AwaitedChildRunsInline) {
  Simulator sim;
  std::vector<std::string> log;
  sim.Spawn(Parent(sim, log));
  sim.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[1], "parent-after-child@50");
}

Process Thrower(Simulator& sim) {
  co_await sim.Delay(1);
  throw std::runtime_error("boom");
}

Process Catcher(Simulator& sim, bool& caught) {
  try {
    co_await Thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(ProcessTest, ChildExceptionPropagatesToAwaiter) {
  Simulator sim;
  bool caught = false;
  sim.Spawn(Catcher(sim, caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

Process Nested3(Simulator& sim, int& depth_reached) {
  co_await sim.Delay(5);
  depth_reached = 3;
}
Process Nested2(Simulator& sim, int& depth_reached) {
  co_await Nested3(sim, depth_reached);
  co_await sim.Delay(5);
}
Process Nested1(Simulator& sim, int& depth_reached, Tick& finish) {
  co_await Nested2(sim, depth_reached);
  finish = sim.now();
}

TEST(ProcessTest, NestedAwaitsAccumulateTime) {
  Simulator sim;
  int depth = 0;
  Tick finish = -1;
  sim.Spawn(Nested1(sim, depth, finish));
  sim.Run();
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(finish, 10);
}

Process Ticker(Simulator& sim, int n, int& count) {
  for (int i = 0; i < n; ++i) {
    co_await sim.Delay(10);
    ++count;
  }
}

TEST(ProcessTest, ManyConcurrentProcessesInterleaveDeterministically) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 50; ++i) sim.Spawn(Ticker(sim, 20, count));
  sim.Run();
  EXPECT_EQ(count, 50 * 20);
  EXPECT_EQ(sim.now(), 200);
}

Process WaitEvent(Simulator& sim, Event& ev, std::vector<Tick>& wakes) {
  co_await ev.Wait();
  wakes.push_back(sim.now());
  (void)sim;
}

TEST(SyncTest, EventWakesAllWaiters) {
  Simulator sim;
  Event ev(sim);
  std::vector<Tick> wakes;
  for (int i = 0; i < 3; ++i) sim.Spawn(WaitEvent(sim, ev, wakes));
  sim.At(42, [&] { ev.Set(); });
  sim.Run();
  ASSERT_EQ(wakes.size(), 3u);
  for (Tick t : wakes) EXPECT_EQ(t, 42);
}

TEST(SyncTest, SetEventIsImmediatelyReady) {
  Simulator sim;
  Event ev(sim);
  ev.Set();
  std::vector<Tick> wakes;
  sim.Spawn(WaitEvent(sim, ev, wakes));
  sim.Run();
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0], 0);
}

Process UseResource(Simulator& sim, Semaphore& sem, Tick hold,
                    std::vector<std::pair<Tick, Tick>>& spans) {
  auto lock = co_await ScopedAcquire(sem);
  Tick start = sim.now();
  co_await sim.Delay(hold);
  spans.emplace_back(start, sim.now());
}

TEST(SyncTest, MutexSerializesHoldersFifo) {
  Simulator sim;
  Semaphore sem(sim, 1);
  std::vector<std::pair<Tick, Tick>> spans;
  for (int i = 0; i < 4; ++i) sim.Spawn(UseResource(sim, sem, 100, spans));
  sim.Run();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].first, static_cast<Tick>(100 * i));
    EXPECT_EQ(spans[i].second, static_cast<Tick>(100 * (i + 1)));
  }
}

TEST(SyncTest, CountingSemaphoreAllowsParallelism) {
  Simulator sim;
  Semaphore sem(sim, 2);
  std::vector<std::pair<Tick, Tick>> spans;
  for (int i = 0; i < 4; ++i) sim.Spawn(UseResource(sim, sem, 100, spans));
  sim.Run();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(sim.now(), 200);  // two batches of two
}

Process Producer(Simulator& sim, Mailbox<int>& box, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim.Delay(10);
    box.Put(i);
  }
}

Process Consumer(Simulator& sim, Mailbox<int>& box, int n, std::vector<int>& got) {
  for (int i = 0; i < n; ++i) {
    int v = co_await box.Get();
    got.push_back(v);
  }
  (void)sim;
}

TEST(SyncTest, MailboxDeliversInOrder) {
  Simulator sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  sim.Spawn(Producer(sim, box, 10));
  sim.Spawn(Consumer(sim, box, 10, got));
  sim.Run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(SyncTest, MailboxMultipleConsumersEachGetOneItem) {
  Simulator sim;
  Mailbox<int> box(sim);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) sim.Spawn(Consumer(sim, box, 1, got));
  sim.At(5, [&] {
    box.Put(100);
    box.Put(200);
    box.Put(300);
  });
  sim.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 600);
}

TEST(SyncTest, MailboxTryGet) {
  Simulator sim;
  Mailbox<int> box(sim);
  EXPECT_FALSE(box.TryGet().has_value());
  box.Put(7);
  auto v = box.TryGet();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(box.TryGet().has_value());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformBoundsRespected) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.UniformU64(17), 17u);
    auto v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng r(7);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += r.Bernoulli(0.5);
  EXPECT_NEAR(heads, 50000, 1500);
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(42.0);
  EXPECT_NEAR(sum / n, 42.0, 1.5);
}

TEST(TimeTest, Conversions) {
  EXPECT_EQ(Microseconds(3), 3000);
  EXPECT_EQ(2_us, 2000);
  EXPECT_DOUBLE_EQ(ToMicroseconds(9800), 9.8);
}

TEST(TimeTest, NsForBytesMatchesRates) {
  // 4096 bytes at 128 MB/s = 32 us.
  EXPECT_EQ(NsForBytes(4096, 128.0), 32000);
  // 1 byte at 160 MB/s rounds up to 7 ns (6.25 exact).
  EXPECT_EQ(NsForBytes(1, 160.0), 7);
  EXPECT_EQ(NsForBytes(0, 100.0), 0);
}

TEST(TimeTest, MBPerSec) {
  EXPECT_DOUBLE_EQ(MBPerSec(4096, 32000), 128.0);
  EXPECT_DOUBLE_EQ(MBPerSec(100, 0), 0.0);
}

// Determinism property: two identical simulations produce identical event
// counts and final clocks.
class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

Process RandomWorkload(Simulator& sim, Rng& rng, Mailbox<int>& box, int id) {
  for (int i = 0; i < 50; ++i) {
    co_await sim.Delay(static_cast<Tick>(rng.UniformU64(1000)));
    box.Put(id * 1000 + i);
  }
}

TEST_P(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  auto run = [&](std::uint64_t seed) {
    Simulator sim;
    Rng rng(seed);
    Mailbox<int> box(sim);
    std::vector<int> got;
    for (int id = 0; id < 8; ++id) sim.Spawn(RandomWorkload(sim, rng, box, id));
    sim.Spawn(Consumer(sim, box, 8 * 50, got));
    sim.Run();
    return std::make_tuple(sim.now(), sim.events_processed(), got);
  };
  EXPECT_EQ(run(GetParam()), run(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1u, 42u, 31337u, 0xDEADBEEFu));

}  // namespace
}  // namespace vmmc::sim
