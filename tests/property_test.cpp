// Property-based tests: randomized inputs checked against reference
// models / invariants.
//
//  * random connected switch topologies: every route the fabric computes
//    must actually deliver a probe packet (checked by transmission, not by
//    re-running the same graph algorithm);
//  * the software TLB behaves exactly like a reference map with 2-way-LRU
//    eviction;
//  * the SRAM allocator never overlaps regions, never exceeds capacity,
//    and always satisfies a request that fits after coalescing;
//  * XDR round-trips arbitrary structures;
//  * CRC-8 detects all single- and double-bit errors within a byte span.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include <deque>

#include "vmmc/lanai/sram.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/sim/rng.h"
#include "vmmc/vmmc/go_back_n.h"
#include "vmmc/vmmc/sw_tlb.h"
#include "vmmc/vrpc/xdr.h"

namespace vmmc {
namespace {

// ---------------------------------------------------------------------------
// Random topologies
// ---------------------------------------------------------------------------

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

class CollectingSink : public myrinet::Endpoint {
 public:
  void OnPacket(myrinet::Packet packet, sim::Tick, myrinet::Link*) override {
    packets.push_back(std::move(packet));
  }
  std::vector<myrinet::Packet> packets;
};

TEST_P(TopologyPropertyTest, EveryComputedRouteDelivers) {
  sim::Simulator sim;
  Params params;
  myrinet::Fabric fabric(sim, params.net);
  sim::Rng rng(GetParam());

  // Random connected switch graph: spanning tree + extra edges.
  const int switches = 2 + static_cast<int>(rng.UniformU64(5));
  std::vector<int> next_port(static_cast<std::size_t>(switches), 0);
  for (int s = 0; s < switches; ++s) fabric.AddSwitch(8);
  for (int s = 1; s < switches; ++s) {
    const int parent = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(s)));
    ASSERT_TRUE(fabric.ConnectSwitches(parent, next_port[static_cast<std::size_t>(parent)]++,
                                       s, next_port[static_cast<std::size_t>(s)]++).ok());
  }
  // A few random extra links (cycles are legal; BFS picks shortest).
  for (int e = 0; e < switches / 2; ++e) {
    const int a = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(switches)));
    const int b = static_cast<int>(rng.UniformU64(static_cast<std::uint64_t>(switches)));
    if (a == b) continue;
    if (next_port[static_cast<std::size_t>(a)] >= 7 ||
        next_port[static_cast<std::size_t>(b)] >= 7) {
      continue;
    }
    (void)fabric.ConnectSwitches(a, next_port[static_cast<std::size_t>(a)]++, b,
                                 next_port[static_cast<std::size_t>(b)]++);
  }

  // One NIC per switch (where a port is free).
  std::vector<std::unique_ptr<CollectingSink>> sinks;
  std::vector<int> nic_ids;
  for (int s = 0; s < switches; ++s) {
    if (next_port[static_cast<std::size_t>(s)] >= 8) continue;
    sinks.push_back(std::make_unique<CollectingSink>());
    const int id = fabric.AddNic(sinks.back().get());
    ASSERT_TRUE(fabric.ConnectNic(id, s, next_port[static_cast<std::size_t>(s)]++).ok());
    nic_ids.push_back(id);
  }
  ASSERT_GE(nic_ids.size(), 2u);

  // Property: for every ordered pair, the computed route delivers.
  for (std::size_t i = 0; i < nic_ids.size(); ++i) {
    for (std::size_t j = 0; j < nic_ids.size(); ++j) {
      if (i == j) continue;
      auto route = fabric.ComputeRoute(nic_ids[i], nic_ids[j]);
      ASSERT_TRUE(route.ok()) << "spanning tree guarantees connectivity";
      myrinet::Packet p;
      p.route = route.value();
      p.payload = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(j)};
      ASSERT_TRUE(fabric.Inject(nic_ids[i], std::move(p)).ok());
    }
  }
  sim.Run();
  for (std::size_t j = 0; j < nic_ids.size(); ++j) {
    EXPECT_EQ(sinks[j]->packets.size(), nic_ids.size() - 1) << "sink " << j;
    for (const auto& p : sinks[j]->packets) {
      EXPECT_EQ(p.payload[1], static_cast<std::uint8_t>(j)) << "misrouted";
      EXPECT_TRUE(p.CrcOk());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ---------------------------------------------------------------------------
// Software TLB vs a reference 2-way LRU model
// ---------------------------------------------------------------------------

class TlbPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlbPropertyTest, MatchesReferenceLruModel) {
  constexpr std::uint32_t kEntries = 32;
  constexpr std::uint32_t kWays = 2;
  const std::uint32_t sets = kEntries / kWays;
  vmmc_core::SwTlb tlb(kEntries, kWays);

  // Reference: per set, a list of (vpn, pfn) ordered LRU-first.
  std::vector<std::vector<std::pair<mem::Vpn, mem::Pfn>>> ref(sets);
  sim::Rng rng(GetParam());

  for (int step = 0; step < 5000; ++step) {
    const mem::Vpn vpn = rng.UniformU64(200);
    const std::size_t set = static_cast<std::size_t>(vpn % sets);
    auto& entries = ref[set];
    auto it = std::find_if(entries.begin(), entries.end(),
                           [&](const auto& e) { return e.first == vpn; });

    if (rng.Bernoulli(0.5)) {
      // Lookup.
      mem::Pfn pfn = 0;
      const bool hit = tlb.Lookup(vpn, &pfn);
      if (it != entries.end()) {
        ASSERT_TRUE(hit) << "step " << step;
        ASSERT_EQ(pfn, it->second);
        auto e = *it;  // move to MRU
        entries.erase(it);
        entries.push_back(e);
      } else {
        ASSERT_FALSE(hit) << "step " << step << " vpn " << vpn;
      }
    } else {
      // Insert.
      const mem::Pfn pfn = rng.UniformU64(1 << 20);
      tlb.Insert(vpn, pfn);
      if (it != entries.end()) {
        entries.erase(it);
      } else if (entries.size() == kWays) {
        entries.erase(entries.begin());  // evict LRU
      }
      entries.push_back({vpn, pfn});
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbPropertyTest, ::testing::Values(1u, 2u, 3u, 4u));

// ---------------------------------------------------------------------------
// SRAM allocator invariants
// ---------------------------------------------------------------------------

class SramPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SramPropertyTest, NoOverlapNoLeakAlwaysFitsAfterCoalesce) {
  constexpr std::uint32_t kSize = 64 * 1024;
  lanai::Sram sram(kSize);
  sim::Rng rng(GetParam());
  std::map<std::uint32_t, std::uint32_t> live;  // offset -> padded size

  auto padded = [](std::uint32_t n) { return (n + 7u) & ~7u; };

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const std::uint32_t want =
          1 + static_cast<std::uint32_t>(rng.UniformU64(4096));
      auto r = sram.Allocate("blk", want);
      if (r.ok()) {
        const std::uint32_t off = r.value();
        // Invariant: inside the SRAM and no overlap with live regions.
        ASSERT_LE(off + padded(want), kSize);
        for (const auto& [o, l] : live) {
          ASSERT_TRUE(off + padded(want) <= o || o + l <= off)
              << "overlap at step " << step;
        }
        live[off] = padded(want);
      }
      // else: refusal under fragmentation is legal for first-fit; the
      // full-drain check below verifies coalescing eliminates it.
    } else {
      const std::size_t idx = static_cast<std::size_t>(rng.UniformU64(live.size()));
      auto it = live.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(idx));
      ASSERT_TRUE(sram.Free(it->first).ok());
      live.erase(it);
    }
    std::uint32_t used = 0;
    for (const auto& [off, len] : live) used += len;
    ASSERT_EQ(sram.used_bytes(), used) << "accounting drift at step " << step;
  }

  // Drain everything: after full coalescing one max-size allocation fits.
  for (const auto& [off, len] : live) ASSERT_TRUE(sram.Free(off).ok());
  EXPECT_EQ(sram.used_bytes(), 0u);
  auto all = sram.Allocate("everything", kSize);
  EXPECT_TRUE(all.ok()) << "free list failed to coalesce";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SramPropertyTest,
                         ::testing::Values(5u, 6u, 7u, 8u));

// ---------------------------------------------------------------------------
// XDR round-trips random structures
// ---------------------------------------------------------------------------

class XdrPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XdrPropertyTest, RandomStructuresRoundTrip) {
  sim::Rng rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    // A random sequence of typed fields.
    enum Field { kU32, kU64, kBool, kOpaque, kString };
    std::vector<int> kinds;
    std::vector<std::uint64_t> ints;
    std::vector<std::vector<std::uint8_t>> blobs;
    std::vector<std::string> strings;

    vrpc::XdrWriter w;
    const int fields = 1 + static_cast<int>(rng.UniformU64(12));
    for (int f = 0; f < fields; ++f) {
      const int kind = static_cast<int>(rng.UniformU64(5));
      kinds.push_back(kind);
      switch (kind) {
        case kU32: {
          const auto v = static_cast<std::uint32_t>(rng.NextU64());
          ints.push_back(v);
          w.PutU32(v);
          break;
        }
        case kU64: {
          const std::uint64_t v = rng.NextU64();
          ints.push_back(v);
          w.PutU64(v);
          break;
        }
        case kBool: {
          const bool v = rng.Bernoulli(0.5);
          ints.push_back(v);
          w.PutBool(v);
          break;
        }
        case kOpaque: {
          std::vector<std::uint8_t> blob(rng.UniformU64(100));
          for (auto& b : blob) b = static_cast<std::uint8_t>(rng.NextU64());
          w.PutOpaque(blob);
          blobs.push_back(std::move(blob));
          break;
        }
        case kString: {
          std::string s(rng.UniformU64(40), 'x');
          for (auto& c : s) c = static_cast<char>('a' + rng.UniformU64(26));
          w.PutString(s);
          strings.push_back(std::move(s));
          break;
        }
      }
    }
    ASSERT_EQ(w.size() % 4, 0u);

    vrpc::XdrReader r(w.bytes());
    std::size_t ii = 0, bi = 0, si = 0;
    for (int kind : kinds) {
      switch (kind) {
        case kU32:
          ASSERT_EQ(r.GetU32(), static_cast<std::uint32_t>(ints[ii++]));
          break;
        case kU64:
          ASSERT_EQ(r.GetU64(), ints[ii++]);
          break;
        case kBool:
          ASSERT_EQ(r.GetBool(), ints[ii++] != 0);
          break;
        case kOpaque:
          ASSERT_EQ(r.GetOpaque(), blobs[bi++]);
          break;
        case kString:
          ASSERT_EQ(r.GetString(), strings[si++]);
          break;
      }
    }
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.remaining(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XdrPropertyTest, ::testing::Values(9u, 10u));

// ---------------------------------------------------------------------------
// CRC-8 error detection
// ---------------------------------------------------------------------------

TEST(CrcPropertyTest, DetectsAllDoubleBitErrorsInShortSpans) {
  sim::Rng rng(77);
  std::vector<std::uint8_t> data(32);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextU64());
  const std::uint8_t good = myrinet::Crc8(data);

  const std::size_t bits = data.size() * 8;
  int undetected = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = i + 1; j < std::min(bits, i + 64); ++j) {
      auto corrupt = data;
      corrupt[i / 8] ^= static_cast<std::uint8_t>(1u << (i % 8));
      corrupt[j / 8] ^= static_cast<std::uint8_t>(1u << (j % 8));
      if (myrinet::Crc8(corrupt) == good) ++undetected;
    }
  }
  // CRC-8 with poly 0x07 detects all double-bit errors within its burst
  // guarantee; any undetected pair here would break the paper's §4.2
  // reliance on CRC detection.
  EXPECT_EQ(undetected, 0);
}

// ---------------------------------------------------------------------------
// Go-back-N state machines (vmmc/go_back_n.h) against a reference in-order
// channel under random loss: everything sent is delivered exactly once, in
// order, with no duplicates — for any window size, loss rate and seed.
// ---------------------------------------------------------------------------

TEST(GbnArithmeticTest, SerialComparisonWrapsSafely) {
  using vmmc_core::SeqBefore;
  EXPECT_TRUE(SeqBefore(0, 1));
  EXPECT_FALSE(SeqBefore(1, 0));
  EXPECT_FALSE(SeqBefore(5, 5));
  // Across the 32-bit wrap: 0xFFFFFFFF precedes 0.
  EXPECT_TRUE(SeqBefore(0xFFFFFFFFu, 0));
  EXPECT_FALSE(SeqBefore(0, 0xFFFFFFFFu));
  EXPECT_TRUE(SeqBefore(0xFFFFFFF0u, 0x0000000Fu));
}

TEST(GbnArithmeticTest, StaleAndFutureAcksAreRejected) {
  using vmmc_core::GbnSender;
  GbnSender s(4);
  EXPECT_EQ(s.OnSend(), 0u);
  EXPECT_EQ(s.OnSend(), 1u);
  EXPECT_EQ(s.OnSend(), 2u);
  EXPECT_EQ(s.OnAck(0), 0u);  // stale: acks nothing new
  EXPECT_EQ(s.OnAck(4), 0u);  // beyond next_seq: bogus, ignored
  EXPECT_EQ(s.OnAck(2), 2u);  // cumulative: covers seqs 0 and 1
  EXPECT_EQ(s.base(), 2u);
  EXPECT_EQ(s.OnAck(2), 0u);  // duplicate ACK
  EXPECT_EQ(s.OnAck(3), 1u);
  EXPECT_FALSE(s.has_unacked());
}

class GbnPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbnPropertyTest, LossyChannelDeliversExactlyOnceInOrder) {
  sim::Rng rng(GetParam());
  using vmmc_core::GbnReceiver;
  using vmmc_core::GbnSender;

  const std::uint32_t window = 1 + static_cast<std::uint32_t>(rng.UniformU64(15));
  const double loss = 0.05 + 0.40 * (static_cast<double>(rng.UniformU64(100)) / 100.0);
  const std::uint32_t kMessages = 400;

  GbnSender sender(window);
  GbnReceiver receiver;
  std::deque<std::uint32_t> unacked;  // the "retransmit buffer": seqs in order
  std::deque<std::uint32_t> data_ch;  // FIFO wire, loss applied at entry
  std::deque<std::uint32_t> ack_ch;
  std::vector<std::uint32_t> delivered;

  int rounds = 0;
  while (delivered.size() < kMessages) {
    ASSERT_LT(++rounds, 100'000) << "no forward progress (deadlock)";
    // Sender fills the window with fresh packets.
    while (sender.can_send() && sender.next_seq() < kMessages) {
      const std::uint32_t seq = sender.OnSend();
      unacked.push_back(seq);
      if (!rng.Bernoulli(loss)) data_ch.push_back(seq);
    }
    ASSERT_EQ(unacked.size(), sender.in_flight());
    ASSERT_LE(sender.in_flight(), window);

    // The wire delivers a random prefix (partial rounds interleave the
    // two directions).
    std::uint64_t n_data = rng.UniformU64(data_ch.size() + 1);
    while (n_data-- > 0 && !data_ch.empty()) {
      const std::uint32_t seq = data_ch.front();
      data_ch.pop_front();
      if (receiver.OnData(seq) == GbnReceiver::Verdict::kAccept) {
        delivered.push_back(seq);
      }
      if (!rng.Bernoulli(loss)) ack_ch.push_back(receiver.CumAck());
    }
    std::uint64_t n_ack = rng.UniformU64(ack_ch.size() + 1);
    while (n_ack-- > 0 && !ack_ch.empty()) {
      const std::uint32_t ack = ack_ch.front();
      ack_ch.pop_front();
      std::uint32_t newly = sender.OnAck(ack);
      ASSERT_LE(newly, unacked.size());
      while (newly-- > 0) unacked.pop_front();
    }

    // Timeout model: if both wires drained and progress stalled, the
    // sender goes back and resends its whole window.
    if (data_ch.empty() && ack_ch.empty() && sender.has_unacked()) {
      for (std::uint32_t seq : unacked) {
        if (!rng.Bernoulli(loss)) data_ch.push_back(seq);
      }
    }
  }

  // Exactly once, in order, nothing missing.
  ASSERT_EQ(delivered.size(), kMessages);
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    ASSERT_EQ(delivered[i], i) << "duplicate or reorder at " << i;
  }
  EXPECT_EQ(receiver.CumAck(), kMessages);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbnPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace vmmc
