// Tests for the LANai NIC: SRAM allocator capacity pressure, DMA engines,
// packet rx path with CRC reporting, and a miniature echo LCP that
// exercises the full NIC-to-NIC path.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "vmmc/host/machine.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/lanai/sram.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::lanai {
namespace {

using sim::Tick;

TEST(SramTest, AllocateFreeAccounting) {
  Sram sram(1024);
  auto a = sram.Allocate("queue", 100);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(sram.used_bytes(), 104u);  // 8-byte aligned
  EXPECT_EQ(sram.RegionName(a.value()), "queue");
  auto b = sram.Allocate("tlb", 950);
  EXPECT_FALSE(b.ok()) << "must not overcommit";
  EXPECT_EQ(b.status().code(), ErrorCode::kResourceExhausted);
  ASSERT_TRUE(sram.Free(a.value()).ok());
  EXPECT_EQ(sram.used_bytes(), 0u);
  EXPECT_FALSE(sram.Free(a.value()).ok()) << "double free";
  EXPECT_TRUE(sram.Allocate("tlb", 950).ok());
}

TEST(SramTest, CoalescingAvoidsFragmentation) {
  Sram sram(3000);
  auto a = sram.Allocate("a", 1000);
  auto b = sram.Allocate("b", 1000);
  auto c = sram.Allocate("c", 1000);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(sram.Free(a.value()).ok());
  ASSERT_TRUE(sram.Free(b.value()).ok());
  EXPECT_TRUE(sram.Allocate("big", 2000).ok()) << "freed neighbours coalesce";
  (void)c;
}

TEST(SramTest, ZeroAllocationRejected) {
  Sram sram(256);
  EXPECT_FALSE(sram.Allocate("z", 0).ok());
}

// --- NIC fixture: two machines on one switch ---
class NicTest : public ::testing::Test {
 protected:
  NicTest()
      : fabric_(sim_, params_.net),
        plan_(myrinet::BuildSingleSwitch(fabric_)),
        m0_(sim_, params_, 0),
        m1_(sim_, params_, 1),
        nic0_(sim_, params_, m0_, fabric_),
        nic1_(sim_, params_, m1_, fabric_) {
    EXPECT_TRUE(nic0_.AttachToFabric(plan_.nic_slots[0].switch_id,
                                     plan_.nic_slots[0].port).ok());
    EXPECT_TRUE(nic1_.AttachToFabric(plan_.nic_slots[1].switch_id,
                                     plan_.nic_slots[1].port).ok());
  }

  sim::Simulator sim_;
  Params params_;
  myrinet::Fabric fabric_;
  myrinet::TopologyPlan plan_;
  host::Machine m0_, m1_;
  NicCard nic0_, nic1_;
};

sim::Process SendOne(NicCard& nic, myrinet::Route route,
                     std::vector<std::uint8_t> payload) {
  myrinet::Packet p;
  p.route = std::move(route);
  p.payload = std::move(payload);
  co_await nic.NetSend(std::move(p));
}

TEST_F(NicTest, PacketArrivesInRxQueueWithGoodCrc) {
  auto route = fabric_.ComputeRoute(nic0_.nic_id(), nic1_.nic_id()).value();
  std::vector<std::uint8_t> data(512);
  std::iota(data.begin(), data.end(), 0);
  sim_.Spawn(SendOne(nic0_, route, data));
  sim_.Run();
  ASSERT_EQ(nic1_.rx_queue().size(), 1u);
  auto rp = nic1_.rx_queue().TryGet();
  ASSERT_TRUE(rp.has_value());
  EXPECT_TRUE(rp->crc_ok);
  EXPECT_EQ(rp->packet.payload, data);
  EXPECT_EQ(nic1_.packets_received(), 1u);
  EXPECT_EQ(nic0_.packets_sent(), 1u);
  EXPECT_EQ(nic1_.crc_errors(), 0u);
  EXPECT_TRUE(nic1_.work_pending()) << "rx must ring the LCP";
}

TEST_F(NicTest, HostDmaMovesRealBytes) {
  // Allocate a frame on machine 0 and fill it via the address space.
  auto pfn = m0_.memory().AllocFrame();
  ASSERT_TRUE(pfn.ok());
  const mem::PhysAddr pa = mem::PageAddr(pfn.value());
  std::vector<std::uint8_t> src(4096);
  std::iota(src.begin(), src.end(), 1);
  ASSERT_TRUE(m0_.memory().Write(pa, src).ok());

  std::vector<std::uint8_t> staged;
  Tick read_done = -1, write_done = -1;
  auto driver = [&]() -> sim::Process {
    co_await nic0_.HostDmaRead(pa, staged, 4096);
    read_done = sim_.now();
    // Mutate and write back to a different offset.
    for (auto& b : staged) b ^= 0xFF;
    co_await nic0_.HostDmaWrite(pa, staged);
    write_done = sim_.now();
  };
  sim_.Spawn(driver());
  sim_.Run();

  EXPECT_EQ(staged.size(), 4096u);
  EXPECT_EQ(read_done, m0_.pci().DmaCost(4096));
  EXPECT_EQ(write_done, 2 * m0_.pci().DmaCost(4096));
  std::vector<std::uint8_t> back(4096);
  ASSERT_TRUE(m0_.memory().Read(pa, back).ok());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], static_cast<std::uint8_t>((i + 1) ^ 0xFF));
  }
}

TEST_F(NicTest, InterruptLineReachesKernel) {
  int fired = 0;
  m0_.kernel().RegisterIrqHandler(NicCard::kIrq, [&]() -> sim::Process {
    ++fired;
    co_return;
  });
  nic0_.RaiseHostInterrupt();
  sim_.Run();
  EXPECT_EQ(fired, 1);
}

// A trivial LCP that echoes every received packet back to its source,
// exercising Run()/rx_queue/NetSend end to end.
class EchoLcp : public Lcp {
 public:
  explicit EchoLcp(int peer_nic) : peer_(peer_nic) {}
  sim::Process Run(NicCard& nic) override {
    for (;;) {
      co_await nic.AwaitWork();
      while (auto rp = nic.rx_queue().TryGet()) {
        if (!rp->crc_ok) continue;
        ++echoed_;
        myrinet::Packet reply;
        reply.route = nic.fabric().ComputeRoute(nic.nic_id(), peer_).value();
        reply.payload = rp->packet.payload;
        co_await nic.NetSend(std::move(reply));
      }
    }
  }
  int echoed() const { return echoed_; }

 private:
  int peer_;
  int echoed_ = 0;
};

TEST_F(NicTest, EchoLcpRoundTrip) {
  auto* echo = new EchoLcp(nic0_.nic_id());
  nic1_.LoadLcp(std::unique_ptr<Lcp>(echo));

  auto route = fabric_.ComputeRoute(nic0_.nic_id(), nic1_.nic_id()).value();
  std::vector<std::uint8_t> data = {9, 8, 7, 6, 5};
  sim_.Spawn(SendOne(nic0_, route, data));
  // The LCP loops forever; run until the echo lands back at nic0.
  ASSERT_TRUE(sim_.RunUntil([&] { return nic0_.rx_queue().size() == 1; },
                            1'000'000));
  auto rp = nic0_.rx_queue().TryGet();
  ASSERT_TRUE(rp.has_value());
  EXPECT_EQ(rp->packet.payload, data);
  EXPECT_EQ(echo->echoed(), 1);
  EXPECT_GT(sim_.now(), 0);
}

}  // namespace
}  // namespace vmmc::lanai
