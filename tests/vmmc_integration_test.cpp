// End-to-end tests of the VMMC system: cluster boot and network mapping,
// export/import matching through the daemons, short and long sends with
// data integrity, protection enforcement, zero-copy receive, software-TLB
// miss service, notifications, and multi-process isolation.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "vmmc/vmmc/cluster.h"

#include "co_test_util.h"

namespace vmmc::vmmc_core {
namespace {

using sim::Tick;

std::vector<std::uint8_t> PatternBytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i * 13 + (i >> 8));
  }
  return v;
}

class VmmcTest : public ::testing::Test {
 protected:
  void Boot(int nodes = 2) {
    ClusterOptions options;
    options.num_nodes = nodes;
    cluster_ = std::make_unique<Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
  }

  // Runs spawned user programs until quiescence and asserts `done`.
  void RunAll() { sim_.Run(20'000'000); }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(VmmcTest, BootMapsAndVerifiesRoutes) {
  Boot(4);
  EXPECT_TRUE(cluster_->booted());
  EXPECT_GT(cluster_->boot_time(), 0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(cluster_->node(i).routes.size(), 4u);
    EXPECT_TRUE(cluster_->node(i).lcp->running());
  }
  // Mapping probes really crossed the wire.
  EXPECT_GT(cluster_->fabric().total_link_packets(), 0u);
}

TEST_F(VmmcTest, BootOnMultiSwitchTopology) {
  ClusterOptions options;
  options.num_nodes = 6;
  options.topology = Topology::kSwitchChain;
  options.chain_switches = 3;
  cluster_ = std::make_unique<Cluster>(sim_, params_, options);
  ASSERT_TRUE(cluster_->Boot().ok());
  // Nodes on different switches have multi-hop routes.
  EXPECT_GE(cluster_->node(0).routes[5].size(), 2u);
}

// --- export / import ---

sim::Process ExportProgram(Endpoint& ep, std::uint32_t len, std::string name,
                           bool notify, Result<ExportId>& out,
                           mem::VirtAddr& buf_out) {
  auto buf = ep.AllocBuffer(len);
  CO_ASSERT_TRUE(buf.ok());
  buf_out = buf.value();
  ExportOptions opts;
  opts.name = std::move(name);
  opts.notify = notify;
  auto result = co_await ep.ExportBuffer(buf.value(), len, std::move(opts));
  out = std::move(result);
}

TEST_F(VmmcTest, ExportThenImportSucceeds) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok());
  ASSERT_TRUE(send.ok());

  Result<ExportId> exported(InternalError("unset"));
  mem::VirtAddr rbuf = 0;
  sim_.Spawn(ExportProgram(*recv.value(), 8192, "ring", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  Result<ImportedBuffer> imported(InternalError("unset"));
  auto importer = [&](Endpoint& ep) -> sim::Process {
    imported = co_await ep.ImportBuffer(1, "ring");
  };
  sim_.Spawn(importer(*send.value()));
  RunAll();
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ(imported.value().len, 8192u);
  EXPECT_EQ(imported.value().remote_node, 1);
}

TEST_F(VmmcTest, ImportOfMissingExportFails) {
  Boot();
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(send.ok());
  Result<ImportedBuffer> imported(InternalError("unset"));
  auto importer = [&](Endpoint& ep) -> sim::Process {
    imported = co_await ep.ImportBuffer(1, "nothing");
  };
  sim_.Spawn(importer(*send.value()));
  RunAll();
  EXPECT_FALSE(imported.ok());
  EXPECT_EQ(imported.status().code(), ErrorCode::kNotFound);
}

TEST_F(VmmcTest, AclRestrictsImporters) {
  Boot(3);
  auto recv = cluster_->OpenEndpoint(2, "receiver");
  auto ok_node = cluster_->OpenEndpoint(0, "friend");
  auto bad_node = cluster_->OpenEndpoint(1, "stranger");
  ASSERT_TRUE(recv.ok() && ok_node.ok() && bad_node.ok());

  auto exporter = [&](Endpoint& ep) -> sim::Process {
    auto buf = ep.AllocBuffer(4096);
    ExportOptions opts;
    opts.name = "private";
    opts.acl.allow_all = false;
    opts.acl.allowed = {{0, -1}};  // only node 0 may import
    auto r = co_await ep.ExportBuffer(buf.value(), 4096, std::move(opts));
    CO_ASSERT_TRUE(r.ok());
  };
  sim_.Spawn(exporter(*recv.value()));
  RunAll();

  Result<ImportedBuffer> from0(InternalError("unset")), from1(InternalError("unset"));
  auto imp = [&](Endpoint& ep, Result<ImportedBuffer>& out) -> sim::Process {
    out = co_await ep.ImportBuffer(2, "private");
  };
  sim_.Spawn(imp(*ok_node.value(), from0));
  sim_.Spawn(imp(*bad_node.value(), from1));
  RunAll();
  EXPECT_TRUE(from0.ok());
  ASSERT_FALSE(from1.ok());
  EXPECT_EQ(from1.status().code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(cluster_->node(2).daemon->imports_rejected(), 1u);
}

TEST_F(VmmcTest, ImportWithWaitRetriesUntilExportAppears) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  Result<ImportedBuffer> imported(InternalError("unset"));
  auto importer = [&](Endpoint& ep) -> sim::Process {
    ImportOptions opts;
    opts.wait = true;
    imported = co_await ep.ImportBuffer(1, "late", opts);
  };
  sim_.Spawn(importer(*send.value()));

  // Export only 5 ms later.
  auto late_exporter = [&](Endpoint& ep) -> sim::Process {
    co_await sim_.Delay(5 * sim::kMillisecond);
    auto buf = ep.AllocBuffer(4096);
    ExportOptions opts;
    opts.name = "late";
    auto r = co_await ep.ExportBuffer(buf.value(), 4096, std::move(opts));
    CO_ASSERT_TRUE(r.ok());
  };
  sim_.Spawn(late_exporter(*recv.value()));
  RunAll();
  EXPECT_TRUE(imported.ok());
}

// --- data transfer: the heart of the system ---

struct TransferResult {
  Status status = InternalError("unset");
  Tick elapsed = 0;
};

// One complete transfer: receiver exports, sender imports and sends, data
// lands in the receiver's memory with no receive operation.
void RunTransfer(sim::Simulator& sim, Cluster& cluster, Endpoint& recv_ep,
                 Endpoint& send_ep, std::uint32_t len, std::uint32_t offset,
                 TransferResult& out, const std::string& name) {
  struct Driver {
    static sim::Process Recv(Endpoint& ep, std::uint32_t len, std::string name,
                             mem::VirtAddr& buf) {
      auto b = ep.AllocBuffer(len + 8192);
      CO_ASSERT_TRUE(b.ok());
      buf = b.value();
      ExportOptions opts;
      opts.name = std::move(name);
      auto r = co_await ep.ExportBuffer(buf, len + 8192, std::move(opts));
      CO_ASSERT_TRUE(r.ok());
    }
    static sim::Process Send(sim::Simulator& sim, Endpoint& ep, int dst_node,
                             std::uint32_t len, std::uint32_t offset,
                             TransferResult& out, std::string name) {
      ImportOptions iopts;
      iopts.wait = true;
      auto imp = co_await ep.ImportBuffer(dst_node, name, iopts);
      CO_ASSERT_TRUE(imp.ok());
      auto src = ep.AllocBuffer(len + 4096);
      CO_ASSERT_TRUE(src.ok());
      // Unaligned source start exercises the first-chunk page-boundary
      // logic.
      const mem::VirtAddr src_va = src.value() + 100;
      CO_ASSERT_TRUE(ep.WriteBuffer(src_va, PatternBytes(len, 7)).ok());
      const Tick t0 = sim.now();
      Status s = co_await ep.SendMsg(src_va, imp.value().proxy_base + offset, len);
      out.elapsed = sim.now() - t0;
      out.status = s;
    }
  };
  mem::VirtAddr rbuf = 0;
  sim.Spawn(Driver::Recv(recv_ep, len, name, rbuf));
  sim.Spawn(Driver::Send(sim, send_ep, recv_ep.node_id(), len, offset, out, name));
  sim.Run(50'000'000);
  ASSERT_TRUE(out.status.ok()) << out.status.ToString();

  // Verify delivery: read the receiver's exported memory directly.
  std::vector<std::uint8_t> got(len);
  ASSERT_TRUE(recv_ep.ReadBuffer(rbuf + offset, got).ok());
  EXPECT_EQ(got, PatternBytes(len, 7)) << "payload corrupted (len=" << len << ")";
  (void)cluster;
}

class VmmcTransferTest : public VmmcTest,
                         public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(VmmcTransferTest, DataArrivesIntact) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());
  TransferResult result;
  RunTransfer(sim_, *cluster_, *recv.value(), *send.value(), GetParam(),
              /*offset=*/0, result, "xfer");
}

INSTANTIATE_TEST_SUITE_P(Sizes, VmmcTransferTest,
                         ::testing::Values(1u, 4u, 32u, 128u,    // short path
                                           129u, 512u, 4096u,    // long path
                                           5000u, 65536u, 300000u));

TEST_F(VmmcTest, TransferToUnalignedDestinationOffset) {
  // Destination offset that makes every chunk span a page boundary at the
  // receiver — the two-address scatter path.
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());
  TransferResult result;
  RunTransfer(sim_, *cluster_, *recv.value(), *send.value(), 20000,
              /*offset=*/1234, result, "scatter");
}

TEST_F(VmmcTest, ReceiveIsZeroCopyAndDoesNotInvolveReceiverCpu) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());
  TransferResult result;
  RunTransfer(sim_, *cluster_, *recv.value(), *send.value(), 100000, 0, result,
              "zc");
  // No host-CPU copy happened anywhere on the receive node (§2: data goes
  // directly into the memory of the receiving process).
  EXPECT_EQ(cluster_->node(1).machine->cpu().bcopy_calls(), 0u);
  // And the receiver took no interrupts for data delivery (no notification
  // was requested).
  EXPECT_EQ(cluster_->node(1).machine->kernel().interrupts_taken(), 0u);
}

TEST_F(VmmcTest, LongSendUsesTlbMissServiceOnce) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());
  TransferResult result;
  // 40 pages; the driver fills 32 translations per interrupt (§4.5), so
  // 160 KB + change needs exactly 2 miss interrupts.
  RunTransfer(sim_, *cluster_, *recv.value(), *send.value(), 40 * 4096, 0,
              result, "tlb");
  const auto& stats = cluster_->node(0).lcp->stats();
  EXPECT_EQ(stats.tlb_miss_interrupts, 2u);
  EXPECT_GE(cluster_->node(0).driver->pages_pinned(), 40u);
}

TEST_F(VmmcTest, WarmTlbAvoidsFurtherInterrupts) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 64 * 4096, "warm", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  std::uint64_t misses_after_first = 0, misses_after_second = 0;
  auto prog = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "warm");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(40 * 4096);
    CO_ASSERT_TRUE(src.ok());
    Status s1 = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 40 * 4096);
    CO_ASSERT_TRUE(s1.ok());
    misses_after_first = cluster_->node(0).lcp->stats().tlb_miss_interrupts;
    // Same buffer again: translations are warm in the SRAM TLB.
    Status s2 = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 40 * 4096);
    CO_ASSERT_TRUE(s2.ok());
    misses_after_second = cluster_->node(0).lcp->stats().tlb_miss_interrupts;
  };
  sim_.Spawn(prog(*send.value()));
  RunAll();
  EXPECT_EQ(misses_after_first, 2u);
  EXPECT_EQ(misses_after_second, misses_after_first)
      << "warm TLB must not interrupt the host again";
}

TEST_F(VmmcTest, SendToNonImportedProxyFails) {
  Boot();
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(send.ok());
  Status status = InternalError("unset");
  auto prog = [&](Endpoint& ep) -> sim::Process {
    auto src = ep.AllocBuffer(4096);
    // Proxy page 5 was never set up by an import.
    status = co_await ep.SendMsg(src.value(), MakeProxyAddr(5, 0), 4096);
  };
  sim_.Spawn(prog(*send.value()));
  RunAll();
  EXPECT_EQ(status.code(), ErrorCode::kPermissionDenied);
  EXPECT_GE(cluster_->node(0).lcp->stats().protection_violations, 1u);
  EXPECT_EQ(cluster_->node(0).lcp->stats().bytes_sent, 0u);
}

TEST_F(VmmcTest, SendBeyondImportedBufferFails) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 8192, "small", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  Status overflow = InternalError("unset");
  std::uint64_t receiver_dma_before = 0;
  auto prog = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "small");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(16384);
    receiver_dma_before = cluster_->node(1).machine->pci().dma_bytes();
    // 12 KB into an 8 KB buffer: the third chunk's proxy page is invalid.
    overflow = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 12288);
  };
  sim_.Spawn(prog(*send.value()));
  RunAll();
  EXPECT_EQ(overflow.code(), ErrorCode::kPermissionDenied);
  // VMMC guarantees no memory outside the receive buffer is overwritten
  // (§2); at most the two valid pages were written.
  EXPECT_LE(cluster_->node(1).machine->pci().dma_bytes() - receiver_dma_before,
            8192u + 1024u);
}

TEST_F(VmmcTest, ReceiverChecksIncomingTableEvenForForgedPackets) {
  Boot();
  // Inject a forged VMMC data packet aimed at an arbitrary frame that was
  // never exported. The receive path must refuse to DMA.
  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagLastChunk;
  h.src_node = 0;
  h.msg_len = 64;
  h.chunk_len = 64;
  h.dst_pa0 = 5 * mem::kPageSize;
  std::vector<std::uint8_t> evil(64, 0x66);
  myrinet::Packet pkt;
  pkt.route = cluster_->node(0).routes[1];
  pkt.payload = EncodeChunk(h, evil);

  auto inject = [&]() -> sim::Process {
    co_await cluster_->node(0).nic->NetSend(std::move(pkt));
  };
  sim_.Spawn(inject());
  RunAll();
  EXPECT_EQ(cluster_->node(1).lcp->stats().protection_violations, 1u);
  EXPECT_EQ(cluster_->node(1).lcp->stats().bytes_received, 0u);
}

TEST_F(VmmcTest, AsyncSendOverlapsAndCompletes) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 1 << 20, "async", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  Tick post_time = 0, done_time = 0;
  Status final_status = InternalError("unset");
  bool was_incomplete = false;
  auto prog = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "async");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(256 * 1024);
    CO_ASSERT_TRUE(ep.WriteBuffer(src.value(), PatternBytes(256 * 1024, 3)).ok());
    const Tick t0 = sim_.now();
    auto handle = co_await ep.SendMsgAsync(src.value(), imp.value().proxy_base,
                                           256 * 1024);
    CO_ASSERT_TRUE(handle.ok());
    post_time = sim_.now() - t0;
    was_incomplete = !ep.CheckSend(handle.value());
    final_status = co_await ep.WaitSend(handle.value());
    done_time = sim_.now() - t0;
  };
  sim_.Spawn(prog(*send.value()));
  RunAll();
  ASSERT_TRUE(final_status.ok());
  EXPECT_TRUE(was_incomplete) << "a 256 KB send cannot finish at post time";
  EXPECT_LT(post_time, 10 * sim::kMicrosecond) << "async post must be cheap";
  EXPECT_GT(done_time, 100 * post_time);
  std::vector<std::uint8_t> got(256 * 1024);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf, got).ok());
  EXPECT_EQ(got, PatternBytes(256 * 1024, 3));
}

TEST_F(VmmcTest, StaleSendHandleRejected) {
  Boot();
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(send.ok());
  Status s1 = OkStatus(), s2 = OkStatus();
  auto prog = [&](Endpoint& ep) -> sim::Process {
    SendHandle bogus{0, 999};
    s1 = co_await ep.WaitSend(bogus);
    SendHandle oob{99, 1};
    s2 = co_await ep.WaitSend(oob);
  };
  sim_.Spawn(prog(*send.value()));
  RunAll();
  EXPECT_EQ(s1.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s2.code(), ErrorCode::kInvalidArgument);
}

TEST_F(VmmcTest, NotificationInvokesUserHandler) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  int handler_runs = 0;
  std::uint32_t handler_len = 0;
  Tick handler_time = 0;

  auto receiver = [&](Endpoint& ep) -> sim::Process {
    auto buf = ep.AllocBuffer(65536);
    ExportOptions opts;
    opts.name = "notified";
    opts.notify = true;
    auto id = co_await ep.ExportBuffer(buf.value(), 65536, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ep.SetNotificationHandler(
        id.value(), [&](const UserNotification& n) -> sim::Process {
          ++handler_runs;
          handler_len = n.msg_len;
          handler_time = sim_.now();
          co_return;
        });
  };
  sim_.Spawn(receiver(*recv.value()));
  RunAll();

  auto sender = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "notified");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(40000);
    SendOptions opts;
    opts.notify = true;
    Status s = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 40000, opts);
    CO_ASSERT_TRUE(s.ok());
  };
  sim_.Spawn(sender(*send.value()));
  RunAll();

  EXPECT_EQ(handler_runs, 1);
  EXPECT_EQ(handler_len, 40000u);
  EXPECT_GT(handler_time, 0);
  EXPECT_EQ(cluster_->node(1).lcp->stats().notifications_raised, 1u);
  EXPECT_EQ(recv.value()->notifications_received(), 1u);
  EXPECT_GE(cluster_->node(1).machine->kernel().signals_posted(), 1u);
}

TEST_F(VmmcTest, NoNotificationWithoutSenderFlag) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());
  int handler_runs = 0;

  auto receiver = [&](Endpoint& ep) -> sim::Process {
    auto buf = ep.AllocBuffer(4096);
    ExportOptions opts;
    opts.name = "quiet";
    opts.notify = true;
    auto id = co_await ep.ExportBuffer(buf.value(), 4096, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ep.SetNotificationHandler(id.value(),
                              [&](const UserNotification&) -> sim::Process {
                                ++handler_runs;
                                co_return;
                              });
  };
  sim_.Spawn(receiver(*recv.value()));
  RunAll();

  auto sender = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "quiet");
    auto src = ep.AllocBuffer(4096);
    // No notify flag on the send.
    Status s = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 2048);
    CO_ASSERT_TRUE(s.ok());
  };
  sim_.Spawn(sender(*send.value()));
  RunAll();
  EXPECT_EQ(handler_runs, 0);
}

TEST_F(VmmcTest, BurstOfNotificationsAllDelivered) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  int handler_runs = 0;
  auto receiver = [&](Endpoint& ep) -> sim::Process {
    auto buf = ep.AllocBuffer(65536);
    ExportOptions opts;
    opts.name = "burst";
    opts.notify = true;
    auto id = co_await ep.ExportBuffer(buf.value(), 65536, std::move(opts));
    CO_ASSERT_TRUE(id.ok());
    ep.SetNotificationHandler(id.value(),
                              [&](const UserNotification&) -> sim::Process {
                                ++handler_runs;
                                co_return;
                              });
  };
  sim_.Spawn(receiver(*recv.value()));
  RunAll();

  const int kMessages = 12;
  auto sender = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "burst");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(4096);
    for (int i = 0; i < kMessages; ++i) {
      SendOptions opts;
      opts.notify = true;
      Status s = co_await ep.SendMsg(
          src.value(),
          imp.value().proxy_base + static_cast<std::uint32_t>(i) * 4096, 4096,
          opts);
      CO_ASSERT_TRUE(s.ok());
    }
  };
  sim_.Spawn(sender(*send.value()));
  RunAll();
  // Every message raised a notification; the signal handler may batch
  // several per signal, but no notification may be lost.
  EXPECT_EQ(recv.value()->notifications_received(),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(handler_runs, kMessages);
  EXPECT_EQ(cluster_->node(1).lcp->stats().notifications_raised,
            static_cast<std::uint64_t>(kMessages));
}

TEST_F(VmmcTest, TwoImportersShareOneExport) {
  // Two senders on different nodes import the same buffer and write to
  // disjoint halves — exports are multi-importer by design.
  Boot(3);
  auto recv = cluster_->OpenEndpoint(2, "receiver");
  auto s0 = cluster_->OpenEndpoint(0, "s0");
  auto s1 = cluster_->OpenEndpoint(1, "s1");
  ASSERT_TRUE(recv.ok() && s0.ok() && s1.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 16384, "shared", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  int done = 0;
  auto writer = [&](Endpoint& ep, std::uint32_t offset, std::uint8_t seed)
      -> sim::Process {
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await ep.ImportBuffer(2, "shared", wait);
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(8192);
    CO_ASSERT_TRUE(ep.WriteBuffer(src.value(), PatternBytes(8192, seed)).ok());
    Status s = co_await ep.SendMsg(src.value(), imp.value().proxy_base + offset,
                                   8192);
    CO_ASSERT_TRUE(s.ok());
    ++done;
  };
  sim_.Spawn(writer(*s0.value(), 0, 0x10));
  sim_.Spawn(writer(*s1.value(), 8192, 0x20));
  RunAll();
  ASSERT_EQ(done, 2);
  std::vector<std::uint8_t> lo(8192), hi(8192);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf, lo).ok());
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf + 8192, hi).ok());
  EXPECT_EQ(lo, PatternBytes(8192, 0x10));
  EXPECT_EQ(hi, PatternBytes(8192, 0x20));
}

TEST_F(VmmcTest, MultipleProcessesPerNodeAreIsolated) {
  Boot();
  // Two sender processes on node 0 import different buffers; each can send
  // only through its own outgoing page table (§4.4: "there is no way a
  // process can use outgoing page table entries set up for others").
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto p1 = cluster_->OpenEndpoint(0, "proc1");
  auto p2 = cluster_->OpenEndpoint(0, "proc2");
  ASSERT_TRUE(recv.ok() && p1.ok() && p2.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 8192, "only-p1", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  Status s1 = InternalError("unset"), s2 = InternalError("unset");
  auto prog1 = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "only-p1");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(4096);
    CO_ASSERT_TRUE(ep.WriteBuffer(src.value(), PatternBytes(4096, 1)).ok());
    s1 = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 4096);
  };
  auto prog2 = [&](Endpoint& ep) -> sim::Process {
    // proc2 never imported: the same proxy address is invalid for it.
    auto src = ep.AllocBuffer(4096);
    s2 = co_await ep.SendMsg(src.value(), MakeProxyAddr(0, 0), 4096);
  };
  sim_.Spawn(prog1(*p1.value()));
  sim_.Spawn(prog2(*p2.value()));
  RunAll();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_EQ(s2.code(), ErrorCode::kPermissionDenied);
  std::vector<std::uint8_t> got(4096);
  ASSERT_TRUE(recv.value()->ReadBuffer(rbuf, got).ok());
  EXPECT_EQ(got, PatternBytes(4096, 1));
}

TEST_F(VmmcTest, SramLimitsProcessCount) {
  Boot();
  // Each VMMC process consumes SRAM for its send queue, outgoing page
  // table and TLB; 256 KB minus the LCP reservation supports only a
  // handful (§6: "The Myrinet approach requires many more resources on
  // the network interface").
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  int opened = 0;
  for (int i = 0; i < 32; ++i) {
    auto ep = cluster_->OpenEndpoint(0, "proc" + std::to_string(i));
    if (!ep.ok()) {
      EXPECT_EQ(ep.status().code(), ErrorCode::kResourceExhausted);
      break;
    }
    endpoints.push_back(std::move(ep).value());
    ++opened;
  }
  EXPECT_GE(opened, 4);
  EXPECT_LT(opened, 32) << "SRAM must eventually run out";
  // Closing one endpoint frees its SRAM; a new process fits again.
  endpoints.pop_back();
  EXPECT_TRUE(cluster_->OpenEndpoint(0, "late").ok());
}

TEST_F(VmmcTest, OutgoingTableLimitsImportVolume) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  // The outgoing page table caps total imports at 8 MB (§4.4); with
  // 16 MB nodes we export two 3 MB buffers and fail on the third import.
  Status third = OkStatus();
  auto prog = [&](Endpoint& recv_ep, Endpoint& send_ep) -> sim::Process {
    for (int i = 0; i < 3; ++i) {
      const std::uint32_t len = 3 * 1024 * 1024;
      auto buf = recv_ep.AllocBuffer(len);
      CO_ASSERT_TRUE(buf.ok());
      ExportOptions opts;
      opts.name = "big" + std::to_string(i);
      auto id = co_await recv_ep.ExportBuffer(buf.value(), len, std::move(opts));
      CO_ASSERT_TRUE(id.ok());
      auto imp = co_await send_ep.ImportBuffer(1, "big" + std::to_string(i));
      if (!imp.ok()) {
        third = imp.status();
        co_return;
      }
    }
  };
  sim_.Spawn(prog(*recv.value(), *send.value()));
  RunAll();
  EXPECT_EQ(third.code(), ErrorCode::kResourceExhausted);
}

TEST_F(VmmcTest, CrcErrorsAreCountedAndDropped) {
  Boot();
  // Corrupt the network only after boot (the mapping phase needs working
  // probes; in the paper's deployment link errors during mapping would
  // equally abort the boot). Reliability off: this test pins down the
  // paper's original drop-and-count behavior (§4.2); the go-back-N layer
  // has its own tests in fault_test.cpp.
  cluster_->mutable_params().net.packet_error_rate = 1.0;
  cluster_->mutable_params().vmmc.reliability.enabled = false;
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 4096, "noisy", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  auto sender = [&](Endpoint& ep) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(1, "noisy");
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(4096);
    // Sender-side completion does not depend on delivery.
    Status s = co_await ep.SendMsg(src.value(), imp.value().proxy_base, 4096);
    CO_ASSERT_TRUE(s.ok());
  };
  sim_.Spawn(sender(*send.value()));
  RunAll();
  // Every data packet was corrupted: dropped at the receiver, counted, no
  // recovery attempted (§4.2).
  EXPECT_GE(cluster_->node(1).nic->crc_errors(), 1u);
  EXPECT_GE(cluster_->node(1).lcp->stats().crc_drops, 1u);
  EXPECT_EQ(cluster_->node(1).lcp->stats().bytes_received, 0u);
}

TEST_F(VmmcTest, UnexportDisablesFutureDelivery) {
  Boot();
  auto recv = cluster_->OpenEndpoint(1, "receiver");
  auto send = cluster_->OpenEndpoint(0, "sender");
  ASSERT_TRUE(recv.ok() && send.ok());

  mem::VirtAddr rbuf = 0;
  Result<ExportId> exported(InternalError("unset"));
  sim_.Spawn(ExportProgram(*recv.value(), 4096, "gone", false, exported, rbuf));
  RunAll();
  ASSERT_TRUE(exported.ok());

  Status send_status = InternalError("unset");
  auto prog = [&](Endpoint& send_ep, Endpoint& recv_ep) -> sim::Process {
    auto imp = co_await send_ep.ImportBuffer(1, "gone");
    CO_ASSERT_TRUE(imp.ok());
    // Receiver withdraws the export; the sender's stale import must not be
    // able to write memory any more (incoming table disabled).
    Status un = co_await recv_ep.UnexportBuffer(exported.value());
    CO_ASSERT_TRUE(un.ok());
    auto src = send_ep.AllocBuffer(4096);
    send_status = co_await send_ep.SendMsg(src.value(), imp.value().proxy_base, 2048);
  };
  sim_.Spawn(prog(*send.value(), *recv.value()));
  RunAll();
  // Sender-side completion may succeed (short send, fire and forget at the
  // receiver), but the receiver must have rejected the write.
  EXPECT_GE(cluster_->node(1).lcp->stats().protection_violations, 1u);
  EXPECT_EQ(cluster_->node(1).lcp->stats().bytes_received, 0u);
  (void)send_status;
}

TEST_F(VmmcTest, BidirectionalTransfersBothComplete) {
  Boot();
  auto a = cluster_->OpenEndpoint(0, "a");
  auto b = cluster_->OpenEndpoint(1, "b");
  ASSERT_TRUE(a.ok() && b.ok());

  const std::uint32_t kLen = 128 * 1024;
  mem::VirtAddr abuf = 0, bbuf = 0;
  Result<ExportId> ea(InternalError("unset")), eb(InternalError("unset"));
  sim_.Spawn(ExportProgram(*a.value(), kLen, "a-ring", false, ea, abuf));
  sim_.Spawn(ExportProgram(*b.value(), kLen, "b-ring", false, eb, bbuf));
  RunAll();
  ASSERT_TRUE(ea.ok() && eb.ok());

  Status sa = InternalError("unset"), sb = InternalError("unset");
  auto prog = [&](Endpoint& ep, int peer, const char* ring, std::uint8_t seed,
                  Status& out) -> sim::Process {
    auto imp = co_await ep.ImportBuffer(peer, ring);
    CO_ASSERT_TRUE(imp.ok());
    auto src = ep.AllocBuffer(kLen);
    CO_ASSERT_TRUE(ep.WriteBuffer(src.value(), PatternBytes(kLen, seed)).ok());
    out = co_await ep.SendMsg(src.value(), imp.value().proxy_base, kLen);
  };
  sim_.Spawn(prog(*a.value(), 1, "b-ring", 0xA0, sa));
  sim_.Spawn(prog(*b.value(), 0, "a-ring", 0xB0, sb));
  RunAll();
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());

  std::vector<std::uint8_t> got(kLen);
  ASSERT_TRUE(b.value()->ReadBuffer(bbuf, got).ok());
  EXPECT_EQ(got, PatternBytes(kLen, 0xA0));
  ASSERT_TRUE(a.value()->ReadBuffer(abuf, got).ok());
  EXPECT_EQ(got, PatternBytes(kLen, 0xB0));
  // Cross traffic forced the LCP out of the tight sending loop for at
  // least part of the transfer (§5.3).
  EXPECT_GT(cluster_->node(0).lcp->stats().main_loop_chunks +
                cluster_->node(1).lcp->stats().main_loop_chunks,
            0u);
}

}  // namespace
}  // namespace vmmc::vmmc_core
