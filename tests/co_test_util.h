// Coroutine-safe assertion for tests: gtest's ASSERT_* expands to `return`,
// which is illegal inside a coroutine; this records the failure and
// co_returns instead.
#pragma once

#include <gtest/gtest.h>

#define CO_ASSERT_TRUE(cond)                                   \
  if (!(cond)) {                                               \
    ADD_FAILURE() << "CO_ASSERT_TRUE failed: " #cond;          \
    co_return;                                                 \
  } else                                                       \
    (void)0
