// Tests for the Ethernet control-network model.
#include <gtest/gtest.h>

#include "vmmc/ethernet/ethernet.h"
#include "vmmc/params.h"

namespace vmmc::ethernet {
namespace {

class EthernetTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
  Segment seg_{sim_, params_.ethernet};
};

sim::Process SendOne(Interface& from, int dst, std::uint16_t port,
                     std::vector<std::uint8_t> data) {
  co_await from.SendTo(dst, port, 0, std::move(data));
}

TEST_F(EthernetTest, DatagramDelivery) {
  Interface& a = seg_.AddInterface(0);
  Interface& b = seg_.AddInterface(1);
  auto box = b.Bind(700);
  ASSERT_TRUE(box.ok());
  sim_.Spawn(SendOne(a, 1, 700, {1, 2, 3}));
  sim_.Run();
  ASSERT_EQ(box.value()->size(), 1u);
  auto d = box.value()->TryGet();
  EXPECT_EQ(d->src_node, 0);
  EXPECT_EQ(d->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(b.delivered(), 1u);
}

TEST_F(EthernetTest, UnboundPortDrops) {
  Interface& a = seg_.AddInterface(0);
  Interface& b = seg_.AddInterface(1);
  sim_.Spawn(SendOne(a, 1, 999, {1}));
  sim_.Run();
  EXPECT_EQ(b.dropped_no_port(), 1u);
}

TEST_F(EthernetTest, UnknownNodeVanishes) {
  Interface& a = seg_.AddInterface(0);
  sim_.Spawn(SendOne(a, 7, 700, {1}));
  sim_.Run();  // must not crash
  EXPECT_EQ(a.delivered(), 0u);
}

TEST_F(EthernetTest, DoubleBindRejected) {
  Interface& a = seg_.AddInterface(0);
  ASSERT_TRUE(a.Bind(700).ok());
  EXPECT_FALSE(a.Bind(700).ok());
  EXPECT_TRUE(a.Unbind(700).ok());
  EXPECT_TRUE(a.Bind(700).ok());
  EXPECT_FALSE(a.Unbind(701).ok());
}

TEST_F(EthernetTest, EthernetIsSlowComparedToMyrinet) {
  // A 1 KB datagram takes on the order of a millisecond: stack cost +
  // frame latency + 10 Mb/s serialization. This is why the daemons use it
  // only for setup, never for data.
  Interface& a = seg_.AddInterface(0);
  Interface& b = seg_.AddInterface(1);
  auto box = b.Bind(700);
  ASSERT_TRUE(box.ok());
  sim_.Spawn(SendOne(a, 1, 700, std::vector<std::uint8_t>(1024, 0)));
  sim_.Run();
  EXPECT_GT(sim_.now(), 500 * sim::kMicrosecond);
  EXPECT_LT(sim_.now(), 10 * sim::kMillisecond);
}

TEST_F(EthernetTest, SharedMediumSerializes) {
  Interface& a = seg_.AddInterface(0);
  Interface& b = seg_.AddInterface(1);
  Interface& c = seg_.AddInterface(2);
  auto box = c.Bind(700);
  ASSERT_TRUE(box.ok());
  sim_.Spawn(SendOne(a, 2, 700, std::vector<std::uint8_t>(1400, 1)));
  sim_.Spawn(SendOne(b, 2, 700, std::vector<std::uint8_t>(1400, 2)));
  sim_.Run();
  EXPECT_EQ(box.value()->size(), 2u);
  // Two frames cannot share the wire: total time >= 2 frame latencies.
  EXPECT_GE(sim_.now(), 2 * params_.ethernet.frame_latency);
}

}  // namespace
}  // namespace vmmc::ethernet
