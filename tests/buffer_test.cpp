// Tests for vmmc::util::Buffer: copy-on-write sharing, mutation paths,
// size-class pooling and the pool statistics the perf-guard tests rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "vmmc/util/buffer.h"

namespace vmmc::util {
namespace {

using Stats = Buffer::PoolStats;

// Pool stats are cumulative since process start; tests assert on deltas.
Stats Delta(const Stats& before) {
  const Stats& now = Buffer::pool_stats();
  Stats d;
  d.allocs = now.allocs - before.allocs;
  d.pool_hits = now.pool_hits - before.pool_hits;
  d.heap_allocs = now.heap_allocs - before.heap_allocs;
  d.unshares = now.unshares - before.unshares;
  d.live_blocks = now.live_blocks - before.live_blocks;
  return d;
}

TEST(BufferTest, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_TRUE(b.unique());
  EXPECT_EQ(b.MutableData(), nullptr);
}

TEST(BufferTest, ConstructFromVectorAndInitializerList) {
  std::vector<std::uint8_t> v = {1, 2, 3, 4, 5};
  Buffer from_vec = v;  // implicit, mirrors pre-Buffer call sites
  Buffer from_il = {1, 2, 3, 4, 5};
  EXPECT_EQ(from_vec.size(), 5u);
  EXPECT_EQ(from_vec, v);
  EXPECT_EQ(from_il, from_vec);
  EXPECT_EQ(from_vec[0], 1);
  EXPECT_EQ(from_vec[4], 5);
}

TEST(BufferTest, SizedConstructorZeroFills) {
  Buffer b(std::size_t{257});
  ASSERT_EQ(b.size(), 257u);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], 0) << i;
}

TEST(BufferTest, CopySharesBytesMoveTransfers) {
  Buffer a = {10, 20, 30};
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());  // same block: copy is a ref bump
  EXPECT_FALSE(a.unique());
  EXPECT_FALSE(b.unique());

  Buffer c = std::move(b);
  EXPECT_EQ(c.data(), a.data());
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_FALSE(c.unique());

  b = a;  // copy-assign re-shares
  EXPECT_EQ(b.data(), a.data());
}

TEST(BufferTest, MutableDataUnsharesExactlyOnce) {
  const Stats before = Buffer::pool_stats();
  Buffer a = {1, 2, 3};
  Buffer b = a;
  std::uint8_t* p = b.MutableData();
  ASSERT_NE(p, nullptr);
  EXPECT_NE(p, a.data());  // b got its own block
  EXPECT_TRUE(a.unique());
  EXPECT_TRUE(b.unique());
  EXPECT_EQ(Delta(before).unshares, 1u);

  p[1] = 99;
  EXPECT_EQ(b[1], 99);
  EXPECT_EQ(a[1], 2);  // the original is untouched

  // Already unique: further mutation is in place, no more unshares.
  b.MutableData()[0] = 7;
  EXPECT_EQ(Delta(before).unshares, 1u);
}

TEST(BufferTest, ConstReadsNeverUnshare) {
  const Stats before = Buffer::pool_stats();
  Buffer a = {5, 6, 7};
  const Buffer b = a;
  EXPECT_EQ(b[0], 5);
  EXPECT_EQ(*b.begin(), 5);
  std::span<const std::uint8_t> view = b;
  EXPECT_EQ(view.size(), 3u);
  EXPECT_EQ(b.data(), a.data());  // still shared after all reads
  EXPECT_EQ(Delta(before).unshares, 0u);
}

TEST(BufferTest, ShrinkIsO1AndGrowZeroFills) {
  Buffer b = {1, 2, 3, 4};
  const std::uint8_t* p = b.data();
  b.resize(2);  // shrink: no realloc, no copy
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.data(), p);
  b.resize(4);  // grow within capacity: new bytes are zero
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
  EXPECT_EQ(b[2], 0);
  EXPECT_EQ(b[3], 0);
  b.resize(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(BufferTest, ResizeOnSharedBufferCopiesOnWrite) {
  Buffer a = {1, 2, 3};
  Buffer b = a;
  b.resize(5);
  EXPECT_NE(b.data(), a.data());
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b[2], 3);
  EXPECT_EQ(b[4], 0);
}

TEST(BufferTest, AssignDropsSharedBlockInsteadOfCopying) {
  const Stats before = Buffer::pool_stats();
  Buffer a = {1, 2, 3};
  Buffer b = a;
  std::vector<std::uint8_t> fresh = {9, 8};
  b.assign(fresh);
  EXPECT_EQ(b, fresh);
  EXPECT_EQ(a[0], 1);
  // assign never needs the old bytes, so it is not an unshare.
  EXPECT_EQ(Delta(before).unshares, 0u);

  b.assign(10, 0xAA);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(b[9], 0xAA);
}

TEST(BufferTest, UninitializedHasSizeButUnspecifiedBytes) {
  Buffer b = Buffer::Uninitialized(128);
  ASSERT_EQ(b.size(), 128u);
  ASSERT_NE(b.MutableData(), nullptr);
  std::iota(b.MutableData(), b.MutableData() + 128, std::uint8_t{0});
  EXPECT_EQ(b[127], 127);
}

TEST(BufferTest, EqualityComparesBytes) {
  Buffer a = {1, 2, 3};
  Buffer b = {1, 2, 3};
  Buffer c = {1, 2, 4};
  EXPECT_EQ(a, b);  // different blocks, same bytes
  EXPECT_FALSE(a == c);
  EXPECT_EQ(Buffer(), Buffer());
  std::vector<std::uint8_t> v = {1, 2, 3};
  EXPECT_EQ(a, v);
  EXPECT_EQ(v, a);
  EXPECT_FALSE(c == v);
}

TEST(BufferTest, PoolRecyclesBlocksBySizeClass) {
  // Warm the 64-byte class, free it, then re-allocate: the second
  // allocation must be a pool hit, not a heap allocation.
  { Buffer warm(std::size_t{48}); }
  const Stats before = Buffer::pool_stats();
  { Buffer again(std::size_t{64}); }  // same class (capacity 64)
  const Stats d = Delta(before);
  EXPECT_EQ(d.allocs, 1u);
  EXPECT_EQ(d.pool_hits, 1u);
  EXPECT_EQ(d.heap_allocs, 0u);
  EXPECT_EQ(d.live_blocks, 0u);  // released back on destruction
}

TEST(BufferTest, OversizedBlocksBypassThePool) {
  // Above the largest size class the block is exact-size and heap-backed.
  const Stats before = Buffer::pool_stats();
  {
    Buffer big(std::size_t{100000});
    EXPECT_EQ(big.size(), 100000u);
  }
  const Stats d = Delta(before);
  EXPECT_EQ(d.heap_allocs, 1u);
  EXPECT_EQ(d.pool_hits, 0u);
  EXPECT_EQ(d.live_blocks, 0u);
}

TEST(BufferTest, LiveBlocksTracksSharedOwnership) {
  const Stats before = Buffer::pool_stats();
  {
    Buffer a = {1, 2, 3};
    Buffer b = a;  // shared: still one block
    EXPECT_EQ(Delta(before).live_blocks, 1u);
    b.MutableData()[0] = 9;  // COW: now two blocks
    EXPECT_EQ(Delta(before).live_blocks, 2u);
  }
  EXPECT_EQ(Delta(before).live_blocks, 0u);
}

}  // namespace
}  // namespace vmmc::util
