// Unit tests for the observability layer: instrument semantics, span
// recording across coroutine suspension, Chrome-trace JSON validity, and
// trace determinism across identical runs.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::obs {
namespace {

// --- a minimal JSON syntax checker (no external deps) --------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// --- instruments ----------------------------------------------------------

TEST(CounterTest, IncrementsByOneAndByAmount) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, TracksMinMaxAndTimeWeightedMean) {
  Gauge g;
  EXPECT_EQ(g.TimeWeightedMean(100), 0.0);  // nothing set yet
  g.Set(0, 2.0);
  g.Set(10, 4.0);  // held 2.0 for [0,10)
  EXPECT_EQ(g.value(), 4.0);
  EXPECT_EQ(g.min(), 2.0);
  EXPECT_EQ(g.max(), 4.0);
  // 2.0 over [0,10) and 4.0 over [10,20): mean 3.0.
  EXPECT_DOUBLE_EQ(g.TimeWeightedMean(20), 3.0);
}

TEST(GaugeTest, AddIsRelative) {
  Gauge g;
  g.Set(0, 1.0);
  g.Add(5, 2.0);
  EXPECT_EQ(g.value(), 3.0);
  g.Add(5, -3.0);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.min(), 0.0);
  EXPECT_EQ(g.max(), 3.0);
}

TEST(HistoTest, MomentsAreExact) {
  Histo h;
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
}

TEST(HistoTest, QuantileEdgeCases) {
  Histo empty;
  EXPECT_EQ(empty.Quantile(0.5), 0.0);

  Histo one;
  one.Observe(7.0);
  EXPECT_EQ(one.Quantile(0.0), 7.0);
  EXPECT_EQ(one.Quantile(0.5), 7.0);
  EXPECT_EQ(one.Quantile(1.0), 7.0);
}

TEST(HistoTest, QuantilesAreMonotonicAndClamped) {
  Histo h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  double prev = h.Quantile(0.0);
  EXPECT_GE(prev, h.min());
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_LE(h.Quantile(1.0), h.max());
  // Power-of-two buckets: the estimate may be off by up to one bucket
  // width, but the median of 1..1000 must land in the right region.
  EXPECT_GE(h.Quantile(0.5), 256.0);
  EXPECT_LE(h.Quantile(0.5), 1000.0);
}

// --- registry -------------------------------------------------------------

TEST(RegistryTest, GetReturnsSameInstrumentForSameName) {
  Registry r;
  Counter& a = r.GetCounter("x.count");
  Counter& b = r.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Inc(3);
  EXPECT_EQ(r.CounterValue("x.count"), 3u);
  EXPECT_EQ(r.CounterValue("never.registered"), 0u);
  EXPECT_EQ(r.FindGauge("nope"), nullptr);
  EXPECT_EQ(r.FindHisto("nope"), nullptr);
}

TEST(RegistryTest, SumCountersMatchesPrefixAndSuffix) {
  Registry r;
  r.GetCounter("fabric.link0.ser_ns").Inc(10);
  r.GetCounter("fabric.link1.ser_ns").Inc(20);
  r.GetCounter("fabric.link1.bytes").Inc(999);
  r.GetCounter("node0.lcp.sends").Inc(5);
  EXPECT_EQ(r.SumCounters("fabric.link", "ser_ns"), 30u);
  EXPECT_EQ(r.SumCounters("fabric.link"), 1029u);
  EXPECT_EQ(r.SumCounters("node"), 5u);
  EXPECT_EQ(r.SumCounters("nothing"), 0u);
}

TEST(RegistryTest, ToJsonIsValidAndDeterministic) {
  Registry r;
  r.GetCounter("b.count").Inc(2);
  r.GetCounter("a.count").Inc(1);
  r.GetGauge("q.depth").Set(10, 3.5);
  r.GetHisto("lat_ns").Observe(128.0);
  const std::string j1 = r.ToJson(100);
  const std::string j2 = r.ToJson(100);
  EXPECT_EQ(j1, j2);
  EXPECT_TRUE(IsValidJson(j1)) << j1;
  // Sorted iteration: "a.count" must precede "b.count".
  EXPECT_LT(j1.find("a.count"), j1.find("b.count"));
  EXPECT_NE(r.ToTable(100).ToString().find("lat_ns"), std::string::npos);
}

// --- tracer ---------------------------------------------------------------

TEST(TracerTest, DisabledTracerRecordsNothing) {
  sim::Tick now = 0;
  Tracer t(&now);
  const int track = t.RegisterTrack("test");
  t.Begin(track, "a");
  t.End(track);
  t.Instant(track, "marker");
  t.AsyncBegin(track, "x", 1);
  t.AsyncEnd(track, "x", 1);
  { auto span = t.Scope(track, "scoped"); }
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(TracerTest, RegisterTrackIsIdempotent) {
  sim::Tick now = 0;
  Tracer t(&now);
  EXPECT_EQ(t.RegisterTrack("a"), t.RegisterTrack("a"));
  EXPECT_NE(t.RegisterTrack("a"), t.RegisterTrack("b"));
}

TEST(TracerTest, SpanNestsAcrossCoAwait) {
  sim::Simulator sim;
  sim.tracer().Enable();
  const int track = sim.tracer().RegisterTrack("node0.lcp");
  auto work = [&]() -> sim::Process {
    auto outer = sim.tracer().Scope(track, "outer");
    co_await sim.Delay(100);
    {
      auto inner = sim.tracer().Scope(track, "inner");
      co_await sim.Delay(50);
    }
    co_await sim.Delay(25);
  };
  sim.Spawn(work());
  sim.Run();
  // B(outer) B(inner) E(inner) E(outer): 4 events, properly nested, with
  // the end timestamps reflecting the sim time of the closing resume.
  EXPECT_EQ(sim.tracer().event_count(), 4u);
  const std::string json = sim.tracer().ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  const std::size_t b_outer = json.find("\"outer\"");
  const std::size_t b_inner = json.find("\"inner\"");
  ASSERT_NE(b_outer, std::string::npos);
  ASSERT_NE(b_inner, std::string::npos);
  EXPECT_LT(b_outer, b_inner);
  // Chrome-format required fields are present.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(TracerTest, AsyncSpansMayInterleave) {
  sim::Tick now = 0;
  Tracer t(&now);
  t.Enable();
  const int track = t.RegisterTrack("vrpc.client");
  t.AsyncBegin(track, "call", 1);
  now = 10;
  t.AsyncBegin(track, "call", 2);
  now = 20;
  t.AsyncEnd(track, "call", 1);
  now = 30;
  t.AsyncEnd(track, "call", 2);
  EXPECT_EQ(t.event_count(), 4u);
  const std::string json = t.ToChromeJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\""), std::string::npos);
}

TEST(TracerTest, ClearDropsEventsButKeepsTracks) {
  sim::Tick now = 0;
  Tracer t(&now);
  t.Enable();
  const int track = t.RegisterTrack("x");
  t.Instant(track, "m");
  EXPECT_EQ(t.event_count(), 1u);
  t.Clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_EQ(t.RegisterTrack("x"), track);
}

// --- end-to-end: a traced cluster run -------------------------------------

// Boots a 2-node cluster, pushes one notified message through VMMC, and
// returns (trace json, metrics json).
std::pair<std::string, std::string> TracedClusterRun() {
  sim::Simulator sim;
  sim.tracer().Enable();
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  EXPECT_TRUE(cluster.Boot().ok());

  auto receiver = cluster.OpenEndpoint(1, "receiver");
  auto sender = cluster.OpenEndpoint(0, "sender");
  EXPECT_TRUE(receiver.ok() && sender.ok());

  bool delivered = false;
  auto recv = [&]() -> sim::Process {
    auto& ep = *receiver.value();
    auto buffer = ep.AllocBuffer(64 * 1024);
    vmmc_core::ExportOptions eo;
    eo.name = "inbox";
    eo.notify = true;
    auto id = co_await ep.ExportBuffer(buffer.value(), 64 * 1024, std::move(eo));
    ep.SetNotificationHandler(
        id.value(),
        [&delivered](const vmmc_core::UserNotification&) -> sim::Process {
          delivered = true;
          co_return;
        });
  };
  auto send = [&]() -> sim::Process {
    auto& ep = *sender.value();
    vmmc_core::ImportOptions wait;
    wait.wait = true;
    auto imported = co_await ep.ImportBuffer(1, "inbox", wait);
    auto src = ep.AllocBuffer(64 * 1024);
    std::vector<std::uint8_t> payload(20000, 0xAB);
    (void)ep.WriteBuffer(src.value(), payload);
    vmmc_core::SendOptions so;
    so.notify = true;
    (void)co_await ep.SendMsg(src.value(), imported.value().proxy_base,
                              20000, so);
  };
  sim.Spawn(recv());
  sim.Spawn(send());
  sim.Run();
  EXPECT_TRUE(delivered);
  return {sim.tracer().ToChromeJson(), sim.metrics().ToJson(sim.now())};
}

TEST(TraceDeterminismTest, IdenticalRunsProduceByteIdenticalOutput) {
  const auto [trace1, metrics1] = TracedClusterRun();
  const auto [trace2, metrics2] = TracedClusterRun();
  EXPECT_EQ(trace1, trace2);
  EXPECT_EQ(metrics1, metrics2);
  EXPECT_TRUE(IsValidJson(trace1));
  EXPECT_TRUE(IsValidJson(metrics1));
  // The run crossed the whole stack: LCP spans, DMA spans, and a complete
  // B/E pair must be present, and the hot-path counters moved.
  EXPECT_NE(trace1.find("node0.lcp"), std::string::npos);
  EXPECT_NE(trace1.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(trace1.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(metrics1.find("node0.lcp.sends"), std::string::npos);
  EXPECT_NE(metrics1.find("fabric.link"), std::string::npos);
}

TEST(TraceEnvGuardTest, WritesTraceFileAtDestruction) {
  const char* path = "obs_test_trace.json";
  std::remove(path);
  ASSERT_EQ(setenv("VMMC_TRACE", path, 1), 0);
  {
    sim::Simulator sim;
    TraceEnvGuard guard(sim.tracer());
    EXPECT_TRUE(guard.active());
    EXPECT_TRUE(sim.tracer().enabled());
    const int track = sim.tracer().RegisterTrack("t");
    sim.At(10, [&] { sim.tracer().Instant(track, "tick"); });
    sim.Run();
  }
  unsetenv("VMMC_TRACE");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buf.str())) << buf.str();
  EXPECT_NE(buf.str().find("\"tick\""), std::string::npos);
  std::remove(path);
}

TEST(TraceEnvGuardTest, InactiveWithoutEnvVar) {
  unsetenv("VMMC_TRACE");
  sim::Simulator sim;
  TraceEnvGuard guard(sim.tracer());
  EXPECT_FALSE(guard.active());
  EXPECT_FALSE(sim.tracer().enabled());
}

}  // namespace
}  // namespace vmmc::obs
