#include <gtest/gtest.h>

#include "vmmc/util/log.h"
#include "vmmc/util/stats.h"
#include "vmmc/util/status.h"

namespace vmmc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = PermissionDenied("import not allowed");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(s.ToString(), "PERMISSION_DENIED: import not allowed");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFound("no such export"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(OnlineStatsTest, MomentsCorrect) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(HistogramTest, BucketsAndQuantiles) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.Add(5.0);
  for (int i = 0; i < 10; ++i) h.Add(15.0);
  for (int i = 0; i < 10; ++i) h.Add(25.0);
  h.Add(100.0);  // overflow bucket
  EXPECT_EQ(h.total(), 31u);
  EXPECT_EQ(h.bucket_count(0), 10u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_GT(h.Quantile(0.5), 10.0);
  EXPECT_LT(h.Quantile(0.5), 20.0);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(1.0));
}

TEST(TableTest, RendersAlignedColumns) {
  Table t({"size", "lat(us)"});
  t.AddRow({"4", "9.80"});
  t.AddRow({"1024", "21.50"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("size"), std::string::npos);
  EXPECT_NE(out.find("9.80"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header line and each row end without trailing spaces.
  for (size_t pos = out.find('\n'); pos != std::string::npos;
       pos = out.find('\n', pos + 1)) {
    if (pos > 0) EXPECT_NE(out[pos - 1], ' ');
  }
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(9.8, 2), "9.80");
  EXPECT_EQ(FormatDouble(108.42, 1), "108.4");
}

TEST(FormatTest, Sizes) {
  EXPECT_EQ(FormatSize(4), "4");
  EXPECT_EQ(FormatSize(128), "128");
  EXPECT_EQ(FormatSize(4096), "4K");
  EXPECT_EQ(FormatSize(1 << 20), "1M");
  EXPECT_EQ(FormatSize(65536), "64K");
  EXPECT_EQ(FormatSize(1000), "1000");
}

TEST(LogTest, LevelParsingAndThreshold) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("garbage"), LogLevel::kWarn);
  LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  VMMC_LOG(kError, "test") << "suppressed";  // must not crash
  SetLogLevel(old);
}

}  // namespace
}  // namespace vmmc
