// Conservative-sync parallel engine (sim/parallel.h): the execution is a
// pure function of the partition, never of the worker count. Verified two
// ways:
//  - synthetic randomized cascades over a handful of shards, fingerprinted
//    with per-shard order-sensitive hashes: 1, 2 and 4 workers must match
//    bit for bit, across seeds;
//  - the same cascades replayed on one monolithic Simulator must agree on
//    every order-independent accumulator (the partitioned schedule may
//    break same-time ties differently, so order hashes are out of scope);
//  - a 16-node fat-tree cluster running a ring allreduce: 1-, 2- and
//    4-worker runs of the partitioned cluster must produce identical end
//    times, event counts, fabric counters and results, and the values must
//    equal the serial (single-simulator) cluster's.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "co_test_util.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/sim/parallel.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/vmmc/runtime.h"

namespace vmmc::sim {
namespace {

constexpr Tick kLookahead = 50;

// splitmix64: all workload randomness is derived statelessly from ids, so
// the event population is independent of execution order.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct ShardState {
  std::uint64_t order_hash = 0;  // order-sensitive (per-shard execution)
  std::uint64_t sum = 0;         // commutative
  std::uint64_t count = 0;
  Tick last = 0;  // time of the shard's last executed workload event
};

struct Fingerprint {
  std::vector<std::uint64_t> order;
  std::vector<Tick> shard_now;
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  Tick end = 0;

  bool operator==(const Fingerprint&) const = default;
};

// Random event cascades hopping between shards. `zero_la` additionally
// posts zero-lookahead side events (delivered clamped to the destination's
// local clock), which is deterministic per partition but not comparable to
// the monolithic schedule.
class Workload {
 public:
  Workload(std::uint64_t seed, int shards, bool zero_la)
      : seed_(seed), shards_(shards), zero_la_(zero_la), states_(shards) {}
  virtual ~Workload() = default;

  void Step(int s, std::uint64_t id, int hops) {
    Simulator& sim = SimOf(s);
    ShardState& st = states_[static_cast<std::size_t>(s)];
    st.order_hash = st.order_hash * 1099511628211ull ^
                    Mix(id + static_cast<std::uint64_t>(sim.now()));
    st.sum += Mix(id);
    ++st.count;
    st.last = std::max(st.last, sim.now());
    if (hops == 0) return;
    const std::uint64_t r = Mix(seed_ ^ id);
    const int target = static_cast<int>(r % static_cast<std::uint64_t>(shards_));
    const Tick delay =
        kLookahead + static_cast<Tick>((r >> 8) % (3 * kLookahead));
    const std::uint64_t nid = Mix(id) + static_cast<std::uint64_t>(hops);
    if (target == s) {
      sim.In(delay, [this, s, nid, hops] { Step(s, nid, hops - 1); });
    } else {
      Post(s, target, sim.now() + delay,
           [this, target, nid, hops] { Step(target, nid, hops - 1); });
    }
    if (zero_la_ && r % 5 == 0) {
      const int side = (s + 1) % shards_;
      if (side != s) {
        Post(s, side, sim.now(), [this, side, nid] { SideEvent(side, nid); });
      }
    }
  }

  Fingerprint Collect() {
    Fingerprint fp;
    for (int s = 0; s < shards_; ++s) {
      const ShardState& st = states_[static_cast<std::size_t>(s)];
      fp.order.push_back(st.order_hash);
      fp.shard_now.push_back(SimOf(s).now());
      fp.sum += st.sum;
      fp.count += st.count;
      // Last *event* time, not now(): the partitioned engine parks every
      // shard clock on the final window boundary (a lookahead multiple),
      // which the monolithic schedule has no notion of.
      fp.end = std::max(fp.end, st.last);
    }
    return fp;
  }

 protected:
  virtual Simulator& SimOf(int s) = 0;
  virtual void Post(int from, int to, Tick t, std::function<void()> fn) = 0;

  std::uint64_t seed_;
  int shards_;
  bool zero_la_;
  std::vector<ShardState> states_;

 private:
  void SideEvent(int s, std::uint64_t id) {
    ShardState& st = states_[static_cast<std::size_t>(s)];
    st.order_hash = st.order_hash * 1099511628211ull ^ Mix(id ^ 0x5eedull);
    st.sum += Mix(id ^ 0x5eedull);
    ++st.count;
    st.last = std::max(st.last, SimOf(s).now());
  }
};

class PartitionedWorkload : public Workload {
 public:
  PartitionedWorkload(std::uint64_t seed, int shards, int workers, bool zero_la)
      : Workload(seed, shards, zero_la) {
    ParallelEngine::Options opts;
    opts.workers = workers;
    engine_ = std::make_unique<ParallelEngine>(kLookahead, opts);
    for (int s = 0; s < shards; ++s) engine_->AddShard();
  }

  Fingerprint Run(int hops) {
    for (int s = 0; s < shards_; ++s) {
      SimOf(s).At(static_cast<Tick>(s + 1),
                  [this, s, hops] { Step(s, Mix(seed_) + s, hops); });
    }
    engine_->RunUntilQuiescent();
    Fingerprint fp = Collect();
    // Shard clocks park on the boundary of the window holding the last
    // event: at most one lookahead past it, never behind it.
    EXPECT_GE(engine_->now(), fp.end);
    EXPECT_LE(engine_->now(), (fp.end / kLookahead + 1) * kLookahead);
    return fp;
  }

 protected:
  Simulator& SimOf(int s) override { return engine_->shard(s); }
  void Post(int from, int to, Tick t, std::function<void()> fn) override {
    engine_->PostRemote(from, to, t, std::move(fn));
  }

 private:
  std::unique_ptr<ParallelEngine> engine_;
};

class MonolithicWorkload : public Workload {
 public:
  MonolithicWorkload(std::uint64_t seed, int shards, bool zero_la)
      : Workload(seed, shards, zero_la) {}

  Fingerprint Run(int hops) {
    for (int s = 0; s < shards_; ++s) {
      sim_.At(static_cast<Tick>(s + 1),
              [this, s, hops] { Step(s, Mix(seed_) + s, hops); });
    }
    sim_.Run();
    return Collect();
  }

 protected:
  Simulator& SimOf(int) override { return sim_; }
  void Post(int, int, Tick t, std::function<void()> fn) override {
    sim_.At(t, std::move(fn));
  }

 private:
  Simulator sim_;
};

TEST(ParallelEngine, WorkerCountInvariance) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Fingerprint ref =
        PartitionedWorkload(seed, 5, /*workers=*/1, /*zero_la=*/true).Run(200);
    EXPECT_GT(ref.count, 200u);
    for (int workers : {2, 4}) {
      Fingerprint fp =
          PartitionedWorkload(seed, 5, workers, /*zero_la=*/true).Run(200);
      EXPECT_EQ(fp, ref) << "seed " << seed << " workers " << workers;
    }
  }
}

TEST(ParallelEngine, MatchesMonolithicAccumulators) {
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    Fingerprint mono = MonolithicWorkload(seed, 5, /*zero_la=*/false).Run(200);
    Fingerprint part =
        PartitionedWorkload(seed, 5, /*workers=*/4, /*zero_la=*/false).Run(200);
    EXPECT_EQ(part.sum, mono.sum) << "seed " << seed;
    EXPECT_EQ(part.count, mono.count) << "seed " << seed;
    EXPECT_EQ(part.end, mono.end) << "seed " << seed;
  }
}

// --- whole-stack determinism: partitioned 16-node fat-tree allreduce ----

struct ClusterRun {
  Tick end = 0;
  std::uint64_t link_packets = 0;
  std::vector<std::int64_t> values;  // rank 0's allreduce result

  bool operator==(const ClusterRun&) const = default;
};

// threads == -1: partitioned cluster driven by a single worker (the
// reference schedule; the runtime front-end maps anything < 2 to the
// serial substrate, so this case is built directly).
ClusterRun RunAllReduce(int threads, std::uint64_t seed, std::size_t n) {
  using coll::CommOptions;
  using coll::Communicator;
  using vmmc_core::ClusterOptions;
  using vmmc_core::ClusterRuntime;
  using vmmc_core::RuntimeOptions;

  constexpr int kNodes = 16;
  Params params;
  auto options = ClusterOptions::FromSpec("fattree:16@8");
  EXPECT_TRUE(options.ok());
  std::unique_ptr<ParallelEngine> engine;
  std::unique_ptr<vmmc_core::Cluster> owned;
  std::unique_ptr<ClusterRuntime> runtime;
  if (threads == -1) {
    ParallelEngine::Options eopts;
    eopts.workers = 1;
    engine = std::make_unique<ParallelEngine>(params.net.link_latency, eopts);
    owned = std::make_unique<vmmc_core::Cluster>(*engine, params,
                                                 options.value());
  } else {
    RuntimeOptions rt;
    rt.threads = threads;
    runtime = std::make_unique<ClusterRuntime>(params, options.value(), rt);
  }
  vmmc_core::Cluster& cluster = owned != nullptr ? *owned : runtime->cluster();
  EXPECT_TRUE(cluster.Boot().ok());

  std::vector<std::unique_ptr<Communicator>> comms(kNodes);
  std::atomic<int> created{0};
  auto create = [&cluster, &comms, &created](int r) -> Process {
    CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await Communicator::Create(cluster, r, kNodes, "world", copts);
    CO_ASSERT_TRUE(c.ok());
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    created.fetch_add(1, std::memory_order_relaxed);
  };
  for (int r = 0; r < kNodes; ++r) cluster.node_sim(r).Spawn(create(r));
  EXPECT_TRUE(cluster.DriveUntil(
      [&] { return created.load(std::memory_order_relaxed) == kNodes; }));

  std::atomic<int> finished{0};
  std::vector<std::int64_t> rank0;
  auto run = [&comms, &finished, &rank0, seed, n](int r) -> Process {
    std::vector<std::int64_t> values(n);
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<std::int64_t>(Mix(seed + i) % 1000) + r;
    }
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    CO_ASSERT_TRUE(s.ok());
    if (r == 0) rank0 = std::move(values);
    finished.fetch_add(1, std::memory_order_relaxed);
  };
  for (int r = 0; r < kNodes; ++r) cluster.node_sim(r).Spawn(run(r));
  EXPECT_TRUE(cluster.DriveUntil(
      [&] { return finished.load(std::memory_order_relaxed) == kNodes; }));

  ClusterRun out;
  out.end = cluster.time_now();
  out.link_packets = cluster.fabric().total_link_packets();
  out.values = std::move(rank0);
  return out;
}

TEST(ParallelCluster, AllreduceWorkerCountInvariance) {
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    // The single-thread reference for the partitioned cluster is the
    // engine run by one worker (the caller thread); additional workers
    // must replay it bit for bit. 64 int64 = 512 bytes: ring algorithm.
    ClusterRun ref = RunAllReduce(/*threads=*/-1, seed, /*n=*/64);
    ClusterRun two = RunAllReduce(/*threads=*/2, seed, /*n=*/64);
    EXPECT_EQ(two, ref) << "seed " << seed;
    ASSERT_EQ(ref.values.size(), 64u);
  }
  // 4 workers and the serial cluster's arithmetic, spot-checked on one
  // seed (each whole-stack run is expensive under ctest).
  ClusterRun ref = RunAllReduce(/*threads=*/-1, 11ull, /*n=*/64);
  ClusterRun four = RunAllReduce(/*threads=*/4, 11ull, /*n=*/64);
  EXPECT_EQ(four, ref);
  ClusterRun serial = RunAllReduce(/*threads=*/1, 11ull, /*n=*/64);
  // The partitioned schedule is not the serial schedule (cross-shard
  // same-time ties break differently), but the arithmetic must agree.
  EXPECT_EQ(serial.values, ref.values);
}

TEST(ParallelCluster, FallbackAllreduceWorkerCountInvariance) {
  // The non-ring code paths must be just as schedule-independent as the
  // ring: 67 int64 is indivisible by 16 (gather+broadcast fallback), and
  // 16 int64 is one eager message (recursive doubling). Both compare the
  // 2-worker replay bit for bit against the 1-worker reference schedule.
  ClusterRun gb_ref = RunAllReduce(/*threads=*/-1, 21ull, /*n=*/67);
  ClusterRun gb_two = RunAllReduce(/*threads=*/2, 21ull, /*n=*/67);
  EXPECT_EQ(gb_two, gb_ref) << "gather+broadcast fallback";
  ASSERT_EQ(gb_ref.values.size(), 67u);

  ClusterRun rd_ref = RunAllReduce(/*threads=*/-1, 22ull, /*n=*/16);
  ClusterRun rd_two = RunAllReduce(/*threads=*/2, 22ull, /*n=*/16);
  EXPECT_EQ(rd_two, rd_ref) << "recursive doubling";
}

}  // namespace
}  // namespace vmmc::sim
