// Tests for vRPC: XDR codec, SunRPC framing, and end-to-end RPC over the
// VMMC and UDP transports (§5.4).
#include <gtest/gtest.h>

#include <numeric>

#include "co_test_util.h"
#include "vmmc/vrpc/udp_transport.h"
#include "vmmc/vrpc/vmmc_transport.h"
#include "vmmc/vrpc/vrpc.h"
#include "vmmc/vrpc/xdr.h"

namespace vmmc::vrpc {
namespace {

TEST(XdrTest, ScalarRoundTrip) {
  XdrWriter w;
  w.PutU32(0xDEADBEEF);
  w.PutI32(-42);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutBool(true);
  w.PutBool(false);
  EXPECT_EQ(w.size() % 4, 0u);

  XdrReader r(w.bytes());
  EXPECT_EQ(r.GetU32(), 0xDEADBEEF);
  EXPECT_EQ(r.GetI32(), -42);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.GetBool());
  EXPECT_FALSE(r.GetBool());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(XdrTest, BigEndianOnTheWire) {
  XdrWriter w;
  w.PutU32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(XdrTest, OpaquePaddingTo4Bytes) {
  for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) {
    XdrWriter w;
    std::vector<std::uint8_t> data(len, 0x7F);
    w.PutOpaque(data);
    EXPECT_EQ(w.size() % 4, 0u) << len;
    XdrReader r(w.bytes());
    EXPECT_EQ(r.GetOpaque(), data) << len;
    EXPECT_TRUE(r.ok());
  }
}

TEST(XdrTest, StringsAndTruncationDetected) {
  XdrWriter w;
  w.PutString("hello vmmc");
  XdrReader good(w.bytes());
  EXPECT_EQ(good.GetString(), "hello vmmc");

  auto bytes = w.bytes();
  XdrReader bad(bytes.first(bytes.size() - 1));
  (void)bad.GetString();
  EXPECT_FALSE(bad.ok());
}

TEST(XdrTest, ReadPastEndFlagsError) {
  XdrReader r({});
  EXPECT_EQ(r.GetU32(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(RpcMessageTest, CallRoundTrip) {
  CallMessage call;
  call.xid = 777;
  call.prog = 100003;
  call.vers = 2;
  call.proc = 6;
  call.args = {1, 2, 3, 4, 5, 6, 7, 8};
  auto wire = EncodeCall(call);
  auto decoded = DecodeCall(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->xid, 777u);
  EXPECT_EQ(decoded->prog, 100003u);
  EXPECT_EQ(decoded->vers, 2u);
  EXPECT_EQ(decoded->proc, 6u);
  EXPECT_EQ(decoded->args, call.args);
}

TEST(RpcMessageTest, ReplyRoundTripAndErrors) {
  ReplyMessage reply;
  reply.xid = 9;
  reply.results = {9, 9, 9, 9};
  auto wire = EncodeReply(reply);
  auto decoded = DecodeReply(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->xid, 9u);
  EXPECT_EQ(decoded->stat, AcceptStat::kSuccess);
  EXPECT_EQ(decoded->results, reply.results);

  ReplyMessage err;
  err.xid = 10;
  err.stat = AcceptStat::kProcUnavail;
  auto err_decoded = DecodeReply(EncodeReply(err));
  ASSERT_TRUE(err_decoded.has_value());
  EXPECT_EQ(err_decoded->stat, AcceptStat::kProcUnavail);

  EXPECT_FALSE(DecodeCall(EncodeReply(reply)).has_value());
  EXPECT_FALSE(DecodeReply(EncodeCall(CallMessage{})).has_value());
  EXPECT_FALSE(DecodeCall({}).has_value());
}

// ---- end-to-end fixtures ----

constexpr std::uint32_t kProg = 0x20000001;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcEcho = 1;
constexpr std::uint32_t kProcSum = 2;

void RegisterTestProcs(RpcServer& server, sim::Simulator& sim) {
  server.Register(kProg, kVers, kProcEcho,
                  [&sim](std::span<const std::uint8_t> args)
                      -> sim::Task<Result<std::vector<std::uint8_t>>> {
                    co_await sim.Delay(0);
                    co_return std::vector<std::uint8_t>(args.begin(), args.end());
                  });
  server.Register(kProg, kVers, kProcSum,
                  [&sim](std::span<const std::uint8_t> args)
                      -> sim::Task<Result<std::vector<std::uint8_t>>> {
                    XdrReader r(args);
                    const std::uint32_t a = r.GetU32();
                    const std::uint32_t b = r.GetU32();
                    if (!r.ok()) {
                      co_return Result<std::vector<std::uint8_t>>(
                          InvalidArgument("bad args"));
                    }
                    co_await sim.Delay(500);
                    XdrWriter w;
                    w.PutU32(a + b);
                    co_return w.Take();
                  });
}

class VrpcVmmcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vmmc_core::ClusterOptions options;
    options.num_nodes = 2;
    cluster_ = std::make_unique<vmmc_core::Cluster>(sim_, params_, options);
    ASSERT_TRUE(cluster_->Boot().ok());
    server_ = std::make_unique<RpcServer>(params_);
    RegisterTestProcs(*server_, sim_);
  }

  sim::Simulator sim_;
  Params params_;
  std::unique_ptr<vmmc_core::Cluster> cluster_;
  std::unique_ptr<RpcServer> server_;
};

TEST_F(VrpcVmmcTest, SumAndEchoOverVmmcTransport) {
  bool done = false;
  std::uint32_t sum = 0;
  std::vector<std::uint8_t> echoed;
  std::uint64_t copies = 0;

  auto prog = [&]() -> sim::Process {
    auto st = co_await VmmcServerTransport::Create(*cluster_, 1, "svc", 2);
    CO_ASSERT_TRUE(st.ok());
    server_->Attach(sim_, st.value().get());

    auto ct = co_await VmmcClientTransport::Connect(*cluster_, 0, 1, "svc", 0);
    CO_ASSERT_TRUE(ct.ok());
    RpcClient client(params_, sim_, std::move(ct).value());

    XdrWriter w;
    w.PutU32(40);
    w.PutU32(2);
    auto r1 = co_await client.Call(kProg, kVers, kProcSum, w.Take());
    CO_ASSERT_TRUE(r1.ok());
    XdrReader rr(r1.value());
    sum = rr.GetU32();

    std::vector<std::uint8_t> blob(1000);
    std::iota(blob.begin(), blob.end(), 0);
    auto r2 = co_await client.Call(kProg, kVers, kProcEcho, blob);
    CO_ASSERT_TRUE(r2.ok());
    echoed = r2.value();
    copies = st.value()->copies_performed();

    // Keep the transport objects alive until the loop below exits.
    done = true;
    for (;;) co_await sim_.Delay(sim::Seconds(1));
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
  EXPECT_EQ(sum, 42u);
  std::vector<std::uint8_t> expect(1000);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(echoed, expect);
  EXPECT_EQ(server_->calls_served(), 2u);
  EXPECT_EQ(copies, 2u) << "compat mode copies once per receive (§5.4)";
}

TEST_F(VrpcVmmcTest, UnknownProcedureRejected) {
  bool done = false;
  Status status = OkStatus();
  auto prog = [&]() -> sim::Process {
    auto st = co_await VmmcServerTransport::Create(*cluster_, 1, "svc2", 1);
    CO_ASSERT_TRUE(st.ok());
    server_->Attach(sim_, st.value().get());
    auto ct = co_await VmmcClientTransport::Connect(*cluster_, 0, 1, "svc2", 0);
    CO_ASSERT_TRUE(ct.ok());
    RpcClient client(params_, sim_, std::move(ct).value());
    auto r = co_await client.Call(kProg, kVers, 999, {});
    status = r.status();
    done = true;
    for (;;) co_await sim_.Delay(sim::Seconds(1));
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
  EXPECT_FALSE(status.ok());
}

TEST_F(VrpcVmmcTest, FastPathSkipsTheReceiveCopy) {
  bool done = false;
  std::uint64_t copies = 99;
  auto prog = [&]() -> sim::Process {
    auto st = co_await VmmcServerTransport::Create(*cluster_, 1, "fast", 1,
                                                   /*compat=*/false);
    CO_ASSERT_TRUE(st.ok());
    server_->Attach(sim_, st.value().get());
    auto ct = co_await VmmcClientTransport::Connect(*cluster_, 0, 1, "fast", 0);
    CO_ASSERT_TRUE(ct.ok());
    RpcClient client(params_, sim_, std::move(ct).value(), /*fast_path=*/true);
    std::vector<std::uint8_t> blob = {1, 2, 3, 4};
    auto r = co_await client.Call(kProg, kVers, kProcEcho, blob);
    CO_ASSERT_TRUE(r.ok());
    copies = st.value()->copies_performed();
    done = true;
    for (;;) co_await sim_.Delay(sim::Seconds(1));
  };
  sim_.Spawn(prog());
  ASSERT_TRUE(sim_.RunUntil([&] { return done; }, 100'000'000));
  EXPECT_EQ(copies, 0u);
}

TEST(VrpcUdpTest, SameServerCodeOverUdp) {
  sim::Simulator sim;
  Params params;
  ethernet::Segment segment(sim, params.ethernet);
  ethernet::Interface& server_if = segment.AddInterface(1);
  ethernet::Interface& client_if = segment.AddInterface(0);

  RpcServer server(params);
  RegisterTestProcs(server, sim);
  UdpServerTransport st(params, sim, server_if);
  server.Attach(sim, &st);

  bool done = false;
  std::uint32_t sum = 0;
  sim::Tick elapsed = 0;
  auto prog = [&]() -> sim::Process {
    RpcClient client(params, sim,
                     std::make_unique<UdpClientTransport>(params, sim, client_if, 1));
    XdrWriter w;
    w.PutU32(20);
    w.PutU32(22);
    const sim::Tick t0 = sim.now();
    auto r = co_await client.Call(kProg, kVers, kProcSum, w.Take());
    elapsed = sim.now() - t0;
    CO_ASSERT_TRUE(r.ok());
    XdrReader rr(r.value());
    sum = rr.GetU32();
    done = true;
  };
  sim.Spawn(prog());
  ASSERT_TRUE(sim.RunUntil([&] { return done; }, 10'000'000));
  EXPECT_EQ(sum, 42u);
  // The UDP path is orders of magnitude slower than vRPC's 66 us.
  EXPECT_GT(elapsed, 500 * sim::kMicrosecond);
}

}  // namespace
}  // namespace vmmc::vrpc
