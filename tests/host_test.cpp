// Tests for the host machine model: CPU cost accounting, PCI timing and
// contention, kernel interrupts / signals / pinning services.
#include <gtest/gtest.h>

#include "vmmc/host/machine.h"
#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::host {
namespace {

using sim::Tick;

class HostTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Params params_;
  Machine machine_{sim_, params_, /*node_id=*/0};
};

sim::Process RunAndStamp(sim::Simulator& sim, sim::Process inner, Tick& done) {
  co_await inner;
  done = sim.now();
}

TEST_F(HostTest, CpuChargeAdvancesTime) {
  Tick done = -1;
  sim_.Spawn(RunAndStamp(sim_, machine_.cpu().Charge(1234), done));
  sim_.Run();
  EXPECT_EQ(done, 1234);
}

TEST_F(HostTest, BcopyCostMatches50MBs) {
  // 1 MB at 50 MB/s = 20 ms (plus the small per-call cost).
  const Tick cost = machine_.cpu().BcopyCost(1 << 20);
  EXPECT_NEAR(static_cast<double>(cost), 20.97e6,
              0.03e6 + params_.host.bcopy_call);
  Tick done = -1;
  sim_.Spawn(RunAndStamp(sim_, machine_.cpu().Bcopy(4096), done));
  sim_.Run();
  EXPECT_EQ(done, machine_.cpu().BcopyCost(4096));
  EXPECT_EQ(machine_.cpu().bcopy_bytes(), 4096u);
  EXPECT_EQ(machine_.cpu().bcopy_calls(), 1u);
}

TEST_F(HostTest, PioCostsMatchPaperMeasurements) {
  // §5.2: PIO read 0.422 us, write 0.121 us.
  EXPECT_EQ(machine_.pci().PioReadCost(1), 422);
  EXPECT_EQ(machine_.pci().PioWriteCost(1), 121);
  EXPECT_EQ(machine_.pci().PioWriteCost(4), 484);
}

TEST_F(HostTest, DmaCostModelReproducesFigure1Anchors) {
  // With the fitted constants, streaming blocks (init + loop software +
  // serialization) must give ~110 MB/s at 4 KB and ~128 MB/s at 64 KB.
  const auto& p = params_.pci;
  auto block_bw = [&](std::uint64_t n) {
    const Tick t = p.dma_init + p.dma_loop_sw + sim::NsForBytes(n, p.dma_peak_mb_s);
    return sim::MBPerSec(n, t);
  };
  EXPECT_NEAR(block_bw(4096), 110.0, 2.0);
  EXPECT_NEAR(block_bw(65536), 128.0, 2.0);
  EXPECT_LT(block_bw(1024), 80.0);
}

TEST_F(HostTest, DmaSerializesOnTheBus) {
  // Two DMA bursts issued together must not overlap.
  Tick d1 = -1, d2 = -1;
  sim_.Spawn(RunAndStamp(sim_, machine_.pci().Dma(4096), d1));
  sim_.Spawn(RunAndStamp(sim_, machine_.pci().Dma(4096), d2));
  sim_.Run();
  const Tick one = machine_.pci().DmaCost(4096);
  EXPECT_EQ(d1, one);
  EXPECT_EQ(d2, 2 * one);
  EXPECT_EQ(machine_.pci().dma_count(), 2u);
  EXPECT_EQ(machine_.pci().dma_bytes(), 8192u);
}

TEST_F(HostTest, ProcessesGetDistinctPidsAndSpaces) {
  Kernel& k = machine_.kernel();
  UserProcess& a = k.CreateProcess("a");
  UserProcess& b = k.CreateProcess("b");
  EXPECT_NE(a.pid(), b.pid());
  EXPECT_EQ(k.FindProcess(a.pid()), &a);
  EXPECT_EQ(k.FindProcess(99999), nullptr);
  EXPECT_EQ(k.process_count(), 2u);

  auto va = a.address_space().MapAnonymous(mem::kPageSize);
  auto vb = b.address_space().MapAnonymous(mem::kPageSize);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  // Same virtual address in two processes maps to different frames.
  EXPECT_EQ(va.value(), vb.value());
  EXPECT_NE(a.address_space().Translate(va.value()).value(),
            b.address_space().Translate(vb.value()).value());
}

TEST_F(HostTest, InterruptRunsHandlerAfterEntryCost) {
  Tick handler_time = -1;
  int runs = 0;
  machine_.kernel().RegisterIrqHandler(
      5, [&]() -> sim::Process {
        handler_time = sim_.now();
        ++runs;
        co_return;
      });
  sim_.At(1000, [&] { machine_.kernel().RaiseIrq(5); });
  sim_.Run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(handler_time, 1000 + params_.host.interrupt_entry);
  EXPECT_EQ(machine_.kernel().interrupts_taken(), 1u);
}

TEST_F(HostTest, UnhandledIrqIsCountedButHarmless) {
  machine_.kernel().RaiseIrq(9);
  sim_.Run();
  EXPECT_EQ(machine_.kernel().interrupts_taken(), 1u);
}

TEST_F(HostTest, SignalDeliveryInvokesUserHandler) {
  UserProcess& p = machine_.kernel().CreateProcess("sigtest");
  Tick when = -1;
  int got_sig = 0;
  p.SetSignalHandler(kSigVmmcNotify, [&](int sig) -> sim::Process {
    when = sim_.now();
    got_sig = sig;
    co_return;
  });
  EXPECT_TRUE(machine_.kernel().PostSignal(p.pid(), kSigVmmcNotify).ok());
  EXPECT_FALSE(machine_.kernel().PostSignal(31337, kSigVmmcNotify).ok());
  sim_.Run();
  EXPECT_EQ(got_sig, kSigVmmcNotify);
  EXPECT_EQ(when, params_.host.signal_delivery);
  EXPECT_EQ(machine_.kernel().signals_posted(), 1u);
}

TEST_F(HostTest, SignalWithoutHandlerIsIgnored) {
  UserProcess& p = machine_.kernel().CreateProcess("nohandler");
  EXPECT_TRUE(machine_.kernel().PostSignal(p.pid(), 7).ok());
  sim_.Run();  // must not crash
}

TEST_F(HostTest, KernelPinServicesEnforcePageTableState) {
  UserProcess& p = machine_.kernel().CreateProcess("pin");
  auto va = p.address_space().MapAnonymous(2 * mem::kPageSize);
  ASSERT_TRUE(va.ok());
  Kernel& k = machine_.kernel();
  EXPECT_FALSE(k.TranslatePinned(p, va.value()).ok());
  ASSERT_TRUE(k.PinUserPages(p, va.value(), 2 * mem::kPageSize).ok());
  EXPECT_TRUE(k.TranslatePinned(p, va.value()).ok());
  EXPECT_TRUE(k.TranslatePinned(p, va.value() + mem::kPageSize + 17).ok());
  ASSERT_TRUE(k.UnpinUserPages(p, va.value(), 2 * mem::kPageSize).ok());
  EXPECT_FALSE(k.TranslatePinned(p, va.value()).ok());
  EXPECT_FALSE(k.PinUserPages(p, 0xBAD000, 8).ok());
}

}  // namespace
}  // namespace vmmc::host
