// Fault-injection demo: the quickstart exchange on a hostile network.
//
// A two-node cluster streams messages while the fault injector drops,
// corrupts and delays packets on every link. The go-back-N layer in the
// LCP (sequence numbers, cumulative ACKs, SRAM retransmit buffer) repairs
// every loss, so the payloads land intact and in order — what the faults
// cost is time, visible in the per-run counters printed at the end.
//
// Build & run:   ./build/examples/fault_demo
//
// VMMC_FAULT_SEED=1234  picks a different (but still deterministic) fault
//                       schedule; the same seed always replays the same
//                       drops at the same points.
// VMMC_TRACE=out.json   records a Chrome/Perfetto trace of the run;
//                       retransmissions show up as repeated spans.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "vmmc/obs/trace.h"
#include "vmmc/sim/fault.h"
#include "vmmc/vmmc/cluster.h"

using namespace vmmc;
using namespace vmmc::vmmc_core;

namespace {

std::uint64_t SeedFromEnv() {
  const char* env = std::getenv("VMMC_FAULT_SEED");
  if (env == nullptr || *env == '\0') return sim::FaultPlan{}.seed;
  return std::strtoull(env, nullptr, 0);
}

sim::Process Exchange(sim::Simulator& sim, Endpoint& sender, Endpoint& receiver,
                      bool& done) {
  auto inbox = receiver.AllocBuffer(64 * 1024);
  auto src = sender.AllocBuffer(64 * 1024);
  if (!inbox.ok() || !src.ok()) co_return;

  ExportOptions ex;
  ex.name = "inbox";
  auto id = co_await receiver.ExportBuffer(inbox.value(), 64 * 1024, std::move(ex));
  if (!id.ok()) co_return;

  ImportOptions wait;
  wait.wait = true;
  auto imported = co_await sender.ImportBuffer(1, "inbox", wait);
  if (!imported.ok()) co_return;

  // Ten 16 KB messages into the same window; every byte of every message
  // has to survive the fault schedule.
  const std::uint32_t len = 16 * 1024;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> payload(len, static_cast<std::uint8_t>(0x40 + i));
    (void)sender.WriteBuffer(src.value(), payload);
    Status s = co_await sender.SendMsg(src.value(), imported.value().proxy_base, len);
    if (!s.ok()) {
      std::printf("send %d failed: %s\n", i, s.ToString().c_str());
      co_return;
    }
    // SendMsg returns when the NIC has accepted the message; under loss
    // the retransmission machinery may still be landing it. Poll remote
    // memory until the whole payload is there (bounded: a dropped chunk
    // is repaired within one RTO, well under a millisecond here).
    bool intact = false;
    std::vector<std::uint8_t> got(len);
    for (int spin = 0; spin < 10'000 && !intact; ++spin) {
      (void)receiver.ReadBuffer(inbox.value(), got);
      intact = got == payload;
      if (!intact) co_await sim.Delay(sim::Microseconds(1));
    }
    std::printf("[%9.1f us] message %2d: %s\n", sim::ToMicroseconds(sim.now()),
                i, intact ? "delivered intact" : "NOT DELIVERED");
    if (!intact) co_return;
  }
  done = true;
}

}  // namespace

int main() {
  sim::Simulator sim;
  obs::TraceEnvGuard trace(sim.tracer());  // VMMC_TRACE=file.json to record

  Params params;
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);
  Status booted = cluster.Boot();
  if (!booted.ok()) {
    std::printf("boot failed: %s\n", booted.ToString().c_str());
    return 1;
  }

  // A deliberately nasty schedule: 8% drops, 4% bit flips, 10% of packets
  // jittered by up to 4 us — on every link, in both directions.
  sim::LinkFaultRule rule;
  rule.drop_rate = 0.08;
  rule.bitflip_rate = 0.04;
  rule.delay_rate = 0.10;
  rule.max_delay = 4'000;
  sim::FaultPlan plan = sim::FaultPlan::AllLinks(rule, SeedFromEnv());
  sim.faults().Configure(plan);
  std::printf("fault plan: seed 0x%llx, drop 8%%, bitflip 4%%, jitter 10%%\n\n",
              static_cast<unsigned long long>(plan.seed));

  auto receiver = cluster.OpenEndpoint(1, "receiver");
  auto sender = cluster.OpenEndpoint(0, "sender");
  if (!receiver.ok() || !sender.ok()) return 1;

  bool done = false;
  sim.Spawn(Exchange(sim, *sender.value(), *receiver.value(), done));
  sim.Run();
  if (!done) {
    std::printf("exchange did not complete\n");
    return 1;
  }

  const obs::Registry& m = sim.metrics();
  const auto& tx = cluster.node(0).lcp->stats();
  std::printf("\ninjected: %llu drops, %llu bit flips, %llu delays\n",
              static_cast<unsigned long long>(m.CounterValue("fault.injected.drops")),
              static_cast<unsigned long long>(m.CounterValue("fault.injected.bitflips")),
              static_cast<unsigned long long>(m.CounterValue("fault.injected.delays")));
  std::printf("repaired: %llu retransmits (%llu via timeout), %llu duplicate "
              "chunks discarded\n",
              static_cast<unsigned long long>(tx.retransmits),
              static_cast<unsigned long long>(tx.retransmit_timeouts),
              static_cast<unsigned long long>(
                  cluster.node(1).lcp->stats().duplicate_chunks));
  return 0;
}
