// A three-stage processing pipeline over VMMC: producer (node 0) ->
// transform (node 1) -> consumer (node 2), using asynchronous sends and
// double-buffered exported rings — the user-level buffer management the
// paper highlights (§2: "supports user-level buffer management and
// zero-copy protocols").
//
// The producer generates blocks, the transformer uppercases them, the
// consumer checksums them. Each stage overlaps communication with work via
// SendMsgAsync/WaitSend and two receive slots per link.
//
// Build & run:   ./build/examples/stream_pipeline
#include <cstdio>
#include <vector>

#include "vmmc/vmmc/cluster.h"

using namespace vmmc;
using namespace vmmc::vmmc_core;

namespace {

constexpr std::uint32_t kBlockBytes = 32 * 1024;
constexpr int kBlocks = 24;
constexpr int kSlots = 2;  // double buffering per link

// Slot layout: payload then a 4-byte sequence flag written last.
constexpr std::uint32_t kSlotBytes = kBlockBytes + 4;

std::uint32_t ReadFlag(Endpoint& ep, mem::VirtAddr slot_va) {
  std::uint8_t b[4];
  (void)ep.ReadBuffer(slot_va + kBlockBytes, b);
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

void StampFlag(std::vector<std::uint8_t>& block, std::uint32_t seq) {
  block.resize(kSlotBytes);
  for (int i = 0; i < 4; ++i) {
    block[kBlockBytes + static_cast<std::uint32_t>(i)] =
        static_cast<std::uint8_t>(seq >> (8 * i));
  }
}

// A stage's receive side: kSlots exported slots, round-robin, plus an
// exported ack word the upstream sender uses as send credit (so a slot is
// never overwritten before it was consumed).
struct RxRing {
  std::vector<mem::VirtAddr> slots;
  mem::VirtAddr ack_staging = 0;
  ProxyAddr upstream_ack = 0;  // imported: where our consumption acks go
  std::uint32_t next_seq = 1;

  sim::Task<Status> Setup(Endpoint& ep, int upstream, const std::string& name) {
    for (int s = 0; s < kSlots; ++s) {
      auto buf = ep.AllocBuffer(kSlotBytes);
      if (!buf.ok()) co_return buf.status();
      slots.push_back(buf.value());
      ExportOptions opts;
      opts.name = name + "-" + std::to_string(s);
      auto id = co_await ep.ExportBuffer(buf.value(), kSlotBytes, std::move(opts));
      if (!id.ok()) co_return id.status();
    }
    auto ack = ep.AllocBuffer(64);
    if (!ack.ok()) co_return ack.status();
    ack_staging = ack.value();
    ImportOptions wait;
    wait.wait = true;
    auto imp = co_await ep.ImportBuffer(upstream, name + "-ack", wait);
    if (!imp.ok()) co_return imp.status();
    upstream_ack = imp.value().proxy_base;
    co_return OkStatus();
  }

  // Waits for the next block in sequence; returns the slot VA.
  sim::Task<mem::VirtAddr> Await(sim::Simulator& sim, Endpoint& ep) {
    const std::size_t idx = (next_seq - 1) % kSlots;
    while (ReadFlag(ep, slots[idx]) != next_seq) co_await sim.Delay(2000);
    ++next_seq;
    co_return slots[idx];
  }

  // Acknowledges consumption of block `seq` back to the sender.
  sim::Task<Status> Ack(Endpoint& ep, std::uint32_t seq) {
    std::uint8_t b[4] = {static_cast<std::uint8_t>(seq),
                         static_cast<std::uint8_t>(seq >> 8),
                         static_cast<std::uint8_t>(seq >> 16),
                         static_cast<std::uint8_t>(seq >> 24)};
    Status w = ep.WriteBuffer(ack_staging, b);
    if (!w.ok()) co_return w;
    co_return co_await ep.SendMsg(ack_staging, upstream_ack, 4);
  }
};

// A stage's send side: imported slots of the downstream ring plus an
// exported ack word that carries the consumer's credits back.
struct TxRing {
  std::vector<ProxyAddr> slots;
  mem::VirtAddr staging = 0;
  mem::VirtAddr ack_va = 0;  // exported; downstream writes consumption acks
  std::uint32_t next_seq = 1;
  SendHandle in_flight{};
  bool has_in_flight = false;

  sim::Task<Status> Setup(Endpoint& ep, int peer, const std::string& name) {
    auto ack = ep.AllocBuffer(64);
    if (!ack.ok()) co_return ack.status();
    ack_va = ack.value();
    ExportOptions aopts;
    aopts.name = name + "-ack";
    auto aid = co_await ep.ExportBuffer(ack_va, 64, std::move(aopts));
    if (!aid.ok()) co_return aid.status();
    ImportOptions wait;
    wait.wait = true;
    for (int s = 0; s < kSlots; ++s) {
      auto imp = co_await ep.ImportBuffer(peer, name + "-" + std::to_string(s), wait);
      if (!imp.ok()) co_return imp.status();
      slots.push_back(imp.value().proxy_base);
    }
    auto buf = ep.AllocBuffer(kSlotBytes);
    if (!buf.ok()) co_return buf.status();
    staging = buf.value();
    co_return OkStatus();
  }

  std::uint32_t AckedSeq(Endpoint& ep) const {
    std::uint8_t b[4];
    (void)ep.ReadBuffer(ack_va, b);
    return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
           (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
  }

  // Posts block `seq` asynchronously after reaping the previous send, so
  // computation of the next block overlaps the wire transfer. Credits: a
  // slot is reused only after the consumer acknowledged the block that
  // previously occupied it.
  sim::Task<Status> Send(sim::Simulator& sim, Endpoint& ep,
                         std::vector<std::uint8_t> block) {
    if (has_in_flight) {
      Status prev = co_await ep.WaitSend(in_flight);
      if (!prev.ok()) co_return prev;
      has_in_flight = false;
    }
    if (next_seq > kSlots) {
      while (AckedSeq(ep) < next_seq - kSlots) co_await sim.Delay(2000);
    }
    StampFlag(block, next_seq);
    Status w = ep.WriteBuffer(staging, block);
    if (!w.ok()) co_return w;
    auto handle = co_await ep.SendMsgAsync(
        staging, slots[(next_seq - 1) % kSlots], kSlotBytes);
    if (!handle.ok()) co_return handle.status();
    in_flight = handle.value();
    has_in_flight = true;
    ++next_seq;
    co_return OkStatus();
  }

  sim::Task<Status> Drain(Endpoint& ep) {
    if (!has_in_flight) co_return OkStatus();
    has_in_flight = false;
    co_return co_await ep.WaitSend(in_flight);
  }
};

sim::Process Producer(sim::Simulator& sim, Endpoint& ep, bool& done) {
  TxRing tx;
  if (!(co_await tx.Setup(ep, 1, "stage1")).ok()) co_return;
  for (int n = 0; n < kBlocks; ++n) {
    std::vector<std::uint8_t> block(kBlockBytes);
    for (std::uint32_t i = 0; i < kBlockBytes; ++i) {
      block[i] = static_cast<std::uint8_t>('a' + (i + static_cast<std::uint32_t>(n)) % 26);
    }
    co_await sim.Delay(50'000);  // generation work: 50 us per block
    if (!(co_await tx.Send(sim, ep, std::move(block))).ok()) co_return;
  }
  (void)co_await tx.Drain(ep);
  done = true;
}

sim::Process Transformer(sim::Simulator& sim, Endpoint& ep, bool& done) {
  RxRing rx;
  TxRing tx;
  if (!(co_await rx.Setup(ep, 0, "stage1")).ok()) co_return;
  if (!(co_await tx.Setup(ep, 2, "stage2")).ok()) co_return;
  for (int n = 0; n < kBlocks; ++n) {
    const mem::VirtAddr slot = co_await rx.Await(sim, ep);
    std::vector<std::uint8_t> block(kBlockBytes);
    (void)ep.ReadBuffer(slot, block);
    if (!(co_await rx.Ack(ep, static_cast<std::uint32_t>(n + 1))).ok()) co_return;
    for (auto& c : block) {  // uppercase
      if (c >= 'a' && c <= 'z') c = static_cast<std::uint8_t>(c - 'a' + 'A');
    }
    co_await sim.Delay(30'000);  // transform work
    if (!(co_await tx.Send(sim, ep, std::move(block))).ok()) co_return;
  }
  (void)co_await tx.Drain(ep);
  done = true;
}

sim::Process Consumer(sim::Simulator& sim, Endpoint& ep, bool& done,
                      std::uint64_t& checksum) {
  RxRing rx;
  if (!(co_await rx.Setup(ep, 1, "stage2")).ok()) co_return;
  for (int n = 0; n < kBlocks; ++n) {
    const mem::VirtAddr slot = co_await rx.Await(sim, ep);
    std::vector<std::uint8_t> block(kBlockBytes);
    (void)ep.ReadBuffer(slot, block);
    if (!(co_await rx.Ack(ep, static_cast<std::uint32_t>(n + 1))).ok()) co_return;
    for (std::uint8_t c : block) {
      checksum = checksum * 131 + c;
      if (c >= 'a' && c <= 'z') checksum = ~0ull;  // lowercase must not survive
    }
    co_await sim.Delay(10'000);
  }
  done = true;
}

}  // namespace

int main() {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = 3;
  Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) return 1;

  auto p = cluster.OpenEndpoint(0, "producer");
  auto t = cluster.OpenEndpoint(1, "transform");
  auto c = cluster.OpenEndpoint(2, "consumer");
  if (!p.ok() || !t.ok() || !c.ok()) return 1;

  bool p_done = false, t_done = false, c_done = false;
  std::uint64_t checksum = 0;
  const sim::Tick t0 = sim.now();
  sim.Spawn(Producer(sim, *p.value(), p_done));
  sim.Spawn(Transformer(sim, *t.value(), t_done));
  sim.Spawn(Consumer(sim, *c.value(), c_done, checksum));
  sim.Run();

  const double ms = sim::ToMicroseconds(sim.now() - t0) / 1000.0;
  const double mb = kBlocks * static_cast<double>(kBlockBytes) / 1e6;
  std::printf("pipeline: %s, %d blocks (%.1f MB per hop) in %.2f ms simulated "
              "-> %.1f MB/s per stage\n",
              (p_done && t_done && c_done && checksum != ~0ull) ? "complete"
                                                                : "FAILED",
              kBlocks, mb, ms, mb / (ms / 1000.0) / 1e0);
  std::printf("consumer checksum: %llu\n",
              static_cast<unsigned long long>(checksum));
  return (p_done && t_done && c_done && checksum != ~0ull) ? 0 : 1;
}
