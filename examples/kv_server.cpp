// A key-value store served over vRPC (§5.4) with a one-sided read path:
// the same handler code serves clients on the fast VMMC transport and
// legacy clients on SunRPC/UDP — "The server in vRPC can handle clients
// using either the old (UDP- and TCP-based) or the new (VMMC-based)
// protocols."
//
// Values additionally live in a server-side arena registered through the
// pin-down cache. A client fetches a value's descriptor (rtag, offset,
// length) once over RPC, then GETs are a single one-sided RdmaRead of the
// value bytes — no server CPU, no XDR, and repeat reads hit the warm
// registration cache on both ends.
//
// Build & run:   ./build/examples/kv_server
#include <cstdio>
#include <map>
#include <string>

#include "vmmc/vrpc/udp_transport.h"
#include "vmmc/vrpc/vmmc_transport.h"
#include "vmmc/vrpc/vrpc.h"

using namespace vmmc;
using namespace vmmc::vrpc;

namespace {

constexpr std::uint32_t kProg = 0x30000001;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcPut = 1;
constexpr std::uint32_t kProcGet = 2;
constexpr std::uint32_t kProcCount = 3;
constexpr std::uint32_t kProcGetDesc = 4;  // descriptor for one-sided GETs

constexpr std::uint32_t kArenaBytes = 64 * 1024;

// Where a value lives in the server's registered arena.
struct ValueDesc {
  std::uint32_t rtag = 0;
  std::uint32_t offset = 0;
  std::uint32_t len = 0;
};

// The store plus its vRPC procedure handlers.
class KvService {
 public:
  // Gives the service a data plane: every PUT value is also appended to
  // the arena so clients can read it one-sided.
  void AttachArena(vmmc_core::Endpoint* ep, mem::VirtAddr base,
                   std::uint32_t rtag) {
    arena_ep_ = ep;
    arena_base_ = base;
    arena_rtag_ = rtag;
  }

  void Register(RpcServer& server, sim::Simulator& sim) {
    server.Register(kProg, kVers, kProcPut,
                    [this, &sim](std::span<const std::uint8_t> args)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      XdrReader r(args);
                      std::string key = r.GetString();
                      std::string value = r.GetString();
                      if (!r.ok()) {
                        co_return Result<std::vector<std::uint8_t>>(
                            InvalidArgument("bad PUT args"));
                      }
                      co_await sim.Delay(800);  // hash-table work
                      store_[key] = value;
                      PublishToArena(key, value);
                      XdrWriter w;
                      w.PutBool(true);
                      co_return w.Take();
                    });
    server.Register(kProg, kVers, kProcGet,
                    [this, &sim](std::span<const std::uint8_t> args)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      XdrReader r(args);
                      std::string key = r.GetString();
                      if (!r.ok()) {
                        co_return Result<std::vector<std::uint8_t>>(
                            InvalidArgument("bad GET args"));
                      }
                      co_await sim.Delay(600);
                      XdrWriter w;
                      auto it = store_.find(key);
                      w.PutBool(it != store_.end());
                      w.PutString(it != store_.end() ? it->second : "");
                      co_return w.Take();
                    });
    server.Register(kProg, kVers, kProcCount,
                    [this, &sim](std::span<const std::uint8_t>)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      co_await sim.Delay(200);
                      XdrWriter w;
                      w.PutU32(static_cast<std::uint32_t>(store_.size()));
                      co_return w.Take();
                    });
    server.Register(kProg, kVers, kProcGetDesc,
                    [this, &sim](std::span<const std::uint8_t> args)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      XdrReader r(args);
                      std::string key = r.GetString();
                      if (!r.ok()) {
                        co_return Result<std::vector<std::uint8_t>>(
                            InvalidArgument("bad GETDESC args"));
                      }
                      co_await sim.Delay(200);  // directory lookup only
                      XdrWriter w;
                      auto it = dir_.find(key);
                      w.PutBool(it != dir_.end());
                      const ValueDesc d =
                          it != dir_.end() ? it->second : ValueDesc{};
                      w.PutU32(d.rtag);
                      w.PutU32(d.offset);
                      w.PutU32(d.len);
                      co_return w.Take();
                    });
  }

 private:
  void PublishToArena(const std::string& key, const std::string& value) {
    if (arena_ep_ == nullptr || value.empty()) return;
    if (arena_used_ + value.size() > kArenaBytes) return;  // arena full
    const auto bytes = std::span(
        reinterpret_cast<const std::uint8_t*>(value.data()), value.size());
    if (!arena_ep_->WriteBuffer(arena_base_ + arena_used_, bytes).ok()) return;
    dir_[key] = ValueDesc{arena_rtag_, arena_used_,
                          static_cast<std::uint32_t>(value.size())};
    arena_used_ += static_cast<std::uint32_t>((value.size() + 7) & ~7ull);
  }

  std::map<std::string, std::string> store_;
  std::map<std::string, ValueDesc> dir_;
  vmmc_core::Endpoint* arena_ep_ = nullptr;
  mem::VirtAddr arena_base_ = 0;
  std::uint32_t arena_rtag_ = 0;
  std::uint32_t arena_used_ = 0;
};

sim::Task<Status> Put(RpcClient& client, const std::string& key,
                      const std::string& value) {
  XdrWriter w;
  w.PutString(key);
  w.PutString(value);
  auto r = co_await client.Call(kProg, kVers, kProcPut, w.Take());
  co_return r.status();
}

sim::Task<Result<std::string>> Get(RpcClient& client, const std::string& key) {
  XdrWriter w;
  w.PutString(key);
  auto r = co_await client.Call(kProg, kVers, kProcGet, w.Take());
  if (!r.ok()) co_return Result<std::string>(r.status());
  XdrReader reader(r.value());
  const bool found = reader.GetBool();
  std::string value = reader.GetString();
  if (!reader.ok()) co_return Result<std::string>(InternalError("bad reply"));
  if (!found) co_return Result<std::string>(NotFound("no such key"));
  co_return value;
}

// A client's one-sided data plane: its own endpoint, a reusable
// destination buffer, and a descriptor cache. The first GET of a key pays
// one small RPC for the descriptor; every later GET is a pure RdmaRead.
class OneSidedReader {
 public:
  OneSidedReader(vmmc_core::Endpoint& ep, int server_node)
      : ep_(ep), server_node_(server_node) {}

  Status Init() {
    auto buf = ep_.AllocBuffer(4096);
    if (!buf.ok()) return buf.status();
    dst_ = buf.value();
    return OkStatus();
  }

  sim::Task<Result<std::string>> Get(RpcClient& rpc, const std::string& key) {
    using Out = Result<std::string>;
    auto it = descs_.find(key);
    if (it == descs_.end()) {
      XdrWriter w;
      w.PutString(key);
      auto r = co_await rpc.Call(kProg, kVers, kProcGetDesc, w.Take());
      if (!r.ok()) co_return Out(r.status());
      XdrReader reader(r.value());
      const bool found = reader.GetBool();
      ValueDesc d;
      d.rtag = reader.GetU32();
      d.offset = reader.GetU32();
      d.len = reader.GetU32();
      if (!reader.ok()) co_return Out(InternalError("bad descriptor reply"));
      if (!found) co_return Out(NotFound("no such key"));
      it = descs_.emplace(key, d).first;
    }
    const ValueDesc& d = it->second;
    if (d.len > 4096) co_return Out(OutOfRange("value larger than buffer"));
    // Registration of the same destination hits the warm pin-down cache
    // after the first read.
    auto region =
        co_await ep_.RegisterMemory(dst_, 4096, vmmc_core::RegIntent::kRecv);
    if (!region.ok()) co_return Out(region.status());
    Status pulled = co_await ep_.RdmaRead(
        vmmc_core::RemoteTarget{server_node_, d.rtag, d.offset}, d.len,
        region.value(), 0);
    (void)co_await ep_.UnregisterMemory(region.value());
    if (!pulled.ok()) co_return Out(pulled);
    std::string value(d.len, '\0');
    auto out = std::span(reinterpret_cast<std::uint8_t*>(value.data()), d.len);
    if (Status r = ep_.ReadBuffer(dst_, out); !r.ok()) co_return Out(r);
    co_return value;
  }

 private:
  vmmc_core::Endpoint& ep_;
  int server_node_;
  mem::VirtAddr dst_ = 0;
  std::map<std::string, ValueDesc> descs_;
};

}  // namespace

int main() {
  sim::Simulator sim;
  Params params;

  // The cluster (Myrinet + Ethernet) with the server on node 1.
  vmmc_core::ClusterOptions options;
  options.num_nodes = 3;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) return 1;

  KvService service;
  RpcServer server(params);
  service.Register(server, sim);

  bool done = false;
  int failures = 0;
  auto scenario = [&]() -> sim::Process {
    // Server: VMMC transport with two client slots, plus the legacy UDP
    // transport on the Ethernet — both attached to the same RpcServer.
    auto vmmc_transport =
        co_await VmmcServerTransport::Create(cluster, 1, "kv", 2);
    if (!vmmc_transport.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    server.Attach(sim, vmmc_transport.value().get());
    UdpServerTransport udp_transport(params, sim, *cluster.node(1).eth);
    server.Attach(sim, &udp_transport);

    // Data plane: the value arena on the server node, registered through
    // the pin-down cache so clients can RdmaRead from it.
    auto arena_ep = cluster.OpenEndpoint(1, "kv-arena");
    if (!arena_ep.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    auto arena = arena_ep.value()->AllocBuffer(kArenaBytes);
    if (!arena.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    auto arena_region = co_await arena_ep.value()->RegisterMemory(
        arena.value(), kArenaBytes, vmmc_core::RegIntent::kRecv);
    if (!arena_region.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    service.AttachArena(arena_ep.value().get(), arena.value(),
                        arena_region.value().rtag);

    // Client A (node 0) and client B (node 2) over VMMC.
    auto ta = co_await VmmcClientTransport::Connect(cluster, 0, 1, "kv", 0);
    auto tb = co_await VmmcClientTransport::Connect(cluster, 2, 1, "kv", 1);
    if (!ta.ok() || !tb.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    RpcClient a(params, sim, std::move(ta).value());
    RpcClient b(params, sim, std::move(tb).value());
    // A legacy client on node 2 using SunRPC over UDP.
    RpcClient legacy(params, sim,
                     std::make_unique<UdpClientTransport>(params, sim,
                                                          *cluster.node(2).eth, 1));

    const sim::Tick t0 = sim.now();
    if (!(co_await Put(a, "paper", "VMMC on Myrinet")).ok()) ++failures;
    if (!(co_await Put(a, "venue", "IPPS 1997")).ok()) ++failures;
    if (!(co_await Put(b, "latency", "9.8 us")).ok()) ++failures;
    const double vmmc_puts_us = sim::ToMicroseconds(sim.now() - t0) / 3.0;

    auto venue = co_await Get(b, "venue");
    if (!venue.ok() || venue.value() != "IPPS 1997") ++failures;
    auto missing = co_await Get(a, "nothing");
    if (missing.status().code() != ErrorCode::kNotFound) ++failures;

    const sim::Tick t1 = sim.now();
    auto legacy_get = co_await Get(legacy, "paper");
    const double udp_get_us = sim::ToMicroseconds(sim.now() - t1);
    if (!legacy_get.ok() || legacy_get.value() != "VMMC on Myrinet") ++failures;

    // One-sided reads from client B: descriptor once over RPC, then the
    // value bytes come straight out of the server's arena.
    auto reader_ep = cluster.OpenEndpoint(2, "kv-reader");
    if (!reader_ep.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    OneSidedReader reader(*reader_ep.value(), 1);
    if (!reader.Init().ok()) ++failures;
    auto first = co_await reader.Get(b, "paper");  // RPC descriptor + read
    if (!first.ok() || first.value() != "VMMC on Myrinet") ++failures;
    const sim::Tick t2 = sim.now();
    constexpr int kWarmReads = 4;
    for (int i = 0; i < kWarmReads; ++i) {
      auto warm = co_await reader.Get(b, "paper");  // pure RdmaRead
      if (!warm.ok() || warm.value() != "VMMC on Myrinet") ++failures;
    }
    const double rdma_get_us =
        sim::ToMicroseconds(sim.now() - t2) / kWarmReads;
    auto none = co_await reader.Get(b, "nothing");
    if (none.status().code() != ErrorCode::kNotFound) ++failures;

    std::printf("kv store: 3 puts + 2 gets over VMMC (avg %.1f us/op), 1 get "
                "over legacy UDP (%.1f us)\n",
                vmmc_puts_us, udp_get_us);
    std::printf("one-sided GET (warm descriptor + regcache): %.1f us/op, "
                "client regcache hits %llu\n",
                rdma_get_us,
                static_cast<unsigned long long>(
                    reader_ep.value()->reg_cache().hits()));
    std::printf("server handled %llu calls; %d failures\n",
                static_cast<unsigned long long>(server.calls_served()), failures);
    done = true;
    for (;;) co_await sim.Delay(sim::Seconds(1));  // keep transports alive
  };
  sim.Spawn(scenario());
  sim.RunUntil([&] { return done; }, 500'000'000);
  return failures == 0 && done ? 0 : 1;
}
