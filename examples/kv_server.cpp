// A key-value store served over vRPC (§5.4): the same handler code serves
// clients on the fast VMMC transport and legacy clients on SunRPC/UDP —
// "The server in vRPC can handle clients using either the old (UDP- and
// TCP-based) or the new (VMMC-based) protocols."
//
// Build & run:   ./build/examples/kv_server
#include <cstdio>
#include <map>
#include <string>

#include "vmmc/vrpc/udp_transport.h"
#include "vmmc/vrpc/vmmc_transport.h"
#include "vmmc/vrpc/vrpc.h"

using namespace vmmc;
using namespace vmmc::vrpc;

namespace {

constexpr std::uint32_t kProg = 0x30000001;
constexpr std::uint32_t kVers = 1;
constexpr std::uint32_t kProcPut = 1;
constexpr std::uint32_t kProcGet = 2;
constexpr std::uint32_t kProcCount = 3;

// The store plus its vRPC procedure handlers.
class KvService {
 public:
  void Register(RpcServer& server, sim::Simulator& sim) {
    server.Register(kProg, kVers, kProcPut,
                    [this, &sim](std::span<const std::uint8_t> args)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      XdrReader r(args);
                      std::string key = r.GetString();
                      std::string value = r.GetString();
                      if (!r.ok()) {
                        co_return Result<std::vector<std::uint8_t>>(
                            InvalidArgument("bad PUT args"));
                      }
                      co_await sim.Delay(800);  // hash-table work
                      store_[key] = value;
                      XdrWriter w;
                      w.PutBool(true);
                      co_return w.Take();
                    });
    server.Register(kProg, kVers, kProcGet,
                    [this, &sim](std::span<const std::uint8_t> args)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      XdrReader r(args);
                      std::string key = r.GetString();
                      if (!r.ok()) {
                        co_return Result<std::vector<std::uint8_t>>(
                            InvalidArgument("bad GET args"));
                      }
                      co_await sim.Delay(600);
                      XdrWriter w;
                      auto it = store_.find(key);
                      w.PutBool(it != store_.end());
                      w.PutString(it != store_.end() ? it->second : "");
                      co_return w.Take();
                    });
    server.Register(kProg, kVers, kProcCount,
                    [this, &sim](std::span<const std::uint8_t>)
                        -> sim::Task<Result<std::vector<std::uint8_t>>> {
                      co_await sim.Delay(200);
                      XdrWriter w;
                      w.PutU32(static_cast<std::uint32_t>(store_.size()));
                      co_return w.Take();
                    });
  }

 private:
  std::map<std::string, std::string> store_;
};

sim::Task<Status> Put(RpcClient& client, const std::string& key,
                      const std::string& value) {
  XdrWriter w;
  w.PutString(key);
  w.PutString(value);
  auto r = co_await client.Call(kProg, kVers, kProcPut, w.Take());
  co_return r.status();
}

sim::Task<Result<std::string>> Get(RpcClient& client, const std::string& key) {
  XdrWriter w;
  w.PutString(key);
  auto r = co_await client.Call(kProg, kVers, kProcGet, w.Take());
  if (!r.ok()) co_return Result<std::string>(r.status());
  XdrReader reader(r.value());
  const bool found = reader.GetBool();
  std::string value = reader.GetString();
  if (!reader.ok()) co_return Result<std::string>(InternalError("bad reply"));
  if (!found) co_return Result<std::string>(NotFound("no such key"));
  co_return value;
}

}  // namespace

int main() {
  sim::Simulator sim;
  Params params;

  // The cluster (Myrinet + Ethernet) with the server on node 1.
  vmmc_core::ClusterOptions options;
  options.num_nodes = 3;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) return 1;

  KvService service;
  RpcServer server(params);
  service.Register(server, sim);

  bool done = false;
  int failures = 0;
  auto scenario = [&]() -> sim::Process {
    // Server: VMMC transport with two client slots, plus the legacy UDP
    // transport on the Ethernet — both attached to the same RpcServer.
    auto vmmc_transport =
        co_await VmmcServerTransport::Create(cluster, 1, "kv", 2);
    if (!vmmc_transport.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    server.Attach(sim, vmmc_transport.value().get());
    UdpServerTransport udp_transport(params, sim, *cluster.node(1).eth);
    server.Attach(sim, &udp_transport);

    // Client A (node 0) and client B (node 2) over VMMC.
    auto ta = co_await VmmcClientTransport::Connect(cluster, 0, 1, "kv", 0);
    auto tb = co_await VmmcClientTransport::Connect(cluster, 2, 1, "kv", 1);
    if (!ta.ok() || !tb.ok()) {
      ++failures;
      done = true;
      co_return;
    }
    RpcClient a(params, sim, std::move(ta).value());
    RpcClient b(params, sim, std::move(tb).value());
    // A legacy client on node 2 using SunRPC over UDP.
    RpcClient legacy(params, sim,
                     std::make_unique<UdpClientTransport>(params, sim,
                                                          *cluster.node(2).eth, 1));

    const sim::Tick t0 = sim.now();
    if (!(co_await Put(a, "paper", "VMMC on Myrinet")).ok()) ++failures;
    if (!(co_await Put(a, "venue", "IPPS 1997")).ok()) ++failures;
    if (!(co_await Put(b, "latency", "9.8 us")).ok()) ++failures;
    const double vmmc_puts_us = sim::ToMicroseconds(sim.now() - t0) / 3.0;

    auto venue = co_await Get(b, "venue");
    if (!venue.ok() || venue.value() != "IPPS 1997") ++failures;
    auto missing = co_await Get(a, "nothing");
    if (missing.status().code() != ErrorCode::kNotFound) ++failures;

    const sim::Tick t1 = sim.now();
    auto legacy_get = co_await Get(legacy, "paper");
    const double udp_get_us = sim::ToMicroseconds(sim.now() - t1);
    if (!legacy_get.ok() || legacy_get.value() != "VMMC on Myrinet") ++failures;

    std::printf("kv store: 3 puts + 2 gets over VMMC (avg %.1f us/op), 1 get "
                "over legacy UDP (%.1f us)\n",
                vmmc_puts_us, udp_get_us);
    std::printf("server handled %llu calls; %d failures\n",
                static_cast<unsigned long long>(server.calls_served()), failures);
    done = true;
    for (;;) co_await sim.Delay(sim::Seconds(1));  // keep transports alive
  };
  sim.Spawn(scenario());
  sim.RunUntil([&] { return done; }, 500'000'000);
  return failures == 0 && done ? 0 : 1;
}
