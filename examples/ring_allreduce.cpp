// Ring all-reduce over VMMC — the kind of parallel-computing workload the
// paper's introduction motivates (building a high-performance server from
// commodity PCs).
//
// Each of N nodes holds a vector of int32; at the end every node holds the
// element-wise sum. The classic 2(N-1)-step ring: N-1 reduce-scatter steps
// followed by N-1 all-gather steps. Each node exports a staging buffer to
// its left neighbour; data movement is pure VMMC deliberate update with a
// commit flag, and no receive calls anywhere.
//
// Build & run:   ./build/examples/ring_allreduce
#include <cstdio>
#include <vector>

#include "vmmc/vmmc/cluster.h"

using namespace vmmc;
using namespace vmmc::vmmc_core;

namespace {

constexpr int kNodes = 4;
constexpr std::uint32_t kElements = 64 * 1024;  // 256 KB per node
constexpr std::uint32_t kChunk = kElements / kNodes;

struct Worker {
  std::unique_ptr<Endpoint> ep;
  std::vector<std::int32_t> data;     // the local vector (host-side mirror)
  mem::VirtAddr send_staging = 0;     // page-aligned source for SendMsg
  mem::VirtAddr ack_staging = 0;      // 4-byte ack source
  mem::VirtAddr recv_buffer = 0;      // exported; right neighbour writes here
  mem::VirtAddr ack_buffer = 0;       // exported; acks for MY sends land here
  ProxyAddr to_left = 0;              // proxy of the LEFT neighbour's buffer
  ProxyAddr ack_to_right = 0;         // proxy of the RIGHT neighbour's ack slot
  bool done = false;
};

std::vector<std::uint8_t> PackChunk(const std::vector<std::int32_t>& v,
                                    std::uint32_t chunk, std::uint32_t step_tag) {
  // Payload: kChunk int32 values followed by a 4-byte commit tag (written
  // last on the wire — the arrival flag the receiver spins on).
  std::vector<std::uint8_t> bytes(kChunk * 4 + 4);
  for (std::uint32_t i = 0; i < kChunk; ++i) {
    const std::uint32_t x = static_cast<std::uint32_t>(v[chunk * kChunk + i]);
    for (int b = 0; b < 4; ++b) {
      bytes[i * 4 + static_cast<std::uint32_t>(b)] =
          static_cast<std::uint8_t>(x >> (8 * b));
    }
  }
  for (int b = 0; b < 4; ++b) {
    bytes[kChunk * 4 + static_cast<std::uint32_t>(b)] =
        static_cast<std::uint8_t>(step_tag >> (8 * b));
  }
  return bytes;
}

void UnpackChunk(const std::vector<std::uint8_t>& bytes,
                 std::vector<std::int32_t>& out) {
  out.resize(kChunk);
  for (std::uint32_t i = 0; i < kChunk; ++i) {
    std::uint32_t x = 0;
    for (int b = 3; b >= 0; --b) {
      x = (x << 8) | bytes[i * 4 + static_cast<std::uint32_t>(b)];
    }
    out[i] = static_cast<std::int32_t>(x);
  }
}

sim::Process RunWorker(sim::Simulator& sim, Worker& w, int rank) {
  Endpoint& ep = *w.ep;
  const std::uint32_t buf_bytes = kChunk * 4 + 4;

  // Setup: export my receive buffer and my ack slot; import my LEFT
  // neighbour's receive buffer (data flows rank -> rank-1) and my RIGHT
  // neighbour's ack slot (consumption acks flow back to the data sender —
  // receiver-managed flow control over VMMC itself, so a sender never
  // overwrites a buffer before it has been read).
  w.recv_buffer = ep.AllocBuffer(buf_bytes).value();
  w.ack_buffer = ep.AllocBuffer(64).value();
  w.send_staging = ep.AllocBuffer(buf_bytes).value();
  w.ack_staging = ep.AllocBuffer(64).value();
  {
    ExportOptions opts;
    opts.name = "ring-" + std::to_string(rank);
    auto id = co_await ep.ExportBuffer(w.recv_buffer, buf_bytes, std::move(opts));
    if (!id.ok()) co_return;
    ExportOptions aopts;
    aopts.name = "ack-" + std::to_string(rank);
    auto aid = co_await ep.ExportBuffer(w.ack_buffer, 64, std::move(aopts));
    if (!aid.ok()) co_return;
  }
  const int left = (rank + kNodes - 1) % kNodes;
  const int right = (rank + 1) % kNodes;
  ImportOptions wait;
  wait.wait = true;
  auto imp = co_await ep.ImportBuffer(left, "ring-" + std::to_string(left), wait);
  if (!imp.ok()) co_return;
  w.to_left = imp.value().proxy_base;
  auto ack_imp = co_await ep.ImportBuffer(right, "ack-" + std::to_string(right), wait);
  if (!ack_imp.ok()) co_return;
  w.ack_to_right = ack_imp.value().proxy_base;

  auto read_word = [&](mem::VirtAddr va) {
    std::uint8_t b[4];
    (void)ep.ReadBuffer(va, b);
    return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
           (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
  };
  auto read_tag = [&] { return read_word(w.recv_buffer + kChunk * 4); };
  auto send_chunk = [&](std::uint32_t chunk, std::uint32_t tag) -> sim::Task<Status> {
    // Wait until the previous send was consumed (ack for tag-1).
    while (tag > 1 && read_word(w.ack_buffer) != tag - 1) co_await sim.Delay(1000);
    auto bytes = PackChunk(w.data, chunk, tag);
    Status s = ep.WriteBuffer(w.send_staging, bytes);
    if (!s.ok()) co_return s;
    co_return co_await ep.SendMsg(w.send_staging, w.to_left, buf_bytes);
  };
  auto await_tag = [&](std::uint32_t tag) -> sim::Process {
    while (read_tag() != tag) co_await sim.Delay(1000);
  };
  auto send_ack = [&](std::uint32_t tag) -> sim::Task<Status> {
    std::uint8_t b[4] = {static_cast<std::uint8_t>(tag),
                         static_cast<std::uint8_t>(tag >> 8),
                         static_cast<std::uint8_t>(tag >> 16),
                         static_cast<std::uint8_t>(tag >> 24)};
    Status s = ep.WriteBuffer(w.ack_staging, b);
    if (!s.ok()) co_return s;
    co_return co_await ep.SendMsg(w.ack_staging, w.ack_to_right, 4);
  };

  // Phase 1: reduce-scatter. At step s, send chunk (rank + s) and
  // accumulate into chunk (rank + s + 1); after N-1 steps, chunk
  // (rank + 1) holds the full sum on this node.
  std::uint32_t tag = 1;
  for (int s = 0; s < kNodes - 1; ++s, ++tag) {
    const std::uint32_t send_idx = static_cast<std::uint32_t>((rank + s) % kNodes);
    const std::uint32_t recv_idx =
        static_cast<std::uint32_t>((rank + s + 1) % kNodes);
    Status sent = co_await send_chunk(send_idx, tag);
    if (!sent.ok()) co_return;
    co_await await_tag(tag);
    std::vector<std::uint8_t> bytes(buf_bytes);
    (void)ep.ReadBuffer(w.recv_buffer, bytes);
    if (!(co_await send_ack(tag)).ok()) co_return;
    std::vector<std::int32_t> incoming;
    UnpackChunk(bytes, incoming);
    for (std::uint32_t i = 0; i < kChunk; ++i) {
      w.data[recv_idx * kChunk + i] += incoming[i];
    }
  }

  // Phase 2: all-gather. After reduce-scatter, node r owns the fully
  // reduced chunk (r + N - 1) mod N; circulate the completed chunks.
  for (int s = 0; s < kNodes - 1; ++s, ++tag) {
    const std::uint32_t send_idx =
        static_cast<std::uint32_t>((rank + kNodes - 1 + s) % kNodes);
    const std::uint32_t recv_idx = static_cast<std::uint32_t>((rank + s) % kNodes);
    Status sent = co_await send_chunk(send_idx, tag);
    if (!sent.ok()) co_return;
    co_await await_tag(tag);
    std::vector<std::uint8_t> bytes(buf_bytes);
    (void)ep.ReadBuffer(w.recv_buffer, bytes);
    if (!(co_await send_ack(tag)).ok()) co_return;
    std::vector<std::int32_t> incoming;
    UnpackChunk(bytes, incoming);
    for (std::uint32_t i = 0; i < kChunk; ++i) {
      w.data[recv_idx * kChunk + i] = incoming[i];
    }
  }
  w.done = true;
}

}  // namespace

int main() {
  sim::Simulator sim;
  Params params;
  ClusterOptions options;
  options.num_nodes = kNodes;
  Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) return 1;

  std::vector<Worker> workers(kNodes);
  for (int r = 0; r < kNodes; ++r) {
    auto ep = cluster.OpenEndpoint(r, "allreduce-" + std::to_string(r));
    if (!ep.ok()) return 1;
    workers[static_cast<std::size_t>(r)].ep = std::move(ep).value();
    // Node r contributes data[i] = i + r.
    auto& d = workers[static_cast<std::size_t>(r)].data;
    d.resize(kElements);
    for (std::uint32_t i = 0; i < kElements; ++i) {
      d[i] = static_cast<std::int32_t>(i % 1000) + r;
    }
  }

  const sim::Tick t0 = sim.now();
  for (int r = 0; r < kNodes; ++r) {
    sim.Spawn(RunWorker(sim, workers[static_cast<std::size_t>(r)], r));
  }
  sim.Run();

  bool all_done = true;
  std::uint64_t errors = 0;
  for (int r = 0; r < kNodes; ++r) {
    const Worker& w = workers[static_cast<std::size_t>(r)];
    all_done = all_done && w.done;
    for (std::uint32_t i = 0; i < kElements; ++i) {
      // Expected: sum over r of (i%1000 + r) = N*(i%1000) + 0+1+2+3.
      const std::int32_t expect =
          kNodes * static_cast<std::int32_t>(i % 1000) + (kNodes * (kNodes - 1)) / 2;
      if (w.data[i] != expect) ++errors;
    }
  }
  const double ms = sim::ToMicroseconds(sim.now() - t0) / 1000.0;
  std::printf("ring all-reduce of %u int32 across %d nodes: %s, %llu errors, "
              "%.2f ms simulated (%.1f MB moved)\n",
              kElements, kNodes, all_done ? "complete" : "INCOMPLETE",
              static_cast<unsigned long long>(errors), ms,
              2.0 * (kNodes - 1) * kChunk * 4 * kNodes / 1e6);
  return (all_done && errors == 0) ? 0 : 1;
}
