// Collectives over VMMC: a 6-rank job on a two-switch topology runs a
// barrier, broadcasts a model, and iterates all-reduce steps — the
// message-passing workload (§1) a commodity-cluster server would run.
//
// Build & run:   ./build/examples/collectives_demo
//
// Set VMMC_TRACE=out.json to record a Chrome/Perfetto trace of all six
// nodes' LCPs, DMA engines and drivers.
#include <cstdio>
#include <vector>

#include "vmmc/coll/communicator.h"
#include "vmmc/obs/trace.h"

using namespace vmmc;
using namespace vmmc::coll;

namespace {

constexpr int kRanks = 6;
constexpr std::size_t kModel = 6 * 1024;  // int64 parameters
constexpr int kIterations = 5;

struct RankState {
  std::unique_ptr<Communicator> comm;
  std::vector<std::int64_t> model;
  bool done = false;
};

sim::Process RunRank(sim::Simulator& sim, vmmc_core::Cluster& cluster,
                     RankState& state, int rank) {
  auto comm = co_await Communicator::Create(cluster, rank, kRanks);
  if (!comm.ok()) {
    std::printf("rank %d failed: %s\n", rank, comm.status().ToString().c_str());
    co_return;
  }
  state.comm = std::move(comm).value();
  Communicator& c = *state.comm;

  // Rank 0 initializes the model and broadcasts it.
  std::vector<std::uint8_t> blob;
  if (rank == 0) {
    blob.resize(kModel * 8);
    for (std::size_t i = 0; i < kModel; ++i) {
      const auto v = static_cast<std::uint64_t>(i * 3 + 1);
      for (int b = 0; b < 8; ++b) {
        blob[i * 8 + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }
  Status s = co_await c.Broadcast(0, blob);
  if (!s.ok()) co_return;
  state.model.resize(kModel);
  for (std::size_t i = 0; i < kModel; ++i) {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) {
      v = (v << 8) | blob[i * 8 + static_cast<std::size_t>(b)];
    }
    state.model[i] = static_cast<std::int64_t>(v);
  }

  // "Training" iterations: local update, all-reduce, barrier.
  for (int it = 0; it < kIterations; ++it) {
    std::vector<std::int64_t> grads(kModel);
    for (std::size_t i = 0; i < kModel; ++i) {
      grads[i] = static_cast<std::int64_t>((i + static_cast<std::size_t>(rank) +
                                            static_cast<std::size_t>(it)) %
                                           97);
    }
    co_await sim.Delay(200'000);  // 200 us of local compute
    s = co_await c.AllReduceSum(grads);
    if (!s.ok()) co_return;
    for (std::size_t i = 0; i < kModel; ++i) state.model[i] += grads[i] / kRanks;
    s = co_await c.Barrier();
    if (!s.ok()) co_return;
  }
  state.done = true;
}

}  // namespace

int main() {
  sim::Simulator sim;
  obs::TraceEnvGuard trace(sim.tracer());  // VMMC_TRACE=file.json to record
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = kRanks;
  options.topology = vmmc_core::Topology::kSwitchChain;
  options.chain_switches = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) return 1;

  std::vector<RankState> ranks(kRanks);
  const sim::Tick t0 = sim.now();
  for (int r = 0; r < kRanks; ++r) {
    sim.Spawn(RunRank(sim, cluster, ranks[static_cast<std::size_t>(r)], r));
  }
  sim.Run();

  bool all_done = true;
  std::uint64_t divergence = 0;
  for (int r = 0; r < kRanks; ++r) {
    all_done = all_done && ranks[static_cast<std::size_t>(r)].done;
    for (std::size_t i = 0; i < kModel; ++i) {
      if (ranks[static_cast<std::size_t>(r)].model[i] != ranks[0].model[i]) {
        ++divergence;
      }
    }
  }
  std::printf("collectives demo: %d ranks on 2 switches, %d iterations of "
              "all-reduce(%zu int64) + barrier: %s\n",
              kRanks, kIterations, kModel,
              all_done && divergence == 0 ? "models identical on every rank"
                                          : "FAILED");
  std::printf("simulated time %.2f ms; collective ops per rank: %llu\n",
              sim::ToMicroseconds(sim.now() - t0) / 1000.0,
              ranks[0].comm ? static_cast<unsigned long long>(
                                  ranks[0].comm->operations())
                            : 0ull);
  return (all_done && divergence == 0) ? 0 : 1;
}
