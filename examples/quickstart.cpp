// Quickstart: the VMMC model in one file.
//
// Two PCs on a Myrinet switch. The receiver exports part of its address
// space as a receive buffer and registers a notification handler; the
// sender imports that buffer — getting a proxy address — and sends into
// it. Data lands directly in the receiver's memory (no receive call, no
// receiver CPU involvement); the notification invokes a user-level
// handler (§2).
//
// Build & run:   ./build/examples/quickstart
//
// Set VMMC_TRACE=out.json to record a Chrome/Perfetto trace of the run
// (load at https://ui.perfetto.dev or chrome://tracing).
#include <cstdio>
#include <cstring>
#include <string>

#include "vmmc/obs/trace.h"
#include "vmmc/vmmc/cluster.h"

using namespace vmmc;
using namespace vmmc::vmmc_core;

namespace {

sim::Process Receiver(sim::Simulator& sim, Endpoint& ep, mem::VirtAddr& buffer_out) {
  // Export 64 KB of our address space under the name "inbox", asking for a
  // notification when a message arrives.
  auto buffer = ep.AllocBuffer(64 * 1024);
  if (!buffer.ok()) co_return;
  buffer_out = buffer.value();

  ExportOptions options;
  options.name = "inbox";
  options.notify = true;
  auto id = co_await ep.ExportBuffer(buffer.value(), 64 * 1024, std::move(options));
  if (!id.ok()) {
    std::printf("export failed: %s\n", id.status().ToString().c_str());
    co_return;
  }

  ep.SetNotificationHandler(id.value(), [&, buffer](const UserNotification& n)
                                            -> sim::Process {
    std::string text(n.msg_len, '\0');
    (void)ep.ReadBuffer(buffer.value(),
                        {reinterpret_cast<std::uint8_t*>(text.data()), text.size()});
    std::printf("[%8.1f us] receiver: notification, %u bytes landed: \"%s\"\n",
                sim::ToMicroseconds(sim.now()), n.msg_len, text.c_str());
    co_return;
  });
  std::printf("[%8.1f us] receiver: exported 64 KB as \"inbox\"\n",
              sim::ToMicroseconds(sim.now()));
}

sim::Process Sender(sim::Simulator& sim, Endpoint& ep) {
  // Import the receiver's buffer; the returned proxy address is our only
  // handle on its memory — and the only place we are allowed to write.
  ImportOptions wait;
  wait.wait = true;
  auto imported = co_await ep.ImportBuffer(1, "inbox", wait);
  if (!imported.ok()) {
    std::printf("import failed: %s\n", imported.status().ToString().c_str());
    co_return;
  }
  std::printf("[%8.1f us] sender: imported \"inbox\" (%u bytes at proxy 0x%llx)\n",
              sim::ToMicroseconds(sim.now()), imported.value().len,
              static_cast<unsigned long long>(imported.value().proxy_base));

  const std::string message = "hello from virtual memory-mapped communication";
  auto src = ep.AllocBuffer(4096);
  if (!src.ok()) co_return;
  (void)ep.WriteBuffer(src.value(),
                       {reinterpret_cast<const std::uint8_t*>(message.data()),
                        message.size()});

  SendOptions options;
  options.notify = true;
  Status sent = co_await ep.SendMsg(src.value(), imported.value().proxy_base,
                                    static_cast<std::uint32_t>(message.size()),
                                    options);
  std::printf("[%8.1f us] sender: SendMsg returned %s\n",
              sim::ToMicroseconds(sim.now()), sent.ToString().c_str());

  // A send to memory we never imported is rejected by the outgoing page
  // table — protection without any kernel involvement on the data path.
  // (Long sends report the rejection synchronously through the completion
  // word; short sends are fire-and-forget and surface it via counters.)
  Status denied = co_await ep.SendMsg(src.value(), MakeProxyAddr(1000, 0), 4096);
  std::printf("[%8.1f us] sender: rogue send rejected: %s\n",
              sim::ToMicroseconds(sim.now()), denied.ToString().c_str());
}

}  // namespace

int main() {
  sim::Simulator sim;
  obs::TraceEnvGuard trace(sim.tracer());  // VMMC_TRACE=file.json to record
  Params params;  // the paper's calibrated platform
  ClusterOptions options;
  options.num_nodes = 2;
  Cluster cluster(sim, params, options);

  Status booted = cluster.Boot();
  if (!booted.ok()) {
    std::printf("boot failed: %s\n", booted.ToString().c_str());
    return 1;
  }
  std::printf("[%8.1f us] cluster booted: network mapped and verified, VMMC "
              "LCPs loaded\n",
              sim::ToMicroseconds(sim.now()));

  auto receiver = cluster.OpenEndpoint(1, "receiver");
  auto sender = cluster.OpenEndpoint(0, "sender");
  if (!receiver.ok() || !sender.ok()) return 1;

  mem::VirtAddr inbox = 0;
  sim.Spawn(Receiver(sim, *receiver.value(), inbox));
  sim.Spawn(Sender(sim, *sender.value()));
  sim.Run();

  const auto& stats = cluster.node(0).lcp->stats();
  std::printf("\nsender NIC: %llu sends, %llu bytes, %llu protection "
              "violations\n",
              static_cast<unsigned long long>(stats.sends_processed),
              static_cast<unsigned long long>(stats.bytes_sent),
              static_cast<unsigned long long>(stats.protection_violations));
  std::printf("receiver host CPU copies on the data path: %llu (zero-copy)\n",
              static_cast<unsigned long long>(
                  cluster.node(1).machine->cpu().bcopy_calls()));
  return 0;
}
