// Extension bench: collective scaling on multi-switch fabrics. The paper's
// testbed was 4 PCs on one M2F-SW8; this table stands up 8-64 node
// clusters on the topology.h shapes and runs the ring allreduce across
// them, reporting where the time goes at scale: per-link utilization and
// the congestion counters (output-queue waiting and wormhole head-of-line
// stalls) that the bounded switch port queues surface.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/myrinet/topology.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;

struct ScaleResult {
  int nodes = 0;
  int switches = 0;
  double allreduce_us = 0;
  double max_link_util = 0;   // busiest link: serialize time / elapsed
  double mean_link_util = 0;  // over links that carried traffic
  std::uint64_t hol_stalls = 0;
  double queue_wait_us = 0;
  double hol_stall_us = 0;
};

ScaleResult Measure(const std::string& spec, std::size_t elems_per_rank) {
  ScaleResult out;
  sim::Simulator sim;
  Params params;
  auto options = vmmc_core::ClusterOptions::FromSpec(spec);
  if (!options.ok()) std::abort();
  vmmc_core::Cluster cluster(sim, params, options.value());
  if (!cluster.Boot().ok()) std::abort();
  const int size = options.value().num_nodes;
  out.nodes = size;
  out.switches = cluster.fabric().num_switches();

  // One communicator per rank; lazy links, so an N-node job sets up the
  // 2 ring neighbours instead of N-1 peers.
  std::vector<std::unique_ptr<coll::Communicator>> comms(
      static_cast<std::size_t>(size));
  int created = 0;
  auto create = [&cluster, &comms, &created, size](int r) -> sim::Process {
    coll::CommOptions copts;
    copts.lazy_links = true;
    auto c = co_await coll::Communicator::Create(cluster, r, size, "world", copts);
    if (!c.ok()) std::abort();
    comms[static_cast<std::size_t>(r)] = std::move(c).value();
    ++created;
  };
  for (int r = 0; r < size; ++r) sim.Spawn(create(r));
  if (!sim.RunUntil([&] { return created == size; }, 10'000'000'000ll)) {
    std::abort();
  }

  // Snapshot per-link serialize time so utilization covers only the
  // allreduce itself, not boot and link setup.
  myrinet::Fabric& fabric = cluster.fabric();
  std::vector<sim::Tick> ser0(static_cast<std::size_t>(fabric.num_links()));
  for (int i = 0; i < fabric.num_links(); ++i) {
    ser0[static_cast<std::size_t>(i)] = fabric.link_at(i).serialize_time();
  }
  const std::uint64_t stalls0 = fabric.total_hol_stalls();
  const sim::Tick qwait0 = fabric.total_queue_wait();
  const sim::Tick stall_ns0 = fabric.total_hol_stall_time();

  int finished = 0;
  auto run = [&comms, &finished, elems_per_rank, size](int r) -> sim::Process {
    std::vector<std::int64_t> values(elems_per_rank * static_cast<std::size_t>(size));
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<std::int64_t>(i) + r;
    }
    Status s = co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
    if (!s.ok()) std::abort();
    ++finished;
  };
  const sim::Tick t0 = sim.now();
  for (int r = 0; r < size; ++r) sim.Spawn(run(r));
  if (!sim.RunUntil([&] { return finished == size; }, 60'000'000'000ll)) {
    std::abort();
  }
  const sim::Tick elapsed = sim.now() - t0;
  out.allreduce_us = sim::ToMicroseconds(elapsed);

  int used = 0;
  for (int i = 0; i < fabric.num_links(); ++i) {
    const sim::Tick ser =
        fabric.link_at(i).serialize_time() - ser0[static_cast<std::size_t>(i)];
    if (ser == 0) continue;
    const double util =
        static_cast<double>(ser) / static_cast<double>(elapsed);
    out.max_link_util = std::max(out.max_link_util, util);
    out.mean_link_util += util;
    ++used;
  }
  if (used > 0) out.mean_link_util /= used;
  out.hol_stalls = fabric.total_hol_stalls() - stalls0;
  out.queue_wait_us = sim::ToMicroseconds(fabric.total_queue_wait() - qwait0);
  out.hol_stall_us =
      sim::ToMicroseconds(fabric.total_hol_stall_time() - stall_ns0);
  return out;
}

}  // namespace

namespace {

void RunSeries(const char* title, std::size_t elems_per_rank) {
  std::printf("%s (%zu int64 per rank)\n", title, elems_per_rank);
  Table table({"topology", "nodes", "switches", "allreduce (us)",
               "max util", "mean util", "queue wait (us)", "HOL stalls"});
  const char* specs[] = {
      "single:4@8",  "single:8@8",  "ring:8@8",    "ring:16@8",
      "mesh:16@8",   "fattree:16@8", "fattree:32@8", "fattree:64@16",
  };
  for (const char* spec : specs) {
    ScaleResult r = Measure(spec, elems_per_rank);
    table.AddRow({spec, std::to_string(r.nodes), std::to_string(r.switches),
                  FormatDouble(r.allreduce_us, 1),
                  FormatDouble(r.max_link_util, 3),
                  FormatDouble(r.mean_link_util, 3),
                  FormatDouble(r.queue_wait_us, 1),
                  std::to_string(r.hol_stalls)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Extension: ring allreduce scaling across fabric topologies\n");
  std::printf("(utilization = busiest/mean link busy fraction during the "
              "collective;\n queue wait and HOL stalls come from the bounded "
              "switch output queues)\n\n");
  // 512-byte ring chunks: latency-bound, the topology's hop count and the
  // software stack dominate.
  RunSeries("Small vectors", 64);
  // 16 KB ring chunks: bandwidth-bound, shared inter-switch links fill
  // their port queues and congestion becomes visible.
  RunSeries("Large vectors", 2048);
  return 0;
}
