// Figure 3: "VMMC bandwidth for different message sizes" — ping-pong and
// bidirectional bandwidth from 4 B to 1 MB.
//
// Paper anchors: ping-pong peak 108.4 MB/s (98% of the 110 MB/s limit
// imposed by 4 KB-unit host DMA); bidirectional total 91 MB/s, lower
// because the LCP cannot stay in its tight sending loop and each PCI bus
// carries traffic both ways.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Figure 3: VMMC bandwidth vs message size\n");
  std::printf("(paper: ping-pong peak 108.4 MB/s; bidirectional total 91 MB/s)\n\n");

  Table table({"bytes", "ping-pong MB/s", "bidirectional MB/s (total)"});
  for (std::uint32_t len : {16u, 64u, 256u, 1024u, 4096u, 8192u, 16384u,
                            65536u, 262144u, 1048576u}) {
    const int iters = len >= 262144 ? 8 : (len >= 4096 ? 32 : 100);
    PingPongResult pp;
    {
      TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024, /*threads=*/0);  // 0: VMMC_THREADS
      RunPingPong(fx, len, iters, pp);
    }
    double bidir = 0;
    {
      TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024, /*threads=*/0);  // 0: VMMC_THREADS
      bidir = RunBidirectional(fx, len, iters);
    }
    table.AddRow({FormatSize(len), FormatDouble(pp.bandwidth_mb_s, 1),
                  FormatDouble(bidir, 1)});
  }
  table.Print();
  return 0;
}
