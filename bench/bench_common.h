// Shared fixtures for the paper-reproduction benches: a two-node cluster
// with cross-imported receive buffers, plus the ping-pong / streaming
// drivers used by Figures 2-4. All "measurements" are simulated time.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include <atomic>

#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/stats.h"
#include "vmmc/vmmc/cluster.h"
#include "vmmc/vmmc/runtime.h"

namespace vmmc::bench {

using vmmc_core::Cluster;
using vmmc_core::ClusterOptions;
using vmmc_core::ClusterRuntime;
using vmmc_core::Endpoint;
using vmmc_core::ExportOptions;
using vmmc_core::ImportedBuffer;
using vmmc_core::ImportOptions;
using vmmc_core::ProxyAddr;

// Two endpoints (node 0 "a", node 1 "b") with a receive buffer exported on
// each side and imported by the other.
//
// `threads` follows RuntimeOptions: 1 (the default) is the historical
// single-simulator fixture, 0 reads VMMC_THREADS, >= 2 partitions the
// cluster. Only the thread-aware drivers below (ping-pong, bidirectional,
// send-overhead) are safe on a partitioned fixture; benches that reach
// into fx.sim() directly should keep the serial default.
class TwoNodeFixture {
 public:
  explicit TwoNodeFixture(const Params& params = DefaultParams(),
                          std::uint32_t buffer_bytes = 2 * 1024 * 1024,
                          int threads = 1)
      : params_(params) {
    ClusterOptions options;
    options.num_nodes = 2;
    vmmc_core::RuntimeOptions rt;
    rt.threads = threads;
    runtime_ = std::make_unique<ClusterRuntime>(params_, options, rt);
    Status booted = cluster().Boot();
    if (!booted.ok()) {
      std::fprintf(stderr, "boot failed: %s\n", booted.ToString().c_str());
      std::abort();
    }
    a_ = Open(0, "a");
    b_ = Open(1, "b");
    SetupBuffers(buffer_bytes);
  }

  // Node 0's simulator (on a serial fixture: the only one). The historical
  // name; drivers touching node 1 must use sim_b().
  sim::Simulator& sim() { return cluster().node_sim(0); }
  sim::Simulator& sim_b() { return cluster().node_sim(1); }
  ClusterRuntime& runtime() { return *runtime_; }
  Cluster& cluster() { return runtime_->cluster(); }
  Endpoint& a() { return *a_; }
  Endpoint& b() { return *b_; }
  // Proxy address (in a's proxy space) of b's receive buffer, and vice
  // versa, plus the local VAs of the exported buffers.
  ProxyAddr a_to_b() const { return a_to_b_.proxy_base; }
  ProxyAddr b_to_a() const { return b_to_a_.proxy_base; }
  mem::VirtAddr a_recv_va() const { return a_recv_va_; }
  mem::VirtAddr b_recv_va() const { return b_recv_va_; }
  mem::VirtAddr a_src() const { return a_src_; }
  mem::VirtAddr b_src() const { return b_src_; }
  std::uint32_t buffer_bytes() const { return buffer_bytes_; }

  // Runs the simulation until `done` turns true; aborts if it drains.
  // (`done` may be written from any shard: the engine evaluates the
  // predicate only at window boundaries, after all shards published.)
  void RunUntilDone(const bool& done) {
    if (!cluster().DriveUntil([&] { return done; })) {
      std::fprintf(stderr, "bench deadlocked (event queue drained)\n");
      std::abort();
    }
  }

 private:
  std::unique_ptr<Endpoint> Open(int node, const char* name) {
    auto ep = cluster().OpenEndpoint(node, name);
    if (!ep.ok()) {
      std::fprintf(stderr, "endpoint failed: %s\n", ep.status().ToString().c_str());
      std::abort();
    }
    return std::move(ep).value();
  }

  void SetupBuffers(std::uint32_t bytes) {
    buffer_bytes_ = bytes;
    if (!cluster().parallel()) {
      // The historical single-coroutine setup, kept verbatim so serial
      // fixtures replay all prior releases bit for bit.
      bool done = false;
      auto setup = [&]() -> sim::Process {
        a_recv_va_ = a_->AllocBuffer(bytes).value();
        b_recv_va_ = b_->AllocBuffer(bytes).value();
        a_src_ = a_->AllocBuffer(bytes).value();
        b_src_ = b_->AllocBuffer(bytes).value();
        ExportOptions ea;
        ea.name = "a-ring";
        auto ida = co_await a_->ExportBuffer(a_recv_va_, bytes, std::move(ea));
        ExportOptions eb;
        eb.name = "b-ring";
        auto idb = co_await b_->ExportBuffer(b_recv_va_, bytes, std::move(eb));
        ImportOptions wait;
        wait.wait = true;
        auto iab = co_await a_->ImportBuffer(1, "b-ring", wait);
        auto iba = co_await b_->ImportBuffer(0, "a-ring", wait);
        a_to_b_ = iab.value();
        b_to_a_ = iba.value();
        (void)ida;
        (void)idb;
        done = true;
      };
      sim().Spawn(setup());
      RunUntilDone(done);
      return;
    }
    // Partitioned: each endpoint's setup runs on its own node shard (one
    // coroutine must never touch two shards' state); the wait-imports are
    // the cross-side rendezvous.
    std::atomic<int> ready{0};
    auto setup_a = [&]() -> sim::Process {
      a_recv_va_ = a_->AllocBuffer(bytes).value();
      a_src_ = a_->AllocBuffer(bytes).value();
      ExportOptions ea;
      ea.name = "a-ring";
      (void)co_await a_->ExportBuffer(a_recv_va_, bytes, std::move(ea));
      ImportOptions wait;
      wait.wait = true;
      a_to_b_ = (co_await a_->ImportBuffer(1, "b-ring", wait)).value();
      ready.fetch_add(1, std::memory_order_relaxed);
    };
    auto setup_b = [&]() -> sim::Process {
      b_recv_va_ = b_->AllocBuffer(bytes).value();
      b_src_ = b_->AllocBuffer(bytes).value();
      ExportOptions eb;
      eb.name = "b-ring";
      (void)co_await b_->ExportBuffer(b_recv_va_, bytes, std::move(eb));
      ImportOptions wait;
      wait.wait = true;
      b_to_a_ = (co_await b_->ImportBuffer(0, "a-ring", wait)).value();
      ready.fetch_add(1, std::memory_order_relaxed);
    };
    sim().Spawn(setup_a());
    sim_b().Spawn(setup_b());
    if (!cluster().DriveUntil(
            [&] { return ready.load(std::memory_order_relaxed) == 2; })) {
      std::fprintf(stderr, "fixture setup deadlocked\n");
      std::abort();
    }
  }

  Params params_;
  std::unique_ptr<ClusterRuntime> runtime_;
  std::unique_ptr<Endpoint> a_, b_;
  ImportedBuffer a_to_b_{}, b_to_a_{};
  mem::VirtAddr a_recv_va_ = 0, b_recv_va_ = 0, a_src_ = 0, b_src_ = 0;
  std::uint32_t buffer_bytes_ = 0;
};

// --- measurement drivers -------------------------------------------------

// Spin-waits (as the paper's programs do) until the byte at `va + offset`
// equals `expected`.
inline sim::Process SpinOnByte(sim::Simulator& sim, Endpoint& ep,
                               mem::VirtAddr va, std::uint8_t expected,
                               sim::Tick poll = 250) {
  for (;;) {
    std::uint8_t byte = 0;
    (void)ep.ReadBuffer(va, {&byte, 1});
    if (byte == expected) co_return;
    co_await sim.Delay(poll);
  }
}

// Classic ping-pong (§5.3: synchronous send, alternating traffic). Returns
// the one-way latency in ns through `result`.
struct PingPongResult {
  double one_way_us = 0;
  double bandwidth_mb_s = 0;
};

inline void RunPingPong(TwoNodeFixture& fx, std::uint32_t len, int iters,
                        PingPongResult& result) {
  bool done = false;
  // Sequence byte at the end of the message marks arrival (the last byte
  // of a message is written last: chunks and scatter pieces are in order).
  auto ping = [&]() -> sim::Process {
    const mem::VirtAddr flag = fx.a_recv_va() + len - 1;
    sim::Tick t0 = fx.sim().now();
    for (int i = 1; i <= iters; ++i) {
      const auto seq = static_cast<std::uint8_t>(i & 0xFF);
      std::vector<std::uint8_t> payload(len, seq);
      (void)fx.a().WriteBuffer(fx.a_src(), payload);
      Status s = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
      if (!s.ok()) std::abort();
      co_await SpinOnByte(fx.sim(), fx.a(), flag, seq);
    }
    const sim::Tick elapsed = fx.sim().now() - t0;
    result.one_way_us =
        sim::ToMicroseconds(elapsed) / (2.0 * static_cast<double>(iters));
    result.bandwidth_mb_s = sim::MBPerSec(
        static_cast<std::uint64_t>(len) * static_cast<std::uint64_t>(iters) * 2,
        elapsed);
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    const mem::VirtAddr flag = fx.b_recv_va() + len - 1;
    for (int i = 1; i <= iters; ++i) {
      const auto seq = static_cast<std::uint8_t>(i & 0xFF);
      co_await SpinOnByte(fx.sim_b(), fx.b(), flag, seq);
      std::vector<std::uint8_t> payload(len, seq);
      (void)fx.b().WriteBuffer(fx.b_src(), payload);
      Status s = co_await fx.b().SendMsg(fx.b_src(), fx.b_to_a(), len);
      if (!s.ok()) std::abort();
    }
  };
  fx.sim_b().Spawn(pong());
  fx.sim().Spawn(ping());
  fx.RunUntilDone(done);
}

// Bidirectional traffic (§5.3): both nodes send simultaneously, wait for
// the peer's message, then iterate. Returns the TOTAL bandwidth of both
// senders, as in Figure 3.
inline double RunBidirectional(TwoNodeFixture& fx, std::uint32_t len, int iters) {
  std::atomic<int> finished{0};  // the two sides run on different shards
  bool done = false;
  auto side = [&](sim::Simulator& sim, Endpoint& ep, mem::VirtAddr src,
                  ProxyAddr dst, mem::VirtAddr recv_va) -> sim::Process {
    const mem::VirtAddr flag = recv_va + len - 1;
    for (int i = 1; i <= iters; ++i) {
      const auto seq = static_cast<std::uint8_t>(i & 0xFF);
      std::vector<std::uint8_t> payload(len, seq);
      (void)ep.WriteBuffer(src, payload);
      Status s = co_await ep.SendMsg(src, dst, len);
      if (!s.ok()) std::abort();
      co_await SpinOnByte(sim, ep, flag, seq);
    }
    if (finished.fetch_add(1, std::memory_order_relaxed) + 1 == 2) done = true;
  };
  const sim::Tick t0 = fx.sim().now();
  fx.sim().Spawn(side(fx.sim(), fx.a(), fx.a_src(), fx.a_to_b(), fx.a_recv_va()));
  fx.sim_b().Spawn(side(fx.sim_b(), fx.b(), fx.b_src(), fx.b_to_a(), fx.b_recv_va()));
  fx.RunUntilDone(done);
  const sim::Tick elapsed = fx.sim().now() - t0;
  return sim::MBPerSec(
      2ull * static_cast<std::uint64_t>(len) * static_cast<std::uint64_t>(iters),
      elapsed);
}

// Send overhead (§5.3, Figure 4): time until SendMsg / SendMsgAsync
// returns, one-way traffic to an idle receiver.
struct OverheadResult {
  double sync_us = 0;
  double async_us = 0;
};

inline void RunSendOverhead(TwoNodeFixture& fx, std::uint32_t len, int iters,
                            OverheadResult& result) {
  bool done = false;
  auto prog = [&]() -> sim::Process {
    std::vector<std::uint8_t> payload(len, 0x5A);
    (void)fx.a().WriteBuffer(fx.a_src(), payload);

    // Warm the TLB so overhead excludes miss service (§5.3: "we make sure
    // that it is present in the LANai software TLB").
    Status warm = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
    if (!warm.ok()) std::abort();

    sim::Tick sync_total = 0;
    for (int i = 0; i < iters; ++i) {
      const sim::Tick t0 = fx.sim().now();
      Status s = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
      sync_total += fx.sim().now() - t0;
      if (!s.ok()) std::abort();
      co_await fx.sim().Delay(sim::Milliseconds(1));  // let the NIC drain
    }

    sim::Tick async_total = 0;
    std::vector<vmmc_core::SendHandle> handles;
    for (int i = 0; i < iters; ++i) {
      const sim::Tick t0 = fx.sim().now();
      auto h = co_await fx.a().SendMsgAsync(fx.a_src(), fx.a_to_b(), len);
      async_total += fx.sim().now() - t0;
      if (!h.ok()) std::abort();
      (void)co_await fx.a().WaitSend(h.value());
      co_await fx.sim().Delay(sim::Milliseconds(1));
    }

    result.sync_us = sim::ToMicroseconds(sync_total) / iters;
    result.async_us = sim::ToMicroseconds(async_total) / iters;
    done = true;
  };
  fx.sim().Spawn(prog());
  fx.RunUntilDone(done);
}

}  // namespace vmmc::bench
