// Extension bench: SHRIMP's automatic update vs deliberate update (§6
// footnote). Automatic update snoops stores off the memory bus — zero send
// instructions, no EISA fetch — which wins for small, fine-grained updates;
// deliberate update amortizes better for bulk transfers.
#include <cstdio>

#include "vmmc/compat/shrimp.h"
#include "vmmc/util/stats.h"

namespace {

using namespace vmmc;
using compat::ShrimpEndpoint;
using compat::ShrimpSystem;

struct Numbers {
  double deliberate_us = 0;  // one-way, store + send + delivery
  double automatic_us = 0;
};

Numbers Measure(std::uint32_t len) {
  Numbers out;
  sim::Simulator sim;
  const Params& params = DefaultParams();
  ShrimpSystem system(sim, params, 2);
  ShrimpEndpoint recv(system, 1, "recv");
  ShrimpEndpoint send(system, 0, "send");

  auto rbuf = recv.AllocBuffer(64 * 1024).value();
  (void)recv.ExportBuffer(rbuf, 64 * 1024, "target");
  auto proxy = send.ImportBuffer(1, "target").value();
  auto local = send.AllocBuffer(64 * 1024).value();
  (void)send.MapAutomaticUpdate(local, 64 * 1024, proxy);

  auto delivered = [&](std::uint64_t want) {
    return system.nic(1).stats().bytes_received >= want;
  };

  std::uint64_t base = 0;
  // Deliberate: store into an unmapped staging buffer, then send.
  auto staging = send.AllocBuffer(64 * 1024).value();
  bool phase_done = false;
  auto deliberate = [&]() -> sim::Process {
    std::vector<std::uint8_t> data(len, 0x11);
    (void)send.memory().Write(staging, data);
    // Warm up: first use pays the one-time page-pin syscall.
    Status warm = co_await send.SendMsg(staging, proxy, len);
    if (!warm.ok()) std::abort();
    co_await sim.Delay(sim::Milliseconds(5));  // let the warm-up drain
    base = system.nic(1).stats().bytes_received;
    const sim::Tick t0 = sim.now();
    Status s = co_await send.SendMsg(staging, proxy, len);
    if (!s.ok()) std::abort();
    while (!delivered(base + len)) co_await sim.Delay(200);
    out.deliberate_us = sim::ToMicroseconds(sim.now() - t0);
    phase_done = true;
  };
  sim.Spawn(deliberate());
  sim.RunUntil([&] { return phase_done; });

  phase_done = false;
  auto automatic = [&]() -> sim::Process {
    std::vector<std::uint8_t> data(len, 0x22);
    base = system.nic(1).stats().bytes_received;
    const sim::Tick t0 = sim.now();
    Status s = co_await send.AutoWrite(local, data);
    if (!s.ok()) std::abort();
    while (!delivered(base + len)) co_await sim.Delay(200);
    out.automatic_us = sim::ToMicroseconds(sim.now() - t0);
    phase_done = true;
  };
  sim.Spawn(automatic());
  sim.RunUntil([&] { return phase_done; });
  return out;
}

}  // namespace

int main() {
  std::printf("Extension: SHRIMP automatic vs deliberate update (section 6 "
              "footnote)\n");
  std::printf("(one-way store-to-delivery time; automatic update snoops the "
              "memory bus)\n\n");
  Table table({"bytes", "deliberate (us)", "automatic (us)"});
  for (std::uint32_t len : {4u, 32u, 128u, 512u, 2048u, 8192u, 32768u}) {
    Numbers n = Measure(len);
    table.AddRow({FormatSize(len), FormatDouble(n.deliberate_us, 1),
                  FormatDouble(n.automatic_us, 1)});
  }
  table.Print();
  return 0;
}
