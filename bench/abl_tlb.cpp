// Ablation A1: the cost of software-TLB misses (§4.5). A long send from
// cold pages interrupts the host; the driver pins and inserts up to 32
// translations per interrupt. This bench compares cold vs warm sends and
// sweeps the fill batch size the paper fixes at 32.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;

struct ColdWarm {
  double cold_us = 0;
  double warm_us = 0;
  std::uint64_t interrupts = 0;
};

ColdWarm MeasureColdWarm(std::uint32_t fill_batch, std::uint32_t len) {
  Params params = DefaultParams();
  params.vmmc.tlb_fill_batch = fill_batch;
  TwoNodeFixture fx(params);
  ColdWarm out;
  bool done = false;
  auto prog = [&]() -> sim::Process {
    std::vector<std::uint8_t> payload(len, 1);
    (void)fx.a().WriteBuffer(fx.a_src(), payload);
    sim::Tick t0 = fx.sim().now();
    Status s = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
    out.cold_us = sim::ToMicroseconds(fx.sim().now() - t0);
    if (!s.ok()) std::abort();
    co_await fx.sim().Delay(sim::Milliseconds(2));
    t0 = fx.sim().now();
    s = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
    out.warm_us = sim::ToMicroseconds(fx.sim().now() - t0);
    if (!s.ok()) std::abort();
    out.interrupts = fx.cluster().node(0).lcp->stats().tlb_miss_interrupts;
    done = true;
  };
  fx.sim().Spawn(prog());
  fx.RunUntilDone(done);
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: software-TLB miss service (section 4.5)\n");
  std::printf("(256 KB send, cold vs warm translations; paper fills 32/interrupt)\n\n");

  Table table({"fill batch", "cold send (us)", "warm send (us)", "interrupts"});
  for (std::uint32_t batch : {1u, 4u, 8u, 16u, 32u, 64u}) {
    ColdWarm r = MeasureColdWarm(batch, 256 * 1024);
    table.AddRow({std::to_string(batch), FormatDouble(r.cold_us, 1),
                  FormatDouble(r.warm_us, 1), std::to_string(r.interrupts)});
  }
  table.Print();
  return 0;
}
