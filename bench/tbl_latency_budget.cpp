// §5.2 "Hardware Limits" — the latency budget table: measured PIO costs,
// the cost of posting a send request, the LANai-side costs and the
// receive-side costs, plus the resulting hardware-minimum latency and the
// measured VMMC one-word latency.
//
// Paper anchors: PIO read 0.422 us / write 0.121 us; posting a send
// >= 0.5 us (writes only); pickup + packet prep + net DMA + receive ~2.5 us;
// receive-side arbitration + host DMA ~2 us; minimum ~5 us; measured 9.8 us.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  const Params& p = DefaultParams();

  std::printf("Latency budget (section 5.2)\n\n");
  Table table({"component", "model (us)", "paper (us)"});
  table.AddRow({"PIO read over PCI", FormatDouble(sim::ToMicroseconds(p.pci.pio_read), 3),
                "0.422"});
  table.AddRow({"PIO write over PCI", FormatDouble(sim::ToMicroseconds(p.pci.pio_write), 3),
                "0.121"});
  const double post = sim::ToMicroseconds(5 * p.pci.pio_write);
  table.AddRow({"post send request (writes only)", FormatDouble(post, 2), ">= 0.5"});
  const double send_side = sim::ToMicroseconds(
      p.lanai.pickup_base + p.lanai.pickup_per_process + p.lanai.short_copy_base +
      p.lanai.short_copy_per_word + p.lanai.header_prep + p.lanai.net_dma_init);
  table.AddRow({"pickup + packet prep + net DMA", FormatDouble(send_side, 2),
                "~2.5"});
  const double recv_side =
      sim::ToMicroseconds(p.lanai.recv_process + p.pci.dma_init) + 0.03;
  table.AddRow({"receive: arbitrate + host DMA", FormatDouble(recv_side, 2), "~2"});
  table.AddRow({"hardware minimum (sum)",
                FormatDouble(post + send_side + recv_side, 2), "~5"});

  // Measured one-word user-to-user latency.
  TwoNodeFixture fx;

  // Where the time actually goes, from the metrics registry: snapshot the
  // relevant counters, run the measurement, and charge the deltas to the
  // ping-pong messages. Counter totals cover both nodes and directions, so
  // dividing by the number of one-way messages gives per-message budgets.
  obs::Registry& m = fx.sim().metrics();
  struct Snap {
    double pio, lanai, host_dma, net_tx, wire_ser, wire_blocked, msgs;
  };
  auto snap = [&m]() -> Snap {
    return {static_cast<double>(m.SumCounters("node", "host.pio_post_ns")),
            static_cast<double>(m.SumCounters("node", "lanai.exec_ns")),
            static_cast<double>(m.SumCounters("node", "dma.host.busy_ns")),
            static_cast<double>(m.SumCounters("node", "dma.nettx.busy_ns")),
            static_cast<double>(m.SumCounters("fabric.link", "ser_ns")),
            static_cast<double>(m.SumCounters("fabric.link", "blocked_ns")),
            static_cast<double>(m.SumCounters("node", "lcp.sends"))};
  };
  const Snap before = snap();
  PingPongResult r;
  RunPingPong(fx, 4, 400, r);
  const Snap after = snap();
  table.AddRow({"measured one-word VMMC latency", FormatDouble(r.one_way_us, 2),
                "9.8"});
  table.Print();

  const double msgs = after.msgs - before.msgs;
  auto per_msg_us = [msgs](double b, double a) {
    return (a - b) / msgs / 1000.0;
  };
  const double pio = per_msg_us(before.pio, after.pio);
  const double lanai = per_msg_us(before.lanai, after.lanai);
  const double host_dma = per_msg_us(before.host_dma, after.host_dma);
  const double net_tx = per_msg_us(before.net_tx, after.net_tx);
  const double wire = per_msg_us(before.wire_ser, after.wire_ser) +
                      per_msg_us(before.wire_blocked, after.wire_blocked);
  const double accounted = pio + lanai + host_dma + net_tx + wire;

  std::printf("\nMeasured decomposition (metrics registry, per message, %.0f "
              "messages)\n\n", msgs);
  Table budget({"component", "us/msg", "share"});
  auto share = [&](double v) {
    return FormatDouble(100.0 * v / r.one_way_us, 1) + "%";
  };
  budget.AddRow({"host: post via PIO", FormatDouble(pio, 2), share(pio)});
  budget.AddRow({"LANai: LCP execution", FormatDouble(lanai, 2), share(lanai)});
  budget.AddRow({"host DMA engine busy", FormatDouble(host_dma, 2),
                 share(host_dma)});
  budget.AddRow({"net-tx DMA engine busy", FormatDouble(net_tx, 2),
                 share(net_tx)});
  budget.AddRow({"wire: serialization + blocking", FormatDouble(wire, 2),
                 share(wire)});
  budget.AddRow({"other (latencies, spin, queueing)",
                 FormatDouble(r.one_way_us - accounted, 2),
                 share(r.one_way_us - accounted)});
  budget.AddRow({"one-way latency", FormatDouble(r.one_way_us, 2), "100.0%"});
  budget.Print();
  return 0;
}
