// §5.2 "Hardware Limits" — the latency budget table: measured PIO costs,
// the cost of posting a send request, the LANai-side costs and the
// receive-side costs, plus the resulting hardware-minimum latency and the
// measured VMMC one-word latency.
//
// Paper anchors: PIO read 0.422 us / write 0.121 us; posting a send
// >= 0.5 us (writes only); pickup + packet prep + net DMA + receive ~2.5 us;
// receive-side arbitration + host DMA ~2 us; minimum ~5 us; measured 9.8 us.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  const Params& p = DefaultParams();

  std::printf("Latency budget (section 5.2)\n\n");
  Table table({"component", "model (us)", "paper (us)"});
  table.AddRow({"PIO read over PCI", FormatDouble(sim::ToMicroseconds(p.pci.pio_read), 3),
                "0.422"});
  table.AddRow({"PIO write over PCI", FormatDouble(sim::ToMicroseconds(p.pci.pio_write), 3),
                "0.121"});
  const double post = sim::ToMicroseconds(5 * p.pci.pio_write);
  table.AddRow({"post send request (writes only)", FormatDouble(post, 2), ">= 0.5"});
  const double send_side = sim::ToMicroseconds(
      p.lanai.pickup_base + p.lanai.pickup_per_process + p.lanai.short_copy_base +
      p.lanai.short_copy_per_word + p.lanai.header_prep + p.lanai.net_dma_init);
  table.AddRow({"pickup + packet prep + net DMA", FormatDouble(send_side, 2),
                "~2.5"});
  const double recv_side =
      sim::ToMicroseconds(p.lanai.recv_process + p.pci.dma_init) + 0.03;
  table.AddRow({"receive: arbitrate + host DMA", FormatDouble(recv_side, 2), "~2"});
  table.AddRow({"hardware minimum (sum)",
                FormatDouble(post + send_side + recv_side, 2), "~5"});

  // Measured one-word user-to-user latency.
  TwoNodeFixture fx;
  PingPongResult r;
  RunPingPong(fx, 4, 400, r);
  table.AddRow({"measured one-word VMMC latency", FormatDouble(r.one_way_us, 2),
                "9.8"});
  table.Print();
  return 0;
}
