// Ablation A2: the short/long protocol threshold. §5.3 argues 128 bytes is
// the sweet spot: lowering it to 64 would sharply raise synchronous send
// overhead for 64-128 B messages (the sender would wait for a host DMA)
// while barely changing latency; raising it is barred by LANai SRAM size.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Ablation: short-send threshold (section 5.3)\n");
  std::printf("(sync overhead and latency of a 96 B message vs threshold)\n\n");

  Table table({"threshold", "sync overhead 96B (us)", "latency 96B (us)",
               "SRAM/process (B)"});
  for (std::uint32_t threshold : {32u, 64u, 128u, 256u, 512u}) {
    Params params = DefaultParams();
    params.vmmc.short_send_max = threshold;
    OverheadResult oh;
    {
      TwoNodeFixture fx(params);
      RunSendOverhead(fx, 96, 50, oh);
    }
    PingPongResult pp;
    {
      TwoNodeFixture fx(params);
      RunPingPong(fx, 96, 100, pp);
    }
    // SRAM cost of one process's send queue grows with the threshold.
    const std::uint32_t sram = params.vmmc.send_queue_entries * (16 + threshold) +
                               params.vmmc.outgoing_pt_pages * 4 +
                               params.vmmc.tlb_total_entries * 8;
    table.AddRow({FormatSize(threshold), FormatDouble(oh.sync_us, 2),
                  FormatDouble(pp.one_way_us, 2), std::to_string(sram)});
  }
  table.Print();
  return 0;
}
