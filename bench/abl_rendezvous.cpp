// Ablation A8: the point-to-point eager/rendezvous crossover and the
// pin-down (registration) cache.
//
// Part 1 sweeps the message size with the protocol forced each way
// (eager_max = 64 KB forces copy-through, eager_max = 0 forces reader-pull
// rendezvous) and reports the steady-state one-way latency of a channel
// ping-pong. The crossover justifies P2pParams::eager_max: below it the
// two host bcopies are cheaper than the rendezvous control round-trips
// (RTS + read request + fin); above it zero-copy wins and keeps winning
// by a growing margin.
//
// Part 2 repeats a 64 KB rendezvous send from the same source buffer with
// the registration cache on and off. Warm sends skip the pin-down syscall
// and page walk (§4.5 — the paper pins the receive buffer once at export
// time; the cache buys the same amortization for one-sided sources), which
// shows up directly as lower host send overhead.
#include <cstdio>

#include "bench_common.h"
#include "vmmc/vmmc/p2p.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;
using vmmc_core::P2pChannel;

struct ChannelPair {
  std::unique_ptr<P2pChannel> a, b;
};

// Builds a channel pair between fx.a() and fx.b(). Serial fixture only:
// both setup coroutines run on the one simulator.
ChannelPair MakeChannels(TwoNodeFixture& fx, const P2pParams& p) {
  ChannelPair out;
  int ready = 0;
  auto make = [&fx, &ready, &p](vmmc_core::Endpoint& ep, int peer,
                                std::unique_ptr<P2pChannel>* dst)
      -> sim::Process {
    auto c = co_await P2pChannel::Create(ep, peer, "abl", p);
    if (!c.ok()) {
      std::fprintf(stderr, "channel failed: %s\n",
                   c.status().ToString().c_str());
      std::abort();
    }
    *dst = std::move(c).value();
    ++ready;
  };
  fx.sim().Spawn(make(fx.a(), 1, &out.a));
  fx.sim().Spawn(make(fx.b(), 0, &out.b));
  if (!fx.cluster().DriveUntil([&ready] { return ready == 2; })) {
    std::fprintf(stderr, "channel setup deadlocked\n");
    std::abort();
  }
  return out;
}

// Steady-state one-way channel latency: one warm round (registrations,
// software TLB) outside the timed window, then `iters` timed rounds.
double OneWayUs(TwoNodeFixture& fx, ChannelPair& ch, std::uint32_t len,
                int iters) {
  bool done = false;
  double us = 0;
  auto ping = [&]() -> sim::Process {
    for (int i = 0; i < iters + 1; ++i) {
      if (i == 1) us = -sim::ToMicroseconds(fx.sim().now());
      Status s = co_await ch.a->Send(fx.a_src(), len);
      if (!s.ok()) std::abort();
      auto n = co_await ch.a->RecvInto(fx.a_recv_va(), len);
      if (!n.ok()) std::abort();
    }
    us = (us + sim::ToMicroseconds(fx.sim().now())) / (2.0 * iters);
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 0; i < iters + 1; ++i) {
      auto n = co_await ch.b->RecvInto(fx.b_recv_va(), len);
      if (!n.ok()) std::abort();
      Status s = co_await ch.b->Send(fx.b_src(), len);
      if (!s.ok()) std::abort();
    }
  };
  fx.sim().Spawn(pong());
  fx.sim().Spawn(ping());
  fx.RunUntilDone(done);
  return us;
}

struct RegResult {
  double send_us = 0;  // mean host overhead of Send() after the warm-up
  std::uint64_t hits = 0, misses = 0, evictions = 0;
};

// Repeated 64 KB rendezvous sends from one source buffer; Send() returns
// once the RTS is posted, so its duration is pure host overhead
// (registration + descriptor build), not wire time. Flush() between sends
// keeps exactly one message in flight and retires the registration.
RegResult RunRegAblation(bool cache_enabled) {
  Params params = DefaultParams();
  params.vmmc.regcache.enabled = cache_enabled;
  TwoNodeFixture fx(params);
  ChannelPair ch = MakeChannels(fx, params.vmmc.p2p);
  constexpr std::uint32_t kLen = 64 * 1024;
  constexpr int kIters = 50;

  RegResult out;
  bool done = false;
  auto sender = [&]() -> sim::Process {
    sim::Tick timed = 0;
    for (int i = 0; i < kIters + 1; ++i) {
      const sim::Tick t0 = fx.sim().now();
      Status s = co_await ch.a->Send(fx.a_src(), kLen);
      if (!s.ok()) std::abort();
      if (i > 0) timed += fx.sim().now() - t0;  // round 0 warms the cache
      Status f = co_await ch.a->Flush();
      if (!f.ok()) std::abort();
    }
    out.send_us = sim::ToMicroseconds(timed) / kIters;
    done = true;
  };
  auto receiver = [&]() -> sim::Process {
    for (int i = 0; i < kIters + 1; ++i) {
      auto n = co_await ch.b->RecvInto(fx.b_recv_va(), kLen);
      if (!n.ok()) std::abort();
    }
  };
  fx.sim().Spawn(receiver());
  fx.sim().Spawn(sender());
  fx.RunUntilDone(done);

  const obs::Registry& m = fx.sim().metrics();
  out.hits = m.CounterValue("node0.regcache.hit");
  out.misses = m.CounterValue("node0.regcache.miss");
  out.evictions = m.CounterValue("node0.regcache.evict");
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation: eager/rendezvous crossover and pin-down cache\n");
  std::printf("(steady-state channel ping-pong, warm registration cache)\n\n");

  Table table({"size", "eager (us)", "rendezvous (us)", "winner"});
  std::uint32_t crossover = 0;
  for (std::uint32_t len : {256u, 384u, 512u, 1024u, 2048u, 4096u, 8192u,
                            16384u, 65536u}) {
    Params eager_params = DefaultParams();
    eager_params.vmmc.p2p.eager_max = 64 * 1024;  // force copy-through
    Params rdv_params = DefaultParams();
    rdv_params.vmmc.p2p.eager_max = 0;  // force rendezvous
    double eager_us = 0, rdv_us = 0;
    {
      TwoNodeFixture fx(eager_params);
      ChannelPair ch = MakeChannels(fx, eager_params.vmmc.p2p);
      eager_us = OneWayUs(fx, ch, len, 50);
    }
    {
      TwoNodeFixture fx(rdv_params);
      ChannelPair ch = MakeChannels(fx, rdv_params.vmmc.p2p);
      rdv_us = OneWayUs(fx, ch, len, 50);
    }
    const bool rdv_wins = rdv_us < eager_us;
    if (rdv_wins && crossover == 0) crossover = len;
    table.AddRow({FormatSize(len), FormatDouble(eager_us, 2),
                  FormatDouble(rdv_us, 2),
                  rdv_wins ? "rendezvous" : "eager"});
  }
  table.Print();
  if (crossover != 0) {
    std::printf("\nfirst size where rendezvous wins: %s "
                "(P2pParams::eager_max should sit just below)\n",
                FormatSize(crossover).c_str());
  }

  std::printf("\nPin-down cache: repeated 64 KB rendezvous sends, "
              "same source buffer\n\n");
  const RegResult warm = RunRegAblation(/*cache_enabled=*/true);
  const RegResult cold = RunRegAblation(/*cache_enabled=*/false);
  Table reg({"regcache", "send overhead (us)", "hits", "misses", "evictions"});
  reg.AddRow({"on", FormatDouble(warm.send_us, 2), std::to_string(warm.hits),
              std::to_string(warm.misses), std::to_string(warm.evictions)});
  reg.AddRow({"off", FormatDouble(cold.send_us, 2), std::to_string(cold.hits),
              std::to_string(cold.misses), std::to_string(cold.evictions)});
  reg.Print();
  if (cold.send_us > 0) {
    std::printf("\nwarm sends cost %.0f%% of cold-pin sends\n",
                100.0 * warm.send_us / cold.send_us);
  }
  return 0;
}
