// Extension bench: multiple sender processes sharing one interface.
//
// The paper's key protection claim (§7): "VMMC provides protection between
// senders on one node, as each sender has its own send queue. This design
// works well on both uniprocessor and SMP nodes." The cost (§6): "Picking
// up a send request in Myrinet requires scanning send queues of all
// possible senders." This bench shows the aggregate bandwidth and fairness
// as senders are added, plus the per-process scan cost in small-message
// latency.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;

struct MultiResult {
  double aggregate_mb_s = 0;
  double fairness = 0;  // min/max of per-sender bytes
  double small_latency_us = 0;
};

MultiResult Measure(int senders) {
  MultiResult out;
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) std::abort();

  auto recv = cluster.OpenEndpoint(1, "receiver");
  if (!recv.ok()) std::abort();
  std::vector<std::unique_ptr<vmmc_core::Endpoint>> eps;
  for (int s = 0; s < senders; ++s) {
    auto ep = cluster.OpenEndpoint(0, "sender" + std::to_string(s));
    if (!ep.ok()) std::abort();
    eps.push_back(std::move(ep).value());
  }

  // One 512 KB exported region per sender.
  const std::uint32_t kRegion = 512 * 1024;
  int ready = 0;
  auto setup = [&](int s) -> sim::Process {
    auto buf = recv.value()->AllocBuffer(kRegion);
    vmmc_core::ExportOptions opts;
    opts.name = "sink-" + std::to_string(s);
    auto id = co_await recv.value()->ExportBuffer(buf.value(), kRegion,
                                                  std::move(opts));
    if (!id.ok()) std::abort();
    ++ready;
  };
  for (int s = 0; s < senders; ++s) sim.Spawn(setup(s));
  sim.RunUntil([&] { return ready == senders; });

  // Streaming phase: every sender pushes 4 MB of 64 KB messages.
  const std::uint64_t kTotal = 4ull << 20;
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(senders), 0);
  int finished = 0;
  sim::Tick t0 = sim.now();
  auto stream = [&](int s) -> sim::Process {
    vmmc_core::Endpoint& ep = *eps[static_cast<std::size_t>(s)];
    vmmc_core::ImportOptions wait;
    wait.wait = true;
    auto imp = co_await ep.ImportBuffer(1, "sink-" + std::to_string(s), wait);
    if (!imp.ok()) std::abort();
    auto src = ep.AllocBuffer(64 * 1024);
    while (sent[static_cast<std::size_t>(s)] < kTotal) {
      Status st = co_await ep.SendMsg(src.value(), imp.value().proxy_base,
                                      64 * 1024);
      if (!st.ok()) std::abort();
      sent[static_cast<std::size_t>(s)] += 64 * 1024;
    }
    ++finished;
  };
  for (int s = 0; s < senders; ++s) sim.Spawn(stream(s));
  sim.RunUntil([&] { return finished == senders; });
  out.aggregate_mb_s =
      sim::MBPerSec(kTotal * static_cast<std::uint64_t>(senders), sim.now() - t0);

  // Fairness snapshot midway: rerun with a deadline and compare progress.
  {
    sim::Simulator sim2;
    vmmc_core::Cluster cluster2(sim2, params, options);
    if (!cluster2.Boot().ok()) std::abort();
    auto recv2 = cluster2.OpenEndpoint(1, "receiver");
    std::vector<std::unique_ptr<vmmc_core::Endpoint>> eps2;
    for (int s = 0; s < senders; ++s) {
      eps2.push_back(std::move(cluster2.OpenEndpoint(0, "s" + std::to_string(s))).value());
    }
    int ready2 = 0;
    auto setup2 = [&](int s) -> sim::Process {
      auto buf = recv2.value()->AllocBuffer(kRegion);
      vmmc_core::ExportOptions opts;
      opts.name = "sink-" + std::to_string(s);
      auto id = co_await recv2.value()->ExportBuffer(buf.value(), kRegion,
                                                     std::move(opts));
      if (!id.ok()) std::abort();
      ++ready2;
    };
    for (int s = 0; s < senders; ++s) sim2.Spawn(setup2(s));
    sim2.RunUntil([&] { return ready2 == senders; });
    std::vector<std::uint64_t> progress(static_cast<std::size_t>(senders), 0);
    auto stream2 = [&](int s) -> sim::Process {
      vmmc_core::Endpoint& ep = *eps2[static_cast<std::size_t>(s)];
      vmmc_core::ImportOptions wait;
      wait.wait = true;
      auto imp = co_await ep.ImportBuffer(1, "sink-" + std::to_string(s), wait);
      auto src = ep.AllocBuffer(64 * 1024);
      for (;;) {
        Status st = co_await ep.SendMsg(src.value(), imp.value().proxy_base,
                                        64 * 1024);
        if (!st.ok()) std::abort();
        progress[static_cast<std::size_t>(s)] += 64 * 1024;
      }
    };
    for (int s = 0; s < senders; ++s) sim2.Spawn(stream2(s));
    sim2.RunUntilTime(sim2.now() + 50 * sim::kMillisecond);
    std::uint64_t lo = UINT64_MAX, hi = 0;
    for (auto p : progress) {
      lo = std::min(lo, p);
      hi = std::max(hi, p);
    }
    out.fairness = hi == 0 ? 0.0 : static_cast<double>(lo) / static_cast<double>(hi);
  }

  // Small-message latency with the queues of the other senders registered
  // (the per-process scan cost).
  {
    TwoNodeFixture fx;
    // Register extra idle processes so the scan is longer.
    std::vector<std::unique_ptr<vmmc_core::Endpoint>> idle;
    for (int s = 1; s < senders; ++s) {
      idle.push_back(
          std::move(fx.cluster().OpenEndpoint(0, "idle" + std::to_string(s))).value());
    }
    PingPongResult r;
    RunPingPong(fx, 4, 100, r);
    out.small_latency_us = r.one_way_us;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Extension: multiple sender processes per interface (sections 6/7)\n\n");
  Table table({"senders", "aggregate MB/s", "fairness (min/max)",
               "1-word latency (us)"});
  for (int senders : {1, 2, 4, 7}) {
    MultiResult r = Measure(senders);
    table.AddRow({std::to_string(senders), FormatDouble(r.aggregate_mb_s, 1),
                  FormatDouble(r.fairness, 2), FormatDouble(r.small_latency_us, 2)});
  }
  table.Print();
  std::printf("\n(each registered process adds SRAM structures and queue-scan "
              "time; fairness comes from round-robin pickup)\n");
  return 0;
}
