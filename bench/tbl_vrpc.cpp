// §5.4 vRPC: SunRPC over VMMC.
//
// Paper anchors: 66 us round-trip latency on Myrinet (vs 33 us on SHRIMP,
// where the one-way wire time is lower); bandwidth reduced below peak VMMC
// by one ~50 MB/s copy on every receive (digits for the absolute number
// were lost in the source text — see DESIGN.md); dropping SunRPC
// compatibility recovers bandwidth close to raw VMMC ([2]).
#include <cstdio>

#include "bench_common.h"
#include "vmmc/vrpc/udp_transport.h"
#include "vmmc/vrpc/vmmc_transport.h"
#include "vmmc/vrpc/vrpc.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;
using namespace vmmc::vrpc;

constexpr std::uint32_t kProg = 0x20000000, kVers = 1, kProcNull = 0,
                        kProcWrite = 1;

void RegisterProcs(RpcServer& server, sim::Simulator& sim) {
  server.Register(kProg, kVers, kProcNull,
                  [&sim](std::span<const std::uint8_t>)
                      -> sim::Task<Result<std::vector<std::uint8_t>>> {
                    co_await sim.Delay(0);
                    co_return std::vector<std::uint8_t>{};
                  });
  // Bulk write: big arguments, one-word result — the shape bandwidth is
  // quoted for (args stream one way, a 4-byte count comes back).
  server.Register(kProg, kVers, kProcWrite,
                  [&sim](std::span<const std::uint8_t> args)
                      -> sim::Task<Result<std::vector<std::uint8_t>>> {
                    co_await sim.Delay(0);
                    XdrWriter w;
                    w.PutU32(static_cast<std::uint32_t>(args.size()));
                    co_return w.Take();
                  });
}

struct VrpcNumbers {
  double null_rt_us = 0;
  double bulk_bw_mb_s = 0;  // argument-stream rate of back-to-back bulk writes
};

VrpcNumbers MeasureVmmcRpc(bool compat) {
  VrpcNumbers out;
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  options.num_nodes = 2;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) std::abort();
  RpcServer server(params);
  RegisterProcs(server, sim);

  bool done = false;
  auto prog = [&]() -> sim::Process {
    auto st = co_await VmmcServerTransport::Create(cluster, 1, "bench", 1, compat);
    if (!st.ok()) std::abort();
    server.Attach(sim, st.value().get());
    auto ct = co_await VmmcClientTransport::Connect(cluster, 0, 1, "bench", 0,
                                                     compat);
    if (!ct.ok()) std::abort();
    RpcClient client(params, sim, std::move(ct).value(), /*fast_path=*/!compat);

    // Null RPC round trip.
    const int kIters = 64;
    sim::Tick t0 = sim.now();
    for (int i = 0; i < kIters; ++i) {
      auto r = co_await client.Call(kProg, kVers, kProcNull, {});
      if (!r.ok()) std::abort();
    }
    out.null_rt_us = sim::ToMicroseconds(sim.now() - t0) / kIters;

    // Bulk write: 64 KB of arguments per call, tiny reply.
    const std::uint32_t kLen = 64 * 1024;
    const int kBulk = 16;
    t0 = sim.now();
    for (int i = 0; i < kBulk; ++i) {
      auto r = co_await client.Call(kProg, kVers, kProcWrite,
                                    std::vector<std::uint8_t>(kLen, 0x42));
      if (!r.ok()) std::abort();
    }
    out.bulk_bw_mb_s = sim::MBPerSec(static_cast<std::uint64_t>(kLen) * kBulk,
                                     sim.now() - t0);
    done = true;
    for (;;) co_await sim.Delay(sim::Seconds(1));
  };
  sim.Spawn(prog());
  if (!sim.RunUntil([&] { return done; }, 500'000'000)) std::abort();
  return out;
}

double MeasureUdpNullRt() {
  sim::Simulator sim;
  Params params;
  ethernet::Segment segment(sim, params.ethernet);
  ethernet::Interface& server_if = segment.AddInterface(1);
  ethernet::Interface& client_if = segment.AddInterface(0);
  RpcServer server(params);
  RegisterProcs(server, sim);
  UdpServerTransport st(params, sim, server_if);
  server.Attach(sim, &st);

  bool done = false;
  double rt = 0;
  auto prog = [&]() -> sim::Process {
    RpcClient client(params, sim,
                     std::make_unique<UdpClientTransport>(params, sim, client_if, 1));
    const int kIters = 16;
    const sim::Tick t0 = sim.now();
    for (int i = 0; i < kIters; ++i) {
      auto r = co_await client.Call(kProg, kVers, kProcNull, {});
      if (!r.ok()) std::abort();
    }
    rt = sim::ToMicroseconds(sim.now() - t0) / kIters;
    done = true;
  };
  sim.Spawn(prog());
  if (!sim.RunUntil([&] { return done; }, 100'000'000)) std::abort();
  return rt;
}

}  // namespace

int main() {
  std::printf("Section 5.4: vRPC — SunRPC over VMMC\n\n");

  VrpcNumbers compat = MeasureVmmcRpc(/*compat=*/true);
  VrpcNumbers fast = MeasureVmmcRpc(/*compat=*/false);
  const double udp_rt = MeasureUdpNullRt();

  // The bcopy-imposed bandwidth ceiling the paper derives: one 50 MB/s
  // copy on every receive in series with the 108 MB/s transport.
  const double copy_ceiling = 1.0 / (1.0 / 108.4 + 1.0 / 50.0);

  Table table({"configuration", "null RPC RT (us)", "64K write bw (MB/s)",
               "paper"});
  table.AddRow({"vRPC over VMMC (SunRPC compatible)",
                FormatDouble(compat.null_rt_us, 1),
                FormatDouble(compat.bulk_bw_mb_s, 1),
                "66 us; bw cut by 50 MB/s copy"});
  table.AddRow({"RPC over VMMC (compatibility dropped)",
                FormatDouble(fast.null_rt_us, 1),
                FormatDouble(fast.bulk_bw_mb_s, 1),
                "close to raw VMMC [2]"});
  table.AddRow({"SunRPC over UDP/Ethernet", FormatDouble(udp_rt, 1), "-",
                "the old protocol"});
  table.Print();
  std::printf("\nanalytic copy ceiling 1/(1/108.4 + 1/50) = %.1f MB/s\n",
              copy_ceiling);
  std::printf("(SHRIMP vRPC round trip: 33 us — §6's lower one-way latency)\n");
  return 0;
}
