// O1: cost of the observability layer when it is compiled in but not
// collecting traces — the configuration every normal run uses. Compares
// wall-clock event throughput of a bare dispatch loop against the same
// loop doing a registry counter update and a disabled-tracer span per
// event. The acceptance bar is < 5% overhead.
#include <chrono>
#include <cstdio>

#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/util/stats.h"

namespace {

using Clock = std::chrono::steady_clock;
using vmmc::obs::Counter;
using vmmc::sim::Simulator;

constexpr int kEventsPerRun = 200000;
constexpr int kRepeats = 7;

double SecondsFor(void (*body)(Simulator&)) {
  // Best-of-N: the minimum is the least noise-contaminated estimate of the
  // work itself.
  double best = 1e100;
  for (int r = 0; r < kRepeats; ++r) {
    Simulator sim;
    const auto t0 = Clock::now();
    body(sim);
    const std::chrono::duration<double> dt = Clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

void Baseline(Simulator& sim) {
  for (int i = 0; i < kEventsPerRun; ++i) sim.At(i, [] {});
  sim.Run();
}

void Instrumented(Simulator& sim) {
  // What a hot path pays per event with tracing off: one bound-counter
  // increment and one Scope call on a disabled tracer.
  Counter& events = sim.metrics().GetCounter("bench.events");
  const int track = sim.tracer().RegisterTrack("bench");
  for (int i = 0; i < kEventsPerRun; ++i) {
    sim.At(i, [&sim, &events, track] {
      events.Inc();
      auto span = sim.tracer().Scope(track, "event");
    });
  }
  sim.Run();
}

}  // namespace

int main() {
  using vmmc::FormatDouble;
  using vmmc::Table;

  const double base_s = SecondsFor(Baseline);
  const double inst_s = SecondsFor(Instrumented);
  const double overhead = 100.0 * (inst_s - base_s) / base_s;

  std::printf("Observability overhead, tracing compiled in but disabled\n");
  std::printf("(%d events/run, best of %d runs)\n\n", kEventsPerRun, kRepeats);
  Table table({"configuration", "Mevents/s", "overhead"});
  table.AddRow({"bare dispatch",
                FormatDouble(kEventsPerRun / base_s / 1e6, 1), "-"});
  table.AddRow({"counter + disabled span per event",
                FormatDouble(kEventsPerRun / inst_s / 1e6, 1),
                FormatDouble(overhead, 1) + "%"});
  table.Print();
  std::printf("\n%s: overhead %s 5%% budget\n",
              overhead < 5.0 ? "PASS" : "FAIL",
              overhead < 5.0 ? "within" : "exceeds");
  return overhead < 5.0 ? 0 : 1;
}
