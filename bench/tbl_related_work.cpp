// §7 "Related work": VMMC against the other Myrinet message layers on the
// same (simulated) hardware.
//
// Paper anchors (see DESIGN.md for OCR reconstruction):
//   Myrinet API: 63 us latency (4 B), ~35 MB/s peak ping-pong bandwidth;
//   FM 2.0:      ~11 us latency (8 B), ~30 MB/s peak (PIO send, recv copy);
//   PM:          7.2 us latency (8 B), 118 MB/s peak *pipelined* bandwidth
//                at 8 KB units, copy-to-send-buffer excluded;
//   VMMC:        9.8 us latency, 108.4 MB/s user-to-user.
#include <cstdio>

#include "bench_common.h"
#include "vmmc/compat/fm.h"
#include "vmmc/compat/mapi.h"
#include "vmmc/compat/pm.h"
#include "vmmc/compat/testbed.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;
using compat::FmEndpoint;
using compat::MapiEndpoint;
using compat::PmEndpoint;
using compat::Testbed;

// Ping-pong over mapi channels.
double MapiLatency(std::uint32_t len, int iters) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  MapiEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  sim::Tick elapsed = 0;
  auto ping = [&]() -> sim::Process {
    sim::Tick t0 = sim.now();
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, 1, std::vector<std::uint8_t>(len, 1));
      if (!s.ok()) std::abort();
      for (;;) {
        auto msg = co_await a.Recv(2);
        if (!msg.empty()) break;
        co_await sim.Delay(2000);
      }
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      for (;;) {
        auto msg = co_await b.Recv(1);
        if (!msg.empty()) break;
        co_await sim.Delay(2000);
      }
      Status s = co_await b.Send(0, 2, std::vector<std::uint8_t>(len, 2));
      if (!s.ok()) std::abort();
    }
  };
  sim.Spawn(pong());
  sim.Spawn(ping());
  sim.RunUntil([&] { return done; });
  return sim::ToMicroseconds(elapsed) / (2.0 * iters);
}

double MapiBandwidth(std::uint32_t len, int iters) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  MapiEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  sim::Tick elapsed = 0;
  const sim::Tick t0 = sim.now();
  auto sender = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, 1, std::vector<std::uint8_t>(len, 1));
      if (!s.ok()) std::abort();
    }
  };
  auto receiver = [&]() -> sim::Process {
    int got = 0;
    while (got < iters) {
      auto msg = co_await b.Recv(1);
      if (!msg.empty()) {
        ++got;
      } else {
        co_await sim.Delay(2000);
      }
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  sim.Spawn(sender());
  sim.Spawn(receiver());
  sim.RunUntil([&] { return done; });
  return sim::MBPerSec(static_cast<std::uint64_t>(len) * iters, elapsed);
}

double FmLatency(std::uint32_t len, int iters) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  FmEndpoint a(testbed, 0), b(testbed, 1);
  int a_got = 0, b_got = 0;
  a.RegisterHandler(1, [&](std::span<const std::uint8_t>) { ++a_got; });
  b.RegisterHandler(1, [&](std::span<const std::uint8_t>) { ++b_got; });
  bool done = false;
  sim::Tick elapsed = 0;
  auto ping = [&]() -> sim::Process {
    sim::Tick t0 = sim.now();
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, 1, std::vector<std::uint8_t>(len, 1));
      if (!s.ok()) std::abort();
      const int want = i + 1;
      while (a_got < want) {
        (void)co_await a.Extract();
        if (a_got < want) co_await sim.Delay(800);
      }
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      const int want = i + 1;
      while (b_got < want) {
        (void)co_await b.Extract();
        if (b_got < want) co_await sim.Delay(800);
      }
      Status s = co_await b.Send(0, 1, std::vector<std::uint8_t>(len, 2));
      if (!s.ok()) std::abort();
    }
  };
  sim.Spawn(pong());
  sim.Spawn(ping());
  sim.RunUntil([&] { return done; });
  return sim::ToMicroseconds(elapsed) / (2.0 * iters);
}

double FmBandwidth(std::uint32_t len, int iters) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  FmEndpoint a(testbed, 0), b(testbed, 1);
  int got = 0;
  b.RegisterHandler(1, [&](std::span<const std::uint8_t>) { ++got; });
  bool done = false;
  sim::Tick elapsed = 0;
  const sim::Tick t0 = sim.now();
  auto sender = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, 1, std::vector<std::uint8_t>(len, 1));
      if (!s.ok()) std::abort();
    }
  };
  auto receiver = [&]() -> sim::Process {
    while (got < iters) {
      (void)co_await b.Extract();
      if (got < iters) co_await sim.Delay(2000);
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  sim.Spawn(sender());
  sim.Spawn(receiver());
  sim.RunUntil([&] { return done; });
  return sim::MBPerSec(static_cast<std::uint64_t>(len) * iters, elapsed);
}

double PmLatency(std::uint32_t len, int iters) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  PmEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  sim::Tick elapsed = 0;
  auto ping = [&]() -> sim::Process {
    sim::Tick t0 = sim.now();
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, std::vector<std::uint8_t>(len, 1));
      if (!s.ok()) std::abort();
      for (;;) {
        auto msg = co_await a.Poll();
        if (!msg.empty()) break;
        co_await sim.Delay(400);
      }
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      for (;;) {
        auto msg = co_await b.Poll();
        if (!msg.empty()) break;
        co_await sim.Delay(400);
      }
      Status s = co_await b.Send(0, std::vector<std::uint8_t>(len, 2));
      if (!s.ok()) std::abort();
    }
  };
  sim.Spawn(pong());
  sim.Spawn(ping());
  sim.RunUntil([&] { return done; });
  return sim::ToMicroseconds(elapsed) / (2.0 * iters);
}

double PmBandwidth(std::uint32_t len, int iters, bool include_copy) {
  sim::Simulator sim;
  Testbed testbed(sim, DefaultParams(), 2);
  PmEndpoint a(testbed, 0), b(testbed, 1);
  bool done = false;
  sim::Tick elapsed = 0;
  const sim::Tick t0 = sim.now();
  auto sender = [&]() -> sim::Process {
    for (int i = 0; i < iters; ++i) {
      Status s = co_await a.Send(1, std::vector<std::uint8_t>(len, 1), include_copy);
      if (!s.ok()) std::abort();
    }
  };
  auto receiver = [&]() -> sim::Process {
    int got = 0;
    while (got < iters) {
      auto msg = co_await b.Poll();
      if (!msg.empty()) {
        ++got;
      } else {
        co_await sim.Delay(4000);
      }
    }
    elapsed = sim.now() - t0;
    done = true;
  };
  sim.Spawn(sender());
  sim.Spawn(receiver());
  sim.RunUntil([&] { return done; });
  return sim::MBPerSec(static_cast<std::uint64_t>(len) * iters, elapsed);
}

}  // namespace

int main() {
  std::printf("Section 7: related work comparison on the same hardware\n\n");

  PingPongResult vmmc_small, vmmc_big;
  {
    TwoNodeFixture fx;
    RunPingPong(fx, 8, 200, vmmc_small);
  }
  {
    TwoNodeFixture fx;
    RunPingPong(fx, 1 << 20, 8, vmmc_big);
  }

  Table table({"system", "latency (us)", "peak bw (MB/s)", "paper",
               "notes"});
  table.AddRow({"VMMC", FormatDouble(vmmc_small.one_way_us, 1),
                FormatDouble(vmmc_big.bandwidth_mb_s, 1), "9.8 / 108.4",
                "protected, zero-copy receive"});
  table.AddRow({"Myrinet API", FormatDouble(MapiLatency(4, 50), 1),
                FormatDouble(MapiBandwidth(65536, 24), 1), "63 / ~35",
                "copies both sides, no reliability"});
  table.AddRow({"FM 2.0", FormatDouble(FmLatency(8, 50), 1),
                FormatDouble(FmBandwidth(65536, 24), 1), "~11 / ~30",
                "PIO send, receive copy, 1 process"});
  table.AddRow({"PM", FormatDouble(PmLatency(8, 50), 1),
                FormatDouble(PmBandwidth(1 << 20, 8, /*include_copy=*/false), 1),
                "7.2 / 118", "pipelined bw, send copy excluded"});
  table.AddRow({"PM (with send copy)", "-",
                FormatDouble(PmBandwidth(1 << 20, 8, /*include_copy=*/true), 1),
                "(reduced)", "what applications actually see"});
  table.Print();
  return 0;
}
