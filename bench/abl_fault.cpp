// Fault ablation: goodput of a one-way stream as the injected packet-loss
// rate sweeps 0..10%. The go-back-N layer (lcp.cpp) must keep every byte
// flowing; what degrades is goodput, via retransmitted windows and RTO
// stalls. The 0% row doubles as a regression anchor: it also runs the
// Figure 3 ping-pong measurement and should match fig3_bandwidth.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "vmmc/sim/fault.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;

struct StreamResult {
  double goodput_mb_s = 0;
  double elapsed_ms = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
};

// Streams `iters` messages of `len` bytes a -> b and waits until the
// receiving LCP has accepted every payload byte (delivery, not send
// completion: under loss the interesting time is when the retransmission
// machinery actually gets the data across).
StreamResult RunLossyStream(double drop_rate, std::uint32_t len, int iters) {
  TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024);
  // Configure after boot so the mapping phase runs fault-free and every
  // run measures the same steady-state workload.
  if (drop_rate > 0) {
    sim::LinkFaultRule rule;
    rule.drop_rate = drop_rate;
    fx.sim().faults().Configure(
        sim::FaultPlan::AllLinks(rule, /*seed=*/0xAB1FA017ull));
  }

  const auto& rstats = fx.cluster().node(1).lcp->stats();
  const std::uint64_t base_bytes = rstats.bytes_received;
  const std::uint64_t expect =
      base_bytes + static_cast<std::uint64_t>(len) * iters;

  bool sends_done = false;
  auto stream = [&]() -> sim::Process {
    std::vector<std::uint8_t> payload(len, 0x5A);
    (void)fx.a().WriteBuffer(fx.a_src(), payload);
    for (int i = 0; i < iters; ++i) {
      Status s = co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), len);
      if (!s.ok()) std::abort();
    }
    sends_done = true;
  };

  const sim::Tick t0 = fx.sim().now();
  fx.sim().Spawn(stream());
  if (!fx.sim().RunUntil(
          [&] { return sends_done && rstats.bytes_received >= expect; },
          sim::Seconds(10))) {
    std::fprintf(stderr, "stream stalled at drop_rate=%.2f\n", drop_rate);
    std::abort();
  }
  const sim::Tick elapsed = fx.sim().now() - t0;

  StreamResult r;
  r.goodput_mb_s =
      sim::MBPerSec(static_cast<std::uint64_t>(len) * iters, elapsed);
  r.elapsed_ms = sim::ToMicroseconds(elapsed) / 1000.0;
  const obs::Registry& m = fx.sim().metrics();
  r.injected_drops = m.CounterValue("fault.injected.drops");
  r.retransmits = m.SumCounters("node", ".lcp.retransmits");
  r.timeouts = m.SumCounters("node", ".lcp.retransmit_timeouts");
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation: goodput under injected packet loss (go-back-N LCP)\n");
  std::printf("(one-way stream, 32 x 64 KB; drops injected on every link)\n\n");

  Table table({"loss", "goodput MB/s", "elapsed ms", "drops", "retx", "RTOs"});
  for (double rate : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    StreamResult r = RunLossyStream(rate, 64 * 1024, 32);
    char loss[16];
    std::snprintf(loss, sizeof(loss), "%.0f%%", rate * 100.0);
    table.AddRow({loss, FormatDouble(r.goodput_mb_s, 1),
                  FormatDouble(r.elapsed_ms, 2), std::to_string(r.injected_drops),
                  std::to_string(r.retransmits), std::to_string(r.timeouts)});
  }
  table.Print();

  // Fault-free anchor: the Figure 3 ping-pong measurement with the
  // reliability layer on must still land on the paper's ~108.4 MB/s.
  TwoNodeFixture fx(DefaultParams());
  PingPongResult pp;
  RunPingPong(fx, 1 << 20, 8, pp);
  std::printf("\nfault-free fig3 check (1 MB ping-pong): %s MB/s\n",
              FormatDouble(pp.bandwidth_mb_s, 1).c_str());
  return 0;
}
