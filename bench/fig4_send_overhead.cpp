// Figure 4: "Overhead of the synchronous and asynchronous send operations"
// — time until the send call returns, one-way traffic to an idle receiver.
//
// Paper anchors: sync short-send overhead ~3 us, growing slowly to 128 B;
// a jump past 128 B where the protocol switches to host DMA; async long
// sends slightly cheaper than async short sends (fixed-size request, no
// PIO data copy); sync == async for short sends.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Figure 4: synchronous vs asynchronous send overhead\n");
  std::printf("(paper: ~3 us short sync, jump past the 128 B threshold;\n");
  std::printf(" async long < async short; sync short == async short)\n\n");

  Table table({"bytes", "sync (us)", "async (us)"});
  for (std::uint32_t len : {4u, 16u, 32u, 64u, 96u, 128u, 160u, 256u, 512u,
                            1024u, 2048u, 4096u}) {
    TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024, /*threads=*/0);  // 0: VMMC_THREADS
    OverheadResult r;
    RunSendOverhead(fx, len, /*iters=*/100, r);
    table.AddRow({FormatSize(len), FormatDouble(r.sync_us, 2),
                  FormatDouble(r.async_us, 2)});
  }
  table.Print();
  return 0;
}
