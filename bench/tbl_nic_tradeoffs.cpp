// §6 "Network Interface Design Tradeoffs": SHRIMP vs Myrinet VMMC against
// each system's own hardware limits.
//
// Paper anchors:
//   one-word deliberate-update latency: ~7 us SHRIMP vs 9.8 us Myrinet;
//   send initiation: 2-3 us in SHRIMP hardware, >= 2x that on Myrinet
//     (translation + header preparation in LANai software);
//   bandwidth vs hardware limit: SHRIMP 23 / 23 MB/s (100%),
//     Myrinet 108.4 / 110 MB/s (98%).
#include <cstdio>

#include "bench_common.h"
#include "vmmc/compat/shrimp.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;
using compat::ShrimpEndpoint;
using compat::ShrimpSystem;

struct ShrimpNumbers {
  double one_word_us = 0;
  double initiation_us = 0;
  double peak_bw = 0;
};

ShrimpNumbers MeasureShrimp() {
  ShrimpNumbers out;
  sim::Simulator sim;
  const Params& params = DefaultParams();
  ShrimpSystem system(sim, params, 2);
  ShrimpEndpoint a(system, 0, "a");
  ShrimpEndpoint b(system, 1, "b");

  const std::uint32_t kBuf = 2 * 1024 * 1024;
  auto a_ring = a.AllocBuffer(kBuf).value();
  auto b_ring = b.AllocBuffer(kBuf).value();
  (void)a.ExportBuffer(a_ring, kBuf, "a-ring");
  (void)b.ExportBuffer(b_ring, kBuf, "b-ring");
  auto a_to_b = a.ImportBuffer(1, "b-ring").value();
  auto b_to_a = b.ImportBuffer(0, "a-ring").value();
  auto a_src = a.AllocBuffer(kBuf).value();
  auto b_src = b.AllocBuffer(kBuf).value();

  bool done = false;
  auto spin = [&sim](ShrimpEndpoint& ep, mem::VirtAddr va,
                     std::uint8_t expected) -> sim::Process {
    for (;;) {
      std::uint8_t byte = 0;
      (void)ep.memory().Read(va, {&byte, 1});
      if (byte == expected) co_return;
      co_await sim.Delay(250);
    }
  };

  // Ping-pong latency, one word.
  const int kIters = 100;
  auto ping = [&]() -> sim::Process {
    sim::Tick t0 = sim.now();
    for (int i = 1; i <= kIters; ++i) {
      std::vector<std::uint8_t> w(4, static_cast<std::uint8_t>(i));
      (void)a.memory().Write(a_src, w);
      Status s = co_await a.SendMsg(a_src, a_to_b, 4);
      if (!s.ok()) std::abort();
      co_await spin(a, a_ring + 3, static_cast<std::uint8_t>(i));
    }
    out.one_word_us = sim::ToMicroseconds(sim.now() - t0) / (2.0 * kIters);
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 1; i <= kIters; ++i) {
      co_await spin(b, b_ring + 3, static_cast<std::uint8_t>(i));
      std::vector<std::uint8_t> w(4, static_cast<std::uint8_t>(i));
      (void)b.memory().Write(b_src, w);
      Status s = co_await b.SendMsg(b_src, b_to_a, 4);
      if (!s.ok()) std::abort();
    }
  };
  sim.Spawn(pong());
  sim.Spawn(ping());
  sim.RunUntil([&] { return done; });

  // Send initiation: two PIO writes + hardware engine processing.
  out.initiation_us = sim::ToMicroseconds(2 * params.shrimp.pio_write +
                                          params.shrimp.hw_engine_process);

  // Peak bandwidth: one 1 MB deliberate update.
  done = false;
  double bw = 0;
  auto stream = [&]() -> sim::Process {
    const std::uint32_t kLen = 1 << 20;
    sim::Tick t0 = sim.now();
    Status s = co_await a.SendMsg(a_src, a_to_b, kLen);
    if (!s.ok()) std::abort();
    bw = sim::MBPerSec(kLen, sim.now() - t0);
    done = true;
  };
  sim.Spawn(stream());
  sim.RunUntil([&] { return done; });
  out.peak_bw = bw;
  return out;
}

}  // namespace

int main() {
  std::printf("Section 6: network interface design tradeoffs, SHRIMP vs Myrinet\n\n");

  ShrimpNumbers shrimp = MeasureShrimp();

  // Myrinet VMMC numbers from the full stack.
  PingPongResult vmmc_pp;
  double vmmc_bw = 0;
  {
    TwoNodeFixture fx;
    RunPingPong(fx, 4, 200, vmmc_pp);
  }
  {
    TwoNodeFixture fx;
    PingPongResult big;
    RunPingPong(fx, 1 << 20, 8, big);
    vmmc_bw = big.bandwidth_mb_s;
  }
  const Params& p = DefaultParams();
  // Myrinet send initiation: queue pickup + TLB translation + header
  // preparation + net-DMA start, all LANai software (§6).
  const double myri_init = sim::ToMicroseconds(
      p.lanai.pickup_base + p.lanai.pickup_per_process + p.lanai.tlb_lookup +
      p.lanai.header_prep + p.lanai.net_dma_init);

  Table table({"metric", "SHRIMP", "Myrinet VMMC", "paper"});
  table.AddRow({"one-word latency (us)", FormatDouble(shrimp.one_word_us, 1),
                FormatDouble(vmmc_pp.one_way_us, 1), "~7 vs 9.8"});
  table.AddRow({"send initiation (us)", FormatDouble(shrimp.initiation_us, 1),
                FormatDouble(myri_init, 1), "2-3 vs >=2x"});
  table.AddRow({"peak bandwidth (MB/s)", FormatDouble(shrimp.peak_bw, 1),
                FormatDouble(vmmc_bw, 1), "23 vs 108.4"});
  table.AddRow({"hardware limit (MB/s)", "23.0", "110.0", "23 vs 110"});
  table.AddRow({"% of hardware limit",
                FormatDouble(100.0 * shrimp.peak_bw / 23.0, 0),
                FormatDouble(100.0 * vmmc_bw / 110.0, 0), "100% vs 98%"});
  table.Print();

  std::printf("\nResources and OS support (qualitative, section 6):\n");
  std::printf("  SHRIMP: custom NIC + snooping card, proxy mappings in the OS,\n");
  std::printf("          state machine invalidated on context switch.\n");
  std::printf("  Myrinet: commodity NIC; LANai CPU + SRAM host per-process send\n");
  std::printf("          queues, outgoing page tables and software TLBs; OS only\n");
  std::printf("          needs a loadable driver (translate + signals).\n");
  return 0;
}
