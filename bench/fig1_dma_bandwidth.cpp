// Figure 1: "Bandwidth of DMA between the Host and the LANai" — streaming
// host->LANai DMA bandwidth as a function of the block size.
//
// Paper anchors: PCI peak close to 128 MB/s at 64 KB transfer units; with
// virtual memory (discontiguous frames) transfer units are capped at one
// page, and the achievable limit at 4 KB units is ~110 MB/s. The measured
// loop includes the LANai-side descriptor handling, as the paper's did.
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/util/stats.h"

namespace {

using namespace vmmc;

double MeasureBlockBandwidth(std::uint32_t block, std::uint64_t total_bytes) {
  sim::Simulator sim;
  const Params& params = DefaultParams();
  myrinet::Fabric fabric(sim, params.net);
  host::Machine machine(sim, params, 0);
  lanai::NicCard nic(sim, params, machine, fabric);

  const std::uint64_t blocks = total_bytes / block;
  bool done = false;
  auto driver = [&]() -> sim::Process {
    // The paper's microbenchmark streams from a contiguous pinned buffer,
    // so each block is one DMA burst regardless of size; user-level
    // communication cannot do this past one page (§5.2), which is exactly
    // what this figure demonstrates.
    for (std::uint64_t i = 0; i < blocks; ++i) {
      // Descriptor handling by the LANai loop (fetch, program, complete).
      co_await nic.cpu().Exec(params.pci.dma_loop_sw);
      co_await machine.pci().Dma(block);
    }
    done = true;
  };
  sim.Spawn(driver());
  sim.RunUntil([&] { return done; });
  return sim::MBPerSec(blocks * block, sim.now());
}

}  // namespace

int main() {
  std::printf("Figure 1: Bandwidth of DMA between the Host and the LANai\n");
  std::printf("(paper: ~128 MB/s at 64K units; 110 MB/s at the 4K page limit)\n\n");
  Table table({"block", "MB/s"});
  for (std::uint32_t block = 64; block <= 65536; block *= 2) {
    const double bw = MeasureBlockBandwidth(block, 16ull << 20);
    table.AddRow({FormatSize(block), FormatDouble(bw, 1)});
  }
  table.Print();
  return 0;
}
