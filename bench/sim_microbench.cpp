// M1: wall-clock throughput of the simulation engine itself (the one bench
// where wall time is the right metric), using google-benchmark.
#include <benchmark/benchmark.h>

#include "vmmc/sim/process.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"

namespace {

using namespace vmmc::sim;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.At(i, [] {});
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatch);

// Same dispatch loop with the per-event observability cost the hot paths
// pay when tracing is compiled in but disabled: one counter increment and
// one inert span. Compare against BM_EventDispatch for the overhead.
void BM_EventDispatchInstrumented(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    vmmc::obs::Counter& events = sim.metrics().GetCounter("bench.events");
    const int track = sim.tracer().RegisterTrack("bench");
    for (int i = 0; i < 10000; ++i) {
      sim.At(i, [&sim, &events, track] {
        events.Inc();
        auto span = sim.tracer().Scope(track, "event");
        benchmark::DoNotOptimize(span);
      });
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatchInstrumented);

Process Chain(Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.Delay(1);
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int p = 0; p < 100; ++p) sim.Spawn(Chain(sim, 100));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_CoroutineDelayChain);

Process Producer(Simulator& sim, Mailbox<int>& box, int n) {
  for (int i = 0; i < n; ++i) {
    box.Put(i);
    co_await sim.Delay(1);
  }
}

Process Consumer(Mailbox<int>& box, int n) {
  for (int i = 0; i < n; ++i) benchmark::DoNotOptimize(co_await box.Get());
}

void BM_MailboxHandoff(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Mailbox<int> box(sim);
    sim.Spawn(Producer(sim, box, 5000));
    sim.Spawn(Consumer(box, 5000));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_MailboxHandoff);

void BM_Rng(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_Rng);

}  // namespace

BENCHMARK_MAIN();
