// M1: wall-clock throughput of the simulation engine itself (the one bench
// where wall time is the right metric), using google-benchmark.
//
// The BM_Macro* entries run whole-stack workloads (boot, mapping, LCP,
// multi-switch fabric) and report events/sec — scripts/check_wallclock.py
// records them in BENCH_sim.json and gates regressions in ctest.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "vmmc/vmmc/p2p.h"
#include "vmmc/vmmc/runtime.h"
#include "vmmc/coll/communicator.h"
#include "vmmc/myrinet/topology.h"
#include "vmmc/sim/fault.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/rng.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/sync.h"

namespace {

using namespace vmmc::sim;

void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 10000; ++i) sim.At(i, [] {});
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatch);

// Same dispatch loop with the per-event observability cost the hot paths
// pay when tracing is compiled in but disabled: one counter increment and
// one inert span. Compare against BM_EventDispatch for the overhead.
void BM_EventDispatchInstrumented(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    vmmc::obs::Counter& events = sim.metrics().GetCounter("bench.events");
    const int track = sim.tracer().RegisterTrack("bench");
    for (int i = 0; i < 10000; ++i) {
      sim.At(i, [&sim, &events, track] {
        events.Inc();
        auto span = sim.tracer().Scope(track, "event");
        benchmark::DoNotOptimize(span);
      });
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatchInstrumented);

Process Chain(Simulator& sim, int hops) {
  for (int i = 0; i < hops; ++i) co_await sim.Delay(1);
}

void BM_CoroutineDelayChain(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int p = 0; p < 100; ++p) sim.Spawn(Chain(sim, 100));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_CoroutineDelayChain);

Process Yielder(Simulator& sim, int n) {
  for (int i = 0; i < n; ++i) co_await sim.Delay(0);
}

// The dominant event kind in the stack: a coroutine wake-up through the
// queue. Delay(0) is exactly one Simulator::Resume per iteration.
void BM_CoroutineResume(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    sim.Spawn(Yielder(sim, 10000));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_CoroutineResume);

Process Producer(Simulator& sim, Mailbox<int>& box, int n) {
  for (int i = 0; i < n; ++i) {
    box.Put(i);
    co_await sim.Delay(1);
  }
}

Process Consumer(Mailbox<int>& box, int n) {
  for (int i = 0; i < n; ++i) {
    int v = co_await box.Get();
    benchmark::DoNotOptimize(v);
  }
}

void BM_MailboxHandoff(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Mailbox<int> box(sim);
    sim.Spawn(Producer(sim, box, 5000));
    sim.Spawn(Consumer(box, 5000));
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_MailboxHandoff);

void BM_Rng(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextU64());
}
BENCHMARK(BM_Rng);

// ---------------------------------------------------------------------------
// Macro benchmarks: whole-stack workloads, reported as engine events/sec.
// ---------------------------------------------------------------------------

// 64-node fat-tree ring allreduce (the coll_scale_test workload at full
// scale): boot + network mapping + lazy links + one allreduce of 64 int64
// per rank. ~10.6M events per iteration.
void BM_MacroAllreduce64(benchmark::State& state) {
  using vmmc::coll::CommOptions;
  using vmmc::coll::Communicator;
  using vmmc::vmmc_core::Cluster;
  using vmmc::vmmc_core::ClusterOptions;
  constexpr int kNodes = 64;
  constexpr std::size_t kElems = 64;
  std::uint64_t events = 0;
  for (auto _ : state) {
    Simulator sim;
    vmmc::Params params;
    auto options = ClusterOptions::FromSpec("fattree:64@16");
    if (!options.ok()) {
      state.SkipWithError("cluster spec failed");
      return;
    }
    Cluster cluster(sim, params, options.value());
    if (!cluster.Boot().ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    std::vector<std::unique_ptr<Communicator>> comms(kNodes);
    int created = 0;
    auto create = [&cluster, &comms, &created](int r) -> Process {
      CommOptions copts;
      copts.lazy_links = true;
      auto c = co_await Communicator::Create(cluster, r, kNodes, "world", copts);
      if (c.ok()) comms[static_cast<std::size_t>(r)] = std::move(c).value();
      ++created;
    };
    for (int r = 0; r < kNodes; ++r) sim.Spawn(create(r));
    sim.RunUntil([&] { return created == kNodes; }, 10'000'000'000ll);
    int finished = 0;
    auto run = [&comms, &finished](int r) -> Process {
      std::vector<std::int64_t> values(kElems * kNodes,
                                       static_cast<std::int64_t>(r));
      (void)co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
      ++finished;
    };
    for (int r = 0; r < kNodes; ++r) sim.Spawn(run(r));
    if (!sim.RunUntil([&] { return finished == kNodes; }, 60'000'000'000ll)) {
      state.SkipWithError("allreduce did not finish");
      return;
    }
    events += sim.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MacroAllreduce64)->Unit(benchmark::kMillisecond);

// Fault-sweep replay: a two-node reliable stream under 2% injected packet
// loss — go-back-N retransmission, RTO timers and COW payload bit-flips
// all on the hot path.
void BM_MacroFaultSweepReplay(benchmark::State& state) {
  using namespace vmmc;
  using namespace vmmc::bench;
  constexpr std::uint32_t kLen = 4096;
  constexpr int kIters = 200;
  std::uint64_t events = 0;
  for (auto _ : state) {
    TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024);
    LinkFaultRule rule;
    rule.drop_rate = 0.02;
    rule.bitflip_rate = 0.01;
    fx.sim().faults().Configure(
        FaultPlan::AllLinks(rule, /*seed=*/0xAB1FA017ull));
    const auto& rstats = fx.cluster().node(1).lcp->stats();
    const std::uint64_t expect =
        rstats.bytes_received + static_cast<std::uint64_t>(kLen) * kIters;
    bool sends_done = false;
    auto stream = [&]() -> Process {
      std::vector<std::uint8_t> payload(kLen, 0x5A);
      (void)fx.a().WriteBuffer(fx.a_src(), payload);
      for (int i = 0; i < kIters; ++i) {
        (void)co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), kLen);
      }
      sends_done = true;
    };
    fx.sim().Spawn(stream());
    if (!fx.sim().RunUntil(
            [&] { return sends_done && rstats.bytes_received >= expect; },
            Seconds(10))) {
      state.SkipWithError("stream stalled");
      return;
    }
    events += fx.sim().events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MacroFaultSweepReplay)->Unit(benchmark::kMillisecond);

// Rendezvous stream: a two-node point-to-point channel pushing 64 KB
// messages — RTS posting, reader-pull RdmaRead serving, completion fins
// and the registration cache all on the hot path.
void BM_MacroRendezvousStream(benchmark::State& state) {
  using namespace vmmc;
  using namespace vmmc::bench;
  using vmmc_core::P2pChannel;
  constexpr std::uint32_t kLen = 64 * 1024;
  constexpr int kIters = 200;
  std::uint64_t events = 0;
  for (auto _ : state) {
    TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024);
    std::unique_ptr<P2pChannel> ca, cb;
    int ready = 0;
    auto make = [&fx, &ready](vmmc_core::Endpoint& ep, int peer,
                              std::unique_ptr<P2pChannel>* dst) -> Process {
      auto c = co_await P2pChannel::Create(ep, peer, "bm",
                                           DefaultParams().vmmc.p2p);
      if (c.ok()) *dst = std::move(c).value();
      ++ready;
    };
    fx.sim().Spawn(make(fx.a(), 1, &ca));
    fx.sim().Spawn(make(fx.b(), 0, &cb));
    if (!fx.sim().RunUntil([&] { return ready == 2; }, Seconds(10)) || !ca ||
        !cb) {
      state.SkipWithError("channel setup failed");
      return;
    }
    bool done = false;
    auto sender = [&]() -> Process {
      for (int i = 0; i < kIters; ++i) {
        (void)co_await ca->Send(fx.a_src(), kLen);
        (void)co_await ca->Flush();
      }
      done = true;
    };
    auto receiver = [&]() -> Process {
      for (int i = 0; i < kIters; ++i) {
        (void)co_await cb->RecvInto(fx.b_recv_va(), kLen);
      }
    };
    fx.sim().Spawn(receiver());
    fx.sim().Spawn(sender());
    if (!fx.sim().RunUntil([&] { return done; }, Seconds(60))) {
      state.SkipWithError("stream stalled");
      return;
    }
    events += fx.sim().events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MacroRendezvousStream)->Unit(benchmark::kMillisecond);

// The allreduce macro on the partitioned cluster (vmmc/runtime.h), worker
// count as the benchmark argument. /1 runs the serial substrate — the
// reference the threaded rows are measured against; any /N row computes
// the identical allreduce (worker-count-invariant schedule). Wall-clock
// scaling requires real cores: on a single-CPU host the threaded rows
// only measure synchronization overhead.
void BM_MacroAllreduce64Par(benchmark::State& state) {
  using vmmc::coll::CommOptions;
  using vmmc::coll::Communicator;
  using vmmc::vmmc_core::ClusterOptions;
  using vmmc::vmmc_core::ClusterRuntime;
  using vmmc::vmmc_core::RuntimeOptions;
  constexpr int kNodes = 64;
  constexpr std::size_t kElems = 64;
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    vmmc::Params params;
    auto options = ClusterOptions::FromSpec("fattree:64@16");
    if (!options.ok()) {
      state.SkipWithError("cluster spec failed");
      return;
    }
    RuntimeOptions rt;
    rt.threads = threads;
    ClusterRuntime runtime(params, options.value(), rt);
    vmmc::vmmc_core::Cluster& cluster = runtime.cluster();
    if (!cluster.Boot().ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    std::vector<std::unique_ptr<Communicator>> comms(kNodes);
    std::atomic<int> created{0};
    auto create = [&cluster, &comms, &created](int r) -> Process {
      CommOptions copts;
      copts.lazy_links = true;
      auto c = co_await Communicator::Create(cluster, r, kNodes, "world", copts);
      if (c.ok()) comms[static_cast<std::size_t>(r)] = std::move(c).value();
      created.fetch_add(1, std::memory_order_relaxed);
    };
    for (int r = 0; r < kNodes; ++r) cluster.node_sim(r).Spawn(create(r));
    if (!cluster.DriveUntil([&] {
          return created.load(std::memory_order_relaxed) == kNodes;
        })) {
      state.SkipWithError("communicator setup stalled");
      return;
    }
    std::atomic<int> finished{0};
    auto run = [&comms, &finished](int r) -> Process {
      std::vector<std::int64_t> values(kElems * kNodes,
                                       static_cast<std::int64_t>(r));
      (void)co_await comms[static_cast<std::size_t>(r)]->AllReduceSum(values);
      finished.fetch_add(1, std::memory_order_relaxed);
    };
    for (int r = 0; r < kNodes; ++r) cluster.node_sim(r).Spawn(run(r));
    if (!cluster.DriveUntil([&] {
          return finished.load(std::memory_order_relaxed) == kNodes;
        })) {
      state.SkipWithError("allreduce did not finish");
      return;
    }
    events += cluster.events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MacroAllreduce64Par)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The fault-sweep macro on the partitioned two-node cluster: go-back-N
// retransmission under per-shard deterministic packet loss, crossing the
// NIC-switch-NIC shard boundaries (including cross-shard drop notices).
void BM_MacroFaultSweepPar(benchmark::State& state) {
  using namespace vmmc;
  using namespace vmmc::bench;
  constexpr std::uint32_t kLen = 4096;
  constexpr int kIters = 200;
  const int threads = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024, threads);
    LinkFaultRule rule;
    rule.drop_rate = 0.02;
    rule.bitflip_rate = 0.01;
    fx.runtime().ConfigureFaults(
        FaultPlan::AllLinks(rule, /*seed=*/0xAB1FA017ull));
    const auto& rstats = fx.cluster().node(1).lcp->stats();
    const std::uint64_t expect =
        rstats.bytes_received + static_cast<std::uint64_t>(kLen) * kIters;
    bool sends_done = false;
    auto stream = [&]() -> Process {
      std::vector<std::uint8_t> payload(kLen, 0x5A);
      (void)fx.a().WriteBuffer(fx.a_src(), payload);
      for (int i = 0; i < kIters; ++i) {
        (void)co_await fx.a().SendMsg(fx.a_src(), fx.a_to_b(), kLen);
      }
      sends_done = true;
    };
    fx.sim().Spawn(stream());
    if (!fx.cluster().DriveUntil(
            [&] { return sends_done && rstats.bytes_received >= expect; })) {
      state.SkipWithError("stream stalled");
      return;
    }
    events += fx.cluster().events_processed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_MacroFaultSweepPar)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
