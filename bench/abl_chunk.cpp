// Ablation A4: chunk size. The paper fixes the long-send chunk at the page
// size (4 KB, §4.5) — the largest unit compatible with discontiguous
// physical memory. Smaller chunks pay the per-chunk software and DMA
// initiation costs more often.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Ablation: long-send chunk size (section 4.5)\n");
  std::printf("(1 MB ping-pong bandwidth; the paper uses the 4 KB page size)\n\n");

  Table table({"chunk", "MB/s"});
  for (std::uint32_t chunk : {512u, 1024u, 2048u, 4096u}) {
    Params params = DefaultParams();
    params.vmmc.chunk_bytes = chunk;
    TwoNodeFixture fx(params);
    PingPongResult r;
    RunPingPong(fx, 1 << 20, 4, r);
    table.AddRow({FormatSize(chunk), FormatDouble(r.bandwidth_mb_s, 1)});
  }
  table.Print();
  return 0;
}
