// Ablation A3: the two bandwidth optimizations §5.3 credits for reaching
// 98% of the hardware limit — host-DMA/net-DMA pipelining and header
// precomputation — switched off individually and together.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Ablation: DMA pipelining and header precomputation (section 5.3)\n");
  std::printf("(1 MB ping-pong bandwidth; paper's full config reaches 108.4 MB/s)\n\n");

  Table table({"pipelining", "header precompute", "MB/s"});
  for (bool pipeline : {true, false}) {
    for (bool precompute : {true, false}) {
      Params params = DefaultParams();
      params.vmmc.pipeline_dma = pipeline;
      params.vmmc.precompute_headers = precompute;
      TwoNodeFixture fx(params);
      PingPongResult r;
      RunPingPong(fx, 1 << 20, 8, r);
      table.AddRow({pipeline ? "on" : "off", precompute ? "on" : "off",
                    FormatDouble(r.bandwidth_mb_s, 1)});
    }
  }
  table.Print();
  return 0;
}
