// Extension bench: latency and bandwidth across multi-switch routes. The
// paper's testbed had a single M2F-SW8; Myrinet's cut-through switching
// makes each extra hop cost well under a microsecond, so VMMC scales to
// larger fabrics — the commodity-cluster story of §1.
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace vmmc;
using namespace vmmc::bench;

struct HopResult {
  int hops = 0;
  double latency_us = 0;
  double bandwidth_mb_s = 0;
};

HopResult Measure(int chain_switches) {
  HopResult out;
  sim::Simulator sim;
  Params params;
  vmmc_core::ClusterOptions options;
  // Two nodes at the opposite ends of a switch chain.
  options.num_nodes = 2 * chain_switches;  // spread: ceil(num/chain) per switch
  options.topology = vmmc_core::Topology::kSwitchChain;
  options.chain_switches = chain_switches;
  vmmc_core::Cluster cluster(sim, params, options);
  if (!cluster.Boot().ok()) std::abort();
  const int far = options.num_nodes - 1;
  out.hops = static_cast<int>(cluster.node(0).routes[static_cast<std::size_t>(far)].size());

  auto a = cluster.OpenEndpoint(0, "a");
  auto b = cluster.OpenEndpoint(far, "b");
  if (!a.ok() || !b.ok()) std::abort();

  // Minimal ping-pong between the two most distant nodes.
  mem::VirtAddr a_recv = 0, b_recv = 0, a_src = 0, b_src = 0;
  vmmc_core::ProxyAddr a_to_b = 0, b_to_a = 0;
  bool ready = false;
  auto setup = [&]() -> sim::Process {
    a_recv = a.value()->AllocBuffer(1 << 20).value();
    b_recv = b.value()->AllocBuffer(1 << 20).value();
    a_src = a.value()->AllocBuffer(1 << 20).value();
    b_src = b.value()->AllocBuffer(1 << 20).value();
    vmmc_core::ExportOptions ea;
    ea.name = "a";
    (void)co_await a.value()->ExportBuffer(a_recv, 1 << 20, std::move(ea));
    vmmc_core::ExportOptions eb;
    eb.name = "b";
    (void)co_await b.value()->ExportBuffer(b_recv, 1 << 20, std::move(eb));
    vmmc_core::ImportOptions wait;
    wait.wait = true;
    a_to_b = (co_await a.value()->ImportBuffer(far, "b", wait)).value().proxy_base;
    b_to_a = (co_await b.value()->ImportBuffer(0, "a", wait)).value().proxy_base;
    ready = true;
  };
  sim.Spawn(setup());
  sim.RunUntil([&] { return ready; });

  auto spin = [&sim](vmmc_core::Endpoint& ep, mem::VirtAddr va,
                     std::uint8_t want) -> sim::Process {
    for (;;) {
      std::uint8_t byte = 0;
      (void)ep.ReadBuffer(va, {&byte, 1});
      if (byte == want) co_return;
      co_await sim.Delay(250);
    }
  };

  bool done = false;
  const int kIters = 100;
  auto ping = [&]() -> sim::Process {
    const sim::Tick t0 = sim.now();
    for (int i = 1; i <= kIters; ++i) {
      std::vector<std::uint8_t> w(4, static_cast<std::uint8_t>(i));
      (void)a.value()->WriteBuffer(a_src, w);
      (void)co_await a.value()->SendMsg(a_src, a_to_b, 4);
      co_await spin(*a.value(), a_recv + 3, static_cast<std::uint8_t>(i));
    }
    out.latency_us = sim::ToMicroseconds(sim.now() - t0) / (2.0 * kIters);
    // Bulk bandwidth across the chain.
    const sim::Tick t1 = sim.now();
    for (int i = 0; i < 4; ++i) {
      (void)co_await a.value()->SendMsg(a_src, a_to_b, 1 << 20);
    }
    out.bandwidth_mb_s = sim::MBPerSec(4ull << 20, sim.now() - t1);
    done = true;
  };
  auto pong = [&]() -> sim::Process {
    for (int i = 1; i <= kIters; ++i) {
      co_await spin(*b.value(), b_recv + 3, static_cast<std::uint8_t>(i));
      std::vector<std::uint8_t> w(4, static_cast<std::uint8_t>(i));
      (void)b.value()->WriteBuffer(b_src, w);
      (void)co_await b.value()->SendMsg(b_src, b_to_a, 4);
    }
  };
  sim.Spawn(pong());
  sim.Spawn(ping());
  sim.RunUntil([&] { return done; });
  return out;
}

}  // namespace

int main() {
  std::printf("Extension: latency and bandwidth vs switch-hop count\n");
  std::printf("(cut-through switching: each hop adds ~%.2f us)\n\n",
              sim::ToMicroseconds(DefaultParams().net.switch_latency +
                                  DefaultParams().net.link_latency));
  Table table({"switches traversed", "one-way latency (us)", "bandwidth (MB/s)"});
  for (int switches : {1, 2, 3, 4, 6}) {
    HopResult r = Measure(switches);
    table.AddRow({std::to_string(r.hops), FormatDouble(r.latency_us, 2),
                  FormatDouble(r.bandwidth_mb_s, 1)});
  }
  table.Print();
  return 0;
}
