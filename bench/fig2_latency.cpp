// Figure 2: "VMMC latency for short messages" — one-way ping-pong latency
// (synchronous send, alternating traffic) for messages of 4..512 bytes.
//
// Paper anchors: one-word latency 9.8 us; messages up to 32 words (128 B)
// are PIO-copied into the SRAM send queue, longer ones switch to host DMA.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace vmmc;
  using namespace vmmc::bench;

  std::printf("Figure 2: VMMC latency for short messages (ping-pong)\n");
  std::printf("(paper: 9.8 us one-word; slow growth to 128 B, then the long-send protocol)\n\n");

  Table table({"bytes", "one-way latency (us)"});
  for (std::uint32_t len : {4u, 8u, 16u, 32u, 64u, 96u, 128u, 160u, 192u,
                            256u, 384u, 512u}) {
    TwoNodeFixture fx(DefaultParams(), 2 * 1024 * 1024, /*threads=*/0);  // 0: VMMC_THREADS
    PingPongResult r;
    RunPingPong(fx, len, /*iters=*/200, r);
    table.AddRow({FormatSize(len), FormatDouble(r.one_way_us, 2)});
  }
  table.Print();
  return 0;
}
