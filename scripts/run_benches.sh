#!/usr/bin/env bash
# Regenerates every figure/table of the paper plus the ablations.
# Usage: scripts/run_benches.sh [build-dir]
set -euo pipefail
build="${1:-build}"

order=(
  fig1_dma_bandwidth
  fig2_latency
  fig3_bandwidth
  fig4_send_overhead
  tbl_latency_budget
  tbl_vrpc
  tbl_nic_tradeoffs
  tbl_related_work
  abl_tlb
  abl_threshold
  abl_pipeline
  abl_chunk
  abl_auto_update
  abl_multisender
  abl_hops
)

for b in "${order[@]}"; do
  echo "==================================================================="
  echo "== $b"
  echo "==================================================================="
  "$build/bench/$b"
  echo
done

echo "==================================================================="
echo "== sim_microbench (wall-clock engine throughput)"
echo "==================================================================="
"$build/bench/sim_microbench" --benchmark_min_time=0.1
