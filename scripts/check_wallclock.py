#!/usr/bin/env python3
"""Wall-clock regression gate for the simulation engine.

Runs sim_microbench (google-benchmark JSON output), extracts events/sec
(items_per_second) for the gated benchmarks, writes the fresh numbers to
BENCH_sim.json in the working directory, and fails if any gated benchmark
regressed more than the allowed fraction against the recorded baseline.

Usage:
  check_wallclock.py <sim_microbench> <baseline.json> [--update] [--out FILE]

With --update the recorded baseline itself is rewritten (run after an
intentional engine change, on the machine that records baselines).

On hosts with at least 8 cores the gate additionally requires the
8-worker partitioned allreduce macro to run >= 2x faster than the same
macro on one worker; on smaller hosts the ratio is reported only.

The baseline stores events/sec per benchmark. Wall-clock numbers move with
the host, so the gate is deliberately loose (25%): it exists to catch "the
engine got structurally slower" (an accidental per-event allocation, a
heap regression), not scheduler jitter.
"""

import json
import os
import subprocess
import sys

# Engine throughput benches plus the whole-stack macros. BM_Rng etc. are
# not gated: they measure other things and would only add noise.
GATED = [
    "BM_EventDispatch",
    "BM_CoroutineResume",
    "BM_CoroutineDelayChain",
    "BM_MailboxHandoff",
    "BM_MacroAllreduce64",
    "BM_MacroFaultSweepReplay",
    "BM_MacroRendezvousStream",
    "BM_MacroAllreduce64Par/1",
    "BM_MacroAllreduce64Par/8",
    # Parity row only: multi-worker runs of the tiny 2-node fault-sweep
    # fixture are synchronization-bound (window-by-window stall/retx
    # ping-pong), so BM_MacroFaultSweepPar/8 measures the host scheduler,
    # not the engine — it stays runnable but ungated.
    "BM_MacroFaultSweepPar/1",
]
ALLOWED_REGRESSION = 0.25

# Parallel-engine scaling gate: the 8-worker 64-node allreduce macro must
# beat the 1-worker partitioned run by this factor. Wall-clock speedup
# needs real cores, so the gate only arms on hosts with >= MIN_CORES; on
# smaller machines (CI containers pinned to one core) the ratio is printed
# but not enforced.
SPEEDUP_NUM = "BM_MacroAllreduce64Par/8"
SPEEDUP_DEN = "BM_MacroAllreduce64Par/1"
MIN_SPEEDUP = 2.0
MIN_CORES = 8


def run_bench(bench_path):
    bench_filter = "^(" + "|".join(GATED) + ")$"
    cmd = [
        bench_path,
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=900)
    if proc.returncode != 0:
        sys.exit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    data = json.loads(proc.stdout)
    results = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if name in GATED and "items_per_second" in b:
            results[name] = b["items_per_second"]
    missing = [n for n in GATED if n not in results]
    if missing:
        sys.exit(f"FAIL: benchmarks missing from output: {missing}")
    return results


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    if len(args) < 2:
        sys.exit(__doc__)
    bench_path, baseline_path = args[0], args[1]
    out_path = "BENCH_sim.json"
    for f in flags:
        if f.startswith("--out="):
            out_path = f.split("=", 1)[1]

    results = run_bench(bench_path)
    payload = {
        "events_per_second": {k: round(v) for k, v in results.items()},
    }
    with open(out_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out_path}")

    if "--update" in flags:
        with open(baseline_path, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated baseline {baseline_path}")
        return

    with open(baseline_path) as f:
        baseline = json.load(f)["events_per_second"]

    failures = []
    for name in GATED:
        base = baseline.get(name)
        if base is None:
            failures.append(f"{name}: no baseline recorded")
            continue
        fresh = results[name]
        ratio = fresh / base
        status = "ok"
        if ratio < 1.0 - ALLOWED_REGRESSION:
            status = "REGRESSION"
            failures.append(
                f"{name}: {fresh:,.0f} events/s vs baseline {base:,.0f} "
                f"({ratio:.2f}x, limit {1.0 - ALLOWED_REGRESSION:.2f}x)"
            )
        print(f"  {name:28s} {fresh:14,.0f} ev/s  baseline {base:14,.0f}  "
              f"{ratio:5.2f}x  {status}")

    speedup = results[SPEEDUP_NUM] / results[SPEEDUP_DEN]
    cores = os.cpu_count() or 1
    if cores >= MIN_CORES:
        print(f"  8-worker speedup {speedup:.2f}x over 1 worker "
              f"(require >= {MIN_SPEEDUP:.1f}x, {cores} cores)")
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"parallel engine speedup {speedup:.2f}x < {MIN_SPEEDUP:.1f}x "
                f"({SPEEDUP_NUM} vs {SPEEDUP_DEN})"
            )
    else:
        print(f"  8-worker speedup {speedup:.2f}x over 1 worker "
              f"(gate skipped: host has {cores} cores, need {MIN_CORES})")

    if failures:
        sys.exit("FAIL: events/sec regression:\n  " + "\n  ".join(failures))
    print("OK: no wall-clock regression beyond "
          f"{ALLOWED_REGRESSION:.0%} of baseline")


if __name__ == "__main__":
    main()
