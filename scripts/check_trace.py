#!/usr/bin/env python3
"""Validate a binary's VMMC_TRACE output.

Runs the given command twice with VMMC_TRACE pointed at a scratch file and
checks that:
  1. the emitted file parses as Chrome trace-event JSON
     ({"traceEvents": [...]} with ph/ts/pid/tid on every event);
  2. it contains at least one complete span (a matching B/E pair on one
     track, or a matching async b/e pair);
  3. the two runs produce byte-identical traces (the simulator is
     deterministic, so the trace must be too).

Usage: check_trace.py <output-dir> <command> [args...]
Exit status 0 on success; diagnostics on stderr otherwise.
"""

import json
import os
import subprocess
import sys


def fail(msg):
    print("check_trace: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def run_traced(cmd, trace_path):
    env = dict(os.environ)
    env["VMMC_TRACE"] = trace_path
    proc = subprocess.run(cmd, env=env, stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL, timeout=300)
    if proc.returncode != 0:
        fail("command %r exited with %d" % (cmd, proc.returncode))
    if not os.path.exists(trace_path):
        fail("command %r did not write %s" % (cmd, trace_path))
    with open(trace_path, "rb") as f:
        return f.read()


def validate(raw):
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        fail("trace is not valid JSON: %s" % e)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing top-level traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")

    open_spans = {}   # tid -> depth of open B spans
    open_async = {}   # (name, id) -> count
    complete = 0
    for i, ev in enumerate(events):
        for field in ("ph", "pid", "tid"):
            if field not in ev:
                fail("event %d lacks %r: %r" % (i, field, ev))
        ph = ev["ph"]
        if ph != "M" and "ts" not in ev:
            fail("event %d lacks 'ts': %r" % (i, ev))
        tid = ev["tid"]
        if ph == "B":
            open_spans[tid] = open_spans.get(tid, 0) + 1
        elif ph == "E":
            if open_spans.get(tid, 0) <= 0:
                fail("event %d: E without open B on tid %s" % (i, tid))
            open_spans[tid] -= 1
            complete += 1
        elif ph == "b":
            key = (ev.get("name"), ev.get("id"))
            open_async[key] = open_async.get(key, 0) + 1
        elif ph == "e":
            key = (ev.get("name"), ev.get("id"))
            if open_async.get(key, 0) <= 0:
                fail("event %d: async end without begin: %r" % (i, ev))
            open_async[key] -= 1
            complete += 1
        elif ph not in ("M", "i"):
            fail("event %d: unexpected phase %r" % (i, ph))
    if complete < 1:
        fail("no complete span in %d events" % len(events))
    return complete, len(events)


def main():
    if len(sys.argv) < 3:
        fail("usage: check_trace.py <output-dir> <command> [args...]")
    outdir = sys.argv[1]
    cmd = sys.argv[2:]
    os.makedirs(outdir, exist_ok=True)
    name = os.path.basename(cmd[0])
    path1 = os.path.join(outdir, name + ".trace1.json")
    path2 = os.path.join(outdir, name + ".trace2.json")

    raw1 = run_traced(cmd, path1)
    complete, total = validate(raw1)
    raw2 = run_traced(cmd, path2)
    if raw1 != raw2:
        fail("two identical runs produced different traces "
             "(%d vs %d bytes)" % (len(raw1), len(raw2)))

    print("check_trace: OK: %d events, %d complete spans, deterministic"
          % (total, complete))
    sys.exit(0)


if __name__ == "__main__":
    main()
