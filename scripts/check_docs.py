#!/usr/bin/env python3
"""Keep EXPERIMENTS.md honest.

Three jobs, all cheap enough for ctest:

  1. Smoke-run the user-facing examples (quickstart, collectives_demo):
     they must exit 0, so the README's first-contact commands never rot.
  2. Re-run the fig2/fig3 benches and compare every fault-free table row
     in EXPERIMENTS.md against the fresh output. Any cell drifting more
     than DRIFT (2%) fails the test: either the code regressed or the
     tables were not refreshed after a deliberate timing change.
  3. Re-run fig2 once per VMMC_THREADS setting documented in the
     "Determinism fingerprints" section and require the md5 of the fresh
     output to equal the documented hash — the single-thread hash pins
     serial bit-stability, the multi-thread hash pins worker-count
     independence of simulated time.

Usage:
  check_docs.py <experiments.md> <fig2_bench> <fig3_bench> <example>...

Exit status 0 on success; per-row diagnostics on stderr otherwise.
"""

import hashlib
import os
import re
import subprocess
import sys

DRIFT = 0.02  # 2% relative tolerance between doc tables and fresh runs


def fail(msg):
    print("check_docs: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def run(cmd, env=None):
    full_env = None
    if env:
        full_env = dict(os.environ)
        full_env.update(env)
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, timeout=600,
                          env=full_env)
    if proc.returncode != 0:
        fail("command %r exited with %d" % (cmd, proc.returncode))
    return proc.stdout.decode("utf-8", errors="replace")


def section(text, heading):
    """The body of a '## <heading>...' section, up to the next '## '."""
    lines = text.splitlines()
    start = None
    for i, line in enumerate(lines):
        if line.startswith("## ") and heading in line:
            start = i + 1
            break
    if start is None:
        fail("EXPERIMENTS.md has no section matching %r" % heading)
    body = []
    for line in lines[start:]:
        if line.startswith("## "):
            break
        body.append(line)
    return "\n".join(body)


def table_rows(body):
    """Markdown table rows as lists of cell strings (header/rule skipped)."""
    rows = []
    for line in body.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [c.strip() for c in line.strip("|").split("|")]
        if not cells or set(cells[0]) <= {"-", " "}:
            continue  # the |---|---| rule
        rows.append(cells)
    return rows[1:] if rows else []  # drop the header row


def cell_value(cell):
    """Numeric value of a table cell: '**107.0** (paper 108.4)' -> 107.0."""
    cell = cell.replace("**", "")
    cell = re.sub(r"\(.*?\)", "", cell)
    m = re.search(r"[\d.]+", cell)
    if m is None:
        fail("no number in table cell %r" % cell)
    return float(m.group(0))


def cell_key(cell):
    """Row key: first token, units folded in ('4 KB' -> '4K', '1 MB' -> '1M')."""
    cell = cell.replace("**", "")
    cell = re.sub(r"\(.*?\)", "", cell).strip()
    cell = cell.replace(" KB", "K").replace(" MB", "M")
    return cell.split()[0] if cell.split() else cell


def parse_bench(output, columns):
    """Bench table 'key  v1 [v2]' -> {key: (v1, ...)}; headers skipped."""
    out = {}
    pat = re.compile(r"^(\S+)\s+" + r"\s+".join([r"([\d.]+)"] * columns) + r"\s*$")
    for line in output.splitlines():
        m = pat.match(line.strip())
        if m and m.group(1) != "bytes":
            out[m.group(1)] = tuple(float(g) for g in m.groups()[1:])
    if not out:
        fail("could not parse any data rows from bench output:\n" + output)
    return out


def check_row(figure, key, label, doc, fresh, failures):
    if fresh == 0:
        if doc != 0:
            failures.append("%s %s %s: doc %g, fresh 0" % (figure, key, label))
        return
    drift = abs(doc - fresh) / abs(fresh)
    if drift > DRIFT:
        failures.append("%s row %s, %s: doc says %g, fresh run says %g "
                        "(drift %.1f%% > %d%%)"
                        % (figure, key, label, doc, fresh, 100 * drift,
                           100 * DRIFT))


def main():
    if len(sys.argv) < 4:
        fail("usage: check_docs.py <experiments.md> <fig2> <fig3> <example>...")
    experiments_md, fig2_bench, fig3_bench = sys.argv[1:4]
    examples = sys.argv[4:]

    # 1. Examples must run clean.
    for example in examples:
        run([example])

    with open(experiments_md, "r", encoding="utf-8") as f:
        text = f.read()

    failures = []

    # 2a. Figure 2: | bytes | measured µs |. The tables document the
    # serial substrate, so pin VMMC_THREADS rather than inherit it.
    fig2 = parse_bench(run([fig2_bench], env={"VMMC_THREADS": "1"}),
                       columns=1)
    rows = table_rows(section(text, "Figure 2"))
    if not rows:
        fail("Figure 2 section has no table rows")
    for cells in rows:
        key = cell_key(cells[0])
        if key not in fig2:
            fail("Figure 2 doc row %r not in bench output" % key)
        check_row("fig2", key, "latency us", cell_value(cells[1]),
                  fig2[key][0], failures)

    # 2b. Figure 3: | bytes | ping-pong MB/s | bidirectional MB/s |
    fig3 = parse_bench(run([fig3_bench], env={"VMMC_THREADS": "1"}),
                       columns=2)
    rows = table_rows(section(text, "Figure 3"))
    if not rows:
        fail("Figure 3 section has no table rows")
    for cells in rows:
        key = cell_key(cells[0])
        if key not in fig3:
            fail("Figure 3 doc row %r not in bench output" % key)
        check_row("fig3", key, "ping-pong MB/s", cell_value(cells[1]),
                  fig3[key][0], failures)
        check_row("fig3", key, "bidirectional MB/s", cell_value(cells[2]),
                  fig3[key][1], failures)

    # 2c. Determinism fingerprints: the documented md5 of the fig2 output
    # for each VMMC_THREADS setting must match a fresh run. This pins both
    # properties the parallel engine promises: the serial substrate is
    # bit-stable, and worker count does not change simulated time.
    n_hashes = 0
    for cells in table_rows(section(text, "Determinism fingerprints")):
        m = re.search(r"VMMC_THREADS=(\d+)", cells[0])
        h = re.search(r"[0-9a-f]{32}", cells[1])
        if m is None or h is None:
            fail("unparsable fingerprint row %r" % cells)
        threads, doc_hash = m.group(1), h.group(0)
        out = run([fig2_bench], env={"VMMC_THREADS": threads})
        fresh = hashlib.md5(out.encode("utf-8")).hexdigest()
        if fresh != doc_hash:
            failures.append(
                "fig2 fingerprint VMMC_THREADS=%s: doc %s, fresh %s"
                % (threads, doc_hash, fresh))
        n_hashes += 1
    if n_hashes < 2:
        fail("Determinism fingerprints section needs a single-thread and a "
             "multi-thread row, found %d" % n_hashes)

    if failures:
        for f in failures:
            print("check_docs: " + f, file=sys.stderr)
        fail("%d doc check(s) failed — update EXPERIMENTS.md or fix the "
             "regression" % len(failures))

    print("check_docs: OK (%d examples, %d fig2 rows, %d fig3 rows, "
          "%d fingerprints)"
          % (len(examples), len(table_rows(section(text, "Figure 2"))),
             len(table_rows(section(text, "Figure 3"))), n_hashes))


if __name__ == "__main__":
    main()
