# Configure, build and run a set of tests under a sanitizer.
# Driven by the `sanitize_core_tests` and `tsan_engine_tests` ctest entries:
#   cmake -DVMMC_SRC=<src> -DVMMC_BIN=<bin> [-DVMMC_SAN=<list>]
#         [-DVMMC_TESTS=<list>] -P sanitize_check.cmake
# Defaults cover the tests that exercise the event-node pool, InlineFn
# storage and the Buffer ref-count/pool code most heavily under
# ASan + UBSan; the TSan entry passes VMMC_SAN=thread and the parallel
# engine test instead (worker threads + SPSC channels + atomics).

if(NOT VMMC_SRC OR NOT VMMC_BIN)
  message(FATAL_ERROR "usage: cmake -DVMMC_SRC=<src> -DVMMC_BIN=<bin> -P sanitize_check.cmake")
endif()

if(NOT VMMC_SAN)
  set(VMMC_SAN "address,undefined")
endif()
if(NOT VMMC_TESTS)
  set(VMMC_TESTS sim_test task_test topology_test)
endif()

set(_tests ${VMMC_TESTS})

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${VMMC_SRC} -B ${VMMC_BIN}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          "-DVMMC_SANITIZE=${VMMC_SAN}"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "sanitized configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${VMMC_BIN} --parallel --target ${_tests}
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "sanitized build failed")
endif()

foreach(_t IN LISTS _tests)
  message(STATUS "running ${_t} under -fsanitize=${VMMC_SAN}")
  execute_process(
    COMMAND ${VMMC_BIN}/tests/${_t}
    RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "${_t} failed under sanitizers")
  endif()
endforeach()
