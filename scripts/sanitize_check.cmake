# Configure, build and run the core engine tests under ASan + UBSan.
# Driven by the `sanitize_core_tests` ctest entry:
#   cmake -DVMMC_SRC=<src> -DVMMC_BIN=<bin> -P sanitize_check.cmake
# Covers the tests that exercise the event-node pool, InlineFn storage and
# the Buffer ref-count/pool code most heavily.

if(NOT VMMC_SRC OR NOT VMMC_BIN)
  message(FATAL_ERROR "usage: cmake -DVMMC_SRC=<src> -DVMMC_BIN=<bin> -P sanitize_check.cmake")
endif()

set(_tests sim_test task_test topology_test)

execute_process(
  COMMAND ${CMAKE_COMMAND} -S ${VMMC_SRC} -B ${VMMC_BIN}
          -DCMAKE_BUILD_TYPE=RelWithDebInfo
          "-DVMMC_SANITIZE=address,undefined"
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "sanitized configure failed")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} --build ${VMMC_BIN} --parallel --target ${_tests}
  RESULT_VARIABLE _rc)
if(NOT _rc EQUAL 0)
  message(FATAL_ERROR "sanitized build failed")
endif()

foreach(_t IN LISTS _tests)
  message(STATUS "running ${_t} under ASan/UBSan")
  execute_process(
    COMMAND ${VMMC_BIN}/tests/${_t}
    RESULT_VARIABLE _rc)
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR "${_t} failed under sanitizers")
  endif()
endforeach()
