#!/usr/bin/env python3
"""CI gate for the static-analysis layer (ctest: lint_check /
clang_tidy_check).

Default mode runs tools/vmmc-lint over the whole tree — parallel across
translation units, stable sorted output, nonzero exit on any finding.
`--clang-tidy=<exe>` instead runs clang-tidy (checks from the repo's
.clang-tidy) over the compilation database.

Escape hatch: VMMC_LINT=off in the environment skips either mode with exit
0 — for hosts where the toolchain is too old for the lint to be meaningful
(the lint itself needs only Python; clang-tidy mode needs LLVM). Configure
with -DVMMC_LINT=OFF to drop the ctest entries entirely.

Usage:
  check_lint.py --root /path/to/repo [--jobs N]
  check_lint.py --root /path/to/repo --clang-tidy clang-tidy \
                --build-dir build [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(HERE), "tools", "vmmc-lint"))


def run_vmmc_lint(root: str, jobs: int) -> int:
    import vmmc_lint

    files = vmmc_lint.default_files(root)
    if not files:
        print("check_lint: no C++ sources found", file=sys.stderr)
        return 2
    resolved = vmmc_lint.resolve_unordered_names(files)

    def one(f: str):
        return vmmc_lint.lint_file(f, os.path.relpath(f, root),
                                   resolved.get(f, set()), backend="auto")

    findings = []
    if jobs > 1:
        # Threads, not processes: lint_file is regex-bound C code inside
        # `re`, which releases the GIL rarely — but process spawn cost
        # dominates for this file count anyway, and threads keep the
        # symbol table shared. Chunk statically for determinism.
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for result in pool.map(one, files):
                findings.extend(result)
    else:
        for f in files:
            findings.extend(one(f))

    for fin in sorted(findings):
        print(fin.render())
    n = len(findings)
    if n:
        print(f"\ncheck_lint: {n} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"check_lint: clean — {len(files)} files, 0 findings")
    return 0


def run_clang_tidy(root: str, tidy: str, build_dir: str, jobs: int) -> int:
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"check_lint: {db_path} not found; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    # Only first-party TUs: skip anything outside src/tests/bench/examples
    # (GTest, benchmark headers pulled in as system deps are not ours).
    wanted = []
    for entry in db:
        f = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        rel = os.path.relpath(f, root)
        if not rel.startswith("..") and rel.split(os.sep)[0] in (
                "src", "tests", "bench", "examples"):
            wanted.append(f)
    wanted = sorted(set(wanted))
    if not wanted:
        print("check_lint: no project TUs in the compilation database",
              file=sys.stderr)
        return 2

    def one(f: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", build_dir, "--quiet", f],
            capture_output=True, text=True)
        return f, proc.returncode, proc.stdout

    results = []
    from concurrent.futures import ThreadPoolExecutor
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        for r in pool.map(one, wanted):
            results.append(r)

    failed = 0
    for f, code, out in sorted(results):
        if code != 0 or "warning:" in out or "error:" in out:
            failed += 1
            print(f"== {os.path.relpath(f, root)}")
            print(out.rstrip())
    if failed:
        print(f"\ncheck_lint: clang-tidy flagged {failed}/{len(wanted)} TUs",
              file=sys.stderr)
        return 1
    print(f"check_lint: clang-tidy clean — {len(wanted)} TUs")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--root", default=os.path.dirname(HERE))
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count()))
    ap.add_argument("--clang-tidy", default=None, metavar="EXE",
                    help="run clang-tidy instead of vmmc-lint")
    ap.add_argument("--build-dir", default=None,
                    help="build dir with compile_commands.json (tidy mode)")
    args = ap.parse_args()

    if os.environ.get("VMMC_LINT", "").lower() in ("off", "0", "false"):
        print("check_lint: skipped (VMMC_LINT=off)")
        return 0

    root = os.path.abspath(args.root)
    if args.clang_tidy:
        return run_clang_tidy(root, args.clang_tidy,
                              os.path.abspath(args.build_dir or "build"),
                              args.jobs)
    return run_vmmc_lint(root, args.jobs)


if __name__ == "__main__":
    sys.exit(main())
