#!/usr/bin/env python3
"""vmmc-lint: project-specific determinism & coroutine-safety linter.

Every rule here is grounded in a bug this repo actually shipped (or a class
the determinism contract in DESIGN.md bans):

  R1  co-await-subexpr      `co_await` inside a ternary / comma / call-argument
                            subexpression. GCC 12 miscompiled coroutine frames
                            for awaits in ternary branches (the PR 9
                            frame-corruption bug in api.cpp / kv_server);
                            temporaries that live across the suspension are a
                            hazard in every compiler. Await into a named local
                            first.
  R2  unordered-iter        Iteration over std::unordered_map/unordered_set in
                            sim-visible code. Hash order is
                            implementation-defined; when iteration order feeds
                            event scheduling the headline guarantee (bit-equal
                            results for any VMMC_THREADS) silently breaks.
  R3  nondet-source         std::random_device, rand()/srand(), wall-clock
                            reads (system_clock/steady_clock/
                            high_resolution_clock, time(), gettimeofday, ...)
                            in sim code. All randomness must come from the
                            seeded sim::Rng; all time from Simulator::Now().
  R4  raw-buffer            Raw new[]/malloc or std::vector<byte> payload
                            buffers in hot-path code that must use the pooled
                            util::Buffer / EventNode tiers (the PR 4
                            zero-alloc contract enforced by perf_guard_test).
  R5  ref-capture-coawait   Lambda capturing by reference whose body crosses a
                            co_await/co_yield suspension point. The frame
                            holds the reference; if the coroutine outlives the
                            enclosing scope the capture dangles.

Allowlist: a justified suppression on the offending line or the line above:

    // vmmc-lint: allow(unordered-iter): keys are sorted before visiting

The justification after the colon is mandatory; bare allow() comments are
themselves reported (rule ALLOW-NO-REASON).

Backends:
  * clang  — uses Python clang.cindex (libclang) for exact tokenization, and
             AST-level confirmation for R1/R5.
  * regex  — a built-in C++ comment/string stripper feeding the same rule
             engines. No dependencies; this is the authoritative gate on
             hosts without libclang (the CI container, for one).
  * auto   — clang if importable, else regex.

Output is `path:line:col: RULE[slug]: message`, sorted, stable. Exit status
is 1 iff at least one finding is reported.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = {
    "R0": "allow-no-reason",
    "R1": "co-await-subexpr",
    "R2": "unordered-iter",
    "R3": "nondet-source",
    "R4": "raw-buffer",
    "R5": "ref-capture-coawait",
}
SLUG_TO_RULE = {v: k for k, v in RULES.items()}

# Directory scopes, relative to the repo root. A rule only fires inside its
# scope (overridable with --scope for fixtures / self-tests).
#
#   all : everything handed to the linter                       (R1)
#   sim : src/ + include/ — code whose behaviour is sim-visible (R2, R3, R5)
#   hot : the packet/event hot path under the PR 4 pooled-
#         buffer contract                                       (R4)
SIM_PREFIXES = ("src/", "include/")
HOT_PREFIXES = (
    "src/sim/",
    "src/lanai/",
    "src/myrinet/",
    "src/vmmc/",
    "include/vmmc/sim/",
    "include/vmmc/lanai/",
    "include/vmmc/myrinet/",
    "include/vmmc/vmmc/",
)

ALLOW_RE = re.compile(
    r"//\s*vmmc-lint:\s*allow\(([a-z0-9_,\s-]+)\)\s*(?::\s*(\S.*))?")

CXX_EXTS = (".h", ".hpp", ".cpp", ".cc", ".cxx")


@dataclass(order=True)
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str = field(compare=False)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule}[{RULES[self.rule]}]: {self.message}")


# ---------------------------------------------------------------------------
# Tokenization: blank out comments and string/char literals while preserving
# byte offsets and newlines, so rule regexes see only code and reported
# positions match the original file.
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == '"' or c == "'":
            # Raw strings: R"delim( ... )delim"
            if c == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^()\\ \n]*)\(', text[i - 1:])
                if m:
                    close = ")" + m.group(1) + '"'
                    j = text.find(close, i + len(m.group(0)))
                    j = n - len(close) if j < 0 else j
                    end = j + len(close)
                    for k in range(i + 1, end - 1):
                        if out[k] != "\n":
                            out[k] = " "
                    i = end
                    continue
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            for k in range(i + 1, min(j, n)):
                out[k] = " "
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


def line_col(text: str, pos: int) -> tuple[int, int]:
    line = text.count("\n", 0, pos) + 1
    last_nl = text.rfind("\n", 0, pos)
    return line, pos - last_nl  # col is 1-based


# ---------------------------------------------------------------------------
# Allowlist
# ---------------------------------------------------------------------------

class Allowlist:
    """Justified `// vmmc-lint: allow(slug): reason` suppressions."""

    def __init__(self, raw_lines: list[str]):
        self.by_line: dict[int, set[str]] = {}
        self.bare: list[int] = []  # allow() with no justification
        for idx, line in enumerate(raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            slugs = {s.strip() for s in m.group(1).split(",") if s.strip()}
            if not m.group(2):
                self.bare.append(idx)
                continue
            self.by_line.setdefault(idx, set()).update(slugs)
            # A standalone allow-comment covers the next code line, skipping
            # continuation comment lines (multi-line justifications).
            if line.lstrip().startswith("//"):
                for j in range(idx, len(raw_lines)):
                    nxt = raw_lines[j].strip()
                    if nxt and not nxt.startswith("//"):
                        self.by_line.setdefault(j + 1, set()).update(slugs)
                        break

    def allows(self, line: int, slug: str) -> bool:
        for probe in (line, line - 1):
            slugs = self.by_line.get(probe)
            if slugs and (slug in slugs or "all" in slugs):
                return True
        return False


# ---------------------------------------------------------------------------
# Rule engines (shared by both backends; operate on stripped text)
# ---------------------------------------------------------------------------

def _statement_start(clean: str, pos: int) -> int:
    """Best-effort start of the statement containing `pos`: scan back to the
    nearest ';', '{' or '}' (approximation is fine — rules only look at the
    prefix for expression-shape evidence)."""
    i = pos - 1
    while i >= 0 and clean[i] not in ";{}":
        i -= 1
    return i + 1


def rule_r1(clean: str) -> list[tuple[int, str]]:
    """co_await inside ternary / comma / call-argument subexpressions."""
    findings = []
    for m in re.finditer(r"\bco_await\b", clean):
        start = _statement_start(clean, m.start())
        prefix = clean[start:m.start()]
        # (a) ternary branch: an (unmatched-by-':') '?' earlier in the same
        # statement means this await sits in a conditional-expression branch.
        # '::' never uses a lone '?', so any '?' is a ternary.
        if "?" in prefix:
            findings.append((m.start(),
                             "co_await in a ternary subexpression (GCC-12 "
                             "coroutine-frame corruption class, PR 9); await "
                             "into a named local before selecting"))
            continue
        # (b) call argument: prefix ends with ',' or with 'ident(' where
        # ident is a real function (not a control keyword / grouping paren).
        trimmed = prefix.rstrip()
        if trimmed.endswith(","):
            # Only a hazard when inside an argument list, i.e. there is an
            # unclosed '(' in the statement prefix.
            depth = trimmed.count("(") - trimmed.count(")")
            if depth > 0:
                findings.append((m.start(),
                                 "co_await as a non-first function-call "
                                 "argument; evaluation order of siblings "
                                 "straddles the suspension — await into a "
                                 "named local first"))
            continue
        if trimmed.endswith("("):
            before = trimmed[:-1].rstrip()
            ident = re.search(r"([A-Za-z_]\w*)\s*$", before)
            if ident and ident.group(1) not in (
                    "if", "while", "for", "switch", "return", "co_return",
                    "co_await", "co_yield", "assert", "sizeof", "alignof",
                    "decltype", "static_cast", "catch"):
                findings.append((m.start(),
                                 f"co_await inside the argument list of "
                                 f"'{ident.group(1)}(...)'; the call's "
                                 "temporaries live across the suspension — "
                                 "await into a named local first"))
    return findings


_UNORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*unordered_(?:map|set|multimap"
                                r"|multiset)\s*<")
# Ordered/sequence containers: a name declared with one of these is NOT an
# unordered container in that file — used to resolve cross-file name
# collisions (e.g. `entries_` is an unordered_map in one class and a
# std::vector in another).
_ORDERED_DECL_RE = re.compile(r"\bstd\s*::\s*(?:map|set|multimap|multiset"
                              r"|vector|deque|array|list)\s*<")


def _decl_names(clean: str, decl_re: re.Pattern) -> set[str]:
    names: set[str] = set()
    for m in decl_re.finditer(clean):
        # Match the template argument list with a bracket counter.
        i = m.end() - 1  # at '<'
        depth = 0
        n = len(clean)
        while i < n:
            if clean[i] == "<":
                depth += 1
            elif clean[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        tail = clean[i + 1:i + 160]
        # `...> name;` / `> name{...}` / `> name =` / `> name(` — member,
        # local, param, or function returning the container; also `>& name`.
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*[;{=(,)]", tail)
        if dm and dm.group(1) not in ("const", "constexpr", "static",
                                      "mutable", "inline", "operator"):
            names.add(dm.group(1))
    return names


def collect_unordered_names(clean: str) -> set[str]:
    """Names declared with an unordered container type in this text."""
    return _decl_names(clean, _UNORDERED_DECL_RE)


def collect_ordered_names(clean: str) -> set[str]:
    """Names declared with an ordered/sequence container type."""
    return _decl_names(clean, _ORDERED_DECL_RE)


def rule_r2(clean: str, unordered_names: set[str]) -> list[tuple[int, str]]:
    """Iteration over unordered containers (range-for or .begin())."""
    findings = []
    if not unordered_names:
        return findings
    # Range-for: `for (decl : expr)` where expr's terminal identifier is a
    # known unordered name (handles `m_`, `obj.m_`, `ptr->m_`, `m_fn()`).
    for m in re.finditer(r"\bfor\s*\(([^;()]*?(?:\([^()]*\))?[^;()]*?):"
                         r"([^;)]*)\)", clean):
        expr = m.group(2).strip()
        idm = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$", expr)
        if idm and idm.group(1) in unordered_names:
            findings.append((m.start(),
                             f"range-for over unordered container "
                             f"'{idm.group(1)}'; hash order is nondeterministic"
                             " and leaks into event scheduling — use std::map,"
                             " a sorted vector, or sort keys first"))
    # Explicit iterator loops: name.begin() / name.cbegin().
    for m in re.finditer(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(", clean):
        if m.group(1) in unordered_names:
            findings.append((m.start(),
                             f"iterator walk over unordered container "
                             f"'{m.group(1)}'; hash order is nondeterministic"
                             " — use std::map, a sorted vector, or sort keys"
                             " first"))
    return findings


_R3_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*random_device\b|\brandom_device\b"),
     "std::random_device is host entropy; use the seeded sim::Rng"),
    (re.compile(r"\b(?:s?rand)\s*\("),
     "rand()/srand() is process-global nondeterminism; use the seeded "
     "sim::Rng"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock source in sim code; sim time comes from Simulator::Now()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the host clock; sim time comes from Simulator::Now()"),
    (re.compile(r"\bclock\s*\(\s*\)"),
     "clock() reads host CPU time; sim time comes from Simulator::Now()"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get)\b"),
     "host clock read in sim code; sim time comes from Simulator::Now()"),
    (re.compile(r"\bgetpid\s*\("),
     "getpid() varies per run; derive ids from node rank / sim state"),
]


def rule_r3(clean: str) -> list[tuple[int, str]]:
    findings = []
    for pat, msg in _R3_PATTERNS:
        for m in pat.finditer(clean):
            findings.append((m.start(), msg))
    return findings


_R4_PATTERNS = [
    (re.compile(r"\bnew\s+[A-Za-z_][\w:]*(?:\s*<[^;<>]*>)?\s*\["),
     "raw array new in the hot path; use the pooled util::Buffer / "
     "sim::EventNode tiers (PR 4 zero-alloc contract)"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("),
     "malloc-family allocation in the hot path; use the pooled util::Buffer"
     " / sim::EventNode tiers (PR 4 zero-alloc contract)"),
    (re.compile(r"\bstd\s*::\s*vector\s*<\s*(?:std\s*::\s*)?"
                r"(?:uint8_t|byte|unsigned\s+char)\s*>\s+[A-Za-z_]\w*"
                r"\s*[;{=(]"),
     "byte-vector buffer declared in the hot path; payload storage must be "
     "the pooled, copy-on-write util::Buffer (PR 4 zero-copy contract)"),
]


def rule_r4(clean: str) -> list[tuple[int, str]]:
    findings = []
    for pat, msg in _R4_PATTERNS:
        for m in pat.finditer(clean):
            findings.append((m.start(), msg))
    return findings


# `[&]`, `[&x]`, `[this, &x]`, `[=, &y]` — any by-reference capture. Plain
# subscripts like `arr[&x - base]` also match; the body-span scan rejects
# anything not followed by a lambda body.
_CAPTURE_REF_RE = re.compile(r"\[\s*&|\[[^\]\n]*?[,\s]&")


def _lambda_body_span(clean: str, cap_start: int) -> tuple[int, int] | None:
    """Given the position of a lambda's '[', return (open, close) of its body
    braces, skipping the parameter list / specifiers / trailing return."""
    close_br = clean.find("]", cap_start)
    if close_br < 0:
        return None
    i = close_br + 1
    n = len(clean)
    # Skip whitespace, parameter list, specifiers, trailing return type up to
    # the body '{'. Stop early on tokens that prove this wasn't a lambda.
    depth = 0
    while i < n:
        c = clean[i]
        if c == "(" or c == "<":
            depth += 1
        elif c == ")" or c == ">":
            depth -= 1
        elif c == "{" and depth <= 0:
            break
        elif depth <= 0 and c in ";=]":
            return None  # array subscript / attribute, not a lambda
        i += 1
    if i >= n:
        return None
    open_brace = i
    depth = 0
    while i < n:
        if clean[i] == "{":
            depth += 1
        elif clean[i] == "}":
            depth -= 1
            if depth == 0:
                return open_brace, i
        i += 1
    return None


def rule_r5(clean: str) -> list[tuple[int, str]]:
    """Lambda capturing by reference whose body suspends."""
    findings = []
    for m in _CAPTURE_REF_RE.finditer(clean):
        # The regex can also hit `a[&b]` indexing or `operator[](...)`; the
        # body-span scan rejects those (no brace body follows).
        span = _lambda_body_span(clean, m.start(m.lastindex or 0))
        if span is None:
            continue
        body = clean[span[0]:span[1]]
        if re.search(r"\bco_await\b|\bco_yield\b", body):
            findings.append((m.start(),
                             "by-reference lambda capture crossing a "
                             "co_await suspension; the coroutine frame holds "
                             "the reference and dangles if it outlives this "
                             "scope — capture by value (this + copies) or "
                             "pass explicit parameters"))
    return findings


# ---------------------------------------------------------------------------
# Optional libclang backend: exact tokenization + AST confirmation.
# ---------------------------------------------------------------------------

def _try_clang_index():
    try:
        from clang import cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def clang_clean_text(cindex, path: str, text: str) -> str | None:
    """Rebuild the stripped view from libclang's token stream (exact comment
    and literal positions, no hand-rolled lexing). Falls back to None on any
    parse trouble; callers then use the built-in stripper."""
    try:
        tu = cindex.TranslationUnit.from_source(
            path, args=["-std=c++20", "-fsyntax-only"],
            unsaved_files=[(path, text)],
            options=0)
        out = [c if c == "\n" else " " for c in text]
        for tok in tu.get_tokens(extent=tu.cursor.extent):
            kind = tok.kind.name
            if kind in ("COMMENT", "LITERAL") and kind == "COMMENT":
                continue
            start = tok.extent.start.offset
            spelling = tok.spelling
            if kind == "LITERAL" and (spelling.startswith('"')
                                      or spelling.startswith("'")):
                continue
            for k, ch in enumerate(spelling):
                if 0 <= start + k < len(out):
                    out[start + k] = ch
        return "".join(out)
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def scope_of(rel_path: str) -> set[str]:
    rp = rel_path.replace(os.sep, "/")
    scopes = {"all"}
    if rp.startswith(SIM_PREFIXES):
        scopes.add("sim")
    if rp.startswith(HOT_PREFIXES):
        scopes.add("hot")
    return scopes


RULE_SCOPE = {"R1": "all", "R2": "sim", "R3": "sim", "R4": "hot", "R5": "sim"}


def lint_file(path: str, rel_path: str, unordered_names: set[str],
              backend: str = "auto", scope_override: str | None = None,
              rules: set[str] | None = None) -> list[Finding]:
    try:
        text = open(path, encoding="utf-8", errors="replace").read()
    except OSError as e:
        return [Finding(rel_path, 1, 1, "R3", f"unreadable: {e}")]

    cindex = _try_clang_index() if backend in ("auto", "clang") else None
    clean = None
    if cindex is not None:
        clean = clang_clean_text(cindex, path, text)
    if clean is None:
        clean = strip_comments_and_strings(text)

    raw_lines = text.splitlines()
    allow = Allowlist(raw_lines)
    scopes = {scope_override} | {"all"} if scope_override else scope_of(rel_path)
    active = rules or set(RULES)

    hits: list[tuple[str, int, str]] = []  # (rule, pos, message)
    if "R1" in active and RULE_SCOPE["R1"] in scopes:
        hits += [("R1", pos, msg) for pos, msg in rule_r1(clean)]
    if "R2" in active and RULE_SCOPE["R2"] in scopes:
        local_un = collect_unordered_names(clean)
        local_ord = collect_ordered_names(clean)
        effective = (unordered_names | local_un) - (local_ord - local_un)
        hits += [("R2", pos, msg) for pos, msg in rule_r2(clean, effective)]
    if "R3" in active and RULE_SCOPE["R3"] in scopes:
        hits += [("R3", pos, msg) for pos, msg in rule_r3(clean)]
    if "R4" in active and RULE_SCOPE["R4"] in scopes:
        hits += [("R4", pos, msg) for pos, msg in rule_r4(clean)]
    if "R5" in active and RULE_SCOPE["R5"] in scopes:
        hits += [("R5", pos, msg) for pos, msg in rule_r5(clean)]

    findings: list[Finding] = []
    for rule, pos, msg in hits:
        line, col = line_col(text, pos)
        if allow.allows(line, RULES[rule]):
            continue
        findings.append(Finding(rel_path, line, col, rule, msg))
    for line in allow.bare:
        findings.append(Finding(
            rel_path, line, 1, "R0",
            "vmmc-lint allow() without a justification "
            "(write `// vmmc-lint: allow(slug): why it is safe`)"))
    return sorted(findings)


def resolve_unordered_names(files: list[str]) -> dict[str, set[str]]:
    """Per-file R2 symbol table. A name counts as unordered for a TU if

      (a) the TU itself or a same-basename file (its paired header) declares
          it with an unordered container type, or
      (b) some project file declares it unordered and NO project file
          declares the same name as an ordered/sequence container — i.e.
          the name is globally unambiguous.

    This lets `src/foo/bar.cpp` see members declared in
    `include/.../bar.h`, without a name like `entries_` that is an
    unordered_map in one class and a std::vector in another poisoning
    unrelated files."""
    per_un: dict[str, set[str]] = {}
    per_ord: dict[str, set[str]] = {}
    for f in files:
        try:
            text = open(f, encoding="utf-8", errors="replace").read()
        except OSError:
            per_un[f], per_ord[f] = set(), set()
            continue
        clean = strip_comments_and_strings(text)
        per_un[f] = collect_unordered_names(clean)
        per_ord[f] = collect_ordered_names(clean)
    global_un = set().union(*per_un.values()) if per_un else set()
    global_ord = set().union(*per_ord.values()) if per_ord else set()
    unambiguous = global_un - global_ord

    by_base: dict[str, list[str]] = {}
    for f in files:
        base = os.path.splitext(os.path.basename(f))[0]
        by_base.setdefault(base, []).append(f)

    resolved: dict[str, set[str]] = {}
    for f in files:
        base = os.path.splitext(os.path.basename(f))[0]
        paired_un: set[str] = set()
        paired_ord: set[str] = set()
        for g in by_base[base]:
            paired_un |= per_un[g]
            paired_ord |= per_ord[g]
        resolved[f] = unambiguous | (paired_un - (paired_ord - paired_un))
    return resolved


def default_files(root: str) -> list[str]:
    out = []
    for sub in ("src", "include", "tests", "bench", "examples"):
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            if "lint_fixtures" in dirpath:
                continue
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTS):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to lint (default: the whole project tree)")
    ap.add_argument("--root", default=None,
                    help="repo root for scope computation (default: walk up "
                    "from this script)")
    ap.add_argument("--backend", choices=("auto", "clang", "regex"),
                    default="auto")
    ap.add_argument("--scope", choices=("all", "sim", "hot"), default=None,
                    help="force a directory scope (fixtures / self-tests)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset, e.g. R1,R5")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, slug in RULES.items():
            print(f"{rid}  {slug}  (scope: {RULE_SCOPE[rid]})")
        return 0

    root = os.path.abspath(args.root) if args.root else os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", ".."))
    files = [os.path.abspath(f) for f in args.files] or default_files(root)

    rules = None
    if args.rules:
        rules = {r.strip().upper() for r in args.rules.split(",")}
        bad = rules - set(RULES)
        if bad:
            ap.error(f"unknown rules: {sorted(bad)}")

    backend = args.backend
    if backend == "clang" and _try_clang_index() is None:
        print("vmmc-lint: --backend=clang requested but clang.cindex is "
              "unavailable; install libclang or use --backend=regex",
              file=sys.stderr)
        return 2

    # Pass A: project-wide unordered-container symbol table (R2 needs decls
    # from headers when linting the .cpp that iterates them).
    resolved = resolve_unordered_names(files)

    findings: list[Finding] = []
    for f in files:
        rel = os.path.relpath(f, root)
        findings += lint_file(f, rel, resolved.get(f, set()), backend=backend,
                              scope_override=args.scope, rules=rules)

    for fin in sorted(findings):
        print(fin.render())
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
