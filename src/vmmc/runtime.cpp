#include "vmmc/vmmc/runtime.h"

#include <cstdlib>

namespace vmmc::vmmc_core {

int ClusterRuntime::EnvThreads() {
  const char* env = std::getenv("VMMC_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 2) return 1;
  return v > 256 ? 256 : static_cast<int>(v);
}

ClusterRuntime::ClusterRuntime(const Params& params, ClusterOptions options,
                               RuntimeOptions rt) {
  threads_ = rt.threads > 0 ? rt.threads : EnvThreads();
  if (threads_ >= 2) {
    sim::ParallelEngine::Options eopts;
    eopts.workers = threads_;
    eopts.channel_capacity = rt.channel_capacity;
    // Minimum one-hop wormhole latency is the conservative lookahead: no
    // cross-LP influence can travel faster than one link traversal.
    engine_ = std::make_unique<sim::ParallelEngine>(params.net.link_latency,
                                                    eopts);
    cluster_ = std::make_unique<Cluster>(*engine_, params, options);
  } else {
    threads_ = 1;
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<Cluster>(*sim_, params, options);
  }
}

void ClusterRuntime::ConfigureFaults(const sim::FaultPlan& plan) {
  if (engine_ != nullptr) {
    for (int s = 0; s < engine_->num_shards(); ++s) {
      engine_->shard(s).faults().Configure(plan);
    }
  } else {
    sim_->faults().Configure(plan);
  }
}

}  // namespace vmmc::vmmc_core
