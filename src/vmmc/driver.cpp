#include "vmmc/vmmc/driver.h"

#include <string>

namespace vmmc::vmmc_core {

void VmmcDriver::EnsureObs() {
  if (track_ >= 0 || nic_.nic_id() < 0) return;
  const std::string node = "node" + std::to_string(nic_.nic_id());
  obs::Registry& m = kernel_.simulator().metrics();
  tlb_fills_m_ = &m.GetCounter(node + ".driver.tlb_fills");
  pages_pinned_m_ = &m.GetCounter(node + ".driver.pages_pinned");
  notifications_m_ = &m.GetCounter(node + ".driver.notifications");
  track_ = kernel_.simulator().tracer().RegisterTrack(node + ".driver");
}

sim::Process VmmcDriver::HandleInterrupt() {
  // The kernel already charged the interrupt-entry cost; this is the
  // driver's own work.
  sim::Simulator& sim = kernel_.simulator();
  EnsureObs();
  auto span = track_ >= 0 ? sim.tracer().Scope(track_, "irq")
                          : obs::Tracer::Span();
  co_await sim.Delay(1000);  // dispatch, read LCP service registers

  // --- TLB-miss service (§4.5) ---
  while (auto miss = lcp_.TakePendingTlbMiss()) {
    const auto [pid, vpn] = *miss;
    host::UserProcess* proc = kernel_.FindProcess(pid);
    ProcState* state = lcp_.FindProc(pid);
    std::vector<std::pair<mem::Vpn, mem::Pfn>> fills;
    if (proc != nullptr && state != nullptr) {
      // "On one interrupt, translations for up to 32 pages are inserted
      // into the SRAM TLB. Send pages are locked in memory by the VMMC
      // driver when it provides the translations" (§4.5).
      for (std::uint32_t i = 0; i < params_.vmmc.tlb_fill_batch; ++i) {
        const mem::VirtAddr va = mem::PageAddr(vpn + i);
        mem::AddressSpace& as = proc->address_space();
        if (!as.Translate(va).ok()) break;  // ran past the mapped region
        if (!as.TranslatePinned(va).ok()) {
          if (!kernel_.PinUserPages(*proc, va, 1).ok()) break;
          ++pages_pinned_;
          if (pages_pinned_m_ != nullptr) pages_pinned_m_->Inc();
        }
        fills.emplace_back(vpn + i, mem::PageNumber(as.Translate(va).value()));
        co_await sim.Delay(300);  // per-page walk + lock
      }
    }
    ++tlb_fills_;
    if (tlb_fills_m_ != nullptr) tlb_fills_m_->Inc();
    // Wake the LANai whether or not we found translations; an empty fill
    // makes it fail the send with kBadAddress.
    lcp_.CompleteTlbFill(pid, fills);
  }

  // --- notification delivery (§5.1: signals) ---
  while (auto n = lcp_.PopNotification()) {
    pending_[n->pid].push_back(UserNotification{n->export_id, n->msg_len});
    ++notifications_delivered_;
    if (notifications_m_ != nullptr) notifications_m_->Inc();
    co_await sim.Delay(500);  // queue management
    (void)kernel_.PostSignal(n->pid, host::kSigVmmcNotify);
  }
}

std::vector<UserNotification> VmmcDriver::DrainNotifications(int pid) {
  auto it = pending_.find(pid);
  if (it == pending_.end()) return {};
  std::vector<UserNotification> out(it->second.begin(), it->second.end());
  it->second.clear();
  return out;
}

}  // namespace vmmc::vmmc_core
