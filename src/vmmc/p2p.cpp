#include "vmmc/vmmc/p2p.h"

#include <algorithm>

#include "vmmc/host/machine.h"
#include "vmmc/util/buffer.h"

namespace vmmc::vmmc_core {

std::uint32_t P2pChannel::ReadWord(mem::VirtAddr va) const {
  std::uint8_t b[4];
  (void)ep_.ReadBuffer(va, b);
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

void P2pChannel::WriteWord(mem::VirtAddr va, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  (void)ep_.WriteBuffer(va, b);
}

sim::Task<Result<std::unique_ptr<P2pChannel>>> P2pChannel::Create(
    Endpoint& ep, int peer, std::string tag, P2pParams params) {
  using Out = Result<std::unique_ptr<P2pChannel>>;
  if (peer < 0 || peer == ep.node_id()) {
    co_return Out(InvalidArgument("bad peer node"));
  }
  std::unique_ptr<P2pChannel> ch(
      new P2pChannel(ep, peer, std::move(tag), params));
  Status s = co_await ch->SetupBuffers();
  if (!s.ok()) co_return Out(s);

  const std::string prefix =
      "node" + std::to_string(ep.node_id()) + ".p2p.";
  obs::Registry& m = ep.machine().kernel().simulator().metrics();
  ch->eager_sends_m_ = &m.GetCounter(prefix + "eager_sends");
  ch->rdv_sends_m_ = &m.GetCounter(prefix + "rendezvous_sends");
  co_return std::move(ch);
}

sim::Task<Status> P2pChannel::SetupBuffers() {
  const std::uint32_t slot_bytes = eager_cap() + 12;
  auto slot = ep_.AllocBuffer(slot_bytes);
  if (!slot.ok()) co_return slot.status();
  recv_slot = slot.value();
  auto ack = ep_.AllocBuffer(64);
  if (!ack.ok()) co_return ack.status();
  ack_word = ack.value();
  auto ack_staging = ep_.AllocBuffer(64);
  if (!ack_staging.ok()) co_return ack_staging.status();
  ack_out = ack_staging.value();
  auto staging = ep_.AllocBuffer(slot_bytes);
  if (!staging.ok()) co_return staging.status();
  send_staging = staging.value();

  const std::string me = std::to_string(ep_.node_id());
  const std::string them = std::to_string(peer_);
  {
    ExportOptions opts;
    opts.name = tag_ + "-pd-" + me + "-" + them;
    auto id = co_await ep_.ExportBuffer(recv_slot, slot_bytes, std::move(opts));
    if (!id.ok()) co_return id.status();
  }
  {
    ExportOptions opts;
    opts.name = tag_ + "-pa-" + me + "-" + them;
    auto id = co_await ep_.ExportBuffer(ack_word, 64, std::move(opts));
    if (!id.ok()) co_return id.status();
  }

  ImportOptions wait;
  wait.wait = true;
  wait.max_attempts = 2000;
  auto data =
      co_await ep_.ImportBuffer(peer_, tag_ + "-pd-" + them + "-" + me, wait);
  if (!data.ok()) co_return data.status();
  send_slot = data.value().proxy_base;
  auto pack =
      co_await ep_.ImportBuffer(peer_, tag_ + "-pa-" + them + "-" + me, wait);
  if (!pack.ok()) co_return pack.status();
  peer_ack = pack.value().proxy_base;
  co_return OkStatus();
}

sim::Task<Status> P2pChannel::WaitAcked(std::uint32_t seq) {
  sim::Simulator& sim = ep_.machine().kernel().simulator();
  while (ReadWord(ack_word) != seq) co_await sim.Delay(params_.poll);
  if (pending_region_live_) {
    // The peer pulled the last rendezvous payload: its source
    // registration can go back to the cache.
    pending_region_live_ = false;
    (void)co_await ep_.UnregisterMemory(pending_region_);
  }
  co_return OkStatus();
}

sim::Task<Status> P2pChannel::Flush() {
  co_return co_await WaitAcked(next_send_seq - 1);
}

sim::Task<Status> P2pChannel::SendTrailer(std::uint32_t len,
                                          std::uint32_t kind) {
  const mem::VirtAddr t = send_staging + eager_cap();
  WriteWord(t, len);
  WriteWord(t + 4, kind);
  WriteWord(t + 8, next_send_seq);
  co_return co_await ep_.SendMsg(t, send_slot + eager_cap(), 12);
}

sim::Task<Status> P2pChannel::Send(mem::VirtAddr src, std::uint32_t len) {
  // Credit: one message may be in the slot; the previous one must have
  // been consumed (this also retires the previous source registration).
  Status credit = co_await WaitAcked(next_send_seq - 1);
  if (!credit.ok()) co_return credit;

  const bool eager = len <= params_.eager_max;
  if (eager) {
    if (len > 0) {
      // Copy-through: one host bcopy into the wire staging buffer. Pooled
      // storage — every eager send runs this, so no per-send heap alloc.
      util::Buffer tmp = util::Buffer::Uninitialized(len);
      if (Status r = ep_.ReadBuffer(src, {tmp.MutableData(), tmp.size()});
          !r.ok()) {
        co_return r;
      }
      if (Status w = ep_.WriteBuffer(send_staging, tmp); !w.ok()) co_return w;
      co_await ep_.machine().cpu().Bcopy(len);
      Status s = co_await ep_.SendMsg(send_staging, send_slot, len);
      if (!s.ok()) co_return s;
    }
    ++stats_.eager_sends;
    eager_sends_m_->Inc();
  } else {
    // Reader-pull rendezvous: register the source (warm in the pin-down
    // cache on repeats) and advertise its rtag; the receiver RdmaReads.
    auto region = co_await ep_.RegisterMemory(src, len, RegIntent::kRecv);
    if (!region.ok()) co_return region.status();
    WriteWord(send_staging, region.value().rtag);
    // Offset of the payload inside the region: 0 by construction, kept
    // on the wire so the record format doesn't change if that does.
    WriteWord(send_staging + 4, 0);
    WriteWord(send_staging + 8, 0);
    Status s = co_await ep_.SendMsg(send_staging, send_slot, kRtsBytes);
    if (!s.ok()) {
      (void)co_await ep_.UnregisterMemory(region.value());
      co_return s;
    }
    pending_region_ = region.value();
    pending_region_live_ = true;
    ++stats_.rendezvous_sends;
    rdv_sends_m_->Inc();
  }
  stats_.bytes_sent += len;
  Status t = co_await SendTrailer(len, eager ? kKindEager : kKindRts);
  if (!t.ok()) co_return t;
  ++next_send_seq;
  co_return OkStatus();
}

sim::Task<Result<mem::VirtAddr>> P2pChannel::EnsureScratch(
    mem::VirtAddr* va, std::uint32_t* cap, std::uint32_t need) {
  if (*va != 0 && *cap >= need) co_return *va;
  if (*va != 0) (void)ep_.FreeBuffer(*va);
  *va = 0;
  *cap = 0;
  auto fresh = ep_.AllocBuffer(need);
  if (!fresh.ok()) co_return fresh.status();
  *va = fresh.value();
  *cap = static_cast<std::uint32_t>(mem::RoundUpToPage(need));
  co_return *va;
}

sim::Task<Status> P2pChannel::Send(std::span<const std::uint8_t> data) {
  const auto len = static_cast<std::uint32_t>(data.size());
  if (len <= params_.eager_max) {
    Status credit = co_await WaitAcked(next_send_seq - 1);
    if (!credit.ok()) co_return credit;
    if (len > 0) {
      if (Status w = ep_.WriteBuffer(send_staging, data); !w.ok()) co_return w;
      co_await ep_.machine().cpu().Bcopy(len);
      Status s = co_await ep_.SendMsg(send_staging, send_slot, len);
      if (!s.ok()) co_return s;
    }
    ++stats_.eager_sends;
    eager_sends_m_->Inc();
    stats_.bytes_sent += len;
    Status t = co_await SendTrailer(len, kKindEager);
    if (!t.ok()) co_return t;
    ++next_send_seq;
    co_return OkStatus();
  }
  // Rendezvous from caller memory we don't own: stage into channel-owned
  // memory (the app building its message), then go zero-copy from there.
  // Credit first — the previous message's payload lives in this same
  // staging buffer until the peer pulls it, so overwriting (or freeing,
  // when the buffer grows) before the ack would corrupt it in flight.
  Status credit = co_await WaitAcked(next_send_seq - 1);
  if (!credit.ok()) co_return credit;
  auto scratch = co_await EnsureScratch(&rdv_staging_, &rdv_staging_cap_, len);
  if (!scratch.ok()) co_return scratch.status();
  if (Status w = ep_.WriteBuffer(rdv_staging_, data); !w.ok()) co_return w;
  co_return co_await Send(rdv_staging_, len);
}

sim::Task<Result<std::uint32_t>> P2pChannel::RecvInto(mem::VirtAddr dst,
                                                      std::uint32_t cap) {
  using Out = Result<std::uint32_t>;
  sim::Simulator& sim = ep_.machine().kernel().simulator();
  const mem::VirtAddr trailer = recv_slot + eager_cap();
  while (ReadWord(trailer + 8) != next_recv_seq) {
    co_await sim.Delay(params_.poll);
  }
  const std::uint32_t len = ReadWord(trailer);
  const std::uint32_t kind = ReadWord(trailer + 4);
  if (len > cap) co_return Out(OutOfRange("message larger than recv buffer"));

  if (kind == kKindEager) {
    if (len > 0) {
      // Copy-through: the slot payload is bcopy'd into the caller's
      // buffer (the receive-side copy eager trades for latency). Pooled
      // storage — every eager receive runs this.
      util::Buffer tmp = util::Buffer::Uninitialized(len);
      if (Status r = ep_.ReadBuffer(recv_slot, {tmp.MutableData(), tmp.size()});
          !r.ok()) {
        co_return Out(r);
      }
      if (Status w = ep_.WriteBuffer(dst, tmp); !w.ok()) co_return Out(w);
      co_await ep_.machine().cpu().Bcopy(len);
    }
    ++stats_.eager_recvs;
  } else if (kind == kKindRts) {
    const std::uint32_t rtag = ReadWord(recv_slot);
    const std::uint64_t off = std::uint64_t{ReadWord(recv_slot + 4)} |
                              (std::uint64_t{ReadWord(recv_slot + 8)} << 32);
    auto region = co_await ep_.RegisterMemory(dst, len, RegIntent::kRecv);
    if (!region.ok()) co_return Out(region.status());
    Status pulled = co_await ep_.RdmaRead(RemoteTarget{peer_, rtag, off}, len,
                                          region.value(), 0);
    (void)co_await ep_.UnregisterMemory(region.value());
    if (!pulled.ok()) co_return Out(pulled);
    ++stats_.rendezvous_recvs;
  } else {
    co_return Out(InternalError("corrupt channel trailer"));
  }
  stats_.bytes_received += len;

  // Ack consumption; for rendezvous this is also what lets the sender
  // retire its source registration.
  WriteWord(ack_out, next_recv_seq);
  Status s = co_await ep_.SendMsg(ack_out, peer_ack, 4);
  if (!s.ok()) co_return Out(s);
  ++next_recv_seq;
  co_return len;
}

sim::Task<Result<std::vector<std::uint8_t>>> P2pChannel::Recv() {
  using Out = Result<std::vector<std::uint8_t>>;
  sim::Simulator& sim = ep_.machine().kernel().simulator();
  const mem::VirtAddr trailer = recv_slot + eager_cap();
  while (ReadWord(trailer + 8) != next_recv_seq) {
    co_await sim.Delay(params_.poll);
  }
  const std::uint32_t len = ReadWord(trailer);
  auto scratch = co_await EnsureScratch(&recv_bounce_, &recv_bounce_cap_,
                                        std::max<std::uint32_t>(len, 1));
  if (!scratch.ok()) co_return Out(scratch.status());
  auto n = co_await RecvInto(recv_bounce_, recv_bounce_cap_);
  if (!n.ok()) co_return Out(n.status());
  // vmmc-lint: allow(raw-buffer): user-facing result — Recv()'s contract
  // returns an owning std::vector, not a pooled view
  std::vector<std::uint8_t> out(n.value());
  if (!out.empty()) {
    if (Status r = ep_.ReadBuffer(recv_bounce_, out); !r.ok()) {
      co_return Out(r);
    }
  }
  co_return std::move(out);
}

}  // namespace vmmc::vmmc_core
