#include "vmmc/vmmc/cluster.h"

#include <cassert>

#include "vmmc/myrinet/topology.h"
#include "vmmc/util/log.h"
#include "vmmc/vmmc/mapper.h"

namespace vmmc::vmmc_core {

Result<ClusterOptions> ClusterOptions::FromSpec(const std::string& spec) {
  auto cfg = myrinet::ParseTopologySpec(spec);
  if (!cfg.ok()) return cfg.status();
  ClusterOptions opts;
  opts.num_nodes = cfg.value().num_nodes;
  opts.switch_ports = cfg.value().switch_ports;
  switch (cfg.value().kind) {
    case myrinet::TopologyKind::kSingleSwitch:
      opts.topology = Topology::kSingleSwitch;
      break;
    case myrinet::TopologyKind::kChain:
      opts.topology = Topology::kSwitchChain;
      opts.chain_switches = std::max(
          1, (opts.num_nodes + opts.switch_ports - 3) / (opts.switch_ports - 2));
      break;
    case myrinet::TopologyKind::kFatTree:
      opts.topology = Topology::kFatTree;
      break;
    case myrinet::TopologyKind::kRing:
      opts.topology = Topology::kRing;
      break;
    case myrinet::TopologyKind::kMesh:
      opts.topology = Topology::kMesh;
      break;
  }
  return opts;
}

Cluster::Cluster(sim::Simulator& sim, const Params& params,
                 ClusterOptions options)
    : sim_(sim), params_(params), options_(options) {
  fabric_ = std::make_unique<myrinet::Fabric>(sim_, params_.net);
  ethernet_ = std::make_unique<ethernet::Segment>(sim_, params_.ethernet);
  Assemble();
}

Cluster::Cluster(sim::ParallelEngine& engine, const Params& params,
                 ClusterOptions options)
    // Shard 0 is the control shard: boot-sequence plumbing, OpenEndpoint
    // structures, and the fallback simulator for unsharded fabric pieces.
    : sim_(engine.shard(engine.AddShard())),
      engine_(&engine),
      params_(params),
      options_(options) {
  assert(params_.net.packet_error_rate == 0.0 &&
         "partitioned fabrics require packet_error_rate == 0 (use fault "
         "plans instead)");
  fabric_ = std::make_unique<myrinet::Fabric>(sim_, params_.net);
  // One shard per switch, allocated as the topology builder creates them
  // (switch-id order — deterministic, and independent of thread counts).
  fabric_->SetSwitchShardPlanner(
      [&engine](int /*switch_id*/) -> sim::Simulator& {
        return engine.shard(engine.AddShard());
      });
  // The shared segment serializes medium arbitration on a shard of its own.
  ethernet_ = std::make_unique<ethernet::Segment>(
      engine.shard(engine.AddShard()), params_.ethernet);
  // Node shards are allocated inside Assemble, in node-id order.
  Assemble();
}

void Cluster::Assemble() {
  myrinet::TopologyPlan plan;
  switch (options_.topology) {
    case Topology::kSingleSwitch: {
      // One 8-port switch cannot host more than 8 nodes; chain switches
      // automatically for larger clusters.
      if (options_.num_nodes <= 8) {
        plan = myrinet::BuildSingleSwitch(*fabric_, 8);
      } else {
        const int per = 6;
        const int switches = (options_.num_nodes + per - 1) / per;
        plan = myrinet::BuildSwitchChain(*fabric_, switches, per);
      }
      break;
    }
    case Topology::kSwitchChain: {
      // Spread nodes across the chain so inter-switch routes are exercised.
      const int per = std::max(
          1, (options_.num_nodes + options_.chain_switches - 1) /
                 options_.chain_switches);
      plan = myrinet::BuildSwitchChain(*fabric_, options_.chain_switches, per);
      break;
    }
    case Topology::kFatTree:
    case Topology::kRing:
    case Topology::kMesh: {
      myrinet::TopologyConfig cfg;
      cfg.kind = options_.topology == Topology::kFatTree
                     ? myrinet::TopologyKind::kFatTree
                     : (options_.topology == Topology::kRing
                            ? myrinet::TopologyKind::kRing
                            : myrinet::TopologyKind::kMesh);
      cfg.num_nodes = options_.num_nodes;
      cfg.switch_ports = options_.switch_ports;
      auto built = myrinet::BuildTopology(*fabric_, cfg);
      assert(built.ok() && "topology cannot host the requested node count");
      plan = std::move(built).value();
      break;
    }
  }
  assert(static_cast<int>(plan.nic_slots.size()) >= options_.num_nodes &&
         "topology too small for requested node count");

  nodes_.resize(static_cast<std::size_t>(options_.num_nodes));
  for (int i = 0; i < options_.num_nodes; ++i) {
    Node& n = nodes_[static_cast<std::size_t>(i)];
    // Partitioned: host + NIC + daemon of node i form one LP on a fresh
    // shard; every component below builds against that shard's simulator.
    if (engine_ != nullptr) node_shards_.push_back(engine_->AddShard());
    sim::Simulator& nsim = node_sim(i);
    n.machine = std::make_unique<host::Machine>(nsim, params_, i,
                                                options_.mem_bytes_per_node);
    n.nic = std::make_unique<lanai::NicCard>(nsim, params_, *n.machine, *fabric_);
    const auto& slot = plan.nic_slots[static_cast<std::size_t>(i)];
    Status attached = n.nic->AttachToFabric(slot.switch_id, slot.port);
    assert(attached.ok());
    (void)attached;
    assert(n.nic->nic_id() == i && "nic id must equal node id");
    n.eth = &ethernet_->AddInterface(i, nsim);
    n.daemon = std::make_unique<VmmcDaemon>(params_, i, n.machine->kernel(),
                                            *n.nic, *n.eth);
  }
}

bool Cluster::DriveUntil(std::function<bool()> pred) {
  if (engine_ != nullptr) return engine_->RunUntil(std::move(pred));
  return sim_.RunUntil(pred);
}

std::uint64_t Cluster::DriveUntilQuiescent() {
  if (engine_ != nullptr) return engine_->RunUntilQuiescent();
  return sim_.Run();
}

sim::Tick Cluster::time_now() const {
  return engine_ != nullptr ? engine_->now() : sim_.now();
}

std::uint64_t Cluster::events_processed() const {
  return engine_ != nullptr ? engine_->events_processed()
                            : sim_.events_processed();
}

void Cluster::MergeMetricsInto(obs::Registry& out) const {
  if (engine_ != nullptr) {
    engine_->MergeMetricsInto(out);
  } else {
    out.MergeFrom(sim_.metrics());
  }
}

Status Cluster::Boot() {
  if (booted_) return FailedPrecondition("already booted");

  // Phase 1: every daemon loads the network-mapping LCP (§4.3). Each LCP's
  // wait-objects live on its node's shard.
  std::vector<MappingLcp*> mappers;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto mapper = std::make_unique<MappingLcp>(node_sim(static_cast<int>(i)));
    mappers.push_back(mapper.get());
    nodes_[i].nic->LoadLcp(std::move(mapper));
  }

  // Phase 2: map the network from every node, verifying each route with a
  // live probe.
  struct MapJob {
    bool done = false;
    Status status = OkStatus();
    RouteTable routes;
  };
  std::vector<MapJob> jobs(nodes_.size());
  struct Runner {
    static sim::Process Map(lanai::NicCard& nic, MappingLcp& lcp, int nodes,
                            MapJob& job) {
      auto result = co_await MapNetwork(nic, lcp, nodes);
      if (result.ok()) {
        job.routes = std::move(result).value();
      } else {
        job.status = result.status();
      }
      job.done = true;
    }
  };
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_sim(static_cast<int>(i))
        .Spawn(Runner::Map(*nodes_[i].nic, *mappers[i], num_nodes(), jobs[i]));
  }
  const bool mapped = DriveUntil([&] {
    for (const MapJob& j : jobs) {
      if (!j.done) return false;
    }
    return true;
  });
  if (!mapped) return InternalError("network mapping did not converge");
  for (MapJob& j : jobs) {
    if (!j.status.ok()) return j.status;
  }

  // Phase 3: replace the mapping LCP with the VMMC LCP (§4.3).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    mappers[i]->RequestStop(*nodes_[i].nic);
  }
  const bool stopped = DriveUntil([&] {
    for (MappingLcp* m : mappers) {
      if (!m->stopped().is_set()) return false;
    }
    return true;
  });
  if (!stopped) return InternalError("mapping LCPs did not stop");

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& n = nodes_[i];
    n.routes = jobs[i].routes;
    auto lcp = std::make_unique<VmmcLcp>(params_, n.routes);
    n.lcp = lcp.get();
    n.nic->LoadLcp(std::move(lcp));
  }
  const bool lcps_up = DriveUntil([&] {
    for (Node& n : nodes_) {
      if (!n.lcp->running()) return false;
    }
    return true;
  });
  if (!lcps_up) return InternalError("VMMC LCPs did not start");

  // Phase 4: install drivers, start daemons.
  for (Node& n : nodes_) {
    n.driver = std::make_unique<VmmcDriver>(params_, n.machine->kernel(),
                                            *n.nic, *n.lcp);
    n.driver->Install();
    Status s = n.daemon->Start(n.lcp);
    if (!s.ok()) return s;
  }

  booted_ = true;
  boot_time_ = time_now();
  VMMC_LOG(kInfo, "cluster") << "booted " << num_nodes() << " nodes in "
                             << sim::ToMicroseconds(boot_time_) << " us";
  return OkStatus();
}

Result<std::unique_ptr<Endpoint>> Cluster::OpenEndpoint(int node_id,
                                                        const std::string& name) {
  if (!booted_) return FailedPrecondition("cluster not booted");
  if (node_id < 0 || node_id >= num_nodes()) {
    return InvalidArgument("bad node id");
  }
  Node& n = nodes_[static_cast<std::size_t>(node_id)];
  host::UserProcess& proc = n.machine->kernel().CreateProcess(name);
  return Endpoint::Open(params_, *n.machine, *n.lcp, *n.driver, *n.daemon, proc);
}

}  // namespace vmmc::vmmc_core
