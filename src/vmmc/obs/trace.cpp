#include "vmmc/obs/trace.h"

#include <cstdio>
#include <cstdlib>

namespace vmmc::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Microseconds with nanosecond precision, fixed format.
void AppendTs(std::string& out, sim::Tick ts) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ts / 1000),
                static_cast<long long>(ts % 1000));
  out += buf;
}

}  // namespace

int Tracer::RegisterTrack(const std::string& name) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == name) return static_cast<int>(i);
  }
  tracks_.push_back(name);
  return static_cast<int>(tracks_.size() - 1);
}

void Tracer::Record(char phase, int track, std::string_view name,
                    std::uint64_t id) {
  events_.push_back(TraceEvent{*now_, static_cast<std::int32_t>(track), phase,
                               id, std::string(name)});
}

void Tracer::Begin(int track, std::string_view name) {
  if (!enabled_) return;
  Record('B', track, name);
}

void Tracer::End(int track) {
  if (!enabled_) return;
  Record('E', track, "");
}

void Tracer::Instant(int track, std::string_view name) {
  if (!enabled_) return;
  Record('i', track, name);
}

void Tracer::AsyncBegin(int track, std::string_view name, std::uint64_t id) {
  if (!enabled_) return;
  Record('b', track, name, id);
}

void Tracer::AsyncEnd(int track, std::string_view name, std::uint64_t id) {
  if (!enabled_) return;
  Record('e', track, name, id);
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  // Track (thread) names as metadata events.
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":\"";
    AppendEscaped(out, tracks_[i]);
    out += "\"}}";
  }
  for (const TraceEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, ev.name);
    out += "\",\"cat\":\"vmmc\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"ts\":";
    AppendTs(out, ev.ts);
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(ev.track);
    if (ev.phase == 'b' || ev.phase == 'e') {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                    static_cast<unsigned long long>(ev.id));
      out += buf;
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    out += '}';
  }
  out += "]}";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return NotFound("cannot open trace file: " + path);
  const std::string json = ToChromeJson();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return InternalError("short write: " + path);
  return OkStatus();
}

TraceEnvGuard::TraceEnvGuard(Tracer& tracer) : tracer_(tracer) {
  const char* path = std::getenv("VMMC_TRACE");
  if (path != nullptr && path[0] != '\0') {
    path_ = path;
    tracer_.Enable();
  }
}

TraceEnvGuard::~TraceEnvGuard() {
  if (path_.empty()) return;
  Status s = tracer_.WriteChromeJson(path_);
  if (!s.ok()) {
    std::fprintf(stderr, "VMMC_TRACE: %s\n", s.ToString().c_str());
  } else {
    std::fprintf(stderr, "VMMC_TRACE: wrote %zu events to %s\n",
                 tracer_.event_count(), path_.c_str());
  }
}

}  // namespace vmmc::obs
