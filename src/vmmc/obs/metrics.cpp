#include "vmmc/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vmmc::obs {

namespace {

// Fixed-format float rendering so snapshots are byte-stable.
std::string Num(double v) {
  if (std::isnan(v)) return "0";
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  }
  return buf;
}

std::string Num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Bucket index: 0 for v <= 1, else 1 + floor(log2(v)), clamped.
std::size_t BucketIndex(double v) {
  if (v <= 1.0) return 0;
  const double l = std::log2(v);
  const std::size_t i = 1 + static_cast<std::size_t>(l);
  return std::min(i, Histo::kBuckets - 1);
}

}  // namespace

void Gauge::Set(sim::Tick now, double v) {
  if (!seen_) {
    first_ = now;
    seen_ = true;
  } else {
    weighted_sum_ += value_ * static_cast<double>(now - last_);
  }
  value_ = v;
  last_ = now;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Gauge::MergeFrom(const Gauge& other) {
  if (!other.seen_) return;
  if (!seen_) {
    *this = other;
    return;
  }
  value_ += other.value_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  weighted_sum_ += other.weighted_sum_;
  first_ = std::min(first_, other.first_);
  last_ = std::max(last_, other.last_);
}

double Gauge::TimeWeightedMean(sim::Tick now) const {
  if (!seen_) return 0.0;
  const sim::Tick span = now - first_;
  if (span <= 0) return value_;
  const double total =
      weighted_sum_ + value_ * static_cast<double>(now - last_);
  return total / static_cast<double>(span);
}

void Histo::Observe(double v) {
  stats_.Add(v);
  sum_ += v;
  ++buckets_[BucketIndex(v)];
}

void Histo::MergeFrom(const Histo& other) {
  stats_.MergeFrom(other.stats_);
  sum_ += other.sum_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histo::Quantile(double q) const {
  const std::uint64_t n = stats_.count();
  if (n == 0) return 0.0;
  if (n == 1) return stats_.min();
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      // Interpolate inside the power-of-two bucket, clamped to the
      // observed range so small-n estimates stay sane.
      const double lo = (i == 0) ? 0.0 : std::exp2(static_cast<double>(i - 1));
      const double hi = std::exp2(static_cast<double>(i));
      const double frac = std::clamp(
          (target - cum) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      return std::clamp(lo + frac * (hi - lo), stats_.min(), stats_.max());
    }
    cum = next;
  }
  return stats_.max();
}

Counter& Registry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histo& Registry::GetHisto(const std::string& name) {
  auto& slot = histos_[name];
  if (!slot) slot = std::make_unique<Histo>();
  return *slot;
}

void Registry::MergeFrom(const Registry& other) {
  for (const auto& [name, c] : other.counters_) GetCounter(name).MergeFrom(*c);
  for (const auto& [name, g] : other.gauges_) GetGauge(name).MergeFrom(*g);
  for (const auto& [name, h] : other.histos_) GetHisto(name).MergeFrom(*h);
}

std::uint64_t Registry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histo* Registry::FindHisto(const std::string& name) const {
  auto it = histos_.find(name);
  return it == histos_.end() ? nullptr : it->second.get();
}

std::uint64_t Registry::SumCounters(std::string_view prefix,
                                    std::string_view suffix) const {
  std::uint64_t sum = 0;
  for (const auto& [name, counter] : counters_) {
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (!suffix.empty() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    sum += counter->value();
  }
  return sum;
}

std::string Registry::ToJson(sim::Tick now) const {
  std::string out = "{\"sim_time_ns\":" + Num(static_cast<std::uint64_t>(now));
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + Num(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"value\":" + Num(g->value()) +
           ",\"min\":" + Num(g->min()) + ",\"max\":" + Num(g->max()) +
           ",\"time_weighted_mean\":" + Num(g->TimeWeightedMean(now)) + '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histos_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{\"count\":" + Num(h->count()) +
           ",\"sum\":" + Num(h->sum()) + ",\"mean\":" + Num(h->mean()) +
           ",\"min\":" + Num(h->min()) + ",\"max\":" + Num(h->max()) +
           ",\"p50\":" + Num(h->Quantile(0.5)) +
           ",\"p99\":" + Num(h->Quantile(0.99)) + '}';
  }
  out += "}}";
  return out;
}

Table Registry::ToTable(sim::Tick now) const {
  Table table({"metric", "value", "detail"});
  for (const auto& [name, c] : counters_) {
    table.AddRow({name, Num(c->value()), ""});
  }
  for (const auto& [name, g] : gauges_) {
    table.AddRow({name, Num(g->value()),
                  "min " + Num(g->min()) + "  max " + Num(g->max()) +
                      "  tw-mean " + Num(g->TimeWeightedMean(now))});
  }
  for (const auto& [name, h] : histos_) {
    table.AddRow({name, Num(h->count()) + " samples",
                  "mean " + Num(h->mean()) + "  p50 " + Num(h->Quantile(0.5)) +
                      "  max " + Num(h->max())});
  }
  return table;
}

}  // namespace vmmc::obs
