#include "vmmc/vmmc/sw_tlb.h"

#include <cassert>

namespace vmmc::vmmc_core {

SwTlb::SwTlb(std::uint32_t total_entries, std::uint32_t ways)
    : ways_(ways), sets_(total_entries) {
  assert(ways > 0 && total_entries % ways == 0);
}

bool SwTlb::Lookup(mem::Vpn vpn, mem::Pfn* pfn) {
  const std::size_t base = SetBase(vpn);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) {
      way.last_used = ++clock_;
      if (pfn != nullptr) *pfn = way.pfn;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

void SwTlb::Insert(mem::Vpn vpn, mem::Pfn pfn) {
  const std::size_t base = SetBase(vpn);
  Way* victim = &sets_[base];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) {  // refresh existing
      way.pfn = pfn;
      way.last_used = ++clock_;
      return;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_used < victim->last_used) {
      victim = &way;
    }
  }
  *victim = Way{true, vpn, pfn, ++clock_};
}

void SwTlb::Invalidate(mem::Vpn vpn) {
  const std::size_t base = SetBase(vpn);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) way.valid = false;
  }
}

void SwTlb::InvalidateAll() {
  for (Way& way : sets_) way.valid = false;
}

std::uint32_t SwTlb::valid_entries() const {
  std::uint32_t n = 0;
  for (const Way& way : sets_) n += way.valid ? 1 : 0;
  return n;
}

}  // namespace vmmc::vmmc_core
