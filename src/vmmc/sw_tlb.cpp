#include "vmmc/vmmc/sw_tlb.h"

#include <cassert>

namespace vmmc::vmmc_core {

namespace {
// Default metric sinks: a TLB constructed outside a cluster (unit tests)
// counts into these, keeping Lookup/Insert free of null checks.
obs::Counter g_unbound_hits;
obs::Counter g_unbound_misses;
obs::Counter g_unbound_evictions;
}  // namespace

SwTlb::SwTlb(std::uint32_t total_entries, std::uint32_t ways)
    : ways_(ways),
      sets_(total_entries),
      hits_m_(&g_unbound_hits),
      misses_m_(&g_unbound_misses),
      evictions_m_(&g_unbound_evictions) {
  assert(ways > 0 && total_entries % ways == 0);
}

void SwTlb::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                        obs::Counter* evictions) {
  hits_m_ = hits != nullptr ? hits : &g_unbound_hits;
  misses_m_ = misses != nullptr ? misses : &g_unbound_misses;
  evictions_m_ = evictions != nullptr ? evictions : &g_unbound_evictions;
}

bool SwTlb::Lookup(mem::Vpn vpn, mem::Pfn* pfn) {
  const std::size_t base = SetBase(vpn);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) {
      way.last_used = ++clock_;
      if (pfn != nullptr) *pfn = way.pfn;
      ++hits_;
      hits_m_->Inc();
      return true;
    }
  }
  ++misses_;
  misses_m_->Inc();
  return false;
}

void SwTlb::Insert(mem::Vpn vpn, mem::Pfn pfn) {
  const std::size_t base = SetBase(vpn);
  Way* victim = &sets_[base];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) {  // refresh existing
      way.pfn = pfn;
      way.last_used = ++clock_;
      return;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_used < victim->last_used) {
      victim = &way;
    }
  }
  if (victim->valid) {
    ++evictions_;
    evictions_m_->Inc();
  }
  *victim = Way{true, vpn, pfn, ++clock_};
}

void SwTlb::Invalidate(mem::Vpn vpn) {
  const std::size_t base = SetBase(vpn);
  for (std::uint32_t w = 0; w < ways_; ++w) {
    Way& way = sets_[base + w];
    if (way.valid && way.vpn == vpn) way.valid = false;
  }
}

void SwTlb::InvalidateAll() {
  for (Way& way : sets_) way.valid = false;
}

std::uint32_t SwTlb::valid_entries() const {
  std::uint32_t n = 0;
  for (const Way& way : sets_) n += way.valid ? 1 : 0;
  return n;
}

}  // namespace vmmc::vmmc_core
