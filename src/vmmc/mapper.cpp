#include "vmmc/vmmc/mapper.h"

#include "vmmc/util/log.h"

namespace vmmc::vmmc_core {

sim::Process MappingLcp::Run(lanai::NicCard& nic) {
  for (;;) {
    co_await nic.AwaitWork();
    if (stop_) break;
    while (auto rp = nic.rx_queue().TryGet()) {
      co_await nic.cpu().Exec(2000);  // mapping LCP packet handling
      if (!rp->crc_ok) continue;
      auto decoded = DecodeChunk(rp->packet.payload);
      if (!decoded.has_value()) continue;
      const ChunkHeader& h = decoded->header;
      if (h.type == PacketType::kMapProbe) {
        // The probe's data is the return route; answer along it.
        ++probes_answered_;
        ChunkHeader reply;
        reply.type = PacketType::kMapReply;
        reply.src_node = static_cast<std::uint16_t>(nic.nic_id());
        reply.tag = h.tag;
        myrinet::Packet pkt;
        pkt.route.assign(decoded->data.begin(), decoded->data.end());
        pkt.payload = EncodeChunk(reply, {});
        co_await nic.NetSend(std::move(pkt));
      } else if (h.type == PacketType::kMapReply) {
        replies_.Put(h.tag);
      }
    }
  }
  stopped_.Set();
}

sim::Task<Result<RouteTable>> MapNetwork(lanai::NicCard& nic, MappingLcp& lcp,
                                         int num_nodes) {
  RouteTable table(static_cast<std::size_t>(num_nodes));
  myrinet::Fabric& fabric = nic.fabric();
  const int self = nic.nic_id();

  for (int dst = 0; dst < num_nodes; ++dst) {
    auto forward = fabric.ComputeRoute(self, dst);
    if (!forward.ok()) co_return Result<RouteTable>(forward.status());
    table[static_cast<std::size_t>(dst)] = forward.value();
    if (dst == self) continue;  // self-route needs no verification

    auto back = fabric.ComputeRoute(dst, self);
    if (!back.ok()) co_return Result<RouteTable>(back.status());

    // Verify the pair with a live probe.
    ChunkHeader probe;
    probe.type = PacketType::kMapProbe;
    probe.src_node = static_cast<std::uint16_t>(self);
    probe.tag = static_cast<std::uint32_t>((self << 16) | dst);
    probe.chunk_len = static_cast<std::uint32_t>(back.value().size());
    myrinet::Packet pkt;
    pkt.route = forward.value();
    pkt.payload = EncodeChunk(probe, back.value());
    co_await nic.NetSend(std::move(pkt));

    const std::uint32_t tag = co_await lcp.replies().Get();
    if (tag != probe.tag) {
      co_return Result<RouteTable>(
          InternalError("mapping reply tag mismatch — network misrouted"));
    }
    VMMC_LOG(kDebug, "mapper") << "node " << self << ": route to " << dst
                               << " verified (" << forward.value().size()
                               << " hops)";
  }
  co_return table;
}

}  // namespace vmmc::vmmc_core
