#include "vmmc/vmmc/wire.h"

#include <cstring>

namespace vmmc::vmmc_core {

namespace {
void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
}  // namespace

void EncodeHeaderInto(const ChunkHeader& header, std::uint8_t* dst) {
  dst[0] = static_cast<std::uint8_t>(header.type);
  dst[1] = header.flags;
  PutU16(&dst[2], header.src_node);
  PutU32(&dst[4], header.msg_len);
  PutU32(&dst[8], header.chunk_len);
  PutU64(&dst[12], header.dst_pa0);
  PutU64(&dst[20], header.dst_pa1);
  PutU32(&dst[28], header.tag);
  PutU32(&dst[32], header.seq);
  PutU16(&dst[36], header.dst_node);
  // The destination may be uninitialized pool storage: the reserved tail
  // must be written explicitly or stale bytes leak onto the wire.
  dst[38] = 0;
  dst[39] = 0;
}

util::Buffer EncodeChunk(const ChunkHeader& header,
                         std::span<const std::uint8_t> data) {
  auto out = util::Buffer::Uninitialized(ChunkHeader::kWireSize + data.size());
  std::uint8_t* p = out.MutableData();
  EncodeHeaderInto(header, p);
  if (!data.empty()) {
    std::memcpy(p + ChunkHeader::kWireSize, data.data(), data.size());
  }
  return out;
}

std::optional<DecodedChunk> DecodeChunk(std::span<const std::uint8_t> payload) {
  if (payload.size() < ChunkHeader::kWireSize) return std::nullopt;
  DecodedChunk out;
  ChunkHeader& h = out.header;
  const std::uint8_t type = payload[0];
  if (type != static_cast<std::uint8_t>(PacketType::kData) &&
      type != static_cast<std::uint8_t>(PacketType::kMapProbe) &&
      type != static_cast<std::uint8_t>(PacketType::kMapReply) &&
      type != static_cast<std::uint8_t>(PacketType::kAck) &&
      type != static_cast<std::uint8_t>(PacketType::kRdmaRead)) {
    return std::nullopt;
  }
  h.type = static_cast<PacketType>(type);
  h.flags = payload[1];
  h.src_node = GetU16(&payload[2]);
  h.msg_len = GetU32(&payload[4]);
  h.chunk_len = GetU32(&payload[8]);
  h.dst_pa0 = GetU64(&payload[12]);
  h.dst_pa1 = GetU64(&payload[20]);
  h.tag = GetU32(&payload[28]);
  h.seq = GetU32(&payload[32]);
  h.dst_node = GetU16(&payload[36]);
  if (payload.size() != ChunkHeader::kWireSize + h.chunk_len) return std::nullopt;
  out.data = payload.subspan(ChunkHeader::kWireSize);
  return out;
}

}  // namespace vmmc::vmmc_core
