#include "vmmc/vmmc/wire.h"

#include <cstring>

namespace vmmc::vmmc_core {

namespace {
void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void PutU32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void PutU64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}
}  // namespace

std::vector<std::uint8_t> EncodeChunk(const ChunkHeader& header,
                                      std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(ChunkHeader::kWireSize + data.size());
  out[0] = static_cast<std::uint8_t>(header.type);
  out[1] = header.flags;
  PutU16(&out[2], header.src_node);
  PutU32(&out[4], header.msg_len);
  PutU32(&out[8], header.chunk_len);
  PutU64(&out[12], header.dst_pa0);
  PutU64(&out[20], header.dst_pa1);
  PutU32(&out[28], header.tag);
  PutU32(&out[32], header.seq);
  PutU16(&out[36], header.dst_node);
  // bytes 38..39: reserved, zero
  if (!data.empty()) {
    std::memcpy(out.data() + ChunkHeader::kWireSize, data.data(), data.size());
  }
  return out;
}

std::optional<DecodedChunk> DecodeChunk(std::span<const std::uint8_t> payload) {
  if (payload.size() < ChunkHeader::kWireSize) return std::nullopt;
  DecodedChunk out;
  ChunkHeader& h = out.header;
  const std::uint8_t type = payload[0];
  if (type != static_cast<std::uint8_t>(PacketType::kData) &&
      type != static_cast<std::uint8_t>(PacketType::kMapProbe) &&
      type != static_cast<std::uint8_t>(PacketType::kMapReply) &&
      type != static_cast<std::uint8_t>(PacketType::kAck)) {
    return std::nullopt;
  }
  h.type = static_cast<PacketType>(type);
  h.flags = payload[1];
  h.src_node = GetU16(&payload[2]);
  h.msg_len = GetU32(&payload[4]);
  h.chunk_len = GetU32(&payload[8]);
  h.dst_pa0 = GetU64(&payload[12]);
  h.dst_pa1 = GetU64(&payload[20]);
  h.tag = GetU32(&payload[28]);
  h.seq = GetU32(&payload[32]);
  h.dst_node = GetU16(&payload[36]);
  if (payload.size() != ChunkHeader::kWireSize + h.chunk_len) return std::nullopt;
  out.data = payload.subspan(ChunkHeader::kWireSize);
  return out;
}

}  // namespace vmmc::vmmc_core
