#include "vmmc/vmmc/reg_cache.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "vmmc/mem/address_space.h"
#include "vmmc/sim/simulator.h"

namespace vmmc::vmmc_core {

namespace {
bool WantsSend(RegIntent i) { return i != RegIntent::kRecv; }
bool WantsRecv(RegIntent i) { return i != RegIntent::kSend; }
}  // namespace

RegCache::RegCache(const Params& params, host::UserProcess& process,
                   VmmcLcp& lcp, ProcState& state, sim::Simulator& sim,
                   int node)
    : params_(params), process_(process), lcp_(lcp), state_(state) {
  sim_ = &sim;
  const std::string prefix = "node" + std::to_string(node) + ".regcache.";
  auto& reg = sim.metrics();
  hit_m_ = &reg.GetCounter(prefix + "hit");
  miss_m_ = &reg.GetCounter(prefix + "miss");
  evict_m_ = &reg.GetCounter(prefix + "evict");
  pinned_m_ = &reg.GetGauge(prefix + "pinned_bytes");
}

RegCache::~RegCache() {
  // Process teardown: drop everything, active registrations included — in
  // id (allocation) order, so unpin accounting never depends on hash order.
  std::vector<std::uint64_t> ids;
  ids.reserve(by_id_.size());
  // vmmc-lint: allow(unordered-iter): ids are sorted below before visiting
  for (const auto& [id, entry] : by_id_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    Entry* e = by_id_.at(id);
    if (e->refs == 0) LruUnlink(*e);
    Destroy(*e);
  }
}

Result<RegCache::Acquisition> RegCache::Acquire(mem::VirtAddr va,
                                                std::uint64_t len,
                                                RegIntent intent) {
  if (len == 0) return InvalidArgument("cannot register an empty range");
  const RegCacheParams& rc = params_.vmmc.regcache;
  const Key key{mem::PageNumber(va), mem::PagesSpanned(va, len),
                static_cast<std::uint8_t>(intent)};

  if (rc.enabled) {
    auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      Entry& e = *it->second;
      if (e.refs == 0) LruUnlink(e);
      ++e.refs;
      ++hits_;
      hit_m_->Inc();
      return Acquisition{MemRegion{e.va, e.len, e.rtag, e.id}, rc.hit_lookup,
                         true};
    }
  }

  // Cold path: make room first, then pin and set up the NIC state.
  const std::uint64_t bytes = key.pages * mem::kPageSize;
  if (rc.enabled) EvictFor(bytes);

  auto e = std::make_unique<Entry>();
  e->key = key;
  e->id = next_id_++;
  e->refs = 1;
  e->va = va;
  e->len = len;
  e->bytes = bytes;
  auto cost = Register(*e, intent);
  if (!cost.ok()) return cost.status();

  ++misses_;
  miss_m_->Inc();
  pinned_bytes_ += bytes;
  SetPinnedGauge();
  Entry* raw = e.get();
  by_id_.emplace(raw->id, raw);
  by_key_.emplace(key, std::move(e));
  return Acquisition{MemRegion{raw->va, raw->len, raw->rtag, raw->id},
                     cost.value(), false};
}

Result<sim::Tick> RegCache::Release(std::uint64_t cache_id) {
  auto it = by_id_.find(cache_id);
  if (it == by_id_.end()) return NotFound("unknown registration handle");
  Entry& e = *it->second;
  if (e.refs == 0) return FailedPrecondition("registration already released");
  if (--e.refs > 0) return sim::Tick{0};

  if (!params_.vmmc.regcache.enabled) {
    // Ablation / cold mode: tear down immediately — unpin syscall.
    const sim::Tick cost = params_.host.syscall;
    Destroy(e);
    return cost;
  }
  LruPushBack(e);
  EvictFor(0);  // an earlier over-budget miss may now be reclaimable
  return sim::Tick{0};
}

void RegCache::InvalidateRange(mem::VirtAddr va, std::uint64_t len) {
  if (len == 0) return;
  const mem::Vpn lo = mem::PageNumber(va);
  const mem::Vpn hi = mem::PageNumber(va + len - 1);
  // The map is small (tens of entries); a linear scan keeps the common
  // Unmap path simple. Only idle entries may be dropped here.
  Entry* e = lru_head_;
  while (e != nullptr) {
    Entry* next = e->lru_next;
    const mem::Vpn e_lo = e->key.first_vpn;
    const mem::Vpn e_hi = e->key.first_vpn + e->key.pages - 1;
    if (e_lo <= hi && lo <= e_hi) {
      LruUnlink(*e);
      ++evictions_;
      evict_m_->Inc();
      Destroy(*e);
    }
    e = next;
  }
}

Result<sim::Tick> RegCache::Register(Entry& e, RegIntent intent) {
  mem::AddressSpace& as = process_.address_space();
  if (Status s = as.Pin(e.va, e.len); !s.ok()) return s;

  // Walk the now-pinned pages to collect frames.
  e.frames.reserve(e.key.pages);
  for (std::uint64_t p = 0; p < e.key.pages; ++p) {
    auto pa = as.TranslatePinned(mem::PageAddr(e.key.first_vpn + p));
    if (!pa.ok()) {
      as.Unpin(e.va, e.len);
      return pa.status();
    }
    e.frames.push_back(mem::PageNumber(pa.value()));
  }

  // Pin-down call: one kernel crossing plus a per-page walk.
  sim::Tick cost = params_.host.syscall +
                   static_cast<sim::Tick>(e.key.pages) *
                       params_.vmmc.regcache.pin_page;

  if (WantsSend(intent)) {
    // Prefill the NIC's software TLB so the first send takes no miss
    // interrupt. The driver writes SRAM over PIO, one word per entry.
    for (std::uint64_t p = 0; p < e.key.pages; ++p) {
      state_.tlb().Insert(e.key.first_vpn + p, e.frames[p]);
    }
    cost += static_cast<sim::Tick>(e.key.pages) * params_.pci.pio_write;
  }

  if (WantsRecv(intent)) {
    // Enable delivery into frames an export has not already enabled, and
    // publish the region under an rtag for one-sided peers.
    e.we_enabled.assign(e.frames.size(), false);
    for (std::size_t p = 0; p < e.frames.size(); ++p) {
      const IncomingEntry* in = lcp_.incoming().Find(e.frames[p]);
      if (in != nullptr && in->recv_enabled) continue;
      if (Status s = lcp_.incoming().Enable(e.frames[p], /*notify=*/false,
                                            process_.pid(), /*export_id=*/0);
          !s.ok()) {
        for (std::size_t q = 0; q < p; ++q) {
          if (e.we_enabled[q]) lcp_.incoming().Disable(e.frames[q]);
        }
        as.Unpin(e.va, e.len);
        return s;
      }
      e.we_enabled[p] = true;
    }
    auto rtag = lcp_.CreateRecvRegion(process_.pid(), mem::PageOffset(e.va),
                                      e.len, e.frames);
    if (!rtag.ok()) {
      for (std::size_t p = 0; p < e.frames.size(); ++p) {
        if (e.we_enabled[p]) lcp_.incoming().Disable(e.frames[p]);
      }
      as.Unpin(e.va, e.len);
      return rtag.status();
    }
    e.rtag = rtag.value();
    cost += static_cast<sim::Tick>(2 + e.frames.size()) * params_.pci.pio_write;
  }
  return cost;
}

void RegCache::Destroy(Entry& e) {
  if (e.rtag != 0) lcp_.ReleaseRecvRegion(e.rtag);
  for (std::size_t p = 0; p < e.we_enabled.size(); ++p) {
    if (e.we_enabled[p]) lcp_.incoming().Disable(e.frames[p]);
  }
  if (WantsSend(static_cast<RegIntent>(e.key.intent))) {
    for (std::uint64_t p = 0; p < e.key.pages; ++p) {
      state_.tlb().Invalidate(e.key.first_vpn + p);
    }
  }
  process_.address_space().Unpin(e.va, e.len);
  pinned_bytes_ -= e.bytes;
  SetPinnedGauge();
  by_id_.erase(e.id);
  by_key_.erase(e.key);  // frees the entry; `e` is dead past this line
}

void RegCache::LruPushBack(Entry& e) {
  e.lru_prev = lru_tail_;
  e.lru_next = nullptr;
  if (lru_tail_ != nullptr) {
    lru_tail_->lru_next = &e;
  } else {
    lru_head_ = &e;
  }
  lru_tail_ = &e;
}

void RegCache::LruUnlink(Entry& e) {
  if (e.lru_prev != nullptr) {
    e.lru_prev->lru_next = e.lru_next;
  } else {
    lru_head_ = e.lru_next;
  }
  if (e.lru_next != nullptr) {
    e.lru_next->lru_prev = e.lru_prev;
  } else {
    lru_tail_ = e.lru_prev;
  }
  e.lru_prev = nullptr;
  e.lru_next = nullptr;
}

void RegCache::EvictFor(std::uint64_t extra) {
  const std::uint64_t budget = params_.vmmc.regcache.budget_bytes;
  while (lru_head_ != nullptr && pinned_bytes_ + extra > budget) {
    Entry* victim = lru_head_;
    LruUnlink(*victim);
    ++evictions_;
    evict_m_->Inc();
    Destroy(*victim);
  }
}

void RegCache::SetPinnedGauge() {
  pinned_m_->Set(sim_->now(), static_cast<double>(pinned_bytes_));
}

}  // namespace vmmc::vmmc_core
