#include "vmmc/vmmc/page_tables.h"

namespace vmmc::vmmc_core {

Status OutgoingPageTable::Set(std::uint32_t proxy_page, std::uint32_t dst_node,
                              mem::Pfn dst_pfn) {
  if (proxy_page >= capacity()) {
    return OutOfRange("proxy page beyond outgoing page table");
  }
  if (dst_node > kMaxNode) return InvalidArgument("node index too large");
  if (dst_pfn > kMaxPfn) return InvalidArgument("destination pfn too large");
  if (entries_[proxy_page] & kValidBit) {
    return AlreadyExists("proxy page already mapped");
  }
  entries_[proxy_page] =
      kValidBit | (dst_node << 24) | static_cast<std::uint32_t>(dst_pfn);
  return OkStatus();
}

Status OutgoingPageTable::Clear(std::uint32_t proxy_page) {
  if (proxy_page >= capacity()) {
    return OutOfRange("proxy page beyond outgoing page table");
  }
  if (!(entries_[proxy_page] & kValidBit)) return NotFound("proxy page not mapped");
  entries_[proxy_page] = 0;
  return OkStatus();
}

Result<OutgoingPageTable::Target> OutgoingPageTable::Lookup(
    std::uint32_t proxy_page) const {
  if (proxy_page >= capacity()) {
    return OutOfRange("proxy address beyond outgoing page table");
  }
  const std::uint32_t e = entries_[proxy_page];
  if (!(e & kValidBit)) {
    return PermissionDenied("proxy page not mapped by any import");
  }
  return Target{(e >> 24) & 0x7Fu, e & 0x00FF'FFFFu};
}

Result<std::uint32_t> OutgoingPageTable::AllocateRun(std::uint32_t count) const {
  if (count == 0) return InvalidArgument("zero-length proxy run");
  std::uint32_t run = 0;
  for (std::uint32_t i = 0; i < capacity(); ++i) {
    run = (entries_[i] & kValidBit) ? 0 : run + 1;
    if (run == count) return i - count + 1;
  }
  return ResourceExhausted(
      "outgoing page table full (imported receive buffer limit reached)");
}

std::uint32_t OutgoingPageTable::valid_entries() const {
  std::uint32_t n = 0;
  for (std::uint32_t e : entries_) n += (e & kValidBit) ? 1 : 0;
  return n;
}

Status IncomingPageTable::Enable(mem::Pfn pfn, bool notify, std::int32_t owner_pid,
                                 std::uint32_t export_id) {
  if (pfn >= entries_.size()) return OutOfRange("pfn beyond physical memory");
  IncomingEntry& e = entries_[pfn];
  if (e.recv_enabled) return AlreadyExists("frame already export-enabled");
  e = IncomingEntry{true, notify, owner_pid, export_id};
  return OkStatus();
}

Status IncomingPageTable::Disable(mem::Pfn pfn) {
  if (pfn >= entries_.size()) return OutOfRange("pfn beyond physical memory");
  if (!entries_[pfn].recv_enabled) return NotFound("frame not enabled");
  entries_[pfn] = IncomingEntry{};
  return OkStatus();
}

const IncomingEntry* IncomingPageTable::Find(mem::Pfn pfn) const {
  if (pfn >= entries_.size()) return nullptr;
  return &entries_[pfn];
}

std::uint64_t IncomingPageTable::enabled_count() const {
  std::uint64_t n = 0;
  for (const auto& e : entries_) n += e.recv_enabled ? 1 : 0;
  return n;
}

}  // namespace vmmc::vmmc_core
