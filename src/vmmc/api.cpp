#include "vmmc/vmmc/api.h"

#include <cassert>

namespace vmmc::vmmc_core {

Endpoint::Endpoint(const Params& params, host::Machine& machine, VmmcLcp& lcp,
                   VmmcDriver& driver, VmmcDaemon& daemon,
                   host::UserProcess& process)
    : params_(params),
      machine_(&machine),
      lcp_(&lcp),
      driver_(&driver),
      daemon_(&daemon),
      process_(&process) {}

Result<std::unique_ptr<Endpoint>> Endpoint::Open(
    const Params& params, host::Machine& machine, VmmcLcp& lcp,
    VmmcDriver& driver, VmmcDaemon& daemon, host::UserProcess& process) {
  auto state = lcp.RegisterProcess(process);
  if (!state.ok()) return state.status();

  std::unique_ptr<Endpoint> ep(
      new Endpoint(params, machine, lcp, driver, daemon, process));
  ep->state_ = state.value();

  // Completion-word array: pinned user memory the LANai DMAs one-word
  // statuses into and the user spins on (§4.5).
  const std::uint32_t entries = params.vmmc.send_queue_entries;
  auto base = process.address_space().HeapAlloc(entries * 4, 64);
  if (!base.ok()) {
    (void)lcp.UnregisterProcess(process.pid());
    return base.status();
  }
  Status pin = process.address_space().Pin(base.value(), entries * 4);
  if (!pin.ok()) {
    (void)lcp.UnregisterProcess(process.pid());
    return pin;
  }
  ep->state_->completion_base = base.value();

  ep->slots_.resize(entries);
  for (std::uint32_t i = 0; i < entries; ++i) ep->free_slots_.push_back(i);
  ep->slot_tokens_ = std::make_unique<sim::Semaphore>(
      machine.kernel().simulator(), entries);

  const std::string node = "node" + std::to_string(daemon.node_id());
  obs::Registry& m = machine.kernel().simulator().metrics();
  ep->send_posts_m_ = &m.GetCounter(node + ".host.send_posts");
  ep->pio_post_ns_m_ = &m.GetCounter(node + ".host.pio_post_ns");

  // Registration cache for one-sided RDMA. The address-space release
  // listener cannot be unsubscribed, so it holds a weak reference that
  // goes inert once the endpoint (and with it the cache) is destroyed.
  ep->reg_cache_ = std::make_shared<RegCache>(
      params, process, lcp, *ep->state_, machine.kernel().simulator(),
      daemon.node_id());
  std::weak_ptr<RegCache> weak_cache = ep->reg_cache_;
  process.address_space().AddReleaseListener(
      [weak_cache](mem::VirtAddr va, std::uint64_t len) {
        if (auto cache = weak_cache.lock()) cache->InvalidateRange(va, len);
      });

  // Notification path: driver -> signal -> this handler -> user handlers.
  Endpoint* raw = ep.get();
  process.SetSignalHandler(host::kSigVmmcNotify, [raw](int) -> sim::Process {
    return raw->NotificationSignalHandler();
  });

  return ep;
}

Endpoint::~Endpoint() {
  if (fin_region_.cache_id != 0 && reg_cache_ != nullptr) {
    (void)reg_cache_->Release(fin_region_.cache_id);
  }
  // The cache unpins and tears down NIC state through the LCP, so it must
  // go before the process is unregistered there.
  reg_cache_.reset();
  if (state_ != nullptr) (void)lcp_->UnregisterProcess(process_->pid());
}

// ---------------------------------------------------------------------------
// Buffers
// ---------------------------------------------------------------------------

Result<mem::VirtAddr> Endpoint::AllocBuffer(std::uint32_t len) {
  if (len == 0) return InvalidArgument("zero-size buffer");
  // Page-aligned and page-granular so the buffer can be exported.
  return process_->address_space().HeapAlloc(mem::RoundUpToPage(len),
                                             mem::kPageSize);
}

Status Endpoint::FreeBuffer(mem::VirtAddr va) {
  return process_->address_space().HeapFree(va);
}

Status Endpoint::WriteBuffer(mem::VirtAddr va, std::span<const std::uint8_t> data) {
  return process_->address_space().Write(va, data);
}

Status Endpoint::ReadBuffer(mem::VirtAddr va, std::span<std::uint8_t> out) const {
  return process_->address_space().Read(va, out);
}

// ---------------------------------------------------------------------------
// Export / import
// ---------------------------------------------------------------------------

sim::Task<Result<ExportId>> Endpoint::ExportBuffer(mem::VirtAddr va,
                                                   std::uint32_t len,
                                                   ExportOptions options) {
  co_return co_await daemon_->Export(*process_, va, len, std::move(options));
}

sim::Task<Status> Endpoint::UnexportBuffer(ExportId id) {
  co_return co_await daemon_->Unexport(*process_, id);
}

sim::Task<Result<ImportedBuffer>> Endpoint::ImportBuffer(int remote_node,
                                                         const std::string& name,
                                                         ImportOptions options) {
  sim::Simulator& sim = machine_->kernel().simulator();
  int attempts = 0;
  for (;;) {
    auto result = co_await daemon_->Import(*state_, remote_node, name);
    if (result.ok() || !options.wait ||
        result.status().code() != ErrorCode::kNotFound ||
        ++attempts >= options.max_attempts) {
      co_return result;
    }
    co_await sim.Delay(options.retry_interval);
  }
}

sim::Task<Status> Endpoint::UnimportBuffer(const ImportedBuffer& buffer) {
  co_return co_await daemon_->Unimport(*state_, buffer);
}

// ---------------------------------------------------------------------------
// Sends
// ---------------------------------------------------------------------------

Status Endpoint::ToStatus(SendStatus s) const {
  switch (s) {
    case SendStatus::kDone:
      return OkStatus();
    case SendStatus::kPending:
      return InternalError("completion word still pending");
    case SendStatus::kBadProxy:
      return PermissionDenied("destination proxy address not imported");
    case SendStatus::kBadLength:
      return InvalidArgument("send length out of range");
    case SendStatus::kBadAddress:
      return NotFound("send buffer address not mapped");
  }
  return InternalError("unknown completion status");
}

sim::Task<Result<SendHandle>> Endpoint::SendMsgAsync(mem::VirtAddr src,
                                                     ProxyAddr dst,
                                                     std::uint32_t len,
                                                     SendOptions options) {
  sim::Simulator& sim = machine_->kernel().simulator();
  // Library entry: argument checks, protocol selection (§4.5 — "The VMMC
  // basic library decides which format to use for a particular SendMsg").
  co_await sim.Delay(params_.host.lib_send_overhead);
  if (len == 0 || len > params_.vmmc.max_send_bytes) {
    co_return Result<SendHandle>(InvalidArgument("length out of range"));
  }

  const bool short_send = len <= params_.vmmc.short_send_max;
  SendRequest req;
  req.len = len;
  req.proxy = dst;
  req.notify = options.notify;

  if (short_send) {
    // The data is copied into the SRAM send queue with memory-mapped I/O;
    // validate the source now (a fault here is the user's SIGSEGV).
    req.inline_data = util::Buffer::Uninitialized(len);
    Status read = process_->address_space().Read(
        src, {req.inline_data.MutableData(), req.inline_data.size()});
    if (!read.ok()) co_return Result<SendHandle>(read);
  } else {
    req.src_va = src;
  }

  // Queue-slot flow control: wait for space in the SRAM ring and a free
  // completion slot.
  co_await slot_tokens_->Acquire();
  co_await state_->queue_slots().Acquire();
  assert(!free_slots_.empty());
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot].in_use = true;
  slots_[slot].generation = next_generation_++;
  req.slot = slot;
  state_->completion_events[slot]->Reset();
  (void)process_->address_space().WriteU32(
      state_->completion_base + slot * 4,
      static_cast<std::uint32_t>(SendStatus::kPending));

  // Post the request: PIO writes into the SRAM send queue. Short requests
  // carry the data (4 header words + payload); long requests are fixed
  // size (§4.5).
  const int words = short_send ? 4 + static_cast<int>((len + 3) / 4) : 6;
  co_await machine_->pci().PioWrite(words);
  if (send_posts_m_ != nullptr) {
    send_posts_m_->Inc();
    pio_post_ns_m_->Inc(
        static_cast<std::uint64_t>(machine_->pci().PioWriteCost(words)));
  }

  Status posted = lcp_->PostSend(*state_, std::move(req));
  if (!posted.ok()) {
    slots_[slot].in_use = false;
    free_slots_.push_back(slot);
    slot_tokens_->Release();
    state_->queue_slots().Release();
    co_return Result<SendHandle>(posted);
  }
  co_return SendHandle{slot, slots_[slot].generation};
}

bool Endpoint::CheckSend(const SendHandle& handle) const {
  if (handle.slot >= slots_.size() || !slots_[handle.slot].in_use ||
      slots_[handle.slot].generation != handle.generation) {
    return true;  // already completed and reaped
  }
  return state_->completion_events[handle.slot]->is_set();
}

sim::Task<Status> Endpoint::WaitSend(SendHandle handle) {
  sim::Simulator& sim = machine_->kernel().simulator();
  if (handle.slot >= slots_.size() || !slots_[handle.slot].in_use ||
      slots_[handle.slot].generation != handle.generation) {
    co_return InvalidArgument("stale send handle");
  }
  // Spin on the completion word in cache (§4.5).
  co_await state_->completion_events[handle.slot]->Wait();
  co_await sim.Delay(params_.host.spin_poll);

  auto word = process_->address_space().ReadU32(state_->completion_base +
                                                handle.slot * 4);
  const SendStatus status =
      word.ok() ? static_cast<SendStatus>(word.value()) : SendStatus::kPending;

  slots_[handle.slot].in_use = false;
  free_slots_.push_back(handle.slot);
  slot_tokens_->Release();
  co_return ToStatus(status);
}

sim::Process Endpoint::ReapSlot(SendHandle handle) {
  // Background bookkeeping for fire-and-forget short sends: recycle the
  // slot once the LCP writes the completion word; surface errors through
  // the deferred-error counter (a short send has no synchronous failure
  // channel in the paper's model).
  co_await state_->completion_events[handle.slot]->Wait();
  auto word = process_->address_space().ReadU32(state_->completion_base +
                                                handle.slot * 4);
  if (!word.ok() ||
      static_cast<SendStatus>(word.value()) != SendStatus::kDone) {
    ++deferred_send_errors_;
  }
  slots_[handle.slot].in_use = false;
  free_slots_.push_back(handle.slot);
  slot_tokens_->Release();
}

sim::Task<Status> Endpoint::SendMsg(mem::VirtAddr src, ProxyAddr dst,
                                    std::uint32_t len, SendOptions options) {
  auto handle = co_await SendMsgAsync(src, dst, len, options);
  if (!handle.ok()) co_return handle.status();
  if (len <= params_.vmmc.short_send_max) {
    // The data was PIO-copied into the interface at post time: the send
    // buffer is already reusable, so a synchronous short send returns now
    // (§5.3: sync and async short-send overheads are equal).
    machine_->kernel().simulator().Spawn(ReapSlot(handle.value()));
    co_return OkStatus();
  }
  co_return co_await WaitSend(handle.value());
}

// ---------------------------------------------------------------------------
// One-sided RDMA
// ---------------------------------------------------------------------------

sim::Task<Result<MemRegion>> Endpoint::RegisterMemory(mem::VirtAddr va,
                                                      std::uint64_t len,
                                                      RegIntent intent) {
  auto acq = reg_cache_->Acquire(va, len, intent);
  if (!acq.ok()) co_return acq.status();
  if (acq.value().cost > 0) {
    co_await machine_->kernel().simulator().Delay(acq.value().cost);
  }
  co_return acq.value().region;
}

sim::Task<Status> Endpoint::UnregisterMemory(const MemRegion& region) {
  auto cost = reg_cache_->Release(region.cache_id);
  if (!cost.ok()) co_return cost.status();
  if (cost.value() > 0) {
    co_await machine_->kernel().simulator().Delay(cost.value());
  }
  co_return OkStatus();
}

sim::Task<Result<SendHandle>> Endpoint::PostOneSided(SendRequest req) {
  co_await slot_tokens_->Acquire();
  co_await state_->queue_slots().Acquire();
  assert(!free_slots_.empty());
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_[slot].in_use = true;
  slots_[slot].generation = next_generation_++;
  req.slot = slot;
  state_->completion_events[slot]->Reset();
  (void)process_->address_space().WriteU32(
      state_->completion_base + slot * 4,
      static_cast<std::uint32_t>(SendStatus::kPending));

  // A one-sided descriptor is the 6-word long-send format plus the
  // extension words: destination node, rtag, 64-bit offset, fin triple.
  const int words = 12;
  co_await machine_->pci().PioWrite(words);
  if (send_posts_m_ != nullptr) {
    send_posts_m_->Inc();
    pio_post_ns_m_->Inc(
        static_cast<std::uint64_t>(machine_->pci().PioWriteCost(words)));
  }

  Status posted = lcp_->PostSend(*state_, std::move(req));
  if (!posted.ok()) {
    slots_[slot].in_use = false;
    free_slots_.push_back(slot);
    slot_tokens_->Release();
    state_->queue_slots().Release();
    co_return Result<SendHandle>(posted);
  }
  co_return SendHandle{slot, slots_[slot].generation};
}

sim::Task<Result<SendHandle>> Endpoint::RdmaWriteAsync(mem::VirtAddr src,
                                                       RemoteTarget dst,
                                                       std::uint32_t len,
                                                       RdmaOptions options) {
  sim::Simulator& sim = machine_->kernel().simulator();
  co_await sim.Delay(params_.host.lib_send_overhead);
  if (len == 0 || len > params_.vmmc.max_send_bytes) {
    co_return Result<SendHandle>(InvalidArgument("length out of range"));
  }
  if (dst.node < 0 || dst.rtag == 0) {
    co_return Result<SendHandle>(InvalidArgument("invalid remote target"));
  }
  SendRequest req;
  req.len = len;
  req.src_va = src;
  req.direct = std::make_unique<DirectSend>(
      DirectSend{static_cast<std::uint32_t>(dst.node), dst.rtag, dst.offset,
                 options.fin_rtag, options.fin_offset, options.fin_value});
  co_return co_await PostOneSided(std::move(req));
}

sim::Task<Status> Endpoint::RdmaWrite(mem::VirtAddr src, RemoteTarget dst,
                                      std::uint32_t len, RdmaOptions options) {
  auto handle = co_await RdmaWriteAsync(src, dst, len, options);
  if (!handle.ok()) co_return handle.status();
  co_return co_await WaitSend(handle.value());
}

sim::Task<Status> Endpoint::EnsureFinRegion() {
  if (fin_base_ != 0) co_return OkStatus();
  auto base = memory().HeapAlloc(kMaxOutstandingReads * 4, 64);
  if (!base.ok()) co_return base.status();
  auto region = co_await RegisterMemory(base.value(), kMaxOutstandingReads * 4,
                                        RegIntent::kRecv);
  if (!region.ok()) {
    (void)memory().HeapFree(base.value());
    co_return region.status();
  }
  fin_base_ = base.value();
  fin_region_ = region.value();
  for (std::uint32_t i = 0; i < kMaxOutstandingReads; ++i) {
    free_fin_slots_.push_back(i);
  }
  co_return OkStatus();
}

sim::Task<Status> Endpoint::RdmaRead(RemoteTarget src, std::uint32_t len,
                                     const MemRegion& dst,
                                     std::uint64_t dst_offset) {
  sim::Simulator& sim = machine_->kernel().simulator();
  co_await sim.Delay(params_.host.lib_send_overhead);
  if (len == 0 || len > params_.vmmc.max_send_bytes) {
    co_return InvalidArgument("length out of range");
  }
  if (src.node < 0 || src.rtag == 0) {
    co_return InvalidArgument("invalid remote source");
  }
  if (dst.rtag == 0) {
    co_return InvalidArgument("destination region is not receive-registered");
  }
  if (dst_offset + len > dst.len) {
    co_return OutOfRange("read overruns the destination region");
  }
  if (Status s = co_await EnsureFinRegion(); !s.ok()) co_return s;
  if (free_fin_slots_.empty()) {
    co_return ResourceExhausted("too many outstanding reads");
  }
  const std::uint32_t fin_slot = free_fin_slots_.back();
  free_fin_slots_.pop_back();
  // Nonzero op id with bit 31 clear (the server sets bit 31 on failure).
  const std::uint32_t op = (next_read_op_++ & 0x3fff'ffffu) + 1;
  (void)memory().WriteU32(fin_base_ + fin_slot * 4, 0);

  SendRequest req;
  req.len = len;
  req.read = std::make_unique<ReadRequest>(
      ReadRequest{static_cast<std::uint32_t>(src.node), src.rtag, src.offset,
                  dst.rtag, dst_offset, fin_region_.rtag, fin_slot * 4, op});
  auto handle = co_await PostOneSided(std::move(req));
  Status sent = handle.status();
  if (handle.ok()) sent = co_await WaitSend(handle.value());
  if (!sent.ok()) {
    free_fin_slots_.push_back(fin_slot);
    co_return sent;
  }

  // Spin until the server's fin chunk lands in our fin word.
  for (;;) {
    auto word = memory().ReadU32(fin_base_ + fin_slot * 4);
    if (word.ok()) {
      if (word.value() == op) break;
      if (word.value() == (op | 0x8000'0000u)) {
        free_fin_slots_.push_back(fin_slot);
        co_return PermissionDenied("remote rejected the read source range");
      }
    }
    co_await sim.Delay(params_.vmmc.p2p.poll);
  }
  free_fin_slots_.push_back(fin_slot);
  co_return OkStatus();
}

// ---------------------------------------------------------------------------
// Notifications
// ---------------------------------------------------------------------------

void Endpoint::SetNotificationHandler(ExportId id, NotificationHandler handler) {
  handlers_[id] = std::move(handler);
}

sim::Process Endpoint::NotificationSignalHandler() {
  sim::Simulator& sim = machine_->kernel().simulator();
  co_await sim.Delay(2000);  // library handler dispatch
  for (const UserNotification& n : driver_->DrainNotifications(process_->pid())) {
    ++notifications_received_;
    auto it = handlers_.find(n.export_id);
    if (it != handlers_.end()) co_await it->second(n);
  }
}

}  // namespace vmmc::vmmc_core
