#include "vmmc/vmmc/lcp.h"

#include <cassert>
#include <string>

#include "vmmc/util/log.h"

namespace vmmc::vmmc_core {

using mem::kPageSize;

namespace {
// Sinks used until Run binds the registry (and forever for an LCP that is
// constructed but never booted), so the counting paths never branch.
obs::Counter g_unbound_counter;
obs::Gauge g_unbound_gauge;
obs::Histo g_unbound_histo;
}  // namespace

ProcState::ProcState(sim::Simulator& sim, const VmmcParams& params,
                     host::UserProcess& process)
    : tlb_filled(sim),
      process_(&process),
      outgoing_(params.outgoing_pt_pages),
      tlb_(params.tlb_total_entries, params.tlb_ways),
      queue_slots_(sim, params.send_queue_entries) {
  completion_events.reserve(params.send_queue_entries);
  for (std::uint32_t i = 0; i < params.send_queue_entries; ++i) {
    completion_events.push_back(std::make_unique<sim::Event>(sim));
  }
}

VmmcLcp::VmmcLcp(const Params& params, RouteTable routes)
    : params_(params), routes_(std::move(routes)) {
  obs_.sends = &g_unbound_counter;
  obs_.chunks_sent = &g_unbound_counter;
  obs_.bytes_sent = &g_unbound_counter;
  obs_.chunks_received = &g_unbound_counter;
  obs_.bytes_received = &g_unbound_counter;
  obs_.tlb_miss_interrupts = &g_unbound_counter;
  obs_.protection_violations = &g_unbound_counter;
  obs_.crc_drops = &g_unbound_counter;
  obs_.notifications = &g_unbound_counter;
  obs_.send_queue_depth = &g_unbound_gauge;
  obs_.host_dma_ns = &g_unbound_histo;
  obs_.translate_ns = &g_unbound_histo;
}

void VmmcLcp::BindObs() {
  const std::string node = "node" + std::to_string(nic_->nic_id());
  obs::Registry& m = nic_->simulator().metrics();
  obs_.sends = &m.GetCounter(node + ".lcp.sends");
  obs_.chunks_sent = &m.GetCounter(node + ".lcp.chunks_sent");
  obs_.bytes_sent = &m.GetCounter(node + ".lcp.bytes_sent");
  obs_.chunks_received = &m.GetCounter(node + ".lcp.chunks_received");
  obs_.bytes_received = &m.GetCounter(node + ".lcp.bytes_received");
  obs_.tlb_miss_interrupts = &m.GetCounter(node + ".lcp.tlb_miss_interrupts");
  obs_.protection_violations =
      &m.GetCounter(node + ".lcp.protection_violations");
  obs_.crc_drops = &m.GetCounter(node + ".lcp.crc_drops");
  obs_.notifications = &m.GetCounter(node + ".lcp.notifications");
  obs_.send_queue_depth = &m.GetGauge(node + ".lcp.send_queue_depth");
  obs_.host_dma_ns = &m.GetHisto(node + ".lcp.host_dma_ns");
  obs_.translate_ns = &m.GetHisto(node + ".lcp.translate_ns");
  obs_.tlb_hits = &m.GetCounter(node + ".tlb.hit");
  obs_.tlb_misses = &m.GetCounter(node + ".tlb.miss");
  obs_.tlb_evictions = &m.GetCounter(node + ".tlb.eviction");
  obs_.track = nic_->simulator().tracer().RegisterTrack(node + ".lcp");
}

// ---------------------------------------------------------------------------
// Host-visible interface
// ---------------------------------------------------------------------------

Result<ProcState*> VmmcLcp::RegisterProcess(host::UserProcess& process) {
  assert(nic_ != nullptr && "LCP not running yet (boot the cluster first)");
  if (FindProc(process.pid()) != nullptr) {
    return AlreadyExists("process already registered with VMMC");
  }
  const VmmcParams& vp = params_.vmmc;
  lanai::Sram& sram = nic_->sram();
  const std::string tag = std::to_string(process.pid());

  // Every per-process structure is accounted in SRAM; running out is the
  // resource pressure §6 attributes to the Myrinet design.
  auto queue = sram.Allocate(
      "sendq-" + tag, vp.send_queue_entries * (16 + vp.short_send_max));
  if (!queue.ok()) return queue.status();
  auto opt = sram.Allocate("outpt-" + tag, vp.outgoing_pt_pages * 4);
  if (!opt.ok()) {
    (void)sram.Free(queue.value());
    return opt.status();
  }
  auto tlb = sram.Allocate("tlb-" + tag, vp.tlb_total_entries * 8);
  if (!tlb.ok()) {
    (void)sram.Free(queue.value());
    (void)sram.Free(opt.value());
    return tlb.status();
  }

  auto state = std::make_unique<ProcState>(nic_->simulator(), vp, process);
  state->sram_regions = {queue.value(), opt.value(), tlb.value()};
  // All processes on a node share the node<N>.tlb.* counters: the paper's
  // TLB pressure question is per NIC, not per process.
  state->tlb().BindMetrics(obs_.tlb_hits, obs_.tlb_misses, obs_.tlb_evictions);
  procs_.push_back(std::move(state));
  return procs_.back().get();
}

Status VmmcLcp::UnregisterProcess(int pid) {
  for (auto it = procs_.begin(); it != procs_.end(); ++it) {
    if ((*it)->pid() == pid) {
      for (std::uint32_t off : (*it)->sram_regions) (void)nic_->sram().Free(off);
      procs_.erase(it);
      rr_cursor_ = 0;
      return OkStatus();
    }
  }
  return NotFound("pid not registered");
}

ProcState* VmmcLcp::FindProc(int pid) {
  for (auto& p : procs_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

Status VmmcLcp::PostSend(ProcState& proc, SendRequest request) {
  if (request.slot >= proc.completion_events.size()) {
    return InvalidArgument("bad completion slot");
  }
  proc.send_queue().push_back(std::move(request));
  UpdateQueueDepth();
  nic_->NotifyWork();
  return OkStatus();
}

// Total entries queued across all processes, as a sim-time-weighted gauge:
// its TimeWeightedMean is the average backlog the LCP ran against.
void VmmcLcp::UpdateQueueDepth() {
  std::size_t depth = 0;
  for (const auto& p : procs_) depth += p->send_queue().size();
  obs_.send_queue_depth->Set(nic_->simulator().now(),
                             static_cast<double>(depth));
}

std::optional<std::pair<int, mem::Vpn>> VmmcLcp::TakePendingTlbMiss() {
  for (auto& p : procs_) {
    if (p->pending_miss.has_value()) {
      mem::Vpn vpn = *p->pending_miss;
      p->pending_miss.reset();
      return std::make_pair(p->pid(), vpn);
    }
  }
  return std::nullopt;
}

void VmmcLcp::CompleteTlbFill(
    int pid, const std::vector<std::pair<mem::Vpn, mem::Pfn>>& fills) {
  ProcState* proc = FindProc(pid);
  if (proc == nullptr) return;
  for (const auto& [vpn, pfn] : fills) proc->tlb().Insert(vpn, pfn);
  proc->tlb_filled.Set();
}

std::optional<PendingNotification> VmmcLcp::PopNotification() {
  if (notifications_.empty()) return std::nullopt;
  PendingNotification n = notifications_.front();
  notifications_.pop_front();
  return n;
}

// ---------------------------------------------------------------------------
// LCP main loop
// ---------------------------------------------------------------------------

sim::Process VmmcLcp::Run(lanai::NicCard& nic) {
  nic_ = &nic;
  BindObs();
  // Code + global data + staging buffers; capacity pressure for §6.
  auto reserved = nic.sram().Allocate("lcp-code+staging",
                                      params_.lanai.lcp_reserved_bytes);
  assert(reserved.ok());
  (void)reserved;

  incoming_ = std::make_unique<IncomingPageTable>(nic.machine().memory().num_frames());
  tx_box_ = std::make_unique<sim::Mailbox<TxItem>>(nic.simulator());
  staging_ = std::make_unique<sim::Semaphore>(nic.simulator(), 2);
  nic.simulator().Spawn(TxPump(nic));
  running_ = true;

  for (;;) {
    co_await nic.AwaitWork();
    while (nic.work_pending()) co_await nic.AwaitWork();  // collapse tokens
    co_await nic.cpu().Exec(params_.lanai.main_loop_poll);

    for (;;) {
      // Incoming packets first: the LCP "needs to be responsive to
      // unexpected, external events, such as the arrival of incoming data
      // packets" (§5.3).
      if (auto rp = nic.rx_queue().TryGet()) {
        co_await HandleRecv(nic, std::move(*rp));
        continue;
      }
      ProcState* proc = NextProcWithWork();
      if (proc == nullptr) break;
      if (proc->active.has_value()) {
        // Advance the long send in flight by one chunk, then loop back so
        // incoming packets interleave with outgoing chunks.
        co_await SendOneChunk(nic, *proc);
        continue;
      }
      // Picking up a new send request requires scanning the send queues
      // of all possible senders (§6).
      co_await nic.cpu().Exec(params_.lanai.pickup_base +
                              params_.lanai.pickup_per_process *
                                  static_cast<sim::Tick>(procs_.size()));
      SendRequest req = std::move(proc->send_queue().front());
      proc->send_queue().pop_front();
      UpdateQueueDepth();
      co_await StartSend(nic, *proc, std::move(req));
    }
  }
}

ProcState* VmmcLcp::NextProcWithWork() {
  if (procs_.empty()) return nullptr;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    std::size_t idx = (rr_cursor_ + i) % procs_.size();
    if (procs_[idx]->active.has_value() || !procs_[idx]->send_queue().empty()) {
      rr_cursor_ = (idx + 1) % procs_.size();
      return procs_[idx].get();
    }
  }
  return nullptr;
}

// Completes a request: completion word, slot, SRAM queue-entry release.
void VmmcLcp::FinishRequest(ProcState& proc, std::uint32_t slot,
                            SendStatus status) {
  WriteCompletion(proc, slot, status);
  proc.queue_slots().Release();
}

sim::Process VmmcLcp::TxPump(lanai::NicCard& nic) {
  for (;;) {
    TxItem item = co_await tx_box_->Get();
    co_await nic.NetSend(std::move(item.packet));
    if (item.release_staging) staging_->Release();
  }
}

void VmmcLcp::WriteCompletion(ProcState& proc, std::uint32_t slot,
                              SendStatus status) {
  if (proc.completion_base != 0) {
    (void)proc.process().address_space().WriteU32(
        proc.completion_base + slot * 4, static_cast<std::uint32_t>(status));
  }
  proc.completion_events[slot]->Set();
  if (status != SendStatus::kDone) ++stats_.send_errors;
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Result<std::pair<std::uint64_t, std::uint64_t>> VmmcLcp::ResolveChunkTarget(
    ProcState& proc, ProxyAddr proxy, std::uint32_t chunk_len,
    std::uint32_t* dst_node) {
  const std::uint64_t first_page = ProxyPage(proxy);
  auto t0 = proc.outgoing().Lookup(static_cast<std::uint32_t>(first_page));
  if (!t0.ok()) return t0.status();
  const std::uint64_t pa0 = mem::PageAddr(t0.value().pfn) + ProxyOffset(proxy);
  std::uint64_t pa1 = 0;
  if (chunk_len > 0 &&
      mem::PageNumber(proxy + chunk_len - 1) != first_page) {
    auto t1 = proc.outgoing().Lookup(static_cast<std::uint32_t>(first_page + 1));
    if (!t1.ok()) return t1.status();
    if (t1.value().node != t0.value().node) {
      return PermissionDenied("chunk spans imports on different nodes");
    }
    pa1 = mem::PageAddr(t1.value().pfn);
  }
  *dst_node = t0.value().node;
  return std::make_pair(pa0, pa1);
}

sim::Task<Result<mem::Pfn>> VmmcLcp::TranslateSrc(lanai::NicCard& nic,
                                                  ProcState& proc,
                                                  mem::Vpn vpn) {
  const sim::Tick t0 = nic.simulator().now();
  for (int attempt = 0; attempt < 2; ++attempt) {
    co_await nic.cpu().Exec(params_.lanai.tlb_lookup);
    mem::Pfn pfn = 0;
    if (proc.tlb().Lookup(vpn, &pfn)) {
      obs_.translate_ns->Observe(
          static_cast<double>(nic.simulator().now() - t0));
      co_return pfn;
    }
    if (attempt == 1) break;
    // Miss: interrupt the host; the driver pins the pages and inserts up
    // to 32 translations (§4.5), then wakes us.
    ++stats_.tlb_miss_interrupts;
    obs_.tlb_miss_interrupts->Inc();
    auto miss_span = obs_.track >= 0
                         ? nic.simulator().tracer().Scope(obs_.track, "tlb_miss")
                         : obs::Tracer::Span();
    proc.pending_miss = vpn;
    proc.tlb_filled.Reset();
    co_await nic.cpu().Exec(params_.lanai.raise_interrupt);
    nic.RaiseHostInterrupt();
    co_await proc.tlb_filled.Wait();
  }
  // The driver could not translate: the source page is not mapped.
  obs_.translate_ns->Observe(static_cast<double>(nic.simulator().now() - t0));
  co_return Result<mem::Pfn>(NotFound("source page unmapped"));
}

sim::Process VmmcLcp::StartSend(lanai::NicCard& nic, ProcState& proc,
                                SendRequest req) {
  ++stats_.sends_processed;
  obs_.sends->Inc();
  if (req.len == 0 || req.len > params_.vmmc.max_send_bytes) {
    FinishRequest(proc, req.slot, SendStatus::kBadLength);
    co_return;
  }
  // Resolve and validate the first chunk's destination now; the remaining
  // pages are validated chunk by chunk.
  std::uint32_t dst_node = 0;
  const std::uint32_t first_len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(req.len, kPageSize - ProxyOffset(req.proxy)));
  auto first_target = ResolveChunkTarget(proc, req.proxy, first_len, &dst_node);
  if (!first_target.ok()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    FinishRequest(proc, req.slot, SendStatus::kBadProxy);
    co_return;
  }
  if (dst_node >= routes_.size()) {
    FinishRequest(proc, req.slot, SendStatus::kBadProxy);
    co_return;
  }

  if (req.len <= params_.vmmc.short_send_max) {
    co_await HandleShortSend(nic, proc, req);
    co_return;
  }
  ++stats_.long_sends;
  proc.active = ProcState::ActiveLongSend{std::move(req), 0, true};
}

sim::Process VmmcLcp::HandleShortSend(lanai::NicCard& nic, ProcState& proc,
                                      SendRequest& req) {
  ++stats_.short_sends;
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "short_send")
                  : obs::Tracer::Span();
  std::uint32_t dst_node = 0;
  auto target = ResolveChunkTarget(proc, req.proxy, req.len, &dst_node);
  assert(target.ok());  // validated by StartSend

  // The LANai copies the message data from the send queue into the network
  // buffer (§5.3).
  const sim::Tick words = (req.len + 3) / 4;
  co_await nic.cpu().Exec(params_.lanai.short_copy_base +
                          words * params_.lanai.short_copy_per_word +
                          params_.lanai.header_prep);

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagLastChunk |
            (req.notify ? ChunkHeader::kFlagNotify : 0);
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = req.len;
  h.chunk_len = req.len;
  h.dst_pa0 = target.value().first;
  h.dst_pa1 = target.value().second;

  myrinet::Packet pkt;
  pkt.route = routes_[dst_node];
  pkt.payload = EncodeChunk(h, req.inline_data);

  // Hand the packet to the transmit engine first; the completion word is
  // correct either way (the data already lives in SRAM, PIO-copied by the
  // host) and keeping it off the wire's critical path saves latency.
  ++stats_.chunks_sent;
  stats_.bytes_sent += req.len;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(req.len);
  tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
  co_await nic.cpu().Exec(params_.lanai.completion_writeback);
  FinishRequest(proc, req.slot, SendStatus::kDone);
  co_return;
}

sim::Process VmmcLcp::SendOneChunk(lanai::NicCard& nic, ProcState& proc) {
  assert(proc.active.has_value());
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "chunk")
                  : obs::Tracer::Span();
  ProcState::ActiveLongSend& as = *proc.active;
  const SendRequest& req = as.req;

  const mem::VirtAddr src = req.src_va + as.offset;
  const ProxyAddr dst = req.proxy + as.offset;
  // First chunk runs to the source page boundary (§4.5); after that the
  // source is page aligned and chunks are chunk_bytes (the page size by
  // default; smaller values exist for the chunk-size ablation).
  const std::uint64_t chunk_cap =
      std::min<std::uint64_t>(params_.vmmc.chunk_bytes,
                              kPageSize - mem::PageOffset(src));
  const std::uint32_t chunk_len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(req.len - as.offset, chunk_cap));
  const bool last = as.offset + chunk_len == req.len;

  // Tight sending loop vs main software state machine (§5.3): the tight
  // loop is used only while no incoming packets demand attention and this
  // is the only work source.
  const bool tight = params_.vmmc.tight_send_loop && nic.rx_queue().empty() &&
                     !nic.work_pending();
  co_await nic.cpu().Exec(params_.lanai.chunk_overhead +
                          (tight ? 0 : params_.lanai.main_loop_extra));
  if (tight) {
    ++stats_.tight_loop_chunks;
  } else {
    ++stats_.main_loop_chunks;
  }

  // Source translation through the per-process software TLB.
  auto pfn = co_await TranslateSrc(nic, proc, mem::PageNumber(src));
  if (!pfn.ok()) {
    FinishRequest(proc, req.slot, SendStatus::kBadAddress);
    proc.active.reset();
    co_return;
  }
  const mem::PhysAddr src_pa = mem::PageAddr(pfn.value()) + mem::PageOffset(src);

  // Destination validation for this chunk.
  std::uint32_t dst_node = 0;
  auto target = ResolveChunkTarget(proc, dst, chunk_len, &dst_node);
  if (!target.ok()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    FinishRequest(proc, req.slot, SendStatus::kBadProxy);
    proc.active.reset();
    co_return;
  }

  // Header preparation is overlapped with the previous chunk's host DMA
  // when precomputation is on (§4.5); the first header is always paid.
  if (as.first_chunk || !params_.vmmc.precompute_headers) {
    co_await nic.cpu().Exec(params_.lanai.header_prep);
  }
  as.first_chunk = false;

  // Stage the chunk: host memory -> LANai SRAM (pipelined with the
  // network DMA of previous chunks through the staging buffers).
  if (params_.vmmc.pipeline_dma) co_await staging_->Acquire();
  std::vector<std::uint8_t> data;
  const sim::Tick dma_t0 = nic.simulator().now();
  co_await nic.HostDmaRead(src_pa, data, chunk_len);
  obs_.host_dma_ns->Observe(
      static_cast<double>(nic.simulator().now() - dma_t0));

  if (last) {
    // "When the last chunk of a long message is safely stored in the
    // LANai buffer, the LANai reports ... completion status back to user
    // space" (§4.5).
    co_await nic.cpu().Exec(params_.lanai.completion_writeback);
    FinishRequest(proc, req.slot, SendStatus::kDone);
  }

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = (last ? ChunkHeader::kFlagLastChunk : 0) |
            (req.notify ? ChunkHeader::kFlagNotify : 0);
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = req.len;
  h.chunk_len = chunk_len;
  h.dst_pa0 = target.value().first;
  h.dst_pa1 = target.value().second;

  myrinet::Packet pkt;
  pkt.route = routes_[dst_node];
  pkt.payload = EncodeChunk(h, data);

  ++stats_.chunks_sent;
  stats_.bytes_sent += chunk_len;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(chunk_len);
  if (params_.vmmc.pipeline_dma) {
    tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/true});
  } else {
    co_await nic.NetSend(std::move(pkt));
  }
  as.offset += chunk_len;
  if (last) proc.active.reset();
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

sim::Process VmmcLcp::HandleRecv(lanai::NicCard& nic, lanai::ReceivedPacket rp) {
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "recv")
                  : obs::Tracer::Span();
  // With traffic in both directions the receive work also runs through
  // the main software state machine instead of a dedicated drain loop
  // (§5.3): charge the state-machine overhead when send work is pending.
  bool mixed = false;
  for (const auto& p : procs_) {
    if (p->active.has_value() || !p->send_queue().empty()) {
      mixed = true;
      break;
    }
  }
  co_await nic.cpu().Exec(params_.lanai.recv_process +
                          (mixed ? params_.lanai.main_loop_extra : 0));
  if (!rp.crc_ok) {
    // Detected but not recovered (§4.2).
    ++stats_.crc_drops;
    obs_.crc_drops->Inc();
    co_return;
  }
  auto decoded = DecodeChunk(rp.packet.payload);
  if (!decoded.has_value()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    co_return;
  }
  const ChunkHeader& h = decoded->header;
  if (h.type != PacketType::kData) co_return;  // mapping traffic: not ours

  // Check the incoming page table before any DMA touches host memory: a
  // frame may be written only if its export enabled reception (§4.4).
  const std::uint32_t seg0 = h.ScatterLen0();
  const IncomingEntry* e0 = incoming_->Find(mem::PageNumber(h.dst_pa0));
  if (e0 == nullptr || !e0->recv_enabled) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    co_return;
  }
  const IncomingEntry* e1 = nullptr;
  if (h.dst_pa1 != 0 && seg0 < h.chunk_len) {
    e1 = incoming_->Find(mem::PageNumber(h.dst_pa1));
    if (e1 == nullptr || !e1->recv_enabled) {
      ++stats_.protection_violations;
      obs_.protection_violations->Inc();
      co_return;
    }
  }

  // Two-piece scatter into pinned receive-buffer frames (§4.5). No host
  // CPU copy: this is the zero-copy receive path.
  co_await nic.HostDmaWrite(h.dst_pa0, decoded->data.subspan(0, seg0));
  if (e1 != nullptr) {
    co_await nic.HostDmaWrite(h.dst_pa1, decoded->data.subspan(seg0));
  }
  ++stats_.chunks_received;
  stats_.bytes_received += h.chunk_len;
  obs_.chunks_received->Inc();
  obs_.bytes_received->Inc(h.chunk_len);

  // Notification: only on the last chunk, only if the sender asked and the
  // export allows it (§2, §4.4).
  if (h.last_chunk() && h.notify() && e0->notify) {
    ++stats_.notifications_raised;
    obs_.notifications->Inc();
    notifications_.push_back(
        PendingNotification{e0->owner_pid, e0->export_id, h.msg_len});
    co_await nic.cpu().Exec(params_.lanai.raise_interrupt);
    nic.RaiseHostInterrupt();
  }
}

}  // namespace vmmc::vmmc_core
