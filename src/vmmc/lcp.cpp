#include "vmmc/vmmc/lcp.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "vmmc/util/log.h"

namespace vmmc::vmmc_core {

using mem::kPageSize;

namespace {
// Sinks used until Run binds the registry (and forever for an LCP that is
// constructed but never booted), so the counting paths never branch.
obs::Counter g_unbound_counter;
obs::Gauge g_unbound_gauge;
obs::Histo g_unbound_histo;
}  // namespace

ProcState::ProcState(sim::Simulator& sim, const VmmcParams& params,
                     host::UserProcess& process)
    : tlb_filled(sim),
      process_(&process),
      outgoing_(params.outgoing_pt_pages),
      tlb_(params.tlb_total_entries, params.tlb_ways),
      queue_slots_(sim, params.send_queue_entries) {
  completion_events.reserve(params.send_queue_entries);
  for (std::uint32_t i = 0; i < params.send_queue_entries; ++i) {
    completion_events.push_back(std::make_unique<sim::Event>(sim));
  }
}

VmmcLcp::VmmcLcp(const Params& params, RouteTable routes)
    : params_(params), routes_(std::move(routes)) {
  obs_.sends = &g_unbound_counter;
  obs_.chunks_sent = &g_unbound_counter;
  obs_.bytes_sent = &g_unbound_counter;
  obs_.chunks_received = &g_unbound_counter;
  obs_.bytes_received = &g_unbound_counter;
  obs_.tlb_miss_interrupts = &g_unbound_counter;
  obs_.protection_violations = &g_unbound_counter;
  obs_.crc_drops = &g_unbound_counter;
  obs_.notifications = &g_unbound_counter;
  obs_.send_queue_depth = &g_unbound_gauge;
  obs_.host_dma_ns = &g_unbound_histo;
  obs_.translate_ns = &g_unbound_histo;
  obs_.acks_sent = &g_unbound_counter;
  obs_.acks_received = &g_unbound_counter;
  obs_.retransmits = &g_unbound_counter;
  obs_.retransmit_timeouts = &g_unbound_counter;
  obs_.duplicate_chunks = &g_unbound_counter;
  obs_.out_of_order_chunks = &g_unbound_counter;
  obs_.drop_notices = &g_unbound_counter;
  obs_.window_stalls = &g_unbound_counter;
  obs_.retx_in_use = &g_unbound_gauge;
  obs_.rdma_writes = &g_unbound_counter;
  obs_.rdma_reads_served = &g_unbound_counter;
}

void VmmcLcp::BindObs() {
  const std::string node = "node" + std::to_string(nic_->nic_id());
  obs::Registry& m = nic_->simulator().metrics();
  obs_.sends = &m.GetCounter(node + ".lcp.sends");
  obs_.chunks_sent = &m.GetCounter(node + ".lcp.chunks_sent");
  obs_.bytes_sent = &m.GetCounter(node + ".lcp.bytes_sent");
  obs_.chunks_received = &m.GetCounter(node + ".lcp.chunks_received");
  obs_.bytes_received = &m.GetCounter(node + ".lcp.bytes_received");
  obs_.tlb_miss_interrupts = &m.GetCounter(node + ".lcp.tlb_miss_interrupts");
  obs_.protection_violations =
      &m.GetCounter(node + ".lcp.protection_violations");
  obs_.crc_drops = &m.GetCounter(node + ".lcp.crc_drops");
  obs_.notifications = &m.GetCounter(node + ".lcp.notifications");
  obs_.send_queue_depth = &m.GetGauge(node + ".lcp.send_queue_depth");
  obs_.host_dma_ns = &m.GetHisto(node + ".lcp.host_dma_ns");
  obs_.translate_ns = &m.GetHisto(node + ".lcp.translate_ns");
  obs_.tlb_hits = &m.GetCounter(node + ".tlb.hit");
  obs_.tlb_misses = &m.GetCounter(node + ".tlb.miss");
  obs_.tlb_evictions = &m.GetCounter(node + ".tlb.eviction");
  obs_.acks_sent = &m.GetCounter(node + ".lcp.acks_sent");
  obs_.acks_received = &m.GetCounter(node + ".lcp.acks_received");
  obs_.retransmits = &m.GetCounter(node + ".lcp.retransmits");
  obs_.retransmit_timeouts = &m.GetCounter(node + ".lcp.retransmit_timeouts");
  obs_.duplicate_chunks = &m.GetCounter(node + ".lcp.duplicate_chunks");
  obs_.out_of_order_chunks = &m.GetCounter(node + ".lcp.out_of_order_chunks");
  obs_.drop_notices = &m.GetCounter(node + ".lcp.drop_notices");
  obs_.window_stalls = &m.GetCounter(node + ".lcp.window_stalls");
  obs_.retx_in_use = &m.GetGauge(node + ".lcp.retx_in_use");
  obs_.rdma_writes = &m.GetCounter(node + ".lcp.rdma_writes");
  obs_.rdma_reads_served = &m.GetCounter(node + ".lcp.rdma_reads_served");
  obs_.track = nic_->simulator().tracer().RegisterTrack(node + ".lcp");
}

// ---------------------------------------------------------------------------
// Host-visible interface
// ---------------------------------------------------------------------------

Result<ProcState*> VmmcLcp::RegisterProcess(host::UserProcess& process) {
  assert(nic_ != nullptr && "LCP not running yet (boot the cluster first)");
  if (FindProc(process.pid()) != nullptr) {
    return AlreadyExists("process already registered with VMMC");
  }
  const VmmcParams& vp = params_.vmmc;
  lanai::Sram& sram = nic_->sram();
  const std::string tag = std::to_string(process.pid());

  // Every per-process structure is accounted in SRAM; running out is the
  // resource pressure §6 attributes to the Myrinet design.
  auto queue = sram.Allocate(
      "sendq-" + tag, vp.send_queue_entries * (16 + vp.short_send_max));
  if (!queue.ok()) return queue.status();
  auto opt = sram.Allocate("outpt-" + tag, vp.outgoing_pt_pages * 4);
  if (!opt.ok()) {
    (void)sram.Free(queue.value());
    return opt.status();
  }
  auto tlb = sram.Allocate("tlb-" + tag, vp.tlb_total_entries * 8);
  if (!tlb.ok()) {
    (void)sram.Free(queue.value());
    (void)sram.Free(opt.value());
    return tlb.status();
  }

  auto state = std::make_unique<ProcState>(nic_->simulator(), vp, process);
  state->sram_regions = {queue.value(), opt.value(), tlb.value()};
  // All processes on a node share the node<N>.tlb.* counters: the paper's
  // TLB pressure question is per NIC, not per process.
  state->tlb().BindMetrics(obs_.tlb_hits, obs_.tlb_misses, obs_.tlb_evictions);
  procs_.push_back(std::move(state));
  return procs_.back().get();
}

Status VmmcLcp::UnregisterProcess(int pid) {
  // Drop any registered regions the process still owns (a process that
  // dies mid-RDMA must not leave dangling rtags behind).
  for (auto it = recv_regions_.begin(); it != recv_regions_.end();) {
    if (it->second.pid == pid) {
      (void)nic_->sram().Free(it->second.sram_region);
      it = recv_regions_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = procs_.begin(); it != procs_.end(); ++it) {
    if ((*it)->pid() == pid) {
      for (std::uint32_t off : (*it)->sram_regions) (void)nic_->sram().Free(off);
      procs_.erase(it);
      rr_cursor_ = 0;
      return OkStatus();
    }
  }
  return NotFound("pid not registered");
}

ProcState* VmmcLcp::FindProc(int pid) {
  for (auto& p : procs_) {
    if (p->pid() == pid) return p.get();
  }
  return nullptr;
}

Status VmmcLcp::PostSend(ProcState& proc, SendRequest request) {
  if (request.slot >= proc.completion_events.size()) {
    return InvalidArgument("bad completion slot");
  }
  proc.send_queue().push_back(std::move(request));
  UpdateQueueDepth();
  nic_->NotifyWork();
  return OkStatus();
}

// Total entries queued across all processes, as a sim-time-weighted gauge:
// its TimeWeightedMean is the average backlog the LCP ran against.
void VmmcLcp::UpdateQueueDepth() {
  std::size_t depth = 0;
  for (const auto& p : procs_) depth += p->send_queue().size();
  obs_.send_queue_depth->Set(nic_->simulator().now(),
                             static_cast<double>(depth));
}

std::optional<std::pair<int, mem::Vpn>> VmmcLcp::TakePendingTlbMiss() {
  for (auto& p : procs_) {
    if (p->pending_miss.has_value()) {
      mem::Vpn vpn = *p->pending_miss;
      p->pending_miss.reset();
      return std::make_pair(p->pid(), vpn);
    }
  }
  return std::nullopt;
}

void VmmcLcp::CompleteTlbFill(
    int pid, const std::vector<std::pair<mem::Vpn, mem::Pfn>>& fills) {
  ProcState* proc = FindProc(pid);
  if (proc == nullptr) return;
  for (const auto& [vpn, pfn] : fills) proc->tlb().Insert(vpn, pfn);
  proc->tlb_filled.Set();
}

std::optional<PendingNotification> VmmcLcp::PopNotification() {
  if (notifications_.empty()) return std::nullopt;
  PendingNotification n = notifications_.front();
  notifications_.pop_front();
  return n;
}

// ---------------------------------------------------------------------------
// Registered receive regions (rkey model)
// ---------------------------------------------------------------------------

Result<std::uint32_t> VmmcLcp::CreateRecvRegion(int pid,
                                                std::uint64_t first_page_offset,
                                                std::uint64_t len,
                                                std::vector<mem::Pfn> frames) {
  assert(nic_ != nullptr && "LCP not running yet");
  if (len == 0 || frames.empty()) {
    return InvalidArgument("empty recv region");
  }
  if (first_page_offset + len > frames.size() * kPageSize) {
    return InvalidArgument("recv region length exceeds its frame list");
  }
  const std::uint32_t rtag = next_rtag_++;
  // The table entry lives in SRAM: a fixed header plus one word-pair per
  // frame. Running out of SRAM is the same §6 resource pressure every
  // other per-process structure is subject to.
  auto sram = nic_->sram().Allocate(
      "rtag-" + std::to_string(rtag),
      16 + 8 * static_cast<std::uint32_t>(frames.size()));
  if (!sram.ok()) return sram.status();
  RecvRegion region;
  region.pid = pid;
  region.first_page_offset = first_page_offset;
  region.len = len;
  region.frames = std::move(frames);
  region.sram_region = sram.value();
  recv_regions_.emplace(rtag, std::move(region));
  return rtag;
}

Status VmmcLcp::ReleaseRecvRegion(std::uint32_t rtag) {
  auto it = recv_regions_.find(rtag);
  if (it == recv_regions_.end()) return NotFound("no such rtag");
  (void)nic_->sram().Free(it->second.sram_region);
  recv_regions_.erase(it);
  return OkStatus();
}

const VmmcLcp::RecvRegion* VmmcLcp::FindRecvRegion(std::uint32_t rtag) const {
  auto it = recv_regions_.find(rtag);
  return it == recv_regions_.end() ? nullptr : &it->second;
}

Result<VmmcLcp::RtagTarget> VmmcLcp::ResolveRtag(std::uint32_t rtag,
                                                 std::uint64_t offset,
                                                 std::uint32_t chunk_len) const {
  auto it = recv_regions_.find(rtag);
  if (it == recv_regions_.end()) return NotFound("unknown rtag");
  const RecvRegion& r = it->second;
  if (chunk_len == 0 || offset > r.len || offset + chunk_len > r.len) {
    return PermissionDenied("rtag access outside the registered region");
  }
  // Chunks are at most a page, so they span at most one frame boundary.
  assert(chunk_len <= kPageSize);
  const std::uint64_t abs = r.first_page_offset + offset;
  const std::uint64_t page = abs / kPageSize;
  RtagTarget t;
  t.pa0 = mem::PageAddr(r.frames[page]) + abs % kPageSize;
  const std::uint64_t last_page = (abs + chunk_len - 1) / kPageSize;
  if (last_page != page) {
    t.pa1 = mem::PageAddr(r.frames[page + 1]);
    t.seg0 = static_cast<std::uint32_t>(kPageSize - abs % kPageSize);
  } else {
    t.seg0 = chunk_len;
  }
  return t;
}

// ---------------------------------------------------------------------------
// LCP main loop
// ---------------------------------------------------------------------------

sim::Process VmmcLcp::Run(lanai::NicCard& nic) {
  nic_ = &nic;
  BindObs();
  // Code + global data + staging buffers; capacity pressure for §6.
  auto reserved = nic.sram().Allocate("lcp-code+staging",
                                      params_.lanai.lcp_reserved_bytes);
  assert(reserved.ok());
  (void)reserved;

  incoming_ = std::make_unique<IncomingPageTable>(nic.machine().memory().num_frames());
  tx_box_ = std::make_unique<sim::Mailbox<TxItem>>(nic.simulator());
  staging_ = std::make_unique<sim::Semaphore>(nic.simulator(), 2);

  // Go-back-N peer state, one sender/receiver pair per reachable node,
  // and the shared SRAM retransmit pool backing the unacked packets.
  const ReliabilityParams& rel = params_.vmmc.reliability;
  peer_tx_.clear();
  peer_rx_.clear();
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    peer_tx_.emplace_back(rel.window);
    peer_rx_.emplace_back();
  }
  if (rel.enabled) {
    auto pool = nic.sram().Allocate(
        "retx-pool",
        rel.retx_pool_entries *
            (static_cast<std::uint32_t>(ChunkHeader::kWireSize) +
             params_.vmmc.chunk_bytes));
    assert(pool.ok() && "SRAM too small for the retransmit pool");
    (void)pool;
  }

  nic.simulator().Spawn(TxPump(nic));
  running_ = true;

  for (;;) {
    co_await nic.AwaitWork();
    while (nic.work_pending()) co_await nic.AwaitWork();  // collapse tokens
    co_await nic.cpu().Exec(params_.lanai.main_loop_poll);

    for (;;) {
      // Incoming packets first: the LCP "needs to be responsive to
      // unexpected, external events, such as the arrival of incoming data
      // packets" (§5.3).
      if (auto rp = nic.rx_queue().TryGet()) {
        co_await HandleRecv(nic, std::move(*rp));
        continue;
      }
      // One-sided reads we are serving for remote requesters: one chunk
      // per iteration, between receive handling and local send pickup, so
      // neither side starves the other for more than a chunk. A front
      // request blocked on a closed window is not runnable; the ACK that
      // reopens it posts a work token like any other packet.
      if (!read_serves_.empty() &&
          (!reliable() || WindowOpen(read_serves_.front().requester))) {
        co_await ServeReadChunk(nic);
        continue;
      }
      ProcState* proc = NextProcWithWork();
      if (proc == nullptr) break;
      if (proc->active.has_value()) {
        // Advance the long send in flight by one chunk, then loop back so
        // incoming packets interleave with outgoing chunks.
        co_await SendOneChunk(nic, *proc);
        continue;
      }
      // Picking up a new send request requires scanning the send queues
      // of all possible senders (§6).
      co_await nic.cpu().Exec(params_.lanai.pickup_base +
                              params_.lanai.pickup_per_process *
                                  static_cast<sim::Tick>(procs_.size()));
      SendRequest req = std::move(proc->send_queue().front());
      proc->send_queue().pop_front();
      UpdateQueueDepth();
      co_await StartSend(nic, *proc, std::move(req));
    }
  }
}

ProcState* VmmcLcp::NextProcWithWork() {
  if (procs_.empty()) return nullptr;
  for (std::size_t i = 0; i < procs_.size(); ++i) {
    std::size_t idx = (rr_cursor_ + i) % procs_.size();
    ProcState& p = *procs_[idx];
    if (p.active.has_value()) {
      // A send parked on a closed go-back-N window is not runnable until
      // an ACK reopens the window; the inner loop re-polls after every
      // received packet, so progress resumes as soon as the ACK lands.
      if (reliable() && !WindowOpen(p.active->dst_node)) continue;
    } else if (p.send_queue().empty()) {
      continue;
    }
    rr_cursor_ = (idx + 1) % procs_.size();
    return &p;
  }
  return nullptr;
}

// Completes a request: completion word, slot, SRAM queue-entry release.
void VmmcLcp::FinishRequest(ProcState& proc, std::uint32_t slot,
                            SendStatus status) {
  WriteCompletion(proc, slot, status);
  proc.queue_slots().Release();
}

sim::Process VmmcLcp::TxPump(lanai::NicCard& nic) {
  for (;;) {
    TxItem item = co_await tx_box_->Get();
    co_await nic.NetSend(std::move(item.packet));
    if (item.release_staging) staging_->Release();
  }
}

void VmmcLcp::WriteCompletion(ProcState& proc, std::uint32_t slot,
                              SendStatus status) {
  if (proc.completion_base != 0) {
    (void)proc.process().address_space().WriteU32(
        proc.completion_base + slot * 4, static_cast<std::uint32_t>(status));
  }
  proc.completion_events[slot]->Set();
  if (status != SendStatus::kDone) ++stats_.send_errors;
}

// ---------------------------------------------------------------------------
// Send path
// ---------------------------------------------------------------------------

Result<std::pair<std::uint64_t, std::uint64_t>> VmmcLcp::ResolveChunkTarget(
    ProcState& proc, ProxyAddr proxy, std::uint32_t chunk_len,
    std::uint32_t* dst_node) {
  const std::uint64_t first_page = ProxyPage(proxy);
  auto t0 = proc.outgoing().Lookup(static_cast<std::uint32_t>(first_page));
  if (!t0.ok()) return t0.status();
  const std::uint64_t pa0 = mem::PageAddr(t0.value().pfn) + ProxyOffset(proxy);
  std::uint64_t pa1 = 0;
  if (chunk_len > 0 &&
      mem::PageNumber(proxy + chunk_len - 1) != first_page) {
    auto t1 = proc.outgoing().Lookup(static_cast<std::uint32_t>(first_page + 1));
    if (!t1.ok()) return t1.status();
    if (t1.value().node != t0.value().node) {
      return PermissionDenied("chunk spans imports on different nodes");
    }
    pa1 = mem::PageAddr(t1.value().pfn);
  }
  *dst_node = t0.value().node;
  return std::make_pair(pa0, pa1);
}

sim::Task<Result<mem::Pfn>> VmmcLcp::TranslateSrc(lanai::NicCard& nic,
                                                  ProcState& proc,
                                                  mem::Vpn vpn) {
  const sim::Tick t0 = nic.simulator().now();
  for (int attempt = 0; attempt < 2; ++attempt) {
    co_await nic.cpu().Exec(params_.lanai.tlb_lookup);
    mem::Pfn pfn = 0;
    if (proc.tlb().Lookup(vpn, &pfn)) {
      obs_.translate_ns->Observe(
          static_cast<double>(nic.simulator().now() - t0));
      co_return pfn;
    }
    if (attempt == 1) break;
    // Miss: interrupt the host; the driver pins the pages and inserts up
    // to 32 translations (§4.5), then wakes us.
    ++stats_.tlb_miss_interrupts;
    obs_.tlb_miss_interrupts->Inc();
    auto miss_span = obs_.track >= 0
                         ? nic.simulator().tracer().Scope(obs_.track, "tlb_miss")
                         : obs::Tracer::Span();
    proc.pending_miss = vpn;
    proc.tlb_filled.Reset();
    co_await nic.cpu().Exec(params_.lanai.raise_interrupt);
    nic.RaiseHostInterrupt();
    co_await proc.tlb_filled.Wait();
  }
  // The driver could not translate: the source page is not mapped.
  obs_.translate_ns->Observe(static_cast<double>(nic.simulator().now() - t0));
  co_return Result<mem::Pfn>(NotFound("source page unmapped"));
}

sim::Process VmmcLcp::StartSend(lanai::NicCard& nic, ProcState& proc,
                                SendRequest req) {
  ++stats_.sends_processed;
  obs_.sends->Inc();
  if (req.len == 0 || req.len > params_.vmmc.max_send_bytes) {
    FinishRequest(proc, req.slot, SendStatus::kBadLength);
    co_return;
  }
  if (req.read != nullptr) {
    // One-sided read: a single control packet toward the serving node.
    const std::uint32_t dst_node = req.read->src_node;
    if (dst_node >= routes_.size()) {
      FinishRequest(proc, req.slot, SendStatus::kBadProxy);
      co_return;
    }
    ++stats_.rdma_read_requests;
    if (!reliable() || WindowOpen(dst_node)) {
      co_await SendReadRequest(nic, proc, req);
    } else {
      ++stats_.window_stalls;
      obs_.window_stalls->Inc();
      proc.active = ProcState::ActiveLongSend{std::move(req), 0, true, dst_node};
    }
    co_return;
  }
  if (req.direct != nullptr) {
    // One-sided write: rtag addressing, no proxy validation here — the
    // serving side's region table is the protection boundary. Any length
    // goes through the chunked path (the data is in user memory, not the
    // PIO-written queue entry).
    const std::uint32_t dst_node = req.direct->dst_node;
    if (dst_node >= routes_.size()) {
      FinishRequest(proc, req.slot, SendStatus::kBadProxy);
      co_return;
    }
    ++stats_.rdma_writes;
    obs_.rdma_writes->Inc();
    ++stats_.long_sends;
    proc.active = ProcState::ActiveLongSend{std::move(req), 0, true, dst_node};
    co_return;
  }
  // Resolve and validate the first chunk's destination now; the remaining
  // pages are validated chunk by chunk.
  std::uint32_t dst_node = 0;
  const std::uint32_t first_len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(req.len, kPageSize - ProxyOffset(req.proxy)));
  auto first_target = ResolveChunkTarget(proc, req.proxy, first_len, &dst_node);
  if (!first_target.ok()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    FinishRequest(proc, req.slot, SendStatus::kBadProxy);
    co_return;
  }
  if (dst_node >= routes_.size()) {
    FinishRequest(proc, req.slot, SendStatus::kBadProxy);
    co_return;
  }

  if (req.len <= params_.vmmc.short_send_max) {
    if (!reliable() || WindowOpen(dst_node)) {
      co_await HandleShortSend(nic, proc, req);
    } else {
      // Window to the destination is closed: park the short send as a
      // degenerate active send; SendOneChunk dispatches it once an ACK
      // reopens the window.
      ++stats_.window_stalls;
      obs_.window_stalls->Inc();
      proc.active = ProcState::ActiveLongSend{std::move(req), 0, true, dst_node};
    }
    co_return;
  }
  ++stats_.long_sends;
  proc.active = ProcState::ActiveLongSend{std::move(req), 0, true, dst_node};
}

sim::Process VmmcLcp::HandleShortSend(lanai::NicCard& nic, ProcState& proc,
                                      SendRequest& req) {
  ++stats_.short_sends;
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "short_send")
                  : obs::Tracer::Span();
  std::uint32_t dst_node = 0;
  auto target = ResolveChunkTarget(proc, req.proxy, req.len, &dst_node);
  assert(target.ok());  // validated by StartSend

  // The LANai copies the message data from the send queue into the network
  // buffer (§5.3).
  const sim::Tick words = (req.len + 3) / 4;
  co_await nic.cpu().Exec(params_.lanai.short_copy_base +
                          words * params_.lanai.short_copy_per_word +
                          params_.lanai.header_prep);

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagLastChunk |
            (req.notify ? ChunkHeader::kFlagNotify : 0);
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = req.len;
  h.chunk_len = req.len;
  h.dst_pa0 = target.value().first;
  h.dst_pa1 = target.value().second;
  if (reliable()) {
    h.flags |= ChunkHeader::kFlagReliable;
    h.dst_node = static_cast<std::uint16_t>(dst_node);
    h.seq = peer_tx_[dst_node].gbn.next_seq();
  }

  myrinet::Packet pkt;
  pkt.route = routes_[dst_node];
  pkt.payload = EncodeChunk(h, req.inline_data);
  if (reliable()) RecordSentPacket(nic, dst_node, pkt);

  // Hand the packet to the transmit engine first; the completion word is
  // correct either way (the data already lives in SRAM, PIO-copied by the
  // host) and keeping it off the wire's critical path saves latency.
  ++stats_.chunks_sent;
  stats_.bytes_sent += req.len;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(req.len);
  tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
  co_await nic.cpu().Exec(params_.lanai.completion_writeback);
  FinishRequest(proc, req.slot, SendStatus::kDone);
  co_return;
}

sim::Process VmmcLcp::SendOneChunk(lanai::NicCard& nic, ProcState& proc) {
  assert(proc.active.has_value());
  if (proc.active->req.read != nullptr) {
    // A read request parked on a closed window; the scheduler only
    // re-runs it once the window reopened.
    co_await SendReadRequest(nic, proc, proc.active->req);
    proc.active.reset();
    co_return;
  }
  if (proc.active->fin_stage) {
    // Data chunks of a direct send are out; emit the completion fin.
    const DirectSend& d = *proc.active->req.direct;
    co_await SendFinChunk(nic, proc.active->dst_node, d.fin_rtag,
                          d.fin_offset, d.fin_value);
    proc.active.reset();
    co_return;
  }
  if (proc.active->req.direct == nullptr &&
      proc.active->req.len <= params_.vmmc.short_send_max) {
    // A short send parked on a closed window (StartSend); the scheduler
    // only re-runs it once the window reopened.
    co_await HandleShortSend(nic, proc, proc.active->req);
    proc.active.reset();
    co_return;
  }
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "chunk")
                  : obs::Tracer::Span();
  ProcState::ActiveLongSend& as = *proc.active;
  const SendRequest& req = as.req;

  const mem::VirtAddr src = req.src_va + as.offset;
  const ProxyAddr dst = req.proxy + as.offset;
  // First chunk runs to the source page boundary (§4.5); after that the
  // source is page aligned and chunks are chunk_bytes (the page size by
  // default; smaller values exist for the chunk-size ablation).
  const std::uint64_t chunk_cap =
      std::min<std::uint64_t>(params_.vmmc.chunk_bytes,
                              kPageSize - mem::PageOffset(src));
  const std::uint32_t chunk_len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(req.len - as.offset, chunk_cap));
  const bool last = as.offset + chunk_len == req.len;

  // Tight sending loop vs main software state machine (§5.3): the tight
  // loop is used only while no incoming packets demand attention and this
  // is the only work source.
  const bool tight = params_.vmmc.tight_send_loop && nic.rx_queue().empty() &&
                     !nic.work_pending();
  co_await nic.cpu().Exec(params_.lanai.chunk_overhead +
                          (tight ? 0 : params_.lanai.main_loop_extra));
  if (tight) {
    ++stats_.tight_loop_chunks;
  } else {
    ++stats_.main_loop_chunks;
  }

  // Source translation through the per-process software TLB.
  auto pfn = co_await TranslateSrc(nic, proc, mem::PageNumber(src));
  if (!pfn.ok()) {
    FinishRequest(proc, req.slot, SendStatus::kBadAddress);
    proc.active.reset();
    co_return;
  }
  const mem::PhysAddr src_pa = mem::PageAddr(pfn.value()) + mem::PageOffset(src);

  // Destination for this chunk: rtag-encoded for direct sends (the
  // serving node translates and validates), proxy-resolved otherwise.
  std::uint32_t dst_node = 0;
  std::uint64_t pa0 = 0;
  std::uint64_t pa1 = 0;
  if (req.direct != nullptr) {
    dst_node = req.direct->dst_node;
    pa0 = ChunkHeader::PackRtag(req.direct->rtag,
                                req.direct->offset + as.offset);
  } else {
    auto target = ResolveChunkTarget(proc, dst, chunk_len, &dst_node);
    if (!target.ok()) {
      ++stats_.protection_violations;
      obs_.protection_violations->Inc();
      FinishRequest(proc, req.slot, SendStatus::kBadProxy);
      proc.active.reset();
      co_return;
    }
    pa0 = target.value().first;
    pa1 = target.value().second;
  }
  as.dst_node = dst_node;
  if (reliable() && !WindowOpen(dst_node)) {
    // A proxy region can span imports from different nodes, so a later
    // chunk may target a node whose window is closed even though the
    // scheduler admitted the send by its previous destination. Park; the
    // updated dst_node gates re-scheduling.
    ++stats_.window_stalls;
    obs_.window_stalls->Inc();
    co_return;
  }

  // Header preparation is overlapped with the previous chunk's host DMA
  // when precomputation is on (§4.5); the first header is always paid.
  if (as.first_chunk || !params_.vmmc.precompute_headers) {
    co_await nic.cpu().Exec(params_.lanai.header_prep);
  }
  as.first_chunk = false;

  // Stage the chunk: host memory -> LANai SRAM (pipelined with the
  // network DMA of previous chunks through the staging buffers).
  if (params_.vmmc.pipeline_dma) co_await staging_->Acquire();
  // Zero-copy: DMA the chunk bytes straight into the payload buffer, right
  // after where the wire header will be encoded. The bytes are written
  // here once and every later handoff (switch hops, retx-pool) shares them.
  auto payload =
      myrinet::Buffer::Uninitialized(ChunkHeader::kWireSize + chunk_len);
  const sim::Tick dma_t0 = nic.simulator().now();
  co_await nic.HostDmaRead(
      src_pa, std::span<std::uint8_t>(
                  payload.MutableData() + ChunkHeader::kWireSize, chunk_len));
  obs_.host_dma_ns->Observe(
      static_cast<double>(nic.simulator().now() - dma_t0));

  if (last) {
    // "When the last chunk of a long message is safely stored in the
    // LANai buffer, the LANai reports ... completion status back to user
    // space" (§4.5).
    co_await nic.cpu().Exec(params_.lanai.completion_writeback);
    FinishRequest(proc, req.slot, SendStatus::kDone);
  }

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = (last ? ChunkHeader::kFlagLastChunk : 0) |
            (req.notify ? ChunkHeader::kFlagNotify : 0) |
            (req.direct != nullptr ? ChunkHeader::kFlagRtag : 0);
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = req.len;
  h.chunk_len = chunk_len;
  h.dst_pa0 = pa0;
  h.dst_pa1 = pa1;
  if (reliable()) {
    h.flags |= ChunkHeader::kFlagReliable;
    h.dst_node = static_cast<std::uint16_t>(dst_node);
    h.seq = peer_tx_[dst_node].gbn.next_seq();
  }

  myrinet::Packet pkt;
  pkt.route = routes_[dst_node];
  EncodeHeaderInto(h, payload.MutableData());
  pkt.payload = std::move(payload);
  if (reliable()) RecordSentPacket(nic, dst_node, pkt);

  ++stats_.chunks_sent;
  stats_.bytes_sent += chunk_len;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(chunk_len);
  if (params_.vmmc.pipeline_dma) {
    tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/true});
  } else {
    co_await nic.NetSend(std::move(pkt));
  }
  as.offset += chunk_len;
  if (last) {
    if (req.direct != nullptr && req.direct->fin_rtag != 0) {
      as.fin_stage = true;  // the 4-byte fin chunk still has to go out
    } else {
      proc.active.reset();
    }
  }
}

// ---------------------------------------------------------------------------
// One-sided RDMA: read requests, read serving, completion fins
// ---------------------------------------------------------------------------

sim::Process VmmcLcp::SendReadRequest(lanai::NicCard& nic, ProcState& proc,
                                      SendRequest& req) {
  const ReadRequest& rr = *req.read;
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "read_req")
                  : obs::Tracer::Span();
  // A read request is a control short-send: header build plus a three-word
  // payload copy (the fin triple).
  co_await nic.cpu().Exec(params_.lanai.short_copy_base +
                          3 * params_.lanai.short_copy_per_word +
                          params_.lanai.header_prep);
  ChunkHeader h;
  h.type = PacketType::kRdmaRead;
  h.flags = ChunkHeader::kFlagRtag;
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = req.len;  // bytes to read
  h.chunk_len = 12;
  h.dst_pa0 = ChunkHeader::PackRtag(rr.dst_rtag, rr.dst_offset);
  h.dst_pa1 = ChunkHeader::PackRtag(rr.src_rtag, rr.src_offset);
  if (reliable()) {
    h.flags |= ChunkHeader::kFlagReliable;
    h.dst_node = static_cast<std::uint16_t>(rr.src_node);
    h.seq = peer_tx_[rr.src_node].gbn.next_seq();
  }
  std::uint8_t fin[12];
  for (int i = 0; i < 4; ++i) {
    fin[i] = static_cast<std::uint8_t>(rr.fin_rtag >> (8 * i));
    fin[4 + i] = static_cast<std::uint8_t>(rr.fin_offset >> (8 * i));
    fin[8 + i] = static_cast<std::uint8_t>(rr.fin_value >> (8 * i));
  }
  myrinet::Packet pkt;
  pkt.route = routes_[rr.src_node];
  pkt.payload = EncodeChunk(h, fin);
  if (reliable()) RecordSentPacket(nic, rr.src_node, pkt);
  ++stats_.chunks_sent;
  obs_.chunks_sent->Inc();
  tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
  // The request is on its way; the caller's completion word flips now and
  // the data's arrival is signalled by the fin word, not this slot.
  co_await nic.cpu().Exec(params_.lanai.completion_writeback);
  FinishRequest(proc, req.slot, SendStatus::kDone);
}

sim::Process VmmcLcp::SendFinChunk(lanai::NicCard& nic, std::uint32_t dst_node,
                                   std::uint32_t rtag, std::uint64_t offset,
                                   std::uint32_t value) {
  co_await nic.cpu().Exec(params_.lanai.header_prep +
                          params_.lanai.short_copy_base +
                          params_.lanai.short_copy_per_word);
  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagRtag | ChunkHeader::kFlagLastChunk;
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = 4;
  h.chunk_len = 4;
  h.dst_pa0 = ChunkHeader::PackRtag(rtag, offset);
  if (reliable()) {
    h.flags |= ChunkHeader::kFlagReliable;
    h.dst_node = static_cast<std::uint16_t>(dst_node);
    h.seq = peer_tx_[dst_node].gbn.next_seq();
  }
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  myrinet::Packet pkt;
  pkt.route = routes_[dst_node];
  pkt.payload = EncodeChunk(h, bytes);
  if (reliable()) RecordSentPacket(nic, dst_node, pkt);
  ++stats_.chunks_sent;
  ++stats_.rdma_fins_sent;
  stats_.bytes_sent += 4;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(4);
  tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
}

void VmmcLcp::HandleReadRequest(const ChunkHeader& h,
                                std::span<const std::uint8_t> data) {
  if (data.size() < 12 || h.msg_len == 0 ||
      h.msg_len > params_.vmmc.max_send_bytes ||
      h.src_node >= routes_.size()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    return;
  }
  auto u32 = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data[at + static_cast<std::size_t>(i)];
    return v;
  };
  ReadServe rs;
  rs.requester = h.src_node;
  rs.src_rtag = ChunkHeader::RtagOf(h.dst_pa1);
  rs.src_offset = ChunkHeader::RtagOffsetOf(h.dst_pa1);
  rs.dst_rtag = ChunkHeader::RtagOf(h.dst_pa0);
  rs.dst_offset = ChunkHeader::RtagOffsetOf(h.dst_pa0);
  rs.len = h.msg_len;
  rs.fin_rtag = u32(0);
  rs.fin_offset = u32(4);
  rs.fin_value = u32(8);
  ++stats_.rdma_reads_served;
  obs_.rdma_reads_served->Inc();
  read_serves_.push_back(std::move(rs));
}

sim::Process VmmcLcp::ServeReadChunk(lanai::NicCard& nic) {
  assert(!read_serves_.empty());
  ReadServe& rs = read_serves_.front();
  if (rs.fin_stage) {
    co_await SendFinChunk(nic, rs.requester, rs.fin_rtag, rs.fin_offset,
                          rs.fin_value);
    read_serves_.pop_front();
    co_return;
  }
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "read_serve")
                  : obs::Tracer::Span();
  // Serving a read is outgoing-chunk work driven by the main state
  // machine (it always competes with local sends and receive handling, so
  // there is no tight-loop discount), plus the region-table probe.
  co_await nic.cpu().Exec(params_.lanai.chunk_overhead +
                          params_.lanai.rtag_lookup);
  const std::uint32_t chunk_len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(rs.len - rs.offset, params_.vmmc.chunk_bytes));
  auto src = ResolveRtag(rs.src_rtag, rs.src_offset + rs.offset, chunk_len);
  if (!src.ok()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    if (rs.fin_rtag != 0) {
      // Tell the requester instead of leaving it spinning forever.
      rs.fin_value |= 0x8000'0000u;
      rs.fin_stage = true;
    } else {
      read_serves_.pop_front();
    }
    co_return;
  }
  const bool last = rs.offset + chunk_len == rs.len;
  if (params_.vmmc.pipeline_dma) co_await staging_->Acquire();
  auto payload =
      myrinet::Buffer::Uninitialized(ChunkHeader::kWireSize + chunk_len);
  const sim::Tick dma_t0 = nic.simulator().now();
  co_await nic.HostDmaRead(
      src.value().pa0,
      std::span<std::uint8_t>(payload.MutableData() + ChunkHeader::kWireSize,
                              src.value().seg0));
  if (src.value().pa1 != 0) {
    co_await nic.HostDmaRead(
        src.value().pa1,
        std::span<std::uint8_t>(payload.MutableData() +
                                    ChunkHeader::kWireSize + src.value().seg0,
                                chunk_len - src.value().seg0));
  }
  obs_.host_dma_ns->Observe(static_cast<double>(nic.simulator().now() - dma_t0));

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = ChunkHeader::kFlagRtag | (last ? ChunkHeader::kFlagLastChunk : 0);
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = rs.len;
  h.chunk_len = chunk_len;
  h.dst_pa0 = ChunkHeader::PackRtag(rs.dst_rtag, rs.dst_offset + rs.offset);
  if (reliable()) {
    h.flags |= ChunkHeader::kFlagReliable;
    h.dst_node = static_cast<std::uint16_t>(rs.requester);
    h.seq = peer_tx_[rs.requester].gbn.next_seq();
  }
  myrinet::Packet pkt;
  pkt.route = routes_[rs.requester];
  EncodeHeaderInto(h, payload.MutableData());
  pkt.payload = std::move(payload);
  if (reliable()) RecordSentPacket(nic, rs.requester, pkt);

  ++stats_.chunks_sent;
  stats_.bytes_sent += chunk_len;
  obs_.chunks_sent->Inc();
  obs_.bytes_sent->Inc(chunk_len);
  if (params_.vmmc.pipeline_dma) {
    tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/true});
  } else {
    co_await nic.NetSend(std::move(pkt));
  }
  rs.offset += chunk_len;
  if (last) {
    if (rs.fin_rtag != 0) {
      rs.fin_stage = true;
    } else {
      read_serves_.pop_front();
    }
  }
}

// ---------------------------------------------------------------------------
// Receive path
// ---------------------------------------------------------------------------

sim::Process VmmcLcp::HandleRecv(lanai::NicCard& nic, lanai::ReceivedPacket rp) {
  // ACKs take a slim dedicated path: no state-machine charge, and the work
  // token their arrival posted is retired here, so ACK traffic does not
  // knock an ongoing send out of the tight loop (§5.3) for the rest of the
  // message the way real incoming data does.
  if (rp.crc_ok && !rp.packet.payload.empty() &&
      rp.packet.payload[0] == static_cast<std::uint8_t>(PacketType::kAck)) {
    nic.TryConsumeWorkToken();
    co_await HandleAck(nic, std::move(rp));
    co_return;
  }
  auto span = obs_.track >= 0
                  ? nic.simulator().tracer().Scope(obs_.track, "recv")
                  : obs::Tracer::Span();
  // With traffic in both directions the receive work also runs through
  // the main software state machine instead of a dedicated drain loop
  // (§5.3): charge the state-machine overhead when send work is pending.
  bool mixed = false;
  for (const auto& p : procs_) {
    if (p->active.has_value() || !p->send_queue().empty()) {
      mixed = true;
      break;
    }
  }
  co_await nic.cpu().Exec(params_.lanai.recv_process +
                          (mixed ? params_.lanai.main_loop_extra : 0));
  if (!rp.crc_ok) {
    // Detected but not recovered (§4.2).
    ++stats_.crc_drops;
    obs_.crc_drops->Inc();
    co_return;
  }
  auto decoded = DecodeChunk(rp.packet.payload);
  if (!decoded.has_value()) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    co_return;
  }
  const ChunkHeader& h = decoded->header;
  if (h.type != PacketType::kData && h.type != PacketType::kRdmaRead) {
    co_return;  // mapping traffic: not ours
  }

  if (h.reliable()) {
    // A misrouted or corrupted-header delivery: never apply, never ACK —
    // acknowledging somebody else's sequence number would poison both
    // go-back-N channels.
    if (h.dst_node != static_cast<std::uint16_t>(nic.nic_id()) ||
        h.src_node >= peer_rx_.size()) {
      ++stats_.protection_violations;
      obs_.protection_violations->Inc();
      co_return;
    }
    PeerRx& rx = peer_rx_[h.src_node];
    switch (rx.gbn.OnData(h.seq)) {
      case GbnReceiver::Verdict::kAccept:
        break;
      case GbnReceiver::Verdict::kDuplicate:
        // Already delivered; the ACK that should have advanced the sender
        // was lost or is still in flight. Re-ACK immediately.
        ++stats_.duplicate_chunks;
        obs_.duplicate_chunks->Inc();
        co_await SendAck(nic, h.src_node);
        co_return;
      case GbnReceiver::Verdict::kOutOfOrder:
        // A gap upstream: discard and re-advertise what we still expect so
        // the sender goes back without waiting out its RTO.
        ++stats_.out_of_order_chunks;
        obs_.out_of_order_chunks->Inc();
        co_await SendAck(nic, h.src_node);
        co_return;
    }
    // Accepted: the sequence number is consumed even if the protection
    // checks below reject the chunk — retransmitting a chunk the importer
    // has revoked would retry forever.
    ++rx.unacked_data;
    if (rx.unacked_data >= params_.vmmc.reliability.ack_every) {
      co_await SendAck(nic, h.src_node);
    } else if (rx.unacked_data == 1) {
      ++rx.ack_gen;
      nic.simulator().Spawn(DelayedAck(nic, h.src_node, rx.ack_gen));
    }
  }

  // One-sided read request: queue it for the serving loop (the GBN checks
  // above already guaranteed in-order exactly-once admission).
  if (h.type == PacketType::kRdmaRead) {
    HandleReadRequest(h, decoded->data);
    co_return;
  }

  // rtag-addressed chunks resolve against the registered-region table
  // before the page-table checks; a miss or an out-of-bounds offset is a
  // protection violation like any other.
  std::uint64_t pa0 = h.dst_pa0;
  std::uint64_t pa1 = h.dst_pa1;
  std::uint32_t seg0 = h.ScatterLen0();
  if (h.rtag_addressed()) {
    co_await nic.cpu().Exec(params_.lanai.rtag_lookup);
    auto t = ResolveRtag(ChunkHeader::RtagOf(h.dst_pa0),
                         ChunkHeader::RtagOffsetOf(h.dst_pa0), h.chunk_len);
    if (!t.ok()) {
      ++stats_.protection_violations;
      obs_.protection_violations->Inc();
      co_return;
    }
    pa0 = t.value().pa0;
    pa1 = t.value().pa1;
    seg0 = t.value().seg0;
  }

  // Check the incoming page table before any DMA touches host memory: a
  // frame may be written only if its export enabled reception (§4.4).
  const IncomingEntry* e0 = incoming_->Find(mem::PageNumber(pa0));
  if (e0 == nullptr || !e0->recv_enabled) {
    ++stats_.protection_violations;
    obs_.protection_violations->Inc();
    co_return;
  }
  const IncomingEntry* e1 = nullptr;
  if (pa1 != 0 && seg0 < h.chunk_len) {
    e1 = incoming_->Find(mem::PageNumber(pa1));
    if (e1 == nullptr || !e1->recv_enabled) {
      ++stats_.protection_violations;
      obs_.protection_violations->Inc();
      co_return;
    }
  }

  // Two-piece scatter into pinned receive-buffer frames (§4.5). No host
  // CPU copy: this is the zero-copy receive path.
  co_await nic.HostDmaWrite(pa0, decoded->data.subspan(0, seg0));
  if (e1 != nullptr) {
    co_await nic.HostDmaWrite(pa1, decoded->data.subspan(seg0));
  }
  ++stats_.chunks_received;
  stats_.bytes_received += h.chunk_len;
  obs_.chunks_received->Inc();
  obs_.bytes_received->Inc(h.chunk_len);

  // Notification: only on the last chunk, only if the sender asked and the
  // export allows it (§2, §4.4).
  if (h.last_chunk() && h.notify() && e0->notify) {
    ++stats_.notifications_raised;
    obs_.notifications->Inc();
    notifications_.push_back(
        PendingNotification{e0->owner_pid, e0->export_id, h.msg_len});
    co_await nic.cpu().Exec(params_.lanai.raise_interrupt);
    nic.RaiseHostInterrupt();
  }
}

// ---------------------------------------------------------------------------
// Reliability layer: go-back-N over the lossy fabric (see DESIGN.md).
//
// Every reliable data packet carries a per-{src,dst} sequence number and a
// copy lives in the SRAM retransmit pool until the destination's cumulative
// ACK covers it. Loss is repaired three ways: the receiver re-ACKs on
// duplicates and gaps, the fabric's drop notice triggers a fast window
// resend, and a per-destination RTO timer (exponential backoff) catches
// everything else, including lost ACKs.
// ---------------------------------------------------------------------------

bool VmmcLcp::WindowOpen(std::uint32_t dst_node) const {
  // Invalid destinations are rejected by the send path itself.
  if (dst_node >= peer_tx_.size()) return true;
  return peer_tx_[dst_node].gbn.can_send() &&
         retx_in_use_ < params_.vmmc.reliability.retx_pool_entries;
}

void VmmcLcp::RecordSentPacket(lanai::NicCard& nic, std::uint32_t dst_node,
                               const myrinet::Packet& packet) {
  PeerTx& tx = peer_tx_[dst_node];
  const bool first_unacked = !tx.gbn.has_unacked();
  const std::uint32_t seq = tx.gbn.OnSend();
  tx.unacked.push_back(RetxSlot{packet, seq});
  ++retx_in_use_;
  obs_.retx_in_use->Set(nic.simulator().now(),
                        static_cast<double>(retx_in_use_));
  if (first_unacked) {
    tx.cur_rto = params_.vmmc.reliability.rto;
    ArmRtoTimer(nic, dst_node);
  }
}

sim::Process VmmcLcp::HandleAck(lanai::NicCard& nic, lanai::ReceivedPacket rp) {
  co_await nic.cpu().Exec(params_.vmmc.reliability.ack_process);
  auto decoded = DecodeChunk(rp.packet.payload);
  if (!decoded.has_value()) co_return;
  const ChunkHeader& h = decoded->header;
  // src_node is the acking receiver; h.seq is the next sequence number it
  // expects from us.
  if (h.type != PacketType::kAck ||
      h.dst_node != static_cast<std::uint16_t>(nic.nic_id()) ||
      h.src_node >= peer_tx_.size()) {
    co_return;
  }
  ++stats_.acks_received;
  obs_.acks_received->Inc();
  PeerTx& tx = peer_tx_[h.src_node];
  const std::uint32_t newly = tx.gbn.OnAck(h.seq);
  if (newly == 0) co_return;
  for (std::uint32_t i = 0; i < newly && !tx.unacked.empty(); ++i) {
    tx.unacked.pop_front();
  }
  retx_in_use_ -= std::min(newly, retx_in_use_);
  obs_.retx_in_use->Set(nic.simulator().now(),
                        static_cast<double>(retx_in_use_));
  // Progress: the backoff resets and the timer restarts from now; a fully
  // drained window needs no timer at all.
  tx.cur_rto = params_.vmmc.reliability.rto;
  if (tx.gbn.has_unacked()) {
    ArmRtoTimer(nic, h.src_node);
  } else {
    ++tx.timer_gen;  // cancel the armed timer
  }
}

sim::Process VmmcLcp::SendAck(lanai::NicCard& nic, std::uint32_t src_node) {
  PeerRx& rx = peer_rx_[src_node];
  rx.unacked_data = 0;
  ++rx.ack_gen;  // cancels a delayed ACK in flight
  co_await nic.cpu().Exec(params_.vmmc.reliability.ack_send);
  ChunkHeader h;
  h.type = PacketType::kAck;
  h.flags = ChunkHeader::kFlagReliable;
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.dst_node = static_cast<std::uint16_t>(src_node);
  h.seq = rx.gbn.CumAck();
  myrinet::Packet pkt;
  pkt.route = routes_[src_node];
  pkt.payload = EncodeChunk(h, {});
  ++stats_.acks_sent;
  obs_.acks_sent->Inc();
  tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
}

sim::Process VmmcLcp::DelayedAck(lanai::NicCard& nic, std::uint32_t src_node,
                                 std::uint64_t gen) {
  co_await nic.simulator().Delay(params_.vmmc.reliability.ack_delay);
  if (!running_) co_return;
  PeerRx& rx = peer_rx_[src_node];
  if (rx.ack_gen != gen || rx.unacked_data == 0) co_return;
  co_await SendAck(nic, src_node);
}

sim::Process VmmcLcp::RetransmitWindow(lanai::NicCard& nic,
                                      std::uint32_t dst_node) {
  PeerTx& tx = peer_tx_[dst_node];
  if (tx.unacked.empty()) co_return;
  // Snapshot first: an ACK landing during the Exec below pops the deque.
  std::vector<myrinet::Packet> resend;
  resend.reserve(tx.unacked.size());
  for (const RetxSlot& slot : tx.unacked) resend.push_back(slot.packet);
  co_await nic.cpu().Exec(params_.lanai.header_prep *
                          static_cast<sim::Tick>(resend.size()));
  for (myrinet::Packet& pkt : resend) {
    ++stats_.retransmits;
    obs_.retransmits->Inc();
    tx_box_->Put(TxItem{std::move(pkt), /*release_staging=*/false});
  }
}

sim::Process VmmcLcp::RtoTimer(lanai::NicCard& nic, std::uint32_t dst_node,
                               std::uint64_t gen) {
  co_await nic.simulator().Delay(peer_tx_[dst_node].cur_rto);
  if (!running_) co_return;
  PeerTx& tx = peer_tx_[dst_node];
  if (tx.timer_gen != gen || !tx.gbn.has_unacked()) co_return;
  ++stats_.retransmit_timeouts;
  obs_.retransmit_timeouts->Inc();
  tx.cur_rto =
      std::min<sim::Tick>(tx.cur_rto * 2, params_.vmmc.reliability.rto_max);
  co_await RetransmitWindow(nic, dst_node);
  ArmRtoTimer(nic, dst_node);
}

sim::Process VmmcLcp::FastRetransmit(lanai::NicCard& nic,
                                     std::uint32_t dst_node) {
  PeerTx& tx = peer_tx_[dst_node];
  tx.fast_retx_pending = false;
  if (!tx.gbn.has_unacked()) co_return;
  co_await RetransmitWindow(nic, dst_node);
  ArmRtoTimer(nic, dst_node);
}

// Arming always supersedes: the generation bump kills every older timer,
// so exactly one RTO timer per destination is ever live.
void VmmcLcp::ArmRtoTimer(lanai::NicCard& nic, std::uint32_t dst_node) {
  PeerTx& tx = peer_tx_[dst_node];
  ++tx.timer_gen;
  nic.simulator().Spawn(RtoTimer(nic, dst_node, tx.timer_gen));
}

void VmmcLcp::OnDropNotice(const myrinet::Packet& packet) {
  ++stats_.drop_notices;
  obs_.drop_notices->Inc();
  if (!running_ || !reliable() || nic_ == nullptr) return;
  auto decoded = DecodeChunk(packet.payload);
  if (!decoded.has_value()) return;
  const ChunkHeader& h = decoded->header;
  // Dropped ACKs are left to the receiver's re-ACK-on-duplicate path.
  if ((h.type != PacketType::kData && h.type != PacketType::kRdmaRead) ||
      !h.reliable()) {
    return;
  }
  if (h.src_node != static_cast<std::uint16_t>(nic_->nic_id())) return;
  const std::uint32_t dst = h.dst_node;
  if (dst >= peer_tx_.size()) return;
  PeerTx& tx = peer_tx_[dst];
  // React only to a drop of something still unacked, and coalesce bursts:
  // one fast resend covers the whole window.
  if (!tx.gbn.has_unacked() || tx.fast_retx_pending) return;
  if (SeqBefore(h.seq, tx.gbn.base()) || !SeqBefore(h.seq, tx.gbn.next_seq())) {
    return;
  }
  tx.fast_retx_pending = true;
  nic_->simulator().Spawn(FastRetransmit(*nic_, dst));
}

}  // namespace vmmc::vmmc_core
