#include "vmmc/vmmc/daemon.h"

#include <cassert>
#include <cstring>

#include "vmmc/util/log.h"

namespace vmmc::vmmc_core {

namespace {

constexpr std::uint8_t kImportReq = 1;
constexpr std::uint8_t kImportResp = 2;
constexpr std::uint16_t kReplyPort = 701;

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  bool ok() const { return ok_; }
  std::uint8_t U8() { return Fits(1) ? buf_[pos_++] : Fail(); }
  std::uint32_t U32() {
    if (!Fits(4)) return Fail();
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | buf_[pos_ + static_cast<size_t>(i)];
    pos_ += 4;
    return v;
  }
  std::uint64_t U64() {
    if (!Fits(8)) return static_cast<std::uint64_t>(Fail());
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | buf_[pos_ + static_cast<size_t>(i)];
    pos_ += 8;
    return v;
  }
  std::string Str(std::size_t n) {
    if (!Fits(n)) {
      Fail();
      return {};
    }
    std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return s;
  }

 private:
  bool Fits(std::size_t n) const { return ok_ && pos_ + n <= buf_.size(); }
  std::uint8_t Fail() {
    ok_ = false;
    return 0;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

Status VmmcDaemon::Start(VmmcLcp* lcp) {
  lcp_ = lcp;
  auto server = eth_.Bind(kPort);
  if (!server.ok()) return server.status();
  server_box_ = server.value();
  auto reply = eth_.Bind(kReplyPort);
  if (!reply.ok()) return reply.status();
  reply_box_ = reply.value();
  reply_port_ = kReplyPort;
  kernel_.simulator().Spawn(ServerLoop());
  return OkStatus();
}

sim::Process VmmcDaemon::ServerLoop() {
  // Two sources (requests from peers, replies to our own requests); a
  // helper forwards replies so a single loop can serve both.
  struct Forwarder {
    static sim::Process Run(VmmcDaemon& d) {
      for (;;) {
        ethernet::Datagram dgram = co_await d.reply_box_->Get();
        Reader r(dgram.payload);
        const std::uint8_t type = r.U8();
        const std::uint32_t tag = r.U32();
        if (!r.ok() || type != kImportResp) continue;
        auto it = d.pending_imports_.find(tag);
        if (it == d.pending_imports_.end()) continue;
        ImportReply& reply = it->second.reply;
        const std::uint8_t code = r.U8();
        reply.len = r.U32();
        reply.notify = r.U8() != 0;
        reply.rtag = r.U32();
        const std::uint32_t nframes = r.U32();
        for (std::uint32_t i = 0; r.ok() && i < nframes; ++i) {
          reply.frames.push_back(r.U64());
        }
        if (!r.ok()) {
          reply.status = InternalError("malformed import reply");
        } else if (code != 0) {
          reply.status = Status(static_cast<ErrorCode>(code), "import refused");
        }
        it->second.done->Set();
      }
    }
  };
  kernel_.simulator().Spawn(Forwarder::Run(*this));

  for (;;) {
    ethernet::Datagram dgram = co_await server_box_->Get();
    co_await HandleRequest(std::move(dgram));
  }
}

VmmcDaemon::ImportReply VmmcDaemon::LookupForImport(const std::string& name,
                                                    int importer_node,
                                                    int importer_pid) {
  ImportReply reply;
  auto it = exports_.find(name);
  if (it == exports_.end()) {
    reply.status = NotFound("no export named '" + name + "'");
    ++imports_rejected_;
    return reply;
  }
  const ExportRecord& rec = it->second;
  if (!rec.acl.Permits(importer_node, importer_pid)) {
    reply.status = PermissionDenied("export ACL refuses this importer");
    ++imports_rejected_;
    return reply;
  }
  reply.len = rec.len;
  reply.notify = rec.notify;
  reply.rtag = rec.rtag;
  reply.frames = rec.frames;
  ++imports_matched_;
  return reply;
}

sim::Process VmmcDaemon::HandleRequest(ethernet::Datagram dgram) {
  co_await kernel_.simulator().Delay(20'000);  // daemon wake-up + parsing
  Reader r(dgram.payload);
  const std::uint8_t type = r.U8();
  const std::uint32_t tag = r.U32();
  const int importer_pid = static_cast<std::int32_t>(r.U32());
  const std::uint32_t name_len = r.U32();
  const std::string name = r.Str(name_len);
  if (!r.ok() || type != kImportReq) co_return;

  ImportReply reply = LookupForImport(name, dgram.src_node, importer_pid);

  // vmmc-lint: allow(raw-buffer): control-plane import/export handshake
  // over Ethernet, not the per-transfer hot path
  std::vector<std::uint8_t> out;
  out.push_back(kImportResp);
  PutU32(out, tag);
  out.push_back(static_cast<std::uint8_t>(reply.status.code()));
  PutU32(out, reply.len);
  out.push_back(reply.notify ? 1 : 0);
  PutU32(out, reply.rtag);
  PutU32(out, static_cast<std::uint32_t>(reply.frames.size()));
  for (mem::Pfn f : reply.frames) PutU64(out, f);
  co_await eth_.SendTo(dgram.src_node, dgram.src_port, kPort, std::move(out));
}

sim::Task<Result<ExportId>> VmmcDaemon::Export(host::UserProcess& proc,
                                               mem::VirtAddr va,
                                               std::uint32_t len,
                                               ExportOptions options) {
  // User -> daemon IPC plus the daemon's work.
  co_await kernel_.simulator().Delay(params_.host.syscall + 30'000);

  if (lcp_ == nullptr) co_return Result<ExportId>(FailedPrecondition("daemon not started"));
  if (len == 0) co_return Result<ExportId>(InvalidArgument("empty export"));
  if (mem::PageOffset(va) != 0) {
    co_return Result<ExportId>(
        InvalidArgument("receive buffers must be page aligned"));
  }
  if (options.name.empty()) co_return Result<ExportId>(InvalidArgument("export needs a name"));
  if (exports_.contains(options.name)) {
    co_return Result<ExportId>(AlreadyExists("export name in use on this node"));
  }

  // Lock the receive buffer pages in main memory (§4.4).
  Status pin = kernel_.PinUserPages(proc, va, len);
  if (!pin.ok()) co_return Result<ExportId>(pin);

  ExportRecord rec;
  rec.id = next_export_id_++;
  rec.pid = proc.pid();
  rec.name = options.name;
  rec.va = va;
  rec.len = len;
  rec.notify = options.notify;
  rec.acl = std::move(options.acl);

  // Enable each frame in the incoming page table.
  const std::uint64_t pages = mem::PagesSpanned(va, len);
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto pa = proc.address_space().Translate(va + i * mem::kPageSize);
    assert(pa.ok());
    const mem::Pfn pfn = mem::PageNumber(pa.value());
    Status s = lcp_->incoming().Enable(pfn, rec.notify, rec.pid, rec.id);
    if (!s.ok()) {
      for (mem::Pfn done : rec.frames) (void)lcp_->incoming().Disable(done);
      (void)kernel_.UnpinUserPages(proc, va, len);
      co_return Result<ExportId>(s);
    }
    rec.frames.push_back(pfn);
  }

  // Publish the export as a registered receive region so one-sided
  // operations can target it by rtag as well.
  auto rtag = lcp_->CreateRecvRegion(rec.pid, 0, rec.len, rec.frames);
  if (!rtag.ok()) {
    for (mem::Pfn done : rec.frames) (void)lcp_->incoming().Disable(done);
    (void)kernel_.UnpinUserPages(proc, va, len);
    co_return Result<ExportId>(rtag.status());
  }
  rec.rtag = rtag.value();

  ++exports_served_;
  const ExportId id = rec.id;
  std::string key = rec.name;
  exports_.emplace(std::move(key), std::move(rec));
  co_return id;
}

sim::Task<Status> VmmcDaemon::Unexport(host::UserProcess& proc, ExportId id) {
  co_await kernel_.simulator().Delay(params_.host.syscall + 10'000);
  // vmmc-lint: allow(unordered-iter): unique-id lookup — at most one entry
  // matches and the scan has no side effects on non-matches
  for (auto it = exports_.begin(); it != exports_.end(); ++it) {
    if (it->second.id != id) continue;
    if (it->second.pid != proc.pid()) {
      co_return PermissionDenied("export owned by another process");
    }
    if (it->second.rtag != 0) (void)lcp_->ReleaseRecvRegion(it->second.rtag);
    for (mem::Pfn pfn : it->second.frames) (void)lcp_->incoming().Disable(pfn);
    (void)kernel_.UnpinUserPages(proc, it->second.va, it->second.len);
    exports_.erase(it);
    co_return OkStatus();
  }
  co_return NotFound("no such export id");
}

sim::Task<Result<ImportedBuffer>> VmmcDaemon::Import(ProcState& state,
                                                     int remote_node,
                                                     const std::string& name) {
  co_await kernel_.simulator().Delay(params_.host.syscall + 30'000);
  if (lcp_ == nullptr) {
    co_return Result<ImportedBuffer>(FailedPrecondition("daemon not started"));
  }

  ImportReply reply;
  if (remote_node == node_id_) {
    // Local export: no Ethernet round trip needed.
    reply = LookupForImport(name, node_id_, state.pid());
  } else {
    const std::uint32_t tag = next_tag_++;
    // vmmc-lint: allow(raw-buffer): control-plane import request over
    // Ethernet, not the per-transfer hot path
    std::vector<std::uint8_t> req;
    req.push_back(kImportReq);
    PutU32(req, tag);
    PutU32(req, static_cast<std::uint32_t>(state.pid()));
    PutU32(req, static_cast<std::uint32_t>(name.size()));
    req.insert(req.end(), name.begin(), name.end());

    PendingImport& pending = pending_imports_[tag];
    pending.done = std::make_unique<sim::Event>(kernel_.simulator());
    co_await eth_.SendTo(remote_node, kPort, reply_port_, std::move(req));
    co_await pending.done->Wait();
    reply = std::move(pending_imports_.at(tag).reply);
    pending_imports_.erase(tag);
  }

  if (!reply.status.ok()) co_return Result<ImportedBuffer>(reply.status);

  // Set up outgoing page table entries pointing at the receive buffer
  // pages on the remote node (§4.4).
  const auto pages = static_cast<std::uint32_t>(reply.frames.size());
  auto base = state.outgoing().AllocateRun(pages);
  if (!base.ok()) co_return Result<ImportedBuffer>(base.status());
  for (std::uint32_t i = 0; i < pages; ++i) {
    Status s = state.outgoing().Set(base.value() + i,
                                    static_cast<std::uint32_t>(remote_node),
                                    reply.frames[i]);
    if (!s.ok()) {
      for (std::uint32_t j = 0; j < i; ++j) {
        (void)state.outgoing().Clear(base.value() + j);
      }
      co_return Result<ImportedBuffer>(s);
    }
  }

  ImportedBuffer out;
  out.proxy_base = MakeProxyAddr(base.value(), 0);
  out.len = reply.len;
  out.remote_node = remote_node;
  out.rtag = reply.rtag;
  co_return out;
}

sim::Task<Status> VmmcDaemon::Unimport(ProcState& state,
                                       const ImportedBuffer& buffer) {
  co_await kernel_.simulator().Delay(params_.host.syscall + 10'000);
  const std::uint64_t pages = mem::PagesSpanned(buffer.proxy_base, buffer.len);
  for (std::uint64_t i = 0; i < pages; ++i) {
    Status s = state.outgoing().Clear(
        static_cast<std::uint32_t>(ProxyPage(buffer.proxy_base) + i));
    if (!s.ok()) co_return s;
  }
  co_return OkStatus();
}

}  // namespace vmmc::vmmc_core
