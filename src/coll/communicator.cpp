#include "vmmc/coll/communicator.h"

#include <algorithm>
#include <cassert>

namespace vmmc::coll {

namespace {

std::vector<std::uint8_t> Pack(std::span<const std::int64_t> v) {
  std::vector<std::uint8_t> bytes(v.size() * 8);
  for (std::size_t i = 0; i < v.size(); ++i) {
    const auto x = static_cast<std::uint64_t>(v[i]);
    for (int b = 0; b < 8; ++b) {
      bytes[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(x >> (8 * b));
    }
  }
  return bytes;
}

void Unpack(std::span<const std::uint8_t> bytes, std::vector<std::int64_t>& v) {
  v.resize(bytes.size() / 8);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::uint64_t x = 0;
    for (int b = 7; b >= 0; --b) {
      x = (x << 8) | bytes[i * 8 + static_cast<std::size_t>(b)];
    }
    v[i] = static_cast<std::int64_t>(x);
  }
}

}  // namespace

sim::Task<Result<std::unique_ptr<Communicator>>> Communicator::Create(
    vmmc_core::Cluster& cluster, int rank, int size, std::string tag,
    Options options) {
  using Out = Result<std::unique_ptr<Communicator>>;
  if (size < 1 || rank < 0 || rank >= size || size > cluster.num_nodes()) {
    co_return Out(InvalidArgument("bad rank/size"));
  }
  std::unique_ptr<Communicator> comm(
      new Communicator(cluster, rank, size, std::move(tag)));
  comm->options_ = options;
  auto ep = cluster.OpenEndpoint(rank, comm->tag_ + "-rank" + std::to_string(rank));
  if (!ep.ok()) co_return Out(ep.status());
  comm->ep_ = std::move(ep).value();
  if (!options.lazy_links) {
    for (int peer = 0; peer < size; ++peer) {
      if (peer == rank) continue;
      Status s = co_await comm->SetupLink(peer);
      if (!s.ok()) co_return Out(s);
    }
  }
  co_return std::move(comm);
}

sim::Task<Status> Communicator::EnsureLink(int peer) {
  if (peer < 0 || peer >= size_ || peer == rank_) {
    co_return InvalidArgument("no link to that rank");
  }
  if (channels_.find(peer) != channels_.end()) co_return OkStatus();
  if (!options_.lazy_links) co_return InvalidArgument("no link to that rank");
  co_return co_await SetupLink(peer);
}

sim::Process Communicator::EnsureOne(Communicator* self, int peer,
                                     int* pending, Status* first_error) {
  Status s = co_await self->EnsureLink(peer);
  if (!s.ok() && first_error->ok()) *first_error = s;
  --*pending;
}

sim::Task<Status> Communicator::EnsureLinks(int a, int b) {
  sim::Simulator& sim = cluster_.node_sim(rank_);
  int pending = 0;
  Status first_error = OkStatus();
  const int peers[2] = {a, a == b ? rank_ : b};  // rank_ entries are skipped
  for (int peer : peers) {
    if (peer == rank_) continue;
    if (peer < 0 || peer >= size_) co_return InvalidArgument("bad rank");
    ++pending;
    sim.Spawn(EnsureOne(this, peer, &pending, &first_error));
  }
  while (pending > 0) co_await sim.Delay(500);
  co_return first_error;
}

sim::Task<Status> Communicator::SetupLink(int peer) {
  auto ch = co_await vmmc_core::P2pChannel::Create(
      *ep_, peer, tag_, cluster_.params().vmmc.p2p);
  if (!ch.ok()) co_return ch.status();
  channels_.emplace(peer, std::move(ch).value());
  co_return OkStatus();
}

sim::Task<Status> Communicator::SendTo(int peer, std::span<const std::uint8_t> data) {
  if (data.size() > kMaxMessage) co_return InvalidArgument("message too large");
  Status ready = co_await EnsureLink(peer);
  if (!ready.ok()) co_return ready;
  co_return co_await channels_.find(peer)->second->Send(data);
}

sim::Task<Result<std::vector<std::uint8_t>>> Communicator::RecvFrom(int peer) {
  using Out = Result<std::vector<std::uint8_t>>;
  Status ready = co_await EnsureLink(peer);
  if (!ready.ok()) co_return Out(ready);
  co_return co_await channels_.find(peer)->second->Recv();
}

vmmc_core::P2pChannel::Stats Communicator::p2p_stats() const {
  vmmc_core::P2pChannel::Stats total;
  for (const auto& [peer, ch] : channels_) {
    const auto& s = ch->stats();
    total.eager_sends += s.eager_sends;
    total.rendezvous_sends += s.rendezvous_sends;
    total.eager_recvs += s.eager_recvs;
    total.rendezvous_recvs += s.rendezvous_recvs;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  return total;
}

sim::Task<Status> Communicator::Barrier() {
  // Dissemination barrier: ceil(log2 size) rounds; in round r, rank sends
  // to (rank + 2^r) and waits for (rank - 2^r).
  for (int hop = 1; hop < size_; hop <<= 1) {
    const int to = (rank_ + hop) % size_;
    const int from = (rank_ - hop % size_ + size_) % size_;
    if (to == rank_) continue;
    // Round partners form a cycle across ranks; see EnsureLinks.
    Status e = co_await EnsureLinks(to, from);
    if (!e.ok()) co_return e;
    Status s = co_await SendTo(to, {});
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(from);
    if (!r.ok()) co_return r.status();
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::Broadcast(int root, std::vector<std::uint8_t>& data) {
  if (root < 0 || root >= size_) co_return InvalidArgument("bad root");
  // Length first (small broadcast), then the payload in kMaxMessage pieces
  // — both along a binomial tree over virtual ranks.
  const int vrank = (rank_ - root + size_) % size_;

  // By-value captures: the coroutine frame must not hold references into
  // this scope across its suspension points (vmmc-lint R5).
  auto tree_exchange =
      [this, vrank, root](std::vector<std::uint8_t>& payload) -> sim::Task<Status> {
    int mask = 1;
    // Receive phase: find my parent.
    while (mask < size_) {
      if (vrank & mask) {
        const int vsrc = vrank - mask;
        const int src = (vsrc + root) % size_;
        auto r = co_await RecvFrom(src);
        if (!r.ok()) co_return r.status();
        payload = std::move(r).value();
        break;
      }
      mask <<= 1;
    }
    // Send phase: forward to my children.
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < size_) {
        const int vdst = vrank + mask;
        const int dst = (vdst + root) % size_;
        Status s = co_await SendTo(dst, payload);
        if (!s.ok()) co_return s;
      }
      mask >>= 1;
    }
    co_return OkStatus();
  };

  // Piece 0 carries the total length as a 4-byte prefix.
  std::uint64_t total = (rank_ == root) ? data.size() : 0;
  std::vector<std::uint8_t> head;
  if (rank_ == root) {
    head.resize(4);
    for (int i = 0; i < 4; ++i) {
      head[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::uint32_t>(total) >> (8 * i));
    }
  }
  Status s = co_await tree_exchange(head);
  if (!s.ok()) co_return s;
  if (rank_ != root) {
    if (head.size() != 4) co_return InternalError("broadcast header lost");
    total = std::uint32_t{head[0]} | (std::uint32_t{head[1]} << 8) |
            (std::uint32_t{head[2]} << 16) | (std::uint32_t{head[3]} << 24);
    data.resize(total);
  }

  for (std::uint64_t off = 0; off < total; off += kMaxMessage) {
    const std::uint64_t n = std::min<std::uint64_t>(kMaxMessage, total - off);
    std::vector<std::uint8_t> piece;
    if (rank_ == root) {
      piece.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                   data.begin() + static_cast<std::ptrdiff_t>(off + n));
    }
    Status ps = co_await tree_exchange(piece);
    if (!ps.ok()) co_return ps;
    if (rank_ != root) {
      if (piece.size() != n) co_return InternalError("broadcast piece lost");
      std::copy(piece.begin(), piece.end(),
                data.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::Gather(int root, std::span<const std::uint8_t> mine,
                                       std::vector<std::uint8_t>* all) {
  if (root < 0 || root >= size_) co_return InvalidArgument("bad root");
  if (mine.size() > kMaxMessage) co_return InvalidArgument("contribution too large");
  if (rank_ == root) {
    if (all == nullptr) co_return InvalidArgument("root needs an output buffer");
    all->clear();
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) {
        all->insert(all->end(), mine.begin(), mine.end());
      } else {
        auto piece = co_await RecvFrom(r);
        if (!piece.ok()) co_return piece.status();
        all->insert(all->end(), piece.value().begin(), piece.value().end());
      }
    }
  } else {
    Status s = co_await SendTo(root, mine);
    if (!s.ok()) co_return s;
  }
  ++operations_;
  co_return OkStatus();
}

Communicator::AllReduceAlgo Communicator::SelectAllReduce(std::size_t n) const {
  if (size_ == 1) return AllReduceAlgo::kSingle;
  const std::uint64_t bytes = static_cast<std::uint64_t>(n) * 8;
  // One eager message or less: latency-bound, log-round algorithms.
  if (bytes <= cluster_.params().vmmc.p2p.eager_max) {
    const bool pow2 = (size_ & (size_ - 1)) == 0;
    return pow2 ? AllReduceAlgo::kRecursiveDoubling : AllReduceAlgo::kBinomialTree;
  }
  // Bandwidth-bound: ring moves 2(N-1)/N of the vector per rank, but
  // needs equal chunks that fit a message.
  const bool ring_eligible =
      n % static_cast<std::size_t>(size_) == 0 &&
      (n / static_cast<std::size_t>(size_)) * 8 <= kMaxMessage;
  return ring_eligible ? AllReduceAlgo::kRing : AllReduceAlgo::kGatherBroadcast;
}

sim::Task<Status> Communicator::AllReduceSum(std::vector<std::int64_t>& values) {
  switch (SelectAllReduce(values.size())) {
    case AllReduceAlgo::kSingle:
      ++operations_;
      co_return OkStatus();
    case AllReduceAlgo::kRecursiveDoubling:
      co_return co_await AllReduceRecursiveDoubling(values);
    case AllReduceAlgo::kBinomialTree:
      co_return co_await AllReduceBinomial(values);
    case AllReduceAlgo::kRing:
      co_return co_await AllReduceRing(values);
    case AllReduceAlgo::kGatherBroadcast:
      co_return co_await AllReduceGatherBroadcast(values);
  }
  co_return InternalError("unreachable");
}

sim::Task<Status> Communicator::AllReduceRecursiveDoubling(
    std::vector<std::int64_t>& values) {
  // log2(N) rounds; in round r, partners rank^2^r exchange full vectors
  // and both add. Partners pair up (no cycle), so lazy channel setup is
  // safe without EnsureLinks.
  std::vector<std::int64_t> incoming;
  for (int mask = 1; mask < size_; mask <<= 1) {
    const int partner = rank_ ^ mask;
    Status s = co_await SendTo(partner, Pack(values));
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(partner);
    if (!r.ok()) co_return r.status();
    Unpack(r.value(), incoming);
    if (incoming.size() != values.size()) {
      co_return InternalError("allreduce exchange size mismatch");
    }
    for (std::size_t i = 0; i < values.size(); ++i) values[i] += incoming[i];
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::AllReduceBinomial(
    std::vector<std::int64_t>& values) {
  // Binomial-tree reduction to rank 0 (works for any world size), then a
  // binomial broadcast of the result.
  std::vector<std::int64_t> incoming;
  for (int mask = 1; mask < size_; mask <<= 1) {
    if (rank_ & mask) {
      Status s = co_await SendTo(rank_ - mask, Pack(values));
      if (!s.ok()) co_return s;
      break;
    }
    if (rank_ + mask < size_) {
      auto r = co_await RecvFrom(rank_ + mask);
      if (!r.ok()) co_return r.status();
      Unpack(r.value(), incoming);
      if (incoming.size() != values.size()) {
        co_return InternalError("allreduce reduce size mismatch");
      }
      for (std::size_t i = 0; i < values.size(); ++i) values[i] += incoming[i];
    }
  }
  std::vector<std::uint8_t> packed;
  if (rank_ == 0) packed = Pack(values);
  Status b = co_await Broadcast(0, packed);
  if (!b.ok()) co_return b;
  Unpack(packed, values);
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::AllReduceRing(std::vector<std::int64_t>& values) {
  // Ring: N-1 reduce-scatter steps, N-1 all-gather steps; send to the
  // left neighbour, receive from the right.
  const std::size_t n = values.size();
  const std::size_t chunk = n / static_cast<std::size_t>(size_);
  const int left = (rank_ + size_ - 1) % size_;
  const int right = (rank_ + 1) % size_;
  // The ring neighbours form a cycle across ranks; see EnsureLinks.
  Status e = co_await EnsureLinks(left, right);
  if (!e.ok()) co_return e;
  std::vector<std::int64_t> incoming;

  for (int step = 0; step < size_ - 1; ++step) {
    const std::size_t send_idx =
        static_cast<std::size_t>((rank_ + step) % size_) * chunk;
    const std::size_t recv_idx =
        static_cast<std::size_t>((rank_ + step + 1) % size_) * chunk;
    Status s = co_await SendTo(
        left, Pack(std::span(values).subspan(send_idx, chunk)));
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(right);
    if (!r.ok()) co_return r.status();
    Unpack(r.value(), incoming);
    for (std::size_t i = 0; i < chunk; ++i) values[recv_idx + i] += incoming[i];
  }
  for (int step = 0; step < size_ - 1; ++step) {
    const std::size_t send_idx =
        static_cast<std::size_t>((rank_ + size_ - 1 + step) % size_) * chunk;
    const std::size_t recv_idx =
        static_cast<std::size_t>((rank_ + step) % size_) * chunk;
    Status s = co_await SendTo(
        left, Pack(std::span(values).subspan(send_idx, chunk)));
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(right);
    if (!r.ok()) co_return r.status();
    Unpack(r.value(), incoming);
    for (std::size_t i = 0; i < chunk; ++i) values[recv_idx + i] = incoming[i];
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::AllReduceGatherBroadcast(
    std::vector<std::int64_t>& values) {
  const std::size_t n = values.size();
  std::vector<std::uint8_t> mine = Pack(values);
  if (mine.size() > kMaxMessage) co_return InvalidArgument("vector too large");
  std::vector<std::uint8_t> all;
  Status g = co_await Gather(0, mine, rank_ == 0 ? &all : nullptr);
  if (!g.ok()) co_return g;
  std::vector<std::uint8_t> reduced;
  if (rank_ == 0) {
    std::vector<std::int64_t> sum(n, 0), piece;
    for (int r = 0; r < size_; ++r) {
      Unpack(std::span(all).subspan(static_cast<std::size_t>(r) * n * 8, n * 8),
             piece);
      for (std::size_t i = 0; i < n; ++i) sum[i] += piece[i];
    }
    reduced = Pack(sum);
  }
  Status b = co_await Broadcast(0, reduced);
  if (!b.ok()) co_return b;
  Unpack(reduced, values);
  ++operations_;
  co_return OkStatus();
}

}  // namespace vmmc::coll
