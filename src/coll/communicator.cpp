#include "vmmc/coll/communicator.h"

#include <algorithm>
#include <cassert>

namespace vmmc::coll {

using vmmc_core::ExportOptions;
using vmmc_core::ImportOptions;

namespace {
// Data slot layout: [payload kMaxMessage][u32 len][u32 seq]; the trailer is
// sent as a separate (in-order) message so "seq changed" commits a
// complete payload.
constexpr std::uint32_t kTrailerOff = Communicator::kMaxMessage;
constexpr std::uint32_t kSlotBytes = Communicator::kMaxMessage + 8;
}  // namespace

std::uint32_t Communicator::ReadWord(mem::VirtAddr va) const {
  std::uint8_t b[4];
  (void)ep_->ReadBuffer(va, b);
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

sim::Task<Result<std::unique_ptr<Communicator>>> Communicator::Create(
    vmmc_core::Cluster& cluster, int rank, int size, std::string tag,
    Options options) {
  using Out = Result<std::unique_ptr<Communicator>>;
  if (size < 1 || rank < 0 || rank >= size || size > cluster.num_nodes()) {
    co_return Out(InvalidArgument("bad rank/size"));
  }
  std::unique_ptr<Communicator> comm(
      new Communicator(cluster, rank, size, std::move(tag)));
  comm->options_ = options;
  auto ep = cluster.OpenEndpoint(rank, comm->tag_ + "-rank" + std::to_string(rank));
  if (!ep.ok()) co_return Out(ep.status());
  comm->ep_ = std::move(ep).value();
  if (!options.lazy_links) {
    for (int peer = 0; peer < size; ++peer) {
      if (peer == rank) continue;
      Status s = co_await comm->SetupLink(peer);
      if (!s.ok()) co_return Out(s);
    }
  }
  co_return std::move(comm);
}

sim::Task<Status> Communicator::EnsureLink(int peer) {
  if (peer < 0 || peer >= size_ || peer == rank_) {
    co_return InvalidArgument("no link to that rank");
  }
  if (links_.find(peer) != links_.end()) co_return OkStatus();
  if (!options_.lazy_links) co_return InvalidArgument("no link to that rank");
  co_return co_await SetupLink(peer);
}

sim::Process Communicator::EnsureOne(Communicator* self, int peer,
                                     int* pending, Status* first_error) {
  Status s = co_await self->EnsureLink(peer);
  if (!s.ok() && first_error->ok()) *first_error = s;
  --*pending;
}

sim::Task<Status> Communicator::EnsureLinks(int a, int b) {
  sim::Simulator& sim = cluster_.node_sim(rank_);
  int pending = 0;
  Status first_error = OkStatus();
  const int peers[2] = {a, a == b ? rank_ : b};  // rank_ entries are skipped
  for (int peer : peers) {
    if (peer == rank_) continue;
    if (peer < 0 || peer >= size_) co_return InvalidArgument("bad rank");
    ++pending;
    sim.Spawn(EnsureOne(this, peer, &pending, &first_error));
  }
  while (pending > 0) co_await sim.Delay(500);
  co_return first_error;
}

sim::Task<Status> Communicator::SetupLink(int peer) {
  Link link;
  // Export our receive slot and ack word for this peer.
  auto slot = ep_->AllocBuffer(kSlotBytes);
  if (!slot.ok()) co_return slot.status();
  link.recv_slot = slot.value();
  auto ack = ep_->AllocBuffer(64);
  if (!ack.ok()) co_return ack.status();
  link.ack_word = ack.value();
  auto ack_staging = ep_->AllocBuffer(64);
  if (!ack_staging.ok()) co_return ack_staging.status();
  link.ack_out = ack_staging.value();
  auto staging = ep_->AllocBuffer(kSlotBytes);
  if (!staging.ok()) co_return staging.status();
  link.send_staging = staging.value();

  const std::string me = std::to_string(rank_);
  const std::string them = std::to_string(peer);
  {
    ExportOptions opts;
    opts.name = tag_ + "-d-" + me + "-" + them;
    auto id = co_await ep_->ExportBuffer(link.recv_slot, kSlotBytes, std::move(opts));
    if (!id.ok()) co_return id.status();
  }
  {
    ExportOptions opts;
    opts.name = tag_ + "-a-" + me + "-" + them;
    auto id = co_await ep_->ExportBuffer(link.ack_word, 64, std::move(opts));
    if (!id.ok()) co_return id.status();
  }

  // Import the peer's counterparts (they may not exist yet: wait).
  ImportOptions wait;
  wait.wait = true;
  wait.max_attempts = 2000;
  auto data = co_await ep_->ImportBuffer(peer, tag_ + "-d-" + them + "-" + me, wait);
  if (!data.ok()) co_return data.status();
  link.send_slot = data.value().proxy_base;
  auto peer_ack = co_await ep_->ImportBuffer(peer, tag_ + "-a-" + them + "-" + me, wait);
  if (!peer_ack.ok()) co_return peer_ack.status();
  link.peer_ack = peer_ack.value().proxy_base;

  links_.emplace(peer, link);
  co_return OkStatus();
}

sim::Task<Status> Communicator::SendTo(int peer, std::span<const std::uint8_t> data) {
  if (data.size() > kMaxMessage) co_return InvalidArgument("message too large");
  Status ready = co_await EnsureLink(peer);
  if (!ready.ok()) co_return ready;
  Link& link = links_.find(peer)->second;
  sim::Simulator& sim = cluster_.node_sim(rank_);

  // Credit: the previous message on this link must have been consumed.
  while (ReadWord(link.ack_word) != link.next_send_seq - 1) {
    co_await sim.Delay(1500);
  }

  if (!data.empty()) {
    Status w = ep_->WriteBuffer(link.send_staging, data);
    if (!w.ok()) co_return w;
    Status s = co_await ep_->SendMsg(link.send_staging, link.send_slot,
                                     static_cast<std::uint32_t>(data.size()));
    if (!s.ok()) co_return s;
  }
  // Trailer: [len][seq], written after the payload (in-order delivery).
  std::uint8_t trailer[8];
  const auto len = static_cast<std::uint32_t>(data.size());
  for (int i = 0; i < 4; ++i) trailer[i] = static_cast<std::uint8_t>(len >> (8 * i));
  for (int i = 0; i < 4; ++i) {
    trailer[4 + i] = static_cast<std::uint8_t>(link.next_send_seq >> (8 * i));
  }
  Status w = ep_->WriteBuffer(link.send_staging + kTrailerOff, trailer);
  if (!w.ok()) co_return w;
  Status s = co_await ep_->SendMsg(link.send_staging + kTrailerOff,
                                   link.send_slot + kTrailerOff, 8);
  if (!s.ok()) co_return s;
  ++link.next_send_seq;
  co_return OkStatus();
}

sim::Task<Result<std::vector<std::uint8_t>>> Communicator::RecvFrom(int peer) {
  using Out = Result<std::vector<std::uint8_t>>;
  Status ready = co_await EnsureLink(peer);
  if (!ready.ok()) co_return Out(ready);
  Link& link = links_.find(peer)->second;
  sim::Simulator& sim = cluster_.node_sim(rank_);

  while (ReadWord(link.recv_slot + kTrailerOff + 4) != link.next_recv_seq) {
    co_await sim.Delay(1500);
  }
  const std::uint32_t len = ReadWord(link.recv_slot + kTrailerOff);
  if (len > kMaxMessage) co_return Out(InternalError("corrupt trailer"));
  std::vector<std::uint8_t> out(len);
  if (len > 0) {
    Status r = ep_->ReadBuffer(link.recv_slot, out);
    if (!r.ok()) co_return Out(r);
  }
  // Ack consumption so the sender may reuse the slot.
  std::uint8_t ack[4];
  for (int i = 0; i < 4; ++i) {
    ack[i] = static_cast<std::uint8_t>(link.next_recv_seq >> (8 * i));
  }
  Status w = ep_->WriteBuffer(link.ack_out, ack);
  if (!w.ok()) co_return Out(w);
  Status s = co_await ep_->SendMsg(link.ack_out, link.peer_ack, 4);
  if (!s.ok()) co_return Out(s);
  ++link.next_recv_seq;
  co_return std::move(out);
}

sim::Task<Status> Communicator::Barrier() {
  // Dissemination barrier: ceil(log2 size) rounds; in round r, rank sends
  // to (rank + 2^r) and waits for (rank - 2^r).
  for (int hop = 1; hop < size_; hop <<= 1) {
    const int to = (rank_ + hop) % size_;
    const int from = (rank_ - hop % size_ + size_) % size_;
    if (to == rank_) continue;
    // Round partners form a cycle across ranks; see EnsureLinks.
    Status e = co_await EnsureLinks(to, from);
    if (!e.ok()) co_return e;
    Status s = co_await SendTo(to, {});
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(from);
    if (!r.ok()) co_return r.status();
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::Broadcast(int root, std::vector<std::uint8_t>& data) {
  if (root < 0 || root >= size_) co_return InvalidArgument("bad root");
  // Length first (small broadcast), then the payload in kMaxMessage pieces
  // — both along a binomial tree over virtual ranks.
  const int vrank = (rank_ - root + size_) % size_;

  auto tree_exchange = [&](std::vector<std::uint8_t>& payload) -> sim::Task<Status> {
    int mask = 1;
    // Receive phase: find my parent.
    while (mask < size_) {
      if (vrank & mask) {
        const int vsrc = vrank - mask;
        const int src = (vsrc + root) % size_;
        auto r = co_await RecvFrom(src);
        if (!r.ok()) co_return r.status();
        payload = std::move(r).value();
        break;
      }
      mask <<= 1;
    }
    // Send phase: forward to my children.
    mask >>= 1;
    while (mask > 0) {
      if (vrank + mask < size_) {
        const int vdst = vrank + mask;
        const int dst = (vdst + root) % size_;
        Status s = co_await SendTo(dst, payload);
        if (!s.ok()) co_return s;
      }
      mask >>= 1;
    }
    co_return OkStatus();
  };

  // Piece 0 carries the total length as a 4-byte prefix.
  std::uint64_t total = (rank_ == root) ? data.size() : 0;
  std::vector<std::uint8_t> head;
  if (rank_ == root) {
    head.resize(4);
    for (int i = 0; i < 4; ++i) {
      head[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(static_cast<std::uint32_t>(total) >> (8 * i));
    }
  }
  Status s = co_await tree_exchange(head);
  if (!s.ok()) co_return s;
  if (rank_ != root) {
    if (head.size() != 4) co_return InternalError("broadcast header lost");
    total = std::uint32_t{head[0]} | (std::uint32_t{head[1]} << 8) |
            (std::uint32_t{head[2]} << 16) | (std::uint32_t{head[3]} << 24);
    data.resize(total);
  }

  for (std::uint64_t off = 0; off < total; off += kMaxMessage) {
    const std::uint64_t n = std::min<std::uint64_t>(kMaxMessage, total - off);
    std::vector<std::uint8_t> piece;
    if (rank_ == root) {
      piece.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                   data.begin() + static_cast<std::ptrdiff_t>(off + n));
    }
    Status ps = co_await tree_exchange(piece);
    if (!ps.ok()) co_return ps;
    if (rank_ != root) {
      if (piece.size() != n) co_return InternalError("broadcast piece lost");
      std::copy(piece.begin(), piece.end(),
                data.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::Gather(int root, std::span<const std::uint8_t> mine,
                                       std::vector<std::uint8_t>* all) {
  if (root < 0 || root >= size_) co_return InvalidArgument("bad root");
  if (mine.size() > kMaxMessage) co_return InvalidArgument("contribution too large");
  if (rank_ == root) {
    if (all == nullptr) co_return InvalidArgument("root needs an output buffer");
    all->clear();
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) {
        all->insert(all->end(), mine.begin(), mine.end());
      } else {
        auto piece = co_await RecvFrom(r);
        if (!piece.ok()) co_return piece.status();
        all->insert(all->end(), piece.value().begin(), piece.value().end());
      }
    }
  } else {
    Status s = co_await SendTo(root, mine);
    if (!s.ok()) co_return s;
  }
  ++operations_;
  co_return OkStatus();
}

sim::Task<Status> Communicator::AllReduceSum(std::vector<std::int64_t>& values) {
  auto pack = [](std::span<const std::int64_t> v) {
    std::vector<std::uint8_t> bytes(v.size() * 8);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const auto x = static_cast<std::uint64_t>(v[i]);
      for (int b = 0; b < 8; ++b) {
        bytes[i * 8 + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(x >> (8 * b));
      }
    }
    return bytes;
  };
  auto unpack = [](std::span<const std::uint8_t> bytes, std::vector<std::int64_t>& v) {
    v.resize(bytes.size() / 8);
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::uint64_t x = 0;
      for (int b = 7; b >= 0; --b) {
        x = (x << 8) | bytes[i * 8 + static_cast<std::size_t>(b)];
      }
      v[i] = static_cast<std::int64_t>(x);
    }
  };

  const std::size_t n = values.size();
  const bool ring_eligible =
      size_ > 1 && n % static_cast<std::size_t>(size_) == 0 &&
      (n / static_cast<std::size_t>(size_)) * 8 <= kMaxMessage;

  if (!ring_eligible) {
    // Fallback: gather at rank 0, reduce, broadcast.
    std::vector<std::uint8_t> mine = pack(values);
    if (mine.size() > kMaxMessage) co_return InvalidArgument("vector too large");
    std::vector<std::uint8_t> all;
    Status g = co_await Gather(0, mine, rank_ == 0 ? &all : nullptr);
    if (!g.ok()) co_return g;
    std::vector<std::uint8_t> reduced;
    if (rank_ == 0) {
      std::vector<std::int64_t> sum(n, 0), piece;
      for (int r = 0; r < size_; ++r) {
        unpack(std::span(all).subspan(static_cast<std::size_t>(r) * n * 8, n * 8),
               piece);
        for (std::size_t i = 0; i < n; ++i) sum[i] += piece[i];
      }
      reduced = pack(sum);
    }
    Status b = co_await Broadcast(0, reduced);
    if (!b.ok()) co_return b;
    unpack(reduced, values);
    ++operations_;
    co_return OkStatus();
  }

  // Ring: N-1 reduce-scatter steps, N-1 all-gather steps; send to the
  // left neighbour, receive from the right.
  const std::size_t chunk = n / static_cast<std::size_t>(size_);
  const int left = (rank_ + size_ - 1) % size_;
  const int right = (rank_ + 1) % size_;
  // The ring neighbours form a cycle across ranks; see EnsureLinks.
  Status e = co_await EnsureLinks(left, right);
  if (!e.ok()) co_return e;
  std::vector<std::int64_t> incoming;

  for (int step = 0; step < size_ - 1; ++step) {
    const std::size_t send_idx =
        static_cast<std::size_t>((rank_ + step) % size_) * chunk;
    const std::size_t recv_idx =
        static_cast<std::size_t>((rank_ + step + 1) % size_) * chunk;
    Status s = co_await SendTo(
        left, pack(std::span(values).subspan(send_idx, chunk)));
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(right);
    if (!r.ok()) co_return r.status();
    unpack(r.value(), incoming);
    for (std::size_t i = 0; i < chunk; ++i) values[recv_idx + i] += incoming[i];
  }
  for (int step = 0; step < size_ - 1; ++step) {
    const std::size_t send_idx =
        static_cast<std::size_t>((rank_ + size_ - 1 + step) % size_) * chunk;
    const std::size_t recv_idx =
        static_cast<std::size_t>((rank_ + step) % size_) * chunk;
    Status s = co_await SendTo(
        left, pack(std::span(values).subspan(send_idx, chunk)));
    if (!s.ok()) co_return s;
    auto r = co_await RecvFrom(right);
    if (!r.ok()) co_return r.status();
    unpack(r.value(), incoming);
    for (std::size_t i = 0; i < chunk; ++i) values[recv_idx + i] = incoming[i];
  }
  ++operations_;
  co_return OkStatus();
}

}  // namespace vmmc::coll
