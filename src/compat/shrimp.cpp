#include "vmmc/compat/shrimp.h"

#include <cassert>

namespace vmmc::compat {

using vmmc_core::ChunkHeader;
using vmmc_core::DecodeChunk;
using vmmc_core::EncodeChunk;
using vmmc_core::IncomingEntry;
using vmmc_core::PacketType;
using vmmc_core::ProxyAddr;

ShrimpSystem::ShrimpSystem(sim::Simulator& sim, const Params& params,
                           int num_nodes)
    : sim_(sim), params_(params) {
  fabric_ = std::make_unique<myrinet::Fabric>(sim_, params_.net);
  myrinet::TopologyPlan plan = myrinet::BuildSingleSwitch(*fabric_, 8);
  assert(num_nodes <= 8);
  for (int i = 0; i < num_nodes; ++i) {
    machines_.push_back(std::make_unique<host::Machine>(sim_, params_, i));
    nics_.push_back(std::make_unique<ShrimpNic>(sim_, params_, *machines_.back(),
                                                *this, i));
    int id = fabric_->AddNic(nics_.back().get());
    Status s = fabric_->ConnectNic(id, plan.nic_slots[static_cast<std::size_t>(i)].switch_id,
                                   plan.nic_slots[static_cast<std::size_t>(i)].port);
    assert(s.ok() && id == i);
    (void)s;
  }
}

ShrimpSystem::~ShrimpSystem() = default;

myrinet::Route ShrimpSystem::RouteTo(int src, int dst) const {
  return fabric_->ComputeRoute(src, dst).value();
}

Status ShrimpSystem::Inject(int src_node, myrinet::Packet packet) {
  return fabric_->Inject(src_node, std::move(packet));
}

ShrimpNic::ShrimpNic(sim::Simulator& sim, const Params& params,
                     host::Machine& machine, ShrimpSystem& system, int node_id)
    : sim_(sim),
      params_(params),
      machine_(machine),
      system_(system),
      node_id_(node_id),
      incoming_(machine.memory().num_frames()),
      outgoing_(params.vmmc.outgoing_pt_pages),
      engine_(sim, 1),
      eisa_bus_(sim, 1) {}

sim::Process ShrimpNic::DeliberateUpdate(std::vector<mem::PhysAddr> src_pages,
                                         std::uint32_t len, ProxyAddr proxy) {
  // The state machine handles one (non-atomic) request at a time; it is
  // invalidated on context switch, modelled by exclusive ownership.
  auto engine = co_await sim::ScopedAcquire(engine_);
  ++stats_.sends;

  std::uint32_t offset = 0;
  for (std::size_t page = 0; page < src_pages.size(); ++page) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        len - offset, mem::kPageSize - mem::PageOffset(src_pages[page])));
    // "about 2-3 microseconds to verify permissions, access the outgoing
    // page table, build a packet and start sending data" (§6).
    co_await sim_.Delay(params_.shrimp.hw_engine_process);
    const ProxyAddr dst = proxy + offset;
    auto t0 = outgoing_.Lookup(static_cast<std::uint32_t>(vmmc_core::ProxyPage(dst)));
    if (!t0.ok()) {
      ++stats_.protection_violations;
      co_return;
    }
    std::uint64_t pa1 = 0;
    if (chunk > 0 && mem::PageNumber(dst + chunk - 1) != vmmc_core::ProxyPage(dst)) {
      auto t1 = outgoing_.Lookup(
          static_cast<std::uint32_t>(vmmc_core::ProxyPage(dst) + 1));
      if (!t1.ok()) {
        ++stats_.protection_violations;
        co_return;
      }
      pa1 = mem::PageAddr(t1.value().pfn);
    }

    // EISA DMA out of host memory: the 23 MB/s hardware limit (§6).
    {
      auto bus = co_await sim::ScopedAcquire(eisa_bus_);
      co_await sim_.Delay(params_.shrimp.eisa_dma_init +
                          sim::NsForBytes(chunk, params_.shrimp.eisa_dma_mb_s));
    }

    std::vector<std::uint8_t> data(chunk);
    Status read = machine_.memory().Read(src_pages[page], data);
    assert(read.ok());
    (void)read;

    ChunkHeader h;
    h.type = PacketType::kData;
    h.flags = (offset + chunk == len) ? ChunkHeader::kFlagLastChunk : 0;
    h.src_node = static_cast<std::uint16_t>(node_id_);
    h.msg_len = len;
    h.chunk_len = chunk;
    h.dst_pa0 = mem::PageAddr(t0.value().pfn) + vmmc_core::ProxyOffset(dst);
    h.dst_pa1 = pa1;

    myrinet::Packet pkt;
    pkt.route = system_.RouteTo(node_id_, static_cast<int>(t0.value().node));
    pkt.payload = EncodeChunk(h, data);
    co_await sim_.Delay(300);  // link-interface start
    Status injected = system_.Inject(node_id_, std::move(pkt));
    assert(injected.ok());
    (void)injected;

    ++stats_.pages_sent;
    offset += chunk;
  }
}

sim::Process ShrimpNic::AutomaticUpdate(std::vector<std::uint8_t> data,
                                        ProxyAddr proxy) {
  // The snoop FIFO packetizes combined writes; one packet per destination
  // page here. No EISA fetch: the data came off the memory bus.
  std::uint32_t offset = 0;
  while (offset < data.size()) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        data.size() - offset, mem::kPageSize - mem::PageOffset(proxy + offset)));
    co_await sim_.Delay(params_.shrimp.snoop_pack);
    const ProxyAddr dst = proxy + offset;
    auto t0 = outgoing_.Lookup(static_cast<std::uint32_t>(vmmc_core::ProxyPage(dst)));
    if (!t0.ok()) {
      ++stats_.protection_violations;
      co_return;
    }
    ChunkHeader h;
    h.type = PacketType::kData;
    h.flags = (offset + chunk == static_cast<std::uint32_t>(data.size()))
                  ? ChunkHeader::kFlagLastChunk
                  : 0;
    h.src_node = static_cast<std::uint16_t>(node_id_);
    h.msg_len = static_cast<std::uint32_t>(data.size());
    h.chunk_len = chunk;
    h.dst_pa0 = mem::PageAddr(t0.value().pfn) + vmmc_core::ProxyOffset(dst);
    h.dst_pa1 = 0;
    myrinet::Packet pkt;
    pkt.route = system_.RouteTo(node_id_, static_cast<int>(t0.value().node));
    pkt.payload = EncodeChunk(
        h, std::span(data).subspan(offset, chunk));
    Status injected = system_.Inject(node_id_, std::move(pkt));
    assert(injected.ok());
    (void)injected;
    ++stats_.pages_sent;
    offset += chunk;
  }
}

void ShrimpNic::OnPacket(myrinet::Packet packet, sim::Tick tail_time,
                         myrinet::Link* /*from*/) {
  const sim::Tick wait = tail_time - sim_.now();
  sim_.In(wait > 0 ? wait : 0, [this, pkt = std::move(packet)]() mutable {
    sim_.Spawn(Receive(std::move(pkt)));
  });
}

sim::Process ShrimpNic::Receive(myrinet::Packet packet) {
  co_await sim_.Delay(params_.shrimp.hw_recv_process);
  if (!packet.CrcOk()) co_return;
  auto decoded = DecodeChunk(packet.payload);
  if (!decoded.has_value()) co_return;
  const ChunkHeader& h = decoded->header;

  const IncomingEntry* e0 = incoming_.Find(mem::PageNumber(h.dst_pa0));
  if (e0 == nullptr || !e0->recv_enabled) {
    ++stats_.protection_violations;
    co_return;
  }
  const std::uint32_t seg0 = h.ScatterLen0();
  {
    auto bus = co_await sim::ScopedAcquire(eisa_bus_);
    co_await sim_.Delay(params_.shrimp.eisa_dma_init +
                        sim::NsForBytes(h.chunk_len, params_.shrimp.eisa_dma_mb_s));
  }
  Status w = machine_.memory().Write(h.dst_pa0, decoded->data.subspan(0, seg0));
  assert(w.ok());
  if (h.dst_pa1 != 0 && seg0 < h.chunk_len) {
    const IncomingEntry* e1 = incoming_.Find(mem::PageNumber(h.dst_pa1));
    if (e1 == nullptr || !e1->recv_enabled) {
      ++stats_.protection_violations;
      co_return;
    }
    w = machine_.memory().Write(h.dst_pa1, decoded->data.subspan(seg0));
    assert(w.ok());
  }
  stats_.bytes_received += h.chunk_len;
}

ShrimpEndpoint::ShrimpEndpoint(ShrimpSystem& system, int node,
                               const std::string& name)
    : system_(system),
      node_(node),
      process_(&system.machine(node).kernel().CreateProcess(name)) {}

Result<mem::VirtAddr> ShrimpEndpoint::AllocBuffer(std::uint32_t len) {
  return process_->address_space().HeapAlloc(mem::RoundUpToPage(len),
                                             mem::kPageSize);
}

Result<std::uint32_t> ShrimpEndpoint::ExportBuffer(mem::VirtAddr va,
                                                   std::uint32_t len,
                                                   const std::string& name) {
  auto& registry = system_.export_registry();
  if (registry.contains(name)) return AlreadyExists("name in use");
  Status pin = process_->address_space().Pin(va, len);
  if (!pin.ok()) return pin;
  ShrimpSystem::BufferExport rec;
  rec.node = node_;
  rec.len = len;
  const std::uint64_t pages = mem::PagesSpanned(va, len);
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto pa = process_->address_space().Translate(va + i * mem::kPageSize);
    if (!pa.ok()) return pa.status();
    const mem::Pfn pfn = mem::PageNumber(pa.value());
    Status s = system_.nic(node_).incoming().Enable(pfn, false, process_->pid(), 0);
    if (!s.ok()) return s;
    rec.frames.push_back(pfn);
  }
  registry.emplace(name, std::move(rec));
  return static_cast<std::uint32_t>(registry.size());
}

Result<vmmc_core::ProxyAddr> ShrimpEndpoint::ImportBuffer(int remote_node,
                                                          const std::string& name) {
  auto& registry = system_.export_registry();
  auto it = registry.find(name);
  if (it == registry.end()) return NotFound("no such export");
  if (it->second.node != remote_node) return NotFound("export on another node");
  auto& outgoing = system_.nic(node_).outgoing();
  auto base = outgoing.AllocateRun(static_cast<std::uint32_t>(it->second.frames.size()));
  if (!base.ok()) return base.status();
  for (std::uint32_t i = 0; i < it->second.frames.size(); ++i) {
    Status s = outgoing.Set(base.value() + i, static_cast<std::uint32_t>(remote_node),
                            it->second.frames[i]);
    if (!s.ok()) return s;
  }
  return vmmc_core::MakeProxyAddr(base.value(), 0);
}

sim::Task<Status> ShrimpEndpoint::SendMsg(mem::VirtAddr src,
                                          vmmc_core::ProxyAddr dst,
                                          std::uint32_t len) {
  sim::Simulator& sim = system_.simulator();
  const Params& p = system_.params();
  if (len == 0) co_return InvalidArgument("empty send");

  // Thin library wrapper: the heavy lifting is hardware (§6).
  co_await sim.Delay(500);

  // The OS pins send pages on first use (proxy mappings are maintained by
  // the OS; this is part of SHRIMP's larger OS footprint, §6).
  mem::AddressSpace& as = process_->address_space();
  if (!as.TranslatePinned(src).ok()) {
    Status pin = as.Pin(src, len);
    if (!pin.ok()) co_return pin;
    co_await sim.Delay(sim::Microseconds(20));  // one-time pin syscall
  }

  // Gather physical source pages; "in SHRIMP we need to issue two memory-
  // mapped instructions for each page" (§6).
  std::vector<mem::PhysAddr> pages;
  std::uint32_t offset = 0;
  while (offset < len) {
    auto pa = as.Translate(src + offset);
    if (!pa.ok()) co_return pa.status();
    pages.push_back(pa.value());
    const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        len - offset, mem::kPageSize - mem::PageOffset(src + offset)));
    co_await sim.Delay(2 * p.shrimp.pio_write);
    offset += chunk;
  }

  co_await system_.nic(node_).DeliberateUpdate(std::move(pages), len, dst);
  co_return OkStatus();
}

Status ShrimpEndpoint::MapAutomaticUpdate(mem::VirtAddr va, std::uint32_t len,
                                          vmmc_core::ProxyAddr proxy) {
  if (len == 0) return InvalidArgument("empty auto-update mapping");
  if (!process_->address_space().Translate(va).ok()) {
    return NotFound("mapping source not in address space");
  }
  // The destination must already be imported (the outgoing table validates
  // it again on every snooped write).
  auto t = system_.nic(node_).outgoing().Lookup(
      static_cast<std::uint32_t>(vmmc_core::ProxyPage(proxy)));
  if (!t.ok()) return t.status();
  auto_bindings_.push_back(AutoBinding{va, len, proxy});
  return OkStatus();
}

sim::Task<Status> ShrimpEndpoint::AutoWrite(mem::VirtAddr va,
                                            std::span<const std::uint8_t> data) {
  // The ordinary store: write-through to local memory.
  const Params& p = system_.params();
  co_await system_.simulator().Delay(
      static_cast<sim::Tick>((data.size() + 3) / 4) * p.shrimp.store_per_word);
  Status w = process_->address_space().Write(va, data);
  if (!w.ok()) co_return w;

  // The snooping card watches the memory bus: if the range is mapped, the
  // write is propagated with no further involvement of the CPU.
  for (const AutoBinding& b : auto_bindings_) {
    if (va >= b.base && va + data.size() <= b.base + b.len) {
      const vmmc_core::ProxyAddr dst = b.proxy + (va - b.base);
      system_.simulator().Spawn(system_.nic(node_).AutomaticUpdate(
          std::vector<std::uint8_t>(data.begin(), data.end()), dst));
      break;
    }
  }
  co_return OkStatus();
}

}  // namespace vmmc::compat
