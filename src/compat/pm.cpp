#include "vmmc/compat/pm.h"

#include <cassert>

namespace vmmc::compat {

using vmmc_core::ChunkHeader;
using vmmc_core::DecodeChunk;
using vmmc_core::EncodeChunk;
using vmmc_core::PacketType;

namespace {
// Control encoding in the header tag: kind in the top byte, sequence
// number below.
constexpr std::uint32_t kKindData = 0;
constexpr std::uint32_t kKindAck = 1;
constexpr std::uint32_t kKindNack = 2;

std::uint32_t MakeTag(std::uint32_t kind, std::uint32_t seq) {
  return (kind << 24) | (seq & 0x00FF'FFFF);
}
std::uint32_t TagKind(std::uint32_t tag) { return tag >> 24; }
std::uint32_t TagSeq(std::uint32_t tag) { return tag & 0x00FF'FFFF; }
}  // namespace

PmEndpoint::PmEndpoint(Testbed& testbed, int node)
    : testbed_(testbed), node_(node) {
  auto lcp = std::make_unique<PmLcp>(testbed.params());
  lcp_ = lcp.get();
  testbed.nic(node).LoadLcp(std::move(lcp));
}

std::uint64_t PmEndpoint::retransmits() const { return lcp_->retransmits(); }

sim::Task<Status> PmEndpoint::Send(int dst_node, std::vector<std::uint8_t> data,
                                   bool include_copy) {
  sim::Simulator& sim = testbed_.simulator();
  co_await sim.Delay(700);  // library entry (exclusive interface: no scan)

  // "the user first allocates special send buffer space, then copies data
  // into the buffer" (§7). PM's peak bandwidth excludes this copy.
  if (include_copy) {
    co_await testbed_.machine(node_).cpu().Bcopy(data.size());
  }

  const std::uint32_t total = static_cast<std::uint32_t>(data.size());
  std::uint32_t offset = 0;
  std::uint32_t seq = next_tx_seq_;
  do {
    const std::uint32_t n = std::min(kUnitBytes, total - offset);
    // Window flow control: wait for an ACK credit.
    co_await lcp_->credits()->Acquire();
    PmLcp::Unit unit;
    unit.dst_node = dst_node;
    unit.seq = seq++;
    unit.msg_len = total;
    unit.last = offset + n == total;
    unit.data.assign(data.begin() + offset, data.begin() + offset + n);
    co_await testbed_.machine(node_).pci().PioWrite(4);  // post descriptor
    lcp_->PostUnit(std::move(unit));
    offset += n;
  } while (offset < total);
  next_tx_seq_ = seq;
  co_return OkStatus();
}

sim::Task<std::vector<std::uint8_t>> PmEndpoint::Poll() {
  co_await testbed_.simulator().Delay(400);  // poll call
  auto& q = lcp_->delivered();
  if (q.empty()) co_return std::vector<std::uint8_t>{};
  std::vector<std::uint8_t> msg = std::move(q.front());
  q.pop_front();
  co_return msg;
}

void PmLcp::PostUnit(Unit unit) {
  tx_queue_.push_back(std::move(unit));
  if (nic_ != nullptr) nic_->NotifyWork();
}

sim::Process PmLcp::SendUnit(lanai::NicCard& nic, Unit unit) {
  // Small units take a PIO-style fast path (PM favours latency for short
  // messages); larger units are one DMA burst each — the send buffer is
  // pinned and physically contiguous, so units beyond a page are legal
  // (§7), PM's bandwidth edge over page-limited layers.
  if (unit.data.size() <= 128) {
    co_await nic.cpu().Exec(1000);
  } else {
    co_await nic.cpu().Exec(params_.pci.dma_loop_sw);
    co_await nic.machine().pci().Dma(unit.data.size());
  }
  std::vector<std::uint8_t> staged = unit.data;

  ChunkHeader h;
  h.type = PacketType::kData;
  h.flags = unit.last ? ChunkHeader::kFlagLastChunk : 0;
  h.src_node = static_cast<std::uint16_t>(nic.nic_id());
  h.msg_len = unit.msg_len;
  h.chunk_len = static_cast<std::uint32_t>(unit.data.size());
  h.tag = MakeTag(kKindData, unit.seq);
  myrinet::Packet pkt;
  pkt.route = nic.fabric().ComputeRoute(nic.nic_id(), unit.dst_node).value();
  pkt.payload = EncodeChunk(h, staged);
  unacked_.push_back(std::move(unit));
  // Pipelined: the network DMA of this unit overlaps the host DMA of the
  // next one ("peak pipelined bandwidth", §7).
  tx_pump_->Put(std::move(pkt));
  co_return;
}

sim::Process PmLcp::TxPump(lanai::NicCard& nic) {
  for (;;) {
    myrinet::Packet pkt = co_await tx_pump_->Get();
    co_await nic.NetSend(std::move(pkt));
  }
}

sim::Process PmLcp::Run(lanai::NicCard& nic) {
  nic_ = &nic;
  credits_ = std::make_unique<sim::Semaphore>(nic.simulator(),
                                              PmEndpoint::kWindow);
  tx_pump_ = std::make_unique<sim::Mailbox<myrinet::Packet>>(nic.simulator());
  nic.simulator().Spawn(TxPump(nic));
  const LanaiParams& lp = params_.lanai;

  // Retransmit watchdog: unACKed units are resent after a timeout (the
  // "modified ACK/NACK flow control", §7).
  struct Watchdog {
    static sim::Process Run(PmLcp& lcp, lanai::NicCard& nic) {
      // Retransmit only when the window head makes no progress across two
      // ticks — a genuinely lost unit, not one still in flight.
      std::uint32_t last_head = UINT32_MAX;
      for (;;) {
        co_await nic.simulator().Delay(sim::Milliseconds(2));
        if (lcp.unacked_.empty()) {
          last_head = UINT32_MAX;
          continue;
        }
        const std::uint32_t head = lcp.unacked_.front().seq;
        if (head == last_head) {
          ++lcp.retransmits_;
          Unit again = lcp.unacked_.front();
          co_await lcp.SendUnit(nic, std::move(again));
          last_head = UINT32_MAX;
        } else {
          last_head = head;
        }
      }
    }
  };
  nic.simulator().Spawn(Watchdog::Run(*this, nic));

  for (;;) {
    co_await nic.AwaitWork();
    while (nic.work_pending()) co_await nic.AwaitWork();
    co_await nic.cpu().Exec(lp.main_loop_poll);
    for (;;) {
      if (auto rp = nic.rx_queue().TryGet()) {
        co_await nic.cpu().Exec(lp.recv_process);
        if (!rp->crc_ok) continue;  // lost unit; sender's watchdog recovers
        auto decoded = DecodeChunk(rp->packet.payload);
        if (!decoded.has_value()) continue;
        const ChunkHeader& h = decoded->header;
        const std::uint32_t kind = TagKind(h.tag);
        const std::uint32_t seq = TagSeq(h.tag);

        if (kind == kKindAck) {
          if (!unacked_.empty() && unacked_.front().seq == seq) {
            unacked_.pop_front();
          }
          credits_->Release();
          continue;
        }
        if (kind == kKindNack) {
          // Retransmit everything from the NACKed sequence.
          for (auto& u : unacked_) {
            if (u.seq == seq) {
              ++retransmits_;
              Unit again = u;
              co_await SendUnit(nic, std::move(again));
              break;
            }
          }
          continue;
        }

        // Data unit.
        if (seq != next_rx_seq_) {
          // Out of order: NACK the expected unit, drop this one.
          ChunkHeader nack;
          nack.type = PacketType::kData;
          nack.src_node = static_cast<std::uint16_t>(nic.nic_id());
          nack.tag = MakeTag(kKindNack, next_rx_seq_);
          myrinet::Packet pkt;
          pkt.route =
              nic.fabric().ComputeRoute(nic.nic_id(), h.src_node).value();
          pkt.payload = EncodeChunk(nack, {});
          co_await nic.NetSend(std::move(pkt));
          continue;
        }
        ++next_rx_seq_;
        // Deposit into the receiver-provided pinned buffer.
        if (h.chunk_len <= 128) {
          co_await nic.cpu().Exec(600);
        } else {
          co_await nic.machine().pci().Dma(h.chunk_len);
        }
        assembling_.insert(assembling_.end(), decoded->data.begin(),
                           decoded->data.end());
        if (h.last_chunk()) {
          delivered_.push_back(std::move(assembling_));
          assembling_.clear();
        }
        // ACK the unit.
        ChunkHeader ack;
        ack.type = PacketType::kData;
        ack.src_node = static_cast<std::uint16_t>(nic.nic_id());
        ack.tag = MakeTag(kKindAck, seq);
        myrinet::Packet pkt;
        pkt.route = nic.fabric().ComputeRoute(nic.nic_id(), h.src_node).value();
        pkt.payload = EncodeChunk(ack, {});
        co_await nic.NetSend(std::move(pkt));
        continue;
      }
      if (!tx_queue_.empty()) {
        Unit unit = std::move(tx_queue_.front());
        tx_queue_.pop_front();
        co_await nic.cpu().Exec(900);  // exclusive access: direct pickup
        co_await SendUnit(nic, std::move(unit));
        continue;
      }
      break;
    }
  }
}

}  // namespace vmmc::compat
