#include "vmmc/compat/am.h"

#include <cstring>

namespace vmmc::compat {

using vmmc_core::ExportOptions;
using vmmc_core::ImportOptions;

namespace {
// On-buffer slot layout: seq word, handler word, then the fixed payload.
constexpr std::uint32_t kSlotBytes = 8 + AmEndpoint::kPayloadWords * 4;

std::vector<std::uint8_t> EncodeSlot(std::uint32_t seq, std::uint16_t handler,
                                     const AmEndpoint::Payload& payload) {
  std::vector<std::uint8_t> out(kSlotBytes);
  auto put_u32 = [&](std::size_t off, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out[off + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  };
  // The sequence word is written LAST on the wire because VMMC delivers
  // bytes in order within a message... but a single short send is one
  // chunk, so place seq at the END of the slot: it is the last byte
  // written into receiver memory, making "seq changed" a safe commit
  // point for polling.
  put_u32(0, handler);
  for (std::uint32_t w = 0; w < AmEndpoint::kPayloadWords; ++w) {
    put_u32(4 + w * 4, payload[w]);
  }
  put_u32(4 + AmEndpoint::kPayloadWords * 4, seq);
  return out;
}

struct DecodedSlot {
  std::uint32_t seq;
  std::uint16_t handler;
  AmEndpoint::Payload payload;
};

DecodedSlot DecodeSlot(const std::vector<std::uint8_t>& bytes) {
  auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | bytes[off + static_cast<std::size_t>(i)];
    return v;
  };
  DecodedSlot slot;
  slot.handler = static_cast<std::uint16_t>(get_u32(0));
  for (std::uint32_t w = 0; w < AmEndpoint::kPayloadWords; ++w) {
    slot.payload[w] = get_u32(4 + w * 4);
  }
  slot.seq = get_u32(4 + AmEndpoint::kPayloadWords * 4);
  return slot;
}
}  // namespace

AmEndpoint::AmEndpoint(vmmc_core::Cluster& cluster, int node,
                       std::unique_ptr<vmmc_core::Endpoint> ep)
    : cluster_(cluster), node_(node), ep_(std::move(ep)) {}

Result<std::unique_ptr<AmEndpoint>> AmEndpoint::Create(
    vmmc_core::Cluster& cluster, int node) {
  auto ep = cluster.OpenEndpoint(node, "am-" + std::to_string(node));
  if (!ep.ok()) return ep.status();
  std::unique_ptr<AmEndpoint> am(
      new AmEndpoint(cluster, node, std::move(ep).value()));
  auto scratch = am->ep_->AllocBuffer(kSlotBytes);
  if (!scratch.ok()) return scratch.status();
  am->scratch_ = scratch.value();
  return am;
}

sim::Task<Status> AmEndpoint::Connect(AmEndpoint& peer) {
  // Export one request slot and one reply slot for this peer on each side,
  // then cross-import.
  auto setup_one = [](AmEndpoint& self, int peer_node,
                      const std::string& kind) -> sim::Task<Result<mem::VirtAddr>> {
    auto buf = self.ep_->AllocBuffer(mem::kPageSize);
    if (!buf.ok()) co_return Result<mem::VirtAddr>(buf.status());
    ExportOptions opts;
    opts.name = "am-" + kind + "-" + std::to_string(self.node_) + "-" +
                std::to_string(peer_node);
    auto id = co_await self.ep_->ExportBuffer(buf.value(), mem::kPageSize,
                                              std::move(opts));
    if (!id.ok()) co_return Result<mem::VirtAddr>(id.status());
    co_return buf.value();
  };

  auto my_req = co_await setup_one(*this, peer.node_, "req");
  if (!my_req.ok()) co_return my_req.status();
  auto my_reply = co_await setup_one(*this, peer.node_, "reply");
  if (!my_reply.ok()) co_return my_reply.status();
  auto peer_req = co_await setup_one(peer, node_, "req");
  if (!peer_req.ok()) co_return peer_req.status();
  auto peer_reply = co_await setup_one(peer, node_, "reply");
  if (!peer_reply.ok()) co_return peer_reply.status();

  ImportOptions wait;
  wait.wait = true;
  // We send requests into the peer's request slot and receive replies in
  // our reply slot; the peer mirrors this.
  auto to_peer_req = co_await ep_->ImportBuffer(
      peer.node_, "am-req-" + std::to_string(peer.node_) + "-" + std::to_string(node_),
      wait);
  if (!to_peer_req.ok()) co_return to_peer_req.status();
  auto peer_to_my_req = co_await peer.ep_->ImportBuffer(
      node_, "am-req-" + std::to_string(node_) + "-" + std::to_string(peer.node_),
      wait);
  if (!peer_to_my_req.ok()) co_return peer_to_my_req.status();
  auto to_peer_reply = co_await ep_->ImportBuffer(
      peer.node_,
      "am-reply-" + std::to_string(peer.node_) + "-" + std::to_string(node_), wait);
  if (!to_peer_reply.ok()) co_return to_peer_reply.status();
  auto peer_to_my_reply = co_await peer.ep_->ImportBuffer(
      node_, "am-reply-" + std::to_string(node_) + "-" + std::to_string(peer.node_),
      wait);
  if (!peer_to_my_reply.ok()) co_return peer_to_my_reply.status();

  request_slots_[peer.node_] =
      SlotView{my_req.value(), to_peer_req.value().proxy_base};
  reply_slots_[peer.node_] =
      SlotView{my_reply.value(), to_peer_reply.value().proxy_base};
  peer.request_slots_[node_] =
      SlotView{peer_req.value(), peer_to_my_req.value().proxy_base};
  peer.reply_slots_[node_] =
      SlotView{peer_reply.value(), peer_to_my_reply.value().proxy_base};
  co_return OkStatus();
}

void AmEndpoint::RegisterRequestHandler(std::uint16_t id, RequestHandler handler) {
  handlers_[id] = std::move(handler);
}

sim::Task<Result<AmEndpoint::Payload>> AmEndpoint::Request(int dst_node,
                                                           std::uint16_t id,
                                                           const Payload& args) {
  auto req_it = request_slots_.find(dst_node);
  auto reply_it = reply_slots_.find(dst_node);
  if (req_it == request_slots_.end() || reply_it == reply_slots_.end()) {
    co_return Result<Payload>(FailedPrecondition("not connected to that node"));
  }
  sim::Simulator& sim = cluster_.simulator();
  const std::uint32_t seq = next_request_seq_++;

  std::vector<std::uint8_t> slot = EncodeSlot(seq, id, args);
  Status w = ep_->WriteBuffer(scratch_, slot);
  if (!w.ok()) co_return Result<Payload>(w);
  Status sent = co_await ep_->SendMsg(scratch_, req_it->second.remote, kSlotBytes);
  if (!sent.ok()) co_return Result<Payload>(sent);

  // Poll for the reply (AM's polling notification mode).
  for (;;) {
    std::vector<std::uint8_t> bytes(kSlotBytes);
    Status r = ep_->ReadBuffer(reply_it->second.local_va, bytes);
    if (!r.ok()) co_return Result<Payload>(r);
    DecodedSlot decoded = DecodeSlot(bytes);
    if (decoded.seq == seq) co_return decoded.payload;
    co_await sim.Delay(300);
  }
}

sim::Process AmEndpoint::ServeLoop() {
  sim::Simulator& sim = cluster_.simulator();
  std::unordered_map<int, std::uint32_t> last_seq;
  while (serving_) {
    for (auto& [peer, view] : request_slots_) {
      std::vector<std::uint8_t> bytes(kSlotBytes);
      if (!ep_->ReadBuffer(view.local_va, bytes).ok()) continue;
      DecodedSlot decoded = DecodeSlot(bytes);
      if (decoded.seq == 0 || decoded.seq == last_seq[peer]) continue;
      last_seq[peer] = decoded.seq;
      ++requests_served_;

      Payload reply_payload{};
      auto it = handlers_.find(decoded.handler);
      if (it != handlers_.end()) {
        co_await sim.Delay(1500);  // handler dispatch
        reply_payload = it->second(decoded.payload);
      }
      std::vector<std::uint8_t> reply =
          EncodeSlot(decoded.seq, decoded.handler, reply_payload);
      Status w = ep_->WriteBuffer(scratch_, reply);
      if (!w.ok()) continue;
      (void)co_await ep_->SendMsg(scratch_, reply_slots_[peer].remote, kSlotBytes);
    }
    co_await sim.Delay(500);
  }
}

}  // namespace vmmc::compat
