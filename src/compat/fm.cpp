#include "vmmc/compat/fm.h"

#include <cassert>

namespace vmmc::compat {

using vmmc_core::ChunkHeader;
using vmmc_core::DecodeChunk;
using vmmc_core::EncodeChunk;
using vmmc_core::PacketType;

FmEndpoint::FmEndpoint(Testbed& testbed, int node)
    : testbed_(testbed), node_(node) {
  auto lcp = std::make_unique<FmLcp>(testbed.params());
  lcp_ = lcp.get();
  testbed.nic(node).LoadLcp(std::move(lcp));
}

void FmEndpoint::RegisterHandler(std::uint16_t id, Handler handler) {
  handlers_[id] = std::move(handler);
}

sim::Task<Status> FmEndpoint::Send(int dst_node, std::uint16_t id,
                                   std::vector<std::uint8_t> data) {
  sim::Simulator& sim = testbed_.simulator();
  const Params& p = testbed_.params();
  co_await sim.Delay(800);  // thin library entry (FM favours low latency)

  // Fragment into 128-byte frames, PIO-copying each to the interface: no
  // send-side DMA and no pinning, but bandwidth is capped by the PIO rate.
  const std::uint32_t total = static_cast<std::uint32_t>(data.size());
  std::uint32_t offset = 0;
  do {
    const std::uint32_t n = std::min(kFrameBytes, total - offset);
    FmLcp::Frame frame;
    frame.dst_node = dst_node;
    frame.handler = id;
    frame.msg_len = total;
    frame.last = offset + n == total;
    frame.data.assign(data.begin() + offset, data.begin() + offset + n);
    // Frame header (2 words) + payload, all programmed I/O.
    const int words = 2 + static_cast<int>((n + 3) / 4);
    co_await testbed_.machine(node_).pci().PioWrite(words);
    lcp_->PostFrame(std::move(frame));
    offset += n;
  } while (offset < total);
  co_return OkStatus();
}

sim::Task<int> FmEndpoint::Extract() {
  sim::Simulator& sim = testbed_.simulator();
  host::HostCpu& cpu = testbed_.machine(node_).cpu();
  co_await sim.Delay(500);  // poll call
  int handled = 0;

  // Reassemble complete messages at the front of the ring.
  auto& ring = lcp_->rx_ring();
  while (!ring.empty()) {
    // Find a complete message prefix.
    std::size_t frames = 0;
    bool complete = false;
    for (; frames < ring.size(); ++frames) {
      if (ring[frames].last) {
        complete = true;
        ++frames;
        break;
      }
    }
    if (!complete) break;

    std::vector<std::uint8_t> message;
    message.reserve(ring[0].msg_len);
    const std::uint16_t handler_id = ring[0].handler;
    for (std::size_t i = 0; i < frames; ++i) {
      message.insert(message.end(), ring[i].data.begin(), ring[i].data.end());
    }
    ring.erase(ring.begin(), ring.begin() + static_cast<std::ptrdiff_t>(frames));

    // The handler copies data from the pinned ring into user structures —
    // the copy VMMC's exported buffers avoid (§7).
    co_await cpu.Bcopy(message.size());
    co_await sim.Delay(1200);  // handler dispatch
    auto it = handlers_.find(handler_id);
    if (it != handlers_.end()) it->second(message);
    ++messages_received_;
    ++handled;
  }
  co_return handled;
}

void FmLcp::PostFrame(Frame frame) {
  tx_queue_.push_back(std::move(frame));
  if (nic_ != nullptr) nic_->NotifyWork();
}

sim::Process FmLcp::Run(lanai::NicCard& nic) {
  nic_ = &nic;
  // The pinned receive ring (allocated by the driver at module load).
  ring_pa_ = mem::PageAddr(nic.machine().memory().AllocFrame().value());
  const LanaiParams& lp = params_.lanai;
  for (;;) {
    co_await nic.AwaitWork();
    while (nic.work_pending()) co_await nic.AwaitWork();
    co_await nic.cpu().Exec(lp.main_loop_poll);
    for (;;) {
      if (auto rp = nic.rx_queue().TryGet()) {
        // Frame arrival: DMA it into the pinned receive ring.
        co_await nic.cpu().Exec(lp.recv_process);
        if (!rp->crc_ok) continue;
        auto decoded = DecodeChunk(rp->packet.payload);
        if (!decoded.has_value()) continue;
        std::vector<std::uint8_t> staged(decoded->data.begin(),
                                         decoded->data.end());
        co_await nic.HostDmaWrite(ring_pa_, staged);  // pinned receive ring
        RingSlot slot;
        slot.handler = static_cast<std::uint16_t>(decoded->header.tag);
        slot.msg_len = decoded->header.msg_len;
        slot.last = decoded->header.last_chunk();
        slot.data = std::move(staged);
        rx_ring_.push_back(std::move(slot));
        continue;
      }
      if (!tx_queue_.empty()) {
        Frame frame = std::move(tx_queue_.front());
        tx_queue_.pop_front();
        co_await nic.cpu().Exec(1000);  // frame pickup + header
        ChunkHeader h;
        h.type = PacketType::kData;
        h.flags = frame.last ? ChunkHeader::kFlagLastChunk : 0;
        h.src_node = static_cast<std::uint16_t>(nic.nic_id());
        h.msg_len = frame.msg_len;
        h.chunk_len = static_cast<std::uint32_t>(frame.data.size());
        h.tag = frame.handler;
        myrinet::Packet pkt;
        pkt.route = nic.fabric().ComputeRoute(nic.nic_id(), frame.dst_node).value();
        pkt.payload = EncodeChunk(h, frame.data);
        co_await nic.NetSend(std::move(pkt));
        continue;
      }
      break;
    }
  }
}

}  // namespace vmmc::compat
