#include "vmmc/compat/mapi.h"

#include <cassert>

namespace vmmc::compat {

using vmmc_core::ChunkHeader;
using vmmc_core::DecodeChunk;
using vmmc_core::EncodeChunk;
using vmmc_core::PacketType;

namespace {
// Software message checksum (the API's, distinct from the link CRC).
std::uint32_t SoftwareChecksum(const std::vector<std::uint8_t>& data) {
  std::uint32_t sum = 0x811C9DC5u;
  for (std::uint8_t b : data) sum = (sum ^ b) * 0x01000193u;
  return sum;
}

// Per-operation library cost fitted so a 4-byte round trip lands near the
// paper's 63 us (heavy channel bookkeeping on the 166 MHz host).
constexpr sim::Tick kLibraryOverhead = 30'000;
}  // namespace

MapiEndpoint::MapiEndpoint(Testbed& testbed, int node)
    : testbed_(testbed), node_(node) {
  auto lcp = std::make_unique<MapiLcp>(testbed.params());
  lcp_ = lcp.get();
  testbed.nic(node).LoadLcp(std::move(lcp));
}

std::uint64_t MapiEndpoint::checksum_failures() const {
  return lcp_->checksum_failures();
}

sim::Task<Status> MapiEndpoint::Send(int dst_node, std::uint16_t channel,
                                     std::vector<std::uint8_t> data) {
  sim::Simulator& sim = testbed_.simulator();
  host::HostCpu& cpu = testbed_.machine(node_).cpu();
  co_await sim.Delay(kLibraryOverhead);
  // Copy into the staging buffer and compute the software checksum.
  co_await cpu.Bcopy(data.size());
  co_await cpu.Charge(static_cast<sim::Tick>(data.size() / 8 + 500));
  MapiLcp::Message msg;
  msg.dst_node = dst_node;
  msg.channel = channel;
  msg.checksum = SoftwareChecksum(data);
  msg.data = std::move(data);
  co_await testbed_.machine(node_).pci().PioWrite(6);
  lcp_->PostSend(std::move(msg));
  co_return OkStatus();
}

sim::Task<std::vector<std::uint8_t>> MapiEndpoint::Recv(std::uint16_t channel) {
  sim::Simulator& sim = testbed_.simulator();
  host::HostCpu& cpu = testbed_.machine(node_).cpu();
  co_await sim.Delay(kLibraryOverhead);
  auto& q = lcp_->received(channel);
  if (q.empty()) co_return std::vector<std::uint8_t>{};
  MapiLcp::Message msg = std::move(q.front());
  q.pop_front();
  // Receive-side copy from the staging area into the user buffer.
  co_await cpu.Bcopy(msg.data.size());
  co_return std::move(msg.data);
}

void MapiLcp::PostSend(Message message) {
  tx_queue_.push_back(std::move(message));
  if (nic_ != nullptr) nic_->NotifyWork();
}

sim::Process MapiLcp::Run(lanai::NicCard& nic) {
  nic_ = &nic;
  const LanaiParams& lp = params_.lanai;
  for (;;) {
    co_await nic.AwaitWork();
    while (nic.work_pending()) co_await nic.AwaitWork();
    co_await nic.cpu().Exec(lp.main_loop_poll);
    for (;;) {
      if (auto rp = nic.rx_queue().TryGet()) {
        co_await nic.cpu().Exec(lp.recv_process + 2000);  // channel demux
        if (!rp->crc_ok) continue;  // unreliable: silently dropped (§7)
        auto decoded = DecodeChunk(rp->packet.payload);
        if (!decoded.has_value()) continue;
        // DMA into the staging area, verify the software checksum.
        co_await nic.machine().pci().Dma(decoded->data.size());
        Message msg;
        msg.dst_node = nic.nic_id();
        msg.channel = static_cast<std::uint16_t>(decoded->header.tag >> 16);
        msg.checksum = decoded->header.tag & 0xFFFFu;
        msg.data.assign(decoded->data.begin(), decoded->data.end());
        if ((SoftwareChecksum(msg.data) & 0xFFFFu) != msg.checksum) {
          ++checksum_failures_;
          continue;
        }
        rx_[msg.channel].push_back(std::move(msg));
        continue;
      }
      if (!tx_queue_.empty()) {
        Message msg = std::move(tx_queue_.front());
        tx_queue_.pop_front();
        // No pipelining: fetch the whole message (page-sized bursts from
        // the pinned staging area), then put it on the wire.
        co_await nic.cpu().Exec(3000);
        std::uint64_t remaining = msg.data.size();
        while (remaining > 0) {
          const std::uint64_t n = std::min<std::uint64_t>(remaining, mem::kPageSize);
          co_await nic.machine().pci().Dma(n);
          remaining -= n;
        }
        ChunkHeader h;
        h.type = PacketType::kData;
        h.flags = ChunkHeader::kFlagLastChunk;
        h.src_node = static_cast<std::uint16_t>(nic.nic_id());
        h.msg_len = static_cast<std::uint32_t>(msg.data.size());
        h.chunk_len = h.msg_len;
        h.tag = (static_cast<std::uint32_t>(msg.channel) << 16) |
                (msg.checksum & 0xFFFFu);
        myrinet::Packet pkt;
        pkt.route = nic.fabric().ComputeRoute(nic.nic_id(), msg.dst_node).value();
        pkt.payload = EncodeChunk(h, msg.data);
        co_await nic.NetSend(std::move(pkt));
        continue;
      }
      break;
    }
  }
}

}  // namespace vmmc::compat
