#include "vmmc/myrinet/crc8.h"

#include <array>

namespace vmmc::myrinet {

namespace {
constexpr std::uint8_t kPoly = 0x07;

constexpr std::array<std::uint8_t, 256> MakeTable() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t crc = static_cast<std::uint8_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = static_cast<std::uint8_t>((crc & 0x80) ? (crc << 1) ^ kPoly : crc << 1);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> kTable = MakeTable();
}  // namespace

std::uint8_t Crc8Update(std::uint8_t crc, std::span<const std::uint8_t> data) {
  for (std::uint8_t byte : data) crc = kTable[crc ^ byte];
  return crc;
}

std::uint8_t Crc8(std::span<const std::uint8_t> data) {
  return Crc8Update(0, data);
}

}  // namespace vmmc::myrinet
