#include "vmmc/myrinet/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace vmmc::myrinet {

namespace {

Status Wire(Status st) {
  // Topology builders own the port bookkeeping; a wiring conflict is a
  // builder bug, not a user error, but surface it as a Status anyway so
  // callers see which shape failed.
  return st;
}

Result<TopologyPlan> BuildFatTree(Fabric& fabric, const TopologyConfig& cfg) {
  const int p = cfg.switch_ports;
  const int down = p / 2;    // NIC slots per leaf
  const int spines = p / 2;  // one uplink per spine from every leaf
  const int leaves = (cfg.num_nodes + down - 1) / down;
  // A spine has p ports, one per leaf, so the tree caps at p leaves:
  // (p/2) * p nodes total.
  if (leaves > p) {
    return InvalidArgument("fat tree of " + std::to_string(p) +
                           "-port switches caps at " +
                           std::to_string(down * p) + " nodes");
  }
  // Leaves get ids 0..leaves-1, spines leaves..leaves+spines-1.
  for (int l = 0; l < leaves; ++l) fabric.AddSwitch(p);
  for (int s = 0; s < spines; ++s) fabric.AddSwitch(p);
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      // Leaf l uplink port (down + s) <-> spine s port l.
      Status st = Wire(fabric.ConnectSwitches(l, down + s, leaves + s, l));
      if (!st.ok()) return st;
    }
  }

  // Dispersive deterministic routing: inter-leaf traffic for (src, dst)
  // always climbs to spine (src + dst) % spines. Symmetric (the reply
  // uses the same spine), independent of BFS tie-breaking, and spreads a
  // permutation's flows across all spines.
  fabric.SetRouteOracle([down, spines](int src, int dst) -> Result<Route> {
    const int src_leaf = src / down;
    const int dst_leaf = dst / down;
    const auto dst_port = static_cast<std::uint8_t>(dst % down);
    if (src_leaf == dst_leaf) return Route{dst_port};
    const int spine = (src + dst) % spines;
    return Route{static_cast<std::uint8_t>(down + spine),
                 static_cast<std::uint8_t>(dst_leaf), dst_port};
  });

  TopologyPlan plan;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    plan.nic_slots.push_back({n / down, n % down});
  }
  return plan;
}

Result<TopologyPlan> BuildChainOrRing(Fabric& fabric, const TopologyConfig& cfg,
                                      bool ring) {
  const int p = cfg.switch_ports;
  const int per = p - 2;  // ports p-2 (to next) and p-1 (to previous) reserved
  if (per < 1) return InvalidArgument("need at least 3 ports per switch");
  int count = cfg.num_switches;
  if (count == 0) count = (cfg.num_nodes + per - 1) / per;
  count = std::max(count, 1);
  if (count * per < cfg.num_nodes) {
    return InvalidArgument("chain/ring of " + std::to_string(count) +
                           " switches holds only " +
                           std::to_string(count * per) + " nodes");
  }
  for (int s = 0; s < count; ++s) fabric.AddSwitch(p);
  for (int s = 0; s + 1 < count; ++s) {
    Status st = Wire(fabric.ConnectSwitches(s, p - 2, s + 1, p - 1));
    if (!st.ok()) return st;
  }
  if (ring && count > 1) {
    // Close the cycle; BFS then routes the shorter way around.
    Status st = Wire(fabric.ConnectSwitches(count - 1, p - 2, 0, p - 1));
    if (!st.ok()) return st;
  }
  TopologyPlan plan;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    plan.nic_slots.push_back({n / per, n % per});
  }
  return plan;
}

Result<TopologyPlan> BuildMesh(Fabric& fabric, const TopologyConfig& cfg) {
  const int p = cfg.switch_ports;
  const int per = p - 4;  // four ports for the N/E/S/W neighbors
  if (per < 1) return InvalidArgument("mesh needs at least 5 ports per switch");
  int rows = cfg.mesh_rows;
  int cols = cfg.mesh_cols;
  if (rows == 0 || cols == 0) {
    const int switches =
        std::max(1, (cfg.num_nodes + per - 1) / per);
    rows = static_cast<int>(std::sqrt(static_cast<double>(switches)));
    rows = std::max(rows, 1);
    cols = (switches + rows - 1) / rows;
  }
  if (rows * cols * per < cfg.num_nodes) {
    return InvalidArgument("mesh " + std::to_string(rows) + "x" +
                           std::to_string(cols) + " holds only " +
                           std::to_string(rows * cols * per) + " nodes");
  }
  // Switch (r, c) has id r*cols + c. Neighbor ports: p-4 east, p-3 west,
  // p-2 south, p-1 north; no wraparound (mesh, not torus).
  for (int i = 0; i < rows * cols; ++i) fabric.AddSwitch(p);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      if (c + 1 < cols) {
        Status st = Wire(fabric.ConnectSwitches(id, p - 4, id + 1, p - 3));
        if (!st.ok()) return st;
      }
      if (r + 1 < rows) {
        Status st = Wire(fabric.ConnectSwitches(id, p - 2, id + cols, p - 1));
        if (!st.ok()) return st;
      }
    }
  }
  TopologyPlan plan;
  for (int n = 0; n < cfg.num_nodes; ++n) {
    plan.nic_slots.push_back({n / per, n % per});
  }
  return plan;
}

}  // namespace

Result<TopologyConfig> ParseTopologySpec(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return InvalidArgument("topology spec must be kind:nodes[@ports]");
  }
  const std::string kind = spec.substr(0, colon);
  std::string rest = spec.substr(colon + 1);
  TopologyConfig cfg;
  if (kind == "single") {
    cfg.kind = TopologyKind::kSingleSwitch;
  } else if (kind == "chain") {
    cfg.kind = TopologyKind::kChain;
  } else if (kind == "fattree") {
    cfg.kind = TopologyKind::kFatTree;
  } else if (kind == "ring") {
    cfg.kind = TopologyKind::kRing;
  } else if (kind == "mesh") {
    cfg.kind = TopologyKind::kMesh;
  } else {
    return InvalidArgument("unknown topology kind '" + kind + "'");
  }
  const std::size_t at = rest.find('@');
  std::string ports;
  if (at != std::string::npos) {
    ports = rest.substr(at + 1);
    rest = rest.substr(0, at);
  }
  char* end = nullptr;
  const long nodes = std::strtol(rest.c_str(), &end, 10);
  if (rest.empty() || *end != '\0' || nodes < 1) {
    return InvalidArgument("bad node count '" + rest + "'");
  }
  cfg.num_nodes = static_cast<int>(nodes);
  if (!ports.empty()) {
    const long pp = std::strtol(ports.c_str(), &end, 10);
    if (*end != '\0' || pp < 2 || pp > 64) {
      return InvalidArgument("bad port count '" + ports + "'");
    }
    cfg.switch_ports = static_cast<int>(pp);
  }
  return cfg;
}

std::string TopologySpecString(const TopologyConfig& config) {
  const char* kind = "single";
  switch (config.kind) {
    case TopologyKind::kSingleSwitch: kind = "single"; break;
    case TopologyKind::kChain: kind = "chain"; break;
    case TopologyKind::kFatTree: kind = "fattree"; break;
    case TopologyKind::kRing: kind = "ring"; break;
    case TopologyKind::kMesh: kind = "mesh"; break;
  }
  return std::string(kind) + ":" + std::to_string(config.num_nodes) + "@" +
         std::to_string(config.switch_ports);
}

Result<TopologyPlan> BuildTopology(Fabric& fabric, const TopologyConfig& config) {
  if (fabric.num_switches() != 0) {
    return FailedPrecondition("fabric already has switches");
  }
  if (config.num_nodes < 1) return InvalidArgument("need at least one node");
  if (config.switch_ports < 2) return InvalidArgument("need >= 2 ports");
  switch (config.kind) {
    case TopologyKind::kSingleSwitch: {
      if (config.num_nodes > config.switch_ports) {
        return InvalidArgument("single switch holds only " +
                               std::to_string(config.switch_ports) + " nodes");
      }
      return BuildSingleSwitch(fabric, config.switch_ports);
    }
    case TopologyKind::kChain:
      return BuildChainOrRing(fabric, config, /*ring=*/false);
    case TopologyKind::kRing:
      return BuildChainOrRing(fabric, config, /*ring=*/true);
    case TopologyKind::kFatTree:
      return BuildFatTree(fabric, config);
    case TopologyKind::kMesh:
      return BuildMesh(fabric, config);
  }
  return InvalidArgument("unknown topology kind");
}

}  // namespace vmmc::myrinet
