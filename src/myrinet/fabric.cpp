#include "vmmc/myrinet/fabric.h"

#include <cassert>
#include <string>

#include "vmmc/sim/parallel.h"
#include "vmmc/util/log.h"

namespace vmmc::myrinet {

namespace {
// Sinks for links constructed outside a Fabric (unit tests), so Send
// never branches on whether metrics are bound.
obs::Counter g_unbound_packets;
obs::Counter g_unbound_bytes;
obs::Counter g_unbound_ser;
obs::Counter g_unbound_blocked;
}  // namespace

Link::Link(sim::Simulator& sim, const NetParams& params, sim::Rng& rng)
    : sim_(sim),
      params_(params),
      rng_(rng),
      packets_m_(&g_unbound_packets),
      bytes_m_(&g_unbound_bytes),
      ser_ns_m_(&g_unbound_ser),
      blocked_ns_m_(&g_unbound_blocked) {}

void Link::BindMetrics(obs::Counter* packets, obs::Counter* bytes,
                       obs::Counter* ser_ns, obs::Counter* blocked_ns) {
  packets_m_ = packets != nullptr ? packets : &g_unbound_packets;
  bytes_m_ = bytes != nullptr ? bytes : &g_unbound_bytes;
  ser_ns_m_ = ser_ns != nullptr ? ser_ns : &g_unbound_ser;
  blocked_ns_m_ = blocked_ns != nullptr ? blocked_ns : &g_unbound_blocked;
}

void Link::Send(Packet packet) {
  assert(dst_ != nullptr && "link not wired");
  ++packets_;
  bytes_ += packet.wire_bytes();
  packets_m_->Inc();
  bytes_m_->Inc(packet.wire_bytes());

  // Error injection: flip one payload byte; the receiver's CRC hardware
  // detects it (the paper checks CRCs but never recovers, §4.2).
  if (params_.packet_error_rate > 0.0 && !packet.payload.empty() &&
      rng_.Bernoulli(params_.packet_error_rate)) {
    const std::size_t i =
        static_cast<std::size_t>(rng_.UniformU64(packet.payload.size()));
    packet.payload.MutableData()[i] ^= 0x01u << rng_.UniformU64(8);
  }

  // Planned fault injection (sim/fault.h): bit flips, wire drops and
  // delivery jitter, decided per packet from the injector's own seeded
  // stream. Only the payload is touched — route bytes stay intact, so an
  // injected fault can never redirect a DMA to the wrong node.
  sim::FaultInjector::LinkVerdict fate;
  if (sim_.faults().active()) {
    fate = sim_.faults().OnLinkTransmit(site_, packet.payload);
  }

  // Blocked time: how long the packet waited for the wire to free up.
  const sim::Tick start = std::max(sim_.now(), busy_until_);
  const sim::Tick blocked = start - sim_.now();
  blocked_ += blocked;
  blocked_ns_m_->Inc(static_cast<std::uint64_t>(blocked));
  const sim::Tick ser = sim::NsForBytes(packet.wire_bytes(), params_.link_mb_s);
  ser_ += ser;
  ser_ns_m_->Inc(static_cast<std::uint64_t>(ser));
  busy_until_ = start + ser;
  // A dropped packet occupied the wire but its tail never arrives anywhere;
  // recovery is the sender's retransmission timeout, exactly as for a real
  // mid-flight loss.
  if (fate.drop) return;
  const sim::Tick head = start + params_.link_latency + fate.extra_delay;
  const sim::Tick tail = start + ser + params_.link_latency + fate.extra_delay;

  // Cross-shard delivery: head >= now + link_latency, so this edge always
  // respects the engine's lookahead — it lands in a future window, never
  // clamped. This is THE forward edge conservative sync is built around.
  sim::ParallelEngine* eng = sim_.engine();
  if (eng != nullptr && dst_sim_ != nullptr && dst_sim_ != &sim_) {
    eng->PostRemote(sim_.shard_id(), dst_sim_->shard_id(), head,
                    [this, pkt = std::move(packet), tail]() mutable {
                      dst_->OnPacket(std::move(pkt), tail, this);
                    });
    return;
  }
  sim_.At(head, [this, pkt = std::move(packet), tail]() mutable {
    dst_->OnPacket(std::move(pkt), tail, this);
  });
}

void Switch::OnPacket(Packet packet, sim::Tick tail_time, Link* from) {
  if (packet.route.empty()) {
    ++dropped_;
    if (dropped_m_ != nullptr) dropped_m_->Inc();
    VMMC_LOG(kWarn, "switch") << "switch " << id_ << ": packet with empty route dropped";
    if (drop_handler_) drop_handler_(std::move(packet));
    return;
  }
  const int port = packet.route.front();
  packet.route.erase(packet.route.begin());
  if (port >= num_ports() || out_links_[static_cast<std::size_t>(port)] == nullptr) {
    ++dropped_;
    if (dropped_m_ != nullptr) dropped_m_->Inc();
    VMMC_LOG(kWarn, "switch") << "switch " << id_ << ": invalid output port "
                              << port << ", packet dropped";
    if (drop_handler_) drop_handler_(std::move(packet));
    return;
  }
  ++forwarded_;
  if (forwarded_m_ != nullptr) forwarded_m_->Inc();
  // Cut-through: the head reaches the output port after the switch
  // latency; tail_time of this hop is implicit (the downstream link
  // recomputes serialization).
  (void)tail_time;
  sim_.In(params_.switch_latency,
          [this, port, pkt = std::move(packet), from]() mutable {
            Enqueue(port, std::move(pkt), from);
          });
}

void Switch::Enqueue(int port, Packet packet, Link* from) {
  OutPort& op = ports_[static_cast<std::size_t>(port)];
  Link* out = out_links_[static_cast<std::size_t>(port)];
  const std::size_t cap = params_.switch_port_queue_bytes;
  const std::size_t wire = packet.wire_bytes();
  if (cap != 0 && !op.queue.empty() && op.bytes + wire > cap) {
    // No buffer space: wormhole backpressure. The packet cannot leave its
    // inbound wire, which stays occupied — stalling everything behind it
    // (head-of-line blocking) — until the contended output frees up.
    ++hol_stalls_;
    if (hol_stalls_m_ != nullptr) hol_stalls_m_->Inc();
    const sim::Tick retry = std::max(out->busy_until(), sim_.now() + 1);
    const sim::Tick stalled = retry - sim_.now();
    hol_stall_ += stalled;
    if (hol_stall_ns_m_ != nullptr) {
      hol_stall_ns_m_->Inc(static_cast<std::uint64_t>(stalled));
    }
    if (from != nullptr) StallLink(from, retry);
    sim_.At(retry, [this, port, pkt = std::move(packet), from]() mutable {
      Enqueue(port, std::move(pkt), from);
    });
    return;
  }
  op.queue.emplace_back(std::move(packet), sim_.now());
  op.bytes += wire;
  if (!op.draining) {
    op.draining = true;
    DrainPort(port);
  }
}

void Switch::StallLink(Link* from, sim::Tick until) {
  sim::ParallelEngine* eng = sim_.engine();
  if (eng != nullptr && &from->owner() != &sim_) {
    // Backward zero-lookahead edge: the stall reaches the upstream shard
    // at its next window boundary, <= one lookahead late. StallUntil only
    // ever extends occupancy, so a late stall under-reports backpressure
    // by at most that window — it cannot corrupt link state.
    eng->PostRemote(sim_.shard_id(), from->owner().shard_id(), sim_.now(),
                    [from, until] { from->StallUntil(until); });
    return;
  }
  from->StallUntil(until);
}

void Switch::DrainPort(int port) {
  OutPort& op = ports_[static_cast<std::size_t>(port)];
  Link* out = out_links_[static_cast<std::size_t>(port)];
  if (op.queue.empty()) {
    op.draining = false;
    return;
  }
  if (out->busy_until() > sim_.now()) {
    sim_.At(out->busy_until(), [this, port] { DrainPort(port); });
    return;
  }
  auto [pkt, enqueued_at] = std::move(op.queue.front());
  op.queue.pop_front();
  op.bytes -= pkt.wire_bytes();
  const sim::Tick waited = sim_.now() - enqueued_at;
  queue_wait_ += waited;
  if (queue_wait_ns_m_ != nullptr) {
    queue_wait_ns_m_->Inc(static_cast<std::uint64_t>(waited));
  }
  out->Send(std::move(pkt));
  // The wire is now busy until this packet's tail leaves; come back then.
  sim_.At(out->busy_until(), [this, port] { DrainPort(port); });
}

void Fabric::NotifyDrop(sim::Simulator& from_sim, Packet&& packet) {
  if (packet.src_nic < 0 || packet.src_nic >= num_nics()) return;
  const NicAttachment& att = nics_[static_cast<std::size_t>(packet.src_nic)];
  Endpoint* src = att.endpoint;
  if (src == nullptr) return;
  drop_notices_.fetch_add(1, std::memory_order_relaxed);
  from_sim.metrics().GetCounter("fabric.drop_notices").Inc();
  // Through the event queue: the switch is mid-OnPacket here, and the
  // notice models an out-of-band backward signal, not a synchronous call
  // into the source NIC. A source NIC on another shard gets the notice at
  // its next window boundary (zero-lookahead edge, clamped at drain).
  sim::Simulator* dst = att.sim != nullptr ? att.sim : &sim_;
  sim::ParallelEngine* eng = from_sim.engine();
  if (eng != nullptr && dst != &from_sim) {
    eng->PostRemote(from_sim.shard_id(), dst->shard_id(), from_sim.now(),
                    [src, pkt = std::move(packet)]() mutable {
                      src->OnPacketDropped(pkt);
                    });
    return;
  }
  from_sim.Post(
      [src, pkt = std::move(packet)]() { src->OnPacketDropped(pkt); });
}

Link* Fabric::NewLink(sim::Simulator& owner) {
  const std::string prefix =
      "fabric.link" + std::to_string(links_.size()) + ".";
  links_.push_back(std::make_unique<Link>(owner, params_, rng_));
  sim::LinkSite site;
  site.link_id = static_cast<int>(links_.size()) - 1;
  links_.back()->set_site(site);
  obs::Registry& m = owner.metrics();
  links_.back()->BindMetrics(&m.GetCounter(prefix + "packets"),
                             &m.GetCounter(prefix + "bytes"),
                             &m.GetCounter(prefix + "ser_ns"),
                             &m.GetCounter(prefix + "blocked_ns"));
  return links_.back().get();
}

int Fabric::AddSwitch(int num_ports) {
  sim::Simulator& sim =
      switch_planner_ ? switch_planner_(num_switches()) : sim_;
  return AddSwitch(sim, num_ports);
}

int Fabric::AddSwitch(sim::Simulator& sim, int num_ports) {
  // The per-packet error model draws from one fabric-wide RNG stream; on
  // a partitioned fabric that stream would be consumed from several
  // shards at once. Fault plans (per-shard FaultInjector streams) cover
  // the lossy cases in parallel runs.
  assert((&sim == &sim_ || params_.packet_error_rate == 0.0) &&
         "packet_error_rate needs the single-simulator fabric");
  const int id = num_switches();
  switches_.push_back(std::make_unique<Switch>(sim, params_, id, num_ports));
  const std::string prefix = "fabric.switch" + std::to_string(id) + ".";
  obs::Registry& m = sim.metrics();
  switches_.back()->BindMetrics(&m.GetCounter(prefix + "forwarded"),
                                &m.GetCounter(prefix + "dropped"),
                                &m.GetCounter(prefix + "queue_wait_ns"),
                                &m.GetCounter(prefix + "hol_stalls"),
                                &m.GetCounter(prefix + "hol_stall_ns"));
  Switch* sw = switches_.back().get();
  sw->set_drop_handler([this, sw](Packet&& pkt) {
    NotifyDrop(sw->simulator(), std::move(pkt));
  });
  if (&sim != &sim_) {
    corrupt_next_.resize(
        std::max(corrupt_next_.size(), static_cast<std::size_t>(num_nics())),
        0);
  }
  return id;
}

int Fabric::AddNic(Endpoint* nic) {
  NicAttachment att;
  att.endpoint = nic;
  nics_.push_back(att);
  return num_nics() - 1;
}

int Fabric::AddNic(Endpoint* nic, sim::Simulator& sim) {
  NicAttachment att;
  att.endpoint = nic;
  att.sim = &sim;
  nics_.push_back(att);
  // Pre-size so concurrent per-nic writes in Inject never reallocate.
  corrupt_next_.resize(
      std::max(corrupt_next_.size(), static_cast<std::size_t>(num_nics())), 0);
  return num_nics() - 1;
}

Status Fabric::ConnectNic(int nic_id, int switch_id, int port) {
  if (nic_id < 0 || nic_id >= num_nics()) return InvalidArgument("bad nic id");
  if (switch_id < 0 || switch_id >= num_switches()) {
    return InvalidArgument("bad switch id");
  }
  NicAttachment& att = nics_[static_cast<std::size_t>(nic_id)];
  if (att.to_switch != nullptr) return AlreadyExists("nic already connected");
  Switch& sw = *switches_[static_cast<std::size_t>(switch_id)];
  if (port < 0 || port >= sw.num_ports()) return InvalidArgument("bad port");
  if (sw.output(port) != nullptr) return AlreadyExists("switch port in use");

  // Link ownership follows the source side: the NIC's shard serializes
  // outbound packets, the switch's shard serializes inbound ones.
  sim::Simulator& nic_sim = att.sim != nullptr ? *att.sim : sim_;
  att.to_switch = NewLink(nic_sim);
  att.to_switch->set_destination(&sw, &sw.simulator());
  {
    sim::LinkSite site = att.to_switch->site();
    site.src_nic = nic_id;
    att.to_switch->set_site(site);
  }
  att.from_switch = NewLink(sw.simulator());
  att.from_switch->set_destination(att.endpoint, &nic_sim);
  {
    sim::LinkSite site = att.from_switch->site();
    site.switch_id = switch_id;
    site.port = port;
    att.from_switch->set_site(site);
  }
  sw.AttachOutput(port, att.from_switch);
  att.switch_id = switch_id;
  att.switch_port = port;
  return OkStatus();
}

Status Fabric::ConnectSwitches(int a, int pa, int b, int pb) {
  if (a < 0 || a >= num_switches() || b < 0 || b >= num_switches()) {
    return InvalidArgument("bad switch id");
  }
  Switch& sa = *switches_[static_cast<std::size_t>(a)];
  Switch& sb = *switches_[static_cast<std::size_t>(b)];
  if (pa < 0 || pa >= sa.num_ports() || pb < 0 || pb >= sb.num_ports()) {
    return InvalidArgument("bad port");
  }
  if (sa.output(pa) != nullptr || sb.output(pb) != nullptr) {
    return AlreadyExists("switch port in use");
  }
  Link* ab = NewLink(sa.simulator());
  ab->set_destination(&sb, &sb.simulator());
  {
    sim::LinkSite site = ab->site();
    site.switch_id = a;
    site.port = pa;
    ab->set_site(site);
  }
  sa.AttachOutput(pa, ab);
  Link* ba = NewLink(sb.simulator());
  ba->set_destination(&sa, &sa.simulator());
  {
    sim::LinkSite site = ba->site();
    site.switch_id = b;
    site.port = pb;
    ba->set_site(site);
  }
  sb.AttachOutput(pb, ba);
  return OkStatus();
}

int Fabric::LinkIdAt(int switch_id, int port) const {
  for (const auto& l : links_) {
    const sim::LinkSite& s = l->site();
    if (s.switch_id == switch_id && s.port == port) return s.link_id;
  }
  return -1;
}

Status Fabric::Inject(int nic_id, Packet packet) {
  if (nic_id < 0 || nic_id >= num_nics()) return InvalidArgument("bad nic id");
  NicAttachment& att = nics_[static_cast<std::size_t>(nic_id)];
  if (att.to_switch == nullptr) return FailedPrecondition("nic not connected");
  packet.src_nic = nic_id;
  if (static_cast<std::size_t>(nic_id) < corrupt_next_.size() &&
      corrupt_next_[static_cast<std::size_t>(nic_id)] > 0) {
    --corrupt_next_[static_cast<std::size_t>(nic_id)];
    if (!packet.route.empty()) packet.route.front() = 0x3F;  // invalid port
  }
  packet.StampCrc();
  att.to_switch->Send(std::move(packet));
  return OkStatus();
}

void Fabric::CorruptNextRoutes(int nic_id, int count) {
  if (nic_id < 0 || nic_id >= num_nics()) return;
  if (corrupt_next_.size() < static_cast<std::size_t>(num_nics())) {
    corrupt_next_.resize(static_cast<std::size_t>(num_nics()), 0);
  }
  corrupt_next_[static_cast<std::size_t>(nic_id)] = count;
}

Result<Route> Fabric::ComputeRoute(int src_nic, int dst_nic) const {
  if (src_nic < 0 || src_nic >= num_nics() || dst_nic < 0 || dst_nic >= num_nics()) {
    return InvalidArgument("bad nic id");
  }
  const NicAttachment& src = nics_[static_cast<std::size_t>(src_nic)];
  const NicAttachment& dst = nics_[static_cast<std::size_t>(dst_nic)];
  if (src.switch_id < 0 || dst.switch_id < 0) {
    return FailedPrecondition("nic not connected");
  }
  if (src_nic == dst_nic) {
    // Self route: out to the switch and straight back.
    return Route{static_cast<std::uint8_t>(src.switch_port)};
  }

  // A topology builder's closed-form routing (deterministic path spreading
  // on fat trees) takes precedence over the generic BFS.
  if (oracle_) {
    Result<Route> r = oracle_(src_nic, dst_nic);
    if (r.ok()) return r;
  }

  // BFS over switches from the source's switch to the destination's switch,
  // recording (switch, entry route). The route is the port byte consumed at
  // each traversed switch; the final byte exits to the destination NIC.
  // Deterministic: switches and ports are explored in id order, so ties
  // always resolve the same way.
  struct State {
    int switch_id;
    Route route;
  };
  std::deque<State> frontier;
  std::vector<bool> visited(static_cast<std::size_t>(num_switches()), false);
  frontier.push_back({src.switch_id, {}});
  visited[static_cast<std::size_t>(src.switch_id)] = true;

  while (!frontier.empty()) {
    State cur = std::move(frontier.front());
    frontier.pop_front();
    const Switch& sw = *switches_[static_cast<std::size_t>(cur.switch_id)];

    if (cur.switch_id == dst.switch_id) {
      Route full = cur.route;
      full.push_back(static_cast<std::uint8_t>(dst.switch_port));
      return full;
    }

    for (int port = 0; port < sw.num_ports(); ++port) {
      const Link* out = sw.output(port);
      if (out == nullptr) continue;
      // Is the far end another switch?
      for (int s2 = 0; s2 < num_switches(); ++s2) {
        if (out->destination() == switches_[static_cast<std::size_t>(s2)].get() &&
            !visited[static_cast<std::size_t>(s2)]) {
          visited[static_cast<std::size_t>(s2)] = true;
          Route r = cur.route;
          r.push_back(static_cast<std::uint8_t>(port));
          frontier.push_back({s2, std::move(r)});
        }
      }
    }
  }
  return NotFound("no route between nics");
}

std::uint64_t Fabric::total_link_packets() const {
  std::uint64_t n = 0;
  for (const auto& l : links_) n += l->packets_sent();
  return n;
}

sim::Tick Fabric::total_queue_wait() const {
  sim::Tick n = 0;
  for (const auto& s : switches_) n += s->queue_wait();
  return n;
}

std::uint64_t Fabric::total_hol_stalls() const {
  std::uint64_t n = 0;
  for (const auto& s : switches_) n += s->hol_stalls();
  return n;
}

sim::Tick Fabric::total_hol_stall_time() const {
  sim::Tick n = 0;
  for (const auto& s : switches_) n += s->hol_stall_time();
  return n;
}

TopologyPlan BuildSingleSwitch(Fabric& fabric, int max_nics) {
  TopologyPlan plan;
  const int sw = fabric.AddSwitch(max_nics);
  for (int i = 0; i < max_nics; ++i) plan.nic_slots.push_back({sw, i});
  return plan;
}

TopologyPlan BuildSwitchChain(Fabric& fabric, int num_switches, int per_switch) {
  assert(per_switch + 2 <= 8);
  TopologyPlan plan;
  for (int s = 0; s < num_switches; ++s) fabric.AddSwitch(8);
  // Ports: 0..per_switch-1 for NICs, 6 to next switch, 7 to previous.
  for (int s = 0; s + 1 < num_switches; ++s) {
    Status st = fabric.ConnectSwitches(s, 6, s + 1, 7);
    assert(st.ok());
    (void)st;
  }
  for (int s = 0; s < num_switches; ++s) {
    for (int i = 0; i < per_switch; ++i) plan.nic_slots.push_back({s, i});
  }
  return plan;
}

}  // namespace vmmc::myrinet
