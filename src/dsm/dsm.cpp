#include "vmmc/dsm/dsm.h"

#include <cassert>

namespace vmmc::dsm {

using compat::AmEndpoint;
using vmmc_core::ExportOptions;
using vmmc_core::ImportOptions;

namespace {
// AM control-plane request ids.
constexpr std::uint16_t kFetch = 1;
constexpr std::uint16_t kTryLock = 2;
constexpr std::uint16_t kUnlock = 3;

constexpr std::uint32_t kGranted = 1;
constexpr std::uint32_t kBusy = 0;
}  // namespace

sim::Task<Result<std::unique_ptr<DsmNode>>> DsmNode::Create(
    vmmc_core::Cluster& cluster, int rank, int size, DsmOptions options) {
  using Out = Result<std::unique_ptr<DsmNode>>;
  if (size < 1 || rank < 0 || rank >= size || options.total_pages == 0) {
    co_return Out(InvalidArgument("bad dsm configuration"));
  }
  std::unique_ptr<DsmNode> node(new DsmNode(cluster, rank, size, options));
  auto ep = cluster.OpenEndpoint(rank, options.tag + "-data-" + std::to_string(rank));
  if (!ep.ok()) co_return Out(ep.status());
  node->ep_ = std::move(ep).value();
  auto control = AmEndpoint::Create(cluster, rank);
  if (!control.ok()) co_return Out(control.status());
  node->control_ = std::move(control).value();

  const std::uint32_t pages = options.total_pages;
  const std::uint32_t homed =
      (pages + static_cast<std::uint32_t>(size) - 1) / static_cast<std::uint32_t>(size);

  // Exported home segment: the authoritative copies of pages homed here.
  auto home = node->ep_->AllocBuffer(homed * mem::kPageSize);
  if (!home.ok()) co_return Out(home.status());
  node->home_segment_ = home.value();
  {
    ExportOptions opts;
    opts.name = options.tag + "-home-" + std::to_string(rank);
    auto id = co_await node->ep_->ExportBuffer(node->home_segment_,
                                               homed * mem::kPageSize, std::move(opts));
    if (!id.ok()) co_return Out(id.status());
  }
  // Exported cache region: fetched remote pages + one fetch-flag word per
  // page (homes push completions here).
  const std::uint32_t cache_bytes = pages * mem::kPageSize +
                                    mem::RoundUpToPage(pages * 4);
  auto cache = node->ep_->AllocBuffer(cache_bytes);
  if (!cache.ok()) co_return Out(cache.status());
  node->cache_ = cache.value();
  {
    ExportOptions opts;
    opts.name = options.tag + "-cache-" + std::to_string(rank);
    auto id = co_await node->ep_->ExportBuffer(node->cache_, cache_bytes,
                                               std::move(opts));
    if (!id.ok()) co_return Out(id.status());
  }
  auto staging = node->ep_->AllocBuffer(mem::RoundUpToPage(pages * 4));
  if (!staging.ok()) co_return Out(staging.status());
  node->staging_ = staging.value();

  node->pages_.resize(pages);

  // Control-plane handlers.
  DsmNode* raw = node.get();
  raw->control_->RegisterRequestHandler(
      kFetch, [raw](const AmEndpoint::Payload& args) {
        const std::uint32_t page = args[0];
        const std::uint32_t gen = args[1];
        const int requester = static_cast<int>(args[2]);
        // Push the page + completion flag asynchronously; the AM reply
        // only acknowledges the request.
        raw->cluster_.simulator().Spawn(raw->PushPage(page, gen, requester));
        AmEndpoint::Payload reply{};
        reply[0] = 1;  // accepted
        return reply;
      });
  raw->control_->RegisterRequestHandler(
      kTryLock, [raw](const AmEndpoint::Payload& args) {
        const std::uint32_t lock_id = args[0];
        const int requester = static_cast<int>(args[1]);
        AmEndpoint::Payload reply{};
        auto [it, inserted] = raw->locks_.try_emplace(lock_id, requester);
        if (inserted || it->second == requester) {
          it->second = requester;
          reply[0] = kGranted;
        } else {
          reply[0] = kBusy;
        }
        return reply;
      });
  raw->control_->RegisterRequestHandler(
      kUnlock, [raw](const AmEndpoint::Payload& args) {
        const std::uint32_t lock_id = args[0];
        const int requester = static_cast<int>(args[1]);
        AmEndpoint::Payload reply{};
        auto it = raw->locks_.find(lock_id);
        if (it != raw->locks_.end() && it->second == requester) {
          raw->locks_.erase(it);
          reply[0] = 1;
        }
        return reply;
      });
  co_return std::move(node);
}

sim::Task<Status> DsmNode::Connect(DsmNode& peer) {
  Status c = co_await control_->Connect(*peer.control_);
  if (!c.ok()) co_return c;

  ImportOptions wait;
  wait.wait = true;
  // `wait` is captured by value: the coroutine frame must not hold
  // references into this scope across its suspensions (vmmc-lint R5).
  auto setup = [wait](DsmNode& self, DsmNode& other) -> sim::Task<Status> {
    auto home = co_await self.ep_->ImportBuffer(
        other.rank_, self.options_.tag + "-home-" + std::to_string(other.rank_), wait);
    if (!home.ok()) co_return home.status();
    self.home_proxy_[other.rank_] = home.value().proxy_base;
    auto cache = co_await self.ep_->ImportBuffer(
        other.rank_, self.options_.tag + "-cache-" + std::to_string(other.rank_),
        wait);
    if (!cache.ok()) co_return cache.status();
    self.cache_proxy_[other.rank_] = cache.value().proxy_base;
    co_return OkStatus();
  };
  Status a = co_await setup(*this, peer);
  if (!a.ok()) co_return a;
  co_return co_await setup(peer, *this);
}

sim::Process DsmNode::PushPage(std::uint32_t page, std::uint32_t gen,
                               int requester) {
  auto proxy_it = cache_proxy_.find(requester);
  if (proxy_it == cache_proxy_.end()) co_return;
  const mem::VirtAddr src = home_segment_ + HomeIndex(page) * mem::kPageSize;
  Status sent = co_await ep_->SendMsg(
      src, proxy_it->second + page * mem::kPageSize, mem::kPageSize);
  if (!sent.ok()) co_return;
  // Completion flag; per-page staging words avoid races between
  // concurrent pushes of different pages.
  std::uint8_t flag[4];
  for (int i = 0; i < 4; ++i) flag[i] = static_cast<std::uint8_t>(gen >> (8 * i));
  (void)ep_->WriteBuffer(staging_ + page * 4, flag);
  (void)co_await ep_->SendMsg(
      staging_ + page * 4,
      proxy_it->second + options_.total_pages * mem::kPageSize + page * 4, 4);
}

void DsmNode::StartService() {
  cluster_.simulator().Spawn(control_->ServeLoop());
}

void DsmNode::StopService() { control_->StopServing(); }

sim::Task<Result<mem::VirtAddr>> DsmNode::EnsurePage(std::uint32_t page,
                                                     bool for_write) {
  using Out = Result<mem::VirtAddr>;
  if (page >= options_.total_pages) co_return Out(OutOfRange("page out of range"));
  const int home = HomeOf(page);
  if (home == rank_) {
    // Home pages are read and written in place; the home copy is always
    // authoritative.
    co_return home_segment_ + HomeIndex(page) * mem::kPageSize;
  }

  PageState& state = pages_[page];
  const mem::VirtAddr cached = cache_ + page * mem::kPageSize;
  if (!state.valid) {
    // Fault: ask the home to push the page, then spin on the flag word
    // the home writes after the data (in-order delivery commits it).
    ++stats_.page_fetches;
    const std::uint32_t gen = ++fetch_gen_;
    AmEndpoint::Payload args{};
    args[0] = page;
    args[1] = gen;
    args[2] = static_cast<std::uint32_t>(rank_);
    auto reply = co_await control_->Request(home, kFetch, args);
    if (!reply.ok()) co_return Out(reply.status());
    const mem::VirtAddr flag_va =
        cache_ + options_.total_pages * mem::kPageSize + page * 4;
    for (;;) {
      std::uint8_t b[4];
      (void)ep_->ReadBuffer(flag_va, b);
      const std::uint32_t seen = std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
                                 (std::uint32_t{b[2]} << 16) |
                                 (std::uint32_t{b[3]} << 24);
      if (seen == gen) break;
      co_await cluster_.simulator().Delay(2000);
    }
    state.valid = true;
    state.dirty = false;
  }
  if (for_write) state.dirty = true;
  co_return cached;
}

sim::Task<Status> DsmNode::Read(std::uint64_t offset, std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t pos = offset + done;
    const auto page = static_cast<std::uint32_t>(mem::PageNumber(pos));
    const std::size_t n =
        std::min(out.size() - done, mem::kPageSize - mem::PageOffset(pos));
    auto va = co_await EnsurePage(page, /*for_write=*/false);
    if (!va.ok()) co_return va.status();
    Status r = ep_->ReadBuffer(va.value() + mem::PageOffset(pos),
                               out.subspan(done, n));
    if (!r.ok()) co_return r;
    done += n;
  }
  co_return OkStatus();
}

sim::Task<Status> DsmNode::Write(std::uint64_t offset,
                                 std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t pos = offset + done;
    const auto page = static_cast<std::uint32_t>(mem::PageNumber(pos));
    const std::size_t n =
        std::min(in.size() - done, mem::kPageSize - mem::PageOffset(pos));
    auto va = co_await EnsurePage(page, /*for_write=*/true);
    if (!va.ok()) co_return va.status();
    Status w = ep_->WriteBuffer(va.value() + mem::PageOffset(pos),
                                in.subspan(done, n));
    if (!w.ok()) co_return w;
    done += n;
  }
  co_return OkStatus();
}

sim::Task<Status> DsmNode::Acquire(std::uint32_t lock_id) {
  // Spin on the lock server (rank 0). Local fast path for rank 0 keeps the
  // server from requesting to itself through the network.
  for (;;) {
    std::uint32_t granted = kBusy;
    if (rank_ == 0) {
      auto [it, inserted] = locks_.try_emplace(lock_id, 0);
      granted = (inserted || it->second == 0) ? kGranted : kBusy;
    } else {
      AmEndpoint::Payload args{};
      args[0] = lock_id;
      args[1] = static_cast<std::uint32_t>(rank_);
      auto reply = co_await control_->Request(0, kTryLock, args);
      if (!reply.ok()) co_return reply.status();
      granted = reply.value()[0];
    }
    if (granted == kGranted) break;
    ++stats_.lock_waits;
    co_await cluster_.simulator().Delay(20'000);
  }
  // Entry consistency: drop every cached remote page so reads see the
  // releaser's updates.
  for (auto& p : pages_) p.valid = false;
  co_return OkStatus();
}

sim::Task<Status> DsmNode::Release(std::uint32_t lock_id) {
  // Write back dirty remote pages with direct VMMC sends into their home
  // segments, then release the lock.
  for (std::uint32_t page = 0; page < options_.total_pages; ++page) {
    PageState& state = pages_[page];
    if (!state.dirty) continue;
    const int home = HomeOf(page);
    if (home == rank_) {
      state.dirty = false;
      continue;  // home copy was updated in place
    }
    auto proxy = home_proxy_.find(home);
    if (proxy == home_proxy_.end()) co_return FailedPrecondition("not connected");
    ++stats_.write_backs;
    Status s = co_await ep_->SendMsg(
        cache_ + page * mem::kPageSize,
        proxy->second + HomeIndex(page) * mem::kPageSize, mem::kPageSize);
    if (!s.ok()) co_return s;
    state.dirty = false;
  }

  if (rank_ == 0) {
    auto it = locks_.find(lock_id);
    if (it != locks_.end() && it->second == 0) locks_.erase(it);
    co_return OkStatus();
  }
  AmEndpoint::Payload args{};
  args[0] = lock_id;
  args[1] = static_cast<std::uint32_t>(rank_);
  auto reply = co_await control_->Request(0, kUnlock, args);
  co_return reply.status();
}

}  // namespace vmmc::dsm
