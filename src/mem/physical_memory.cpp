#include "vmmc/mem/physical_memory.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "vmmc/sim/rng.h"

namespace vmmc::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t bytes, std::uint64_t scatter_seed)
    : num_frames_(bytes / kPageSize) {
  assert(bytes % kPageSize == 0);
  free_list_.reserve(num_frames_);
  // Fill descending so pops from the back yield ascending PFNs by default.
  for (std::uint64_t i = num_frames_; i > 0; --i) free_list_.push_back(i - 1);
  if (scatter_seed != 0) {
    sim::Rng rng(scatter_seed);
    for (std::size_t i = free_list_.size(); i > 1; --i) {
      std::swap(free_list_[i - 1],
                free_list_[static_cast<std::size_t>(rng.UniformU64(i))]);
    }
  }
}

Result<Pfn> PhysicalMemory::AllocFrame() {
  if (free_list_.empty()) return ResourceExhausted("out of physical frames");
  Pfn pfn = free_list_.back();
  free_list_.pop_back();
  allocated_.insert(pfn);
  return pfn;
}

Status PhysicalMemory::FreeFrame(Pfn pfn) {
  if (!allocated_.erase(pfn)) return InvalidArgument("frame not allocated");
  backing_.erase(pfn);
  free_list_.push_back(pfn);
  return OkStatus();
}

PhysicalMemory::Frame* PhysicalMemory::BackingFor(Pfn pfn) const {
  auto it = backing_.find(pfn);
  return it == backing_.end() ? nullptr : it->second.get();
}

PhysicalMemory::Frame& PhysicalMemory::EnsureBacking(Pfn pfn) {
  auto& slot = backing_[pfn];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(0);
  }
  return *slot;
}

Status PhysicalMemory::Read(PhysAddr addr, std::span<std::uint8_t> out) const {
  if (out.empty()) return OkStatus();
  if (addr + out.size() > size_bytes() || addr + out.size() < addr) {
    return OutOfRange("physical read past end of memory");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const Pfn pfn = PageNumber(addr + done);
    const std::size_t off = PageOffset(addr + done);
    const std::size_t n = std::min(out.size() - done, kPageSize - off);
    if (const Frame* f = BackingFor(pfn)) {
      std::memcpy(out.data() + done, f->data() + off, n);
    } else {
      std::memset(out.data() + done, 0, n);
    }
    done += n;
  }
  return OkStatus();
}

Status PhysicalMemory::Write(PhysAddr addr, std::span<const std::uint8_t> in) {
  if (in.empty()) return OkStatus();
  if (addr + in.size() > size_bytes() || addr + in.size() < addr) {
    return OutOfRange("physical write past end of memory");
  }
  std::size_t done = 0;
  while (done < in.size()) {
    const Pfn pfn = PageNumber(addr + done);
    const std::size_t off = PageOffset(addr + done);
    const std::size_t n = std::min(in.size() - done, kPageSize - off);
    Frame& f = EnsureBacking(pfn);
    std::memcpy(f.data() + off, in.data() + done, n);
    done += n;
  }
  return OkStatus();
}

}  // namespace vmmc::mem
