#include "vmmc/mem/address_space.h"

#include <algorithm>
#include <cassert>

namespace vmmc::mem {

const PageTableEntry* PageTable::Find(Vpn vpn) const {
  auto it = entries_.find(vpn);
  return it == entries_.end() ? nullptr : &it->second;
}

PageTableEntry* PageTable::Find(Vpn vpn) {
  auto it = entries_.find(vpn);
  return it == entries_.end() ? nullptr : &it->second;
}

Status PageTable::Insert(Vpn vpn, PageTableEntry entry) {
  if (entries_.contains(vpn)) return AlreadyExists("vpn already mapped");
  entries_.emplace(vpn, entry);
  return OkStatus();
}

Status PageTable::Erase(Vpn vpn) {
  auto it = entries_.find(vpn);
  if (it == entries_.end()) return NotFound("vpn not mapped");
  if (it->second.pin_count > 0) {
    return FailedPrecondition("cannot unmap pinned page");
  }
  entries_.erase(it);
  return OkStatus();
}

AddressSpace::AddressSpace(PhysicalMemory& pm) : pm_(pm) {}

AddressSpace::~AddressSpace() {
  // Process teardown releases every frame; pins die with the process.
  pt_.ForEach([this](Vpn, const PageTableEntry& e) { (void)pm_.FreeFrame(e.pfn); });
  pt_.Clear();
}

Result<VirtAddr> AddressSpace::MapAnonymous(std::uint64_t len, bool writable) {
  if (len == 0) return InvalidArgument("cannot map zero bytes");
  const std::uint64_t pages = RoundUpToPage(len) / kPageSize;
  const VirtAddr base = next_map_;
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto pfn = pm_.AllocFrame();
    if (!pfn.ok()) {
      // Roll back what we mapped so far.
      for (std::uint64_t j = 0; j < i; ++j) {
        Vpn vpn = PageNumber(base) + j;
        if (const PageTableEntry* e = pt_.Find(vpn)) {
          (void)pm_.FreeFrame(e->pfn);
          (void)pt_.Erase(vpn);
        }
      }
      return pfn.status();
    }
    PageTableEntry entry;
    entry.pfn = pfn.value();
    entry.writable = writable;
    Status s = pt_.Insert(PageNumber(base) + i, entry);
    assert(s.ok());
    (void)s;
  }
  next_map_ = base + pages * kPageSize;
  return base;
}

void AddressSpace::AddReleaseListener(ReleaseListener fn) {
  release_listeners_.push_back(std::move(fn));
}

void AddressSpace::NotifyRelease(VirtAddr va, std::uint64_t len) {
  for (const auto& fn : release_listeners_) fn(va, len);
}

Status AddressSpace::Unmap(VirtAddr va, std::uint64_t len) {
  if (PageOffset(va) != 0) return InvalidArgument("unmap base not page aligned");
  // Let registration caches drop idle pins over the range before the
  // pinned-page validation below; pins still held after this are live
  // (exports, active registrations) and veto the unmap.
  NotifyRelease(va, len);
  const std::uint64_t pages = RoundUpToPage(len) / kPageSize;
  // Validate first so the operation is atomic.
  for (std::uint64_t i = 0; i < pages; ++i) {
    const PageTableEntry* e = pt_.Find(PageNumber(va) + i);
    if (e == nullptr) return NotFound("unmap of unmapped page");
    if (e->pin_count > 0) return FailedPrecondition("unmap of pinned page");
  }
  for (std::uint64_t i = 0; i < pages; ++i) {
    Vpn vpn = PageNumber(va) + i;
    const PageTableEntry* e = pt_.Find(vpn);
    (void)pm_.FreeFrame(e->pfn);
    (void)pt_.Erase(vpn);
  }
  return OkStatus();
}

Result<PhysAddr> AddressSpace::Translate(VirtAddr va) const {
  const PageTableEntry* e = pt_.Find(PageNumber(va));
  if (e == nullptr) return NotFound("virtual address not mapped");
  return PageAddr(e->pfn) + PageOffset(va);
}

Result<PhysAddr> AddressSpace::TranslatePinned(VirtAddr va) const {
  const PageTableEntry* e = pt_.Find(PageNumber(va));
  if (e == nullptr) return NotFound("virtual address not mapped");
  if (e->pin_count == 0) return FailedPrecondition("page not pinned");
  return PageAddr(e->pfn) + PageOffset(va);
}

Status AddressSpace::Read(VirtAddr va, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    auto pa = Translate(va + done);
    if (!pa.ok()) return pa.status();
    const std::size_t n =
        std::min(out.size() - done, kPageSize - PageOffset(va + done));
    Status s = pm_.Read(pa.value(), out.subspan(done, n));
    if (!s.ok()) return s;
    done += n;
  }
  return OkStatus();
}

Status AddressSpace::Write(VirtAddr va, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const PageTableEntry* e = pt_.Find(PageNumber(va + done));
    if (e == nullptr) return NotFound("virtual address not mapped");
    if (!e->writable) return PermissionDenied("write to read-only page");
    const std::size_t n =
        std::min(in.size() - done, kPageSize - PageOffset(va + done));
    Status s = pm_.Write(PageAddr(e->pfn) + PageOffset(va + done),
                         in.subspan(done, n));
    if (!s.ok()) return s;
    done += n;
  }
  return OkStatus();
}

Result<std::uint32_t> AddressSpace::ReadU32(VirtAddr va) const {
  std::uint8_t buf[4];
  Status s = Read(va, buf);
  if (!s.ok()) return s;
  return std::uint32_t{buf[0]} | (std::uint32_t{buf[1]} << 8) |
         (std::uint32_t{buf[2]} << 16) | (std::uint32_t{buf[3]} << 24);
}

Status AddressSpace::WriteU32(VirtAddr va, std::uint32_t value) {
  std::uint8_t buf[4] = {
      static_cast<std::uint8_t>(value),
      static_cast<std::uint8_t>(value >> 8),
      static_cast<std::uint8_t>(value >> 16),
      static_cast<std::uint8_t>(value >> 24),
  };
  return Write(va, buf);
}

Status AddressSpace::Pin(VirtAddr va, std::uint64_t len) {
  if (len == 0) return OkStatus();
  const Vpn first = PageNumber(va);
  const Vpn last = PageNumber(va + len - 1);
  for (Vpn vpn = first; vpn <= last; ++vpn) {
    if (!pt_.Contains(vpn)) return NotFound("pin of unmapped page");
  }
  for (Vpn vpn = first; vpn <= last; ++vpn) ++pt_.Find(vpn)->pin_count;
  return OkStatus();
}

Status AddressSpace::Unpin(VirtAddr va, std::uint64_t len) {
  if (len == 0) return OkStatus();
  const Vpn first = PageNumber(va);
  const Vpn last = PageNumber(va + len - 1);
  for (Vpn vpn = first; vpn <= last; ++vpn) {
    PageTableEntry* e = pt_.Find(vpn);
    if (e == nullptr || e->pin_count == 0) {
      return FailedPrecondition("unpin of page that is not pinned");
    }
  }
  for (Vpn vpn = first; vpn <= last; ++vpn) --pt_.Find(vpn)->pin_count;
  return OkStatus();
}

Result<VirtAddr> AddressSpace::HeapAlloc(std::uint64_t len, std::uint64_t align) {
  if (len == 0) return InvalidArgument("zero-size allocation");
  if (align == 0 || (align & (align - 1)) != 0) {
    return InvalidArgument("alignment must be a power of two");
  }
  len = (len + 15) & ~std::uint64_t{15};  // keep blocks 16-byte granular

  // First fit over the free list, accounting for alignment padding.
  for (auto it = heap_free_.begin(); it != heap_free_.end(); ++it) {
    const VirtAddr block = it->first;
    const std::uint64_t size = it->second;
    const VirtAddr aligned = (block + align - 1) & ~(align - 1);
    const std::uint64_t pad = aligned - block;
    if (size < pad + len) continue;
    heap_free_.erase(it);
    if (pad > 0) heap_free_.emplace(block, pad);
    if (size > pad + len) heap_free_.emplace(aligned + len, size - pad - len);
    heap_allocs_.emplace(aligned, len);
    return aligned;
  }

  // Grow the arena. Map enough pages for the worst-case aligned block.
  const std::uint64_t want = RoundUpToPage(len + align);
  const std::uint64_t pages = want / kPageSize;
  for (std::uint64_t i = 0; i < pages; ++i) {
    auto pfn = pm_.AllocFrame();
    if (!pfn.ok()) return pfn.status();
    PageTableEntry entry;
    entry.pfn = pfn.value();
    Status s = pt_.Insert(PageNumber(heap_end_) + i, entry);
    assert(s.ok());
    (void)s;
  }
  const VirtAddr block = heap_end_;
  heap_end_ += want;
  const VirtAddr aligned = (block + align - 1) & ~(align - 1);
  const std::uint64_t pad = aligned - block;
  if (pad > 0) heap_free_.emplace(block, pad);
  if (want > pad + len) heap_free_.emplace(aligned + len, want - pad - len);
  heap_allocs_.emplace(aligned, len);
  return aligned;
}

Status AddressSpace::HeapFree(VirtAddr va) {
  auto it = heap_allocs_.find(va);
  if (it == heap_allocs_.end()) return InvalidArgument("free of unallocated block");
  VirtAddr addr = va;
  std::uint64_t size = it->second;
  // Heap pages stay mapped, but the block may be reallocated immediately:
  // any cached registration over it is stale from here on.
  NotifyRelease(va, size);
  heap_allocs_.erase(it);

  // Coalesce with neighbours.
  auto next = heap_free_.lower_bound(addr);
  if (next != heap_free_.end() && addr + size == next->first) {
    size += next->second;
    next = heap_free_.erase(next);
  }
  if (next != heap_free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == addr) {
      addr = prev->first;
      size += prev->second;
      heap_free_.erase(prev);
    }
  }
  heap_free_.emplace(addr, size);
  return OkStatus();
}

}  // namespace vmmc::mem
