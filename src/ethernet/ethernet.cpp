#include "vmmc/ethernet/ethernet.h"

#include <cassert>

#include "vmmc/sim/parallel.h"

namespace vmmc::ethernet {

Result<sim::Mailbox<Datagram>*> Interface::Bind(std::uint16_t port) {
  auto& slot = ports_[port];
  if (slot != nullptr) return AlreadyExists("port already bound");
  slot = std::make_unique<sim::Mailbox<Datagram>>(sim_);
  return slot.get();
}

Status Interface::Unbind(std::uint16_t port) {
  return ports_.erase(port) > 0 ? OkStatus() : NotFound("port not bound");
}

sim::Process Interface::SendTo(int dst_node, std::uint16_t dst_port,
                               std::uint16_t src_port,
                               std::vector<std::uint8_t> payload) {
  // Kernel socket path (syscall + UDP/IP stack).
  co_await sim_.Delay(segment_.params().udp_stack);
  Datagram d;
  d.src_node = node_id_;
  d.dst_node = dst_node;
  d.dst_port = dst_port;
  d.src_port = src_port;
  d.payload = std::move(payload);
  sim::ParallelEngine* eng = sim_.engine();
  sim::Simulator& seg_sim = segment_.simulator();
  if (eng != nullptr && &seg_sim != &sim_) {
    // Partitioned: hand the datagram to the segment LP and complete — a
    // non-blocking send. Serialization and medium contention are modelled
    // on the segment's shard from the handoff instant onward.
    Segment* seg = &segment_;
    eng->PostRemote(sim_.shard_id(), seg_sim.shard_id(), sim_.now(),
                    [seg, dg = std::move(d)]() mutable {
                      seg->simulator().Spawn(seg->Transmit(std::move(dg)));
                    });
    co_return;
  }
  co_await segment_.Transmit(std::move(d));
}

void Interface::Deliver(Datagram dgram) {
  auto it = ports_.find(dgram.dst_port);
  if (it == ports_.end()) {
    ++dropped_no_port_;
    return;
  }
  ++delivered_;
  it->second->Put(std::move(dgram));
}

Interface& Segment::AddInterface(int node_id) {
  return AddInterface(node_id, sim_);
}

Interface& Segment::AddInterface(int node_id, sim::Simulator& sim) {
  assert(FindInterface(node_id) == nullptr && "duplicate node id");
  interfaces_.push_back(std::make_unique<Interface>(sim, *this, node_id));
  return *interfaces_.back();
}

Interface* Segment::FindInterface(int node_id) {
  for (auto& i : interfaces_) {
    if (i->node_id() == node_id) return i.get();
  }
  return nullptr;
}

sim::Process Segment::Transmit(Datagram dgram) {
  auto lock = co_await sim::ScopedAcquire(medium_);
  const std::uint64_t size = dgram.payload.size();
  const std::uint64_t frames = size == 0 ? 1 : (size + params_.mtu - 1) / params_.mtu;
  co_await sim_.Delay(static_cast<sim::Tick>(frames) * params_.frame_latency +
                      sim::NsForBytes(size, params_.bandwidth_mb_s));
  Interface* dst = FindInterface(dgram.dst_node);
  // Unknown destinations vanish, as on a real wire.
  if (dst == nullptr) co_return;
  sim::ParallelEngine* eng = sim_.engine();
  if (eng != nullptr && &dst->simulator() != &sim_) {
    // Back to the destination node's shard (zero-lookahead edge: arrives
    // at its next window boundary).
    eng->PostRemote(sim_.shard_id(), dst->simulator().shard_id(), sim_.now(),
                    [dst, dg = std::move(dgram)]() mutable {
                      dst->Deliver(std::move(dg));
                    });
    co_return;
  }
  dst->Deliver(std::move(dgram));
}

}  // namespace vmmc::ethernet
