#include "vmmc/ethernet/ethernet.h"

#include <cassert>

namespace vmmc::ethernet {

Result<sim::Mailbox<Datagram>*> Interface::Bind(std::uint16_t port) {
  auto& slot = ports_[port];
  if (slot != nullptr) return AlreadyExists("port already bound");
  slot = std::make_unique<sim::Mailbox<Datagram>>(sim_);
  return slot.get();
}

Status Interface::Unbind(std::uint16_t port) {
  return ports_.erase(port) > 0 ? OkStatus() : NotFound("port not bound");
}

sim::Process Interface::SendTo(int dst_node, std::uint16_t dst_port,
                               std::uint16_t src_port,
                               std::vector<std::uint8_t> payload) {
  // Kernel socket path (syscall + UDP/IP stack).
  co_await sim_.Delay(segment_.params().udp_stack);
  Datagram d;
  d.src_node = node_id_;
  d.dst_node = dst_node;
  d.dst_port = dst_port;
  d.src_port = src_port;
  d.payload = std::move(payload);
  co_await segment_.Transmit(std::move(d));
}

void Interface::Deliver(Datagram dgram) {
  auto it = ports_.find(dgram.dst_port);
  if (it == ports_.end()) {
    ++dropped_no_port_;
    return;
  }
  ++delivered_;
  it->second->Put(std::move(dgram));
}

Interface& Segment::AddInterface(int node_id) {
  assert(FindInterface(node_id) == nullptr && "duplicate node id");
  interfaces_.push_back(std::make_unique<Interface>(sim_, *this, node_id));
  return *interfaces_.back();
}

Interface* Segment::FindInterface(int node_id) {
  for (auto& i : interfaces_) {
    if (i->node_id() == node_id) return i.get();
  }
  return nullptr;
}

sim::Process Segment::Transmit(Datagram dgram) {
  auto lock = co_await sim::ScopedAcquire(medium_);
  const std::uint64_t size = dgram.payload.size();
  const std::uint64_t frames = size == 0 ? 1 : (size + params_.mtu - 1) / params_.mtu;
  co_await sim_.Delay(static_cast<sim::Tick>(frames) * params_.frame_latency +
                      sim::NsForBytes(size, params_.bandwidth_mb_s));
  Interface* dst = FindInterface(dgram.dst_node);
  if (dst != nullptr) dst->Deliver(std::move(dgram));
  // Unknown destinations vanish, as on a real wire.
}

}  // namespace vmmc::ethernet
