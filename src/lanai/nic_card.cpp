#include "vmmc/lanai/nic_card.h"

#include <cassert>
#include <string>

namespace vmmc::lanai {

Status NicCard::AttachToFabric(int switch_id, int port) {
  if (nic_id_ >= 0) return FailedPrecondition("already attached");
  // Registering sim_ makes the fabric shard-aware: on a partitioned
  // cluster this NIC's inbound link delivers across shards; on a
  // single-simulator cluster the two simulators coincide.
  nic_id_ = fabric_.AddNic(this, sim_);
  Status s = fabric_.ConnectNic(nic_id_, switch_id, port);
  if (!s.ok()) {
    nic_id_ = -1;
    return s;
  }
  BindObs();
  return s;
}

void NicCard::BindObs() {
  const std::string node = "node" + std::to_string(nic_id_);
  obs::Registry& m = sim_.metrics();
  auto bind_engine = [&](EngineObs& e, const std::string& engine) {
    const std::string prefix = node + ".dma." + engine + ".";
    e.ops = &m.GetCounter(prefix + "ops");
    e.bytes = &m.GetCounter(prefix + "bytes");
    e.busy_ns = &m.GetCounter(prefix + "busy_ns");
    e.utilization = &m.GetGauge(prefix + "utilization");
    e.track = sim_.tracer().RegisterTrack(node + ".dma." + engine);
  };
  bind_engine(host_dma_obs_, "host");
  bind_engine(net_tx_obs_, "nettx");
  cpu_.BindMetrics(&m.GetCounter(node + ".lanai.exec_ns"));
  packets_sent_m_ = &m.GetCounter(node + ".nic.packets_sent");
  packets_received_m_ = &m.GetCounter(node + ".nic.packets_received");
  crc_errors_m_ = &m.GetCounter(node + ".nic.crc_errors");
  obs_bound_ = true;
}

// Closes out one engine occupancy interval: op/byte/busy counters plus the
// derived utilization gauge (busy time over total sim time so far).
void NicCard::FinishEngineOp(EngineObs& e, sim::Tick t0, std::uint64_t bytes) {
  if (!obs_bound_) return;
  const sim::Tick now = sim_.now();
  e.ops->Inc();
  e.bytes->Inc(bytes);
  e.busy_ns->Inc(static_cast<std::uint64_t>(now - t0));
  if (now > 0) {
    e.utilization->Set(now, static_cast<double>(e.busy_ns->value()) /
                                static_cast<double>(now));
  }
}

void NicCard::LoadLcp(std::unique_ptr<Lcp> lcp) {
  lcp_ = std::move(lcp);
  Lcp* raw = lcp_.get();
  sim_.Spawn(raw->Run(*this));
}

void NicCard::OnPacket(myrinet::Packet packet, sim::Tick tail_time,
                       myrinet::Link* /*from*/) {
  // The packet is complete (and its CRC checkable) only once the tail has
  // been DMAed into SRAM by the receive engine.
  const sim::Tick done =
      tail_time + params_.lanai.net_dma_init - sim_.now();
  sim_.In(done > 0 ? done : 0, [this, pkt = std::move(packet)]() mutable {
    ReceivedPacket rp;
    rp.crc_ok = pkt.CrcOk();
    if (!rp.crc_ok) {
      ++crc_errors_;
      if (crc_errors_m_ != nullptr) crc_errors_m_->Inc();
    }
    ++packets_received_;
    if (packets_received_m_ != nullptr) packets_received_m_->Inc();
    rp.packet = std::move(pkt);
    rx_queue_.Put(std::move(rp));
    NotifyWork();
  });
}

void NicCard::OnPacketDropped(const myrinet::Packet& packet) {
  if (lcp_ != nullptr) lcp_->OnDropNotice(packet);
}

sim::Process NicCard::NetSend(myrinet::Packet packet) {
  auto lock = co_await sim::ScopedAcquire(net_tx_engine_);
  auto span = obs_bound_ ? sim_.tracer().Scope(net_tx_obs_.track, "net_send")
                         : obs::Tracer::Span();
  const sim::Tick t0 = sim_.now();
  co_await sim_.Delay(params_.lanai.net_dma_init);
  const std::size_t wire = packet.wire_bytes();
  Status s = fabric_.Inject(nic_id_, std::move(packet));
  assert(s.ok() && "NIC not attached to fabric");
  (void)s;
  ++packets_sent_;
  if (packets_sent_m_ != nullptr) packets_sent_m_->Inc();
  // The tx engine streams from SRAM for the serialization time; the link
  // model accounts occupancy on the wire, the engine is held equally long
  // so back-to-back sends pipeline correctly.
  co_await sim_.Delay(sim::NsForBytes(wire, params_.net.link_mb_s));
  FinishEngineOp(net_tx_obs_, t0, wire);
}

sim::Process NicCard::HostDmaRead(mem::PhysAddr src, std::vector<std::uint8_t>& out,
                                  std::size_t len) {
  auto lock = co_await sim::ScopedAcquire(host_dma_engine_);
  auto span = obs_bound_
                  ? sim_.tracer().Scope(host_dma_obs_.track, "host_dma_read")
                  : obs::Tracer::Span();
  const sim::Tick t0 = sim_.now();
  // Injected DMA-engine stall (sim/fault.h): the engine holds the transfer
  // until the stall window closes.
  if (const sim::Tick stall = sim_.faults().DmaStallDelay(nic_id_); stall > 0) {
    co_await sim_.Delay(stall);
  }
  co_await machine_.pci().Dma(len);
  out.resize(len);
  Status s = machine_.memory().Read(src, out);
  assert(s.ok() && "host DMA read from bad physical address");
  (void)s;
  FinishEngineOp(host_dma_obs_, t0, len);
}

sim::Process NicCard::HostDmaRead(mem::PhysAddr src,
                                  std::span<std::uint8_t> out) {
  auto lock = co_await sim::ScopedAcquire(host_dma_engine_);
  auto span = obs_bound_
                  ? sim_.tracer().Scope(host_dma_obs_.track, "host_dma_read")
                  : obs::Tracer::Span();
  const sim::Tick t0 = sim_.now();
  if (const sim::Tick stall = sim_.faults().DmaStallDelay(nic_id_); stall > 0) {
    co_await sim_.Delay(stall);
  }
  co_await machine_.pci().Dma(out.size());
  Status s = machine_.memory().Read(src, out);
  assert(s.ok() && "host DMA read from bad physical address");
  (void)s;
  FinishEngineOp(host_dma_obs_, t0, out.size());
}

sim::Process NicCard::HostDmaWrite(mem::PhysAddr dst,
                                   std::span<const std::uint8_t> in) {
  auto lock = co_await sim::ScopedAcquire(host_dma_engine_);
  auto span = obs_bound_
                  ? sim_.tracer().Scope(host_dma_obs_.track, "host_dma_write")
                  : obs::Tracer::Span();
  const sim::Tick t0 = sim_.now();
  if (const sim::Tick stall = sim_.faults().DmaStallDelay(nic_id_); stall > 0) {
    co_await sim_.Delay(stall);
  }
  co_await machine_.pci().Dma(in.size());
  Status s = machine_.memory().Write(dst, in);
  assert(s.ok() && "host DMA write to bad physical address");
  (void)s;
  FinishEngineOp(host_dma_obs_, t0, in.size());
}

void NicCard::RaiseHostInterrupt() {
  machine_.kernel().RaiseIrq(kIrq);
}

}  // namespace vmmc::lanai
