#include "vmmc/lanai/nic_card.h"

#include <cassert>

namespace vmmc::lanai {

Status NicCard::AttachToFabric(int switch_id, int port) {
  if (nic_id_ >= 0) return FailedPrecondition("already attached");
  nic_id_ = fabric_.AddNic(this);
  Status s = fabric_.ConnectNic(nic_id_, switch_id, port);
  if (!s.ok()) nic_id_ = -1;
  return s;
}

void NicCard::LoadLcp(std::unique_ptr<Lcp> lcp) {
  lcp_ = std::move(lcp);
  Lcp* raw = lcp_.get();
  sim_.Spawn(raw->Run(*this));
}

void NicCard::OnPacket(myrinet::Packet packet, sim::Tick tail_time) {
  // The packet is complete (and its CRC checkable) only once the tail has
  // been DMAed into SRAM by the receive engine.
  const sim::Tick done =
      tail_time + params_.lanai.net_dma_init - sim_.now();
  sim_.In(done > 0 ? done : 0, [this, pkt = std::move(packet)]() mutable {
    ReceivedPacket rp;
    rp.crc_ok = pkt.CrcOk();
    if (!rp.crc_ok) ++crc_errors_;
    ++packets_received_;
    rp.packet = std::move(pkt);
    rx_queue_.Put(std::move(rp));
    NotifyWork();
  });
}

sim::Process NicCard::NetSend(myrinet::Packet packet) {
  auto lock = co_await sim::ScopedAcquire(net_tx_engine_);
  co_await sim_.Delay(params_.lanai.net_dma_init);
  const std::size_t wire = packet.wire_bytes();
  Status s = fabric_.Inject(nic_id_, std::move(packet));
  assert(s.ok() && "NIC not attached to fabric");
  (void)s;
  ++packets_sent_;
  // The tx engine streams from SRAM for the serialization time; the link
  // model accounts occupancy on the wire, the engine is held equally long
  // so back-to-back sends pipeline correctly.
  co_await sim_.Delay(sim::NsForBytes(wire, params_.net.link_mb_s));
}

sim::Process NicCard::HostDmaRead(mem::PhysAddr src, std::vector<std::uint8_t>& out,
                                  std::size_t len) {
  auto lock = co_await sim::ScopedAcquire(host_dma_engine_);
  co_await machine_.pci().Dma(len);
  out.resize(len);
  Status s = machine_.memory().Read(src, out);
  assert(s.ok() && "host DMA read from bad physical address");
  (void)s;
}

sim::Process NicCard::HostDmaWrite(mem::PhysAddr dst,
                                   std::span<const std::uint8_t> in) {
  auto lock = co_await sim::ScopedAcquire(host_dma_engine_);
  co_await machine_.pci().Dma(in.size());
  Status s = machine_.memory().Write(dst, in);
  assert(s.ok() && "host DMA write to bad physical address");
  (void)s;
}

void NicCard::RaiseHostInterrupt() {
  machine_.kernel().RaiseIrq(kIrq);
}

}  // namespace vmmc::lanai
