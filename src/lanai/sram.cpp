#include "vmmc/lanai/sram.h"

namespace vmmc::lanai {

Result<std::uint32_t> Sram::Allocate(const std::string& name, std::uint32_t bytes) {
  if (bytes == 0) return InvalidArgument("zero-size SRAM allocation");
  // Keep regions 8-byte aligned like the real LCP's data structures.
  bytes = (bytes + 7u) & ~7u;
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < bytes) continue;
    const std::uint32_t offset = it->first;
    const std::uint32_t remaining = it->second - bytes;
    free_.erase(it);
    if (remaining > 0) free_.emplace(offset + bytes, remaining);
    regions_.emplace(offset, Region{name, bytes});
    used_ += bytes;
    return offset;
  }
  return ResourceExhausted("LANai SRAM exhausted allocating '" + name + "'");
}

Status Sram::Free(std::uint32_t offset) {
  auto it = regions_.find(offset);
  if (it == regions_.end()) return InvalidArgument("free of unknown SRAM region");
  std::uint32_t addr = offset;
  std::uint32_t len = it->second.bytes;
  used_ -= len;
  regions_.erase(it);

  // Coalesce with free neighbours.
  auto next = free_.lower_bound(addr);
  if (next != free_.end() && addr + len == next->first) {
    len += next->second;
    next = free_.erase(next);
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == addr) {
      addr = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(addr, len);
  return OkStatus();
}

std::string Sram::RegionName(std::uint32_t offset) const {
  auto it = regions_.find(offset);
  return it == regions_.end() ? std::string() : it->second.name;
}

}  // namespace vmmc::lanai
