#include "vmmc/util/log.h"

#include <atomic>

namespace vmmc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
const std::int64_t* g_sim_now = nullptr;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel ParseLogLevel(std::string_view name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

void SetLogSimClock(const std::int64_t* now) { g_sim_now = now; }

const std::int64_t* GetLogSimClock() { return g_sim_now; }

namespace detail {
void EmitLog(LogLevel level, std::string_view component, const std::string& msg) {
  if (g_sim_now != nullptr) {
    std::fprintf(stderr, "[@%lldns] [%.*s] %.*s: %s\n",
                 static_cast<long long>(*g_sim_now),
                 static_cast<int>(LevelName(level).size()),
                 LevelName(level).data(), static_cast<int>(component.size()),
                 component.data(), msg.c_str());
    return;
  }
  std::fprintf(stderr, "[%.*s] %.*s: %s\n", static_cast<int>(LevelName(level).size()),
               LevelName(level).data(), static_cast<int>(component.size()),
               component.data(), msg.c_str());
}
}  // namespace detail

}  // namespace vmmc
