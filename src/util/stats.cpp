#include "vmmc/util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace vmmc {

void OnlineStats::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::MergeFrom(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ == 0) return 0.0;
  // m2_ can go epsilon-negative through floating-point cancellation.
  return std::max(0.0, m2_ / static_cast<double>(count_));
}

double OnlineStats::sample_variance() const {
  if (count_ < 2) return 0.0;
  return std::max(0.0, m2_ / static_cast<double>(count_ - 1));
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Add(double x) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  counts_[static_cast<std::size_t>(it - bounds_.begin())]++;
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // Empty buckets carry no mass: skip them so a quantile never lands in
    // a bucket no sample fell into (q=0 used to report the first bucket's
    // bound even when every sample sat far above it).
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double lo = (i == 0) ? 0.0 : bounds_[i - 1];
      const double hi = (i < bounds_.size()) ? bounds_[i] : lo * 2.0 + 1.0;
      const double frac = std::clamp(
          (target - cum) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + 2;
  out.append(rule > 2 ? rule - 2 : rule, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatSize(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluM",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluK",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace vmmc
