#include "vmmc/util/buffer.h"

namespace vmmc::util {

void Buffer::FreeHeapBlock(Block* b) { ::operator delete(b); }

}  // namespace vmmc::util
