#include "vmmc/sim/fault.h"

#include <algorithm>

namespace vmmc::sim {

void FaultInjector::Configure(FaultPlan plan) {
  plan_ = std::move(plan);
  rng_.Seed(plan_.seed);
  active_ = !plan_.empty();
  if (active_ && metrics_ != nullptr && bitflips_m_ == nullptr) {
    bitflips_m_ = &metrics_->GetCounter("fault.injected.bitflips");
    drops_m_ = &metrics_->GetCounter("fault.injected.drops");
    delays_m_ = &metrics_->GetCounter("fault.injected.delays");
    delay_ns_m_ = &metrics_->GetCounter("fault.injected.delay_ns");
    dma_stalls_m_ = &metrics_->GetCounter("fault.injected.dma_stalls");
    dma_stall_ns_m_ = &metrics_->GetCounter("fault.injected.dma_stall_ns");
  }
}

FaultInjector::LinkVerdict FaultInjector::OnLinkTransmit(
    const LinkSite& site, util::Buffer& payload) {
  LinkVerdict verdict;
  if (!active_) return verdict;
  for (const LinkFaultRule& rule : plan_.links) {
    if (rule.link_id != -1 && rule.link_id != site.link_id) continue;
    if (rule.switch_id != -1 && rule.switch_id != site.switch_id) continue;
    if (rule.port != -1 && rule.port != site.port) continue;
    if (rule.src_nic != -1 && rule.src_nic != site.src_nic) continue;
    // Drop decided first: a lost packet can be neither corrupted nor
    // delayed, and skipping the other draws keeps each rule's consumption
    // of the Rng stream self-describing.
    if (rule.drop_rate > 0.0 && rng_.Bernoulli(rule.drop_rate)) {
      verdict.drop = true;
      drops_m_->Inc();
      return verdict;
    }
    if (rule.bitflip_rate > 0.0 && !payload.empty() &&
        rng_.Bernoulli(rule.bitflip_rate)) {
      const std::size_t i =
          static_cast<std::size_t>(rng_.UniformU64(payload.size()));
      // MutableData un-shares (copy-on-write): the bit flip lands on this
      // in-flight packet only, never on the sender's retx-pool copy.
      payload.MutableData()[i] ^=
          static_cast<std::uint8_t>(1u << rng_.UniformU64(8));
      verdict.corrupted = true;
      bitflips_m_->Inc();
    }
    if (rule.delay_rate > 0.0 && rule.max_delay > 0 &&
        rng_.Bernoulli(rule.delay_rate)) {
      const Tick jitter = 1 + static_cast<Tick>(rng_.UniformU64(
                                  static_cast<std::uint64_t>(rule.max_delay)));
      verdict.extra_delay += jitter;
      delays_m_->Inc();
      delay_ns_m_->Inc(static_cast<std::uint64_t>(jitter));
    }
  }
  return verdict;
}

Tick FaultInjector::DmaStallDelay(int node_id) {
  if (!active_) return 0;
  const Tick now = *now_;
  Tick until = now;
  for (const DmaStallRule& rule : plan_.dma_stalls) {
    if (rule.node_id != -1 && rule.node_id != node_id) continue;
    if (rule.duration <= 0 || now < rule.start) continue;
    const Tick since = now - rule.start;
    Tick window_start;
    if (rule.period > 0) {
      window_start = rule.start + (since / rule.period) * rule.period;
    } else {
      window_start = rule.start;
    }
    if (now < window_start + rule.duration) {
      until = std::max(until, window_start + rule.duration);
    }
  }
  const Tick wait = until - now;
  if (wait > 0) {
    dma_stalls_m_->Inc();
    dma_stall_ns_m_->Inc(static_cast<std::uint64_t>(wait));
  }
  return wait;
}

}  // namespace vmmc::sim
