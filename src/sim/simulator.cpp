#include "vmmc/sim/simulator.h"

#include <algorithm>
#include <mutex>

#include "vmmc/util/log.h"

namespace vmmc::sim {

// The most recently constructed simulator provides the log timestamp
// context; nested/concurrent simulators in one process (tests) simply
// hand it back when they go away.
Simulator::Simulator() { SetLogSimClock(&now_); }

namespace {

// Pool blocks outlive individual Simulators: short-lived simulators
// (benches, tests) would otherwise free megabytes of node storage on
// every teardown, which glibc trims back to the kernel and the next
// Simulator pays to fault in and zero again. The cache is process-wide
// while shard simulators run on worker threads, hence the mutex — it is
// only touched on construction/teardown/refill, never per event.
std::mutex& BlockCacheMutex() {
  static std::mutex m;
  return m;
}
std::vector<std::unique_ptr<unsigned char[]>>& BlockCache() {
  static std::vector<std::unique_ptr<unsigned char[]>> cache;
  return cache;
}
constexpr std::size_t kBlockCacheMax = 64;  // ~5 MB of retained blocks

}  // namespace

Simulator::~Simulator() {
  if (GetLogSimClock() == &now_) SetLogSimClock(nullptr);
  // Destroy the captures of still-queued callbacks; recycled nodes hold
  // none. Node memory is raw pool storage (nodes are placement-new'd and
  // never individually destroyed), recycled with the blocks below.
  for (const HeapSlot& s : heap_) s.node->fn.Reset();
  for (EventNode* n = fifo_head_; n != nullptr; n = n->next) n->fn.Reset();
  for (EventNode* n = tail_head_; n != nullptr; n = n->next) n->fn.Reset();
  std::lock_guard<std::mutex> lock(BlockCacheMutex());
  auto& cache = BlockCache();
  for (auto& block : pool_blocks_) {
    if (cache.size() >= kBlockCacheMax) break;
    cache.push_back(std::move(block));
  }
}

void Simulator::BindShard(ParallelEngine* engine, int shard_id) {
  engine_ = engine;
  shard_id_ = shard_id;
  // now_ must not feed the process-global log clock once other shards can
  // advance concurrently on other threads.
  if (GetLogSimClock() == &now_) SetLogSimClock(nullptr);
}

void Simulator::RefillPool() {
  std::unique_lock<std::mutex> lock(BlockCacheMutex());
  auto& cache = BlockCache();
  if (!cache.empty()) {
    pool_blocks_.push_back(std::move(cache.back()));
    cache.pop_back();
  } else {
    lock.unlock();
    // for_overwrite: the block is raw storage for placement-new'd nodes;
    // value-initializing it would memset the whole block for nothing.
    pool_blocks_.push_back(std::make_unique_for_overwrite<unsigned char[]>(
        kPoolBlockNodes * sizeof(EventNode)));
  }
  wilderness_ = reinterpret_cast<EventNode*>(pool_blocks_.back().get());
  wilderness_end_ = wilderness_ + kPoolBlockNodes;
}

void Simulator::Spawn(Process p) {
  assert(p.valid());
  // A Process suspends at its initial suspend point and only runs once the
  // queue dispatches it, so it cannot have finished before being scheduled.
  assert(!p.finished());
  Process::Handle h = p.Detach();
  EventNode* n = AllocNode(now_);
  n->kind = EventNode::Kind::kSpawn;
  n->coro = h.address();
  Enqueue(n);
}

Simulator::EventNode* Simulator::HeapPopTop() {
  EventNode* top = heap_.front().node;
  const HeapSlot last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n != 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = kHeapArity * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + kHeapArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (SlotBefore(heap_[c], heap_[best])) best = c;
      }
      if (!SlotBefore(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return top;
}

Simulator::EventNode* Simulator::PopNext() {
  // Global (time, seq) minimum across the three tiers. Tail and heap hold
  // the strictly-future pushes; on equal times their seqs decide. FIFO
  // entries were allocated at now() itself, i.e. after any tail/heap
  // event that has since reached time == now(), so the FIFO only wins
  // when neither of the other tiers is due at the current time — this
  // keeps the order bit-identical to one (time, seq) heap.
  EventNode* c = tail_head_;
  bool from_tail = c != nullptr;
  if (!heap_.empty()) {
    const HeapSlot& top = heap_.front();
    if (c == nullptr || top.time < c->time ||
        (top.time == c->time && top.seq < c->seq)) {
      c = top.node;
      from_tail = false;
    }
  }
  if (fifo_head_ != nullptr && (c == nullptr || c->time != now_)) {
    EventNode* n = fifo_head_;
    fifo_head_ = n->next;
    if (fifo_head_ == nullptr) fifo_tail_ = nullptr;
    return n;
  }
  if (c == nullptr) return nullptr;
  if (from_tail) {
    tail_head_ = c->next;
    if (tail_head_ == nullptr) tail_tail_ = nullptr;
    return c;
  }
  return HeapPopTop();
}

void Simulator::Dispatch(EventNode* n) {
  switch (n->kind) {
    case EventNode::Kind::kResume:
      std::coroutine_handle<>::from_address(n->coro).resume();
      break;
    case EventNode::Kind::kSpawn: {
      auto h = Process::Handle::from_address(n->coro);
      if (!h.promise().started) {
        h.promise().started = true;
        h.resume();
      }
      break;
    }
    case EventNode::Kind::kCallback:
      n->fn.Invoke();
      n->fn.Reset();
      break;
  }
  FreeNode(n);
}

bool Simulator::Step() {
  EventNode* n = PopNext();
  if (n == nullptr) return false;
  assert(n->time >= now_);
  now_ = n->time;
  ++processed_;
  Dispatch(n);
  return true;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

std::uint64_t Simulator::RunWindow(Tick end) {
  std::uint64_t n = 0;
  for (;;) {
    if (fifo_head_ != nullptr) {  // now-FIFO events are at now() < end
      Step();
      ++n;
      continue;
    }
    const bool tail_due = tail_head_ != nullptr && tail_head_->time < end;
    const bool heap_due = !heap_.empty() && heap_.front().time < end;
    if (!tail_due && !heap_due) break;
    Step();
    ++n;
  }
  // Advance to the window boundary even when idle. Every shard's clock
  // lands on the same boundary each iteration, so shard clocks never
  // diverge: work injected between engine runs (spawns at a shard-local
  // now()) is at a consistent global instant, and a cross-shard event
  // that respects the lookahead is never behind its receiver's clock.
  if (end > now_) now_ = end;
  return n;
}

void Simulator::RunUntilTime(Tick t) {
  assert(t >= now_);
  for (;;) {
    if (fifo_head_ != nullptr) {  // now-FIFO events are at now() <= t
      Step();
      continue;
    }
    const bool tail_due = tail_head_ != nullptr && tail_head_->time <= t;
    const bool heap_due = !heap_.empty() && heap_.front().time <= t;
    if (!tail_due && !heap_due) break;
    Step();
  }
  now_ = t;
}

}  // namespace vmmc::sim
