#include "vmmc/sim/simulator.h"

#include "vmmc/util/log.h"

namespace vmmc::sim {

// The most recently constructed simulator provides the log timestamp
// context; nested/concurrent simulators in one process (tests) simply
// hand it back when they go away.
Simulator::Simulator() { SetLogSimClock(&now_); }

Simulator::~Simulator() {
  if (GetLogSimClock() == &now_) SetLogSimClock(nullptr);
}

void Simulator::At(Tick t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, seq_++, std::move(fn)});
}

void Simulator::Resume(std::coroutine_handle<> h, Tick delay) {
  At(now_ + delay, [h] { h.resume(); });
}

void Simulator::Spawn(Process p) {
  assert(p.valid());
  if (p.finished()) return;  // completed synchronously (not possible today)
  Process::Handle h = p.Detach();
  At(now_, [h] {
    if (!h.promise().started) {
      h.promise().started = true;
      h.resume();
    }
  });
}

bool Simulator::Step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the event is copied out. std::function
  // captures are small (handles, pointers), so this is cheap.
  Event ev = queue_.top();
  queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++processed_;
  ev.fn();
  return true;
}

std::uint64_t Simulator::Run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && Step()) ++n;
  return n;
}

void Simulator::RunUntilTime(Tick t) {
  assert(t >= now_);
  while (!queue_.empty() && queue_.top().time <= t) Step();
  now_ = t;
}

}  // namespace vmmc::sim
