#include "vmmc/sim/rng.h"

#include <cassert>
#include <cmath>

namespace vmmc::sim {

namespace {
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (cannot occur with splitmix, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformU64(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire-style rejection: draw until below the largest multiple of bound.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = (span == 0) ? NextU64() : UniformU64(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace vmmc::sim
