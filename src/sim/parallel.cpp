#include "vmmc/sim/parallel.h"

#include <algorithm>
#include <thread>

namespace vmmc::sim {

namespace {

// Bounded spin before yielding: workers usually meet within a few dozen
// loads when windows are short; oversubscribed configurations (more
// workers than cores, e.g. the TSan suite on a small machine) fall back
// to the scheduler instead of burning a timeslice.
inline void BackoffPause(int& spins) {
  if (++spins < 256) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  } else {
    std::this_thread::yield();
    spins = 0;
  }
}

}  // namespace

ParallelEngine::ParallelEngine(Tick lookahead)
    : ParallelEngine(lookahead, Options{}) {}

ParallelEngine::ParallelEngine(Tick lookahead, Options options)
    : lookahead_(lookahead), options_(options) {
  assert(lookahead_ > 0 && "conservative sync needs a positive lookahead");
}

ParallelEngine::~ParallelEngine() = default;

int ParallelEngine::AddShard() {
  assert(!finalized_ && "AddShard after the first Run* call");
  auto shard = std::make_unique<Shard>();
  shard->sim = std::make_unique<Simulator>();
  const int id = num_shards();
  shard->sim->BindShard(this, id);
  shard->next_time.store(kNoEvent, std::memory_order_relaxed);
  shards_.push_back(std::move(shard));
  return id;
}

void ParallelEngine::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  const auto n = static_cast<std::size_t>(num_shards());
  channels_.resize(n * n);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      channels_[from * n + to] =
          std::make_unique<SpscChannel>(options_.channel_capacity);
    }
  }
}

int ParallelEngine::WorkerCount() const {
  int w = options_.workers > 0 ? options_.workers : num_shards();
  return std::clamp(w, 1, std::max(1, num_shards()));
}

void ParallelEngine::DrainShard(int shard, std::uint64_t iter) {
  Simulator& sim = *shards_[static_cast<std::size_t>(shard)]->sim;
  const auto n = static_cast<std::size_t>(num_shards());
  for (std::size_t from = 0; from < n; ++from) {
    SpscChannel* ch = channels_[from * n + static_cast<std::size_t>(shard)].get();
    if (ch == nullptr) continue;
    ch->Drain(iter, [&sim](Tick t, MovableFn&& fn) {
      // Zero-lookahead edges (stall notices, Ethernet handoffs) may carry
      // a time the receiver has already passed; clamp deterministically
      // to its current instant. Lookahead-respecting events (t in a
      // future window) are never clamped.
      sim.At(std::max(t, sim.now()), [f = std::move(fn)]() mutable { f(); });
    });
  }
}

void ParallelEngine::WorkerLoop(int worker, int num_workers,
                                const std::function<bool()>* pred) {
  const int n = num_shards();
  for (std::uint64_t k = next_iter_;; ++k) {
    // 1. Wait: every shard finished executing iteration k-1. This scan is
    // the lower-bound-on-timestamp computation — once it passes, every
    // cross-LP event due before this window is committed in a channel.
    for (int s = 0; s < n; ++s) {
      auto& done = shards_[static_cast<std::size_t>(s)]->exec_done;
      int spins = 0;
      while (done.load(std::memory_order_acquire) < k - 1) BackoffPause(spins);
    }
    // Worker 0 decides about the caller's predicate at this boundary;
    // every shard is paused between windows, so the predicate sees a
    // cross-shard-consistent state.
    if (worker == 0) {
      const bool stop = pred != nullptr && (*pred)();
      if (stop) pred_satisfied_ = true;
      stop_iter_.store(stop ? k : 0, std::memory_order_relaxed);
    }

    // 2+3. Drain iteration k-1's channel commits into the local queues,
    // then publish this shard's next event time.
    for (int s = worker; s < n; s += num_workers) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      DrainShard(s, k - 1);
      sh.next_time.store(sh.sim->next_event_time(), std::memory_order_relaxed);
      sh.drain_done.store(k, std::memory_order_release);
    }
    Tick m = kNoEvent;
    for (int s = 0; s < n; ++s) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      int spins = 0;
      while (sh.drain_done.load(std::memory_order_acquire) < k) BackoffPause(spins);
      m = std::min(m, sh.next_time.load(std::memory_order_relaxed));
    }
    // All workers read identical published values, so they all take the
    // same branch — no extra agreement round needed.
    if (stop_iter_.load(std::memory_order_relaxed) == k) {
      if (worker == 0) next_iter_ = k;
      return;
    }
    if (m == kNoEvent) {
      if (worker == 0) next_iter_ = k;
      return;
    }

    // 4. Execute the window that contains the globally earliest event
    // (skipping any number of empty windows), then commit outgoing
    // channels for this iteration.
    const Tick end = (m / lookahead_ + 1) * lookahead_;
    for (int s = worker; s < n; s += num_workers) {
      Shard& sh = *shards_[static_cast<std::size_t>(s)];
      sh.sim->RunWindow(end);
      const auto sn = static_cast<std::size_t>(n);
      for (std::size_t to = 0; to < sn; ++to) {
        SpscChannel* ch = channels_[static_cast<std::size_t>(s) * sn + to].get();
        if (ch != nullptr) ch->Commit(k);
      }
      sh.exec_done.store(k, std::memory_order_release);
    }
  }
}

std::uint64_t ParallelEngine::RunImpl(const std::function<bool()>* pred) {
  Finalize();
  const std::uint64_t before = events_processed();
  pred_satisfied_ = false;
  stop_iter_.store(0, std::memory_order_relaxed);
  // Anything pushed between runs (cluster assembly, test harnesses run
  // on the caller's thread) becomes visible at the first drain.
  const auto n = static_cast<std::size_t>(num_shards());
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      SpscChannel* ch = channels_[from * n + to].get();
      if (ch != nullptr) ch->Commit(next_iter_ - 1);
    }
  }

  const int workers = WorkerCount();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    threads.emplace_back([this, w, workers] { WorkerLoop(w, workers, nullptr); });
  }
  WorkerLoop(0, workers, pred);
  for (auto& t : threads) t.join();
  return events_processed() - before;
}

std::uint64_t ParallelEngine::RunUntilQuiescent() { return RunImpl(nullptr); }

bool ParallelEngine::RunUntil(std::function<bool()> pred) {
  RunImpl(&pred);
  return pred_satisfied_;
}

std::uint64_t ParallelEngine::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->sim->events_processed();
  return total;
}

Tick ParallelEngine::now() const {
  Tick t = 0;
  for (const auto& s : shards_) t = std::max(t, s->sim->now());
  return t;
}

void ParallelEngine::MergeMetricsInto(obs::Registry& out) const {
  for (const auto& s : shards_) out.MergeFrom(s->sim->metrics());
}

}  // namespace vmmc::sim
