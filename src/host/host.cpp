// The host layer is header-only (thin coroutine wrappers over the sim
// core); this translation unit pins the vtable-free headers into the
// library and verifies they compile standalone.
#include "vmmc/host/host_cpu.h"
#include "vmmc/host/kernel.h"
#include "vmmc/host/machine.h"
#include "vmmc/host/pci_bus.h"
