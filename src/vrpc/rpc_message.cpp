#include "vmmc/vrpc/rpc_message.h"

namespace vmmc::vrpc {

namespace {
constexpr std::uint32_t kAuthNull = 0;

void PutNullAuth(XdrWriter& w) {
  w.PutU32(kAuthNull);  // flavor
  w.PutU32(0);          // length
}

bool SkipAuth(XdrReader& r) {
  (void)r.GetU32();  // flavor
  const std::uint32_t len = r.GetU32();
  for (std::uint32_t i = 0; i < (len + 3) / 4; ++i) (void)r.GetU32();
  return r.ok();
}
}  // namespace

void EncodeCallInto(const CallMessage& call, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(10 * 4 + call.args.size());  // header words + body, one alloc
  XdrWriter w(out);
  w.PutU32(call.xid);
  w.PutU32(static_cast<std::uint32_t>(MsgType::kCall));
  w.PutU32(kRpcVersion);
  w.PutU32(call.prog);
  w.PutU32(call.vers);
  w.PutU32(call.proc);
  PutNullAuth(w);  // credentials
  PutNullAuth(w);  // verifier
  out.insert(out.end(), call.args.begin(), call.args.end());
}

std::vector<std::uint8_t> EncodeCall(const CallMessage& call) {
  std::vector<std::uint8_t> out;
  EncodeCallInto(call, out);
  return out;
}

void EncodeReplyInto(const ReplyMessage& reply, std::vector<std::uint8_t>& out) {
  out.clear();
  out.reserve(7 * 4 + reply.results.size());
  XdrWriter w(out);
  w.PutU32(reply.xid);
  w.PutU32(static_cast<std::uint32_t>(MsgType::kReply));
  w.PutU32(static_cast<std::uint32_t>(ReplyStat::kAccepted));
  PutNullAuth(w);  // verifier
  w.PutU32(static_cast<std::uint32_t>(reply.stat));
  if (reply.stat == AcceptStat::kSuccess) {
    out.insert(out.end(), reply.results.begin(), reply.results.end());
  }
}

std::vector<std::uint8_t> EncodeReply(const ReplyMessage& reply) {
  std::vector<std::uint8_t> out;
  EncodeReplyInto(reply, out);
  return out;
}

std::optional<CallMessage> DecodeCall(std::span<const std::uint8_t> bytes) {
  XdrReader r(bytes);
  CallMessage call;
  call.xid = r.GetU32();
  if (r.GetU32() != static_cast<std::uint32_t>(MsgType::kCall)) return std::nullopt;
  if (r.GetU32() != kRpcVersion) return std::nullopt;
  call.prog = r.GetU32();
  call.vers = r.GetU32();
  call.proc = r.GetU32();
  if (!SkipAuth(r) || !SkipAuth(r)) return std::nullopt;
  if (!r.ok()) return std::nullopt;
  call.args.assign(bytes.end() - static_cast<std::ptrdiff_t>(r.remaining()),
                   bytes.end());
  return call;
}

std::optional<ReplyMessage> DecodeReply(std::span<const std::uint8_t> bytes) {
  XdrReader r(bytes);
  ReplyMessage reply;
  reply.xid = r.GetU32();
  if (r.GetU32() != static_cast<std::uint32_t>(MsgType::kReply)) return std::nullopt;
  if (r.GetU32() != static_cast<std::uint32_t>(ReplyStat::kAccepted)) {
    return std::nullopt;
  }
  if (!SkipAuth(r)) return std::nullopt;
  reply.stat = static_cast<AcceptStat>(r.GetU32());
  if (!r.ok()) return std::nullopt;
  reply.results.assign(bytes.end() - static_cast<std::ptrdiff_t>(r.remaining()),
                       bytes.end());
  return reply;
}

}  // namespace vmmc::vrpc
