#include "vmmc/vrpc/vmmc_transport.h"

namespace vmmc::vrpc {

using vmmc_core::ExportOptions;
using vmmc_core::ImportOptions;

namespace {

std::uint32_t CommitOffset(const Params& params) {
  return params.vrpc.slot_bytes - 4;
}

void PutWordLE(std::vector<std::uint8_t>& buf, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf[off + static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t WordLE(const std::vector<std::uint8_t>& buf, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[off + static_cast<std::size_t>(i)];
  return v;
}

// Reads one little-endian word from a buffer in simulated memory.
std::uint32_t ReadWord(vmmc_core::Endpoint& ep, mem::VirtAddr va) {
  std::uint8_t b[4] = {0, 0, 0, 0};
  (void)ep.ReadBuffer(va, b);
  return std::uint32_t{b[0]} | (std::uint32_t{b[1]} << 8) |
         (std::uint32_t{b[2]} << 16) | (std::uint32_t{b[3]} << 24);
}

// Sends [len][node][payload] into `dst`, then the commit word.
sim::Task<Status> SendFramed(vmmc_core::Endpoint& ep, mem::VirtAddr staging,
                             mem::VirtAddr commit_staging,
                             vmmc_core::ProxyAddr dst, std::uint32_t commit_off,
                             int self_node, std::uint32_t seq,
                             const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame(8 + payload.size());
  PutWordLE(frame, 0, static_cast<std::uint32_t>(payload.size()));
  PutWordLE(frame, 4, static_cast<std::uint32_t>(self_node));
  std::copy(payload.begin(), payload.end(), frame.begin() + 8);
  Status w = ep.WriteBuffer(staging, frame);
  if (!w.ok()) co_return w;
  Status sent = co_await ep.SendMsg(staging, dst,
                                    static_cast<std::uint32_t>(frame.size()));
  if (!sent.ok()) co_return sent;

  std::vector<std::uint8_t> commit(4);
  PutWordLE(commit, 0, seq);
  w = ep.WriteBuffer(commit_staging, commit);
  if (!w.ok()) co_return w;
  co_return co_await ep.SendMsg(commit_staging, dst + commit_off, 4);
}

}  // namespace

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

sim::Task<Result<std::unique_ptr<VmmcServerTransport>>> VmmcServerTransport::Create(
    vmmc_core::Cluster& cluster, int node, std::string service, int max_clients,
    bool compat) {
  using Out = Result<std::unique_ptr<VmmcServerTransport>>;
  std::unique_ptr<VmmcServerTransport> t(
      new VmmcServerTransport(cluster, node, std::move(service), compat));
  auto ep = cluster.OpenEndpoint(node, t->service_ + "-server");
  if (!ep.ok()) co_return Out(ep.status());
  t->ep_ = std::move(ep).value();

  const std::uint32_t slot_bytes = cluster.params().vrpc.slot_bytes;
  for (int k = 0; k < max_clients; ++k) {
    auto buf = t->ep_->AllocBuffer(slot_bytes);
    if (!buf.ok()) co_return Out(buf.status());
    ExportOptions opts;
    opts.name = t->service_ + "-req-" + std::to_string(k);
    auto id = co_await t->ep_->ExportBuffer(buf.value(), slot_bytes, std::move(opts));
    if (!id.ok()) co_return Out(id.status());
    Slot slot;
    slot.va = buf.value();
    t->slots_.push_back(slot);
  }
  auto staging = t->ep_->AllocBuffer(slot_bytes);
  if (!staging.ok()) co_return Out(staging.status());
  t->staging_ = staging.value();
  co_return std::move(t);
}

sim::Process VmmcServerTransport::Serve(RawHandler handler) {
  sim::Simulator& sim = cluster_.simulator();
  const Params& params = cluster_.params();
  const std::uint32_t commit_off = CommitOffset(params);

  for (;;) {
    bool worked = false;
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      Slot& slot = slots_[k];
      const std::uint32_t seq = ReadWord(*ep_, slot.va + commit_off);
      if (seq == slot.last_seq) continue;
      slot.last_seq = seq;
      worked = true;

      const std::uint32_t len = ReadWord(*ep_, slot.va);
      const std::uint32_t client_node = ReadWord(*ep_, slot.va + 4);
      if (len > commit_off - 8) continue;  // malformed; ignore

      // Compatibility mode: copy the call out of the exported buffer
      // before handing it to the SunRPC machinery — the §5.4 "one copy on
      // every message receive".
      std::vector<std::uint8_t> request(len);
      if (compat_) {
        co_await cluster_.node(node_).machine->cpu().Bcopy(len + 8);
        ++copies_;
      }
      (void)ep_->ReadBuffer(slot.va + 8, request);

      // Server dispatch layers + XDR decode.
      co_await sim.Delay(compat_ ? params.vrpc.server_dispatch
                                 : params.vrpc.fast_server_dispatch);
      co_await sim.Delay(params.vrpc.xdr_per_call +
                         sim::NsForBytes(len, params.vrpc.xdr_mb_s));

      std::vector<std::uint8_t> reply = co_await handler(std::move(request));

      // XDR encode of the results.
      co_await sim.Delay(params.vrpc.xdr_per_call +
                         sim::NsForBytes(reply.size(), params.vrpc.xdr_mb_s));

      // Lazily import the client's reply slot on first contact.
      if (!slot.reply_connected) {
        ImportOptions wait;
        wait.wait = true;
        auto imp = co_await ep_->ImportBuffer(
            static_cast<int>(client_node),
            service_ + "-rep-" + std::to_string(k), wait);
        if (!imp.ok()) continue;
        slot.reply_proxy = imp.value().proxy_base;
        slot.reply_connected = true;
      }

      (void)co_await SendFramed(*ep_, staging_, staging_, slot.reply_proxy,
                                commit_off, node_, seq, reply);
    }
    if (!worked) co_await sim.Delay(params.vrpc.poll);
  }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

sim::Task<Result<std::unique_ptr<VmmcClientTransport>>> VmmcClientTransport::Connect(
    vmmc_core::Cluster& cluster, int client_node, int server_node,
    std::string service, int client_id, bool compat) {
  using Out = Result<std::unique_ptr<VmmcClientTransport>>;
  std::unique_ptr<VmmcClientTransport> t(
      new VmmcClientTransport(cluster, client_node, compat));
  auto ep = cluster.OpenEndpoint(client_node,
                                 service + "-client-" + std::to_string(client_id));
  if (!ep.ok()) co_return Out(ep.status());
  t->ep_ = std::move(ep).value();

  const std::uint32_t slot_bytes = cluster.params().vrpc.slot_bytes;
  // Export the reply slot the server writes into.
  auto reply = t->ep_->AllocBuffer(slot_bytes);
  if (!reply.ok()) co_return Out(reply.status());
  t->reply_va_ = reply.value();
  ExportOptions opts;
  opts.name = service + "-rep-" + std::to_string(client_id);
  auto id = co_await t->ep_->ExportBuffer(t->reply_va_, slot_bytes, std::move(opts));
  if (!id.ok()) co_return Out(id.status());

  // Import the server's request slot.
  ImportOptions wait;
  wait.wait = true;
  auto imp = co_await t->ep_->ImportBuffer(
      server_node, service + "-req-" + std::to_string(client_id), wait);
  if (!imp.ok()) co_return Out(imp.status());
  t->request_proxy_ = imp.value().proxy_base;

  auto staging = t->ep_->AllocBuffer(slot_bytes);
  if (!staging.ok()) co_return Out(staging.status());
  t->staging_ = staging.value();
  auto commit = t->ep_->AllocBuffer(64);
  if (!commit.ok()) co_return Out(commit.status());
  t->commit_staging_ = commit.value();
  co_return std::move(t);
}

sim::Task<Result<std::vector<std::uint8_t>>> VmmcClientTransport::RoundTrip(
    std::vector<std::uint8_t> request) {
  using Out = Result<std::vector<std::uint8_t>>;
  sim::Simulator& sim = cluster_.simulator();
  const Params& params = cluster_.params();
  const std::uint32_t commit_off = CommitOffset(params);
  if (request.size() > commit_off - 8) {
    co_return Out(InvalidArgument("request exceeds transport slot"));
  }
  const std::uint32_t seq = ++seq_;

  Status sent = co_await SendFramed(*ep_, staging_, commit_staging_,
                                    request_proxy_, commit_off, node_, seq,
                                    request);
  if (!sent.ok()) co_return Out(sent);

  // Spin on the reply slot's commit word.
  for (;;) {
    if (ReadWord(*ep_, reply_va_ + commit_off) == seq) break;
    co_await sim.Delay(params.vrpc.poll);
  }
  const std::uint32_t len = ReadWord(*ep_, reply_va_);
  if (len > commit_off - 8) co_return Out(InternalError("malformed reply frame"));
  std::vector<std::uint8_t> reply(len);
  // Compatibility: copy the reply out of the exported buffer before the
  // SunRPC machinery sees it (the second of the round trip's two copies).
  if (compat_) {
    co_await cluster_.node(node_).machine->cpu().Bcopy(len + 8);
  }
  Status r = ep_->ReadBuffer(reply_va_ + 8, reply);
  if (!r.ok()) co_return Out(r);
  co_return std::move(reply);
}

}  // namespace vmmc::vrpc
