#include "vmmc/vrpc/udp_transport.h"

#include <atomic>

namespace vmmc::vrpc {

sim::Process UdpServerTransport::Serve(RawHandler handler) {
  auto box = eth_.Bind(port_);
  if (!box.ok()) co_return;  // port already in use
  for (;;) {
    ethernet::Datagram dgram = co_await box.value()->Get();
    // Kernel-to-user crossing plus the classic (uncollapsed) SunRPC
    // server layers.
    co_await sim_.Delay(params_.vrpc.server_dispatch * 3);
    co_await sim_.Delay(params_.vrpc.xdr_per_call +
                        sim::NsForBytes(dgram.payload.size(), params_.vrpc.xdr_mb_s));
    std::vector<std::uint8_t> reply = co_await handler(std::move(dgram.payload));
    co_await sim_.Delay(params_.vrpc.xdr_per_call +
                        sim::NsForBytes(reply.size(), params_.vrpc.xdr_mb_s));
    co_await eth_.SendTo(dgram.src_node, dgram.src_port, port_, std::move(reply));
  }
}

namespace {
std::uint16_t NextEphemeralPort() {
  static std::uint16_t next = 32000;
  return next++;
}
}  // namespace

UdpClientTransport::UdpClientTransport(const Params& params, sim::Simulator& sim,
                                       ethernet::Interface& eth, int server_node,
                                       std::uint16_t server_port)
    : params_(params),
      sim_(sim),
      eth_(eth),
      server_node_(server_node),
      server_port_(server_port),
      local_port_(NextEphemeralPort()) {
  auto box = eth_.Bind(local_port_);
  if (box.ok()) inbox_ = box.value();
}

sim::Task<Result<std::vector<std::uint8_t>>> UdpClientTransport::RoundTrip(
    std::vector<std::uint8_t> request) {
  using Out = Result<std::vector<std::uint8_t>>;
  if (inbox_ == nullptr) co_return Out(Unavailable("socket bind failed"));
  // Classic client-side socket layers.
  co_await sim_.Delay(params_.vrpc.client_stub * 2);
  co_await eth_.SendTo(server_node_, server_port_, local_port_, std::move(request));
  ethernet::Datagram reply = co_await inbox_->Get();
  co_return std::move(reply.payload);
}

}  // namespace vmmc::vrpc
