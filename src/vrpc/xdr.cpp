#include "vmmc/vrpc/xdr.h"

namespace vmmc::vrpc {

void XdrWriter::PutU32(std::uint32_t v) {
  buffer_->push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_->push_back(static_cast<std::uint8_t>(v >> 16));
  buffer_->push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_->push_back(static_cast<std::uint8_t>(v));
}

void XdrWriter::PutU64(std::uint64_t v) {
  PutU32(static_cast<std::uint32_t>(v >> 32));
  PutU32(static_cast<std::uint32_t>(v));
}

void XdrWriter::PutOpaque(std::span<const std::uint8_t> bytes) {
  PutU32(static_cast<std::uint32_t>(bytes.size()));
  buffer_->insert(buffer_->end(), bytes.begin(), bytes.end());
  while (buffer_->size() % 4 != 0) buffer_->push_back(0);
}

void XdrWriter::PutString(const std::string& s) {
  PutOpaque(std::span(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

bool XdrReader::Need(std::size_t n) {
  if (!ok_ || pos_ + n > data_.size()) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint32_t XdrReader::GetU32() {
  if (!Need(4)) return 0;
  std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                    (std::uint32_t{data_[pos_ + 1]} << 16) |
                    (std::uint32_t{data_[pos_ + 2]} << 8) |
                    std::uint32_t{data_[pos_ + 3]};
  pos_ += 4;
  return v;
}

std::uint64_t XdrReader::GetU64() {
  const std::uint64_t hi = GetU32();
  const std::uint64_t lo = GetU32();
  return (hi << 32) | lo;
}

std::vector<std::uint8_t> XdrReader::GetOpaque() {
  const std::uint32_t len = GetU32();
  if (!Need(len)) return {};
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  const std::size_t pad = (4 - len % 4) % 4;
  if (!Need(pad)) return {};
  pos_ += pad;
  return out;
}

std::string XdrReader::GetString() {
  auto bytes = GetOpaque();
  return std::string(bytes.begin(), bytes.end());
}

}  // namespace vmmc::vrpc
