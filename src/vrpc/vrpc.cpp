#include "vmmc/vrpc/vrpc.h"

namespace vmmc::vrpc {

void RpcServer::Register(std::uint32_t prog, std::uint32_t vers,
                         std::uint32_t proc, ProcHandler handler) {
  procedures_[{prog, vers, proc}] = std::move(handler);
}

void RpcServer::Attach(sim::Simulator& sim, ServerTransport* transport) {
  sim.Spawn(transport->Serve(
      [this](std::vector<std::uint8_t> request) { return Handle(std::move(request)); }));
}

sim::Task<std::vector<std::uint8_t>> RpcServer::Handle(
    std::vector<std::uint8_t> request) {
  auto call = DecodeCall(request);
  ReplyMessage reply;
  if (!call.has_value()) {
    reply.stat = AcceptStat::kGarbageArgs;
    co_return EncodeReply(reply);
  }
  reply.xid = call->xid;

  auto it = procedures_.find({call->prog, call->vers, call->proc});
  if (it == procedures_.end()) {
    bool prog_known = false;
    for (const auto& [key, _] : procedures_) {
      if (std::get<0>(key) == call->prog) prog_known = true;
    }
    reply.stat = prog_known ? AcceptStat::kProcUnavail : AcceptStat::kProgUnavail;
    co_return EncodeReply(reply);
  }

  ++calls_served_;
  auto result = co_await it->second(call->args);
  if (!result.ok()) {
    reply.stat = AcceptStat::kGarbageArgs;
    co_return EncodeReply(reply);
  }
  reply.results = std::move(result).value();
  co_return EncodeReply(reply);
}

sim::Task<Result<std::vector<std::uint8_t>>> RpcClient::Call(
    std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
    std::vector<std::uint8_t> args) {
  const VrpcParams& vp = params_.vrpc;
  if (calls_m_ == nullptr) {
    calls_m_ = &sim_.metrics().GetCounter("vrpc.client.calls");
    rtt_us_m_ = &sim_.metrics().GetHisto("vrpc.client.rtt_us");
    track_ = sim_.tracer().RegisterTrack("vrpc.client");
  }
  calls_m_->Inc();
  const sim::Tick t0 = sim_.now();
  // Client stub + runtime layers (collapsed into one thin layer, §5.4).
  co_await sim_.Delay(fast_path_ ? vp.fast_client_stub : vp.client_stub);

  CallMessage call;
  call.xid = next_xid_++;
  call.prog = prog;
  call.vers = vers;
  call.proc = proc;
  call.args = std::move(args);
  // Overlapping calls (several clients, async use) would break strict span
  // nesting, so round trips are async events keyed by xid.
  sim_.tracer().AsyncBegin(track_, "call", call.xid);
  const auto finish = [this, t0, xid = call.xid] {
    rtt_us_m_->Observe(static_cast<double>(sim_.now() - t0) / 1000.0);
    sim_.tracer().AsyncEnd(track_, "call", xid);
  };

  // XDR marshalling.
  co_await sim_.Delay(vp.xdr_per_call +
                      sim::NsForBytes(call.args.size(), vp.xdr_mb_s));
  std::vector<std::uint8_t> wire;
  EncodeCallInto(call, wire);

  auto response = co_await transport_->RoundTrip(std::move(wire));
  if (!response.ok()) {
    finish();
    co_return Result<std::vector<std::uint8_t>>(response.status());
  }

  co_await sim_.Delay(vp.xdr_per_call +
                      sim::NsForBytes(response.value().size(), vp.xdr_mb_s));
  finish();
  auto reply = DecodeReply(response.value());
  if (!reply.has_value()) {
    co_return Result<std::vector<std::uint8_t>>(
        InternalError("malformed RPC reply"));
  }
  if (reply->xid != call.xid) {
    co_return Result<std::vector<std::uint8_t>>(InternalError("xid mismatch"));
  }
  if (reply->stat != AcceptStat::kSuccess) {
    co_return Result<std::vector<std::uint8_t>>(
        NotFound("server rejected the call"));
  }
  co_return std::move(reply->results);
}

}  // namespace vmmc::vrpc
