file(REMOVE_RECURSE
  "CMakeFiles/abl_auto_update.dir/abl_auto_update.cpp.o"
  "CMakeFiles/abl_auto_update.dir/abl_auto_update.cpp.o.d"
  "abl_auto_update"
  "abl_auto_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_auto_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
