# Empty compiler generated dependencies file for abl_auto_update.
# This may be replaced when dependencies are built.
