# Empty compiler generated dependencies file for abl_multisender.
# This may be replaced when dependencies are built.
