file(REMOVE_RECURSE
  "CMakeFiles/abl_multisender.dir/abl_multisender.cpp.o"
  "CMakeFiles/abl_multisender.dir/abl_multisender.cpp.o.d"
  "abl_multisender"
  "abl_multisender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multisender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
