file(REMOVE_RECURSE
  "CMakeFiles/tbl_vrpc.dir/tbl_vrpc.cpp.o"
  "CMakeFiles/tbl_vrpc.dir/tbl_vrpc.cpp.o.d"
  "tbl_vrpc"
  "tbl_vrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_vrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
