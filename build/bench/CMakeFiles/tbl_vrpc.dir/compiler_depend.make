# Empty compiler generated dependencies file for tbl_vrpc.
# This may be replaced when dependencies are built.
