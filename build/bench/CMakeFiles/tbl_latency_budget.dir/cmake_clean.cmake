file(REMOVE_RECURSE
  "CMakeFiles/tbl_latency_budget.dir/tbl_latency_budget.cpp.o"
  "CMakeFiles/tbl_latency_budget.dir/tbl_latency_budget.cpp.o.d"
  "tbl_latency_budget"
  "tbl_latency_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_latency_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
