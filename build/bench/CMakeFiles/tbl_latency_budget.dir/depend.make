# Empty dependencies file for tbl_latency_budget.
# This may be replaced when dependencies are built.
