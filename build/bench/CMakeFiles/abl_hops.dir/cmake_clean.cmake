file(REMOVE_RECURSE
  "CMakeFiles/abl_hops.dir/abl_hops.cpp.o"
  "CMakeFiles/abl_hops.dir/abl_hops.cpp.o.d"
  "abl_hops"
  "abl_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
