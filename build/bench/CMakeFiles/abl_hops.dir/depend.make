# Empty dependencies file for abl_hops.
# This may be replaced when dependencies are built.
