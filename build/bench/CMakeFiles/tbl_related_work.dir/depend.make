# Empty dependencies file for tbl_related_work.
# This may be replaced when dependencies are built.
