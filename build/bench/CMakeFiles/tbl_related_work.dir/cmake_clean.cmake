file(REMOVE_RECURSE
  "CMakeFiles/tbl_related_work.dir/tbl_related_work.cpp.o"
  "CMakeFiles/tbl_related_work.dir/tbl_related_work.cpp.o.d"
  "tbl_related_work"
  "tbl_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
