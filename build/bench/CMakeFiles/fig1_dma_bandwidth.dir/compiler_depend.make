# Empty compiler generated dependencies file for fig1_dma_bandwidth.
# This may be replaced when dependencies are built.
