
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_tlb.cpp" "bench/CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o" "gcc" "bench/CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vrpc/CMakeFiles/vmmc_vrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/vmmc_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/vmmc_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/compat/CMakeFiles/vmmc_compat.dir/DependInfo.cmake"
  "/root/repo/build/src/vmmc/CMakeFiles/vmmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lanai/CMakeFiles/vmmc_lanai.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/vmmc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vmmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/vmmc_myrinet.dir/DependInfo.cmake"
  "/root/repo/build/src/ethernet/CMakeFiles/vmmc_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
