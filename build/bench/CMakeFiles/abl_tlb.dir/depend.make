# Empty dependencies file for abl_tlb.
# This may be replaced when dependencies are built.
