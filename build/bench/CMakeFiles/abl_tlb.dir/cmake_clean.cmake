file(REMOVE_RECURSE
  "CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o"
  "CMakeFiles/abl_tlb.dir/abl_tlb.cpp.o.d"
  "abl_tlb"
  "abl_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
