file(REMOVE_RECURSE
  "CMakeFiles/tbl_nic_tradeoffs.dir/tbl_nic_tradeoffs.cpp.o"
  "CMakeFiles/tbl_nic_tradeoffs.dir/tbl_nic_tradeoffs.cpp.o.d"
  "tbl_nic_tradeoffs"
  "tbl_nic_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_nic_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
