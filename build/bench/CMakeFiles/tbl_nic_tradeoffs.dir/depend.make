# Empty dependencies file for tbl_nic_tradeoffs.
# This may be replaced when dependencies are built.
