# Empty compiler generated dependencies file for fig4_send_overhead.
# This may be replaced when dependencies are built.
