# Empty dependencies file for myrinet_test.
# This may be replaced when dependencies are built.
