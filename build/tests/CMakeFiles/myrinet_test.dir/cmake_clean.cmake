file(REMOVE_RECURSE
  "CMakeFiles/myrinet_test.dir/myrinet_test.cpp.o"
  "CMakeFiles/myrinet_test.dir/myrinet_test.cpp.o.d"
  "myrinet_test"
  "myrinet_test.pdb"
  "myrinet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myrinet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
