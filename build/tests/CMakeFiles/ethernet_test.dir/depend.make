# Empty dependencies file for ethernet_test.
# This may be replaced when dependencies are built.
