# Empty dependencies file for lanai_test.
# This may be replaced when dependencies are built.
