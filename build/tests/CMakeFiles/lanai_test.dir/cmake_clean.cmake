file(REMOVE_RECURSE
  "CMakeFiles/lanai_test.dir/lanai_test.cpp.o"
  "CMakeFiles/lanai_test.dir/lanai_test.cpp.o.d"
  "lanai_test"
  "lanai_test.pdb"
  "lanai_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanai_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
