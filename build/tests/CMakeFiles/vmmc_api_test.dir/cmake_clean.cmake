file(REMOVE_RECURSE
  "CMakeFiles/vmmc_api_test.dir/vmmc_api_test.cpp.o"
  "CMakeFiles/vmmc_api_test.dir/vmmc_api_test.cpp.o.d"
  "vmmc_api_test"
  "vmmc_api_test.pdb"
  "vmmc_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
