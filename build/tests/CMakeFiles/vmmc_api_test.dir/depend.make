# Empty dependencies file for vmmc_api_test.
# This may be replaced when dependencies are built.
