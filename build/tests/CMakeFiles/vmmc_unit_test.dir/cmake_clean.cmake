file(REMOVE_RECURSE
  "CMakeFiles/vmmc_unit_test.dir/vmmc_unit_test.cpp.o"
  "CMakeFiles/vmmc_unit_test.dir/vmmc_unit_test.cpp.o.d"
  "vmmc_unit_test"
  "vmmc_unit_test.pdb"
  "vmmc_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
