# Empty dependencies file for vmmc_unit_test.
# This may be replaced when dependencies are built.
