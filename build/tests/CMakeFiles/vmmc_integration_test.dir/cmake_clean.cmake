file(REMOVE_RECURSE
  "CMakeFiles/vmmc_integration_test.dir/vmmc_integration_test.cpp.o"
  "CMakeFiles/vmmc_integration_test.dir/vmmc_integration_test.cpp.o.d"
  "vmmc_integration_test"
  "vmmc_integration_test.pdb"
  "vmmc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
