# Empty dependencies file for vmmc_integration_test.
# This may be replaced when dependencies are built.
