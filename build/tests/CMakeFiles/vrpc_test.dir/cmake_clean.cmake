file(REMOVE_RECURSE
  "CMakeFiles/vrpc_test.dir/vrpc_test.cpp.o"
  "CMakeFiles/vrpc_test.dir/vrpc_test.cpp.o.d"
  "vrpc_test"
  "vrpc_test.pdb"
  "vrpc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vrpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
