# Empty dependencies file for vrpc_test.
# This may be replaced when dependencies are built.
