# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
include("/root/repo/build/tests/myrinet_test[1]_include.cmake")
include("/root/repo/build/tests/lanai_test[1]_include.cmake")
include("/root/repo/build/tests/vmmc_unit_test[1]_include.cmake")
include("/root/repo/build/tests/vmmc_integration_test[1]_include.cmake")
include("/root/repo/build/tests/ethernet_test[1]_include.cmake")
include("/root/repo/build/tests/compat_test[1]_include.cmake")
include("/root/repo/build/tests/vrpc_test[1]_include.cmake")
include("/root/repo/build/tests/task_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/vmmc_api_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
