# Empty compiler generated dependencies file for vmmc_ethernet.
# This may be replaced when dependencies are built.
