file(REMOVE_RECURSE
  "libvmmc_ethernet.a"
)
