file(REMOVE_RECURSE
  "CMakeFiles/vmmc_ethernet.dir/ethernet.cpp.o"
  "CMakeFiles/vmmc_ethernet.dir/ethernet.cpp.o.d"
  "libvmmc_ethernet.a"
  "libvmmc_ethernet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_ethernet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
