file(REMOVE_RECURSE
  "CMakeFiles/vmmc_coll.dir/communicator.cpp.o"
  "CMakeFiles/vmmc_coll.dir/communicator.cpp.o.d"
  "libvmmc_coll.a"
  "libvmmc_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
