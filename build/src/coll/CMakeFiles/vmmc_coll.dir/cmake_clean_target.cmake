file(REMOVE_RECURSE
  "libvmmc_coll.a"
)
