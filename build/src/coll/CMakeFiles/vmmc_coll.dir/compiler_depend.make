# Empty compiler generated dependencies file for vmmc_coll.
# This may be replaced when dependencies are built.
