file(REMOVE_RECURSE
  "CMakeFiles/vmmc_lanai.dir/nic_card.cpp.o"
  "CMakeFiles/vmmc_lanai.dir/nic_card.cpp.o.d"
  "CMakeFiles/vmmc_lanai.dir/sram.cpp.o"
  "CMakeFiles/vmmc_lanai.dir/sram.cpp.o.d"
  "libvmmc_lanai.a"
  "libvmmc_lanai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_lanai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
