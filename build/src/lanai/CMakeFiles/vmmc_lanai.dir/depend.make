# Empty dependencies file for vmmc_lanai.
# This may be replaced when dependencies are built.
