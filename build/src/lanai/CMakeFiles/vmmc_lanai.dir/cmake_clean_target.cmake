file(REMOVE_RECURSE
  "libvmmc_lanai.a"
)
