file(REMOVE_RECURSE
  "CMakeFiles/vmmc_host.dir/host.cpp.o"
  "CMakeFiles/vmmc_host.dir/host.cpp.o.d"
  "libvmmc_host.a"
  "libvmmc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
