# Empty compiler generated dependencies file for vmmc_host.
# This may be replaced when dependencies are built.
