file(REMOVE_RECURSE
  "libvmmc_host.a"
)
