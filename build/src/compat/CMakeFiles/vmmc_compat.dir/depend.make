# Empty dependencies file for vmmc_compat.
# This may be replaced when dependencies are built.
