file(REMOVE_RECURSE
  "libvmmc_compat.a"
)
