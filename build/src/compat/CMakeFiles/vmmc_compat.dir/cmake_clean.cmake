file(REMOVE_RECURSE
  "CMakeFiles/vmmc_compat.dir/am.cpp.o"
  "CMakeFiles/vmmc_compat.dir/am.cpp.o.d"
  "CMakeFiles/vmmc_compat.dir/fm.cpp.o"
  "CMakeFiles/vmmc_compat.dir/fm.cpp.o.d"
  "CMakeFiles/vmmc_compat.dir/mapi.cpp.o"
  "CMakeFiles/vmmc_compat.dir/mapi.cpp.o.d"
  "CMakeFiles/vmmc_compat.dir/pm.cpp.o"
  "CMakeFiles/vmmc_compat.dir/pm.cpp.o.d"
  "CMakeFiles/vmmc_compat.dir/shrimp.cpp.o"
  "CMakeFiles/vmmc_compat.dir/shrimp.cpp.o.d"
  "libvmmc_compat.a"
  "libvmmc_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
