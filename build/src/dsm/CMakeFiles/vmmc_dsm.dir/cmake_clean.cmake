file(REMOVE_RECURSE
  "CMakeFiles/vmmc_dsm.dir/dsm.cpp.o"
  "CMakeFiles/vmmc_dsm.dir/dsm.cpp.o.d"
  "libvmmc_dsm.a"
  "libvmmc_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
