file(REMOVE_RECURSE
  "libvmmc_dsm.a"
)
