# Empty dependencies file for vmmc_dsm.
# This may be replaced when dependencies are built.
