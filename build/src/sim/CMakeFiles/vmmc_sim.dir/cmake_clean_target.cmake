file(REMOVE_RECURSE
  "libvmmc_sim.a"
)
