file(REMOVE_RECURSE
  "CMakeFiles/vmmc_sim.dir/rng.cpp.o"
  "CMakeFiles/vmmc_sim.dir/rng.cpp.o.d"
  "CMakeFiles/vmmc_sim.dir/simulator.cpp.o"
  "CMakeFiles/vmmc_sim.dir/simulator.cpp.o.d"
  "libvmmc_sim.a"
  "libvmmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
