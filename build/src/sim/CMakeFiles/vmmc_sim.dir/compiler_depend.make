# Empty compiler generated dependencies file for vmmc_sim.
# This may be replaced when dependencies are built.
