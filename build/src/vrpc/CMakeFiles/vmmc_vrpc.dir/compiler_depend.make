# Empty compiler generated dependencies file for vmmc_vrpc.
# This may be replaced when dependencies are built.
