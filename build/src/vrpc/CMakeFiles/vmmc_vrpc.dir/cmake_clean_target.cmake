file(REMOVE_RECURSE
  "libvmmc_vrpc.a"
)
