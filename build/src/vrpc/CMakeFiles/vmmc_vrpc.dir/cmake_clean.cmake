file(REMOVE_RECURSE
  "CMakeFiles/vmmc_vrpc.dir/rpc_message.cpp.o"
  "CMakeFiles/vmmc_vrpc.dir/rpc_message.cpp.o.d"
  "CMakeFiles/vmmc_vrpc.dir/udp_transport.cpp.o"
  "CMakeFiles/vmmc_vrpc.dir/udp_transport.cpp.o.d"
  "CMakeFiles/vmmc_vrpc.dir/vmmc_transport.cpp.o"
  "CMakeFiles/vmmc_vrpc.dir/vmmc_transport.cpp.o.d"
  "CMakeFiles/vmmc_vrpc.dir/vrpc.cpp.o"
  "CMakeFiles/vmmc_vrpc.dir/vrpc.cpp.o.d"
  "CMakeFiles/vmmc_vrpc.dir/xdr.cpp.o"
  "CMakeFiles/vmmc_vrpc.dir/xdr.cpp.o.d"
  "libvmmc_vrpc.a"
  "libvmmc_vrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_vrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
