file(REMOVE_RECURSE
  "CMakeFiles/vmmc_util.dir/log.cpp.o"
  "CMakeFiles/vmmc_util.dir/log.cpp.o.d"
  "CMakeFiles/vmmc_util.dir/stats.cpp.o"
  "CMakeFiles/vmmc_util.dir/stats.cpp.o.d"
  "CMakeFiles/vmmc_util.dir/status.cpp.o"
  "CMakeFiles/vmmc_util.dir/status.cpp.o.d"
  "libvmmc_util.a"
  "libvmmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
