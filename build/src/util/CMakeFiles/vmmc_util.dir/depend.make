# Empty dependencies file for vmmc_util.
# This may be replaced when dependencies are built.
