file(REMOVE_RECURSE
  "libvmmc_util.a"
)
