file(REMOVE_RECURSE
  "libvmmc_core.a"
)
