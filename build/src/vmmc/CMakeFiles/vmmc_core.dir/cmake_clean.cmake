file(REMOVE_RECURSE
  "CMakeFiles/vmmc_core.dir/api.cpp.o"
  "CMakeFiles/vmmc_core.dir/api.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/cluster.cpp.o"
  "CMakeFiles/vmmc_core.dir/cluster.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/daemon.cpp.o"
  "CMakeFiles/vmmc_core.dir/daemon.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/driver.cpp.o"
  "CMakeFiles/vmmc_core.dir/driver.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/lcp.cpp.o"
  "CMakeFiles/vmmc_core.dir/lcp.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/mapper.cpp.o"
  "CMakeFiles/vmmc_core.dir/mapper.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/page_tables.cpp.o"
  "CMakeFiles/vmmc_core.dir/page_tables.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/sw_tlb.cpp.o"
  "CMakeFiles/vmmc_core.dir/sw_tlb.cpp.o.d"
  "CMakeFiles/vmmc_core.dir/wire.cpp.o"
  "CMakeFiles/vmmc_core.dir/wire.cpp.o.d"
  "libvmmc_core.a"
  "libvmmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
