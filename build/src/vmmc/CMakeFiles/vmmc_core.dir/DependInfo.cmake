
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vmmc/api.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/api.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/api.cpp.o.d"
  "/root/repo/src/vmmc/cluster.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/cluster.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/cluster.cpp.o.d"
  "/root/repo/src/vmmc/daemon.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/daemon.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/daemon.cpp.o.d"
  "/root/repo/src/vmmc/driver.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/driver.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/driver.cpp.o.d"
  "/root/repo/src/vmmc/lcp.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/lcp.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/lcp.cpp.o.d"
  "/root/repo/src/vmmc/mapper.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/mapper.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/mapper.cpp.o.d"
  "/root/repo/src/vmmc/page_tables.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/page_tables.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/page_tables.cpp.o.d"
  "/root/repo/src/vmmc/sw_tlb.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/sw_tlb.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/sw_tlb.cpp.o.d"
  "/root/repo/src/vmmc/wire.cpp" "src/vmmc/CMakeFiles/vmmc_core.dir/wire.cpp.o" "gcc" "src/vmmc/CMakeFiles/vmmc_core.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ethernet/CMakeFiles/vmmc_ethernet.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/vmmc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/lanai/CMakeFiles/vmmc_lanai.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/vmmc_myrinet.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/vmmc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vmmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vmmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
