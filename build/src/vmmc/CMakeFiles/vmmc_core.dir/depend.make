# Empty dependencies file for vmmc_core.
# This may be replaced when dependencies are built.
