file(REMOVE_RECURSE
  "libvmmc_myrinet.a"
)
