# Empty compiler generated dependencies file for vmmc_myrinet.
# This may be replaced when dependencies are built.
