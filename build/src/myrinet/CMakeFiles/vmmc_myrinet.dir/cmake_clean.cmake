file(REMOVE_RECURSE
  "CMakeFiles/vmmc_myrinet.dir/crc8.cpp.o"
  "CMakeFiles/vmmc_myrinet.dir/crc8.cpp.o.d"
  "CMakeFiles/vmmc_myrinet.dir/fabric.cpp.o"
  "CMakeFiles/vmmc_myrinet.dir/fabric.cpp.o.d"
  "libvmmc_myrinet.a"
  "libvmmc_myrinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
