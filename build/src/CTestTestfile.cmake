# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("mem")
subdirs("host")
subdirs("myrinet")
subdirs("lanai")
subdirs("ethernet")
subdirs("vmmc")
subdirs("compat")
subdirs("vrpc")
subdirs("coll")
subdirs("dsm")
