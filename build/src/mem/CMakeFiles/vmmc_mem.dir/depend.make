# Empty dependencies file for vmmc_mem.
# This may be replaced when dependencies are built.
