file(REMOVE_RECURSE
  "libvmmc_mem.a"
)
