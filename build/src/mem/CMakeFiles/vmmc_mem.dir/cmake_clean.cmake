file(REMOVE_RECURSE
  "CMakeFiles/vmmc_mem.dir/address_space.cpp.o"
  "CMakeFiles/vmmc_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/vmmc_mem.dir/physical_memory.cpp.o"
  "CMakeFiles/vmmc_mem.dir/physical_memory.cpp.o.d"
  "libvmmc_mem.a"
  "libvmmc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
