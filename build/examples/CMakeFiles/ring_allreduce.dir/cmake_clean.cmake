file(REMOVE_RECURSE
  "CMakeFiles/ring_allreduce.dir/ring_allreduce.cpp.o"
  "CMakeFiles/ring_allreduce.dir/ring_allreduce.cpp.o.d"
  "ring_allreduce"
  "ring_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
