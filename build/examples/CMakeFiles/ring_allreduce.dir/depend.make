# Empty dependencies file for ring_allreduce.
# This may be replaced when dependencies are built.
