# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ring_allreduce "/root/repo/build/examples/ring_allreduce")
set_tests_properties(example_ring_allreduce PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kv_server "/root/repo/build/examples/kv_server")
set_tests_properties(example_kv_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_pipeline "/root/repo/build/examples/stream_pipeline")
set_tests_properties(example_stream_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collectives_demo "/root/repo/build/examples/collectives_demo")
set_tests_properties(example_collectives_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
