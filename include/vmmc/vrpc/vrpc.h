// vRPC (§5.4): an RPC library implementing the SunRPC standard with VMMC
// as its low-level network interface. Strategy per the paper: change only
// the runtime library, stay wire-compatible with SunRPC, reimplement the
// network layer directly on the new interface, and collapse layers into a
// thin one. A server can serve both the new (VMMC) and the old (UDP)
// protocols; the same handler code runs over either transport.
//
// Three transports:
//  * VmmcTransport (compat) — requests land in exported server slots;
//    one copy on every receive keeps SunRPC semantics (the paper's 66 us
//    round trip, bandwidth reduced by a ~50 MB/s bcopy);
//  * VmmcTransport (fast)   — drops compatibility: zero-copy in-place
//    decode, thinner layers ([2]: bandwidth close to raw VMMC);
//  * UdpTransport           — classic SunRPC over the Ethernet.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/params.h"
#include "vmmc/sim/process.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/sim/task.h"
#include "vmmc/util/status.h"
#include "vmmc/vrpc/rpc_message.h"

namespace vmmc::vrpc {

// Transport-neutral request processor: raw call bytes in, raw reply bytes
// out (used by the server over any transport).
using RawHandler =
    std::function<sim::Task<std::vector<std::uint8_t>>(std::vector<std::uint8_t>)>;

class ClientTransport {
 public:
  virtual ~ClientTransport() = default;
  // Sends the encoded call and returns the encoded reply.
  virtual sim::Task<Result<std::vector<std::uint8_t>>> RoundTrip(
      std::vector<std::uint8_t> request) = 0;
};

class ServerTransport {
 public:
  virtual ~ServerTransport() = default;
  // Runs forever, feeding requests through `handler` and returning the
  // replies to their callers.
  virtual sim::Process Serve(RawHandler handler) = 0;
};

// Procedure handler: XDR-encoded args in, XDR-encoded results out.
using ProcHandler = std::function<sim::Task<Result<std::vector<std::uint8_t>>>(
    std::span<const std::uint8_t> args)>;

class RpcServer {
 public:
  explicit RpcServer(const Params& params) : params_(params) {}

  void Register(std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
                ProcHandler handler);

  // Attaches a transport; a server may serve several (§5.4: old and new
  // protocols side by side). Starts the transport's serve loop.
  void Attach(sim::Simulator& sim, ServerTransport* transport);

  std::uint64_t calls_served() const { return calls_served_; }

 private:
  sim::Task<std::vector<std::uint8_t>> Handle(std::vector<std::uint8_t> request);

  const Params& params_;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>, ProcHandler>
      procedures_;
  std::uint64_t calls_served_ = 0;
};

class RpcClient {
 public:
  RpcClient(const Params& params, sim::Simulator& sim,
            std::unique_ptr<ClientTransport> transport, bool fast_path = false)
      : params_(params),
        sim_(sim),
        transport_(std::move(transport)),
        fast_path_(fast_path) {}

  // One remote procedure call; returns the XDR-encoded results.
  sim::Task<Result<std::vector<std::uint8_t>>> Call(
      std::uint32_t prog, std::uint32_t vers, std::uint32_t proc,
      std::vector<std::uint8_t> args);

 private:
  const Params& params_;
  sim::Simulator& sim_;
  std::unique_ptr<ClientTransport> transport_;
  bool fast_path_;
  std::uint32_t next_xid_ = 1;

  // Round-trip accounting (vrpc.client.*); overlapping calls show up as
  // async spans keyed by xid. Bound lazily on the first Call.
  obs::Counter* calls_m_ = nullptr;
  obs::Histo* rtt_us_m_ = nullptr;
  int track_ = -1;
};

}  // namespace vmmc::vrpc
