// XDR (RFC 1014) encoding — the serialization SunRPC mandates: big-endian,
// every item padded to a 4-byte boundary. vRPC keeps full XDR
// compatibility (§5.4: "remain fully compatible with the existing SunRPC
// implementations").
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace vmmc::vrpc {

class XdrWriter {
 public:
  XdrWriter() : buffer_(&owned_) {}
  // Appends into a caller-provided buffer instead of an owned one: callers
  // on hot paths hand in a reserved/recycled scratch vector and avoid a
  // fresh allocation (plus the Take()-then-splice copy) per message.
  explicit XdrWriter(std::vector<std::uint8_t>& out)
      : buffer_(&out), start_(out.size()) {}

  void PutU32(std::uint32_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutU64(std::uint64_t v);
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  // Variable-length opaque: length word + bytes + padding.
  void PutOpaque(std::span<const std::uint8_t> bytes);
  void PutString(const std::string& s);

  // The bytes this writer has produced (excludes anything that was already
  // in a caller-provided buffer at construction).
  std::span<const std::uint8_t> bytes() const {
    return std::span(*buffer_).subspan(start_);
  }
  std::size_t size() const { return buffer_->size() - start_; }
  // Owned mode only: moves the buffer out.
  std::vector<std::uint8_t> Take() {
    assert(buffer_ == &owned_ && "Take() on a caller-provided buffer");
    return std::move(owned_);
  }

 private:
  std::vector<std::uint8_t>* buffer_;
  std::size_t start_ = 0;
  std::vector<std::uint8_t> owned_;
};

class XdrReader {
 public:
  explicit XdrReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint32_t GetU32();
  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  std::uint64_t GetU64();
  bool GetBool() { return GetU32() != 0; }
  std::vector<std::uint8_t> GetOpaque();
  std::string GetString();

 private:
  bool Need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace vmmc::vrpc
