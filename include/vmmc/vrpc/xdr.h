// XDR (RFC 1014) encoding — the serialization SunRPC mandates: big-endian,
// every item padded to a 4-byte boundary. vRPC keeps full XDR
// compatibility (§5.4: "remain fully compatible with the existing SunRPC
// implementations").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace vmmc::vrpc {

class XdrWriter {
 public:
  void PutU32(std::uint32_t v);
  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutU64(std::uint64_t v);
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  // Variable-length opaque: length word + bytes + padding.
  void PutOpaque(std::span<const std::uint8_t> bytes);
  void PutString(const std::string& s);

  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;
};

class XdrReader {
 public:
  explicit XdrReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint32_t GetU32();
  std::int32_t GetI32() { return static_cast<std::int32_t>(GetU32()); }
  std::uint64_t GetU64();
  bool GetBool() { return GetU32() != 0; }
  std::vector<std::uint8_t> GetOpaque();
  std::string GetString();

 private:
  bool Need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace vmmc::vrpc
