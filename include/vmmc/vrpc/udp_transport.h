// The classic SunRPC transport: UDP datagrams over the Ethernet — the
// baseline vRPC is measured against ("The server in vRPC can handle
// clients using either the old (UDP- and TCP-based) or the new
// (VMMC-based) protocols", §5.4).
#pragma once

#include <cstdint>
#include <memory>

#include "vmmc/ethernet/ethernet.h"
#include "vmmc/params.h"
#include "vmmc/vrpc/vrpc.h"

namespace vmmc::vrpc {

constexpr std::uint16_t kRpcUdpPort = 111;

class UdpServerTransport : public ServerTransport {
 public:
  UdpServerTransport(const Params& params, sim::Simulator& sim,
                     ethernet::Interface& eth, std::uint16_t port = kRpcUdpPort)
      : params_(params), sim_(sim), eth_(eth), port_(port) {}

  sim::Process Serve(RawHandler handler) override;

 private:
  const Params& params_;
  sim::Simulator& sim_;
  ethernet::Interface& eth_;
  std::uint16_t port_;
};

class UdpClientTransport : public ClientTransport {
 public:
  UdpClientTransport(const Params& params, sim::Simulator& sim,
                     ethernet::Interface& eth, int server_node,
                     std::uint16_t server_port = kRpcUdpPort);

  sim::Task<Result<std::vector<std::uint8_t>>> RoundTrip(
      std::vector<std::uint8_t> request) override;

 private:
  const Params& params_;
  sim::Simulator& sim_;
  ethernet::Interface& eth_;
  int server_node_;
  std::uint16_t server_port_;
  std::uint16_t local_port_;
  sim::Mailbox<ethernet::Datagram>* inbox_ = nullptr;
};

}  // namespace vmmc::vrpc
