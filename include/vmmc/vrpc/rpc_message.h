// SunRPC (RFC 1057) message framing: call and reply headers with AUTH_NULL
// credentials, encoded in XDR. vRPC reimplements the network layer but
// keeps this format so existing clients/servers interoperate (§5.4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vmmc/vrpc/xdr.h"

namespace vmmc::vrpc {

constexpr std::uint32_t kRpcVersion = 2;

enum class MsgType : std::uint32_t { kCall = 0, kReply = 1 };
enum class ReplyStat : std::uint32_t { kAccepted = 0, kDenied = 1 };
enum class AcceptStat : std::uint32_t {
  kSuccess = 0,
  kProgUnavail = 1,
  kProgMismatch = 2,
  kProcUnavail = 3,
  kGarbageArgs = 4,
};

struct CallMessage {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::vector<std::uint8_t> args;  // XDR-encoded procedure arguments
};

struct ReplyMessage {
  std::uint32_t xid = 0;
  AcceptStat stat = AcceptStat::kSuccess;
  std::vector<std::uint8_t> results;  // XDR-encoded results (on success)
};

// Wire encoding (header + body). The Into variants clear `out` and build
// the message in place with a single exact-size reservation — hot paths
// hand in a scratch vector instead of taking a fresh one per message.
void EncodeCallInto(const CallMessage& call, std::vector<std::uint8_t>& out);
void EncodeReplyInto(const ReplyMessage& reply, std::vector<std::uint8_t>& out);
std::vector<std::uint8_t> EncodeCall(const CallMessage& call);
std::vector<std::uint8_t> EncodeReply(const ReplyMessage& reply);

// Parsing; nullopt on malformed input.
std::optional<CallMessage> DecodeCall(std::span<const std::uint8_t> bytes);
std::optional<ReplyMessage> DecodeReply(std::span<const std::uint8_t> bytes);

}  // namespace vmmc::vrpc
