// The vRPC transport over VMMC (§5.4): the network layer reimplemented
// directly on top of the new interface.
//
// Wire protocol: the server exports one request slot per client; a client
// exports a reply slot. A message is written as [len][client_node][bytes]
// followed by a 4-byte commit word (a sequence number) at the end of the
// slot — delivery is in order, so a changed commit word means the message
// body is complete. The server polls commit words; the client spins on its
// reply slot.
//
// In compatibility mode the server performs ONE COPY of every incoming
// call out of the exported buffer before decoding ("The one copy on the
// receive side is necessary, if compatibility with SunRPC is to be
// maintained", §5.4). Fast mode decodes in place and uses thinner layers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vmmc/vmmc/cluster.h"
#include "vmmc/vrpc/vrpc.h"

namespace vmmc::vrpc {

class VmmcServerTransport : public ServerTransport {
 public:
  // Exports `max_clients` request slots named "<service>-req-<k>".
  static sim::Task<Result<std::unique_ptr<VmmcServerTransport>>> Create(
      vmmc_core::Cluster& cluster, int node, std::string service,
      int max_clients, bool compat = true);

  sim::Process Serve(RawHandler handler) override;

  std::uint64_t copies_performed() const { return copies_; }

 private:
  VmmcServerTransport(vmmc_core::Cluster& cluster, int node, std::string service,
                      bool compat)
      : cluster_(cluster), node_(node), service_(std::move(service)), compat_(compat) {}

  struct Slot {
    mem::VirtAddr va = 0;
    std::uint32_t last_seq = 0;
    bool reply_connected = false;
    vmmc_core::ProxyAddr reply_proxy = 0;
  };

  vmmc_core::Cluster& cluster_;
  int node_;
  std::string service_;
  bool compat_;
  std::unique_ptr<vmmc_core::Endpoint> ep_;
  std::vector<Slot> slots_;
  mem::VirtAddr staging_ = 0;
  std::uint64_t copies_ = 0;
};

class VmmcClientTransport : public ClientTransport {
 public:
  // Connects to slot `client_id` of the server's service. In compat mode
  // the client also copies each reply out of its exported slot (§5.4:
  // "one copy on every message receive ... two copies in a roundtrip").
  static sim::Task<Result<std::unique_ptr<VmmcClientTransport>>> Connect(
      vmmc_core::Cluster& cluster, int client_node, int server_node,
      std::string service, int client_id, bool compat = true);

  sim::Task<Result<std::vector<std::uint8_t>>> RoundTrip(
      std::vector<std::uint8_t> request) override;

 private:
  VmmcClientTransport(vmmc_core::Cluster& cluster, int node, bool compat)
      : cluster_(cluster), node_(node), compat_(compat) {}

  vmmc_core::Cluster& cluster_;
  int node_;
  bool compat_;
  std::unique_ptr<vmmc_core::Endpoint> ep_;
  vmmc_core::ProxyAddr request_proxy_ = 0;
  mem::VirtAddr reply_va_ = 0;
  mem::VirtAddr staging_ = 0;
  mem::VirtAddr commit_staging_ = 0;
  std::uint32_t seq_ = 0;
};

}  // namespace vmmc::vrpc
