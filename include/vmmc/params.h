// Central timing/capacity parameters for the simulated platform.
//
// Every constant is motivated by a measurement or statement in the paper
// (section references in comments). Values the paper does not state are
// fitted so that the micro-benchmarks in bench/ reproduce the paper's
// figures; those are marked "fitted".
//
// The platform being modelled (paper §5.1): Dell Dimension P166 PCs
// (166 MHz Pentium, 512 KB L2, Intel 430FX, 64 MB EDO), Myrinet M2F-PCI32
// interfaces (LANai 4.1 @ 33 MHz, 256 KB SRAM), M2F-SW8 switch, Linux 2.0.
#pragma once

#include <cstdint>

#include "vmmc/sim/time.h"

namespace vmmc {

// ---------------------------------------------------------------------------
// PCI bus (§5.2 "Hardware Limits")
// ---------------------------------------------------------------------------
struct PciParams {
  // Measured memory-mapped I/O costs over PCI (§5.2): read 0.422 us,
  // write 0.121 us.
  sim::Tick pio_read = 422;
  sim::Tick pio_write = 121;

  // Raw DMA engine stream rate once a burst is running. Fitted with
  // dma_block_overhead so that Figure 1 reproduces: ~110 MB/s at 4 KB
  // blocks, ~128 MB/s at 64 KB blocks (PCI theoretical peak is 132 MB/s).
  double dma_peak_mb_s = 129.4;

  // Bus arbitration + DMA engine start cost per transfer. The paper's
  // receive-side budget (§5.2) charges "about 2 us" for arbitration +
  // host-DMA initiation + putting one word in host memory.
  sim::Tick dma_init = 1500;  // fitted

  // Additional per-block software cost of the LANai descriptor loop used
  // when streaming blocks back-to-back (Figure 1 measures DMA bandwidth
  // including this loop). Fitted: 1.5 + 4.1 + 4096B/129.4MBs = 37.2 us
  // per 4 KB block -> 110 MB/s.
  sim::Tick dma_loop_sw = 4100;  // fitted
};

// ---------------------------------------------------------------------------
// Host CPU / OS (§5.1, §5.4)
// ---------------------------------------------------------------------------
struct HostParams {
  double cpu_mhz = 166.0;

  // Library bcopy bandwidth measured in §5.4: "in the range of 50 MB/s
  // depending on the size of the data copied".
  double bcopy_mb_s = 50.0;
  sim::Tick bcopy_call = 300;  // fitted per-call cost of the copy routine

  // User-level VMMC library entry: argument checking, protocol selection
  // (short vs long), send-queue slot management. Fitted so that the
  // synchronous send overhead of a small message is ~3 us (Figure 4).
  sim::Tick lib_send_overhead = 2000;

  // Spin-loop poll granularity when waiting on a completion word in cache
  // (§4.5: "the user program [spins] on a cache location").
  sim::Tick spin_poll = 250;  // fitted

  // Kernel interrupt entry + dispatch to a driver handler (Linux 2.0).
  sim::Tick interrupt_entry = 4000;  // fitted

  // Signal delivery to a user-level handler (used for notifications,
  // §4.1/§5.1 "code that invokes notifications using signals").
  sim::Tick signal_delivery = 18000;  // fitted (tens of us on Linux 2.0)

  // Generic system call / daemon request overhead (export/import path).
  sim::Tick syscall = 5000;  // fitted; setup path only, not performance critical
};

// ---------------------------------------------------------------------------
// Myrinet fabric (§3)
// ---------------------------------------------------------------------------
struct NetParams {
  // "The network link can deliver 1.28 Gbits/sec bandwidth in each
  // direction" (§3) = 160 MB/s.
  double link_mb_s = 160.0;

  // Cut-through forwarding latency per switch hop (fitted; Myricom quotes
  // sub-microsecond switch latency).
  sim::Tick switch_latency = 300;

  // Cable propagation per link (ns).
  sim::Tick link_latency = 50;

  // Per-output-port buffering inside a switch, in bytes (the slack that
  // stands in for wormhole flit buffers; fitted — Myricom does not publish
  // it). A routed packet that does not fit waits on its inbound wire,
  // stalling that upstream link until the output drains: head-of-line
  // blocking and incast tree-saturation emerge from this bound. A port
  // always accepts at least one packet regardless of size (guarantees
  // progress), and 0 disables the bound entirely (infinite buffering, the
  // pre-multi-switch behaviour).
  std::uint32_t switch_port_queue_bytes = 16 * 1024;

  // Injected bit-error probability per packet (0 in normal operation;
  // §4.2: error rate below 10^-15, errors are detected via CRC-8 but not
  // recovered from).
  double packet_error_rate = 0.0;
};

// ---------------------------------------------------------------------------
// LANai network interface (§3, §4.5) — LANai 4.1 @ 33 MHz, 256 KB SRAM.
// ---------------------------------------------------------------------------
struct LanaiParams {
  double clock_mhz = 33.0;
  std::uint32_t sram_bytes = 256 * 1024;

  // Main-loop dispatch: time from "work becomes available" to the LCP
  // picking it up when idle (poll loop granularity). Fitted.
  sim::Tick main_loop_poll = 590;

  // Scanning the send queues of all possible senders (§6: "Picking up a
  // send request in Myrinet requires scanning send queues of all possible
  // senders"). Base cost plus a per-registered-process increment.
  sim::Tick pickup_base = 800;
  sim::Tick pickup_per_process = 200;

  // Software virtual->physical translation via the SRAM TLB (§4.5).
  sim::Tick tlb_lookup = 500;

  // Building the chunk header: indexing the outgoing page table, computing
  // the two scatter addresses (§4.5). §6: translation + header preparation
  // in software makes Myrinet send initiation >= 2x SHRIMP's 2-3 us.
  sim::Tick header_prep = 800;

  // Starting a network-DMA (SRAM -> wire or wire -> SRAM).
  sim::Tick net_dma_init = 400;

  // LANai-side copy of short-send payload from the send queue into the
  // network buffer (§5.3), per 4-byte word.
  sim::Tick short_copy_per_word = 60;
  sim::Tick short_copy_base = 300;

  // Receive path: parse header, check the incoming page table, compute
  // scatter lengths (§4.5).
  sim::Tick recv_process = 800;

  // Per-chunk bookkeeping in the tight sending loop (request state update,
  // scatter-address computation, DMA programming; §5.3). Fitted so a long
  // send sustains ~108 MB/s = 98% of the Figure 1 limit at 4 KB.
  sim::Tick chunk_overhead = 4150;

  // Extra per-chunk cost when the LCP must run through its main software
  // state machine instead of the tight sending loop (§5.3, bidirectional
  // traffic: 91 vs 108.4 MB/s).
  sim::Tick main_loop_extra = 9400;

  // SRAM reserved for LCP code + global data + network staging buffers;
  // what remains is available for per-process queues/tables (§4.4, §6).
  std::uint32_t lcp_reserved_bytes = 64 * 1024;

  // Completion-status write-back to user space, one word via LANai->host
  // DMA (§4.5); overlaps with subsequent work, so only the init cost hits
  // the critical path.
  sim::Tick completion_writeback = 300;

  // Cost of raising a host interrupt (TLB miss service, notifications).
  sim::Tick raise_interrupt = 500;

  // Resolving an rtag-addressed chunk against the SRAM registered-region
  // table (one hash probe + bounds check + frame-list index; cheaper than
  // tlb_lookup, which walks a set-associative structure). Charged only on
  // kFlagRtag packets, so the paper-path figures are unaffected.
  sim::Tick rtag_lookup = 250;  // fitted
};

// ---------------------------------------------------------------------------
// LCP reliability protocol (beyond the paper: §4.2 detects CRC errors but
// never recovers; this go-back-N layer retransmits so every VMMC send
// survives injected faults — see DESIGN.md "Fault model and retransmission").
// ---------------------------------------------------------------------------
struct ReliabilityParams {
  // Master switch. Off reproduces the paper exactly: corrupted or dropped
  // chunks are counted and lost (kept for the abl_fault ablation and the
  // §4.2-fidelity tests).
  bool enabled = true;

  // Go-back-N window per destination node, bounded globally by the SRAM
  // retransmit pool below.
  std::uint32_t window = 16;

  // Retransmit pool in LANai SRAM: slots of (header + chunk_bytes) each,
  // shared across destinations. The window closes when the pool is full.
  std::uint32_t retx_pool_entries = 16;

  // Cumulative-ACK policy: ack immediately after this many unacked data
  // chunks, or when the delayed-ack timer expires. 8 = window/2 keeps the
  // sender pipeline full while acks stay off the fast path (a per-chunk
  // ack would knock the sender out of its §5.3 tight loop).
  std::uint32_t ack_every = 8;
  sim::Tick ack_delay = 50'000;  // 50 us

  // Retransmit timeout with exponential backoff. RTT for a 4 KB chunk is
  // ~40 us; 250 us tolerates delayed-ack batching without spurious resends.
  sim::Tick rto = 250'000;
  sim::Tick rto_max = 4'000'000;

  // LANai costs: building/parsing an ACK is a few header words, much less
  // than full recv_process.
  sim::Tick ack_send = 300;
  sim::Tick ack_process = 300;
};

// ---------------------------------------------------------------------------
// Registration (pin-down) cache — beyond the paper. The core idea of
// "User Mode Memory Page Management" (PAPERS.md): keep user buffers
// pinned across transfers so the steady state pays no pin/syscall cost.
// ---------------------------------------------------------------------------
struct RegCacheParams {
  // Master switch. Off makes every RegisterMemory a cold pin and every
  // UnregisterMemory an immediate unpin — the ablation baseline.
  bool enabled = true;

  // Total bytes the cache may keep pinned (idle entries included). LRU
  // eviction unpins idle entries to get under budget; entries with live
  // references are never evicted.
  std::uint64_t budget_bytes = 8ull * 1024 * 1024;

  // Cold-miss costs: one kernel crossing for the pin-down call, then a
  // per-page walk+lock (mirrors the driver's TLB-fill service cost).
  sim::Tick pin_page = 300;
  // Cache hit: a hash lookup and refcount bump in the user library.
  sim::Tick hit_lookup = 150;  // fitted
};

// ---------------------------------------------------------------------------
// MPI-style point-to-point protocol selection (MPICH2-over-InfiniBand
// playbook, PAPERS.md): eager copy-through below the crossover,
// rendezvous zero-copy RDMA above it.
// ---------------------------------------------------------------------------
struct P2pParams {
  // Protocol crossover in bytes: messages <= eager_max are copied through
  // the preposted slot; larger ones post an RTS and the receiver pulls
  // the payload with a zero-copy RdmaRead (reader-pull rendezvous).
  // Tuned from bench/abl_rendezvous (EXPERIMENTS.md "Eager vs rendezvous
  // crossover"): with the default host/NIC costs eager still wins at
  // 384 B and loses at 512 B, so the default splits the bracket.
  std::uint32_t eager_max = 448;

  // Spin granularity while waiting on slot/fin words.
  sim::Tick poll = 1'000;
};

// ---------------------------------------------------------------------------
// VMMC protocol constants (§4.4, §4.5)
// ---------------------------------------------------------------------------
struct VmmcParams {
  // Short-send threshold: "currently up to 128 bytes" (§4.5); §5.3 argues
  // why not lower (sync overhead) or higher (SRAM size).
  std::uint32_t short_send_max = 128;

  // Long messages are sent in chunks of the page size (§4.5).
  std::uint32_t chunk_bytes = 4096;

  // Maximum long-send size: 8 MB (§4.5).
  std::uint64_t max_send_bytes = 8ull * 1024 * 1024;

  // Send queue depth per process (entries live in LANai SRAM).
  std::uint32_t send_queue_entries = 16;

  // Outgoing page table per process: limits total imported receive buffer
  // space; "current limit is 8 MBytes" (§4.4) = 2048 proxy pages.
  std::uint32_t outgoing_pt_pages = 2048;

  // Software TLB: two-way set associative, translations for up to 8 MB of
  // address space per process (§4.5) = 2048 pages.
  std::uint32_t tlb_ways = 2;
  std::uint32_t tlb_total_entries = 2048;

  // "On one interrupt, translations for up to 32 pages are inserted into
  // the SRAM TLB" (§4.5).
  std::uint32_t tlb_fill_batch = 32;

  // Optimizations credited for reaching 98% of the bandwidth limit (§5.3):
  // host-DMA/net-DMA pipelining and header precomputation. Exposed as
  // switches for the ablation benches.
  bool pipeline_dma = true;
  bool precompute_headers = true;

  // Use the tight sending loop when traffic is one-way (§5.3).
  bool tight_send_loop = true;

  // Go-back-N retransmission layer (beyond the paper).
  ReliabilityParams reliability;

  // Registration cache and point-to-point protocol selection (beyond the
  // paper; ROADMAP item 3).
  RegCacheParams regcache;
  P2pParams p2p;
};

// ---------------------------------------------------------------------------
// Ethernet control network (daemons; §4.1) and the UDP/RPC baseline.
// ---------------------------------------------------------------------------
struct EthernetParams {
  double bandwidth_mb_s = 1.1;        // 10 Mb/s minus framing overhead
  sim::Tick frame_latency = 100'000;  // per-frame one-way latency + stack
  std::uint32_t mtu = 1500;
  // Kernel UDP socket path costs (send/receive syscall + protocol stack).
  sim::Tick udp_stack = 120'000;
};

// ---------------------------------------------------------------------------
// vRPC (§5.4): SunRPC-compatible RPC over VMMC.
// ---------------------------------------------------------------------------
struct VrpcParams {
  // Collapsed SunRPC compatibility layers on the client (stub + runtime;
  // §5.4 "collapse certain layers into a new single thin layer"). Fitted
  // so a null RPC round trip lands near the paper's 66 us.
  sim::Tick client_stub = 6'000;
  // Server-side dispatch: duplicate-xid cache, auth, procedure lookup.
  sim::Tick server_dispatch = 6'000;
  // Fixed XDR marshal/unmarshal cost per message, plus a per-byte rate
  // (XDR touches every byte on the 166 MHz host).
  sim::Tick xdr_per_call = 2'000;
  // Bulk opaque data is not byte-transformed by XDR (it is moved by the
  // receive copy, charged separately); only headers/structures are walked.
  double xdr_mb_s = 2000.0;
  // The leaner costs of the non-compatible fast-path RPC ([2]: dropping
  // SunRPC compatibility allows bandwidth close to raw VMMC).
  sim::Tick fast_client_stub = 2'000;
  sim::Tick fast_server_dispatch = 2'000;
  // Request/reply slot size for the VMMC transport.
  std::uint32_t slot_bytes = 256 * 1024;
  // Server/client poll granularity on commit words.
  sim::Tick poll = 1'000;
};

// ---------------------------------------------------------------------------
// SHRIMP comparison platform (§6)
// ---------------------------------------------------------------------------
struct ShrimpParams {
  // EISA bus: user-to-user bandwidth equals the achievable hardware limit
  // of 23 MB/s (§6).
  double eisa_dma_mb_s = 23.0;
  sim::Tick eisa_dma_init = 1200;

  // EISA memory-mapped I/O is slower than PCI.
  sim::Tick pio_write = 500;   // fitted
  sim::Tick pio_read = 1200;   // fitted

  // "A user process can initiate a deliberate update transfer with just
  // two memory-mapped I/O instructions" (§6); the NIC state machine takes
  // "about 2-3 us to verify permissions, access the outgoing page table,
  // build a packet and start sending data".
  sim::Tick hw_engine_process = 1500;  // fitted into the 2-3 us budget

  // Receive side: hardware state machine DMAs into pinned buffers.
  sim::Tick hw_recv_process = 800;

  // One-word deliberate-update latency is about 7 us (§6).

  // Automatic update (§6 footnote: the snooping card captures writes from
  // the memory bus and sends them to the destination — no send instruction
  // at all). Costs: the user's stores, plus packetization in the snoop
  // hardware; no EISA DMA fetch is needed since the data comes off the bus.
  sim::Tick snoop_pack = 800;
  sim::Tick store_per_word = 30;  // write to own memory through the bus
};

// Everything in one bag; most constructors take a const Params&.
struct Params {
  PciParams pci;
  VrpcParams vrpc;
  HostParams host;
  NetParams net;
  LanaiParams lanai;
  VmmcParams vmmc;
  EthernetParams ethernet;
  ShrimpParams shrimp;
};

// The default-calibrated parameter set (matches the paper's platform).
inline const Params& DefaultParams() {
  static const Params p{};
  return p;
}

}  // namespace vmmc
