// Distributed shared memory over VMMC — the application class the SHRIMP
// project built on this communication model (the paper's reference [7]
// introduces VMMC as "software support for virtual memory-mapped
// communication"; shared virtual memory was its flagship workload).
//
// Model: a page-granular shared region with home-based, lock-consistent
// coherence. Every page has a home rank holding the authoritative copy in
// an exported buffer. Consistency is acquire/release:
//
//   Acquire(lock)  — spin on the lock server (rank 0) via an Active
//                    Messages request; on success, invalidate all cached
//                    remote pages (conservative entry consistency);
//   Read           — local pages read the home copy directly; remote
//                    pages fault into a local cache: an AM request asks
//                    the home, which pushes the page with ONE VMMC
//                    deliberate update straight into the requester's
//                    exported cache — zero-copy on both ends;
//   Write          — updates the local (home or cached) copy and marks
//                    the page dirty;
//   Release(lock)  — writes dirty remote pages back with direct VMMC
//                    sends into their homes' exported segments, then
//                    releases the lock.
//
// Data never touches a control message: AM carries only {page number};
// pages travel as VMMC transfers between exported buffers, exactly the
// "data passing without control passing" pattern of §2.
//
// Races on unlocked data are undefined behaviour, as in any lock-based
// DSM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/compat/am.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/cluster.h"

namespace vmmc::dsm {

struct DsmOptions {
  std::uint32_t total_pages = 32;  // shared region size, 4 KB pages
  std::string tag = "dsm";         // export-namespace prefix
};

class DsmNode {
 public:
  // One per rank. After Create, every pair must be wired with Connect
  // (both directions at once) before shared-memory operations start.
  static sim::Task<Result<std::unique_ptr<DsmNode>>> Create(
      vmmc_core::Cluster& cluster, int rank, int size, DsmOptions options = {});

  // Pairwise wiring: cross-imports home segments and cache regions and
  // connects the AM control channel. Call once per unordered pair.
  sim::Task<Status> Connect(DsmNode& peer);

  // Starts serving fetch/lock requests; call on every rank after wiring.
  void StartService();
  void StopService();

  int rank() const { return rank_; }
  std::uint32_t total_pages() const { return options_.total_pages; }
  int HomeOf(std::uint32_t page) const {
    return static_cast<int>(page % static_cast<std::uint32_t>(size_));
  }

  // --- shared-memory operations (byte-addressed into the region) ---
  sim::Task<Status> Read(std::uint64_t offset, std::span<std::uint8_t> out);
  sim::Task<Status> Write(std::uint64_t offset, std::span<const std::uint8_t> in);

  // --- synchronization ---
  sim::Task<Status> Acquire(std::uint32_t lock_id);
  sim::Task<Status> Release(std::uint32_t lock_id);

  struct Stats {
    std::uint64_t page_fetches = 0;
    std::uint64_t write_backs = 0;
    std::uint64_t lock_waits = 0;  // busy replies while spinning
  };
  const Stats& stats() const { return stats_; }

 private:
  DsmNode(vmmc_core::Cluster& cluster, int rank, int size, DsmOptions options)
      : cluster_(cluster), rank_(rank), size_(size), options_(options) {}

  struct PageState {
    bool valid = false;  // cached copy of a REMOTE page is current
    bool dirty = false;  // local copy modified since last write-back
  };

  // Ensures the page is locally readable; returns the VA of its bytes.
  sim::Task<Result<mem::VirtAddr>> EnsurePage(std::uint32_t page, bool for_write);
  // Home side: pushes `page` and its completion flag to a requester.
  sim::Process PushPage(std::uint32_t page, std::uint32_t gen, int requester);
  std::uint32_t HomeIndex(std::uint32_t page) const {
    return page / static_cast<std::uint32_t>(size_);
  }

  vmmc_core::Cluster& cluster_;
  int rank_;
  int size_;
  DsmOptions options_;

  std::unique_ptr<vmmc_core::Endpoint> ep_;      // data plane
  std::unique_ptr<compat::AmEndpoint> control_;  // control plane
  mem::VirtAddr home_segment_ = 0;  // exported: pages homed here
  mem::VirtAddr cache_ = 0;         // exported: fetched remote pages land here
  std::unordered_map<int, vmmc_core::ProxyAddr> home_proxy_;   // peer home segments
  std::unordered_map<int, vmmc_core::ProxyAddr> cache_proxy_;  // peer cache regions
  mem::VirtAddr staging_ = 0;

  std::vector<PageState> pages_;
  std::unordered_map<std::uint32_t, int> locks_;  // rank 0 only: holder by lock id
  std::uint32_t fetch_gen_ = 0;
  Stats stats_;
};

}  // namespace vmmc::dsm
