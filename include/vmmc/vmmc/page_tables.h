// The two page tables the VMMC design keeps on each network interface
// (§4.4), mirrored from the SHRIMP design:
//
//  * the INCOMING page table — one per interface, one entry per physical
//    memory frame; says whether an incoming message may write the frame
//    and whether delivery should raise a notification;
//  * the OUTGOING page table — one per *process* using VMMC on the node
//    (unlike SHRIMP's one per interface, §6); each entry corresponds to a
//    proxy page of an imported receive buffer and encodes, in a 32-bit
//    integer, the destination node index and physical page address.
//
// Proxy addresses: an address in the sender's destination proxy space is a
// proxy page number plus an offset within the page (§4.4). The proxy space
// is a separate address space in this implementation (as on Myrinet).
#pragma once

#include <cstdint>
#include <vector>

#include "vmmc/mem/types.h"
#include "vmmc/util/status.h"

namespace vmmc::vmmc_core {

// An address in a process's destination proxy space.
using ProxyAddr = std::uint64_t;

constexpr std::uint64_t ProxyPage(ProxyAddr a) { return mem::PageNumber(a); }
constexpr std::uint64_t ProxyOffset(ProxyAddr a) { return mem::PageOffset(a); }
constexpr ProxyAddr MakeProxyAddr(std::uint64_t page, std::uint64_t offset) {
  return mem::PageAddr(page) + offset;
}

// ---------------------------------------------------------------------------
// Outgoing page table (per process; lives in LANai SRAM).
// ---------------------------------------------------------------------------
//
// Entry layout (the paper's "32-bit integer which encodes the destination
// node index and physical page address"):
//   bit 31    : valid
//   bits 30-24: destination node index (7 bits, up to 128 nodes)
//   bits 23-0 : destination physical frame number (24 bits, up to 64 GB)
class OutgoingPageTable {
 public:
  explicit OutgoingPageTable(std::uint32_t num_entries)
      : entries_(num_entries, 0) {}

  static constexpr std::uint32_t kValidBit = 0x8000'0000u;
  static constexpr std::uint32_t kMaxNode = 127;
  static constexpr std::uint64_t kMaxPfn = (1u << 24) - 1;

  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(entries_.size());
  }
  // Raw 32-bit entry (tests / diagnostics).
  std::uint32_t raw(std::uint32_t proxy_page) const {
    return entries_.at(proxy_page);
  }

  // Installs a mapping proxy_page -> (node, pfn).
  Status Set(std::uint32_t proxy_page, std::uint32_t dst_node, mem::Pfn dst_pfn);
  Status Clear(std::uint32_t proxy_page);

  struct Target {
    std::uint32_t node;
    mem::Pfn pfn;
  };
  // Looks up a proxy page; fails on out-of-range or invalid entries — this
  // check is what stops a process sending anywhere it has not imported.
  Result<Target> Lookup(std::uint32_t proxy_page) const;

  // Finds `count` consecutive invalid entries and returns the first index
  // (import-time proxy-page allocation). Fails if no run exists.
  Result<std::uint32_t> AllocateRun(std::uint32_t count) const;

  std::uint32_t valid_entries() const;

 private:
  std::vector<std::uint32_t> entries_;
};

// ---------------------------------------------------------------------------
// Incoming page table (per interface): one entry per physical frame.
// ---------------------------------------------------------------------------
struct IncomingEntry {
  bool recv_enabled = false;  // frame may be written by incoming messages
  bool notify = false;        // delivery raises a notification
  std::int32_t owner_pid = -1;
  std::uint32_t export_id = 0;
};

class IncomingPageTable {
 public:
  explicit IncomingPageTable(std::uint64_t num_frames)
      : entries_(num_frames) {}

  std::uint64_t num_frames() const { return entries_.size(); }

  Status Enable(mem::Pfn pfn, bool notify, std::int32_t owner_pid,
                std::uint32_t export_id);
  Status Disable(mem::Pfn pfn);

  // nullptr if out of range; receive path treats that as a violation.
  const IncomingEntry* Find(mem::Pfn pfn) const;

  std::uint64_t enabled_count() const;

 private:
  std::vector<IncomingEntry> entries_;
};

}  // namespace vmmc::vmmc_core
