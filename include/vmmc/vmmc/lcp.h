// The VMMC LANai control program (§4) — the software state machine that
// runs on the NIC and implements virtual memory-mapped communication:
//
//  * per-process send queues in SRAM; short sends (<= 128 B) carry their
//    data in the queue entry, long sends carry only {virtual address,
//    length, proxy address} (§4.5);
//  * per-process outgoing page tables and software TLBs in SRAM (§4.4/4.5);
//  * long messages chunked at the page size, first chunk aligned to the
//    source page boundary; host-DMA and net-DMA pipelined; headers
//    precomputed while the previous chunk's host DMA is in flight (§4.5);
//  * two-address scatter on receive for chunks crossing a destination page
//    boundary (§4.5);
//  * completion word DMAed back to user space when the last chunk is
//    safely in LANai SRAM (§4.5);
//  * software-TLB misses serviced by the host driver via interrupt, up to
//    32 translations per interrupt (§4.5);
//  * notifications raised through the driver and a signal (§2, §5.1);
//  * a tight sending loop for one-way traffic, abandoned when packets
//    arrive (§5.3 — the cause of the bidirectional bandwidth drop).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "vmmc/host/kernel.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/myrinet/packet.h"
#include "vmmc/obs/metrics.h"
#include "vmmc/obs/trace.h"
#include "vmmc/params.h"
#include "vmmc/sim/sync.h"
#include "vmmc/sim/task.h"
#include "vmmc/util/buffer.h"
#include "vmmc/vmmc/go_back_n.h"
#include "vmmc/vmmc/page_tables.h"
#include "vmmc/vmmc/sw_tlb.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::vmmc_core {

// Per-node routing table produced by the mapping phase: source route to
// every destination node.
using RouteTable = std::vector<myrinet::Route>;

// Values the LCP writes into the user-space completion word.
enum class SendStatus : std::uint32_t {
  kPending = 0,
  kDone = 1,
  kBadProxy = 2,    // proxy page not mapped / crosses import boundary
  kBadLength = 3,   // exceeds the 8 MB limit
  kBadAddress = 4,  // source virtual address unmapped
};

// One-sided RDMA-write addressing attached to a send request: the data
// lands in an rtag-registered region on the destination instead of going
// through the proxy/outgoing page table. Heap-allocated and null on the
// ordinary two-sided path, which therefore stays allocation-free.
struct DirectSend {
  std::uint32_t dst_node = 0;
  std::uint32_t rtag = 0;    // remote registered region
  std::uint64_t offset = 0;  // byte offset into that region
  // Remote completion notification: after the last data chunk, a 4-byte
  // fin chunk carrying fin_value lands at (fin_rtag, fin_offset) on the
  // same node. In-order go-back-N delivery guarantees it arrives after
  // the data. fin_rtag 0: no fin.
  std::uint32_t fin_rtag = 0;
  std::uint64_t fin_offset = 0;
  std::uint32_t fin_value = 0;
};

// One-sided RDMA-read: ask src_node to stream len bytes starting at
// (src_rtag, src_offset) into our local (dst_rtag, dst_offset) region,
// then drop fin_value at (fin_rtag, fin_offset) here so we can spin on
// it. On a remote protection violation the server sets bit 31 of
// fin_value instead of sending data.
struct ReadRequest {
  std::uint32_t src_node = 0;
  std::uint32_t src_rtag = 0;
  std::uint64_t src_offset = 0;
  std::uint32_t dst_rtag = 0;
  std::uint64_t dst_offset = 0;
  std::uint32_t fin_rtag = 0;
  std::uint64_t fin_offset = 0;
  std::uint32_t fin_value = 0;
};

// One entry of a per-process send queue. The host writes it with PIO; the
// LCP consumes it.
struct SendRequest {
  std::uint32_t len = 0;                   // message length in bytes
  ProxyAddr proxy = 0;
  mem::VirtAddr src_va = 0;                // long sends
  util::Buffer inline_data;                // short sends (pooled, COW)
  bool notify = false;
  std::uint32_t slot = 0;                  // completion slot
  std::unique_ptr<DirectSend> direct;      // one-sided write (null: proxy)
  std::unique_ptr<ReadRequest> read;       // one-sided read (null otherwise)
};

// NIC-resident state of one process using VMMC (all accounted in SRAM).
class ProcState {
 public:
  ProcState(sim::Simulator& sim, const VmmcParams& params,
            host::UserProcess& process);

  int pid() const { return process_->pid(); }
  host::UserProcess& process() { return *process_; }
  OutgoingPageTable& outgoing() { return outgoing_; }
  SwTlb& tlb() { return tlb_; }

  // Send queue, bounded by send_queue_entries; the host acquires a slot
  // token before writing an entry.
  sim::Semaphore& queue_slots() { return queue_slots_; }
  std::deque<SendRequest>& send_queue() { return send_queue_; }

  // Completion words live in pinned user memory at completion_base; the
  // events model the cache line the user spins on.
  mem::VirtAddr completion_base = 0;
  std::vector<std::unique_ptr<sim::Event>> completion_events;

  // TLB-miss handshake with the driver.
  std::optional<mem::Vpn> pending_miss;
  sim::Event tlb_filled;

  // A long send in progress: the main loop advances it one chunk at a
  // time so incoming packets are serviced between chunks (§5.3).
  struct ActiveLongSend {
    SendRequest req;
    std::uint32_t offset = 0;
    bool first_chunk = true;
    // Destination node, resolved at pickup. The main loop skips this
    // process while the go-back-N window to that node is closed (a short
    // send parks here too when it hits a closed window).
    std::uint32_t dst_node = 0;
    // Direct send with a fin: the data chunks are out, the 4-byte fin
    // chunk is still owed (kept as a stage so window-gating applies).
    bool fin_stage = false;
  };
  std::optional<ActiveLongSend> active;

  // SRAM regions backing this state (freed on unregister).
  std::vector<std::uint32_t> sram_regions;

 private:
  host::UserProcess* process_;
  OutgoingPageTable outgoing_;
  SwTlb tlb_;
  sim::Semaphore queue_slots_;
  std::deque<SendRequest> send_queue_;
};

// A notification waiting for the driver to deliver (§2: invoke a user-level
// handler in the receiving process after delivery).
struct PendingNotification {
  int pid = -1;
  std::uint32_t export_id = 0;
  std::uint32_t msg_len = 0;
};

class VmmcLcp : public lanai::Lcp {
 public:
  VmmcLcp(const Params& params, RouteTable routes);

  // --- LCP main loop (runs on the LANai) ---
  sim::Process Run(lanai::NicCard& nic) override;

  // Fabric drop notice (misroute / empty route): triggers an immediate
  // go-back-N retransmission toward that destination instead of waiting
  // out the RTO.
  void OnDropNotice(const myrinet::Packet& packet) override;

  // --- host-visible interface (driver / daemon / library reach these
  //     structures through PIO and shared SRAM; the callers charge the
  //     access costs) ---
  Result<ProcState*> RegisterProcess(host::UserProcess& process);
  Status UnregisterProcess(int pid);
  ProcState* FindProc(int pid);
  std::size_t process_count() const { return procs_.size(); }

  IncomingPageTable& incoming() { return *incoming_; }

  // --- registered receive regions (rkey model) ---
  // rtag-addressed chunks resolve against this SRAM table instead of
  // carrying physical addresses: dst_pa0 = (rtag << 32) | offset. One
  // 32-bit tag replaces shipping the whole frame list to every sender.
  // Frames must already be pinned by the registrar (export, registration
  // cache); `first_page_offset` is the offset of region byte 0 within
  // frames[0].
  struct RecvRegion {
    int pid = -1;
    std::uint64_t first_page_offset = 0;
    std::uint64_t len = 0;
    std::vector<mem::Pfn> frames;
    std::uint32_t sram_region = 0;
  };
  Result<std::uint32_t> CreateRecvRegion(int pid,
                                         std::uint64_t first_page_offset,
                                         std::uint64_t len,
                                         std::vector<mem::Pfn> frames);
  Status ReleaseRecvRegion(std::uint32_t rtag);
  const RecvRegion* FindRecvRegion(std::uint32_t rtag) const;
  std::size_t recv_region_count() const { return recv_regions_.size(); }

  // Host posts a send request (after charging the PIO writes) and rings
  // the doorbell.
  Status PostSend(ProcState& proc, SendRequest request);

  // Driver: TLB-miss service (§4.5).
  std::optional<std::pair<int, mem::Vpn>> TakePendingTlbMiss();
  void CompleteTlbFill(int pid,
                       const std::vector<std::pair<mem::Vpn, mem::Pfn>>& fills);

  // Driver: pending notifications.
  std::optional<PendingNotification> PopNotification();

  // --- statistics (read by tests and benches) ---
  struct Stats {
    std::uint64_t sends_processed = 0;
    std::uint64_t short_sends = 0;
    std::uint64_t long_sends = 0;
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunks_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t send_errors = 0;
    std::uint64_t protection_violations = 0;  // receive-side rejects
    std::uint64_t crc_drops = 0;
    std::uint64_t tlb_miss_interrupts = 0;
    std::uint64_t notifications_raised = 0;
    std::uint64_t tight_loop_chunks = 0;
    std::uint64_t main_loop_chunks = 0;
    // Reliability layer (go-back-N; 0 when reliability.enabled is false).
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t retransmits = 0;          // data packets re-queued
    std::uint64_t retransmit_timeouts = 0;  // RTO expiries
    std::uint64_t duplicate_chunks = 0;     // receiver: already delivered
    std::uint64_t out_of_order_chunks = 0;  // receiver: gap, discarded
    std::uint64_t drop_notices = 0;         // fabric misroute reports
    std::uint64_t window_stalls = 0;        // sends parked on a full window
    // One-sided RDMA (rtag-addressed; 0 unless the RDMA API is used).
    std::uint64_t rdma_writes = 0;          // direct-send requests picked up
    std::uint64_t rdma_read_requests = 0;   // read requests sent by this node
    std::uint64_t rdma_reads_served = 0;    // read requests served for peers
    std::uint64_t rdma_fins_sent = 0;       // completion fin chunks emitted
  };
  const Stats& stats() const { return stats_; }

  // True once the main loop has initialized its SRAM structures.
  bool running() const { return running_; }

  // Node id (== NIC id) once running; -1 before.
  int node_id() const { return nic_ != nullptr ? nic_->nic_id() : -1; }

 private:
  // Starts a freshly picked-up request: full processing for short sends,
  // an ActiveLongSend for long ones.
  sim::Process StartSend(lanai::NicCard& nic, ProcState& proc, SendRequest req);
  sim::Process HandleShortSend(lanai::NicCard& nic, ProcState& proc,
                               SendRequest& req);
  // Advances an active long send by one chunk.
  sim::Process SendOneChunk(lanai::NicCard& nic, ProcState& proc);
  void FinishRequest(ProcState& proc, std::uint32_t slot, SendStatus status);
  sim::Process HandleRecv(lanai::NicCard& nic, lanai::ReceivedPacket rp);
  // --- one-sided RDMA ---
  // Emits a kRdmaRead request packet (window already checked by caller).
  sim::Process SendReadRequest(lanai::NicCard& nic, ProcState& proc,
                               SendRequest& req);
  // Parses an incoming kRdmaRead and queues it for serving.
  void HandleReadRequest(const ChunkHeader& h,
                         std::span<const std::uint8_t> data);
  // Serves one chunk (or the fin) of the front read request.
  sim::Process ServeReadChunk(lanai::NicCard& nic);
  // 4-byte rtag-addressed completion chunk.
  sim::Process SendFinChunk(lanai::NicCard& nic, std::uint32_t dst_node,
                            std::uint32_t rtag, std::uint64_t offset,
                            std::uint32_t value);
  // Resolves an rtag-addressed target to scatter addresses.
  struct RtagTarget {
    std::uint64_t pa0 = 0;
    std::uint64_t pa1 = 0;
    std::uint32_t seg0 = 0;
  };
  Result<RtagTarget> ResolveRtag(std::uint32_t rtag, std::uint64_t offset,
                                 std::uint32_t chunk_len) const;
  // Translates a source page, interrupting the host on a TLB miss.
  sim::Task<Result<mem::Pfn>> TranslateSrc(lanai::NicCard& nic, ProcState& proc,
                                           mem::Vpn vpn);
  // Validates the destination of a chunk; fills pa0/pa1.
  Result<std::pair<std::uint64_t, std::uint64_t>> ResolveChunkTarget(
      ProcState& proc, ProxyAddr proxy, std::uint32_t chunk_len,
      std::uint32_t* dst_node);
  void WriteCompletion(ProcState& proc, std::uint32_t slot, SendStatus status);
  // Dedicated transmit pump: keeps net-DMA busy while the main path host-
  // DMAs the next chunk (the §4.5 pipelining).
  sim::Process TxPump(lanai::NicCard& nic);
  ProcState* NextProcWithWork();

  // --- reliability layer (go-back-N; see go_back_n.h and DESIGN.md) ---
  bool reliable() const { return params_.vmmc.reliability.enabled; }
  // Window + SRAM retransmit-pool admission for one more packet to `dst`.
  bool WindowOpen(std::uint32_t dst_node) const;
  // Assigns the next seq to `dst` (must match the seq already encoded in
  // `packet`), stores the framed packet in the retransmit pool, and arms
  // the RTO timer if this is the first unacked packet.
  void RecordSentPacket(lanai::NicCard& nic, std::uint32_t dst_node,
                        const myrinet::Packet& packet);
  sim::Process HandleAck(lanai::NicCard& nic, lanai::ReceivedPacket rp);
  // Builds and queues a cumulative ACK toward `src_node`; resets the
  // delayed-ack state for that peer.
  sim::Process SendAck(lanai::NicCard& nic, std::uint32_t src_node);
  sim::Process DelayedAck(lanai::NicCard& nic, std::uint32_t src_node,
                          std::uint64_t gen);
  // Re-queues every unacked packet toward `dst` (go-back-N resend).
  sim::Process RetransmitWindow(lanai::NicCard& nic, std::uint32_t dst_node);
  sim::Process RtoTimer(lanai::NicCard& nic, std::uint32_t dst_node,
                        std::uint64_t gen);
  sim::Process FastRetransmit(lanai::NicCard& nic, std::uint32_t dst_node);
  void ArmRtoTimer(lanai::NicCard& nic, std::uint32_t dst_node);

  const Params& params_;
  RouteTable routes_;
  lanai::NicCard* nic_ = nullptr;

  std::vector<std::unique_ptr<ProcState>> procs_;
  std::size_t rr_cursor_ = 0;  // round-robin over send queues
  std::unique_ptr<IncomingPageTable> incoming_;  // sized at Run (needs machine)
  std::deque<PendingNotification> notifications_;
  // Ordered by rtag: UnregisterProcess walks this map freeing SRAM
  // regions, and the free-list order must not depend on hash order
  // (vmmc-lint R2 / determinism contract).
  std::map<std::uint32_t, RecvRegion> recv_regions_;
  std::uint32_t next_rtag_ = 1;  // 0 means "no region" on the wire

  // Read requests waiting to be served, FIFO. The main loop serves one
  // chunk per iteration between receive handling and local send work.
  struct ReadServe {
    std::uint32_t requester = 0;
    std::uint32_t src_rtag = 0;
    std::uint64_t src_offset = 0;
    std::uint32_t dst_rtag = 0;
    std::uint64_t dst_offset = 0;
    std::uint32_t len = 0;
    std::uint32_t offset = 0;
    bool fin_stage = false;
    std::uint32_t fin_rtag = 0;
    std::uint64_t fin_offset = 0;
    std::uint32_t fin_value = 0;
  };
  std::deque<ReadServe> read_serves_;
  Stats stats_;

  // Pipelining machinery.
  struct TxItem {
    myrinet::Packet packet;
    bool release_staging = false;
  };
  std::unique_ptr<sim::Mailbox<TxItem>> tx_box_;
  std::unique_ptr<sim::Semaphore> staging_;  // 2 chunk staging buffers

  // Per-peer go-back-N state, indexed by node id; sized at Run. The
  // retransmit buffer lives in a shared SRAM pool of retx_pool_entries
  // framed chunks (allocated at Run); retx_in_use_ tracks its occupancy.
  struct RetxSlot {
    myrinet::Packet packet;
    std::uint32_t seq = 0;
  };
  struct PeerTx {
    explicit PeerTx(std::uint32_t window) : gbn(window) {}
    GbnSender gbn;
    std::deque<RetxSlot> unacked;
    sim::Tick cur_rto = 0;
    std::uint64_t timer_gen = 0;  // bumping it cancels the armed timer
    bool fast_retx_pending = false;  // coalesces bursts of drop notices
  };
  struct PeerRx {
    GbnReceiver gbn;
    std::uint32_t unacked_data = 0;  // accepted chunks since the last ACK
    std::uint64_t ack_gen = 0;       // bumping it cancels the delayed ACK
  };
  std::vector<PeerTx> peer_tx_;
  std::vector<PeerRx> peer_rx_;
  std::uint32_t retx_in_use_ = 0;

  // Observability (node<N>.lcp.* / node<N>.tlb.*), bound in Run once the
  // node id is known. The raw Stats struct stays the cheap test-facing
  // view; the registry is the cross-run, dumpable one.
  struct Obs {
    obs::Counter* sends = nullptr;
    obs::Counter* chunks_sent = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* chunks_received = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* tlb_miss_interrupts = nullptr;
    obs::Counter* protection_violations = nullptr;
    obs::Counter* crc_drops = nullptr;
    obs::Counter* notifications = nullptr;
    obs::Gauge* send_queue_depth = nullptr;
    obs::Histo* host_dma_ns = nullptr;   // per-chunk host-DMA phase
    obs::Histo* translate_ns = nullptr;  // per-chunk source translation
    obs::Counter* tlb_hits = nullptr;
    obs::Counter* tlb_misses = nullptr;
    obs::Counter* tlb_evictions = nullptr;
    obs::Counter* acks_sent = nullptr;
    obs::Counter* acks_received = nullptr;
    obs::Counter* retransmits = nullptr;
    obs::Counter* retransmit_timeouts = nullptr;
    obs::Counter* duplicate_chunks = nullptr;
    obs::Counter* out_of_order_chunks = nullptr;
    obs::Counter* drop_notices = nullptr;
    obs::Counter* window_stalls = nullptr;
    obs::Gauge* retx_in_use = nullptr;
    obs::Counter* rdma_writes = nullptr;
    obs::Counter* rdma_reads_served = nullptr;
    int track = -1;  // "node<N>.lcp" span track
  };
  void BindObs();
  void UpdateQueueDepth();
  Obs obs_;

  bool running_ = false;
};

}  // namespace vmmc::vmmc_core
