// MPI-style point-to-point channels over VMMC with automatic protocol
// selection:
//
//  * EAGER (len <= P2pParams::eager_max): the message is bcopy'd through
//    an exported slot buffer — one host copy on each side, minimal
//    latency for small messages;
//  * RENDEZVOUS (larger): zero-copy reader-pull (the RGET scheme). The
//    sender registers its source buffer through the registration cache
//    and posts a small RTS carrying the region's rtag; the receiver
//    registers its destination and issues a one-sided RdmaRead straight
//    from source to destination memory, then acks. No host copy touches
//    the payload on either side, and repeated transfers from the same
//    buffer hit warm pin-downs in the cache.
//
// A rendezvous Send completes when the RTS is posted, not when the data
// is pulled; the source buffer must stay untouched until the channel's
// next Send (which fences on the consumption ack) or an explicit Flush.
// The span-based Send stages through channel-owned memory, so only the
// zero-copy VirtAddr variant carries that obligation.
//
// Each direction of a channel is one exported slot:
//   [payload (eager capacity)] [u32 len] [u32 kind] [u32 seq]
// plus an exported ack word; the trailer is sent as a separate in-order
// message so "seq changed" commits a complete payload, and the ack write
// is what gives one-deep credit flow control.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vmmc/vmmc/api.h"

namespace vmmc::vmmc_core {

class P2pChannel {
 public:
  // Builds this side of the channel between `ep`'s process and node
  // `peer`. Both sides must call with the same `tag` (it namespaces the
  // exports); the import handshake waits for the peer, so the two
  // Creates may run in either order. `params` sets the eager/rendezvous
  // crossover and poll interval (see P2pParams for the tuned defaults).
  static sim::Task<Result<std::unique_ptr<P2pChannel>>> Create(
      Endpoint& ep, int peer, std::string tag, P2pParams params);

  int peer() const { return peer_; }
  const P2pParams& params() const { return params_; }

  // Sends from simulated user memory; zero-copy on the rendezvous path
  // (see the buffer-reuse note above).
  sim::Task<Status> Send(mem::VirtAddr src, std::uint32_t len);
  // Convenience: stages `data` into channel-owned memory first, so the
  // caller's bytes are free to change as soon as this returns.
  sim::Task<Status> Send(std::span<const std::uint8_t> data);

  // Receives the next message into [dst, dst+cap) of simulated user
  // memory; returns its length. The rendezvous pull lands directly here.
  sim::Task<Result<std::uint32_t>> RecvInto(mem::VirtAddr dst,
                                            std::uint32_t cap);
  // Convenience: receives via an internal bounce buffer into a vector.
  sim::Task<Result<std::vector<std::uint8_t>>> Recv();

  // Waits until the peer consumed the last message and releases the
  // pending source registration (rendezvous zero-copy sends only).
  sim::Task<Status> Flush();

  struct Stats {
    std::uint64_t eager_sends = 0;
    std::uint64_t rendezvous_sends = 0;
    std::uint64_t eager_recvs = 0;
    std::uint64_t rendezvous_recvs = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  P2pChannel(Endpoint& ep, int peer, std::string tag, P2pParams params)
      : ep_(ep), peer_(peer), tag_(std::move(tag)), params_(params) {}

  // Slot geometry. kKindEager payloads use [0, eager_cap); the RTS is a
  // 12-byte record {u32 rtag, u64 region offset} in the same area.
  static constexpr std::uint32_t kKindEager = 1;
  static constexpr std::uint32_t kKindRts = 2;
  static constexpr std::uint32_t kRtsBytes = 12;
  std::uint32_t eager_cap() const {
    return params_.eager_max < kRtsBytes ? kRtsBytes : params_.eager_max;
  }

  sim::Task<Status> SetupBuffers();
  // Blocks until the peer acked message `seq`; retires the pending
  // rendezvous source registration once it has.
  sim::Task<Status> WaitAcked(std::uint32_t seq);
  sim::Task<Status> SendTrailer(std::uint32_t len, std::uint32_t kind);
  std::uint32_t ReadWord(mem::VirtAddr va) const;
  void WriteWord(mem::VirtAddr va, std::uint32_t v);

  Endpoint& ep_;
  int peer_;
  std::string tag_;
  P2pParams params_;

  // Receive side (exported by us).
  mem::VirtAddr recv_slot = 0;
  mem::VirtAddr ack_out = 0;
  std::uint32_t next_recv_seq = 1;
  // Send side (imported from the peer).
  ProxyAddr send_slot = 0;
  ProxyAddr peer_ack = 0;
  mem::VirtAddr send_staging = 0;
  mem::VirtAddr ack_word = 0;
  std::uint32_t next_send_seq = 1;

  // Source registration of the last rendezvous send, held until acked.
  MemRegion pending_region_{};
  bool pending_region_live_ = false;

  // Lazily grown staging for span-based rendezvous sends / Recv().
  mem::VirtAddr rdv_staging_ = 0;
  std::uint32_t rdv_staging_cap_ = 0;
  mem::VirtAddr recv_bounce_ = 0;
  std::uint32_t recv_bounce_cap_ = 0;
  sim::Task<Result<mem::VirtAddr>> EnsureScratch(mem::VirtAddr* va,
                                                 std::uint32_t* cap,
                                                 std::uint32_t need);

  Stats stats_;
  obs::Counter* eager_sends_m_ = nullptr;
  obs::Counter* rdv_sends_m_ = nullptr;
};

}  // namespace vmmc::vmmc_core
