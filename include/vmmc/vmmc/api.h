// The VMMC basic library (§4.1): the user-level API a program links with
// to communicate using VMMC calls. One Endpoint per (process, NIC).
//
// Core operations, following the paper:
//   ExportBuffer  — offer part of the address space as a receive buffer;
//   ImportBuffer  — map a remote receive buffer into the destination proxy
//                   space; returns a proxy address;
//   SendMsg       — deliberate-update transfer, synchronous (returns when
//                   the send buffer is reusable);
//   SendMsgAsync / CheckSend / WaitSend — asynchronous variant (§5.3);
//   SetNotificationHandler — user-level handler invoked after a message
//                   with a notification is delivered (§2).
//
// There is no receive operation: data lands directly in exported memory
// without interrupting the receiver's CPU (§2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/daemon.h"
#include "vmmc/vmmc/driver.h"
#include "vmmc/vmmc/lcp.h"
#include "vmmc/vmmc/reg_cache.h"

namespace vmmc::vmmc_core {

// Ticket for an asynchronous send: names the completion slot (and its
// generation, so a recycled slot cannot satisfy a stale handle). Poll with
// CheckSend, retire with WaitSend.
struct SendHandle {
  std::uint32_t slot = 0;
  std::uint64_t generation = 0;
};

// Per-send flags.
struct SendOptions {
  bool notify = false;  // invoke the importer's notification handler (§2)
};

// Controls ImportBuffer's handling of a not-yet-exported name.
struct ImportOptions {
  // Retry until the export appears (the exporter may not have run yet).
  bool wait = false;
  int max_attempts = 200;                             // retries before giving up
  sim::Tick retry_interval = 500 * sim::kMicrosecond;  // between retries (ns tick)
};

// Where a one-sided operation lands on (or pulls from) a peer: the node,
// the peer's registered-region tag, and a byte offset into that region.
// The rtag comes out of the peer's RegisterMemory (MemRegion::rtag) or an
// import (ImportedBuffer::rtag) and must be communicated out of band —
// exactly the rkey exchange of later RDMA interconnects.
struct RemoteTarget {
  int node = -1;
  std::uint32_t rtag = 0;
  std::uint64_t offset = 0;
};

// Remote completion notification for RdmaWrite: after the data, a 4-byte
// fin chunk carrying `fin_value` lands at (fin_rtag, fin_offset) on the
// destination node; the receiver spins on that word. fin_rtag 0: none.
struct RdmaOptions {
  std::uint32_t fin_rtag = 0;
  std::uint64_t fin_offset = 0;
  std::uint32_t fin_value = 0;
};

class Endpoint {
 public:
  using NotificationHandler =
      std::function<sim::Process(const UserNotification&)>;

  // Opens VMMC for `process`: registers it with the LCP (allocating its
  // SRAM structures), sets up the completion-word array, and installs the
  // notification signal handler.
  static Result<std::unique_ptr<Endpoint>> Open(const Params& params,
                                                host::Machine& machine,
                                                VmmcLcp& lcp, VmmcDriver& driver,
                                                VmmcDaemon& daemon,
                                                host::UserProcess& process);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  host::UserProcess& process() { return *process_; }
  mem::AddressSpace& memory() { return process_->address_space(); }
  host::Machine& machine() { return *machine_; }
  int node_id() const { return daemon_->node_id(); }

  // --- buffer management helpers (user-space malloc over the simulated
  //     address space; page-aligned so buffers are exportable; `len` in
  //     bytes) ---
  Result<mem::VirtAddr> AllocBuffer(std::uint32_t len);
  Status FreeBuffer(mem::VirtAddr va);
  Status WriteBuffer(mem::VirtAddr va, std::span<const std::uint8_t> data);
  Status ReadBuffer(mem::VirtAddr va, std::span<std::uint8_t> out) const;

  // --- export / import ---
  // Offers [va, va+len) (page-aligned, len in bytes) as a receive buffer
  // under options.name; pins the pages and enables them for receive.
  sim::Task<Result<ExportId>> ExportBuffer(mem::VirtAddr va, std::uint32_t len,
                                           ExportOptions options);
  // Withdraws an export; in-flight deliveries to it become violations.
  sim::Task<Status> UnexportBuffer(ExportId id);
  // Maps the buffer exported under `name` on `remote_node` into this
  // process's destination proxy space; the returned proxy address is
  // what SendMsg targets.
  sim::Task<Result<ImportedBuffer>> ImportBuffer(int remote_node,
                                                 const std::string& name,
                                                 ImportOptions options = {});
  // Releases the proxy mapping (outgoing page-table entries).
  sim::Task<Status> UnimportBuffer(const ImportedBuffer& buffer);

  // --- data transfer ---
  // Synchronous send: returns once the send buffer is reusable — for short
  // messages right after the data is PIO-copied to the interface, for long
  // messages once the last chunk is in LANai SRAM (§5.3).
  sim::Task<Status> SendMsg(mem::VirtAddr src, ProxyAddr dst, std::uint32_t len,
                            SendOptions options = {});
  // Asynchronous send: returns after posting the request (§5.3).
  sim::Task<Result<SendHandle>> SendMsgAsync(mem::VirtAddr src, ProxyAddr dst,
                                             std::uint32_t len,
                                             SendOptions options = {});
  // Non-blocking completion test (does not consume the handle).
  bool CheckSend(const SendHandle& handle) const;
  // Blocks (spins) until the send completes; consumes the handle.
  sim::Task<Status> WaitSend(SendHandle handle);

  // --- one-sided RDMA (registration cache + rtag addressing) ---
  // Registers [va, va+len) through the pin-down cache. A warm hit costs a
  // hash probe; a cold miss costs the pin syscall plus per-page work. The
  // returned region's rtag (nonzero for kRecv/kBoth) is what remote peers
  // target with RdmaWrite/RdmaRead.
  sim::Task<Result<MemRegion>> RegisterMemory(mem::VirtAddr va,
                                              std::uint64_t len,
                                              RegIntent intent);
  // Drops the reference; the cache keeps the pin-down warm for reuse.
  sim::Task<Status> UnregisterMemory(const MemRegion& region);
  RegCache& reg_cache() { return *reg_cache_; }

  // One-sided write: src bytes land in the remote registered region with
  // no receiver involvement. Async returns a SendHandle (local completion
  // = last chunk in LANai SRAM, same as SendMsg); the sync variant waits
  // for it. options selects the remote fin notification.
  sim::Task<Result<SendHandle>> RdmaWriteAsync(mem::VirtAddr src,
                                               RemoteTarget dst,
                                               std::uint32_t len,
                                               RdmaOptions options = {});
  sim::Task<Status> RdmaWrite(mem::VirtAddr src, RemoteTarget dst,
                              std::uint32_t len, RdmaOptions options = {});

  // One-sided read: asks src.node to stream `len` bytes from its
  // (src.rtag, src.offset) into our registered region `dst` at
  // `dst_offset`, then spins on an internal fin word the remote fin chunk
  // lands in. Returns PermissionDenied if the remote side rejected the
  // source range. At most kMaxOutstandingReads reads may be in flight.
  sim::Task<Status> RdmaRead(RemoteTarget src, std::uint32_t len,
                             const MemRegion& dst, std::uint64_t dst_offset = 0);
  static constexpr std::uint32_t kMaxOutstandingReads = 16;

  // --- notifications ---
  void SetNotificationHandler(ExportId id, NotificationHandler handler);
  std::uint64_t notifications_received() const { return notifications_received_; }

  // Errors of fire-and-forget short sends, observed via completion words.
  std::uint64_t deferred_send_errors() const { return deferred_send_errors_; }

  const VmmcLcp::Stats& nic_stats() const { return lcp_->stats(); }

 private:
  Endpoint(const Params& params, host::Machine& machine, VmmcLcp& lcp,
           VmmcDriver& driver, VmmcDaemon& daemon, host::UserProcess& process);

  sim::Process NotificationSignalHandler();
  sim::Process ReapSlot(SendHandle handle);
  Status ToStatus(SendStatus s) const;
  // Posts a prepared one-sided request through the slot/PIO machinery.
  sim::Task<Result<SendHandle>> PostOneSided(SendRequest req);
  // Lazily allocates + registers the 64-byte fin-word array reads spin on.
  sim::Task<Status> EnsureFinRegion();

  const Params& params_;
  host::Machine* machine_;
  VmmcLcp* lcp_;
  VmmcDriver* driver_;
  VmmcDaemon* daemon_;
  host::UserProcess* process_;
  ProcState* state_ = nullptr;

  // Completion slot bookkeeping (mirrors the per-slot user memory words).
  struct Slot {
    bool in_use = false;
    std::uint64_t generation = 0;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unique_ptr<sim::Semaphore> slot_tokens_;
  std::uint64_t next_generation_ = 1;

  // Registration cache; shared_ptr so the address-space release listener
  // (which cannot be removed) can hold a weak reference that outlives us.
  std::shared_ptr<RegCache> reg_cache_;

  // RdmaRead fin words: kMaxOutstandingReads 4-byte slots in registered
  // memory; a read claims a slot, the remote fin chunk lands in it.
  mem::VirtAddr fin_base_ = 0;
  MemRegion fin_region_{};
  std::vector<std::uint32_t> free_fin_slots_;
  std::uint32_t next_read_op_ = 0;

  std::unordered_map<ExportId, NotificationHandler> handlers_;
  std::uint64_t notifications_received_ = 0;
  std::uint64_t deferred_send_errors_ = 0;

  // Host-side posting cost, for the latency budget (node<N>.host.*).
  obs::Counter* send_posts_m_ = nullptr;
  obs::Counter* pio_post_ns_m_ = nullptr;
};

}  // namespace vmmc::vmmc_core
