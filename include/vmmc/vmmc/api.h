// The VMMC basic library (§4.1): the user-level API a program links with
// to communicate using VMMC calls. One Endpoint per (process, NIC).
//
// Core operations, following the paper:
//   ExportBuffer  — offer part of the address space as a receive buffer;
//   ImportBuffer  — map a remote receive buffer into the destination proxy
//                   space; returns a proxy address;
//   SendMsg       — deliberate-update transfer, synchronous (returns when
//                   the send buffer is reusable);
//   SendMsgAsync / CheckSend / WaitSend — asynchronous variant (§5.3);
//   SetNotificationHandler — user-level handler invoked after a message
//                   with a notification is delivered (§2).
//
// There is no receive operation: data lands directly in exported memory
// without interrupting the receiver's CPU (§2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/host/machine.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/daemon.h"
#include "vmmc/vmmc/driver.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// Ticket for an asynchronous send: names the completion slot (and its
// generation, so a recycled slot cannot satisfy a stale handle). Poll with
// CheckSend, retire with WaitSend.
struct SendHandle {
  std::uint32_t slot = 0;
  std::uint64_t generation = 0;
};

// Per-send flags.
struct SendOptions {
  bool notify = false;  // invoke the importer's notification handler (§2)
};

// Controls ImportBuffer's handling of a not-yet-exported name.
struct ImportOptions {
  // Retry until the export appears (the exporter may not have run yet).
  bool wait = false;
  int max_attempts = 200;                             // retries before giving up
  sim::Tick retry_interval = 500 * sim::kMicrosecond;  // between retries (ns tick)
};

class Endpoint {
 public:
  using NotificationHandler =
      std::function<sim::Process(const UserNotification&)>;

  // Opens VMMC for `process`: registers it with the LCP (allocating its
  // SRAM structures), sets up the completion-word array, and installs the
  // notification signal handler.
  static Result<std::unique_ptr<Endpoint>> Open(const Params& params,
                                                host::Machine& machine,
                                                VmmcLcp& lcp, VmmcDriver& driver,
                                                VmmcDaemon& daemon,
                                                host::UserProcess& process);
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  host::UserProcess& process() { return *process_; }
  mem::AddressSpace& memory() { return process_->address_space(); }
  int node_id() const { return daemon_->node_id(); }

  // --- buffer management helpers (user-space malloc over the simulated
  //     address space; page-aligned so buffers are exportable; `len` in
  //     bytes) ---
  Result<mem::VirtAddr> AllocBuffer(std::uint32_t len);
  Status FreeBuffer(mem::VirtAddr va);
  Status WriteBuffer(mem::VirtAddr va, std::span<const std::uint8_t> data);
  Status ReadBuffer(mem::VirtAddr va, std::span<std::uint8_t> out) const;

  // --- export / import ---
  // Offers [va, va+len) (page-aligned, len in bytes) as a receive buffer
  // under options.name; pins the pages and enables them for receive.
  sim::Task<Result<ExportId>> ExportBuffer(mem::VirtAddr va, std::uint32_t len,
                                           ExportOptions options);
  // Withdraws an export; in-flight deliveries to it become violations.
  sim::Task<Status> UnexportBuffer(ExportId id);
  // Maps the buffer exported under `name` on `remote_node` into this
  // process's destination proxy space; the returned proxy address is
  // what SendMsg targets.
  sim::Task<Result<ImportedBuffer>> ImportBuffer(int remote_node,
                                                 const std::string& name,
                                                 ImportOptions options = {});
  // Releases the proxy mapping (outgoing page-table entries).
  sim::Task<Status> UnimportBuffer(const ImportedBuffer& buffer);

  // --- data transfer ---
  // Synchronous send: returns once the send buffer is reusable — for short
  // messages right after the data is PIO-copied to the interface, for long
  // messages once the last chunk is in LANai SRAM (§5.3).
  sim::Task<Status> SendMsg(mem::VirtAddr src, ProxyAddr dst, std::uint32_t len,
                            SendOptions options = {});
  // Asynchronous send: returns after posting the request (§5.3).
  sim::Task<Result<SendHandle>> SendMsgAsync(mem::VirtAddr src, ProxyAddr dst,
                                             std::uint32_t len,
                                             SendOptions options = {});
  // Non-blocking completion test (does not consume the handle).
  bool CheckSend(const SendHandle& handle) const;
  // Blocks (spins) until the send completes; consumes the handle.
  sim::Task<Status> WaitSend(SendHandle handle);

  // --- notifications ---
  void SetNotificationHandler(ExportId id, NotificationHandler handler);
  std::uint64_t notifications_received() const { return notifications_received_; }

  // Errors of fire-and-forget short sends, observed via completion words.
  std::uint64_t deferred_send_errors() const { return deferred_send_errors_; }

  const VmmcLcp::Stats& nic_stats() const { return lcp_->stats(); }

 private:
  Endpoint(const Params& params, host::Machine& machine, VmmcLcp& lcp,
           VmmcDriver& driver, VmmcDaemon& daemon, host::UserProcess& process);

  sim::Process NotificationSignalHandler();
  sim::Process ReapSlot(SendHandle handle);
  Status ToStatus(SendStatus s) const;

  const Params& params_;
  host::Machine* machine_;
  VmmcLcp* lcp_;
  VmmcDriver* driver_;
  VmmcDaemon* daemon_;
  host::UserProcess* process_;
  ProcState* state_ = nullptr;

  // Completion slot bookkeeping (mirrors the per-slot user memory words).
  struct Slot {
    bool in_use = false;
    std::uint64_t generation = 0;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unique_ptr<sim::Semaphore> slot_tokens_;
  std::uint64_t next_generation_ = 1;

  std::unordered_map<ExportId, NotificationHandler> handlers_;
  std::uint64_t notifications_received_ = 0;
  std::uint64_t deferred_send_errors_ = 0;

  // Host-side posting cost, for the latency budget (node<N>.host.*).
  obs::Counter* send_posts_m_ = nullptr;
  obs::Counter* pio_post_ns_m_ = nullptr;
};

}  // namespace vmmc::vmmc_core
