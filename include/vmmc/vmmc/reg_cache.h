// Registration (pin-down) cache — the core idea of "User Mode Memory
// Page Management" (PAPERS.md), as used by MPICH2-over-InfiniBand: page
// pinning costs a kernel crossing plus a per-page walk, so the library
// keeps registrations alive after their last user and recycles them when
// the same buffer is transferred again. Steady-state transfers then do
// zero pin work.
//
// Entries are exact-range (first page, page count, intent) and
// refcounted: nested Acquires of the same range share one pin-down.
// Idle entries (refs == 0) sit on an intrusive LRU list and are evicted
// — unpinned — when the total pinned footprint exceeds the configured
// budget, or when the address space announces the range is going away
// (AddressSpace release listener: Unmap / HeapFree / FreeBuffer).
// Entries with live references are never evicted; an Unmap over them
// fails on the pin count, which is exactly the contract documented in
// address_space.h.
//
// The hit and release paths are allocation-free (the LRU list is
// intrusive); perf_guard_test asserts this.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vmmc/host/kernel.h"
#include "vmmc/obs/metrics.h"
#include "vmmc/params.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// What the registration will be used for; determines the NIC-side setup.
enum class RegIntent : std::uint8_t {
  kSend = 1,  // DMA source: pin + prefill the process's software TLB
  kRecv = 2,  // DMA target: pin + enable incoming PT + rtag recv region
  kBoth = 3,
};

// A live registration handle. `rtag` is nonzero iff receive-capable
// (advertise it to remote writers/readers); `cache_id` retires the
// reference via RegCache::Release.
struct MemRegion {
  mem::VirtAddr va = 0;
  std::uint64_t len = 0;
  std::uint32_t rtag = 0;
  std::uint64_t cache_id = 0;
};

class RegCache {
 public:
  // `state` is the process's NIC-side state (for the TLB prefill);
  // `sim`/`node` bind the node<N>.regcache.* metrics.
  RegCache(const Params& params, host::UserProcess& process, VmmcLcp& lcp,
           ProcState& state, sim::Simulator& sim, int node);
  ~RegCache();
  RegCache(const RegCache&) = delete;
  RegCache& operator=(const RegCache&) = delete;

  // Registers [va, va+len) for `intent`. The returned `cost` is the host
  // time the caller must charge (the pin-down syscall on a miss, a hash
  // probe on a hit) — RegCache itself never advances simulated time, so
  // it stays directly unit-testable.
  struct Acquisition {
    MemRegion region;
    sim::Tick cost = 0;
    bool hit = false;
  };
  Result<Acquisition> Acquire(mem::VirtAddr va, std::uint64_t len,
                              RegIntent intent);

  // Drops one reference. With the cache enabled the registration goes
  // idle (kept pinned, LRU-evictable); disabled, it is torn down on the
  // spot. Returns the host time to charge (0 on the cached path).
  Result<sim::Tick> Release(std::uint64_t cache_id);

  // Address-space release hook: evicts idle entries overlapping
  // [va, va+len). Entries with live references are left alone — the
  // caller's Unmap then fails on their pin counts.
  void InvalidateRange(mem::VirtAddr va, std::uint64_t len);

  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  std::size_t entry_count() const { return by_key_.size(); }

 private:
  struct Key {
    mem::Vpn first_vpn = 0;
    std::uint64_t pages = 0;
    std::uint8_t intent = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = k.first_vpn * 0x9e3779b97f4a7c15ull;
      h ^= k.pages + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h ^ k.intent);
    }
  };
  struct Entry {
    Key key;
    std::uint64_t id = 0;
    std::uint32_t refs = 0;
    mem::VirtAddr va = 0;       // original request range (pin/unpin args)
    std::uint64_t len = 0;
    std::uint64_t bytes = 0;    // pinned footprint: pages * kPageSize
    std::uint32_t rtag = 0;
    std::vector<mem::Pfn> frames;
    std::vector<bool> we_enabled;  // incoming-PT pages this entry enabled
    // Intrusive idle-LRU links (valid while refs == 0).
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
  };

  // Cold registration: pin, NIC setup. Returns the charged cost.
  Result<sim::Tick> Register(Entry& e, RegIntent intent);
  // Full teardown of one entry (unpin + NIC teardown + map removal).
  void Destroy(Entry& e);
  void LruPushBack(Entry& e);
  void LruUnlink(Entry& e);
  // Evicts idle LRU entries until pinned_bytes_ + extra fits the budget
  // (or no idle entry remains).
  void EvictFor(std::uint64_t extra);
  void SetPinnedGauge();

  const Params& params_;
  host::UserProcess& process_;
  VmmcLcp& lcp_;
  ProcState& state_;

  std::unordered_map<Key, std::unique_ptr<Entry>, KeyHash> by_key_;
  std::unordered_map<std::uint64_t, Entry*> by_id_;
  std::uint64_t next_id_ = 1;
  Entry* lru_head_ = nullptr;  // least recently idle
  Entry* lru_tail_ = nullptr;
  std::uint64_t pinned_bytes_ = 0;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hit_m_ = nullptr;
  obs::Counter* miss_m_ = nullptr;
  obs::Counter* evict_m_ = nullptr;
  obs::Gauge* pinned_m_ = nullptr;
  sim::Simulator* sim_ = nullptr;  // for the gauge timestamps
};

}  // namespace vmmc::vmmc_core
