// Cluster assembly: the paper's experimental platform — PCI PCs with
// Myrinet interfaces on a Myrinet switch, plus an Ethernet for the daemons
// (§5.1). Boot() performs the §4.3 sequence: load the mapping LCP on every
// interface, map and verify the network, then replace the mapping LCP with
// the VMMC LCP and start daemons and drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vmmc/ethernet/ethernet.h"
#include "vmmc/host/machine.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/vmmc/api.h"
#include "vmmc/vmmc/daemon.h"
#include "vmmc/vmmc/driver.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// Fabric shape the cluster stands up. The first two predate the general
// topology builder (myrinet/topology.h) and keep their historical
// behaviour; the rest map straight onto TopologyKind and scale to
// tens of nodes (fat tree of 8-port switches: 32; of 16-port: 128).
enum class Topology { kSingleSwitch, kSwitchChain, kFatTree, kRing, kMesh };

struct ClusterOptions {
  int num_nodes = 4;  // the paper's testbed size
  Topology topology = Topology::kSingleSwitch;
  int chain_switches = 2;  // for kSwitchChain
  int switch_ports = 8;    // crossbar radix for kFatTree/kRing/kMesh
  std::uint64_t mem_bytes_per_node = 16ull * 1024 * 1024;

  // Shorthand for the scaling topologies: "fattree:16@8" etc., see
  // myrinet::ParseTopologySpec.
  static Result<ClusterOptions> FromSpec(const std::string& spec);
};

class Cluster {
 public:
  struct Node {
    std::unique_ptr<host::Machine> machine;
    std::unique_ptr<lanai::NicCard> nic;
    ethernet::Interface* eth = nullptr;
    std::unique_ptr<VmmcDaemon> daemon;
    std::unique_ptr<VmmcDriver> driver;
    VmmcLcp* lcp = nullptr;  // owned by the NIC once loaded
    RouteTable routes;
  };

  Cluster(sim::Simulator& sim, const Params& params, ClusterOptions options);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs the boot sequence to completion (drives the simulator).
  Status Boot();
  bool booted() const { return booted_; }
  sim::Tick boot_time() const { return boot_time_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  sim::Simulator& simulator() { return sim_; }
  myrinet::Fabric& fabric() { return *fabric_; }
  ethernet::Segment& ethernet() { return *ethernet_; }
  const Params& params() const { return params_; }
  // Tests and benches tweak fault-injection knobs after boot (the fabric
  // and machines read these parameters live).
  Params& mutable_params() { return params_; }

  // Creates a user process on `node_id` and opens a VMMC endpoint for it.
  Result<std::unique_ptr<Endpoint>> OpenEndpoint(int node_id,
                                                 const std::string& name);

 private:
  sim::Simulator& sim_;
  Params params_;
  ClusterOptions options_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::unique_ptr<ethernet::Segment> ethernet_;
  std::vector<Node> nodes_;
  bool booted_ = false;
  sim::Tick boot_time_ = 0;
};

}  // namespace vmmc::vmmc_core
