// Cluster assembly: the paper's experimental platform — PCI PCs with
// Myrinet interfaces on a Myrinet switch, plus an Ethernet for the daemons
// (§5.1). Boot() performs the §4.3 sequence: load the mapping LCP on every
// interface, map and verify the network, then replace the mapping LCP with
// the VMMC LCP and start daemons and drivers.
//
// Two execution substrates (see vmmc/runtime.h for the env-driven
// front-end):
//  - Single simulator (the historical ctor): every component shares one
//    event queue; behaviour is bit-identical to all prior releases.
//  - Partitioned (the ParallelEngine ctor): each node (host + NIC +
//    daemon), each switch, and the Ethernet segment becomes a logical
//    process on its own engine shard; shard assignment is a pure function
//    of the topology (nothing about thread counts), so any worker count
//    replays the identical execution. Drive a partitioned cluster through
//    DriveUntil/DriveUntilQuiescent, never through simulator().Run*.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vmmc/ethernet/ethernet.h"
#include "vmmc/host/machine.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/myrinet/fabric.h"
#include "vmmc/params.h"
#include "vmmc/sim/parallel.h"
#include "vmmc/sim/simulator.h"
#include "vmmc/vmmc/api.h"
#include "vmmc/vmmc/daemon.h"
#include "vmmc/vmmc/driver.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// Fabric shape the cluster stands up. The first two predate the general
// topology builder (myrinet/topology.h) and keep their historical
// behaviour; the rest map straight onto TopologyKind and scale to
// tens of nodes (fat tree of 8-port switches: 32; of 16-port: 128).
enum class Topology { kSingleSwitch, kSwitchChain, kFatTree, kRing, kMesh };

struct ClusterOptions {
  int num_nodes = 4;  // the paper's testbed size
  Topology topology = Topology::kSingleSwitch;
  int chain_switches = 2;  // for kSwitchChain
  int switch_ports = 8;    // crossbar radix for kFatTree/kRing/kMesh
  std::uint64_t mem_bytes_per_node = 16ull * 1024 * 1024;

  // Shorthand for the scaling topologies: "fattree:16@8" etc., see
  // myrinet::ParseTopologySpec.
  static Result<ClusterOptions> FromSpec(const std::string& spec);
};

class Cluster {
 public:
  struct Node {
    std::unique_ptr<host::Machine> machine;
    std::unique_ptr<lanai::NicCard> nic;
    ethernet::Interface* eth = nullptr;
    std::unique_ptr<VmmcDaemon> daemon;
    std::unique_ptr<VmmcDriver> driver;
    VmmcLcp* lcp = nullptr;  // owned by the NIC once loaded
    RouteTable routes;
  };

  Cluster(sim::Simulator& sim, const Params& params, ClusterOptions options);
  // Partitioned cluster: allocates one engine shard per node, per switch,
  // and for the Ethernet segment (plus a control shard the boot sequence
  // and OpenEndpoint structures live on). The engine must outlive the
  // cluster and must not have been run yet.
  Cluster(sim::ParallelEngine& engine, const Params& params,
          ClusterOptions options);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs the boot sequence to completion (drives the simulator).
  Status Boot();
  bool booted() const { return booted_; }
  sim::Tick boot_time() const { return boot_time_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return nodes_.at(static_cast<std::size_t>(i)); }
  sim::Simulator& simulator() { return sim_; }

  // --- substrate-neutral driving (works for both ctors) ---
  bool parallel() const { return engine_ != nullptr; }
  sim::ParallelEngine* engine() { return engine_; }
  // The simulator node `i`'s components execute on. Workloads (bench
  // drivers, test harnesses) MUST spawn a node's processes here; on a
  // single-simulator cluster this is simulator() itself.
  sim::Simulator& node_sim(int i) {
    return engine_ != nullptr
               ? engine_->shard(node_shards_.at(static_cast<std::size_t>(i)))
               : sim_;
  }
  // Runs until `pred` holds (evaluated between events / at window
  // boundaries); returns false if the system quiesced first.
  bool DriveUntil(std::function<bool()> pred);
  // Runs until no events remain anywhere; returns events dispatched.
  std::uint64_t DriveUntilQuiescent();
  // Fleet-wide clock (max over shards) / total events dispatched.
  sim::Tick time_now() const;
  std::uint64_t events_processed() const;
  // Folds every shard's metrics into `out` (single-simulator: the one
  // registry). Use for dumps; per-instrument reads on a quiesced cluster
  // may also go directly to the owning shard's registry.
  void MergeMetricsInto(obs::Registry& out) const;

  myrinet::Fabric& fabric() { return *fabric_; }
  ethernet::Segment& ethernet() { return *ethernet_; }
  const Params& params() const { return params_; }
  // Tests and benches tweak fault-injection knobs after boot (the fabric
  // and machines read these parameters live).
  Params& mutable_params() { return params_; }

  // Creates a user process on `node_id` and opens a VMMC endpoint for it.
  Result<std::unique_ptr<Endpoint>> OpenEndpoint(int node_id,
                                                 const std::string& name);

 private:
  // Shared tail of both ctors: topology, nodes, interfaces, daemons.
  void Assemble();

  sim::Simulator& sim_;
  sim::ParallelEngine* engine_ = nullptr;  // null = single-simulator mode
  Params params_;
  ClusterOptions options_;
  std::unique_ptr<myrinet::Fabric> fabric_;
  std::unique_ptr<ethernet::Segment> ethernet_;
  std::vector<Node> nodes_;
  std::vector<int> node_shards_;  // node id -> engine shard (parallel only)
  bool booted_ = false;
  sim::Tick boot_time_ = 0;
};

}  // namespace vmmc::vmmc_core
