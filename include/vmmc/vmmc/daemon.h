// The VMMC daemon (one per node, §4.1/§4.4): user programs submit export
// and import requests to their local daemon; daemons talk to each other
// over Ethernet to match exports with imports and set up the page tables
// in the LANai control program.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vmmc/ethernet/ethernet.h"
#include "vmmc/host/kernel.h"
#include "vmmc/lanai/nic_card.h"
#include "vmmc/params.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/lcp.h"

namespace vmmc::vmmc_core {

// Node-local identifier of an exported receive buffer (assigned by the
// exporting node's daemon; importers refer to exports by name, not id).
using ExportId = std::uint32_t;

// Import restrictions attached to an export (§2: "An exporter can restrict
// possible importers of a buffer; VMMC enforces the restrictions when an
// import is attempted").
struct ExportAcl {
  bool allow_all = true;
  // (node, pid) pairs; pid -1 matches any process on the node.
  std::vector<std::pair<int, int>> allowed;

  bool Permits(int node, int pid) const {
    if (allow_all) return true;
    for (const auto& [n, p] : allowed) {
      if (n == node && (p == -1 || p == pid)) return true;
    }
    return false;
  }
};

struct ExportOptions {
  std::string name;      // the key importers use
  bool notify = false;   // raise a notification on message arrival
  ExportAcl acl;
};

// What a successful import hands back: where the remote buffer begins in
// the importer's destination proxy space, and its extent.
struct ImportedBuffer {
  ProxyAddr proxy_base = 0;  // first byte of the buffer in proxy space
  std::uint32_t len = 0;     // bytes
  int remote_node = -1;      // the exporting node
  // The exporter's registered-region tag: lets the importer address this
  // buffer with one-sided RdmaWrite/RdmaRead as well as SendMsg.
  std::uint32_t rtag = 0;
};

class VmmcDaemon {
 public:
  // Well-known Ethernet port every daemon's server loop listens on.
  static constexpr std::uint16_t kPort = 700;

  VmmcDaemon(const Params& params, int node_id, host::Kernel& kernel,
             lanai::NicCard& nic, ethernet::Interface& eth)
      : params_(params), node_id_(node_id), kernel_(kernel), nic_(nic), eth_(eth) {}
  VmmcDaemon(const VmmcDaemon&) = delete;
  VmmcDaemon& operator=(const VmmcDaemon&) = delete;

  // Called by the cluster once the VMMC LCP is loaded; also starts the
  // Ethernet server loop.
  Status Start(VmmcLcp* lcp);

  int node_id() const { return node_id_; }

  // --- local requests from the VMMC library (user -> daemon IPC) ---

  // Exports [va, va+len) of `proc` as a receive buffer: pins the pages and
  // enables them in the incoming page table (§4.4).
  sim::Task<Result<ExportId>> Export(host::UserProcess& proc, mem::VirtAddr va,
                                     std::uint32_t len, ExportOptions options);
  sim::Task<Status> Unexport(host::UserProcess& proc, ExportId id);

  // Imports the buffer exported under `name` on `remote_node` into
  // `state`'s outgoing page table; returns the proxy base address.
  sim::Task<Result<ImportedBuffer>> Import(ProcState& state, int remote_node,
                                           const std::string& name);
  sim::Task<Status> Unimport(ProcState& state, const ImportedBuffer& buffer);

  std::uint64_t exports_served() const { return exports_served_; }
  std::uint64_t imports_matched() const { return imports_matched_; }
  std::uint64_t imports_rejected() const { return imports_rejected_; }

 private:
  struct ExportRecord {
    ExportId id;
    int pid;
    std::string name;
    mem::VirtAddr va;
    std::uint32_t len;
    std::vector<mem::Pfn> frames;
    bool notify;
    ExportAcl acl;
    std::uint32_t rtag = 0;  // LCP recv region published for this export
  };

  // Daemon-to-daemon protocol (binary, over UDP-like datagrams).
  struct ImportReply {
    Status status = OkStatus();
    std::uint32_t len = 0;
    bool notify = false;
    std::uint32_t rtag = 0;
    std::vector<mem::Pfn> frames;
  };

  sim::Process ServerLoop();
  sim::Process HandleRequest(ethernet::Datagram dgram);
  ImportReply LookupForImport(const std::string& name, int importer_node,
                              int importer_pid);

  const Params& params_;
  int node_id_;
  host::Kernel& kernel_;
  lanai::NicCard& nic_;
  ethernet::Interface& eth_;
  VmmcLcp* lcp_ = nullptr;

  sim::Mailbox<ethernet::Datagram>* server_box_ = nullptr;
  std::unordered_map<std::string, ExportRecord> exports_;
  ExportId next_export_id_ = 1;
  std::uint32_t next_tag_ = 1;

  // Outstanding import requests keyed by tag.
  struct PendingImport {
    std::unique_ptr<sim::Event> done;
    ImportReply reply;
  };
  std::unordered_map<std::uint32_t, PendingImport> pending_imports_;
  std::uint16_t reply_port_ = 0;
  sim::Mailbox<ethernet::Datagram>* reply_box_ = nullptr;

  std::uint64_t exports_served_ = 0;
  std::uint64_t imports_matched_ = 0;
  std::uint64_t imports_rejected_ = 0;
};

}  // namespace vmmc::vmmc_core
