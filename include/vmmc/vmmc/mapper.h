// The network-mapping phase (§4.3): at boot each daemon loads a special
// LANai control program that maps the network; once every node has its
// routing information the mapping LCP is replaced by the VMMC LCP, and no
// dynamic remapping happens afterwards (static-topology assumption, §4.2).
//
// Substitution note (see DESIGN.md): the route *computation* stands in for
// Myricom's proprietary mapper — routes come from a BFS over the fabric
// graph — but route *verification* is real: every route is exercised by a
// probe packet carrying its return route, answered by the peer's mapping
// LCP through the actual simulated network.
#pragma once

#include <cstdint>

#include "vmmc/lanai/nic_card.h"
#include "vmmc/sim/sync.h"
#include "vmmc/sim/task.h"
#include "vmmc/vmmc/lcp.h"
#include "vmmc/vmmc/wire.h"

namespace vmmc::vmmc_core {

class MappingLcp : public lanai::Lcp {
 public:
  explicit MappingLcp(sim::Simulator& sim) : replies_(sim), stopped_(sim) {}

  sim::Process Run(lanai::NicCard& nic) override;

  // Asks the LCP to exit its loop; `stopped()` fires once it has.
  void RequestStop(lanai::NicCard& nic) {
    stop_ = true;
    nic.NotifyWork();
  }
  sim::Event& stopped() { return stopped_; }

  // Tags of map replies received (consumed by the prober).
  sim::Mailbox<std::uint32_t>& replies() { return replies_; }

  std::uint64_t probes_answered() const { return probes_answered_; }

 private:
  sim::Mailbox<std::uint32_t> replies_;
  sim::Event stopped_;
  bool stop_ = false;
  std::uint64_t probes_answered_ = 0;
};

// Runs the whole mapping procedure for one node: computes a route to every
// other node, verifies each with a probe/reply exchange, and returns the
// routing table. Must run while every node has a MappingLcp loaded.
sim::Task<Result<RouteTable>> MapNetwork(lanai::NicCard& nic, MappingLcp& lcp,
                                         int num_nodes);

}  // namespace vmmc::vmmc_core
